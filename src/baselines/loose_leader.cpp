#include "baselines/loose_leader.hpp"

#include <algorithm>

namespace ssle::baselines {

LooseLeaderElection::LooseLeaderElection(std::uint32_t n,
                                         std::uint32_t timeout_scale)
    : n_(n) {
  std::uint32_t log2n = 0;
  while ((1u << log2n) < n) ++log2n;
  timeout_ = std::max<std::uint32_t>(4, timeout_scale * (log2n + 1));
}

void LooseLeaderElection::interact(State& u, State& v,
                                   util::Rng& /*rng*/) const {
  if (u.leader && v.leader) {
    v.leader = false;  // duplicate leaders fight; the responder abdicates
    u.timer = timeout_;
    v.timer = timeout_;
    return;
  }
  if (u.leader || v.leader) {
    u.timer = timeout_;  // heartbeat from the leader refills both timers
    v.timer = timeout_;
    return;
  }
  const std::uint32_t merged = std::max(u.timer, v.timer);
  const std::uint32_t next = merged > 0 ? merged - 1 : 0;
  u.timer = next;
  v.timer = next;
  if (next == 0) {
    u.leader = true;  // timeout: the initiator promotes itself
    u.timer = timeout_;
    v.timer = timeout_;
  }
}

std::uint32_t LooseLeaderElection::leader_count(
    const std::vector<State>& config) const {
  std::uint32_t count = 0;
  for (const State& s : config) count += s.leader ? 1 : 0;
  return count;
}

}  // namespace ssle::baselines
