// Loosely-stabilizing leader election in the style of Sudo et al.
// (paper §2, "Loosely Self-stabilizing Leader Election"): from any
// configuration a unique leader emerges within O(τ + log n) parallel time
// and is then *held* for a long (but not infinite) time governed by the
// timeout parameter τ.
//
// Mechanics (timeout / oscillator pattern):
//   * leader × leader    → the responder abdicates;
//   * leader × follower  → both timers refill to τ;
//   * follower × follower→ both adopt max(timers) − 1; an agent whose
//     timer reaches 0 concludes the leader is gone and promotes itself.
//
// Included as the relaxation comparison point of experiment T1 — it is
// much cheaper (O(τ) states) than true self-stabilization but only
// provides a finite holding time, which bench_t1 also measures.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "util/rng.hpp"

namespace ssle::baselines {

class LooseLeaderElection {
 public:
  struct State {
    bool leader = false;
    std::uint32_t timer = 0;
    friend bool operator==(const State&, const State&) = default;
  };

  /// δ consumes no randomness (the timeout/oscillator rules are pure
  /// functions of the two states): the batched engine may bulk-apply and
  /// memoize transitions over interned class ids (pp/protocol.hpp).
  static constexpr bool kDeterministicInteract = true;

  /// Reachable states are (leader?, timer ≤ τ): O(τ) = O(log n) of them,
  /// independent of which start the adversary picks — leap-eligible
  /// (pp/protocol.hpp).  Note leaping rarely *pays* here (almost every
  /// follower×follower pair changes a timer, so active pair types dominate
  /// the weight); it is exact regardless, which the TV tests exploit.
  static constexpr bool kNarrowRegistry = true;

  /// τ = timeout_scale · log2(n); holding time grows with timeout_scale.
  explicit LooseLeaderElection(std::uint32_t n, std::uint32_t timeout_scale = 16);

  std::uint32_t population_size() const { return n_; }

  /// Worst clean start: nobody is a leader, all timers empty.
  State initial_state(std::uint32_t /*agent*/) const { return State{}; }

  void interact(State& u, State& v, util::Rng& rng) const;

  static bool is_leader(const State& s) { return s.leader; }

  std::uint32_t leader_count(const std::vector<State>& config) const;
  std::uint32_t timeout() const { return timeout_; }

 private:
  std::uint32_t n_;
  std::uint32_t timeout_;
};

}  // namespace ssle::baselines

/// Enables the O(1) hash-indexed registry in pp::CountsConfiguration; the
/// state space is O(timeout), so counts compress this baseline well.
template <>
struct std::hash<ssle::baselines::LooseLeaderElection::State> {
  std::size_t operator()(
      const ssle::baselines::LooseLeaderElection::State& s) const noexcept {
    return (static_cast<std::size_t>(s.timer) << 1) |
           static_cast<std::size_t>(s.leader);
  }
};
