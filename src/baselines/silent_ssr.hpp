// Name-set-broadcast self-stabilizing ranking baseline in the style of
// Burman–Chen–Chen–Doty–Nowak–Severson–Xu (PODC'21), as sketched by the
// paper itself (App. D): "In the protocol of [16], agents choose one of
// O(n³) names at random.  They then broadcast these names, storing the
// entire set of seen names, and obtain ranks from this set (as the used
// names are unique w.h.p.); this requires O(n log n) bits and O(n log n)
// interactions w.h.p."
//
// This rendition stores the set explicitly and adds an epoch-based reset:
// duplicate names or an over-full set advance the epoch (epidemic), which
// clears sets and redraws names.  It reproduces the baseline's relevant
// shape for the comparison experiments: time Θ(n log n) (epidemic-limited)
// with Θ(n log n) *bits* per agent — i.e. 2^{Θ(n log n)} states — versus
// ElectLeader_r's 2^{O(r² log n)}.
//
// Note: the original protocol's full history-tree machinery is not public;
// DESIGN.md documents this substitution.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "util/hash.hpp"
#include "util/rng.hpp"

namespace ssle::baselines {

class SilentSsrBaseline {
 public:
  struct State {
    std::uint32_t epoch = 0;
    std::uint64_t name = 0;  ///< ∈ [n³], 0 = not yet drawn
    std::vector<std::uint64_t> names;  ///< sorted set of seen names
    std::uint32_t settle = 0;  ///< own-interaction countdown before ranking
    std::uint32_t rank = 0;    ///< 0 = unranked
    friend bool operator==(const State&, const State&) = default;
  };

  explicit SilentSsrBaseline(std::uint32_t n);

  std::uint32_t population_size() const { return n_; }
  State initial_state(std::uint32_t /*agent*/) const { return State{}; }

  void interact(State& u, State& v, util::Rng& rng) const;

  static bool is_leader(const State& s) { return s.rank == 1; }

  /// Stable iff all agents are ranked with a permutation of [n].
  bool is_stable(const std::vector<State>& config) const;

  std::uint32_t settle_max() const { return settle_max_; }

 private:
  void fresh_epoch(State& s, std::uint32_t epoch, util::Rng& rng) const;
  void bump_epoch(State& u, State& v, util::Rng& rng) const;

  std::uint32_t n_;
  std::uint64_t name_space_;
  std::uint32_t settle_max_;
};

}  // namespace ssle::baselines

/// Enables the O(1) hash-indexed registry in pp::CountsConfiguration.
/// Note the per-agent name *sets* keep the distinct-state count near n, so
/// counts buy little compression here — this mainly avoids linear scans.
template <>
struct std::hash<ssle::baselines::SilentSsrBaseline::State> {
  std::size_t operator()(
      const ssle::baselines::SilentSsrBaseline::State& s) const noexcept {
    std::size_t h = s.epoch;
    ssle::util::hash_mix(h, static_cast<std::size_t>(s.name));
    ssle::util::hash_mix(h, s.names.size());
    for (const std::uint64_t name : s.names) {
      ssle::util::hash_mix(h, static_cast<std::size_t>(name));
    }
    ssle::util::hash_mix(h, s.settle);
    ssle::util::hash_mix(h, s.rank);
    return h;
  }
};
