#include "baselines/cai_izumi_wada.hpp"

namespace ssle::baselines {

bool CaiIzumiWada::is_stable(const std::vector<State>& config) const {
  std::vector<bool> seen(n_ + 1, false);
  for (const State& s : config) {
    if (s.rank < 1 || s.rank > n_ || seen[s.rank]) return false;
    seen[s.rank] = true;
  }
  return true;
}

}  // namespace ssle::baselines
