// Cai–Izumi–Wada (2012) self-stabilizing leader election / ranking with
// exactly n states and O(n²) expected time (paper §2: "a self-stabilizing
// leader election protocol using only n states and time O(n²) in
// expectation"; silent; solves the problem via ranking).
//
// Transition: when two agents with equal ranks meet, the responder moves
// to the cyclically next rank.  From any configuration the multiset of
// ranks converges to the permutation of [n]; the agent with rank 1 is the
// leader.  This is the space-optimal / slow extreme of the trade-off and
// the "silent regime" comparison point of experiment T1.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "util/rng.hpp"

namespace ssle::baselines {

class CaiIzumiWada {
 public:
  struct State {
    std::uint32_t rank = 1;  ///< ∈ [n]
    friend bool operator==(const State&, const State&) = default;
  };

  /// δ consumes no randomness: the batched engine may bulk-apply and
  /// memoize transitions over interned class ids (pp/protocol.hpp).
  static constexpr bool kDeterministicInteract = true;

  explicit CaiIzumiWada(std::uint32_t n) : n_(n) {}

  std::uint32_t population_size() const { return n_; }

  /// All agents start at rank 1 (any start is fine — self-stabilizing).
  State initial_state(std::uint32_t /*agent*/) const { return State{1}; }

  void interact(State& u, State& v, util::Rng& /*rng*/) const {
    if (u.rank == v.rank) {
      v.rank = v.rank % n_ + 1;  // responder steps to the next rank
    }
  }

  static bool is_leader(const State& s) { return s.rank == 1; }

  /// Stable iff ranks form a permutation of [n] (the protocol is silent
  /// there: no transition changes any state).
  bool is_stable(const std::vector<State>& config) const;

 private:
  std::uint32_t n_;
};

}  // namespace ssle::baselines

/// Enables the O(1) hash-indexed registry in pp::CountsConfiguration, so
/// the batched engine can run this baseline at large n.
template <>
struct std::hash<ssle::baselines::CaiIzumiWada::State> {
  std::size_t operator()(
      const ssle::baselines::CaiIzumiWada::State& s) const noexcept {
    return std::hash<std::uint32_t>{}(s.rank);
  }
};
