#include "baselines/silent_ssr.hpp"

namespace ssle::baselines {

namespace {

/// Inserts into a sorted unique vector; returns true if inserted.
bool insert_sorted(std::vector<std::uint64_t>& xs, std::uint64_t v) {
  auto it = std::lower_bound(xs.begin(), xs.end(), v);
  if (it != xs.end() && *it == v) return false;
  xs.insert(it, v);
  return true;
}

}  // namespace

SilentSsrBaseline::SilentSsrBaseline(std::uint32_t n)
    : n_(n),
      name_space_(static_cast<std::uint64_t>(n) * n * n),
      settle_max_(8 * (32 - static_cast<std::uint32_t>(
                                __builtin_clz(n | 1)))) {}

void SilentSsrBaseline::fresh_epoch(State& s, std::uint32_t epoch,
                                    util::Rng& rng) const {
  s.epoch = epoch;
  s.name = 1 + rng.below(name_space_);
  s.names.assign(1, s.name);
  s.settle = settle_max_;
  s.rank = 0;
}

void SilentSsrBaseline::bump_epoch(State& u, State& v, util::Rng& rng) const {
  const std::uint32_t next = std::max(u.epoch, v.epoch) + 1;
  fresh_epoch(u, next, rng);
  fresh_epoch(v, next, rng);
}

void SilentSsrBaseline::interact(State& u, State& v, util::Rng& rng) const {
  // Epoch epidemic: the lower epoch joins the higher one afresh.
  if (u.epoch != v.epoch) {
    State& behind = u.epoch < v.epoch ? u : v;
    const std::uint32_t epoch = std::max(u.epoch, v.epoch);
    fresh_epoch(behind, epoch, rng);
  }

  if (u.name == 0) fresh_epoch(u, u.epoch, rng);
  if (v.name == 0) fresh_epoch(v, v.epoch, rng);

  // Direct name collision: the configuration is provably broken.
  if (u.name == v.name) {
    bump_epoch(u, v, rng);
    return;
  }

  // Union of name sets (two-way broadcast).
  bool u_changed = false;
  bool v_changed = false;
  for (std::uint64_t name : v.names) u_changed |= insert_sorted(u.names, name);
  for (std::uint64_t name : u.names) v_changed |= insert_sorted(v.names, name);

  // Over-full set: impossible in a legal run of n agents.
  if (u.names.size() > n_ || v.names.size() > n_) {
    bump_epoch(u, v, rng);
    return;
  }

  for (State* s : {&u, &v}) {
    const bool changed = (s == &u) ? u_changed : v_changed;
    if (changed) {
      s->settle = settle_max_;
      s->rank = 0;
      continue;
    }
    if (s->settle > 0) --s->settle;
    if (s->settle == 0 && s->names.size() == n_ && s->rank == 0) {
      const auto it =
          std::lower_bound(s->names.begin(), s->names.end(), s->name);
      s->rank = static_cast<std::uint32_t>(it - s->names.begin()) + 1;
    }
  }
}

bool SilentSsrBaseline::is_stable(const std::vector<State>& config) const {
  std::vector<bool> seen(n_ + 1, false);
  for (const State& s : config) {
    if (s.rank < 1 || s.rank > n_ || seen[s.rank]) return false;
    seen[s.rank] = true;
  }
  return true;
}

}  // namespace ssle::baselines
