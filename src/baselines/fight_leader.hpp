// The folklore two-state *non-self-stabilizing* leader election (paper §2,
// "Non Self-Stabilizing Leader Election" — the common ancestor of
// [1–3, 10–12, 23, 24, 31]): all agents start as potential leaders; when
// two leaders meet, the responder abdicates.  Converges in Θ(n) parallel
// time with 2 states — but from a leaderless configuration it deadlocks,
// which is precisely why self-stabilization (and the paper's machinery)
// is needed.  Included as the context row of experiment T1.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "util/rng.hpp"

namespace ssle::baselines {

class FightLeaderElection {
 public:
  struct State {
    bool leader = true;  ///< everyone starts as a potential leader
    friend bool operator==(const State&, const State&) = default;
  };

  /// δ consumes no randomness: the batched engine may bulk-apply and
  /// memoize transitions over interned class ids (pp/protocol.hpp).
  static constexpr bool kDeterministicInteract = true;

  explicit FightLeaderElection(std::uint32_t n) : n_(n) {}

  std::uint32_t population_size() const { return n_; }
  State initial_state(std::uint32_t /*agent*/) const { return State{}; }

  void interact(State& u, State& v, util::Rng& /*rng*/) const {
    if (u.leader && v.leader) v.leader = false;
  }

  static bool is_leader(const State& s) { return s.leader; }

  std::uint32_t leader_count(const std::vector<State>& config) const {
    std::uint32_t k = 0;
    for (const State& s : config) k += s.leader ? 1 : 0;
    return k;
  }

 private:
  std::uint32_t n_;
};

}  // namespace ssle::baselines

/// Enables the O(1) hash-indexed registry in pp::CountsConfiguration: with
/// two distinct states, this baseline is the batched engine's best case.
template <>
struct std::hash<ssle::baselines::FightLeaderElection::State> {
  std::size_t operator()(
      const ssle::baselines::FightLeaderElection::State& s) const noexcept {
    return static_cast<std::size_t>(s.leader);
  }
};
