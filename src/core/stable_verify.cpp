#include "core/stable_verify.hpp"

#include "core/detect_collision.hpp"
#include "core/propagate_reset.hpp"

namespace ssle::core {

SvState sv_initial_state(const Params& params, std::uint32_t rank) {
  SvState s;
  s.generation = 0;
  // Fresh verifiers start *on probation* (§3.2: a positive timer means
  // "only a short period of time has passed since the beginning of the
  // process", in which case errors cause a safe full reset).
  s.probation_timer = params.probation_max;
  s.dc = dc_initial_state(params, rank);
  return s;
}

namespace {

/// Soft reset of a single agent (Protocol 2 line 7 / line 11): advance to
/// `generation`, re-enter DetectCollision at q0,DC, go on probation.
void soft_reset(const Params& params, Agent& a, std::uint32_t generation) {
  a.sv.generation = generation % Params::kGenerations;
  a.sv.dc = dc_initial_state(params, a.rank);
  a.sv.probation_timer = params.probation_max;
}

}  // namespace

VerifyStats stable_verify_counted(const Params& params, Agent& u, Agent& v,
                                  util::Rng& rng) {
  VerifyStats stats;

  // Lines 1–2: probation timers tick down on every interaction.
  for (Agent* a : {&u, &v}) {
    if (a->sv.probation_timer > 0) --a->sv.probation_timer;
  }

  // Lines 3–4: same-generation verifiers execute DetectCollision_r.
  if (u.sv.generation == v.sv.generation) {
    detect_collision(params, u.rank, u.sv.dc, v.rank, v.sv.dc, rng);

    // Lines 5–9: react to ⊤.
    bool any_error = false;
    for (Agent* a : {&u, &v}) {
      if (!a->sv.dc.error) continue;
      any_error = true;
      if (params.soft_reset_enabled && a->sv.probation_timer == 0) {
        soft_reset(params, *a, a->sv.generation + 1);
        ++stats.soft_resets;
      } else {
        trigger_reset(params, *a);
        ++stats.hard_resets;
      }
    }
    if (any_error) return stats;
    return stats;
  }

  // Lines 10–12: adopt the successor generation via epidemic when off
  // probation.
  const std::uint32_t gu = u.sv.generation;
  const std::uint32_t gv = v.sv.generation;
  for (auto [self, other_gen] :
       {std::pair<Agent*, std::uint32_t>{&u, gv},
        std::pair<Agent*, std::uint32_t>{&v, gu}}) {
    const bool one_behind =
        (self->sv.generation + 1) % Params::kGenerations == other_gen;
    if (self->sv.probation_timer == 0 && one_behind) {
      soft_reset(params, *self, other_gen);
      ++stats.soft_resets;
      return stats;
    }
  }

  // Line 13: generations differ but no soft reset was permissible.
  trigger_reset(params, u);
  ++stats.hard_resets;
  return stats;
}

void stable_verify(const Params& params, Agent& u, Agent& v, util::Rng& rng) {
  stable_verify_counted(params, u, v, rng);
}

}  // namespace ssle::core
