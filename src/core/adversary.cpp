#include "core/adversary.hpp"

#include <algorithm>

#include "core/assign_ranks.hpp"
#include "core/detect_collision.hpp"
#include "core/fast_leader_elect.hpp"
#include "core/stable_verify.hpp"

namespace ssle::core {

std::vector<Corruption> all_corruptions() {
  return {Corruption::kNone,          Corruption::kDuplicateRanks,
          Corruption::kNoLeader,      Corruption::kCorruptMessages,
          Corruption::kLostMessages,  Corruption::kMixedGenerations,
          Corruption::kMidRanking,    Corruption::kAllResetting,
          Corruption::kRandomStates};
}

std::string corruption_name(Corruption c) {
  switch (c) {
    case Corruption::kNone: return "none";
    case Corruption::kDuplicateRanks: return "duplicate_ranks";
    case Corruption::kNoLeader: return "no_leader";
    case Corruption::kCorruptMessages: return "corrupt_messages";
    case Corruption::kLostMessages: return "lost_messages";
    case Corruption::kMixedGenerations: return "mixed_generations";
    case Corruption::kMidRanking: return "mid_ranking";
    case Corruption::kAllResetting: return "all_resetting";
    case Corruption::kRandomStates: return "random_states";
  }
  return "?";
}

std::vector<Agent> make_safe_config(const Params& params) {
  std::vector<Agent> config(params.n);
  for (std::uint32_t i = 0; i < params.n; ++i) {
    Agent& a = config[i];
    a.role = Role::kVerifying;
    a.rank = i + 1;
    a.countdown = 0;
    a.sv = sv_initial_state(params, a.rank);
    a.sv.probation_timer = 0;  // long past the initial probation
  }
  return config;
}

namespace {

/// Re-establishes the own-messages-match-observations state-space
/// restriction after ad-hoc edits.
void enforce_observation_invariant(const Params& params, Agent& a) {
  if (a.role != Role::kVerifying || a.sv.dc.error) return;
  const std::uint32_t group = params.group_of(a.rank);
  const std::uint32_t bucket = params.rank_in_group(a.rank) - 1;
  if (bucket >= a.sv.dc.msgs.size()) return;
  (void)group;
  for (const Msg& msg : a.sv.dc.msgs[bucket]) {
    if (msg.id >= 1 && msg.id <= a.sv.dc.observations.size()) {
      a.sv.dc.observations[msg.id - 1] = msg.content;
    }
  }
}

DcState random_dc_state(const Params& params, std::uint32_t rank,
                        util::Rng& rng) {
  // Start from q0 and randomize signature, counter, contents and holdings.
  DcState s = dc_initial_state(params, rank);
  const std::uint32_t group = params.group_of(rank);
  s.signature = static_cast<std::uint32_t>(
      1 + rng.below(params.signature_space(group)));
  s.counter = static_cast<std::uint32_t>(
      1 + rng.below(params.signature_period(group)));
  for (auto& o : s.observations) {
    o = static_cast<std::uint32_t>(1 + rng.below(params.signature_space(group)));
  }
  for (auto& bucket : s.msgs) {
    // Randomly drop, keep or re-stamp each held message.
    std::vector<Msg> kept;
    for (Msg msg : bucket) {
      const auto action = rng.below(3);
      if (action == 0) continue;  // drop
      if (action == 1) {
        msg.content = static_cast<std::uint32_t>(
            1 + rng.below(params.signature_space(group)));
      }
      kept.push_back(msg);
    }
    bucket = std::move(kept);
  }
  s.error = rng.below(16) == 0;  // occasionally start at ⊤ directly
  return s;
}

ArState random_ar_state(const Params& params, util::Rng& rng) {
  ArState s = ar_initial_state(params);
  switch (rng.below(6)) {
    case 0:  // leader election, possibly mid-run
      s.le.drawn = rng.coin();
      if (s.le.drawn) {
        s.le.identifier = 1 + rng.below(params.identifier_space);
        s.le.min_identifier = 1 + rng.below(params.identifier_space);
        s.le.le_count =
            static_cast<std::uint32_t>(rng.below(params.le_count_max + 1));
      }
      break;
    case 1:  // sheriff with a random badge range
      s.type = ArType::kSheriff;
      s.low_badge = static_cast<std::uint32_t>(1 + rng.below(params.r));
      s.high_badge = static_cast<std::uint32_t>(
          s.low_badge + rng.below(params.r - s.low_badge + 1));
      s.channel.assign(params.r, 0);
      break;
    case 2:  // deputy
      s.type = ArType::kDeputy;
      s.deputy_id = static_cast<std::uint32_t>(1 + rng.below(params.r));
      s.counter = static_cast<std::uint32_t>(1 + rng.below(params.label_pool));
      s.channel.assign(params.r, 0);
      s.channel[s.deputy_id - 1] = s.counter;
      break;
    case 3:  // recipient, possibly labelled
      s.type = ArType::kRecipient;
      s.channel.assign(params.r, 0);
      if (rng.coin()) {
        s.label = {static_cast<std::uint32_t>(1 + rng.below(params.r)),
                   static_cast<std::uint32_t>(1 + rng.below(params.label_pool))};
      }
      break;
    case 4:  // sleeper
      s.type = ArType::kSleeper;
      s.channel.assign(params.r, 0);
      s.sleep_timer =
          static_cast<std::uint32_t>(1 + rng.below(params.sleep_max));
      s.label = {static_cast<std::uint32_t>(1 + rng.below(params.r)),
                 static_cast<std::uint32_t>(1 + rng.below(params.label_pool))};
      break;
    case 5:  // already ranked (possibly colliding with others)
      s.type = ArType::kRanked;
      s.rank = static_cast<std::uint32_t>(1 + rng.below(params.n));
      break;
  }
  if (!s.channel.empty()) {
    for (auto& c : s.channel) {
      c = static_cast<std::uint32_t>(rng.below(params.label_pool + 1));
    }
  }
  return s;
}

}  // namespace

Agent random_agent(const Params& params, util::Rng& rng) {
  Agent a;
  a.rank = static_cast<std::uint32_t>(1 + rng.below(params.n));
  a.countdown = static_cast<std::uint32_t>(rng.below(params.countdown_max + 1));
  switch (rng.below(3)) {
    case 0:
      a.role = Role::kResetting;
      a.reset.reset_count =
          static_cast<std::uint32_t>(rng.below(params.reset_count_max + 1));
      a.reset.delay_timer =
          static_cast<std::uint32_t>(rng.below(params.delay_timer_max + 1));
      break;
    case 1:
      a.role = Role::kRanking;
      a.ar = random_ar_state(params, rng);
      break;
    case 2:
      a.role = Role::kVerifying;
      a.sv.generation =
          static_cast<std::uint32_t>(rng.below(Params::kGenerations));
      a.sv.probation_timer =
          static_cast<std::uint32_t>(rng.below(params.probation_max + 1));
      a.sv.dc = random_dc_state(params, a.rank, rng);
      enforce_observation_invariant(params, a);
      break;
  }
  return a;
}

std::vector<Agent> make_adversarial_config(const Params& params, Corruption c,
                                           util::Rng& rng) {
  switch (c) {
    case Corruption::kNone:
      return make_safe_config(params);

    case Corruption::kDuplicateRanks: {
      auto config = make_safe_config(params);
      // Duplicate a random small number of ranks (≥ 1 collision).
      const std::uint32_t dups = static_cast<std::uint32_t>(
          1 + rng.below(std::max<std::uint32_t>(1, params.n / 8)));
      for (std::uint32_t d = 0; d < dups; ++d) {
        const auto from = static_cast<std::uint32_t>(rng.below(params.n));
        const auto to = static_cast<std::uint32_t>(rng.below(params.n));
        if (from == to) continue;
        config[to].rank = config[from].rank;
        config[to].sv = sv_initial_state(params, config[to].rank);
        config[to].sv.probation_timer = 0;
      }
      return config;
    }

    case Corruption::kNoLeader: {
      auto config = make_safe_config(params);
      // Shift every rank up by one; rank 1 disappears, rank 2 duplicates.
      for (Agent& a : config) {
        a.rank = std::min(a.rank + 1, params.n);
        a.sv = sv_initial_state(params, a.rank);
        a.sv.probation_timer = 0;
      }
      return config;
    }

    case Corruption::kCorruptMessages: {
      auto config = make_safe_config(params);
      // Corrupt the contents of a fraction of circulating messages held by
      // *other* agents (the governor's own copies stay tied to its
      // observations by the state-space restriction).
      for (Agent& a : config) {
        const std::uint32_t own_bucket = params.rank_in_group(a.rank) - 1;
        for (std::size_t k = 0; k < a.sv.dc.msgs.size(); ++k) {
          if (k == own_bucket) continue;
          for (Msg& msg : a.sv.dc.msgs[k]) {
            if (rng.below(4) == 0) {
              msg.content = static_cast<std::uint32_t>(
                  2 + rng.below(params.signature_space(
                          params.group_of(a.rank)) - 1));
            }
          }
        }
      }
      return config;
    }

    case Corruption::kLostMessages: {
      auto config = make_safe_config(params);
      for (Agent& a : config) {
        for (auto& bucket : a.sv.dc.msgs) {
          std::vector<Msg> kept;
          for (const Msg& msg : bucket) {
            if (rng.below(4) != 0) kept.push_back(msg);
          }
          bucket = std::move(kept);
        }
        enforce_observation_invariant(params, a);
      }
      return config;
    }

    case Corruption::kMixedGenerations: {
      auto config = make_safe_config(params);
      for (Agent& a : config) {
        a.sv.generation =
            static_cast<std::uint32_t>(rng.below(Params::kGenerations));
        a.sv.probation_timer =
            static_cast<std::uint32_t>(rng.below(params.probation_max + 1));
      }
      return config;
    }

    case Corruption::kMidRanking: {
      std::vector<Agent> config(params.n);
      for (Agent& a : config) {
        a.role = Role::kRanking;
        a.rank = static_cast<std::uint32_t>(1 + rng.below(params.n));
        a.countdown =
            static_cast<std::uint32_t>(1 + rng.below(params.countdown_max));
        a.ar = random_ar_state(params, rng);
      }
      return config;
    }

    case Corruption::kAllResetting: {
      std::vector<Agent> config(params.n);
      for (Agent& a : config) {
        a.role = Role::kResetting;
        a.rank = static_cast<std::uint32_t>(1 + rng.below(params.n));
        a.reset.reset_count =
            static_cast<std::uint32_t>(rng.below(params.reset_count_max + 1));
        a.reset.delay_timer =
            static_cast<std::uint32_t>(rng.below(params.delay_timer_max + 1));
      }
      return config;
    }

    case Corruption::kRandomStates: {
      std::vector<Agent> config(params.n);
      for (Agent& a : config) a = random_agent(params, rng);
      return config;
    }
  }
  return make_safe_config(params);
}

}  // namespace ssle::core
