// Parameters of ElectLeader_r (paper §4, Fig. 1) and all tunable constants.
//
// The protocol is strongly non-uniform: n and r are encoded in the
// transition function (Cai–Izumi–Wada show this is necessary for
// self-stabilizing leader election).  Every Θ(·) constant in the paper is
// exposed here; defaults are calibrated so the w.h.p. events hold at
// simulable population sizes (validated by the test suite and
// bench_f*_... experiments).
#pragma once

#include <cstdint>
#include <vector>

namespace ssle::core {

/// How many messages each rank governs inside its group (paper §3.1).
enum class MessageMultiplicity {
  /// Faithful to the paper: a rank in a group of size m governs 2·m²
  /// messages, so every group member holds ~2m messages of each rank.
  kFaithful,
  /// Scaled-down: 4·m messages per rank (each member holds ~4).  Same
  /// mechanism and invariants; detection latency grows, memory shrinks.
  /// Used for large-n sweeps; benches label the mode used.
  kLight,
};

struct Params {
  std::uint32_t n = 0;  ///< population size (also the rank space [n])
  std::uint32_t r = 1;  ///< trade-off parameter, 1 ≤ r ≤ n/2 (paper Thm 1.1)

  // --- PropagateReset (App. C) -------------------------------------------
  std::uint32_t reset_count_max = 0;  ///< R_max = Θ(log n)
  std::uint32_t delay_timer_max = 0;  ///< D_max = Θ(log n), ≥ R_max + Ω(log n)

  // --- ElectLeader wrapper (§4) ------------------------------------------
  std::uint32_t countdown_max = 0;  ///< C_max = Θ((n/r)·log n)

  // --- StableVerify (§5) --------------------------------------------------
  std::uint32_t probation_max = 0;  ///< P_max = c_prob·(n/r)·log n
  static constexpr std::uint32_t kGenerations = 6;  ///< generations in Z₆

  // --- AssignRanks (App. D) ------------------------------------------------
  std::uint32_t label_pool = 0;      ///< c·n/r labels per deputy, c > 1
  std::uint32_t le_count_max = 0;    ///< FastLeaderElect countdown Θ(log n)
  std::uint32_t sleep_max = 0;       ///< c_sleep·log n sleeper timer
  std::uint64_t identifier_space = 0;  ///< [n³] identifiers (App. D.2)

  // --- DetectCollision (§5.1) ----------------------------------------------
  MessageMultiplicity multiplicity = MessageMultiplicity::kFaithful;
  std::uint32_t signature_refresh = 0;  ///< resample every c_sig·log m
                                        ///< own-interactions

  // --- Ablation knobs (bench_a1; defaults are the paper's design) ----------
  /// When false, every detected ⊤ triggers a full reset (disables the §3.2
  /// soft-reset/probation mechanism).
  bool soft_reset_enabled = true;
  /// When false, BalanceLoad is skipped and messages only move by
  /// re-stamping (disables the §3.1 spreading mechanism).
  bool load_balancing_enabled = true;

  /// Builds a parameter set with calibrated default constants.
  static Params make(std::uint32_t n, std::uint32_t r,
                     MessageMultiplicity mult = MessageMultiplicity::kFaithful);

  // --- Group partition (§3.3) ----------------------------------------------
  // [n] is partitioned into num_groups contiguous blocks whose sizes differ
  // by at most one and lie in [r/2, 2r] whenever 1 ≤ r ≤ n/2.
  std::uint32_t num_groups() const { return num_groups_; }
  /// Group index of a rank in [1, n].
  std::uint32_t group_of(std::uint32_t rank) const;
  /// First rank (1-based, inclusive) of a group.
  std::uint32_t group_begin(std::uint32_t group) const;
  /// Size m of a group.
  std::uint32_t group_size(std::uint32_t group) const;
  /// Position of a rank within its group, in [1, m]  (rank_r of §5.1).
  std::uint32_t rank_in_group(std::uint32_t rank) const;

  /// Messages governed by one rank in a group of size m (the ID space).
  std::uint32_t ids_per_rank(std::uint32_t group) const;
  /// Signature space [m^5] capped to keep values in 64 bits.
  std::uint64_t signature_space(std::uint32_t group) const;
  /// Signature refresh period for a group of size m: c_sig·ceil(log2 m + 1).
  std::uint32_t signature_period(std::uint32_t group) const;

  /// ceil(log2(x)) + 1 — the "log n" used for all timer defaults.
  static std::uint32_t log2ceil(std::uint64_t x);

 private:
  std::uint32_t num_groups_ = 1;
  std::uint32_t base_size_ = 0;   ///< size of the small groups
  std::uint32_t num_large_ = 0;   ///< first num_large_ groups have size+1
};

}  // namespace ssle::core
