#include "core/propagate_reset.hpp"

#include <algorithm>
#include <tuple>

#include "core/assign_ranks.hpp"

namespace ssle::core {

void trigger_reset(const Params& params, Agent& u) {
  u.role = Role::kResetting;
  u.reset.reset_count = params.reset_count_max;
  u.reset.delay_timer = params.delay_timer_max;
  // Newly inactive fields are cleared at the end of the interaction (§4);
  // we clear them eagerly, which is observationally equivalent.
  u.ar = ArState{};
  u.sv = SvState{};
}

void reset_agent(const Params& params, Agent& u) {
  u.role = Role::kRanking;
  u.ar = ar_initial_state(params);
  u.countdown = params.countdown_max;
  u.rank = 1;
  u.reset = ResetState{};
  u.sv = SvState{};
}

void propagate_reset(const Params& params, Agent& u, Agent& v) {
  // Protocol 4 lines 1–2: infect a computing partner.
  if (u.reset.reset_count > 0 && v.role != Role::kResetting) {
    v.role = Role::kResetting;
    v.reset.reset_count = 0;
    v.reset.delay_timer = params.delay_timer_max;
    v.ar = ArState{};
    v.sv = SvState{};
  }

  // Lines 3–4: resetCount max-merges (minus one) between two resetters.
  if (v.role == Role::kResetting) {
    const std::uint32_t merged =
        std::max({u.reset.reset_count > 0 ? u.reset.reset_count - 1 : 0,
                  v.reset.reset_count > 0 ? v.reset.reset_count - 1 : 0});
    const bool u_was_positive = u.reset.reset_count > 0;
    const bool v_was_positive = v.reset.reset_count > 0;
    u.reset.reset_count = merged;
    v.reset.reset_count = merged;

    // Lines 5–11 for both agents.
    for (auto [self, other, was_positive] :
         {std::tuple<Agent*, Agent*, bool>{&u, &v, u_was_positive},
          std::tuple<Agent*, Agent*, bool>{&v, &u, v_was_positive}}) {
      if (self->role != Role::kResetting || self->reset.reset_count != 0) {
        continue;
      }
      if (was_positive) {
        // "resetCount just became 0": arm the delay timer.
        self->reset.delay_timer = params.delay_timer_max;
      } else if (self->reset.delay_timer > 0) {
        --self->reset.delay_timer;
      }
      if (self->reset.delay_timer == 0 || other->role != Role::kResetting) {
        reset_agent(params, *self);
      }
    }
  } else {
    // u is dormant (resetCount == 0) and met a computing agent: wake up
    // (Protocol 4 line 10, "j.role ≠ Resetting").
    if (u.reset.reset_count == 0) {
      reset_agent(params, u);
    }
  }
}

}  // namespace ssle::core
