#include "core/assign_ranks.hpp"

#include <algorithm>
#include <numeric>

#include "core/fast_leader_elect.hpp"

namespace ssle::core {

namespace {

bool in_le(const ArState& s) { return s.type == ArType::kLeaderElection; }

bool has_channel(const ArState& s) {
  switch (s.type) {
    case ArType::kSheriff:
    case ArType::kDeputy:
    case ArType::kRecipient:
    case ArType::kSleeper:
      return true;
    case ArType::kLeaderElection:
    case ArType::kRanked:
      return false;
  }
  return false;
}

std::uint64_t channel_sum(const ArState& s) {
  return std::accumulate(s.channel.begin(), s.channel.end(),
                         std::uint64_t{0});
}

/// Leaves leader election as the sheriff with the full badge roster
/// ("any sheriff elected ... is initiated to have a full roster of badges
/// from {1, ..., r} and its channel field all set to 0", Lemma D.3).
void become_sheriff(const Params& params, ArState& s) {
  s.type = ArType::kSheriff;
  s.low_badge = 1;
  s.high_badge = params.r;
  s.channel.assign(params.r, 0);
  s.label = {};
  // Degenerate r = 1: the sheriff itself is the only deputy.
  if (s.low_badge == s.high_badge) {
    s.type = ArType::kDeputy;
    s.deputy_id = s.low_badge;
    s.counter = 1;
    s.channel[s.deputy_id - 1] = 1;
  }
}

void become_recipient(const Params& params, ArState& s,
                      const ArState* spurred_by) {
  s.type = ArType::kRecipient;
  s.label = {};
  // Observation D.1(a): the new channel is all-zero or equal to that of the
  // agent who spurred the change.
  if (spurred_by != nullptr && has_channel(*spurred_by)) {
    s.channel = spurred_by->channel;
  } else {
    s.channel.assign(params.r, 0);
  }
}

void become_sleeper(ArState& s) {
  if (s.type == ArType::kSleeper || s.type == ArType::kRanked) return;
  // A deputy's implicit label is (id, 1); a sheriff has none (cannot occur
  // in a correct execution once Σ channel = n).
  if (s.type == ArType::kDeputy) s.label = {s.deputy_id, 1};
  s.type = ArType::kSleeper;
  s.sleep_timer = 1;
}

void become_ranked(ArState& s) {
  s.rank = rank_from_label(s);
  s.type = ArType::kRanked;
  // "After assigning itself a rank, an agent discards its remaining states."
  s.channel.clear();
  s.channel.shrink_to_fit();
  s.le = {};
  s.low_badge = s.high_badge = 0;
  s.deputy_id = s.counter = 0;
  s.sleep_timer = 0;
}

}  // namespace

ArState ar_initial_state(const Params& params) {
  (void)params;
  ArState s;
  s.type = ArType::kLeaderElection;
  s.le = fle_initial_state();
  s.rank = 1;
  return s;
}

std::uint32_t rank_from_label(const ArState& s) {
  if (!s.label.valid() || s.label.deputy > s.channel.size()) return 1;
  std::uint64_t rank = s.label.index;
  for (std::uint32_t i = 0; i + 1 < s.label.deputy; ++i) rank += s.channel[i];
  return static_cast<std::uint32_t>(rank);
}

void elect_sheriff(const Params& params, ArState& u, ArState& v,
                   util::Rng& rng) {
  if (in_le(u) && in_le(v)) {
    fle_interact(params, u.le, v.le, rng);
    for (ArState* s : {&u, &v}) {
      if (!fle_done(s->le)) continue;
      if (s->le.leader_bit) {
        become_sheriff(params, *s);
      } else {
        become_recipient(params, *s, nullptr);
      }
    }
    return;
  }
  // Exactly one agent is still in leader election (Protocol 8 lines 3–4:
  // meeting an agent that already left the black box).  Its own LECount
  // still ticks on every interaction (App. D.2).  A provable loser — its
  // minimum identifier beats its own — leaves immediately as a recipient;
  // the minimum holder keeps waiting so the unique sheriff is never lost.
  ArState& x = in_le(u) ? u : v;
  ArState& other = in_le(u) ? v : u;
  fle_activate(params, x.le, rng);
  if (!x.le.leader_done && x.le.le_count > 0) --x.le.le_count;
  if (x.le.le_count == 0) x.le.leader_done = true;
  if (x.le.leader_done) {
    x.le.leader_bit = (x.le.identifier == x.le.min_identifier);
    if (x.le.leader_bit) {
      become_sheriff(params, x);
    } else {
      become_recipient(params, x, &other);
    }
    return;
  }
  if (x.le.min_identifier < x.le.identifier) {
    become_recipient(params, x, &other);
  }
}

void deputize(const Params& params, ArState& u, ArState& v) {
  ArState& w = (u.type == ArType::kSheriff) ? u : v;  // the sheriff
  ArState& x = (u.type == ArType::kSheriff) ? v : u;  // the recipient

  x.type = ArType::kSheriff;
  x.label = {};
  if (x.channel.size() != params.r) x.channel.assign(params.r, 0);
  x.high_badge = w.high_badge;
  w.high_badge = (w.high_badge + w.low_badge) / 2;
  x.low_badge = w.high_badge + 1;

  for (ArState* z : {&x, &w}) {
    if (z->high_badge == z->low_badge) {
      z->type = ArType::kDeputy;
      z->deputy_id = z->low_badge;
      z->counter = 1;
      if (z->deputy_id >= 1 && z->deputy_id <= z->channel.size()) {
        z->channel[z->deputy_id - 1] = 1;
      }
    }
  }
}

void labeling(const Params& params, ArState& u, ArState& v) {
  ArState& w = (u.type == ArType::kDeputy) ? u : v;  // the deputy
  ArState& x = (u.type == ArType::kDeputy) ? v : u;  // unlabelled recipient

  // Labels may only be handed out once all r deputies are known to exist
  // (Protocol 10 line 1: Σ channel ≥ r).
  if (channel_sum(w) < params.r) return;
  if (w.counter < params.label_pool) {
    ++w.counter;
    if (w.deputy_id >= 1 && w.deputy_id <= w.channel.size()) {
      w.channel[w.deputy_id - 1] = w.counter;
    }
    x.label = {w.deputy_id, w.counter};
  }
}

void ar_sleep(const Params& params, ArState& u, ArState& v) {
  ArState& x = (u.type == ArType::kSleeper) ? u : v;  // a sleeping agent
  ArState& w = (u.type == ArType::kSleeper) ? v : u;  // the other

  if (w.type == ArType::kRanked) {
    become_ranked(x);
    return;
  }
  const bool u_expired = u.type == ArType::kSleeper &&
                         u.sleep_timer >= params.sleep_max;
  const bool v_expired = v.type == ArType::kSleeper &&
                         v.sleep_timer >= params.sleep_max;
  if (u_expired || v_expired) {
    become_ranked(u);
    become_ranked(v);
    return;
  }
  // Sleep spreads: the non-sleeping partner also goes to sleep.
  become_sleeper(w);
  for (ArState* s : {&u, &v}) {
    if (s->type == ArType::kSleeper) ++s->sleep_timer;
  }
}

void assign_ranks(const Params& params, ArState& u, ArState& v,
                  util::Rng& rng) {
  // Protocol 7 line 1: leader election dominates.
  if (in_le(u) || in_le(v)) {
    elect_sheriff(params, u, v, rng);
    return;
  }

  if (u.type == ArType::kSleeper || v.type == ArType::kSleeper) {
    ar_sleep(params, u, v);
  } else if ((u.type == ArType::kSheriff && v.type == ArType::kRecipient) ||
             (v.type == ArType::kSheriff && u.type == ArType::kRecipient)) {
    deputize(params, u, v);
  } else if ((u.type == ArType::kDeputy && v.type == ArType::kRecipient &&
              !v.label.valid()) ||
             (v.type == ArType::kDeputy && u.type == ArType::kRecipient &&
              !u.label.valid())) {
    labeling(params, u, v);
  }

  // Protocol 7 lines 8–9: channel max-epidemic.
  if (has_channel(u) && has_channel(v)) {
    if (u.channel.size() != v.channel.size()) {
      // Only possible from an adversarial configuration; normalize.
      u.channel.resize(params.r, 0);
      v.channel.resize(params.r, 0);
    }
    for (std::size_t i = 0; i < u.channel.size(); ++i) {
      const std::uint32_t mx = std::max(u.channel[i], v.channel[i]);
      u.channel[i] = mx;
      v.channel[i] = mx;
    }
  }

  // Protocol 7 lines 10–11: all n labels assigned → go to sleep.
  for (ArState* s : {&u, &v}) {
    if (has_channel(*s) && s->type != ArType::kSleeper &&
        channel_sum(*s) == params.n) {
      become_sleeper(*s);
    }
  }
}

}  // namespace ssle::core
