// StableVerify_r — verification wrapper with soft/hard reset arbitration
// (paper §5, Protocol 2; high-level description §3.2).
//
// Verifiers run DetectCollision_r when (and only when) their generations
// match.  When DetectCollision raises ⊤:
//   * probationTimer == 0  → *soft reset*: advance generation (mod 6),
//     re-initialize only the collision-detection state, go on probation;
//   * probationTimer > 0   → *hard reset* (TriggerReset).
// An agent one generation behind a partner adopts the newer generation
// (soft reset by epidemic) if off probation; otherwise — or if generations
// differ by ≥ 2 — a hard reset is triggered (Protocol 2 line 13).
#pragma once

#include "core/agent.hpp"
#include "core/params.hpp"
#include "util/rng.hpp"

namespace ssle::core {

/// The clean q0,SV state for an agent of the given rank: generation 0,
/// probation P_max (fresh verifiers are on probation, §3.2), and
/// DetectCollision at q0,DC.  §6 (Lemma 6.2): fresh verifiers on a correct
/// ranking never raise ⊤, so the timers tick down into C_safe.
SvState sv_initial_state(const Params& params, std::uint32_t rank);

/// Protocol 2.  One StableVerify_r interaction between verifiers u and v.
/// Hard resets are performed via trigger_reset on the corresponding Agent.
void stable_verify(const Params& params, Agent& u, Agent& v, util::Rng& rng);

/// Statistics hooks: number of soft/hard resets performed by stable_verify
/// since construction of the protocol object (collected by ElectLeader).
struct VerifyStats {
  std::uint64_t soft_resets = 0;
  std::uint64_t hard_resets = 0;
};

/// Implementation used by stable_verify; exposed for direct unit testing.
/// Returns counts of soft/hard resets performed during this interaction.
VerifyStats stable_verify_counted(const Params& params, Agent& u, Agent& v,
                                  util::Rng& rng);

}  // namespace ssle::core
