#include "core/snapshot.hpp"

#include <charconv>
#include <sstream>

namespace ssle::core {

namespace {

constexpr const char* kHeader = "ssle-snapshot v1";

void write_u64(std::ostringstream& os, const char* key, std::uint64_t v) {
  os << ' ' << key << '=' << v;
}

/// Parses "key=value" returning value; fails if the key does not match.
bool read_u64(std::istringstream& is, const char* key, std::uint64_t* out) {
  std::string token;
  if (!(is >> token)) return false;
  const std::string prefix = std::string(key) + "=";
  if (token.rfind(prefix, 0) != 0) return false;
  const char* begin = token.data() + prefix.size();
  const char* end = token.data() + token.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc{} && ptr == end;
}

bool read_u32(std::istringstream& is, const char* key, std::uint32_t* out) {
  std::uint64_t v = 0;
  if (!read_u64(is, key, &v) || v > 0xFFFFFFFFull) return false;
  *out = static_cast<std::uint32_t>(v);
  return true;
}

/// Strict uint32 parse of a whole token (from_chars: no sign, no wrap —
/// unlike std::stoul, which silently wraps "-1" to ULONG_MAX).
bool parse_u32_token(const std::string& token, std::uint32_t* out) {
  const char* begin = token.data();
  const char* end = begin + token.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc{} && ptr == end && !token.empty();
}

void write_agent(std::ostringstream& os, const Params& params,
                 const Agent& a) {
  os << "agent";
  write_u64(os, "role", static_cast<std::uint64_t>(a.role));
  write_u64(os, "rank", a.rank);
  write_u64(os, "countdown", a.countdown);
  write_u64(os, "reset_count", a.reset.reset_count);
  write_u64(os, "delay_timer", a.reset.delay_timer);
  os << '\n';

  // AssignRanks sub-state.
  os << "ar";
  write_u64(os, "type", static_cast<std::uint64_t>(a.ar.type));
  write_u64(os, "drawn", a.ar.le.drawn ? 1 : 0);
  write_u64(os, "id", a.ar.le.identifier);
  write_u64(os, "min_id", a.ar.le.min_identifier);
  write_u64(os, "le_count", a.ar.le.le_count);
  write_u64(os, "done", a.ar.le.leader_done ? 1 : 0);
  write_u64(os, "bit", a.ar.le.leader_bit ? 1 : 0);
  write_u64(os, "low", a.ar.low_badge);
  write_u64(os, "high", a.ar.high_badge);
  write_u64(os, "dep", a.ar.deputy_id);
  write_u64(os, "ctr", a.ar.counter);
  write_u64(os, "lab_d", a.ar.label.deputy);
  write_u64(os, "lab_i", a.ar.label.index);
  write_u64(os, "sleep", a.ar.sleep_timer);
  write_u64(os, "ar_rank", a.ar.rank);
  write_u64(os, "chan_n", a.ar.channel.size());
  for (const auto c : a.ar.channel) os << ' ' << c;
  os << '\n';

  // StableVerify / DetectCollision sub-state.
  os << "sv";
  write_u64(os, "gen", a.sv.generation);
  write_u64(os, "prob", a.sv.probation_timer);
  write_u64(os, "err", a.sv.dc.error ? 1 : 0);
  write_u64(os, "sig", a.sv.dc.signature);
  write_u64(os, "ctr", a.sv.dc.counter);
  write_u64(os, "obs_n", a.sv.dc.observations.size());
  for (const auto o : a.sv.dc.observations) os << ' ' << o;
  write_u64(os, "buckets", a.sv.dc.msgs.size());
  os << '\n';
  for (const auto& bucket : a.sv.dc.msgs) {
    os << "msgs n=" << bucket.size();
    for (const Msg& m : bucket) os << ' ' << m.id << ':' << m.content;
    os << '\n';
  }
  (void)params;
}

std::optional<Agent> read_agent(std::istringstream& is) {
  Agent a;
  std::string tag;
  std::uint64_t u64 = 0;
  std::uint32_t u32 = 0;

  if (!(is >> tag) || tag != "agent") return std::nullopt;
  if (!read_u64(is, "role", &u64) || u64 > 2) return std::nullopt;
  a.role = static_cast<Role>(u64);
  if (!read_u32(is, "rank", &a.rank)) return std::nullopt;
  if (!read_u32(is, "countdown", &a.countdown)) return std::nullopt;
  if (!read_u32(is, "reset_count", &a.reset.reset_count)) return std::nullopt;
  if (!read_u32(is, "delay_timer", &a.reset.delay_timer)) return std::nullopt;

  if (!(is >> tag) || tag != "ar") return std::nullopt;
  if (!read_u64(is, "type", &u64) || u64 > 5) return std::nullopt;
  a.ar.type = static_cast<ArType>(u64);
  if (!read_u64(is, "drawn", &u64)) return std::nullopt;
  a.ar.le.drawn = u64 != 0;
  if (!read_u64(is, "id", &a.ar.le.identifier)) return std::nullopt;
  if (!read_u64(is, "min_id", &a.ar.le.min_identifier)) return std::nullopt;
  if (!read_u32(is, "le_count", &a.ar.le.le_count)) return std::nullopt;
  if (!read_u64(is, "done", &u64)) return std::nullopt;
  a.ar.le.leader_done = u64 != 0;
  if (!read_u64(is, "bit", &u64)) return std::nullopt;
  a.ar.le.leader_bit = u64 != 0;
  if (!read_u32(is, "low", &a.ar.low_badge)) return std::nullopt;
  if (!read_u32(is, "high", &a.ar.high_badge)) return std::nullopt;
  if (!read_u32(is, "dep", &a.ar.deputy_id)) return std::nullopt;
  if (!read_u32(is, "ctr", &a.ar.counter)) return std::nullopt;
  if (!read_u32(is, "lab_d", &a.ar.label.deputy)) return std::nullopt;
  if (!read_u32(is, "lab_i", &a.ar.label.index)) return std::nullopt;
  if (!read_u32(is, "sleep", &a.ar.sleep_timer)) return std::nullopt;
  if (!read_u32(is, "ar_rank", &a.ar.rank)) return std::nullopt;
  if (!read_u32(is, "chan_n", &u32)) return std::nullopt;
  if (u32 > (1u << 20)) return std::nullopt;
  a.ar.channel.resize(u32);
  for (auto& c : a.ar.channel) {
    if (!(is >> c)) return std::nullopt;
  }

  if (!(is >> tag) || tag != "sv") return std::nullopt;
  if (!read_u32(is, "gen", &a.sv.generation)) return std::nullopt;
  if (!read_u32(is, "prob", &a.sv.probation_timer)) return std::nullopt;
  if (!read_u64(is, "err", &u64)) return std::nullopt;
  a.sv.dc.error = u64 != 0;
  if (!read_u32(is, "sig", &a.sv.dc.signature)) return std::nullopt;
  if (!read_u32(is, "ctr", &a.sv.dc.counter)) return std::nullopt;
  if (!read_u32(is, "obs_n", &u32)) return std::nullopt;
  if (u32 > (1u << 26)) return std::nullopt;
  a.sv.dc.observations.resize(u32);
  for (auto& o : a.sv.dc.observations) {
    if (!(is >> o)) return std::nullopt;
  }
  if (!read_u32(is, "buckets", &u32)) return std::nullopt;
  if (u32 > (1u << 20)) return std::nullopt;
  a.sv.dc.msgs.resize(u32);
  for (auto& bucket : a.sv.dc.msgs) {
    std::string line_tag;
    std::uint32_t count = 0;
    if (!(is >> line_tag) || line_tag != "msgs") return std::nullopt;
    if (!read_u32(is, "n", &count) || count > (1u << 26)) return std::nullopt;
    bucket.resize(count);
    for (Msg& m : bucket) {
      std::string pair;
      if (!(is >> pair)) return std::nullopt;
      const auto colon = pair.find(':');
      if (colon == std::string::npos) return std::nullopt;
      if (!parse_u32_token(pair.substr(0, colon), &m.id)) return std::nullopt;
      if (!parse_u32_token(pair.substr(colon + 1), &m.content)) {
        return std::nullopt;
      }
    }
  }
  return a;
}

/// Whether the stream holds nothing but whitespace from here on — the
/// trailing-garbage check that rejects extra/duplicated agent stanzas.
bool at_clean_end(std::istringstream& is) {
  std::string extra;
  return !(is >> extra);
}

}  // namespace

std::string snapshot_write(const Params& params,
                           const std::vector<Agent>& config) {
  std::ostringstream os;
  os << kHeader << " n=" << params.n << " r=" << params.r << '\n';
  for (const Agent& a : config) write_agent(os, params, a);
  return os.str();
}

std::optional<std::vector<Agent>> snapshot_read(const Params& params,
                                                const std::string& text) {
  std::istringstream is(text);
  std::string word1, word2;
  std::uint32_t n = 0, r = 0;
  if (!(is >> word1 >> word2)) return std::nullopt;
  if (word1 + " " + word2 != kHeader) return std::nullopt;
  if (!read_u32(is, "n", &n) || !read_u32(is, "r", &r)) return std::nullopt;
  if (n != params.n || r != params.r) return std::nullopt;

  std::vector<Agent> config;
  config.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    auto agent = read_agent(is);
    if (!agent) return std::nullopt;
    config.push_back(std::move(*agent));
  }
  // Exactly n stanzas: trailing content (a duplicated agent stanza, a
  // concatenated second snapshot) means the text does not describe the
  // configuration it claims to.
  if (!at_clean_end(is)) return std::nullopt;
  return config;
}

std::string snapshot_write_agent(const Agent& a) {
  std::ostringstream os;
  write_agent(os, Params{}, a);
  return os.str();
}

std::optional<Agent> snapshot_read_agent(const std::string& text) {
  std::istringstream is(text);
  auto agent = read_agent(is);
  if (!agent || !at_clean_end(is)) return std::nullopt;
  return agent;
}

}  // namespace ssle::core
