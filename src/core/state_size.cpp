#include "core/state_size.hpp"

#include <algorithm>
#include <cmath>

namespace ssle::core {

namespace {

double log2d(double x) { return x > 1.0 ? std::log2(x) : 0.0; }

/// Index of the largest group (group 0 by construction).
constexpr std::uint32_t kLargestGroup = 0;

}  // namespace

double bits_propagate_reset(const Params& params) {
  return log2d(params.reset_count_max + 1.0) +
         log2d(params.delay_timer_max + 1.0);
}

double bits_fast_leader_elect(const Params& params) {
  const double id_space = static_cast<double>(params.identifier_space);
  return 2.0 * log2d(id_space) + log2d(params.le_count_max + 1.0) + 2.0;
}

double bits_assign_ranks(const Params& params) {
  const double pool = params.label_pool + 1.0;
  // Per-type unique fields; the state space is the disjoint union, so its
  // bit complexity is ~ bits of the largest type.
  const double sheriff = 2.0 * log2d(params.r + 1.0);
  const double deputy = log2d(params.r + 1.0) + log2d(pool);
  const double recipient = log2d(params.r + 1.0) + log2d(pool);  // label
  const double sleeper = recipient + log2d(params.sleep_max + 1.0);
  const double channel = static_cast<double>(params.r) * log2d(pool);
  const double biggest =
      std::max({bits_fast_leader_elect(params), sheriff, deputy, sleeper});
  return biggest + channel + log2d(params.n + 1.0);  // + rank
}

double bits_detect_collision(const Params& params) {
  const double m = params.group_size(kLargestGroup);
  const double ids = params.ids_per_rank(kLargestGroup);
  const double sig_space =
      static_cast<double>(params.signature_space(kLargestGroup));
  const double signature = log2d(sig_space);
  const double counter = log2d(params.signature_period(kLargestGroup) + 1.0);
  // msgs: Fig. 3 counts (2r⁸)^(2r²) — one slot per *held* message (an agent
  // holds ids_per_rank = 2m² messages: a slice of ids/m for each of the m
  // ranks), each slot encoding (rank, ID, content) ∈ [m · ids · sig_space].
  const double slot = log2d(m * ids) + log2d(sig_space + 1.0);
  const double msgs = ids * slot;
  const double observations = ids * log2d(sig_space);
  return signature + counter + msgs + observations;
}

double bits_stable_verify(const Params& params) {
  return log2d(Params::kGenerations) + log2d(params.probation_max + 1.0) +
         bits_detect_collision(params);
}

double bits_elect_leader(const Params& params) {
  const double role = 2.0;
  const double resetting = bits_propagate_reset(params) +
                           log2d(params.countdown_max + 1.0);
  const double ranking = bits_assign_ranks(params) +
                         log2d(params.countdown_max + 1.0);
  const double verifying = bits_stable_verify(params) +
                           log2d(params.n + 1.0);
  return role + std::max({resetting, ranking, verifying});
}

double bits_ssr_baseline(std::uint32_t n) {
  const double name_space = 3.0 * log2d(n);       // a name in [n³]
  return name_space + static_cast<double>(n) * name_space;  // own + set
}

double bits_ciw(std::uint32_t n) { return log2d(n); }

}  // namespace ssle::core
