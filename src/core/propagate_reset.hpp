// PropagateReset — the epidemic hard-reset mechanism of Burman et al.
// (paper App. C, Protocols 4–6, Lemma C.1 / Theorem C.2 / Corollary C.3).
//
// A triggered agent carries resetCount = R_max and infects computing
// agents; counts max-merge and decrement, so within O(n log n)
// interactions the population is *fully dormant* (all resetting,
// resetCount = 0, delayTimer armed).  Dormant agents count delayTimer
// down and then *awaken* via Reset(·) into the Ranking role; computing
// agents also wake dormant agents on contact.
#pragma once

#include "core/agent.hpp"
#include "core/params.hpp"

namespace ssle::core {

/// Protocol 5: TriggerReset(u) — u becomes a triggered resetter.
void trigger_reset(const Params& params, Agent& u);

/// Protocol 6: Reset(u) — (re-)initializes u as a clean ranker
/// (role = Ranking, qAR = q0,AR, countdown = C_max).
void reset_agent(const Params& params, Agent& u);

/// Protocol 4: one PropagateReset interaction; requires u.role == Resetting.
void propagate_reset(const Params& params, Agent& u, Agent& v);

/// True iff the agent is dormant: resetting with resetCount = 0.
inline bool is_dormant(const Agent& a) {
  return a.role == Role::kResetting && a.reset.reset_count == 0;
}

/// True iff the agent is computing (not resetting).
inline bool is_computing(const Agent& a) { return a.role != Role::kResetting; }

}  // namespace ssle::core
