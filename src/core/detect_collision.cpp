#include "core/detect_collision.hpp"

#include <algorithm>
#include <cassert>

namespace ssle::core {

namespace {

/// Index of `rank` within its group, 0-based, for msgs bucket addressing.
std::uint32_t bucket_of(const Params& params, std::uint32_t rank) {
  return params.rank_in_group(rank) - 1;
}

}  // namespace

DcState dc_initial_state(const Params& params, std::uint32_t rank) {
  const std::uint32_t group = params.group_of(rank);
  const std::uint32_t m = params.group_size(group);
  const std::uint32_t ids = params.ids_per_rank(group);
  const std::uint32_t pos = params.rank_in_group(rank);  // 1-based

  DcState s;
  s.signature = 1;
  s.counter = 1;
  s.observations.assign(ids, 1);
  s.msgs.assign(m, {});

  // Pre-mixed slice: agent at position pos holds IDs
  // [(pos-1)·slice + 1, pos·slice] of every rank of its group, where
  // slice = ids / m (the last position also takes the remainder IDs).
  const std::uint32_t slice = ids / m;
  const std::uint32_t lo = (pos - 1) * slice + 1;
  const std::uint32_t hi = (pos == m) ? ids : pos * slice;
  for (std::uint32_t k = 0; k < m; ++k) {
    auto& bucket = s.msgs[k];
    bucket.reserve(hi - lo + 1);
    for (std::uint32_t j = lo; j <= hi; ++j) bucket.push_back({j, 1});
  }
  return s;
}

bool dc_obvious_collision(const Params& params, std::uint32_t rank_u,
                          const DcState& u, std::uint32_t rank_v,
                          const DcState& v) {
  if (rank_u == rank_v) return true;
  const std::uint32_t m = params.group_size(params.group_of(rank_u));
  // Two copies of the same circulating message (same governing rank, same
  // ID) held by u and v simultaneously.
  for (std::uint32_t k = 0; k < m; ++k) {
    if (k >= u.msgs.size() || k >= v.msgs.size()) break;
    const auto& a = u.msgs[k];
    const auto& b = v.msgs[k];
    std::size_t i = 0, j = 0;
    while (i < a.size() && j < b.size()) {
      if (a[i].id == b[j].id) return true;
      if (a[i].id < b[j].id) {
        ++i;
      } else {
        ++j;
      }
    }
  }
  return false;
}

void check_message_consistency(const Params& params, std::uint32_t rank_u,
                               DcState& u, DcState& v) {
  const std::uint32_t k = bucket_of(params, rank_u);
  if (k >= v.msgs.size()) return;
  for (const Msg& msg : v.msgs[k]) {
    const std::uint32_t j = msg.id - 1;
    if (j < u.observations.size() && msg.content != u.observations[j]) {
      u.error = true;
      v.error = true;
      return;
    }
  }
}

void update_messages(const Params& params, std::uint32_t rank_u, DcState& u,
                     DcState& v, util::Rng& rng) {
  const std::uint32_t group = params.group_of(rank_u);
  const std::uint32_t k = bucket_of(params, rank_u);

  // Protocol 13 lines 1–8: refresh the signature every c_sig·log m of u's
  // own interactions and restamp u's held copies of its own messages.
  ++u.counter;
  if (u.counter >= params.signature_period(group)) {
    u.signature = static_cast<std::uint32_t>(
        1 + rng.below(params.signature_space(group)));
    u.counter = 1;
    if (k < u.msgs.size()) {
      for (Msg& msg : u.msgs[k]) {
        msg.content = u.signature;
        const std::uint32_t j = msg.id - 1;
        if (j < u.observations.size()) u.observations[j] = u.signature;
      }
    }
  }

  // Protocol 13 lines 9–12: restamp v's messages governed by u's rank with
  // u's current signature, recording the new contents in u's observations.
  if (k < v.msgs.size()) {
    for (Msg& msg : v.msgs[k]) {
      msg.content = u.signature;
      const std::uint32_t j = msg.id - 1;
      if (j < u.observations.size()) u.observations[j] = u.signature;
    }
  }
}

void balance_load(const Params& params, std::uint32_t rank_u, DcState& u,
                  DcState& v) {
  const std::uint32_t m = params.group_size(params.group_of(rank_u));
  std::uint64_t u_total = 0;
  std::uint64_t v_total = 0;

  // Processed per rank of the group; inside a rank, runs of equal content
  // in the ID-sorted merged list form the (rank, content) classes of
  // Protocol 14, which are split ⌈·/2⌉ / ⌊·/2⌋ between the two agents,
  // the ceiling going to the currently lighter agent.
  std::vector<Msg> merged;
  for (std::uint32_t k = 0; k < m; ++k) {
    if (k >= u.msgs.size() || k >= v.msgs.size()) break;
    auto& a = u.msgs[k];
    auto& b = v.msgs[k];
    if (a.empty() && b.empty()) continue;

    merged.clear();
    merged.reserve(a.size() + b.size());
    std::merge(a.begin(), a.end(), b.begin(), b.end(),
               std::back_inserter(merged));
    a.clear();
    b.clear();

    // Group by content.  The merged list is sorted by ID; we bucket the
    // class members by content while preserving ID order within a class.
    // Classes are processed in order of first appearance (deterministic).
    std::vector<std::pair<std::uint32_t, std::vector<Msg>>> classes;
    for (const Msg& msg : merged) {
      auto it = std::find_if(classes.begin(), classes.end(),
                             [&](const auto& c) { return c.first == msg.content; });
      if (it == classes.end()) {
        classes.push_back({msg.content, {msg}});
      } else {
        it->second.push_back(msg);
      }
    }

    for (auto& [content, members] : classes) {
      const std::size_t ceil_half = (members.size() + 1) / 2;
      // "one agent receives the first half and the other the second half";
      // the larger share goes to whichever agent currently holds fewer
      // messages (keeps per-agent totals balanced, cf. §3.1).
      auto& first = (u_total <= v_total) ? a : b;
      auto& second = (u_total <= v_total) ? b : a;
      for (std::size_t i = 0; i < members.size(); ++i) {
        ((i < ceil_half) ? first : second).push_back(members[i]);
      }
      if (u_total <= v_total) {
        u_total += ceil_half;
        v_total += members.size() - ceil_half;
      } else {
        v_total += ceil_half;
        u_total += members.size() - ceil_half;
      }
    }
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
  }
}

std::uint64_t dc_message_count(const DcState& u) {
  std::uint64_t total = 0;
  for (const auto& bucket : u.msgs) total += bucket.size();
  return total;
}

void detect_collision(const Params& params, std::uint32_t rank_u, DcState& u,
                      std::uint32_t rank_v, DcState& v, util::Rng& rng) {
  // Protocol 3 line 1–2: only same-group agents interact non-trivially.
  if (params.group_of(rank_u) != params.group_of(rank_v)) return;
  if (u.error || v.error) {
    // ⊤ is absorbing within DetectCollision; the StableVerify wrapper is
    // responsible for reacting to it (Protocol 2 lines 5–8).
    u.error = v.error = true;
    return;
  }

  // Lines 3–4: obvious collision — shared rank or duplicated message.
  if (dc_obvious_collision(params, rank_u, u, rank_v, v)) {
    u.error = v.error = true;
    return;
  }

  // Line 5: mutual consistency checks (may raise ⊤).
  check_message_consistency(params, rank_u, u, v);
  check_message_consistency(params, rank_v, v, u);
  if (u.error || v.error) {
    u.error = v.error = true;
    return;
  }

  // Lines 6–7: restamp + spread.
  update_messages(params, rank_u, u, v, rng);
  update_messages(params, rank_v, v, u, rng);
  if (params.load_balancing_enabled) {
    balance_load(params, rank_u, u, v);
  }
}

}  // namespace ssle::core
