// Derandomization of the transition function (paper App. B, Lemma B.1).
//
// Population-protocol transition functions are deterministic; the only
// randomness is the scheduler.  Each agent keeps
//   * Coin ∈ {0,1}  — flipped to its complement on every interaction,
//   * Coins[log N]  — a ring buffer of the partner coins observed in the
//     last log N interactions,
//   * CoinCount ∈ Z_{log N} — the ring-buffer cursor.
// After log N activations the buffer holds log N fresh partner-coin bits;
// Berenbrink–Friedetzky–Kaaser–Kling show the coin population stays within
// (1/2 ± 1/(10 log N))·n of balance w.h.p., so the assembled value x ∈ [N]
// satisfies P[x = v] ∈ [1/(2N), 2/N] — exactly the paper's "almost u.a.r."
// requirement from §1.1.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace ssle::core {

class SyntheticCoin {
 public:
  /// `value_space` is N: samples are assembled from ceil(log2 N) bits.
  explicit SyntheticCoin(std::uint64_t value_space);

  /// The agent's own alternating coin, to be shown to partners.
  bool coin() const { return coin_; }

  /// One interaction: flip own coin, record the partner's shown coin.
  void observe(bool partner_coin);

  /// True once the ring buffer has been fully refreshed since the last
  /// sample was taken (Lemma B.1 property 2).
  bool ready() const { return fresh_bits_ >= bits_; }

  /// Assembles the buffered bits into a value in [1, N] (rejection-free:
  /// the bit pattern is folded modulo N, preserving near-uniformity up to
  /// the factor-2 slack the paper allows).  Marks the buffer stale.
  std::uint64_t sample();

  std::uint32_t bits() const { return bits_; }

  /// Full-state equality (coin, buffer, cursor, freshness): two coins are
  /// equal iff they produce identical futures under identical inputs —
  /// what count-based lumping needs to be exact for protocols whose δ
  /// reads the coin.
  friend bool operator==(const SyntheticCoin&, const SyntheticCoin&) = default;

  /// Hash over exactly the fields operator== compares.
  std::size_t hash() const {
    std::size_t h = value_space_;
    h = h * 0x9e3779b97f4a7c15ULL + bits_;
    h = h * 0x9e3779b97f4a7c15ULL + static_cast<std::size_t>(coin_);
    std::size_t packed = 0;
    for (std::uint32_t i = 0; i < bits_; ++i) {
      packed = (packed << 1) | static_cast<std::size_t>(buffer_[i]);
    }
    h = h * 0x9e3779b97f4a7c15ULL + packed;
    h = h * 0x9e3779b97f4a7c15ULL + cursor_;
    h = h * 0x9e3779b97f4a7c15ULL + fresh_bits_;
    return h;
  }

 private:
  std::uint64_t value_space_;
  std::uint32_t bits_;
  bool coin_ = false;
  std::vector<bool> buffer_;
  std::uint32_t cursor_ = 0;      ///< CoinCount
  std::uint32_t fresh_bits_ = 0;  ///< bits recorded since last sample()
};

}  // namespace ssle::core
