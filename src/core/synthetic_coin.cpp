#include "core/synthetic_coin.hpp"

#include <algorithm>

namespace ssle::core {

SyntheticCoin::SyntheticCoin(std::uint64_t value_space)
    : value_space_(std::max<std::uint64_t>(2, value_space)) {
  bits_ = 0;
  std::uint64_t p = 1;
  while (p < value_space_) {
    p <<= 1;
    ++bits_;
  }
  bits_ = std::max<std::uint32_t>(1, bits_);
  buffer_.assign(bits_, false);
}

void SyntheticCoin::observe(bool partner_coin) {
  coin_ = !coin_;  // Eq. (4): Coin ← 1 − Coin
  buffer_[cursor_] = partner_coin;                  // Eq. (6)–(7)
  cursor_ = (cursor_ + 1) % bits_;                  // Eq. (5)
  fresh_bits_ = std::min(fresh_bits_ + 1, bits_);
}

std::uint64_t SyntheticCoin::sample() {
  std::uint64_t x = 0;
  for (std::uint32_t i = 0; i < bits_; ++i) {
    x = (x << 1) | static_cast<std::uint64_t>(buffer_[i]);
  }
  fresh_bits_ = 0;
  return 1 + (x % value_space_);
}

}  // namespace ssle::core
