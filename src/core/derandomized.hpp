// DerandomizedElectLeader — ElectLeader_r with a *deterministic* transition
// function (paper App. B, Lemma B.1).
//
// Population-protocol transition functions are formally deterministic; the
// probabilistic presentation of the protocols is a convenience.  Appendix B
// derandomizes them with synthetic coins: every agent carries an
// alternating Coin plus a ring buffer of the partner coins seen in its last
// log N interactions.  Those harvested bits are (almost) uniform because
// the *scheduler* is random.
//
// Here each agent's state is (Agent, SyntheticCoin); an interaction
//   1. exchanges and records the partners' coins (Eqs. 4–7),
//   2. derives the interaction's random draws from the two coin buffers
//      (a deterministic function of the joint state), and
//   3. runs the ordinary ElectLeader_r transition with those draws.
// The resulting δ is a pure function (State × State) → (State × State):
// replaying the same interaction sequence reproduces the run bit-for-bit,
// and all entropy originates from the uniformly random scheduler.
#pragma once

#include <cstdint>

#include "core/elect_leader.hpp"
#include "core/synthetic_coin.hpp"

namespace ssle::core {

class DerandomizedElectLeader {
 public:
  struct State {
    Agent agent;
    SyntheticCoin coin;
    /// Full-state equality, coin included: δ reads and mutates the coin,
    /// so count-based lumping is only exact if class identity
    /// distinguishes coin states too (two agents with equal Agent parts
    /// but different coin buffers have different futures).
    friend bool operator==(const State&, const State&) = default;
  };

  /// δ is a pure function (State × State) → (State × State) — all entropy
  /// comes from the scheduler — so the batched engine may apply one
  /// transition result to a whole same-pair block and memoize transitions
  /// as an (id, id) → (id, id) lookup over interned class ids
  /// (pp/delta_cache.hpp).  This is the protocol the memoized path exists
  /// for: the paper's formally-deterministic presentation of ElectLeader_r.
  static constexpr bool kDeterministicInteract = true;

  /// Wraps an Agent with this protocol's initial synthetic coin for the
  /// population slot `index` (parity-staggered so the coin population
  /// starts balanced).  initial_state and the benches' adversarial-start
  /// construction share this, so the stagger rule lives in one place.
  static State wrap_agent(Agent agent, const Params& params,
                          std::uint32_t index);

  explicit DerandomizedElectLeader(Params params);

  std::uint32_t population_size() const { return inner_.population_size(); }
  const Params& params() const { return inner_.params(); }

  State initial_state(std::uint32_t agent) const;

  /// Deterministic: ignores the engine RNG entirely (it is required by the
  /// pp::Protocol concept but never advanced).
  void interact(State& u, State& v, util::Rng& engine_rng) const;

  static bool is_leader(const State& s) {
    return ElectLeader::is_leader(s.agent);
  }

 private:
  ElectLeader inner_;
};

}  // namespace ssle::core

/// Hashes exactly what operator== compares (Agent AND coin), so equal
/// states hash equal.  Switches
/// pp::CountsConfiguration<DerandomizedElectLeader> onto the interner's
/// O(1) hash-indexed path — without this the registry falls back to O(q)
/// linear scans, which is untenable at the q ≈ n scales the memoized
/// transition cache targets.
template <>
struct std::hash<ssle::core::DerandomizedElectLeader::State> {
  std::size_t operator()(
      const ssle::core::DerandomizedElectLeader::State& s) const noexcept {
    std::size_t h = ssle::core::hash_value(s.agent);
    ssle::util::hash_mix(h, s.coin.hash());
    return h;
  }
};
