// DerandomizedElectLeader — ElectLeader_r with a *deterministic* transition
// function (paper App. B, Lemma B.1).
//
// Population-protocol transition functions are formally deterministic; the
// probabilistic presentation of the protocols is a convenience.  Appendix B
// derandomizes them with synthetic coins: every agent carries an
// alternating Coin plus a ring buffer of the partner coins seen in its last
// log N interactions.  Those harvested bits are (almost) uniform because
// the *scheduler* is random.
//
// Here each agent's state is (Agent, SyntheticCoin); an interaction
//   1. exchanges and records the partners' coins (Eqs. 4–7),
//   2. derives the interaction's random draws from the two coin buffers
//      (a deterministic function of the joint state), and
//   3. runs the ordinary ElectLeader_r transition with those draws.
// The resulting δ is a pure function (State × State) → (State × State):
// replaying the same interaction sequence reproduces the run bit-for-bit,
// and all entropy originates from the uniformly random scheduler.
#pragma once

#include <cstdint>

#include "core/elect_leader.hpp"
#include "core/synthetic_coin.hpp"

namespace ssle::core {

class DerandomizedElectLeader {
 public:
  struct State {
    Agent agent;
    SyntheticCoin coin;
    friend bool operator==(const State& a, const State& b) {
      return a.agent == b.agent;  // coins are auxiliary randomness state
    }
  };

  explicit DerandomizedElectLeader(Params params);

  std::uint32_t population_size() const { return inner_.population_size(); }
  const Params& params() const { return inner_.params(); }

  State initial_state(std::uint32_t agent) const;

  /// Deterministic: ignores the engine RNG entirely (it is required by the
  /// pp::Protocol concept but never advanced).
  void interact(State& u, State& v, util::Rng& engine_rng) const;

  static bool is_leader(const State& s) {
    return ElectLeader::is_leader(s.agent);
  }

 private:
  ElectLeader inner_;
};

}  // namespace ssle::core
