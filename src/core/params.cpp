#include "core/params.hpp"

#include <algorithm>
#include <cassert>

namespace ssle::core {

std::uint32_t Params::log2ceil(std::uint64_t x) {
  std::uint32_t l = 0;
  std::uint64_t p = 1;
  while (p < x) {
    p <<= 1;
    ++l;
  }
  return l + 1;
}

Params Params::make(std::uint32_t n, std::uint32_t r,
                    MessageMultiplicity mult) {
  assert(n >= 2);
  Params p;
  p.n = n;
  p.r = std::max<std::uint32_t>(1, std::min(r, n / 2));
  p.multiplicity = mult;

  const std::uint32_t L = log2ceil(n);           // "log n"
  const std::uint32_t nr = (n + p.r - 1) / p.r;  // ceil(n/r)

  // PropagateReset: R_max = Θ(log n), D_max = Ω(log n + R_max)  (Cor. C.3).
  p.reset_count_max = 8 * L;
  p.delay_timer_max = p.reset_count_max + 8 * L;

  // Countdown C_max = Θ((n/r)·log n), large enough that AssignRanks becomes
  // silent long before it expires w.h.p. (Lemma 6.2 proof).
  p.countdown_max = 24 * nr * L;

  // Probation P_max = c_prob·(n/r)·log n (§5 state space).
  p.probation_max = 24 * nr * L;

  // AssignRanks: deputy pools of c·n/r labels with c = 2 (App. D), the
  // FastLeaderElect countdown (c > 14 in Lemma D.10's proof; we use 16·L),
  // sleeper timer c_sleep·log n, and identifiers from [n³].
  p.label_pool = std::max<std::uint32_t>(2, (2 * n + p.r - 1) / p.r);
  p.le_count_max = 16 * L;
  p.sleep_max = 16 * L;
  p.identifier_space = static_cast<std::uint64_t>(n) * n * n;

  p.signature_refresh = 8;  // c_sig: period = c_sig·log2ceil(m) interactions

  // Group partition: contiguous blocks with near-equal sizes.  num_groups =
  // max(1, floor(n/r)) gives sizes in [r, 2r); using ceil-split sizes differ
  // by at most 1 and all lie in [r/2, 2r] for 1 ≤ r ≤ n/2.
  p.num_groups_ = std::max<std::uint32_t>(1, n / p.r);
  p.base_size_ = n / p.num_groups_;
  p.num_large_ = n % p.num_groups_;
  return p;
}

std::uint32_t Params::group_of(std::uint32_t rank) const {
  assert(rank >= 1 && rank <= n);
  const std::uint32_t idx = rank - 1;
  const std::uint32_t large_span = num_large_ * (base_size_ + 1);
  if (idx < large_span) return idx / (base_size_ + 1);
  return num_large_ + (idx - large_span) / base_size_;
}

std::uint32_t Params::group_begin(std::uint32_t group) const {
  assert(group < num_groups_);
  if (group <= num_large_) {
    return group * (base_size_ + 1) + 1;
  }
  return num_large_ * (base_size_ + 1) +
         (group - num_large_) * base_size_ + 1;
}

std::uint32_t Params::group_size(std::uint32_t group) const {
  assert(group < num_groups_);
  return group < num_large_ ? base_size_ + 1 : base_size_;
}

std::uint32_t Params::rank_in_group(std::uint32_t rank) const {
  return rank - group_begin(group_of(rank)) + 1;
}

std::uint32_t Params::ids_per_rank(std::uint32_t group) const {
  const std::uint32_t m = group_size(group);
  switch (multiplicity) {
    case MessageMultiplicity::kFaithful:
      return std::max<std::uint32_t>(2, 2 * m * m);
    case MessageMultiplicity::kLight:
      return std::max<std::uint32_t>(2, 4 * m);
  }
  return 2 * m * m;
}

std::uint64_t Params::signature_space(std::uint32_t group) const {
  const auto m = static_cast<std::uint64_t>(group_size(group));
  // [m^5] as in Fig. 3; floored at 2^20 so tiny groups still have collision
  // probability o(1) per draw (the paper's bound needs only poly(m) space),
  // and capped at 2^32−1 because message contents are stored as uint32.
  std::uint64_t s = m * m * m * m * m;
  s = std::max<std::uint64_t>(s, 1ull << 20);
  return std::min<std::uint64_t>(s, 0xFFFFFFFFull);
}

std::uint32_t Params::signature_period(std::uint32_t group) const {
  return std::max<std::uint32_t>(2,
                                 signature_refresh * log2ceil(group_size(group)));
}

}  // namespace ssle::core
