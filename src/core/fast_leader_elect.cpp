#include "core/fast_leader_elect.hpp"

#include <algorithm>

namespace ssle::core {

FastLeState fle_initial_state() { return FastLeState{}; }

void fle_activate(const Params& params, FastLeState& s, util::Rng& rng) {
  if (s.drawn) return;
  s.drawn = true;
  s.identifier = 1 + rng.below(params.identifier_space);
  s.min_identifier = s.identifier;
  s.le_count = params.le_count_max;
}

namespace {

void fle_finish_if_due(FastLeState& s) {
  if (s.leader_done || s.le_count > 0) return;
  s.leader_done = true;
  s.leader_bit = (s.identifier == s.min_identifier);
}

}  // namespace

void fle_interact(const Params& params, FastLeState& u, FastLeState& v,
                  util::Rng& rng) {
  fle_activate(params, u, rng);
  fle_activate(params, v, rng);

  const std::uint64_t min_id = std::min(u.min_identifier, v.min_identifier);
  u.min_identifier = min_id;
  v.min_identifier = min_id;

  for (FastLeState* s : {&u, &v}) {
    if (!s->leader_done && s->le_count > 0) --s->le_count;
    fle_finish_if_due(*s);
  }
}

}  // namespace ssle::core
