// Adversarial initial configurations for exercising self-stabilization.
//
// Self-stabilization quantifies over *every* configuration in Q^n
// (§1.1).  This module generates structured corruption classes (the
// failure modes the paper's analysis distinguishes, cf. the recovery
// hierarchy Ĉ0 ⊃ ... ⊃ Ĉ5 of Lemma 6.3) plus unstructured random states.
// All generated states respect the formal state space, including the
// restriction that an agent's own held messages match its observations
// (§5.1: "we can circumvent it by definition").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/agent.hpp"
#include "core/params.hpp"
#include "util/rng.hpp"

namespace ssle::core {

enum class Corruption {
  kNone,              ///< the clean safe configuration (control)
  kDuplicateRanks,    ///< correct-looking ranking with duplicated ranks
  kNoLeader,          ///< ranking shifted so no agent has rank 1
  kCorruptMessages,   ///< correct ranking, corrupted circulating contents
  kLostMessages,      ///< correct ranking, some messages dropped
  kMixedGenerations,  ///< correct ranking, random generations/probation
  kMidRanking,        ///< all agents in random AssignRanks states
  kAllResetting,      ///< all agents resetting with random counters
  kRandomStates,      ///< unstructured: every field randomized
};

/// All corruption classes, for parameterized sweeps.
std::vector<Corruption> all_corruptions();
std::string corruption_name(Corruption c);

/// A correct, quiescent configuration: verifiers ranked 1..n, generation 0,
/// probation 0, message system at q0,DC.  Satisfies is_safe_configuration.
std::vector<Agent> make_safe_config(const Params& params);

/// A configuration of the given corruption class.
std::vector<Agent> make_adversarial_config(const Params& params, Corruption c,
                                           util::Rng& rng);

/// Fully random single agent state (used by kRandomStates and fuzz tests).
Agent random_agent(const Params& params, util::Rng& rng);

}  // namespace ssle::core
