#include "core/elect_leader.hpp"

#include <algorithm>

#include "core/assign_ranks.hpp"
#include "core/propagate_reset.hpp"
#include "core/stable_verify.hpp"

namespace ssle::core {

ElectLeader::State ElectLeader::initial_state(std::uint32_t agent) const {
  (void)agent;
  Agent a;
  reset_agent(params_, a);
  return a;
}

void ElectLeader::interact(State& u, State& v, util::Rng& rng) const {
  // Protocol 1 lines 1–2: resetters run PropagateReset (which may turn the
  // partner into a resetter, or resetters into rankers); then fall through.
  if (u.role == Role::kResetting) {
    propagate_reset(params_, u, v);
  } else if (v.role == Role::kResetting) {
    propagate_reset(params_, v, u);
  }

  // Lines 3–5: two rankers execute AssignRanks_r and tick their countdowns.
  if (u.role == Role::kRanking && v.role == Role::kRanking) {
    assign_ranks(params_, u.ar, v.ar, rng);
    if (u.countdown > 0) --u.countdown;
    if (v.countdown > 0) --v.countdown;
  }

  // Lines 6–8: rankers become verifiers when the countdown expires or by
  // epidemic from a verifier, carrying their computed rank into the global
  // rank field and entering StableVerify at q0,SV.
  for (auto [self, other] : {std::pair<Agent*, Agent*>{&u, &v},
                             std::pair<Agent*, Agent*>{&v, &u}}) {
    if (self->role == Role::kRanking &&
        (self->countdown == 0 || other->role == Role::kVerifying)) {
      self->role = Role::kVerifying;
      // The state space restricts rank to [n] (Fig. 1); clamp enforces this
      // for ranks computed from adversarially initialized channels.
      self->rank = std::clamp<std::uint32_t>(self->ar.rank, 1, params_.n);
      self->sv = sv_initial_state(params_, self->rank);
      self->ar = ArState{};
    }
  }

  // Lines 9–10: two verifiers execute StableVerify_r.
  if (u.role == Role::kVerifying && v.role == Role::kVerifying) {
    stable_verify(params_, u, v, rng);
  }
}

}  // namespace ssle::core
