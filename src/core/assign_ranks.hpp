// AssignRanks_r — the parameterized, non-self-stabilizing ranking protocol
// (App. D, Protocols 7–11, Lemma D.1).
//
// Pipeline, starting from a dormant configuration:
//   1. FastLeaderElect nominates a unique *sheriff* holding badges [1, r].
//   2. The sheriff repeatedly deputizes recipients, halving its badge
//      range (Protocol 9); a badge range of size one makes a *deputy*.
//   3. Once all r deputies exist (every channel entry ≥ 1, i.e. the
//      channel sum is ≥ r), deputies hand out labels (id, counter) from a
//      pool of c·n/r (Protocol 10); assigned counts spread via the
//      channel[] max-epidemic.
//   4. When an agent hears Σ channel = n it *sleeps* for c_sleep·log n of
//      its own interactions (Protocol 11), then picks the rank given by
//      the lexicographic position of its label and becomes silent.
//
// Lemma D.1: unique ranks in [n] within c·(n²/r)·log n interactions w.h.p.
// from any dormant configuration, using 2^{O(r log n)} states, silent.
#pragma once

#include "core/agent.hpp"
#include "core/params.hpp"
#include "util/rng.hpp"

namespace ssle::core {

/// The clean q0,AR state: in leader election, identifier not yet drawn.
ArState ar_initial_state(const Params& params);

/// Protocol 7.  One AssignRanks_r interaction.
void assign_ranks(const Params& params, ArState& u, ArState& v,
                  util::Rng& rng);

/// Protocol 8.  Leader-election step / exit into the labelled world.
void elect_sheriff(const Params& params, ArState& u, ArState& v,
                   util::Rng& rng);

/// Protocol 9.  Sheriff splits its badge range with a recipient.
void deputize(const Params& params, ArState& u, ArState& v);

/// Protocol 10.  A deputy labels an unlabelled recipient.
void labeling(const Params& params, ArState& u, ArState& v);

/// Protocol 11.  Sleep/wake logic; ranked agents wake sleepers.
void ar_sleep(const Params& params, ArState& u, ArState& v);

/// Rank derived from a complete channel and a label (pre-agreed bijection:
/// rank = Σ_{i < deputy} channel[i] + index).  Invalid labels map to 1.
std::uint32_t rank_from_label(const ArState& s);

/// True once AssignRanks is silent for this agent.
inline bool ar_ranked(const ArState& s) { return s.type == ArType::kRanked; }

}  // namespace ssle::core
