// Agent state of ElectLeader_r (paper §4, Fig. 1–3).
//
// The paper stores, per role, only the "active" fields and takes the state
// space as the disjoint union of the roles' cross-products.  The simulation
// keeps all sub-records in one struct and resets newly-inactive fields on
// every role change; state-space *size* accounting (which is what the
// paper's bounds are about) lives in core/state_size.*.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "util/hash.hpp"

namespace ssle::core {

// ---------------------------------------------------------------------------
// PropagateReset fields (App. C, Protocol 4/5/6)
// ---------------------------------------------------------------------------
struct ResetState {
  std::uint32_t reset_count = 0;  ///< resetCount ∈ {0, ..., R_max}
  std::uint32_t delay_timer = 0;  ///< delayTimer ∈ {0, ..., D_max}
  friend bool operator==(const ResetState&, const ResetState&) = default;
};

// ---------------------------------------------------------------------------
// AssignRanks_r fields (App. D, Protocols 7–11) including the embedded
// FastLeaderElect (App. D.2, Fig. 4)
// ---------------------------------------------------------------------------
enum class ArType : std::uint8_t {
  kLeaderElection,  ///< running FastLeaderElect
  kSheriff,         ///< holds a badge range [lowBadge, highBadge]
  kDeputy,          ///< holds a single badge = deputy id
  kRecipient,       ///< waiting for / holding a label
  kSleeper,         ///< waiting c_sleep·log n interactions before ranking
  kRanked,          ///< final: rank chosen, AssignRanks is silent
};

/// Temporary label (deputy id, counter value); deputy == 0 means ⊥.
struct Label {
  std::uint32_t deputy = 0;
  std::uint32_t index = 0;
  bool valid() const { return deputy != 0; }
  friend bool operator==(const Label&, const Label&) = default;
};

struct FastLeState {
  bool drawn = false;           ///< identifier sampled on first activation
  std::uint64_t identifier = 0;      ///< ∈ [n³]
  std::uint64_t min_identifier = 0;  ///< min seen via two-way epidemic
  std::uint32_t le_count = 0;        ///< countdown Θ(log n)
  bool leader_done = false;
  bool leader_bit = false;
  friend bool operator==(const FastLeState&, const FastLeState&) = default;
};

struct ArState {
  ArType type = ArType::kLeaderElection;
  FastLeState le;

  // Sheriff fields.
  std::uint32_t low_badge = 0;
  std::uint32_t high_badge = 0;

  // Deputy fields.
  std::uint32_t deputy_id = 0;
  std::uint32_t counter = 0;  ///< labels handed out (including its own)

  // Recipient / sleeper fields.
  Label label;
  std::uint32_t sleep_timer = 0;

  /// channel[i] = highest label count heard from deputy i+1 (max-epidemic).
  /// Active for all non-LE, non-Ranked types.
  std::vector<std::uint32_t> channel;

  /// Final rank; meaningful only once type == kRanked (initialized to 1:
  /// "This is initialised to 1 and updated only when agent becomes ranked").
  std::uint32_t rank = 1;

  friend bool operator==(const ArState&, const ArState&) = default;
};

// ---------------------------------------------------------------------------
// DetectCollision_r fields (§5.1, Fig. 3)
// ---------------------------------------------------------------------------

/// One circulating message (ID, content); the governing rank is implied by
/// the bucket the message is stored in.  Content is the governor's signature
/// at the time of the last re-stamp.
struct Msg {
  std::uint32_t id = 0;
  std::uint32_t content = 0;
  friend bool operator==(const Msg&, const Msg&) = default;
  friend auto operator<=>(const Msg& a, const Msg& b) { return a.id <=> b.id; }
};

struct DcState {
  bool error = false;  ///< the ⊤ state

  std::uint32_t signature = 0;  ///< ∈ [m⁵] (capped at 2³²−1)
  std::uint32_t counter = 0;    ///< interactions until signature refresh

  /// msgs[k] = messages governed by the k-th rank of this agent's group
  /// that this agent currently holds, sorted by ID (sparse array of Fig. 3).
  std::vector<std::vector<Msg>> msgs;

  /// observations[j] = content this agent last stamped into its own message
  /// with ID j+1 (dense array of Fig. 3).
  std::vector<std::uint32_t> observations;

  friend bool operator==(const DcState&, const DcState&) = default;
};

// ---------------------------------------------------------------------------
// StableVerify_r fields (§5, Fig. 2)
// ---------------------------------------------------------------------------
struct SvState {
  std::uint32_t generation = 0;       ///< ∈ Z₆
  std::uint32_t probation_timer = 0;  ///< ∈ [P_max]
  DcState dc;
  friend bool operator==(const SvState&, const SvState&) = default;
};

// ---------------------------------------------------------------------------
// ElectLeader_r wrapper (§4, Protocol 1)
// ---------------------------------------------------------------------------
enum class Role : std::uint8_t { kResetting, kRanking, kVerifying };

struct Agent {
  Role role = Role::kRanking;
  std::uint32_t countdown = 0;  ///< ∈ [C_max], rankers only
  std::uint32_t rank = 1;       ///< presumed rank ∈ [n]

  ResetState reset;  ///< active while role == kResetting
  ArState ar;        ///< active while role == kRanking
  SvState sv;        ///< active while role == kVerifying

  friend bool operator==(const Agent&, const Agent&) = default;
};

// ---------------------------------------------------------------------------
// Hashing: a nested combine over every field operator== compares, so equal
// agents hash equal.  The std::hash<Agent> specialization below switches
// pp::CountsConfiguration<ElectLeader> onto its O(1) hash-indexed registry
// path (instead of linear scans over the distinct states), which is what
// makes the batched engine usable for ElectLeader_r beyond toy n.
// ---------------------------------------------------------------------------
namespace detail {

using util::hash_mix;

template <typename T>
void hash_mix_vec(std::size_t& seed, const std::vector<T>& xs,
                  std::size_t (*elem_hash)(const T&)) {
  hash_mix(seed, xs.size());
  for (const T& x : xs) hash_mix(seed, elem_hash(x));
}

}  // namespace detail

inline std::size_t hash_value(const ResetState& s) {
  std::size_t h = s.reset_count;
  detail::hash_mix(h, s.delay_timer);
  return h;
}

inline std::size_t hash_value(const Label& l) {
  std::size_t h = l.deputy;
  detail::hash_mix(h, l.index);
  return h;
}

inline std::size_t hash_value(const FastLeState& s) {
  std::size_t h = s.drawn;
  detail::hash_mix(h, s.identifier);
  detail::hash_mix(h, s.min_identifier);
  detail::hash_mix(h, s.le_count);
  detail::hash_mix(h, s.leader_done);
  detail::hash_mix(h, s.leader_bit);
  return h;
}

inline std::size_t hash_value(const ArState& s) {
  std::size_t h = static_cast<std::size_t>(s.type);
  detail::hash_mix(h, hash_value(s.le));
  detail::hash_mix(h, s.low_badge);
  detail::hash_mix(h, s.high_badge);
  detail::hash_mix(h, s.deputy_id);
  detail::hash_mix(h, s.counter);
  detail::hash_mix(h, hash_value(s.label));
  detail::hash_mix(h, s.sleep_timer);
  detail::hash_mix(h, s.channel.size());
  for (const std::uint32_t c : s.channel) detail::hash_mix(h, c);
  detail::hash_mix(h, s.rank);
  return h;
}

inline std::size_t hash_value(const Msg& m) {
  std::size_t h = m.id;
  detail::hash_mix(h, m.content);
  return h;
}

inline std::size_t hash_value(const DcState& s) {
  std::size_t h = s.error;
  detail::hash_mix(h, s.signature);
  detail::hash_mix(h, s.counter);
  detail::hash_mix(h, s.msgs.size());
  for (const auto& bucket : s.msgs) {
    detail::hash_mix_vec(h, bucket, &hash_value);
  }
  detail::hash_mix(h, s.observations.size());
  for (const std::uint32_t o : s.observations) detail::hash_mix(h, o);
  return h;
}

inline std::size_t hash_value(const SvState& s) {
  std::size_t h = s.generation;
  detail::hash_mix(h, s.probation_timer);
  detail::hash_mix(h, hash_value(s.dc));
  return h;
}

inline std::size_t hash_value(const Agent& a) {
  std::size_t h = static_cast<std::size_t>(a.role);
  detail::hash_mix(h, a.countdown);
  detail::hash_mix(h, a.rank);
  detail::hash_mix(h, hash_value(a.reset));
  detail::hash_mix(h, hash_value(a.ar));
  detail::hash_mix(h, hash_value(a.sv));
  return h;
}

}  // namespace ssle::core

template <>
struct std::hash<ssle::core::Agent> {
  std::size_t operator()(const ssle::core::Agent& a) const noexcept {
    return ssle::core::hash_value(a);
  }
};
