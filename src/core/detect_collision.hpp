// DetectCollision_r — the paper's novel message-based collision detection
// (§3.1, §5.1, Protocols 3, 12, 13, 14; analysis App. E).
//
// Within a rank group of size m, every rank governs ids_per_rank messages
// (ID space [ids_per_rank]); only agents whose rank matches a message may
// re-stamp its content, and they remember what they stamped (observations).
// An error state ⊤ is raised when
//   (a) two agents of the same rank meet,
//   (b) two copies of the same (rank, ID) message meet, or
//   (c) a circulating message disagrees with its governor's observation —
//       the signature mechanism makes this happen quickly when two agents
//       share a rank (Lemma E.5–E.7).
// Messages are spread by the deterministic halving BalanceLoad
// (Protocol 14, coupled to Tight & Simple Load Balancing in Lemma E.6).
#pragma once

#include <cstdint>

#include "core/agent.hpp"
#include "core/params.hpp"
#include "util/rng.hpp"

namespace ssle::core {

/// The clean initial state q0,DC for an agent of the given rank (§5.1):
/// signature = counter = 1, all observations = 1, and the agent holds the
/// contiguous slice of 2m (faithful) IDs of *every* rank of its group that
/// the paper pre-mixes ("the initial round of messages ... is hardcoded
/// ... and messages are pre-mixed among agents").
DcState dc_initial_state(const Params& params, std::uint32_t rank);

/// Protocol 3.  Runs one DetectCollision_r interaction between agents of
/// rank `rank_u` / `rank_v` with collision-detection states `u` / `v`.
/// No-op if the ranks belong to different groups.  May set u/v.error (⊤).
void detect_collision(const Params& params, std::uint32_t rank_u, DcState& u,
                      std::uint32_t rank_v, DcState& v, util::Rng& rng);

/// Protocol 12.  Checks v's circulating messages governed by u's rank
/// against u's observations; sets both to ⊤ on mismatch.
void check_message_consistency(const Params& params, std::uint32_t rank_u,
                               DcState& u, DcState& v);

/// Protocol 13.  Advances u's refresh counter (possibly resampling the
/// signature) and re-stamps all messages governed by u's rank held by u and
/// v with u's current signature, updating u's observations.
void update_messages(const Params& params, std::uint32_t rank_u, DcState& u,
                     DcState& v, util::Rng& rng);

/// Protocol 14.  Deterministically splits, per (rank, content) class, the
/// messages held by u and v so their counts differ by at most one.
void balance_load(const Params& params, std::uint32_t rank_u, DcState& u,
                  DcState& v);

/// Total number of messages (over all ranks of u's group) held by u.
std::uint64_t dc_message_count(const DcState& u);

/// True iff the interaction (a)/(b) tests of Protocol 3 would fire:
/// identical rank or a shared (rank, ID) message.  Exposed for tests.
bool dc_obvious_collision(const Params& params, std::uint32_t rank_u,
                          const DcState& u, std::uint32_t rank_v,
                          const DcState& v);

}  // namespace ssle::core
