#include "core/safety.hpp"

#include <vector>

namespace ssle::core {

std::uint32_t leader_count(const std::vector<Agent>& config) {
  std::uint32_t count = 0;
  for (const Agent& a : config) {
    if (a.role == Role::kVerifying && a.rank == 1) ++count;
  }
  return count;
}

bool ranking_correct(const Params& params, const std::vector<Agent>& config) {
  if (config.size() != params.n) return false;
  std::vector<bool> seen(params.n + 1, false);
  for (const Agent& a : config) {
    if (a.role != Role::kVerifying) return false;
    if (a.rank < 1 || a.rank > params.n || seen[a.rank]) return false;
    seen[a.rank] = true;
  }
  return true;
}

bool single_generation(const std::vector<Agent>& config) {
  for (const Agent& a : config) {
    if (a.role != Role::kVerifying) return false;
    if (a.sv.generation != config.front().sv.generation) return false;
  }
  return true;
}

bool message_system_consistent(const Params& params,
                               const std::vector<Agent>& config) {
  // observations_by_rank[rank] = pointer to the observations of the (unique)
  // agent with that rank; requires a correct ranking to be meaningful.
  std::vector<const std::vector<std::uint32_t>*> obs(params.n + 1, nullptr);
  for (const Agent& a : config) {
    if (a.role != Role::kVerifying || a.sv.dc.error) return false;
    if (a.rank >= 1 && a.rank <= params.n) obs[a.rank] = &a.sv.dc.observations;
  }

  // seen[(rank-1)] = bitmap of message IDs already encountered.
  std::vector<std::vector<bool>> seen(params.n);
  for (const Agent& a : config) {
    const std::uint32_t group = params.group_of(a.rank);
    const std::uint32_t begin = params.group_begin(group);
    for (std::size_t k = 0; k < a.sv.dc.msgs.size(); ++k) {
      const std::uint32_t rank = begin + static_cast<std::uint32_t>(k);
      if (rank > params.n) return false;
      auto& bitmap = seen[rank - 1];
      if (bitmap.empty()) bitmap.assign(params.ids_per_rank(group) + 1, false);
      for (const Msg& msg : a.sv.dc.msgs[k]) {
        if (msg.id == 0 || msg.id >= bitmap.size()) return false;
        if (bitmap[msg.id]) return false;  // duplicated circulating message
        bitmap[msg.id] = true;
        const auto* governor = obs[rank];
        if (governor == nullptr || msg.id > governor->size()) return false;
        if ((*governor)[msg.id - 1] != msg.content) return false;
      }
    }
  }
  return true;
}

bool is_safe_configuration(const Params& params,
                           const std::vector<Agent>& config) {
  return ranking_correct(params, config) && single_generation(config) &&
         message_system_consistent(params, config);
}

namespace {

// Shared multiset pre-check of the counts-native probes: works off
// for_each(state, count), which both the uniform and the community-lifted
// registries provide (the latter strips the community coordinate).
template <typename Counts>
bool counts_safe(const Params& params, const Counts& counts) {
  if (counts.population_size() != params.n || params.n == 0) return false;
  std::vector<bool> seen(params.n + 1, false);
  bool ok = true;
  bool first = true;
  std::uint32_t generation = 0;
  counts.for_each([&](const Agent& a, std::uint64_t count) {
    if (!ok) return;
    // count > 1 ⇒ two agents share a full state, hence a rank: not safe.
    if (count != 1 || a.role != Role::kVerifying || a.rank < 1 ||
        a.rank > params.n || seen[a.rank]) {
      ok = false;
      return;
    }
    seen[a.rank] = true;
    if (first) {
      generation = a.sv.generation;
      first = false;
    } else if (a.sv.generation != generation) {
      ok = false;
    }
  });
  // n agents, each count 1, no duplicate rank in [1, n] ⇒ the ranking is a
  // permutation and the generations agree: (a) and (b) hold, so pay for
  // the expansion only to run the message-system scan (c).
  return ok && message_system_consistent(params, counts.to_states());
}

}  // namespace

bool is_safe_configuration(const Params& params,
                           const pp::CountsConfiguration<ElectLeader>& counts) {
  return counts_safe(params, counts);
}

bool is_safe_configuration(
    const Params& params,
    const pp::CommunityCountsConfiguration<ElectLeader>& counts) {
  return counts_safe(params, counts);
}

}  // namespace ssle::core
