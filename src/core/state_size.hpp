// State-space accounting (paper Fig. 1, Fig. 2, Fig. 3).
//
// The paper's headline space bound is the *bit complexity*: the logarithm
// of the number of states.  These functions evaluate the exact bit count
// of each sub-state-space for concrete (n, r), so the trade-off curves
// (experiment F6) can plot measured formulas rather than asymptotics:
//   ElectLeader_r : O(r² log n) bits  — dominated by DetectCollision's
//                   msgs/observations arrays,
//   SSR baseline  : Θ(n log n) bits   — the stored set of names,
//   CIW           : log2(n) bits.
#pragma once

#include "core/params.hpp"

namespace ssle::core {

/// Bits for PropagateReset's fields (resetCount × delayTimer).
double bits_propagate_reset(const Params& params);

/// Bits for FastLeaderElect (Fig. 4): Identifier × MinIdentifier × LECount
/// × LeaderDone × LeaderBit.
double bits_fast_leader_elect(const Params& params);

/// Bits for AssignRanks_r (App. D state list): the per-type maximum over
/// sheriff/deputy/recipient/sleeper fields plus the r-entry channel.
double bits_assign_ranks(const Params& params);

/// Bits for DetectCollision_r (Fig. 3), for the largest group: signature ×
/// counter × msgs ((2r⁸)^(2r²): 2m² held-message slots, each encoding a
/// (rank, ID, content) triple) × observations ((r⁷)^(2r²) ≈ 2m² cells of
/// [m⁵]).  Overall 2^{O(r² log r)} as in Fig. 3's caption.
double bits_detect_collision(const Params& params);

/// Bits for StableVerify_r (Fig. 2): Z₆ × probation × DetectCollision.
double bits_stable_verify(const Params& params);

/// Total bit complexity of ElectLeader_r (Fig. 1: disjoint union of roles;
/// the size is the sum of the role state spaces, so the bit complexity is
/// ~ the max role plus wrapper fields).
double bits_elect_leader(const Params& params);

/// Bit complexity of the silent-SSR name-broadcast baseline at size n:
/// a name in [n³] plus a subset of up to n names (Θ(n log n) bits).
double bits_ssr_baseline(std::uint32_t n);

/// Bit complexity of Cai–Izumi–Wada at size n: one rank, log2(n) bits.
double bits_ciw(std::uint32_t n);

}  // namespace ssle::core
