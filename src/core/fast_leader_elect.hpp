// FastLeaderElect (App. D.2, Fig. 4, Lemma D.10): a simple non-self-
// stabilizing leader election started from an awakening configuration.
//
// On its first activation an agent draws an identifier (almost) u.a.r.
// from [n³]; the minimum identifier spreads by a two-way epidemic; each
// agent counts down c·log n of its own interactions (c > 14) and, when the
// countdown expires, declares itself leader iff its own identifier equals
// the minimum it has seen.
#pragma once

#include "core/agent.hpp"
#include "core/params.hpp"
#include "util/rng.hpp"

namespace ssle::core {

/// The pre-draw initial FastLeaderElect state.
FastLeState fle_initial_state();

/// Ensures the agent has drawn its identifier (first activation).
void fle_activate(const Params& params, FastLeState& s, util::Rng& rng);

/// One interaction between two agents that are both in leader election:
/// draw-if-needed, min-merge, countdown, and decide on expiry.
void fle_interact(const Params& params, FastLeState& u, FastLeState& v,
                  util::Rng& rng);

/// True when the protocol has finished for this agent.
inline bool fle_done(const FastLeState& s) { return s.leader_done; }

}  // namespace ssle::core
