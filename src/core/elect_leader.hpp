// ElectLeader_r — the paper's main protocol (§4, Protocol 1).
//
// A thin wrapper dispatching on the role field:
//   Resetting → PropagateReset (App. C),
//   Ranking   → AssignRanks_r (App. D) + countdown management,
//   Verifying → StableVerify_r (§5).
// The leader is the agent with rank 1 (§3: "taking the agent with rank 1
// to be the leader").
//
// Satisfies the pp::Protocol concept; the clean initial configuration is
// the dormant/awakening one (all agents freshly Reset), matching the
// starting point of Lemma 6.2.
#pragma once

#include <cstdint>

#include "core/agent.hpp"
#include "core/params.hpp"
#include "util/rng.hpp"

namespace ssle::core {

class ElectLeader {
 public:
  using State = Agent;

  explicit ElectLeader(Params params) : params_(std::move(params)) {}

  std::uint32_t population_size() const { return params_.n; }
  const Params& params() const { return params_; }

  /// Clean start: a freshly reset ranker (role Ranking, qAR = q0,AR,
  /// countdown = C_max) — the awakening configuration of App. C.
  State initial_state(std::uint32_t agent) const;

  /// Protocol 1.
  void interact(State& u, State& v, util::Rng& rng) const;

  // --- Output map ----------------------------------------------------------
  /// True iff the agent is currently marked as the leader.
  static bool is_leader(const State& a) {
    return a.role == Role::kVerifying && a.rank == 1;
  }

 private:
  Params params_;
};

}  // namespace ssle::core
