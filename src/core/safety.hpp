// Configuration-level predicates for ElectLeader_r: output correctness,
// and a checkable core of the safe set C_safe (Lemma 6.1).
//
// C_safe as defined in the paper involves reachability of the collision-
// detection sub-configuration from q0,DC, which is not efficiently
// checkable.  `is_safe_configuration` instead checks a *sufficient* subset:
//   (a) all agents are verifiers and the ranking is a permutation of [n],
//   (b) all agents share one generation,
//   (c) the message system is self-consistent: every circulating (rank, ID)
//       message exists at most once, and its content equals the governor's
//       observation for that ID, and no DetectCollision state is ⊤.
// From such a configuration, observations (1)–(5) of App. E.1 / Lemma E.2
// give that no ⊤ is ever generated, so (by the case analysis of Lemma 6.1)
// the configuration is safe: the ranking — hence the unique leader — is
// permanent.  Clean executions enter this set, so using it as the
// stabilization probe is sound and tight up to probe granularity.
#pragma once

#include <cstdint>

#include "core/agent.hpp"
#include "core/elect_leader.hpp"
#include "core/params.hpp"
#include "pp/community_counts.hpp"
#include "pp/counts.hpp"
#include "pp/population.hpp"

namespace ssle::core {

/// Number of agents currently marked as leader (verifier with rank 1).
std::uint32_t leader_count(const std::vector<Agent>& config);

/// True iff every agent is a verifier and ranks form a permutation of [n].
bool ranking_correct(const Params& params, const std::vector<Agent>& config);

/// True iff all agents are verifiers with equal generation fields.
bool single_generation(const std::vector<Agent>& config);

/// Message-system consistency over the whole population: uniqueness of all
/// circulating (rank, ID) messages, owner-observation agreement, no ⊤.
bool message_system_consistent(const Params& params,
                               const std::vector<Agent>& config);

/// The checkable-sufficient C_safe predicate described above.
bool is_safe_configuration(const Params& params,
                           const std::vector<Agent>& config);

/// Counts-native probe for the batched engine: decides exactly the same
/// predicate as is_safe_configuration(params, counts.to_states()), but
/// runs the multiset-checkable parts first — population size, every agent
/// a verifier, every live state's count exactly 1 (in a safe
/// configuration all ranks are distinct, so no full state repeats), ranks
/// a permutation of [n], one shared generation — and only pays for the
/// O(n) expansion that the message-system scan needs once those cheap
/// checks pass.  During the unsafe bulk of a run, probes therefore cost
/// O(q) counter reads instead of n deep Agent copies per probe.
bool is_safe_configuration(const Params& params,
                           const pp::CountsConfiguration<ElectLeader>& counts);

/// Community-lifted twin: the registry keys carry (community, state) but
/// safety is community-oblivious, so the same multiset pre-checks apply to
/// the stripped state marginal.  A full state duplicated across communities
/// shows up as two count-1 classes with the same rank — caught by the
/// rank-permutation check, exactly as a count > 1 is on the uniform path.
bool is_safe_configuration(
    const Params& params,
    const pp::CommunityCountsConfiguration<ElectLeader>& counts);

}  // namespace ssle::core
