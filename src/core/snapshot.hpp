// Configuration snapshots: serialize/restore full ElectLeader_r
// configurations as a line-based text format.
//
// Use cases: persisting adversarial counterexample configurations found by
// fuzzing, replaying a run from a checkpoint, and diffing configurations
// across runs.  The format is versioned and self-describing; parsing is
// strict (any malformed field yields std::nullopt rather than a partially
// initialized population).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/agent.hpp"
#include "core/params.hpp"

namespace ssle::core {

/// Serializes a configuration (one agent per stanza).
std::string snapshot_write(const Params& params,
                           const std::vector<Agent>& config);

/// Parses a snapshot produced by snapshot_write.  Returns std::nullopt on
/// any syntactic or structural error (wrong agent count, bad field,
/// trailing garbage such as a duplicated agent stanza, ...).
std::optional<std::vector<Agent>> snapshot_read(const Params& params,
                                                const std::string& text);

/// Serializes ONE agent as its snapshot stanza (no header) — the per-class
/// key codec the counts-native checkpoint (obs/checkpoint.hpp) uses to
/// store ElectLeader_r registry entries.
std::string snapshot_write_agent(const Agent& a);

/// Parses exactly one stanza produced by snapshot_write_agent.  Strict:
/// any malformed field or trailing non-whitespace yields std::nullopt.
std::optional<Agent> snapshot_read_agent(const std::string& text);

}  // namespace ssle::core
