#include "core/derandomized.hpp"

namespace ssle::core {

namespace {

/// Folds a coin buffer into 64 bits by sampling it (keeps the coin's
/// freshness bookkeeping intact: sampling marks the buffer stale, and the
/// paper guarantees a full refresh between uses, Lemma B.1 property 2).
std::uint64_t harvest(SyntheticCoin& coin) { return coin.sample(); }

}  // namespace

DerandomizedElectLeader::DerandomizedElectLeader(Params params)
    : inner_(std::move(params)) {}

DerandomizedElectLeader::State DerandomizedElectLeader::wrap_agent(
    Agent agent, const Params& params, std::uint32_t index) {
  // Coin space: the largest value any sub-protocol draws is the identifier
  // space [n³] (App. D.2); signatures ([m⁵] capped) are smaller.
  State s{std::move(agent), SyntheticCoin(params.identifier_space)};
  // Stagger the alternating coins: slot parity seeds the initial flip, so
  // the coin population starts balanced (the BFKK drift then keeps it so).
  if (index % 2 == 1) s.coin.observe(index % 4 == 1);
  return s;
}

DerandomizedElectLeader::State DerandomizedElectLeader::initial_state(
    std::uint32_t agent) const {
  return wrap_agent(inner_.initial_state(agent), inner_.params(), agent);
}

void DerandomizedElectLeader::interact(State& u, State& v,
                                       util::Rng& /*engine_rng*/) const {
  // Step 1: coin exchange (Eqs. 4–7): each agent flips its own coin and
  // records the partner's *previous* coin value.
  const bool coin_u = u.coin.coin();
  const bool coin_v = v.coin.coin();
  u.coin.observe(coin_v);
  v.coin.observe(coin_u);

  // Step 2: derive this interaction's draws deterministically from the
  // harvested buffers.  util::Rng here is merely a bit-mixer seeded from
  // state — no external entropy enters.
  const std::uint64_t hu = harvest(u.coin);
  const std::uint64_t hv = harvest(v.coin);
  util::Rng draws(hu * 0x9e3779b97f4a7c15ULL ^ (hv << 1));

  // Step 3: the ordinary transition.
  inner_.interact(u.agent, v.agent, draws);
}

}  // namespace ssle::core
