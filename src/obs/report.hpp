// Versioned structured bench output: one schema for every --json bench.
//
// Before this, each bench hand-rolled its own util::Json document (when it
// emitted one at all), so BENCH_*.json consumers had to know per-bench
// layouts.  Report pins ONE envelope:
//
//   {
//     "schema_version": 1,
//     "bench": "<name>",
//     "pr": <N>,
//     ...top-level run parameters (set)...
//     "sections": { "<name>": {...}, ... }
//   }
//
// Benches fill named sections (tables become arrays of row objects) and
// call write_if(--json path): empty path = no-op, so the flag stays
// optional everywhere.
#pragma once

#include <iosfwd>
#include <string>

#include "util/json.hpp"

namespace ssle::obs {

class Report {
 public:
  /// Version of the report envelope.  Bump when the envelope shape
  /// changes (section contents are bench-owned and bench-versioned by
  /// the "pr" field).
  static constexpr int kSchemaVersion = 1;

  Report(std::string bench, int pr);

  /// Top-level field (run parameters: n, seed, trials, ...).
  Report& set(const std::string& key, util::Json v);

  /// Adds (or replaces) a named section.
  Report& section(const std::string& name, util::Json body);

  /// The assembled document (envelope + sections).
  util::Json to_json() const;

  /// Honors the --json contract: when `path` is nonempty, writes the
  /// document (util::write_json_file semantics — exit 2 on I/O failure)
  /// and prints a one-line note to `log`.  Empty path: no-op.
  void write_if(const std::string& path, std::ostream& log) const;

 private:
  util::Json doc_;       ///< envelope + top-level fields
  util::Json sections_;  ///< named section bodies
};

}  // namespace ssle::obs
