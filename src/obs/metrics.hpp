// Engine metrics: one uniform counter block behind every engine's
// `metrics()` accessor.
//
// Each engine already kept a handful of ad-hoc counters (block counts on
// the batched engine, leap statistics on the leaping engine); this struct
// is the superset, snapshotted by value, so callers — benches, the run
// journal (obs/journal.hpp), tests — observe every engine through ONE
// shape instead of per-engine accessor zoos.  Counters an engine has no
// notion of stay 0 (the naive engine has no registry; the batched engine
// never splits windows), and `engine` names which one produced the
// snapshot.
//
// The counters themselves are always on: each is a single uint64 increment
// on an operation that already costs O(log q) (a Fenwick point update, a
// δ-cache probe) or O(√n) (a block draw), so the instrumented engines stay
// within noise of their uninstrumented selves — bench_parallel_sweep §8
// gates that claim (< 3% on the memoized epidemic path) under --gate-perf.
//
// Invariants (pinned by tests/test_obs.cpp):
//   * interactions_iterated + interactions_leapt == interactions on every
//     engine (iterated = executed one at a time or inside a block;
//     leapt = consumed without iteration — leaping engine only);
//   * on the community path, community_pair_draws == interactions (every
//     interaction draws exactly one ordered community pair);
//   * delta_cache_misses ≥ delta_cache_entries, with equality while
//     delta_cache_clears == 0 (every miss inserts one entry).
#pragma once

#include <cstdint>

#include "util/json.hpp"

namespace ssle::obs {

struct EngineMetrics {
  /// Producing engine: "naive", "batched", "batched-community", "leaping",
  /// "sharded".
  const char* engine = "";

  // --- population ------------------------------------------------------
  /// Live population size n at snapshot time.  Static runs report the
  /// construction-time n; under churn (join/leave/dropout events,
  /// analysis/churn.hpp) this is the gauge that tracks the live value.
  /// merge() sums it — across shards the parts total the population.
  std::uint64_t population = 0;

  // --- interactions ----------------------------------------------------
  std::uint64_t interactions = 0;           ///< total scheduler slots consumed
  std::uint64_t interactions_iterated = 0;  ///< executed individually/in blocks
  std::uint64_t interactions_leapt = 0;     ///< jumped as null runs (leaping)

  // --- batched block machinery -----------------------------------------
  std::uint64_t blocks_dense = 0;           ///< dense-sampler blocks drawn
  std::uint64_t blocks_fenwick = 0;         ///< Fenwick-sampler blocks drawn
  std::uint64_t blocks_flat = 0;            ///< flat-sampler blocks drawn
  std::uint64_t flat_scan_draws = 0;        ///< flat cumulative-scan samples
  std::uint64_t collision_resolutions = 0;  ///< colliding interactions resolved
  std::uint64_t community_pair_draws = 0;   ///< ordered community pairs drawn

  // --- sharded engine ---------------------------------------------------
  // The sharded engine reports engine-level totals in the fields above
  // (interactions, collision_resolutions) and the partition structure
  // here.  Invariant (pinned by tests/test_sharded_simulator.cpp):
  //   intra_shard_interactions + cross_shard_interactions
  //     + collision_resolutions == interactions, and
  //   intra_shard_interactions == Σ over shard snapshots of interactions.
  std::uint64_t shards = 0;                    ///< worker partitions (T)
  std::uint64_t intra_shard_interactions = 0;  ///< resolved inside one shard
  std::uint64_t cross_shard_interactions = 0;  ///< resolved across two shards

  // --- counts registry (Fenwick + interner) ----------------------------
  std::uint64_t fenwick_point_updates = 0;  ///< tree_add/tree_sub calls
  std::uint64_t fenwick_samples = 0;        ///< sample_class descents
  std::uint64_t registry_live_states = 0;       ///< q (nonzero counts)
  std::uint64_t registry_allocated_states = 0;  ///< interned keys
  std::uint64_t registry_capacity = 0;          ///< id space extent
  std::uint64_t registry_compactions = 0;       ///< compact() calls
  std::uint64_t registry_version = 0;           ///< interner version bumps

  // --- δ-cache (deterministic-δ protocols) -----------------------------
  std::uint64_t delta_cache_hits = 0;
  std::uint64_t delta_cache_misses = 0;
  std::uint64_t delta_cache_clears = 0;   ///< invalidations (compaction)
  std::uint64_t delta_cache_entries = 0;  ///< current size

  // --- leap engine -----------------------------------------------------
  std::uint64_t leap_windows = 0;
  std::uint64_t leap_candidates = 0;
  std::uint64_t envelope_breaches = 0;  ///< window splits taken
  std::uint64_t split_depth_max = 0;    ///< deepest split recursion seen
  std::uint64_t banded_pieces = 0;      ///< pieces on the banded batch path

  /// Snapshot as a Json object (field names == member names; `engine`
  /// first).  Schema-stable: obs::kMetricsSchemaVersion names its version.
  util::Json to_json() const;

  /// Accumulates another snapshot into this one: every counter field sums,
  /// except split_depth_max (a maximum, so it maxes) and engine (this
  /// snapshot's name wins unless it is still empty).  This is how the
  /// sharded engine folds per-shard registry/cache counters into one
  /// engine-level snapshot, and how callers aggregate across trials —
  /// summing is the right fold even for the gauge-like registry fields
  /// (live/allocated/capacity/entries), which become totals across the
  /// merged parts.
  EngineMetrics& merge(const EngineMetrics& other);
  EngineMetrics& operator+=(const EngineMetrics& other) {
    return merge(other);
  }
  friend EngineMetrics operator+(EngineMetrics lhs, const EngineMetrics& rhs) {
    lhs.merge(rhs);
    return lhs;
  }
};

/// Version of the EngineMetrics JSON field set.  Bump when fields are
/// renamed or removed (additions are compatible).
inline constexpr int kMetricsSchemaVersion = 1;

}  // namespace ssle::obs
