// Crash-safe counts-native checkpoints: kill −9 at any point, resume to a
// bit-identical trajectory.
//
// A checkpoint is a versioned util::Json document holding everything the
// future of a run depends on: the registry multiset (per shard, as
// (encoded-state, count) lists in canonical id order), every RNG stream's
// raw 256-bit state, the interaction count, and — for fault-injection runs
// (analysis/churn.hpp) — the FaultPlan cursor (rule timers, battery
// histogram, statistics so far), carried opaquely.
//
// Bit-identity rests on one discipline, implemented by the engines
// (pp/batched_simulator.hpp, pp/sharded_simulator.hpp):
// canonicalize-then-serialize.  Registry id layout steers the trajectory
// (uniform draws resolve in registry cumulative order), and a restorer
// cannot reproduce interner free-list holes left by compact() — so at
// checkpoint time the live engine first rebuilds its registry into dense-id
// form and CONTINUES FROM THAT FORM.  Saver-continuation and restorer then
// run from literally identical state, which tests/test_checkpoint.cpp pins
// counter-for-counter and the CI soak smoke proves across a real kill −9.
//
// Durability: checkpoint_save writes `path + ".tmp"`, flushes and fsyncs,
// then renames over `path` — POSIX rename is atomic, so a crash at any
// instant leaves either the old complete checkpoint or the new one, never
// a torn file.
//
// RNG words are serialized as "0x…" hex strings: util::Json stores integers
// as int64 and would silently degrade the upper half of the uint64 range
// to double (lossy); hex strings round-trip every word exactly.
//
// Engine op counters (block/cache/registry statistics) are process-local
// diagnostics, not state: they restart at zero on restore.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "pp/batched_simulator.hpp"
#include "pp/sharded_simulator.hpp"
#include "util/json.hpp"

namespace ssle::obs {

/// Checkpoint format version.  Bump on any incompatible layout change;
/// checkpoint_from_json rejects versions it does not speak.
inline constexpr int kCheckpointVersion = 1;

/// The parsed/serializable checkpoint document.
struct CheckpointDoc {
  std::string engine;    ///< "batched", or "sharded:<T>"
  std::string protocol;  ///< caller-chosen label, checked on restore
  std::uint64_t n = 0;   ///< population size (Σ shard counts; consistency-checked)
  std::uint64_t interactions = 0;
  /// Raw RNG states in the producing engine's fixed order (see the
  /// engines' rng_states()).
  std::vector<std::array<std::uint64_t, 4>> rngs;
  /// Per shard (one entry for "batched"): the registry as (encoded state,
  /// count) pairs in canonical id order.
  std::vector<std::vector<std::pair<std::string, std::uint64_t>>> shards;
  /// Opaque fault-plan cursor (analysis/churn.hpp); absent for plain runs.
  std::optional<util::Json> cursor;
};

util::Json checkpoint_to_json(const CheckpointDoc& doc);
std::optional<CheckpointDoc> checkpoint_from_json(const util::Json& j);

/// Text forms (what the file holds): dump is to_json pretty-printed;
/// parse is strict — malformed text or wrong version yields nullopt.
std::string checkpoint_dump(const CheckpointDoc& doc);
std::optional<CheckpointDoc> checkpoint_parse(const std::string& text);

/// Atomic write-rename save.  Returns false (with a message on stderr) on
/// any I/O failure; the previous checkpoint at `path`, if any, survives.
bool checkpoint_save(const std::string& path, const CheckpointDoc& doc);

/// Loads and parses `path`; nullopt when the file is missing or malformed.
std::optional<CheckpointDoc> checkpoint_load(const std::string& path);

/// Formats one RNG state as the 4 hex-string words the document stores.
util::Json rng_state_to_json(const std::array<std::uint64_t, 4>& state);

/// Parses the 4-hex-word array back; nullopt on any malformation and on
/// the all-zero state (a fixed point xoshiro256** can never reach).
std::optional<std::array<std::uint64_t, 4>> rng_state_from_json(
    const util::Json& j);

/// The uint64 ↔ "0x%016x" codec the document uses wherever a value may
/// exceed int64 range (util::Json would degrade it to a lossy double).
std::string hex_u64(std::uint64_t w);
std::optional<std::uint64_t> parse_hex_u64(const std::string& s);

// --- engine-facing helpers ------------------------------------------------
// `encode` maps a protocol State to its string key (must be injective);
// `decode` maps the string back, returning std::optional<State> (nullopt on
// malformed input).  core::snapshot_write_agent/snapshot_read_agent are the
// ElectLeader_r pair; integer-state protocols use decimal strings.

/// Canonicalizes the engine (the continuation runs from the serialized
/// form — that is what makes resume bit-identical) and captures it.
template <pp::Protocol P, typename Enc>
CheckpointDoc make_checkpoint(pp::BatchedSimulator<P>& sim,
                              const std::string& protocol_label,
                              Enc&& encode) {
  sim.canonicalize();
  CheckpointDoc doc;
  doc.engine = "batched";
  doc.protocol = protocol_label;
  doc.n = sim.config().population_size();
  doc.interactions = sim.interactions();
  doc.rngs = sim.rng_states();
  doc.shards.emplace_back();
  sim.config().for_each([&](const typename P::State& s, std::uint64_t c) {
    doc.shards.back().emplace_back(encode(s), c);
  });
  return doc;
}

template <pp::Protocol P, typename Enc>
CheckpointDoc make_checkpoint(pp::ShardedSimulator<P>& sim,
                              const std::string& protocol_label,
                              Enc&& encode) {
  sim.canonicalize();
  CheckpointDoc doc;
  doc.engine = "sharded:" + std::to_string(sim.shard_count());
  doc.protocol = protocol_label;
  doc.interactions = sim.interactions();
  doc.rngs = sim.rng_states();
  for (std::size_t j = 0; j < sim.shard_count(); ++j) {
    doc.shards.emplace_back();
    const auto& cfg = sim.shard_config(j);
    doc.n += cfg.population_size();
    cfg.for_each([&](const typename P::State& s, std::uint64_t c) {
      doc.shards.back().emplace_back(encode(s), c);
    });
  }
  return doc;
}

/// Restores `doc` into `sim` (construct the engine with an EMPTY
/// configuration and the matching shard count first).  Re-adds every
/// shard's (state, count) list in serialized order — reproducing the
/// saver's canonical dense ids — then installs RNG states and the
/// interaction count.  Returns false, leaving the engine unusable, on any
/// mismatch: engine kind, protocol label, undecodable state, population
/// total, RNG arity.
template <pp::Protocol P, typename Dec>
bool restore_checkpoint(pp::BatchedSimulator<P>& sim,
                        const CheckpointDoc& doc,
                        const std::string& protocol_label, Dec&& decode) {
  if (doc.engine != "batched" || doc.protocol != protocol_label) return false;
  if (doc.shards.size() != 1) return false;
  typename pp::BatchedSimulator<P>::Config cfg{
      std::vector<typename P::State>{}};
  for (const auto& [enc, c] : doc.shards[0]) {
    const auto s = decode(enc);
    if (!s || c == 0) return false;
    cfg.add(*s, c);
  }
  if (cfg.population_size() != doc.n) return false;
  sim.config() = std::move(cfg);
  sim.canonicalize();  // idempotent here; sizes block scratch to the registry
  if (!sim.set_rng_states(doc.rngs)) return false;
  sim.set_interactions(doc.interactions);
  return true;
}

template <pp::Protocol P, typename Dec>
bool restore_checkpoint(pp::ShardedSimulator<P>& sim,
                        const CheckpointDoc& doc,
                        const std::string& protocol_label, Dec&& decode) {
  if (doc.engine != "sharded:" + std::to_string(sim.shard_count())) {
    return false;
  }
  if (doc.protocol != protocol_label) return false;
  if (doc.shards.size() != sim.shard_count()) return false;
  std::vector<typename pp::ShardedSimulator<P>::Config> configs;
  std::uint64_t total = 0;
  for (const auto& shard : doc.shards) {
    configs.emplace_back(std::vector<typename P::State>{});
    for (const auto& [enc, c] : shard) {
      const auto s = decode(enc);
      if (!s || c == 0) return false;
      configs.back().add(*s, c);
    }
    total += configs.back().population_size();
  }
  if (total != doc.n) return false;
  if (!sim.restore_shard_configs(std::move(configs))) return false;
  if (!sim.set_rng_states(doc.rngs)) return false;
  sim.set_interactions(doc.interactions);
  return true;
}

}  // namespace ssle::obs
