// Run journal: periodic JSONL heartbeats for long runs.
//
// A multi-hour soak, a churn sweep, or an n = 10^10 leap run is a black
// box while it executes: the only signal the repo had was the final table.
// The journal turns a running engine into a stream of machine-readable
// events — one compact JSON object per line (JSONL), appended to a file or
// stderr — carrying progress (interactions, interactions/sec, ETA against
// the budget), footprint (live registry size q, peak RSS via getrusage),
// and the full obs::EngineMetrics counter block.
//
//   obs::Journal journal({.path = "run.jsonl",
//                         .every_seconds = 5.0,
//                         .budget = max_interactions});
//   sim.run_until([&](const auto& c, std::uint64_t t) {
//     journal.tick(t, sim.metrics());   // rate-limited: cheap when silent
//     return done(c, t);
//   }, max_interactions);
//
// tick() is designed to sit on probe paths: when the cadence thresholds
// say "not yet" it costs two comparisons and returns.  Emission flushes
// per line, so a killed run keeps every event already written.
#pragma once

#include <chrono>
#include <cstdint>
#include <fstream>
#include <string>

#include "obs/metrics.hpp"
#include "util/json.hpp"

namespace ssle::obs {

/// Version of the journal event schema (the "v" field on every line).
inline constexpr int kJournalSchemaVersion = 1;

/// Peak resident set size of this process in KiB (getrusage ru_maxrss);
/// 0 on platforms without getrusage.
std::uint64_t peak_rss_kb();

class Journal {
 public:
  struct Options {
    /// JSONL sink; empty = stderr.  Opened (truncating) at construction;
    /// an unopenable path is a hard error (exit 2), same contract as
    /// util::write_json_file — a run asked to journal must not silently
    /// lose its events.
    std::string path;
    /// Minimum interactions between heartbeats (0 = no interaction gate).
    std::uint64_t every_interactions = 0;
    /// Minimum wall seconds between heartbeats (0 = no time gate).
    double every_seconds = 0.0;
    /// Interaction budget for the eta_s field (0 = no ETA).
    std::uint64_t budget = 0;
    /// Free-form run label, echoed on every event when nonempty.
    std::string run;
  };

  explicit Journal(Options opts);

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Heartbeat: emits one event when the cadence gates allow (the first
  /// tick always emits; later ticks must clear BOTH thresholds).  Cheap
  /// when silent — call it from every probe.
  void tick(std::uint64_t interactions, const EngineMetrics& metrics);

  /// Unconditional event of a named kind with caller-supplied payload
  /// (run boundaries, bursts, phase transitions).
  void event(const std::string& kind, util::Json payload);

  std::uint64_t events_emitted() const { return emitted_; }

 private:
  using Clock = std::chrono::steady_clock;

  void emit(const util::Json& doc);
  std::ostream& sink();

  Options opts_;
  std::ofstream file_;  ///< open iff opts_.path nonempty
  Clock::time_point start_;
  Clock::time_point last_emit_;
  std::uint64_t last_interactions_ = 0;
  std::uint64_t emitted_ = 0;
};

}  // namespace ssle::obs
