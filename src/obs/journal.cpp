#include "obs/journal.hpp"

#include <cstdio>
#include <cstdlib>
#include <iostream>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace ssle::obs {

std::uint64_t peak_rss_kb() {
#if defined(__unix__) || defined(__APPLE__)
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  // ru_maxrss is bytes on Darwin, KiB on Linux.
  return static_cast<std::uint64_t>(usage.ru_maxrss) / 1024;
#else
  return static_cast<std::uint64_t>(usage.ru_maxrss);
#endif
#else
  return 0;
#endif
}

Journal::Journal(Options opts) : opts_(std::move(opts)) {
  if (!opts_.path.empty()) {
    file_.open(opts_.path, std::ios::out | std::ios::trunc);
    if (!file_) {
      std::fprintf(stderr, "error: cannot open %s for journaling\n",
                   opts_.path.c_str());
      std::exit(2);
    }
  }
  start_ = Clock::now();
  last_emit_ = start_;
}

std::ostream& Journal::sink() {
  if (file_.is_open()) return file_;
  return std::cerr;
}

void Journal::emit(const util::Json& doc) {
  sink() << doc.dump_line() << '\n' << std::flush;
  ++emitted_;
}

void Journal::tick(std::uint64_t interactions, const EngineMetrics& metrics) {
  const auto now = Clock::now();
  const double since_last =
      std::chrono::duration<double>(now - last_emit_).count();
  if (emitted_ > 0) {
    if (opts_.every_interactions > 0 &&
        interactions - last_interactions_ < opts_.every_interactions) {
      return;
    }
    if (opts_.every_seconds > 0.0 && since_last < opts_.every_seconds) return;
  }
  const double t_s = std::chrono::duration<double>(now - start_).count();
  // Interval rate: interactions since the last event over the wall time
  // since it (the whole run, for the first event).
  const double dt = emitted_ > 0 ? since_last : t_s;
  const std::uint64_t di =
      emitted_ > 0 ? interactions - last_interactions_ : interactions;
  const double ips = dt > 0.0 ? static_cast<double>(di) / dt : 0.0;

  auto doc = util::Json::object();
  doc.set("v", kJournalSchemaVersion);
  doc.set("kind", "heartbeat");
  if (!opts_.run.empty()) doc.set("run", opts_.run);
  doc.set("t_s", t_s);
  doc.set("interactions", interactions);
  doc.set("interactions_per_s", ips);
  if (opts_.budget > 0) {
    doc.set("budget", opts_.budget);
    const double cum_ips =
        t_s > 0.0 ? static_cast<double>(interactions) / t_s : 0.0;
    const double eta =
        cum_ips > 0.0 && opts_.budget > interactions
            ? static_cast<double>(opts_.budget - interactions) / cum_ips
            : 0.0;
    doc.set("eta_s", eta);
  }
  doc.set("q", metrics.registry_live_states);
  doc.set("peak_rss_kb", peak_rss_kb());
  doc.set("metrics", metrics.to_json());
  emit(doc);
  last_emit_ = now;
  last_interactions_ = interactions;
}

void Journal::event(const std::string& kind, util::Json payload) {
  const double t_s =
      std::chrono::duration<double>(Clock::now() - start_).count();
  auto doc = util::Json::object();
  doc.set("v", kJournalSchemaVersion);
  doc.set("kind", kind);
  if (!opts_.run.empty()) doc.set("run", opts_.run);
  doc.set("t_s", t_s);
  doc.set("data", std::move(payload));
  emit(doc);
}

}  // namespace ssle::obs
