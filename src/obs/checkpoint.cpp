#include "obs/checkpoint.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include <unistd.h>

namespace ssle::obs {

namespace {

constexpr const char* kKind = "ssle-checkpoint";

}  // namespace

std::string hex_u64(std::uint64_t w) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(w));
  return buf;
}

std::optional<std::uint64_t> parse_hex_u64(const std::string& s) {
  if (s.size() != 18 || s[0] != '0' || s[1] != 'x') return std::nullopt;
  std::uint64_t v = 0;
  for (std::size_t i = 2; i < s.size(); ++i) {
    const char c = s[i];
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return std::nullopt;
    }
  }
  return v;
}

util::Json rng_state_to_json(const std::array<std::uint64_t, 4>& state) {
  auto arr = util::Json::array();
  for (const std::uint64_t w : state) arr.push(hex_u64(w));
  return arr;
}

std::optional<std::array<std::uint64_t, 4>> rng_state_from_json(
    const util::Json& j) {
  if (!j.is_array() || j.size() != 4) return std::nullopt;
  std::array<std::uint64_t, 4> words{};
  for (std::size_t k = 0; k < 4; ++k) {
    const auto word_str = j.at(k)->as_string();
    if (!word_str) return std::nullopt;
    const auto word = parse_hex_u64(*word_str);
    if (!word) return std::nullopt;
    words[k] = *word;
  }
  // The all-zero state is a fixed point of xoshiro256** — a checkpoint
  // claiming it is corrupt (the generator can never reach it).
  if ((words[0] | words[1] | words[2] | words[3]) == 0) return std::nullopt;
  return words;
}

util::Json checkpoint_to_json(const CheckpointDoc& doc) {
  auto j = util::Json::object();
  j.set("kind", kKind);
  j.set("v", kCheckpointVersion);
  j.set("engine", doc.engine);
  j.set("protocol", doc.protocol);
  j.set("n", doc.n);
  j.set("interactions", doc.interactions);
  auto rngs = util::Json::array();
  for (const auto& state : doc.rngs) rngs.push(rng_state_to_json(state));
  j.set("rngs", std::move(rngs));
  auto shards = util::Json::array();
  for (const auto& shard : doc.shards) {
    auto classes = util::Json::array();
    for (const auto& [enc, c] : shard) {
      auto entry = util::Json::array();
      entry.push(enc);
      entry.push(c);
      classes.push(std::move(entry));
    }
    shards.push(std::move(classes));
  }
  j.set("shards", std::move(shards));
  if (doc.cursor) j.set("cursor", *doc.cursor);
  return j;
}

std::optional<CheckpointDoc> checkpoint_from_json(const util::Json& j) {
  if (!j.is_object()) return std::nullopt;
  const auto* kind = j.find("kind");
  if (!kind || kind->as_string() != kKind) return std::nullopt;
  const auto* v = j.find("v");
  if (!v || v->as_i64() != kCheckpointVersion) return std::nullopt;

  CheckpointDoc doc;
  const auto* engine = j.find("engine");
  const auto* protocol = j.find("protocol");
  const auto* n = j.find("n");
  const auto* interactions = j.find("interactions");
  const auto* rngs = j.find("rngs");
  const auto* shards = j.find("shards");
  if (!engine || !engine->is_string() || !protocol || !protocol->is_string() ||
      !n || !interactions || !rngs || !rngs->is_array() || !shards ||
      !shards->is_array()) {
    return std::nullopt;
  }
  doc.engine = *engine->as_string();
  doc.protocol = *protocol->as_string();
  const auto n_val = n->as_u64();
  const auto t_val = interactions->as_u64();
  if (!n_val || !t_val) return std::nullopt;
  doc.n = *n_val;
  doc.interactions = *t_val;

  for (std::size_t i = 0; i < rngs->size(); ++i) {
    const auto words = rng_state_from_json(*rngs->at(i));
    if (!words) return std::nullopt;
    doc.rngs.push_back(*words);
  }

  std::uint64_t total = 0;
  for (std::size_t i = 0; i < shards->size(); ++i) {
    const util::Json* shard = shards->at(i);
    if (!shard->is_array()) return std::nullopt;
    doc.shards.emplace_back();
    for (std::size_t k = 0; k < shard->size(); ++k) {
      const util::Json* entry = shard->at(k);
      if (!entry->is_array() || entry->size() != 2) return std::nullopt;
      const auto enc = entry->at(0)->as_string();
      const auto count = entry->at(1)->as_u64();
      if (!enc || !count || *count == 0) return std::nullopt;
      // Count overflow guard: the running population total must not wrap.
      if (total + *count < total) return std::nullopt;
      total += *count;
      doc.shards.back().emplace_back(*enc, *count);
    }
  }
  if (total != doc.n) return std::nullopt;

  if (const auto* cursor = j.find("cursor")) doc.cursor = *cursor;
  return doc;
}

std::string checkpoint_dump(const CheckpointDoc& doc) {
  return checkpoint_to_json(doc).dump() + "\n";
}

std::optional<CheckpointDoc> checkpoint_parse(const std::string& text) {
  const auto j = util::Json::parse(text);
  if (!j) return std::nullopt;
  return checkpoint_from_json(*j);
}

bool checkpoint_save(const std::string& path, const CheckpointDoc& doc) {
  const std::string tmp = path + ".tmp";
  const std::string text = checkpoint_dump(doc);
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "checkpoint: cannot open %s for writing\n",
                 tmp.c_str());
    return false;
  }
  const bool wrote =
      std::fwrite(text.data(), 1, text.size(), f) == text.size() &&
      std::fflush(f) == 0 && ::fsync(::fileno(f)) == 0;
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed) {
    std::fprintf(stderr, "checkpoint: failed writing %s\n", tmp.c_str());
    std::remove(tmp.c_str());
    return false;
  }
  // Atomic publish: a crash before this rename leaves the previous
  // checkpoint intact; after it, the new one is complete.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::fprintf(stderr, "checkpoint: cannot rename %s -> %s\n", tmp.c_str(),
                 path.c_str());
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

std::optional<CheckpointDoc> checkpoint_load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return checkpoint_parse(buf.str());
}

}  // namespace ssle::obs
