#include "obs/report.hpp"

#include <ostream>

namespace ssle::obs {

Report::Report(std::string bench, int pr) {
  doc_ = util::Json::object();
  doc_.set("schema_version", kSchemaVersion);
  doc_.set("bench", std::move(bench));
  doc_.set("pr", pr);
  sections_ = util::Json::object();
}

Report& Report::set(const std::string& key, util::Json v) {
  doc_.set(key, std::move(v));
  return *this;
}

Report& Report::section(const std::string& name, util::Json body) {
  sections_.set(name, std::move(body));
  return *this;
}

util::Json Report::to_json() const {
  util::Json out = doc_;
  out.set("sections", sections_);
  return out;
}

void Report::write_if(const std::string& path, std::ostream& log) const {
  if (path.empty()) return;
  util::write_json_file(path, to_json());
  log << "\nstructured results written to " << path << '\n';
}

}  // namespace ssle::obs
