#include "obs/metrics.hpp"

namespace ssle::obs {

util::Json EngineMetrics::to_json() const {
  auto j = util::Json::object();
  j.set("engine", engine);
  j.set("interactions", interactions);
  j.set("interactions_iterated", interactions_iterated);
  j.set("interactions_leapt", interactions_leapt);
  j.set("blocks_dense", blocks_dense);
  j.set("blocks_fenwick", blocks_fenwick);
  j.set("collision_resolutions", collision_resolutions);
  j.set("community_pair_draws", community_pair_draws);
  j.set("fenwick_point_updates", fenwick_point_updates);
  j.set("fenwick_samples", fenwick_samples);
  j.set("registry_live_states", registry_live_states);
  j.set("registry_allocated_states", registry_allocated_states);
  j.set("registry_capacity", registry_capacity);
  j.set("registry_compactions", registry_compactions);
  j.set("registry_version", registry_version);
  j.set("delta_cache_hits", delta_cache_hits);
  j.set("delta_cache_misses", delta_cache_misses);
  j.set("delta_cache_clears", delta_cache_clears);
  j.set("delta_cache_entries", delta_cache_entries);
  j.set("leap_windows", leap_windows);
  j.set("leap_candidates", leap_candidates);
  j.set("envelope_breaches", envelope_breaches);
  j.set("split_depth_max", split_depth_max);
  j.set("banded_pieces", banded_pieces);
  return j;
}

}  // namespace ssle::obs
