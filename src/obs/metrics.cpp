#include "obs/metrics.hpp"

#include <algorithm>

namespace ssle::obs {

EngineMetrics& EngineMetrics::merge(const EngineMetrics& other) {
  if (engine[0] == '\0') engine = other.engine;
  population += other.population;
  interactions += other.interactions;
  interactions_iterated += other.interactions_iterated;
  interactions_leapt += other.interactions_leapt;
  blocks_dense += other.blocks_dense;
  blocks_fenwick += other.blocks_fenwick;
  blocks_flat += other.blocks_flat;
  flat_scan_draws += other.flat_scan_draws;
  collision_resolutions += other.collision_resolutions;
  community_pair_draws += other.community_pair_draws;
  shards += other.shards;
  intra_shard_interactions += other.intra_shard_interactions;
  cross_shard_interactions += other.cross_shard_interactions;
  fenwick_point_updates += other.fenwick_point_updates;
  fenwick_samples += other.fenwick_samples;
  registry_live_states += other.registry_live_states;
  registry_allocated_states += other.registry_allocated_states;
  registry_capacity += other.registry_capacity;
  registry_compactions += other.registry_compactions;
  registry_version += other.registry_version;
  delta_cache_hits += other.delta_cache_hits;
  delta_cache_misses += other.delta_cache_misses;
  delta_cache_clears += other.delta_cache_clears;
  delta_cache_entries += other.delta_cache_entries;
  leap_windows += other.leap_windows;
  leap_candidates += other.leap_candidates;
  envelope_breaches += other.envelope_breaches;
  split_depth_max = std::max(split_depth_max, other.split_depth_max);
  banded_pieces += other.banded_pieces;
  return *this;
}

util::Json EngineMetrics::to_json() const {
  auto j = util::Json::object();
  j.set("engine", engine);
  j.set("population", population);
  j.set("interactions", interactions);
  j.set("interactions_iterated", interactions_iterated);
  j.set("interactions_leapt", interactions_leapt);
  j.set("blocks_dense", blocks_dense);
  j.set("blocks_fenwick", blocks_fenwick);
  j.set("blocks_flat", blocks_flat);
  j.set("flat_scan_draws", flat_scan_draws);
  j.set("collision_resolutions", collision_resolutions);
  j.set("community_pair_draws", community_pair_draws);
  j.set("shards", shards);
  j.set("intra_shard_interactions", intra_shard_interactions);
  j.set("cross_shard_interactions", cross_shard_interactions);
  j.set("fenwick_point_updates", fenwick_point_updates);
  j.set("fenwick_samples", fenwick_samples);
  j.set("registry_live_states", registry_live_states);
  j.set("registry_allocated_states", registry_allocated_states);
  j.set("registry_capacity", registry_capacity);
  j.set("registry_compactions", registry_compactions);
  j.set("registry_version", registry_version);
  j.set("delta_cache_hits", delta_cache_hits);
  j.set("delta_cache_misses", delta_cache_misses);
  j.set("delta_cache_clears", delta_cache_clears);
  j.set("delta_cache_entries", delta_cache_entries);
  j.set("leap_windows", leap_windows);
  j.set("leap_candidates", leap_candidates);
  j.set("envelope_breaches", envelope_breaches);
  j.set("split_depth_max", split_depth_max);
  j.set("banded_pieces", banded_pieces);
  return j;
}

}  // namespace ssle::obs
