#include "pp/simulator.hpp"

namespace ssle::pp {}
