#include "pp/sharded_simulator.hpp"

#include <algorithm>
#include <thread>

namespace ssle::pp {

std::size_t default_shard_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  const std::size_t cores = hw == 0 ? 1 : hw;
  return std::clamp<std::size_t>(cores, 1, 8);
}

}  // namespace ssle::pp
