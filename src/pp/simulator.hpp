// Simulation loop with periodic predicate probing.
//
// Population-protocol complexity is counted in pairwise interactions;
// "parallel time" = interactions / n (paper §1).  The simulator advances
// the configuration one scheduled interaction at a time and periodically
// evaluates a caller-supplied predicate (e.g. "is this configuration
// safe?").  `run_until` returns the first probe at which the predicate
// holds, giving stabilization measurements with ±probe_every granularity.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <optional>

#include "obs/metrics.hpp"
#include "pp/population.hpp"
#include "pp/protocol.hpp"
#include "pp/scheduler.hpp"

namespace ssle::pp {

struct RunResult {
  /// Interactions executed when the predicate first held (probe granular).
  std::uint64_t interactions = 0;
  bool converged = false;

  double parallel_time(std::uint32_t n) const {
    return n == 0 ? 0.0
                  : static_cast<double>(interactions) / static_cast<double>(n);
  }
};

/// Scheduler concept: yields the next interacting ordered pair.
template <typename S>
concept Scheduler = requires(S s) {
  { s.next() } -> std::same_as<Pair>;
};

template <Protocol P, Scheduler Sched = UniformScheduler>
class Simulator {
 public:
  using Predicate =
      std::function<bool(const Population<P>&, std::uint64_t /*interactions*/)>;

  /// Generic constructor with an explicit scheduler (e.g. a GraphScheduler
  /// restricting interactions to the edges of a communication graph).
  Simulator(const P& protocol, Population<P> population, Sched scheduler,
            std::uint64_t seed)
      : protocol_(protocol),
        population_(std::move(population)),
        scheduler_(std::move(scheduler)),
        agent_rng_(util::substream(seed, 2)) {}

  Simulator(const P& protocol, Population<P> population, std::uint64_t seed)
    requires std::same_as<Sched, UniformScheduler>
      : protocol_(protocol),
        population_(std::move(population)),
        scheduler_(population_.size(), util::substream(seed, 1)),
        agent_rng_(util::substream(seed, 2)) {}

  Simulator(const P& protocol, std::uint64_t seed)
    requires std::same_as<Sched, UniformScheduler>
      : Simulator(protocol, Population<P>(protocol), seed) {}

  /// Executes exactly `count` interactions.
  void step(std::uint64_t count = 1) {
    for (std::uint64_t i = 0; i < count; ++i) {
      const Pair pair = scheduler_.next();
      protocol_.interact(population_[pair.initiator],
                         population_[pair.responder], agent_rng_);
      ++interactions_;
    }
  }

  /// Runs until `done` holds at a probe, or `max_interactions` elapsed.
  /// Probes are evaluated at interaction counts that are multiples of
  /// `probe_every` (and once before the first interaction, catching
  /// configurations that already satisfy the predicate).
  RunResult run_until(const Predicate& done, std::uint64_t max_interactions,
                      std::uint64_t probe_every = 0) {
    if (probe_every == 0) {
      probe_every = std::max<std::uint64_t>(1, population_.size());
    }
    if (done(population_, interactions_)) {
      return {interactions_, true};
    }
    const std::uint64_t limit = interactions_ + max_interactions;
    while (interactions_ < limit) {
      const std::uint64_t chunk = std::min<std::uint64_t>(
          probe_every, limit - interactions_);
      step(chunk);
      if (done(population_, interactions_)) {
        return {interactions_, true};
      }
    }
    return {interactions_, false};
  }

  std::uint64_t interactions() const { return interactions_; }

  /// Uniform engine-metrics snapshot (obs/metrics.hpp).  The naive engine
  /// iterates every interaction over the agent array and has no counts
  /// registry, so only the interaction counters are meaningful.
  obs::EngineMetrics metrics() const {
    obs::EngineMetrics m;
    m.engine = "naive";
    m.population = population_.size();
    m.interactions = interactions_;
    m.interactions_iterated = interactions_;
    return m;
  }

  Population<P>& population() { return population_; }
  const Population<P>& population() const { return population_; }
  const P& protocol() const { return protocol_; }

 private:
  P protocol_;
  Population<P> population_;
  Sched scheduler_;
  util::Rng agent_rng_;
  std::uint64_t interactions_ = 0;
};

}  // namespace ssle::pp
