// Population container: the configuration C ∈ Q^n of the paper, i.e. the
// vector of all agents' states.
#pragma once

#include <cstdint>
#include <vector>

#include "pp/protocol.hpp"

namespace ssle::pp {

template <Protocol P>
class Population {
 public:
  using State = typename P::State;

  /// Builds the clean initial configuration defined by the protocol.
  explicit Population(const P& protocol) {
    states_.reserve(protocol.population_size());
    for (std::uint32_t i = 0; i < protocol.population_size(); ++i) {
      states_.push_back(protocol.initial_state(i));
    }
  }

  /// Builds a population from an explicit configuration (used by the
  /// adversary to exercise self-stabilization from arbitrary states).
  explicit Population(std::vector<State> states) : states_(std::move(states)) {}

  std::uint32_t size() const { return static_cast<std::uint32_t>(states_.size()); }
  State& operator[](std::uint32_t i) { return states_[i]; }
  const State& operator[](std::uint32_t i) const { return states_[i]; }

  std::vector<State>& states() { return states_; }
  const std::vector<State>& states() const { return states_; }

 private:
  std::vector<State> states_;
};

}  // namespace ssle::pp
