// Pair-type leap engine: jump whole runs of interactions in one draw.
//
// Both existing engines pay at least one loop iteration per interaction —
// even the batched engine's memoized-δ floor (~7 ns, bench_m1_micro) makes
// n = 10^10 epidemics hours of wall-clock, because the uniform scheduler's
// 2.3·10^11 interactions are iterated one by one even though almost all of
// them are NULL: for narrow-registry deterministic-δ protocols, most
// ordered pairs of states map to themselves (or to each other), so the
// counts configuration does not move.  This engine stops iterating them.
//
// Model.  Project the configuration onto state counts (exact by
// lumpability, pp/counts.hpp).  Under the uniform scheduler an interaction
// picks an ordered pair of distinct agents u.a.r., so a *pair type* (a, b)
// of class ids fires with probability w(a,b) / W_tot, where
//
//   w(a, b) = c_a · c_b        (a ≠ b),     w(a, a) = c_a · (c_a − 1),
//   W_tot   = n · (n − 1)      (constant),
//
// and with deterministic δ each pair type is durably *null* (outputs equal
// inputs as a multiset: the counts chain does not move) or *active*.  The
// active types are precomputed once by closing the q × q pair-type table
// under δ (outputs of registered classes are registered and their pairs
// evaluated, to a fixpoint) — this is where the narrow-registry eligibility
// trait (pp::LeapEligible, pp/protocol.hpp) matters: the table is O(q²).
//
// Leap.  Let W_act = Σ_active w.  The number of consecutive null
// interactions before the next active one is geometric with success
// probability W_act / W_tot — but sampling it per event still costs a log
// per active interaction.  Instead the engine works in *windows* of m
// scheduler slots under a thinning envelope:
//
//   * W̄ ≥ sup W_act over every state reachable within the window
//     (each active event moves any single class count by ≤ 2, so
//     W̄ = Σ_active w(c_a + 2·cap, c_b + 2·cap) computed at window start
//     is a valid envelope for any ≤ cap events), capped at W_tot;
//   * the count of *candidate* slots in the window is one exact binomial
//     draw  C ~ B(m, W̄ / W_tot)  (sample_binomial below) — null runs
//     between candidates are leapt wholesale, never iterated;
//   * each candidate draws one uniform u·W̄ and is accepted iff
//     u·W̄ < W_act (current value): accepted candidates are exactly the
//     active interactions, and the *same* draw, now uniform on [0, W_act),
//     classifies which active pair type fired (cumulative-weight walk over
//     the O(q²) active types) — one multiplication + compare per candidate,
//     no log, no division;
//   * m is sized so E[C] ≈ 2·cap/3; in the astronomically rare event
//     C > cap (the envelope's event bound could be breached) the window is
//     *split* exactly.  Candidates distribute over the halves
//     hypergeometrically (slots are exchangeable) and the first half
//     recurses under the same envelope; the second half KEEPS its share
//     of the candidates — the split was entered *because* the window came
//     out candidate-rich, and that conditioning must be carried, not
//     redrawn — and when the envelope recomputed at the half boundary
//     rises above the old one, the still-unresolved slots are promoted to
//     candidates on the new level band [W̄, W̄₂) with their exact
//     conditional probability (split_piece below) — the trajectory law
//     is exact, not approximate, on every path.
//
// Banded batch (the n = 10^10 enabler).  When every active pair type has
// the *same net count delta* (the epidemic: both orders of (I, S) are net
// {S: −1, I: +1}), which type fired is irrelevant to the counts
// trajectory, and a second, *lower* envelope removes the per-candidate
// loop: W_low = Σ_active w(c − 2·C) (clamped at 0, valid because a piece
// of C candidates holds ≤ C events) bounds W_act from below over the
// whole piece, so every candidate whose u·W̄ lands in [0, W_low) is a
// *sure accept no matter how many events precede it*.  Each candidate is
// independently *marginal* (u·W̄ ∈ [W_low, W̄)) with probability
// p = 1 − W_low/W̄, so the runs of sure accepts between marginals are
// geometric: one inverse-transform draw leaps each run wholesale, and
// only the marginal candidates — an O(cap/n) fraction mid-run, usually
// zero per window — are resolved individually, accepting with probability
// (W_act(j) − W_low) / (W̄ − W_low) where j counts accepted events before
// that candidate (W_act(j) = Σ w(c₀ + j·Δ) is closed-form under a
// uniform net delta Δ).  The accepts are applied as one batched count
// update.  The law is exactly the sequential thinning law — the band
// split is a partition of each u's range, and the iid marginal/sure
// decomposition is exact, nothing is approximated — but a mid-run piece
// costs O(1 + marginals) draws instead of one per candidate.  Pieces
// where W_low = 0 (epidemic endgame, tiny populations, tiny caps) or the
// band is wide (p > 1/8: a log per marginal would cost more than the
// multiply-compare per candidate it saves), and protocols with
// heterogeneous deltas (LooseLeaderElection), fall back to the
// per-candidate loop unchanged.
//
// Positions of candidates inside a window are never materialized: the
// counts chain only moves at active events and is only *observed* at
// window boundaries (probes run between step() calls), so the candidate
// subsequence is all that exists.  When W_act = 0 (every pair type null —
// e.g. a fully infected epidemic) any remaining budget is consumed in
// O(1): the configuration is frozen forever under a deterministic δ.
//
// Cost per active interaction is O(1) with tiny constants plus an O(A)
// classification walk (A = number of active pair types); per *window* an
// O(A) envelope rebuild and one O(σ) binomial draw, amortized over
// ~2·cap/3 candidates.  For the epidemic (q = 2, A = 2) the n = 10^10 Lemma A.2 sweep
// — 2.3·10^11 interactions, 10^10 of them active — runs in tens of
// seconds; the 2.2·10^11 null interactions cost *zero* iterations.  Where
// active types carry most of the weight (LooseLeaderElection's
// follower×follower timer decrements, q ≈ n random starts) W̄ ≈ W_tot and
// leaping degrades gracefully to ~1 candidate per interaction — exact but
// no faster than batched; ROADMAP records those honest numbers.
//
// Numerical contract: weights are products of counts in double (exact
// below 2^53, ≤ 1e-16 relative above — same standard as the batched
// engine's log-space hypergeometric pmf).  W_act is maintained
// incrementally between events and rebuilt exactly from counts at every
// window boundary, so rounding drift is bounded per window, never
// accumulated across the run.
//
// The API mirrors BatchedSimulator (`step`, `run_until`, RunResult, probe
// semantics, counts-predicates).  Unlike the batched engine it never
// compacts the registry: the closure pre-registers the protocol's entire
// reachable class set (bounded by the narrow-registry contract), and those
// ids must stay stable because the pair-type table is keyed on them — a
// config().compact() between steps is detected (interner version counter)
// and aborts rather than running on stale ids.
#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "pp/batched_simulator.hpp"  // sample_hypergeometric (window splits)
#include "pp/counts.hpp"
#include "pp/protocol.hpp"
#include "pp/simulator.hpp"
#include "util/rng.hpp"

namespace ssle::pp {

/// Exact binomial draw B(trials, p) by mode-centered inverse transform in
/// log space (pmf recurrence outward from the mode, expected O(σ) visited
/// support points).  Floating-point residue is attributed to the outermost
/// *visited* support point on the heavier side — an O(double-epsilon)
/// overweight of that endpoint; the same tail policy as
/// sample_hypergeometric, and for the same reason: the uncovered sliver
/// lives in the tails, not at the mode.
std::uint64_t sample_binomial(util::Rng& rng, std::uint64_t trials, double p);

template <Protocol P>
class LeapingSimulator {
  static_assert(kDeterministicDelta<P>,
                "LeapingSimulator requires a deterministic transition "
                "function: pair types must be durably null or active.  "
                "Randomized-δ protocols are rejected at compile time; "
                "analysis::stabilize routes them to the batched engine.");
  static_assert(kNarrowRegistry<P>,
                "LeapingSimulator requires a narrow registry (declare "
                "P::kNarrowRegistry after checking the reachable state "
                "space is bounded independent of n): the pair-type table "
                "is O(q^2) and must close.");

 public:
  using State = typename P::State;
  using Config = CountsConfiguration<P>;
  using Predicate =
      std::function<bool(const Config&, std::uint64_t /*interactions*/)>;

  /// Events-per-window envelope bound.  Windows are sized for ≈ 2·cap/3
  /// expected candidates, so the envelope (valid for ≤ cap events) is
  /// breached — c > cap, a 1.5× overshoot of the mean — with probability
  /// < e^(−cap/18) by Chernoff: ~e^(−341) at the default, never in
  /// practice; the exact split path covers it when it happens.  The cap
  /// also sets the envelope slack (2·cap on every count), so it trades
  /// window overhead against band width: smaller caps mean more windows
  /// but a tighter marginal band for the banded batch path.  Tests use
  /// tiny caps to force the split path.
  static constexpr std::uint32_t kDefaultEventCap = 6144;

  LeapingSimulator(const P& protocol, Config config, std::uint64_t seed,
                   std::uint32_t event_cap = kDefaultEventCap)
      : protocol_(protocol),
        config_(std::move(config)),
        rng_(util::substream(seed, 1)),
        agent_rng_(util::substream(seed, 2)),
        event_cap_(std::max<std::uint32_t>(1, event_cap)) {}

  LeapingSimulator(const P& protocol, std::uint64_t seed,
                   std::uint32_t event_cap = kDefaultEventCap)
      : LeapingSimulator(protocol, Config(protocol), seed, event_cap) {}

  /// Executes exactly `count` interactions (leaping null runs).  With
  /// fewer than two agents no pair exists; steps are counted (so
  /// run_until terminates) but are no-ops — same contract as the other
  /// engines.
  void step(std::uint64_t count = 1) {
    if (config_.population_size() < 2) {
      interactions_ += count;
      return;
    }
    ensure_table();
    pull_counts();
    std::uint64_t remaining = count;
    while (remaining > 0) {
      const std::uint64_t consumed = leap_window(remaining);
      interactions_ += consumed;
      remaining -= consumed;
    }
    push_counts();
  }

  /// Same contract as Simulator::run_until: probes at multiples of
  /// `probe_every` interactions (default n), plus once up front.
  RunResult run_until(const Predicate& done, std::uint64_t max_interactions,
                      std::uint64_t probe_every = 0) {
    if (probe_every == 0) {
      probe_every = std::max<std::uint64_t>(1, config_.population_size());
    }
    if (done(config_, interactions_)) {
      return {interactions_, true};
    }
    const std::uint64_t limit = interactions_ + max_interactions;
    while (interactions_ < limit) {
      const std::uint64_t chunk =
          std::min<std::uint64_t>(probe_every, limit - interactions_);
      step(chunk);
      if (done(config_, interactions_)) {
        return {interactions_, true};
      }
    }
    return {interactions_, false};
  }

  std::uint64_t interactions() const { return interactions_; }
  Config& config() { return config_; }
  const Config& config() const { return config_; }
  const P& protocol() const { return protocol_; }

  // Leap statistics: benchmarks report them; tests pin paths down.
  /// Count-changing interactions actually executed.
  std::uint64_t events() const { return events_; }
  /// Interactions leapt as nulls (never iterated).
  std::uint64_t leapt_nulls() const { return interactions_ - events_; }
  /// Thinning candidates examined (accepted + rejected).
  std::uint64_t candidates() const { return candidates_; }
  /// Leap windows run.
  std::uint64_t windows() const { return windows_; }
  /// Envelope-breach window splits taken (astronomically rare at the
  /// default cap; tests force them with tiny caps).
  std::uint64_t splits() const { return splits_; }
  /// Deepest split recursion reached over the run (0 when no window was
  /// ever split) — how far the exact over-cap machinery had to descend.
  std::uint64_t split_depth_max() const { return split_depth_max_; }
  /// Window pieces resolved by the banded batch path (uniform net delta,
  /// W_low > 0) — O(1) draws instead of one per candidate.
  std::uint64_t banded_pieces() const { return banded_pieces_; }
  /// True when every active pair type shares one net count delta, making
  /// the banded batch path available.
  bool uniform_net_delta() const { return uniform_net_; }
  /// Size of the closed pair-type table: distinct classes × active types.
  std::uint32_t table_classes() const { return table_q_; }
  std::uint32_t active_pair_types() const {
    return static_cast<std::uint32_t>(active_.size());
  }

  /// Uniform engine-metrics snapshot (obs/metrics.hpp): iterated = the
  /// count-changing events actually executed, leapt = the null runs
  /// consumed without iteration, plus window/split statistics and the
  /// registry's counters (touched only at step boundaries — the hot loop
  /// runs on the detached count vector).
  obs::EngineMetrics metrics() const {
    obs::EngineMetrics m;
    m.engine = "leaping";
    m.population = config_.population_size();
    m.interactions = interactions_;
    m.interactions_iterated = events_;
    m.interactions_leapt = interactions_ - events_;
    m.fenwick_point_updates = config_.fenwick_updates();
    m.fenwick_samples = config_.fenwick_samples();
    m.registry_live_states = config_.num_live_states();
    m.registry_allocated_states = config_.num_allocated_states();
    m.registry_capacity = config_.num_states();
    m.registry_compactions = config_.compactions();
    m.registry_version = config_.registry_version();
    m.leap_windows = windows_;
    m.leap_candidates = candidates_;
    m.envelope_breaches = splits_;
    m.split_depth_max = split_depth_max_;
    m.banded_pieces = banded_pieces_;
    return m;
  }

 private:
  struct PairType {
    std::uint32_t a, b;    ///< input class ids (ordered pair)
    std::uint32_t oa, ob;  ///< δ output class ids
    double w = 0.0;        ///< current weight c_a·c_b (or c_a·(c_a−1))
  };

  /// Hard sanity bound on the closure: a protocol that overruns it lied
  /// about kNarrowRegistry (its reachable class set grows with n) and the
  /// O(q²) table would be useless anyway.  Fail loudly, not slowly.
  static constexpr std::uint32_t kMaxClasses = 65536;

  /// Closes the pair-type table under δ: evaluates every ordered pair of
  /// registered classes, registering output classes (count 0) and
  /// iterating until no new class appears.  Incremental: pairs with both
  /// ids below the previously closed extent are skipped, so post-closure
  /// calls are O(1) and external state injections (config() mutation
  /// between steps) only evaluate the new rows/columns.
  void ensure_table() {
    std::uint32_t q = config_.num_states();
    if (table_built_) {
      // The table is keyed on class ids (header contract: this engine
      // never compacts, and the caller must not either).  A compact()
      // between steps reclaims ids — active_ would hold stale classes
      // and touch_ could be indexed out of bounds.  Fail loudly, like
      // the kMaxClasses check, instead of corrupting the trajectory.
      if (config_.interner().version() != table_version_ || q < table_q_) {
        std::fprintf(stderr,
                     "LeapingSimulator: registry ids changed after closure "
                     "(config().compact() between steps?) — the pair-type "
                     "table is keyed on stable ids and is now invalid.\n");
        std::abort();
      }
      if (q == table_q_) return;
    }
    std::uint32_t done = table_built_ ? table_q_ : 0;
    while (done < q) {
      for (std::uint32_t i = 0; i < q; ++i) {
        if (!config_.interner().allocated(i)) continue;
        for (std::uint32_t j = 0; j < q; ++j) {
          if (i < done && j < done) continue;
          if (!config_.interner().allocated(j)) continue;
          evaluate_pair(i, j);
        }
      }
      done = q;
      q = config_.num_states();  // grew if outputs registered new classes
      if (q > kMaxClasses) {
        std::fprintf(stderr,
                     "LeapingSimulator: pair-type closure exceeded %u "
                     "classes — the protocol's kNarrowRegistry declaration "
                     "is wrong (reachable state space is not bounded).\n",
                     kMaxClasses);
        std::abort();
      }
    }
    table_q_ = q;
    table_version_ = config_.interner().version();
    table_built_ = true;
    touch_.assign(table_q_, {});
    for (std::uint32_t t = 0; t < active_.size(); ++t) {
      touch_[active_[t].a].push_back(t);
      if (active_[t].b != active_[t].a) touch_[active_[t].b].push_back(t);
    }
    analyze_net_deltas();
  }

  /// Detects whether every active pair type shares one net count delta —
  /// the precondition for the banded batch path (which never classifies
  /// accepted candidates).  Stores the common delta sparsely.
  void analyze_net_deltas() {
    uniform_net_ = false;
    net_.clear();
    if (active_.empty()) return;
    std::vector<std::int64_t> delta(table_q_, 0);
    const auto net_of = [&](const PairType& t) {
      std::fill(delta.begin(), delta.end(), 0);
      --delta[t.a];
      --delta[t.b];
      ++delta[t.oa];
      ++delta[t.ob];
      return delta;
    };
    const std::vector<std::int64_t> first = net_of(active_[0]);
    for (std::size_t t = 1; t < active_.size(); ++t) {
      if (net_of(active_[t]) != first) return;
    }
    for (std::uint32_t i = 0; i < table_q_; ++i) {
      if (first[i] != 0) net_.push_back({i, first[i]});
    }
    uniform_net_ = !net_.empty();  // all-zero net would mean null types
  }

  void evaluate_pair(std::uint32_t i, std::uint32_t j) {
    State sa = config_.state(i);
    State sb = config_.state(j);
    protocol_.interact(sa, sb, agent_rng_);  // deterministic: draws nothing
    const std::uint32_t oa = config_.index_of(sa, i);
    const std::uint32_t ob = config_.index_of(sb, j);
    // Null iff outputs equal inputs as a multiset (identity or swap):
    // either way the counts chain does not move.
    if ((oa == i && ob == j) || (oa == j && ob == i)) return;
    active_.push_back(PairType{i, j, oa, ob, 0.0});
  }

  // --- detached counts -------------------------------------------------
  // During step() the engine works on a plain id → count vector: the
  // Fenwick tree and live-class bookkeeping of CountsConfiguration are
  // pure overhead on a path that runs 10^10 times.  Probes only observe
  // config_ between steps, so syncing at step boundaries is exact.

  void pull_counts() {
    cnt_ = config_.counts();
    cnt_.resize(table_q_, 0);
    const double n = static_cast<double>(config_.population_size());
    w_total_ = n * (n - 1.0);
  }

  void push_counts() {
    for (std::uint32_t i = 0; i < table_q_; ++i) {
      const std::uint64_t have = config_.count(i);
      if (cnt_[i] > have) {
        config_.add_at(i, cnt_[i] - have);
      } else if (cnt_[i] < have) {
        config_.remove_at(i, have - cnt_[i]);
      }
    }
  }

  // --- weights ---------------------------------------------------------

  double weight_of(const PairType& t) const {
    const double ca = static_cast<double>(cnt_[t.a]);
    if (t.a == t.b) return ca >= 2.0 ? ca * (ca - 1.0) : 0.0;
    return ca * static_cast<double>(cnt_[t.b]);
  }

  /// Rebuilds every active weight and W_act exactly from counts.
  void refresh_weights() {
    double sum = 0.0;
    for (PairType& t : active_) {
      t.w = weight_of(t);
      sum += t.w;
    }
    w_active_ = sum;
  }

  /// Σ_active w evaluated with every count inflated by `slack` — an upper
  /// bound on W_act over all states reachable within slack/2 events (one
  /// event moves any single class count by at most 2).
  double active_weight_bound(double slack) const {
    double sum = 0.0;
    for (const PairType& t : active_) {
      const double ca = static_cast<double>(cnt_[t.a]) + slack;
      const double cb = t.a == t.b
                            ? ca - 1.0
                            : static_cast<double>(cnt_[t.b]) + slack;
      sum += ca * cb;
    }
    return sum;
  }

  /// Σ_active w with every count *deflated* by `slack` (clamped at 0) — a
  /// lower bound on W_act over the same reachable set, the sure-accept
  /// band of the banded batch path.
  double active_weight_floor(double slack) const {
    double sum = 0.0;
    for (const PairType& t : active_) {
      const double ca =
          std::max(0.0, static_cast<double>(cnt_[t.a]) - slack);
      const double cb =
          t.a == t.b
              ? std::max(0.0, ca - 1.0)
              : std::max(0.0, static_cast<double>(cnt_[t.b]) - slack);
      sum += ca * cb;
    }
    return sum;
  }

  /// W_act after exactly `j` events under the uniform net delta, from the
  /// current (piece-start) counts.  Exact: under a uniform net delta the
  /// counts trajectory is c₀ + j·Δ regardless of which types fired.
  double active_weight_after(std::uint64_t j) const {
    const double dj = static_cast<double>(j);
    const auto count_at = [&](std::uint32_t cls) {
      double c = static_cast<double>(cnt_[cls]);
      for (const auto& [net_cls, d] : net_) {
        if (net_cls == cls) c += dj * static_cast<double>(d);
      }
      return c;
    };
    double sum = 0.0;
    for (const PairType& t : active_) {
      const double ca = count_at(t.a);
      const double cb = t.a == t.b ? ca - 1.0 : count_at(t.b);
      if (ca > 0.0 && cb > 0.0) sum += ca * cb;
    }
    return sum;
  }

  // --- the leap --------------------------------------------------------

  /// Runs one leap window over at most `remaining` scheduler slots;
  /// returns the number of interactions consumed.
  std::uint64_t leap_window(std::uint64_t remaining) {
    refresh_weights();
    if (w_active_ <= 0.0) return remaining;  // frozen: all pair types null
    const double wbar =
        std::min(active_weight_bound(2.0 * event_cap_), w_total_);
    const double pbar = std::min(1.0, wbar / w_total_);
    std::uint64_t m = remaining;
    const double target = 2.0 * static_cast<double>(event_cap_) / 3.0;
    if (static_cast<double>(m) * pbar > target) {
      m = std::max<std::uint64_t>(1,
                                  static_cast<std::uint64_t>(target / pbar));
    }
    const std::uint64_t c = sample_binomial(rng_, m, pbar);
    run_piece(m, c, wbar);
    ++windows_;
    return m;
  }

  // Every slot carries a latent level V ~ U[0, W_tot): the slot is an
  // event iff V < W_act at that slot.  The window machinery only ever
  // *reveals* information about the V's — a piece's knowledge is a slot
  // count m, a resolved `level` L, and a set of bands: `count` slots with
  // V uniform on [lo, hi), all other slots known to have V ≥ L.  A piece
  // is processable directly when its total candidate count is ≤ cap
  // (then ≤ cap events occur, L ≥ W_act throughout by the level
  // invariant, and every non-band slot is a sure non-event); otherwise
  // it splits.

  /// One thinning band: `count` candidate slots whose latent levels are
  /// iid uniform on [lo, hi).
  struct Band {
    std::uint64_t count;
    double lo, hi;
  };

  /// Processes a window piece of `m` slots containing `c` candidates under
  /// envelope `wbar` (computed, with slack 2·cap, at this piece's start
  /// state).  When c ≤ event_cap_ the envelope is valid for the whole
  /// piece and the candidates run directly; otherwise the piece is split
  /// exactly (split_piece).
  void run_piece(std::uint64_t m, std::uint64_t c, double wbar) {
    if (c > event_cap_) {
      split_piece(m, wbar, {Band{c, 0.0, wbar}});
      return;
    }
    candidates_ += c;
    if (c > 0 && uniform_net_ && run_piece_banded(c, wbar)) return;
    for (std::uint64_t k = 0; k < c; ++k) {
      const double u = rng_.real() * wbar;
      if (u < w_active_) apply_event(u);
    }
  }

  /// Exact split of an over-cap piece.  The branch condition (> cap
  /// candidates) is *information about this window's overlay*, so the
  /// candidates cannot be discarded and redrawn — conditional on the
  /// split, the window really is candidate-rich, and a fresh redraw would
  /// under-rate events (just as the pre-fix variant, which kept the counts
  /// but accepted them against the recomputed envelope, under-rated by
  /// W̄/W̄₂ per slot).  Instead the overlay is carried through exactly:
  ///
  ///   * each band's candidates distribute over the halves
  ///     hypergeometrically, bands drawn in creation order (band i is a
  ///     uniform subset of the slots not holding bands < i);
  ///   * the first half recurses with the inherited level — it starts at
  ///     the same state, so the level invariant (level ≥ W_act within
  ///     cap events of the piece start) still holds;
  ///   * at the half boundary the envelope is recomputed; if it *rose*
  ///     above the resolved level, each unresolved second-half slot
  ///     (V ≥ level) is promoted to a candidate with the exact
  ///     conditional probability (W̄₂ − L)/(W_tot − L), forming a new
  ///     band on [L, W̄₂) — these are the slots the first-half events
  ///     made newly eligible, the mass the stale-envelope bug dropped.
  void split_piece(std::uint64_t m, double level, std::vector<Band> bands) {
    ++splits_;
    ++split_depth_;
    split_depth_max_ = std::max(split_depth_max_, split_depth_);
    const std::uint64_t m1 = m / 2;  // total > cap ≥ 1 forces m ≥ 2
    const std::uint64_t m2 = m - m1;
    std::vector<Band> b1, b2;
    std::uint64_t rem_total = m;
    std::uint64_t rem_h1 = m1;
    std::uint64_t known2 = 0;
    for (const Band& b : bands) {
      const std::uint64_t in1 =
          sample_hypergeometric(rng_, rem_total, b.count, rem_h1);
      if (in1 > 0) b1.push_back(Band{in1, b.lo, b.hi});
      if (b.count > in1) {
        b2.push_back(Band{b.count - in1, b.lo, b.hi});
        known2 += b.count - in1;
      }
      rem_total -= b.count;
      rem_h1 -= in1;
    }
    run_bands(m1, level, std::move(b1));
    refresh_weights();
    double level2 = level;
    const double wbar2 =
        std::min(active_weight_bound(2.0 * event_cap_), w_total_);
    if (wbar2 > level) {
      // level < wbar2 ≤ W_tot, so the conditional below is well defined.
      const std::uint64_t extra = sample_binomial(
          rng_, m2 - known2, (wbar2 - level) / (w_total_ - level));
      if (extra > 0) b2.push_back(Band{extra, level, wbar2});
      level2 = wbar2;
    }
    run_bands(m2, level2, std::move(b2));
    --split_depth_;
  }

  /// Processes a piece described by bands.  Splits again while over cap;
  /// a single zero-based band with a matching level is the common window
  /// shape and takes run_piece's fast paths; the general case resolves
  /// candidates in exchangeable order (band chosen by remaining counts,
  /// without replacement) with each level drawn uniformly in its band.
  void run_bands(std::uint64_t m, double level, std::vector<Band> bands) {
    std::uint64_t total = 0;
    for (const Band& b : bands) total += b.count;
    if (total > event_cap_) {
      split_piece(m, level, std::move(bands));
      return;
    }
    if (bands.size() == 1 && bands[0].lo == 0.0 && bands[0].hi == level) {
      run_piece(m, total, level);
      return;
    }
    candidates_ += total;
    while (total > 0) {
      std::uint64_t pick = rng_.below(total);
      std::size_t i = 0;
      while (pick >= bands[i].count) pick -= bands[i].count, ++i;
      --bands[i].count;
      --total;
      const double u =
          bands[i].lo + rng_.real() * (bands[i].hi - bands[i].lo);
      if (u < w_active_) apply_event(u);
    }
  }

  /// Banded batch path for uniform-net-delta tables: resolves all `c`
  /// candidates with one geometric draw per sure-accept run plus one
  /// accept decision per *marginal* candidate.  Returns false (having
  /// consumed no randomness and changed nothing) when the band is
  /// degenerate — W_low = 0, the band is wide enough that the sequential
  /// loop is cheaper, or the batched update could underflow a count — so
  /// the caller's sequential loop handles the piece instead.
  bool run_piece_banded(std::uint64_t c, double wbar) {
    // The floor only needs to hold over THIS piece — at most c events —
    // so it deflates counts by 2·c, not 2·cap: a tighter band whenever
    // the piece undershoots the cap (always, except after splits).
    const double wlow = active_weight_floor(2.0 * static_cast<double>(c));
    if (wlow <= 0.0) return false;
    // All c candidates accepting must keep every count non-negative for
    // the batched update to be meaningful.  W_low > 0 implies this for
    // every protocol whose active types consume what the net drains, but
    // the engine guards rather than trusts.
    for (const auto& [cls, d] : net_) {
      if (d < 0 &&
          cnt_[cls] < c * static_cast<std::uint64_t>(-d)) {
        return false;
      }
    }
    const double p_marginal = 1.0 - wlow / wbar;
    if (p_marginal > 0.125) {
      // Wide band: each marginal costs a log and a closed-form weight
      // rebuild, so past ~c/8 expected marginals the sequential loop's
      // one multiply-compare per candidate wins.  Nothing has been drawn
      // yet, so falling back is free.
      return false;
    }
    std::uint64_t accepts = 0;  // events so far within the piece
    if (p_marginal <= 0.0) {
      accepts = c;  // the floor covers the whole envelope: all sure
    } else {
      // Each candidate is independently marginal with probability
      // p_marginal, so the runs of sure accepts between marginals are
      // geometric: leap each run with one inverse-transform draw,
      // truncated at the piece end (exact, by memorylessness).  Sure
      // accepts need no decision — u·W̄ < W_low ≤ W_act(j) at any j
      // reachable in the piece.
      const double log_keep = std::log1p(-p_marginal);  // < 0
      std::uint64_t k = 0;  // candidates consumed
      while (k < c) {
        const double run_f = std::log1p(-rng_.real()) / log_keep;
        const std::uint64_t left = c - k;
        const std::uint64_t run = run_f >= static_cast<double>(left)
                                      ? left
                                      : static_cast<std::uint64_t>(run_f);
        accepts += run;
        k += run;
        if (k >= c) break;
        // Candidate k is marginal: accept with the conditional
        // probability given u·W̄ ∈ [W_low, W̄), at the current event
        // count (uniform net delta makes W_act(j) closed-form).
        const double wact_j = active_weight_after(accepts);
        const double p_acc =
            std::clamp((wact_j - wlow) / (wbar - wlow), 0.0, 1.0);
        if (rng_.real() < p_acc) ++accepts;
        ++k;
      }
    }
    for (const auto& [cls, d] : net_) {
      if (d < 0) {
        cnt_[cls] -= accepts * static_cast<std::uint64_t>(-d);
      } else {
        cnt_[cls] += accepts * static_cast<std::uint64_t>(d);
      }
    }
    events_ += accepts;
    ++banded_pieces_;
    refresh_weights();  // sequential pieces after us read current weights
    return true;
  }

  /// Applies one active event.  `u` is uniform on [0, W_act) — the
  /// accepted thinning draw, reused to classify the pair type by a
  /// cumulative-weight walk (no fresh randomness).
  void apply_event(double u) {
    std::size_t t = 0;
    const std::size_t last = active_.size() - 1;
    while (t < last) {
      const double w = active_[t].w;
      if (u < w) break;
      u -= w;
      ++t;
    }
    // Float residue can land past the last positive weight (incremental
    // W_act is a hair above the true sum); back up to a firing type.
    while (active_[t].w <= 0.0 && t > 0) --t;
    if (active_[t].w <= 0.0) return;  // defensive: nothing can fire
    const PairType& pt = active_[t];
    // A positive weight guarantees the decrements are safe: c_a ≥ 1 and
    // c_b ≥ 1 (or c_a ≥ 2 when a == b).
    --cnt_[pt.a];
    --cnt_[pt.b];
    ++cnt_[pt.oa];
    ++cnt_[pt.ob];
    const std::uint32_t changed[4] = {pt.a, pt.b, pt.oa, pt.ob};
    for (std::size_t k = 0; k < 4; ++k) {
      bool dup = false;
      for (std::size_t j = 0; j < k; ++j) dup |= changed[j] == changed[k];
      if (dup) continue;
      for (const std::uint32_t idx : touch_[changed[k]]) {
        const double nw = weight_of(active_[idx]);
        w_active_ += nw - active_[idx].w;
        active_[idx].w = nw;
      }
    }
    ++events_;
  }

  const P& protocol_;
  Config config_;
  util::Rng rng_;        ///< scheduler stream (windows, thinning)
  util::Rng agent_rng_;  ///< passed to δ (deterministic δ draws nothing)
  std::uint32_t event_cap_;

  bool table_built_ = false;
  std::uint32_t table_q_ = 0;            ///< registry extent at closure
  std::uint64_t table_version_ = 0;      ///< interner version at closure
  std::vector<PairType> active_;         ///< active (count-changing) types
  std::vector<std::vector<std::uint32_t>> touch_;  ///< class → active idxs
  std::vector<std::uint64_t> cnt_;       ///< detached id → count
  double w_active_ = 0.0;                ///< Σ active weights (current)
  double w_total_ = 0.0;                 ///< n·(n−1)

  bool uniform_net_ = false;  ///< all active types share one net delta
  std::vector<std::pair<std::uint32_t, std::int64_t>> net_;  ///< that delta

  std::uint64_t interactions_ = 0;
  std::uint64_t events_ = 0;
  std::uint64_t candidates_ = 0;
  std::uint64_t windows_ = 0;
  std::uint64_t splits_ = 0;
  std::uint64_t split_depth_ = 0;      ///< current split recursion depth
  std::uint64_t split_depth_max_ = 0;  ///< deepest recursion over the run
  std::uint64_t banded_pieces_ = 0;
};

}  // namespace ssle::pp
