// Count-based configuration: the multiset view of C ∈ Q^n.
//
// The uniform scheduler is oblivious to agent identity and every protocol's
// transition depends only on the two interacting *states*, so the projection
// of the configuration onto state counts is itself a Markov chain
// (lumpability).  `CountsConfiguration` stores that projection as a dense
// state→count registry discovered on the fly: a vector of distinct states,
// a parallel vector of counts, and (when the state type is hashable) a hash
// index for O(1) lookups.  Every shipped state type — including
// core::Agent, via the nested-struct std::hash in core/agent.hpp — is
// hashable and takes the indexed path; non-hashable state types fall back
// to linear scans over the distinct states, which is exact but only
// sensible when the number of *distinct* states is small.
//
// This is the representation the batched engine (pp/batched_simulator.hpp)
// advances with hypergeometric draws; at n = 10^6+ it replaces a
// multi-megabyte agent array with a handful of counters.
//
// A Fenwick (binary indexed) tree over the counts is maintained alongside
// the registry: every add/remove is an O(log q) point update, and
// `sample_class(pos)` resolves "which class holds the pos-th agent in
// cumulative-count order" in O(log q) by descending the tree.  That turns
// a uniform agent draw (the primitive behind without-replacement block
// sampling and adversarial churn) into a logarithmic operation instead of
// an O(q) scan — the difference between O(q) and O(L·log q) per block for
// registries with q ≈ n distinct states (ElectLeader_r).
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <variant>
#include <vector>

#include "pp/population.hpp"
#include "pp/protocol.hpp"

namespace ssle::pp {

/// True when std::hash is specialized for T (enables the hash index).
template <typename T>
concept HashableState = requires(const T& t) {
  { std::hash<T>{}(t) } -> std::convertible_to<std::size_t>;
};

template <Protocol P>
class CountsConfiguration {
 public:
  using State = typename P::State;

  /// Clean initial configuration defined by the protocol.
  explicit CountsConfiguration(const P& protocol) {
    for (std::uint32_t i = 0; i < protocol.population_size(); ++i) {
      add(protocol.initial_state(i), 1);
    }
  }

  /// Projection of an explicit configuration (adversarial starts, interop).
  explicit CountsConfiguration(const std::vector<State>& states) {
    for (const State& s : states) add(s, 1);
  }

  explicit CountsConfiguration(const Population<P>& population)
      : CountsConfiguration(population.states()) {}

  /// Total number of agents n (the multiset cardinality).
  std::uint64_t population_size() const { return total_; }

  /// Number of registered distinct states (zero-count entries included
  /// until compact() is called).
  std::uint32_t num_states() const {
    return static_cast<std::uint32_t>(states_.size());
  }

  /// Number of registry entries with a nonzero count, tracked
  /// incrementally (so compaction decisions cost O(1), not O(q)).
  std::uint32_t num_live_states() const { return live_; }

  const State& state(std::uint32_t idx) const { return states_[idx]; }
  std::uint64_t count(std::uint32_t idx) const { return counts_[idx]; }
  const std::vector<std::uint64_t>& counts() const { return counts_; }

  /// Count of a state, 0 if it was never registered.
  std::uint64_t count_of(const State& s) const {
    if constexpr (HashableState<State>) {
      const auto it = index_.find(s);
      return it == index_.end() ? 0 : counts_[it->second];
    } else {
      for (std::uint32_t i = 0; i < states_.size(); ++i) {
        if (states_[i] == s) return counts_[i];
      }
      return 0;
    }
  }

  /// Index of a state, registering it (with count 0) if new.
  std::uint32_t index_of(const State& s) {
    if constexpr (HashableState<State>) {
      const auto [it, inserted] =
          index_.try_emplace(s, static_cast<std::uint32_t>(states_.size()));
      if (inserted) {
        states_.push_back(s);
        counts_.push_back(0);
        tree_append();
      }
      return it->second;
    } else {
      for (std::uint32_t i = 0; i < states_.size(); ++i) {
        if (states_[i] == s) return i;
      }
      states_.push_back(s);
      counts_.push_back(0);
      tree_append();
      return static_cast<std::uint32_t>(states_.size() - 1);
    }
  }

  /// Adds k agents in state s; returns the state's index.
  std::uint32_t add(const State& s, std::uint64_t k) {
    const std::uint32_t idx = index_of(s);
    add_at(idx, k);
    return idx;
  }

  /// Adds k agents to the already-registered state at idx.
  void add_at(std::uint32_t idx, std::uint64_t k) {
    if (counts_[idx] == 0 && k > 0) ++live_;
    counts_[idx] += k;
    total_ += k;
    tree_add(idx, k);
  }

  /// Removes k agents from the state at idx (k must not exceed the count).
  void remove_at(std::uint32_t idx, std::uint64_t k) {
    assert(counts_[idx] >= k);
    counts_[idx] -= k;
    total_ -= k;
    if (counts_[idx] == 0 && k > 0) --live_;
    tree_sub(idx, k);
  }

  /// Total count of the registry entries [0, idx) — the cumulative rank of
  /// entry idx in registry order.  O(log q) via the Fenwick tree.
  std::uint64_t prefix_count(std::uint32_t idx) const {
    std::uint64_t sum = 0;
    for (std::uint32_t j = idx; j > 0; j -= j & (~j + 1u)) sum += tree_[j];
    return sum;
  }

  /// The class holding the pos-th agent (0-based) when agents are laid out
  /// in registry cumulative-count order: the unique idx with
  /// prefix_count(idx) <= pos < prefix_count(idx + 1).  Drawing
  /// pos uniformly from [0, population_size()) therefore samples a class
  /// with probability proportional to its count — a uniform agent draw —
  /// in O(log q) (Fenwick descent) instead of an O(q) scan.  Never returns
  /// a zero-count class.  Requires pos < population_size().
  std::uint32_t sample_class(std::uint64_t pos) const {
    assert(pos < total_);
    std::uint32_t idx = 0;
    const auto size = static_cast<std::uint32_t>(tree_.size() - 1);
    for (std::uint32_t bit = std::bit_floor(size); bit != 0; bit >>= 1) {
      const std::uint32_t next = idx + bit;
      if (next <= size && tree_[next] <= pos) {
        idx = next;
        pos -= tree_[next];
      }
    }
    return idx;
  }

  /// Applies f(state, count) to every state with a nonzero count.
  template <typename F>
  void for_each(F&& f) const {
    for (std::uint32_t i = 0; i < states_.size(); ++i) {
      if (counts_[i] > 0) f(states_[i], counts_[i]);
    }
  }

  /// Number of agents whose state satisfies pred.
  template <typename Pred>
  std::uint64_t count_if(Pred&& pred) const {
    std::uint64_t k = 0;
    for (std::uint32_t i = 0; i < states_.size(); ++i) {
      if (counts_[i] > 0 && pred(states_[i])) k += counts_[i];
    }
    return k;
  }

  /// Expands back to a flat configuration (state order is registry order;
  /// any agent labelling is valid because counts determine the dynamics).
  std::vector<State> to_states() const {
    std::vector<State> out;
    out.reserve(total_);
    for (std::uint32_t i = 0; i < states_.size(); ++i) {
      for (std::uint64_t j = 0; j < counts_[i]; ++j) out.push_back(states_[i]);
    }
    return out;
  }

  Population<P> to_population() const { return Population<P>(to_states()); }

  /// Drops zero-count registry entries and rebuilds the index.  Invalidates
  /// previously obtained indices.
  void compact() {
    std::vector<State> states;
    std::vector<std::uint64_t> counts;
    for (std::uint32_t i = 0; i < states_.size(); ++i) {
      if (counts_[i] > 0) {
        states.push_back(std::move(states_[i]));
        counts.push_back(counts_[i]);
      }
    }
    states_ = std::move(states);
    counts_ = std::move(counts);
    if constexpr (HashableState<State>) {
      index_.clear();
      for (std::uint32_t i = 0; i < states_.size(); ++i) index_[states_[i]] = i;
    }
    rebuild_tree();
  }

 private:
  // Fenwick tree over counts_, 1-indexed (tree_[0] unused): tree_[j] holds
  // the sum of counts_[j - lowbit(j) .. j - 1].
  void tree_add(std::uint32_t idx, std::uint64_t k) {
    const auto size = static_cast<std::uint32_t>(tree_.size() - 1);
    for (std::uint32_t j = idx + 1; j <= size; j += j & (~j + 1u)) {
      tree_[j] += k;
    }
  }

  void tree_sub(std::uint32_t idx, std::uint64_t k) {
    const auto size = static_cast<std::uint32_t>(tree_.size() - 1);
    for (std::uint32_t j = idx + 1; j <= size; j += j & (~j + 1u)) {
      tree_[j] -= k;
    }
  }

  /// Extends the tree for a just-registered entry (count 0): the new node
  /// covers the trailing lowbit(j) entries, whose sum is a prefix
  /// difference — O(log q), so registering states stays cheap.
  void tree_append() {
    const auto j = static_cast<std::uint32_t>(counts_.size());
    const std::uint32_t lb = j & (~j + 1u);
    tree_.push_back(prefix_count(j - 1) - prefix_count(j - lb));
  }

  void rebuild_tree() {
    tree_.assign(counts_.size() + 1, 0);
    live_ = 0;
    for (std::uint32_t i = 0; i < counts_.size(); ++i) {
      if (counts_[i] > 0) {
        ++live_;
        tree_add(i, counts_[i]);
      }
    }
  }

  struct Empty {};
  std::vector<State> states_;
  std::vector<std::uint64_t> counts_;
  std::vector<std::uint64_t> tree_{0};  ///< Fenwick tree over counts_
  std::uint64_t total_ = 0;
  std::uint32_t live_ = 0;  ///< number of nonzero counts_ entries
  [[no_unique_address]] std::conditional_t<
      HashableState<State>, std::unordered_map<State, std::uint32_t>, Empty>
      index_;
};

}  // namespace ssle::pp
