// Count-based configuration: the multiset view of C ∈ Q^n, in id space.
//
// The uniform scheduler is oblivious to agent identity and every protocol's
// transition depends only on the two interacting *states*, so the projection
// of the configuration onto state counts is itself a Markov chain
// (lumpability).  The same argument survives one generalization: on a
// *blocked* topology (cliques, complete-multipartite "islands", community
// models — pp::BlockedTopology) agents within a community are exchangeable,
// so the projection onto (community, state) counts is again Markov.  Both
// projections share every piece of machinery except the key type, so the
// machinery lives in a generic `CountsKernel<Key>`:
//
//   * an interner-backed registry (pp/interner.hpp): distinct keys live
//     once in the interner's arena, are hashed once when first seen, and
//     everything downstream — counts, the Fenwick tree, block samplers,
//     the batched engine's scratch multisets and memoized transition
//     cache — manipulates plain `std::uint32_t` class ids.  Ids are
//     STABLE: compact() releases dead (zero-count) ids back to the
//     interner's free list for reuse instead of re-indexing, so live ids
//     and all Fenwick sums survive compaction unchanged, and long churny
//     runs (adversarial starts, recovery cycles) cannot accumulate an
//     unbounded tail of dead classes;
//   * a Fenwick (binary indexed) tree over the counts: every add/remove
//     is an O(log q) point update, and `sample_class(pos)` resolves
//     "which class holds the pos-th agent in cumulative-count order" in
//     O(log q) by descending the tree.  That turns a uniform agent draw
//     (the primitive behind without-replacement block sampling and
//     adversarial churn) into a logarithmic operation instead of an O(q)
//     scan — the difference between O(q) and O(L·log q) per block for
//     registries with q ≈ n distinct states (ElectLeader_r);
//   * incremental live-count bookkeeping, so compaction decisions are
//     O(1) per block.
//
// `CountsConfiguration<P>` (Key = the protocol's State) is the thin
// instantiation the uniform-scheduler engines advance
// (pp/batched_simulator.hpp, pp/leaping_simulator.hpp); at n = 10^6+ it
// replaces a multi-megabyte agent array with a handful of counters.
// `CommunityCountsConfiguration<P>` (pp/community_counts.hpp; Key = packed
// (community, state)) is the lifted instantiation for blocked topologies.
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>
#include <vector>

#include "pp/interner.hpp"
#include "pp/population.hpp"
#include "pp/protocol.hpp"

namespace ssle::pp {

/// The generic counts registry: key ↔ id interning, id → count bookkeeping,
/// and a Fenwick index over the counts.  Key must be equality-comparable
/// and copyable; a std::hash specialization enables the interner's O(1)
/// id-table path (non-hashable keys fall back to a linear scan).
template <typename Key>
class CountsKernel {
 public:
  CountsKernel() = default;

  /// Total number of agents n (the multiset cardinality).
  std::uint64_t population_size() const { return total_; }

  /// Registry extent: class ids live in [0, num_states()).  Includes
  /// reclaimed (free-list) slots awaiting reuse — the right bound for
  /// iterating or for sizing id-indexed scratch arrays.
  std::uint32_t num_states() const { return interner_.capacity(); }

  /// Number of currently interned keys (excludes reclaimed slots;
  /// includes registered-but-zero-count entries until compact()).
  std::uint32_t num_allocated_states() const { return interner_.size(); }

  /// Number of registry entries with a nonzero count, tracked
  /// incrementally (so compaction decisions cost O(1), not O(q)).
  std::uint32_t num_live_states() const { return live_; }

  const Key& key(std::uint32_t idx) const { return interner_.state(idx); }
  std::uint64_t count(std::uint32_t idx) const { return counts_[idx]; }
  const std::vector<std::uint64_t>& counts() const { return counts_; }

  const StateInterner<Key>& interner() const { return interner_; }

  /// Bumped whenever compact() reclaims ids.  Caches keyed on class ids
  /// (e.g. the batched engine's memoized transition table) must be dropped
  /// when this changes — reclaimed ids may be reused for other keys.
  std::uint64_t registry_version() const { return interner_.version(); }

  // --- lifetime operation counters (obs::EngineMetrics feeds) ----------
  // One uint64 increment per O(log q) tree operation: always on, within
  // noise of the uninstrumented kernel (gated by bench_parallel_sweep §8).
  /// Fenwick point updates executed (one per add_at/remove_at).
  std::uint64_t fenwick_updates() const { return fenwick_updates_; }
  /// Fenwick sampling descents executed (one per sample_class).
  std::uint64_t fenwick_samples() const { return fenwick_samples_; }
  /// compact() calls that ran.
  std::uint64_t compactions() const { return compactions_; }

  /// Count of a key, 0 if it was never registered.
  std::uint64_t count_of(const Key& k) const {
    const std::uint32_t id = interner_.find(k);
    return id == StateInterner<Key>::kNoId ? 0 : counts_[id];
  }

  /// Id of a key, registering it (with count 0) if new.  Stable until
  /// the id is reclaimed by compact().
  std::uint32_t index_of(const Key& k) {
    const std::uint32_t id = interner_.intern(k);
    if (id >= counts_.size()) {
      counts_.push_back(0);
      tree_append();
    }
    return id;
  }

  /// Id of `k` when the caller already suspects it: if `hint` currently
  /// stands for a key equal to k, returns it without hashing — the fast
  /// path for "this interaction left the state unchanged".
  std::uint32_t index_of(const Key& k, std::uint32_t hint) {
    if (interner_.allocated(hint) && k == interner_.state(hint)) return hint;
    return index_of(k);
  }

  /// Adds c agents under key k; returns the key's id.
  std::uint32_t add(const Key& k, std::uint64_t c) {
    const std::uint32_t idx = index_of(k);
    add_at(idx, c);
    return idx;
  }

  /// Adds c agents to the already-registered key at idx.
  void add_at(std::uint32_t idx, std::uint64_t c) {
    if (counts_[idx] == 0 && c > 0) ++live_;
    counts_[idx] += c;
    total_ += c;
    tree_add(idx, c);
  }

  /// Removes c agents from the key at idx (c must not exceed the count).
  void remove_at(std::uint32_t idx, std::uint64_t c) {
    assert(counts_[idx] >= c);
    counts_[idx] -= c;
    total_ -= c;
    if (counts_[idx] == 0 && c > 0) --live_;
    tree_sub(idx, c);
  }

  // --- churn primitives (analysis/churn.hpp fault plans) ----------------
  // Population edits as first-class O(log q) operations: one interner
  // lookup (hash once, O(1) amortized) plus one Fenwick point update.
  // Ids stay stable across these — compact() reclaims dead ids through the
  // free list, never re-indexes — so a joining agent whose state id was
  // reclaimed and reused still lands on a valid, live slot.

  /// One agent joins the population in state k.  O(log q); returns the id
  /// the agent was filed under.  Population size grows by one — engines
  /// re-read population_size() per block, so the next block envelope and
  /// scheduler weights see the new n.
  std::uint32_t insert_agent(const Key& k) { return add(k, 1); }

  /// One agent leaves the population from the class at idx (which must be
  /// live).  O(log q).  Removing the last agent of a class leaves a dead
  /// id for should_compact()/compact() to reclaim — bounded-allocation
  /// soak gates (bench_e2_churn --gate-soak) pin that this reclamation
  /// actually holds under sustained id churn.
  void remove_agent(std::uint32_t idx) { remove_at(idx, 1); }

  /// Total count of the registry entries [0, idx) — the cumulative rank of
  /// entry idx in registry order.  O(log q) via the Fenwick tree.
  std::uint64_t prefix_count(std::uint32_t idx) const {
    std::uint64_t sum = 0;
    for (std::uint32_t j = idx; j > 0; j -= j & (~j + 1u)) sum += tree_[j];
    return sum;
  }

  /// The class holding the pos-th agent (0-based) when agents are laid out
  /// in registry cumulative-count order: the unique idx with
  /// prefix_count(idx) <= pos < prefix_count(idx + 1).  Drawing
  /// pos uniformly from [0, population_size()) therefore samples a class
  /// with probability proportional to its count — a uniform agent draw —
  /// in O(log q) (Fenwick descent) instead of an O(q) scan.  Never returns
  /// a zero-count class.  Requires pos < population_size().
  std::uint32_t sample_class(std::uint64_t pos) const {
    assert(pos < total_);
    ++fenwick_samples_;
    std::uint32_t idx = 0;
    const auto size = static_cast<std::uint32_t>(tree_.size() - 1);
    for (std::uint32_t bit = std::bit_floor(size); bit != 0; bit >>= 1) {
      const std::uint32_t next = idx + bit;
      if (next <= size && tree_[next] <= pos) {
        idx = next;
        pos -= tree_[next];
      }
    }
    return idx;
  }

  /// Applies f(key, count) to every key with a nonzero count.
  template <typename F>
  void for_each(F&& f) const {
    for (std::uint32_t i = 0; i < counts_.size(); ++i) {
      if (counts_[i] > 0) f(interner_.state(i), counts_[i]);
    }
  }

  /// Number of agents whose key satisfies pred.
  template <typename Pred>
  std::uint64_t count_if(Pred&& pred) const {
    std::uint64_t c = 0;
    for (std::uint32_t i = 0; i < counts_.size(); ++i) {
      if (counts_[i] > 0 && pred(interner_.state(i))) c += counts_[i];
    }
    return c;
  }

  /// Absolute dead-id bound for should_compact(): with q ≈ n live states
  /// (ElectLeader_r at n = 10^5+) the fraction rule alone would wait for
  /// dead ≥ live — stranding 10^5+ dead heavy states in the arena — so the
  /// policy also fires once this many dead ids accumulate.  Large enough
  /// that a compact()'s O(capacity) rebuild amortizes to O(1) per dead id
  /// at any capacity the engines reach.
  static constexpr std::uint32_t kCompactDeadAbsolute = 1u << 16;

  /// Compaction policy: whether the registry carries enough dead
  /// (zero-count) ids for compact() to be worth its O(capacity) rebuild.
  /// Fires on EITHER
  ///   * dead-id fraction — dead ids are at least half the allocation, so
  ///     compacting roughly halves the arena (the long-standing rule), OR
  ///   * dead-id count — at least kCompactDeadAbsolute dead ids, which
  ///     bounds the dead tail of huge live registries long before the
  ///     fraction rule's dead ≥ live threshold can trigger (long churny
  ///     runs: adversarial recovery cycles, sharded sub-registries).
  /// Tiny registries (< 32 allocations) never fire.  All inputs are O(1)
  /// incremental counters, so engines can ask once per block for free.
  bool should_compact() const {
    const std::uint32_t allocated = num_allocated_states();
    if (allocated < 32) return false;
    const std::uint32_t dead = allocated - live_;
    return 2 * live_ <= allocated || dead >= kCompactDeadAbsolute;
  }

  /// Releases every zero-count id to the interner's free list (it will be
  /// reused by future registrations) and trims trailing reclaimed slots.
  /// Live ids — and all their Fenwick sums — are untouched: no re-indexing
  /// happens, so previously obtained ids of live keys stay valid.  Ids
  /// of dead keys become invalid; registry_version() records that.
  void compact() {
    ++compactions_;
    interner_.reclaim([&](std::uint32_t id) { return counts_[id] == 0; });
    interner_.shrink();
    // Trailing reclaimed entries carried count 0, so truncating the counts
    // vector and the Fenwick tree loses no mass; a Fenwick node j only
    // aggregates entries with index < j, so the surviving prefix of the
    // tree is already exact.
    counts_.resize(interner_.capacity());
    tree_.resize(interner_.capacity() + 1);
  }

 private:
  // Fenwick tree over counts_, 1-indexed (tree_[0] unused): tree_[j] holds
  // the sum of counts_[j - lowbit(j) .. j - 1].
  void tree_add(std::uint32_t idx, std::uint64_t c) {
    ++fenwick_updates_;
    const auto size = static_cast<std::uint32_t>(tree_.size() - 1);
    for (std::uint32_t j = idx + 1; j <= size; j += j & (~j + 1u)) {
      tree_[j] += c;
    }
  }

  void tree_sub(std::uint32_t idx, std::uint64_t c) {
    ++fenwick_updates_;
    const auto size = static_cast<std::uint32_t>(tree_.size() - 1);
    for (std::uint32_t j = idx + 1; j <= size; j += j & (~j + 1u)) {
      tree_[j] -= c;
    }
  }

  /// Extends the tree for a just-registered entry (count 0): the new node
  /// covers the trailing lowbit(j) entries, whose sum is a prefix
  /// difference — O(log q), so registering keys stays cheap.
  void tree_append() {
    const auto j = static_cast<std::uint32_t>(counts_.size());
    const std::uint32_t lb = j & (~j + 1u);
    tree_.push_back(prefix_count(j - 1) - prefix_count(j - lb));
  }

  StateInterner<Key> interner_;          ///< id ↔ key, hashed once
  std::vector<std::uint64_t> counts_;    ///< id → count (0 for free slots)
  std::vector<std::uint64_t> tree_{0};   ///< Fenwick tree over counts_
  std::uint64_t total_ = 0;
  std::uint32_t live_ = 0;  ///< number of nonzero counts_ entries

  // Operation counters (see the accessors above).  fenwick_samples_ is
  // mutable because sample_class is logically const — drawing observes,
  // never mutates, the multiset.
  std::uint64_t fenwick_updates_ = 0;
  mutable std::uint64_t fenwick_samples_ = 0;
  std::uint64_t compactions_ = 0;
};

/// The uniform-scheduler counts projection: Key = the protocol's State.
/// A thin instantiation of CountsKernel plus the protocol-facing
/// conveniences (clean-start and projection constructors, expansion back
/// to a flat configuration).
template <Protocol P>
class CountsConfiguration : public CountsKernel<typename P::State> {
 public:
  using State = typename P::State;

  /// Under the uniform scheduler every ordered agent pair is equally
  /// likely, so the batched engine's birthday-block machinery applies
  /// as-is (pp::LumpableTopology in pp/batched_simulator.hpp).
  static constexpr bool kUniformPairs = true;

  /// Clean initial configuration defined by the protocol.
  explicit CountsConfiguration(const P& protocol) {
    for (std::uint32_t i = 0; i < protocol.population_size(); ++i) {
      this->add(protocol.initial_state(i), 1);
    }
  }

  /// Projection of an explicit configuration (adversarial starts, interop).
  explicit CountsConfiguration(const std::vector<State>& states) {
    for (const State& s : states) this->add(s, 1);
  }

  explicit CountsConfiguration(const Population<P>& population)
      : CountsConfiguration(population.states()) {}

  /// The protocol state class id idx stands for (the key, under this
  /// instantiation).
  const State& state(std::uint32_t idx) const { return this->key(idx); }

  /// Id of output state `s` produced by an interaction whose input held id
  /// `hint` — the engine-facing re-interning hook.  Under the uniform
  /// projection this is exactly the hinted index_of; the community-lifted
  /// configuration uses the hint to keep the output in its community.
  std::uint32_t index_near(const State& s, std::uint32_t hint) {
    return this->index_of(s, hint);
  }

  /// Expands back to a flat configuration (state order is registry order;
  /// any agent labelling is valid because counts determine the dynamics).
  std::vector<State> to_states() const {
    std::vector<State> out;
    out.reserve(this->population_size());
    this->for_each([&](const State& s, std::uint64_t c) {
      for (std::uint64_t j = 0; j < c; ++j) out.push_back(s);
    });
    return out;
  }

  Population<P> to_population() const { return Population<P>(to_states()); }
};

}  // namespace ssle::pp
