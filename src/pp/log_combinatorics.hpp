// Log-domain combinatorics shared by the exact count samplers
// (sample_hypergeometric in pp/batched_simulator.cpp, sample_binomial in
// pp/leaping_simulator.cpp).  Everything works in log space because the
// quantities involved (C(10^10, 5·10^9), …) overflow double directly.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>

namespace ssle::pp {

/// ln k!: exact table for small k, Stirling's series beyond (absolute
/// error < 1e-18 at k ≥ 1024 — below double rounding).  ~10x faster than
/// lgamma, which dominates hypergeometric sampling otherwise.
inline double log_factorial(std::uint64_t k) {
  static const std::array<double, 1024> small = [] {
    std::array<double, 1024> t{};
    double acc = 0.0;
    for (std::size_t i = 1; i < t.size(); ++i) {
      acc += std::log(static_cast<double>(i));
      t[i] = acc;
    }
    return t;
  }();
  if (k < small.size()) return small[k];
  const double x = static_cast<double>(k);
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  return (x + 0.5) * std::log(x) - x + 0.91893853320467274178 /* ln√(2π) */
         + inv * (1.0 / 12.0) - inv * inv2 * (1.0 / 360.0) +
         inv * inv2 * inv2 * (1.0 / 1260.0);
}

/// log C(n, r).
inline double log_choose(std::uint64_t n, std::uint64_t r) {
  return log_factorial(n) - log_factorial(r) - log_factorial(n - r);
}

}  // namespace ssle::pp
