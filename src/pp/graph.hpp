// Communication graphs for graphical population protocols.
//
// The classical model interacts uniformly random pairs (the complete
// graph).  Related work transfers population protocols to anonymous
// networks G = (V, E) where only endpoints of an edge may interact, with
// runtimes depending on graph properties such as conductance (paper §2,
// Alistarh–Gelashvili–Rybicki; Kowalski–Mosteiro).  This module provides
// standard graph families and a scheduler drawing uniformly random edges,
// so the experiments can probe how ElectLeader_r degrades away from the
// complete graph (experiment E1).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "pp/scheduler.hpp"
#include "util/rng.hpp"

namespace ssle::pp {

/// Simple undirected graph on vertices {0, ..., n-1} stored as an edge
/// list (for uniform edge sampling) plus adjacency (for analysis).
class Graph {
 public:
  explicit Graph(std::uint32_t n) : n_(n), adjacency_(n) {}

  std::uint32_t vertices() const { return n_; }
  std::uint64_t edges() const { return edge_list_.size(); }
  const std::vector<std::pair<std::uint32_t, std::uint32_t>>& edge_list()
      const {
    return edge_list_;
  }
  const std::vector<std::uint32_t>& neighbors(std::uint32_t v) const {
    return adjacency_[v];
  }
  std::uint32_t degree(std::uint32_t v) const {
    return static_cast<std::uint32_t>(adjacency_[v].size());
  }

  /// Adds an undirected edge; duplicates and self-loops are ignored.
  void add_edge(std::uint32_t a, std::uint32_t b);
  bool has_edge(std::uint32_t a, std::uint32_t b) const;

  bool is_connected() const;
  std::uint32_t min_degree() const;
  std::uint32_t max_degree() const;

  // --- Families --------------------------------------------------------
  static Graph complete(std::uint32_t n);
  static Graph cycle(std::uint32_t n);
  static Graph path(std::uint32_t n);
  static Graph star(std::uint32_t n);
  /// Random d-regular-ish graph: d/2 superposed uniformly random Hamilton
  /// cycles (connected, degree ≤ d, expander w.h.p. for d ≥ 4).
  static Graph random_regular(std::uint32_t n, std::uint32_t d,
                              util::Rng& rng);
  /// Erdős–Rényi G(n, p), re-sampled until connected (caller should pass
  /// p ≥ c·log(n)/n).
  static Graph erdos_renyi(std::uint32_t n, double p, util::Rng& rng);
  /// Complete multipartite graph: n vertices split into k near-equal
  /// blocks (first n % k blocks one larger); edges join every pair of
  /// vertices in *different* blocks.  The materialized twin of
  /// BlockedTopology::multipartite — used to cross-validate the blocked
  /// samplers against the generic edge-list scheduler at small n.
  static Graph complete_multipartite(std::uint32_t n, std::uint32_t k);

 private:
  std::uint32_t n_;
  std::vector<std::vector<std::uint32_t>> adjacency_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edge_list_;
};

/// Scheduler for graphical populations: each step picks a uniformly
/// random edge and a uniformly random orientation.
class GraphScheduler {
 public:
  GraphScheduler(Graph graph, std::uint64_t seed)
      : graph_(std::move(graph)), rng_(seed) {}

  Pair next() {
    const auto& edge = graph_.edge_list()[rng_.below(graph_.edges())];
    return rng_.coin() ? Pair{edge.first, edge.second}
                       : Pair{edge.second, edge.first};
  }

  const Graph& graph() const { return graph_; }

 private:
  Graph graph_;
  util::Rng rng_;
};

/// A blocked (community-structured) topology: n agents partitioned into K
/// communities laid out contiguously by agent index, with edge weight
/// `intra` between agents of the same community and `inter` between agents
/// of different communities.  This family covers the structured graphs on
/// which the counts projection lifted to (community, state) is an exact
/// Markov lumping — agents within a community are exchangeable, so no
/// per-agent information survives the projection:
///
///   * complete(n)            — K = 1, intra = 1 (the classical model);
///   * islands(n, K, wi, wo)  — K cliques of weight wi bridged all-to-all
///                              by weight wo (complete when wi = wo);
///   * multipartite(n, K)     — intra = 0, inter = 1: the complete
///                              K-partite graph (bully-style all-to-all
///                              across groups, silence within).
///
/// The ordered pair-scheduling law is closed-form: an ordered agent pair
/// (u, v), u in community a, v in community b, is drawn with probability
/// proportional to its edge weight, i.e. the ordered *community* pair
/// (a, b) has total weight
///
///     W(a, a) = intra · m_a · (m_a − 1),      W(a, b) = inter · m_a · m_b
///
/// and within the chosen communities agents are uniform (without
/// replacement when a = b).  Both exact engines for this family sample
/// from the same table: BlockedScheduler picks concrete agents for the
/// naive engine (O(n) memory at any n — no edge materialization, unlike
/// Graph, whose islands edge list at n = 10^6 would hold ~5·10^11 edges),
/// and CommunityCountsConfiguration (pp/community_counts.hpp) picks
/// (community, state) classes for the batched engine.
class BlockedTopology {
 public:
  static BlockedTopology complete(std::uint64_t n);
  /// K near-equal cliques (first n % K one agent larger), intra-community
  /// weight `intra`, inter-community weight `inter`.  Requires K >= 1,
  /// n >= K, and a connected weighting (inter > 0 when K > 1).
  static BlockedTopology islands(std::uint64_t n, std::uint32_t k,
                                 double intra = 1.0, double inter = 0.05);
  /// Complete K-partite graph on near-equal blocks.  Requires K >= 2.
  static BlockedTopology multipartite(std::uint64_t n, std::uint32_t k);

  std::uint32_t communities() const {
    return static_cast<std::uint32_t>(sizes_.size());
  }
  std::uint64_t size(std::uint32_t c) const { return sizes_[c]; }
  /// First agent index of community c (communities are contiguous).
  std::uint64_t offset(std::uint32_t c) const { return offsets_[c]; }
  std::uint64_t total_agents() const { return total_; }
  std::uint32_t community_of_agent(std::uint64_t agent) const;

  double intra_weight() const { return intra_; }
  double inter_weight() const { return inter_; }
  const std::string& name() const { return name_; }

  /// Total edge weight of the ordered community pair (a, b).
  double pair_weight(std::uint32_t a, std::uint32_t b) const;

  /// Draws an ordered community pair (a, b) with probability proportional
  /// to pair_weight — the community marginal of the exact pair law.
  std::pair<std::uint32_t, std::uint32_t> sample_pair(util::Rng& rng) const;

 private:
  BlockedTopology(std::string name, std::vector<std::uint64_t> sizes,
                  double intra, double inter);

  std::string name_;
  std::vector<std::uint64_t> sizes_;
  std::vector<std::uint64_t> offsets_;
  std::vector<double> cum_;  ///< cumulative pair weights, row-major K×K
  double total_weight_ = 0.0;
  std::uint64_t total_ = 0;
  double intra_ = 1.0;
  double inter_ = 1.0;
};

/// Scheduler drawing exact agent pairs of a BlockedTopology for the naive
/// engine: community pair from the closed-form weight table, then uniform
/// agents within each community (without replacement when the communities
/// coincide).  Memory is O(K²) regardless of n, so the naive engine gets
/// an exact structured-topology baseline without materializing edges.
class BlockedScheduler {
 public:
  BlockedScheduler(BlockedTopology topology, std::uint64_t seed)
      : topology_(std::move(topology)), rng_(seed) {}

  Pair next() {
    const auto [a, b] = topology_.sample_pair(rng_);
    const std::uint64_t i = topology_.offset(a) + rng_.below(topology_.size(a));
    std::uint64_t j;
    if (a == b) {
      j = topology_.offset(a) + rng_.below(topology_.size(a) - 1);
      if (j >= i) ++j;
    } else {
      j = topology_.offset(b) + rng_.below(topology_.size(b));
    }
    return Pair{static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(j)};
  }

  const BlockedTopology& topology() const { return topology_; }

 private:
  BlockedTopology topology_;
  util::Rng rng_;
};

}  // namespace ssle::pp
