// Communication graphs for graphical population protocols.
//
// The classical model interacts uniformly random pairs (the complete
// graph).  Related work transfers population protocols to anonymous
// networks G = (V, E) where only endpoints of an edge may interact, with
// runtimes depending on graph properties such as conductance (paper §2,
// Alistarh–Gelashvili–Rybicki; Kowalski–Mosteiro).  This module provides
// standard graph families and a scheduler drawing uniformly random edges,
// so the experiments can probe how ElectLeader_r degrades away from the
// complete graph (experiment E1).
#pragma once

#include <cstdint>
#include <vector>

#include "pp/scheduler.hpp"
#include "util/rng.hpp"

namespace ssle::pp {

/// Simple undirected graph on vertices {0, ..., n-1} stored as an edge
/// list (for uniform edge sampling) plus adjacency (for analysis).
class Graph {
 public:
  explicit Graph(std::uint32_t n) : n_(n), adjacency_(n) {}

  std::uint32_t vertices() const { return n_; }
  std::uint64_t edges() const { return edge_list_.size(); }
  const std::vector<std::pair<std::uint32_t, std::uint32_t>>& edge_list()
      const {
    return edge_list_;
  }
  const std::vector<std::uint32_t>& neighbors(std::uint32_t v) const {
    return adjacency_[v];
  }
  std::uint32_t degree(std::uint32_t v) const {
    return static_cast<std::uint32_t>(adjacency_[v].size());
  }

  /// Adds an undirected edge; duplicates and self-loops are ignored.
  void add_edge(std::uint32_t a, std::uint32_t b);
  bool has_edge(std::uint32_t a, std::uint32_t b) const;

  bool is_connected() const;
  std::uint32_t min_degree() const;
  std::uint32_t max_degree() const;

  // --- Families --------------------------------------------------------
  static Graph complete(std::uint32_t n);
  static Graph cycle(std::uint32_t n);
  static Graph path(std::uint32_t n);
  static Graph star(std::uint32_t n);
  /// Random d-regular-ish graph: d/2 superposed uniformly random Hamilton
  /// cycles (connected, degree ≤ d, expander w.h.p. for d ≥ 4).
  static Graph random_regular(std::uint32_t n, std::uint32_t d,
                              util::Rng& rng);
  /// Erdős–Rényi G(n, p), re-sampled until connected (caller should pass
  /// p ≥ c·log(n)/n).
  static Graph erdos_renyi(std::uint32_t n, double p, util::Rng& rng);

 private:
  std::uint32_t n_;
  std::vector<std::vector<std::uint32_t>> adjacency_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edge_list_;
};

/// Scheduler for graphical populations: each step picks a uniformly
/// random edge and a uniformly random orientation.
class GraphScheduler {
 public:
  GraphScheduler(Graph graph, std::uint64_t seed)
      : graph_(std::move(graph)), rng_(seed) {}

  Pair next() {
    const auto& edge = graph_.edge_list()[rng_.below(graph_.edges())];
    return rng_.coin() ? Pair{edge.first, edge.second}
                       : Pair{edge.second, edge.first};
  }

  const Graph& graph() const { return graph_; }

 private:
  Graph graph_;
  util::Rng rng_;
};

}  // namespace ssle::pp
