// One-way epidemic toy protocol (Lemma A.2's primitive): state 1 infects
// state 0 in every interaction it takes part in.  Used as the canonical
// two-state workload for engine tests and the batched-vs-naive benchmark;
// completes within c_epi · n · log n interactions w.h.p. (c_epi < 7).
#pragma once

#include <cstdint>

#include "util/rng.hpp"

namespace ssle::pp {

struct Epidemic {
  using State = int;  ///< 0 = susceptible, 1 = infected

  /// δ never consumes randomness, so the batched engine may apply one
  /// transition result to a whole block of same-type pairs and memoize
  /// transitions over interned class ids (pp/protocol.hpp).
  static constexpr bool kDeterministicInteract = true;

  /// Exactly two reachable states regardless of n: leap-eligible — the
  /// leap engine's q × q pair-type table is 2 × 2 (pp/protocol.hpp).
  static constexpr bool kNarrowRegistry = true;

  std::uint32_t n;

  std::uint32_t population_size() const { return n; }
  State initial_state(std::uint32_t agent) const { return agent == 0 ? 1 : 0; }
  void interact(State& u, State& v, util::Rng&) const {
    if (u == 1 || v == 1) u = v = 1;
  }
};

}  // namespace ssle::pp
