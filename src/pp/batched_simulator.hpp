// Batched count-based simulation engine.
//
// The naive Simulator advances one interaction at a time over a length-n
// agent array; at n = 10^6+ every interaction costs two random-access cache
// misses.  BatchedSimulator instead advances the CountsConfiguration (the
// exact Markov projection of the configuration, see pp/counts.hpp) a whole
// *collision-free block* at a time:
//
//   1. Sample T, the index of the first interaction that reuses an agent
//      already touched in this block (inverse-transform over the exact
//      birthday survival probabilities ∏ (n-2t)(n-2t-1)/(n(n-1))).
//   2. The L = T-1 collision-free interactions involve 2L *distinct* agents
//      drawn uniformly without replacement.  Three interchangeable, exact
//      samplers realize that draw (selected per block, see BlockSampling):
//        * dense: the 2L states are a multivariate hypergeometric draw
//          from the counts; splitting them into initiators/responders and
//          matching the two multisets are again sequential hypergeometric
//          draws.  Each ordered state-pair type (A, B) with multiplicity m
//          is then applied m times — or exactly once, with the counts
//          updated in bulk, for kDeterministicDelta protocols.
//          Cost: O(q) per block for the registry scan plus O(L·min(L, q))
//          matching — ideal when q ≪ n (few live states, e.g. epidemics).
//        * Fenwick: agents are drawn one at a time through the registry's
//          Fenwick index (pp/counts.hpp), consecutive draws pairing up as
//          (initiator, responder) — exactly the scheduler's conditional
//          law given no collision.  Cost: O(L·log q) per block with no
//          O(q) term anywhere, which is what keeps q ≈ n registries
//          (ElectLeader_r once identifiers/ranks spread) from paying an
//          O(q/√n) = O(√n) tax on every interaction.
//        * flat: the Fenwick path's draw law and RNG stream exactly, but
//          each class resolves by a branchless cumulative scan over a
//          dense snapshot of the counts, with the registry's point
//          updates deferred to one per-class reconciliation at block end.
//          Breaks the Fenwick descent's pointer-chasing floor when the
//          registry is narrow (q ≤ kFlatMaxStates).
//   3. The colliding interaction T is executed individually: conditioned on
//      "at least one participant was already used", the pair is sampled
//      from the tracked used/unused multisets, which is exact because agent
//      identities are exchangeable given the counts.
//
// Per-interaction cost is where the engine lives or dies at q ≈ n, so the
// hot loop runs entirely in interned id space (pp/interner.hpp):
//
//   * kDeterministicDelta protocols route every transition through a
//     memoized (id, id) → (id, id) DeltaCache (pp/delta_cache.hpp): a hit
//     skips the δ call, both state copies and both hashes, leaving only
//     the O(log q) Fenwick updates.  The cache is exact — δ is a pure
//     function of the two classes — and is invalidated whenever compact()
//     reclaims ids.  `DeltaMemo::kDisabled` pins the uncached path; cached
//     and uncached runs are bit-identical (δ consumes no randomness and
//     the id sequences agree), which tests/test_delta_cache.cpp checks.
//   * Randomized protocols still call δ, but into persistent scratch
//     states (copy-assign reuses the scratch's heap buffers instead of
//     re-allocating per interaction), and re-intern outputs through the
//     registry's hinted fast path: an unchanged output costs one equality
//     check; a changed one is hashed once by the interner.
//
// Blocks are stopping times of the counts chain, so chaining them (and
// truncating a block at a probe boundary) reproduces the sequential
// process's distribution exactly — BatchedSimulator and Simulator are
// statistically indistinguishable, which tests/test_batched_simulator.cpp
// checks empirically, for every block sampler.  The dense sampler draws
// different randomness from the scheduler stream than the per-draw ones,
// so switching between them changes per-seed trajectories and equivalence
// is statistical — EXCEPT flat vs Fenwick, which consume the identical
// stream and are bit-identical per seed.  Expected block length is
// L = Θ(√n).
//
// The API mirrors Simulator (`step`, `run_until`, RunResult, probe
// semantics); predicates observe the CountsConfiguration instead of the
// Population.
#pragma once

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "pp/counts.hpp"
#include "pp/delta_cache.hpp"
#include "pp/protocol.hpp"
#include "pp/scheduler.hpp"
#include "pp/simulator.hpp"
#include "util/rng.hpp"

namespace ssle::pp {

/// How a block's 2L collision-free agents are sampled from the registry.
/// kAuto picks per block: Fenwick when the registry scan would dominate
/// (q large relative to L·log q), dense otherwise — and substitutes the
/// flat sampler for Fenwick when the registry is narrow (q ≤ 64), which
/// preserves the RNG stream exactly (see kFlat).  kDense / kFenwick /
/// kFlat pin one path — for tests and benchmarks; all are exact.
///
/// kFlat is the small-q per-draw sampler: the same draw law and scheduler
/// stream as kFenwick, but classes resolve through a branchless cumulative
/// scan over a dense SoA copy of the counts instead of a Fenwick descent,
/// and the registry's O(log q) point updates are deferred to one per-block
/// reconciliation.  kFlat and kFenwick runs are bit-identical per seed
/// (unlike dense vs Fenwick, which draw different randomness).
enum class BlockSampling { kAuto, kDense, kFenwick, kFlat };

/// Registry-width ceiling for kAuto's flat-for-Fenwick substitution: a
/// linear cumulative scan touches q counts per draw (one cache line per 8),
/// a Fenwick descent ~log2 q scattered nodes; the scan's branchless body
/// and dense locality win while q stays within a few cache lines.
inline constexpr std::uint32_t kFlatMaxStates = 64;

/// Whether a kDeterministicDelta protocol's transitions go through the
/// memoized DeltaCache.  kDisabled pins the uncached path (A/B benches,
/// bit-identical-determinism tests); ignored for randomized protocols.
enum class DeltaMemo { kEnabled, kDisabled };

/// Exact draw from Hypergeometric(total, successes, draws): the number of
/// "success" items in `draws` draws without replacement from a population
/// of `total` items containing `successes` successes.  Mode-centered
/// inverse transform; expected O(σ) work.
std::uint64_t sample_hypergeometric(util::Rng& rng, std::uint64_t total,
                                    std::uint64_t successes,
                                    std::uint64_t draws);

/// Exact multivariate hypergeometric draw: out[i] items of class i when
/// drawing `draws` items without replacement from class sizes `counts`.
/// `out` is resized to counts.size(); Σ out == draws.
void sample_multivariate_hypergeometric(util::Rng& rng,
                                        const std::vector<std::uint64_t>& counts,
                                        std::uint64_t draws,
                                        std::vector<std::uint64_t>& out);

/// Which sides of a block's colliding interaction come from the used pool:
/// conditioned on "at least one participant used", the ordered pair is
/// (used, used) / (used, unused) / (unused, used) with weights
/// u(u-1) / u·x / x·u.  Shared by every uniform-pair block engine (both
/// batched samplers and the sharded engine) — this is exactness-critical
/// probability code and must never diverge between the paths.
std::pair<bool, bool> pick_collision_sides(util::Rng& rng,
                                           std::uint64_t used_total,
                                           std::uint64_t unused_total);

/// First-collision block-length sampler shared by the uniform-pair block
/// engines (batched, sharded): the log-survival table of the birthday
/// process over n agents, plus the inverse-transform draw.  Blocks are
/// stopping times of the counts chain, so any engine that draws its block
/// lengths from this law and realizes the conditional in-block pair
/// process exactly reproduces the sequential scheduler's distribution.
class BlockLengthSampler {
 public:
  /// Builds log P(T > t), the log-survival of the first-collision time T,
  /// at every t: ∏_{s<t} (n-2s)(n-2s-1)/(n(n-1)).  Entries stop below
  /// -40 < log(2^-53), the log of the smallest positive value real() can
  /// produce, so every inverse-transform draw resolves inside the table.
  /// Length is Θ(√n).  Interactions conserve agents, so a static run
  /// builds once — but churn (join/leave, analysis/churn.hpp) changes n
  /// between blocks, and the survival law depends on n, so engines ask
  /// ready_for(n) per block and rebuild on a population change (Θ(√n),
  /// paid only when n actually moved).
  void build(std::uint64_t n) {
    built_for_ = n;
    const double log_denom = std::log(static_cast<double>(n)) +
                             std::log(static_cast<double>(n - 1));
    log_survival_.clear();
    log_survival_.push_back(0.0);  // P(T > 0) = 1
    double acc = 0.0;
    for (std::uint64_t t = 0; acc > -40.0; ++t) {
      const std::uint64_t used = 2 * t;
      if (n < used + 2) break;  // survival hits exactly 0: all agents used
      acc += std::log(static_cast<double>(n - used)) +
             std::log(static_cast<double>(n - used - 1)) - log_denom;
      log_survival_.push_back(acc);
    }
  }

  bool ready() const { return !log_survival_.empty(); }

  /// Whether the table describes the birthday process over exactly n
  /// agents — false after a join/leave changed the population.
  bool ready_for(std::uint64_t n) const {
    return !log_survival_.empty() && built_for_ == n;
  }

  struct Draw {
    std::uint64_t length;  ///< L, the collision-free prefix (≤ cap)
    bool collided;         ///< whether a colliding interaction ends the block
  };

  /// One inverse-transform draw of the first-collision time, capped at
  /// `cap` interactions: T is the smallest t with log P(T > t) ≤ log u,
  /// L = T - 1 (T ≥ 2 always: the first step cannot collide).  Not finding
  /// T within the first cap entries means the block is cut collision-free
  /// at the cap.  Consumes exactly one rng.real().
  Draw draw(util::Rng& rng, std::uint64_t cap) const {
    std::uint64_t L = cap;
    bool collided = false;
    double u = rng.real();
    if (u <= 0.0) u = 0x1.0p-53;  // real() granularity; log(0) guard
    const double lu = std::log(u);
    const auto begin = log_survival_.begin();
    // Search indices t = 0 .. min(cap, last table index).
    const std::size_t entries =
        static_cast<std::size_t>(
            std::min<std::uint64_t>(cap, log_survival_.size() - 1)) + 1;
    const auto end = begin + entries;
    const auto it = std::lower_bound(
        begin, end, lu, [](double s, double target) { return s > target; });
    if (it != end) {
      // Found the first t ≤ cap with S_t ≤ u: collision at step t.
      collided = true;
      L = static_cast<std::uint64_t>(it - begin) - 1;
    } else if (cap >= log_survival_.size()) {
      // The whole table survived the draw but the process walked off its
      // end, where survival is exactly 0 (all agents used): the very next
      // step must collide.
      collided = true;
      L = log_survival_.size() - 1;
    }
    return {L, collided};
  }

 private:
  std::vector<double> log_survival_;  ///< log P(first collision > t), Θ(√n)
  std::uint64_t built_for_ = 0;       ///< the n the table was built for
};

/// A configuration the batched engine can advance *exactly*: a counts
/// projection that is itself a Markov chain (a lumping of the agent-level
/// process).  Two families qualify — `CountsConfiguration` (uniform
/// scheduling: every ordered pair equally likely; `kUniformPairs = true`,
/// the birthday-block machinery applies) and `CommunityCountsConfiguration`
/// (blocked topologies lifted to (community, state) counts; the engine
/// takes its exact per-interaction community path).  Arbitrary graphs do
/// NOT qualify — their counts projection is not Markov — and must run on
/// the naive pp::Simulator; analysis::stabilize routes them there at
/// runtime (analysis/measure.hpp) instead of surfacing this concept's
/// compile-time wall to end users.
template <typename C, typename P>
concept LumpableTopology =
    Protocol<P> &&
    requires(C& c, const C& cc, std::uint32_t id, std::uint64_t k,
             const typename P::State& s) {
      { C::kUniformPairs } -> std::convertible_to<bool>;
      { cc.population_size() } -> std::convertible_to<std::uint64_t>;
      { cc.num_states() } -> std::convertible_to<std::uint32_t>;
      { cc.num_allocated_states() } -> std::convertible_to<std::uint32_t>;
      { cc.num_live_states() } -> std::convertible_to<std::uint32_t>;
      { cc.count(id) } -> std::convertible_to<std::uint64_t>;
      { cc.registry_version() } -> std::convertible_to<std::uint64_t>;
      { cc.fenwick_updates() } -> std::convertible_to<std::uint64_t>;
      { cc.fenwick_samples() } -> std::convertible_to<std::uint64_t>;
      { cc.compactions() } -> std::convertible_to<std::uint64_t>;
      { cc.state(id) } -> std::convertible_to<const typename P::State&>;
      { c.index_near(s, id) } -> std::convertible_to<std::uint32_t>;
      c.add_at(id, k);
      c.remove_at(id, k);
      c.compact();
    };

template <Protocol P, typename ConfigT = CountsConfiguration<P>>
  requires LumpableTopology<ConfigT, P>
class BatchedSimulator {
 public:
  using State = typename P::State;
  using Config = ConfigT;
  using Predicate =
      std::function<bool(const Config&, std::uint64_t /*interactions*/)>;

  BatchedSimulator(const P& protocol, Config config, std::uint64_t seed,
                   BlockSampling sampling = BlockSampling::kAuto,
                   DeltaMemo memo = DeltaMemo::kEnabled)
      : protocol_(protocol),
        config_(std::move(config)),
        rng_(util::substream(seed, 1)),
        agent_rng_(util::substream(seed, 2)),
        sampling_(sampling),
        memo_(memo) {}

  BatchedSimulator(const P& protocol, std::uint64_t seed,
                   BlockSampling sampling = BlockSampling::kAuto,
                   DeltaMemo memo = DeltaMemo::kEnabled)
      : BatchedSimulator(protocol, Config(protocol), seed, sampling, memo) {}

  /// Executes exactly `count` interactions.  With fewer than two agents no
  /// pair exists and no interaction can change the configuration; steps
  /// are counted (so run_until terminates) but are no-ops.
  ///
  /// Uniform configurations advance in collision-free blocks.  Community
  /// configurations advance one exact interaction at a time: the birthday
  /// survival law behind the block machinery assumes every ordered pair is
  /// equally likely, whereas under community weighting the collision
  /// probability at in-block step t depends on *which* communities the
  /// first t pairs hit — a trajectory-dependent quantity no precomputed
  /// table captures.  The per-interaction path still runs entirely in
  /// (community, state) id space with the shared δ-cache/scratch
  /// machinery, so it is O(log q + q_c) per interaction independent of n —
  /// the lumping is what buys feasibility at n = 10^6+, not blocking.
  void step(std::uint64_t count = 1) {
    if (config_.population_size() < 2) {
      interactions_ += count;
      return;
    }
    if constexpr (Config::kUniformPairs) {
      std::uint64_t done = 0;
      while (done < count) {
        done += run_block(count - done);
        maybe_compact();
      }
    } else {
      for (std::uint64_t t = 0; t < count; ++t) step_community();
      maybe_compact();
    }
    interactions_ += count;
  }

  /// Same contract as Simulator::run_until: probes at multiples of
  /// `probe_every` interactions (default n), plus once up front.
  RunResult run_until(const Predicate& done, std::uint64_t max_interactions,
                      std::uint64_t probe_every = 0) {
    if (probe_every == 0) {
      probe_every = std::max<std::uint64_t>(1, config_.population_size());
    }
    if (done(config_, interactions_)) {
      return {interactions_, true};
    }
    const std::uint64_t limit = interactions_ + max_interactions;
    while (interactions_ < limit) {
      const std::uint64_t chunk =
          std::min<std::uint64_t>(probe_every, limit - interactions_);
      step(chunk);
      if (done(config_, interactions_)) {
        return {interactions_, true};
      }
    }
    return {interactions_, false};
  }

  std::uint64_t interactions() const { return interactions_; }
  Config& config() { return config_; }
  const Config& config() const { return config_; }
  const P& protocol() const { return protocol_; }

  /// How many blocks each sampler ran (benchmarks report which path a
  /// workload actually exercised; tests pin kAuto's choice down).
  std::uint64_t dense_blocks() const { return dense_blocks_; }
  std::uint64_t fenwick_blocks() const { return fenwick_blocks_; }
  std::uint64_t flat_blocks() const { return flat_blocks_; }
  /// Per-draw samples resolved by the flat cumulative scan (the flat
  /// path's twin of the registry's fenwick_samples counter).
  std::uint64_t flat_scan_draws() const { return flat_draws_; }

  /// Memoized-transition statistics (kDeterministicDelta protocols with
  /// DeltaMemo::kEnabled only; all zero otherwise).
  std::uint64_t delta_cache_hits() const { return cache_hits_; }
  std::uint64_t delta_cache_misses() const { return cache_misses_; }
  std::size_t delta_cache_size() const { return delta_cache_.size(); }
  /// Cache invalidations taken (one per compaction that reclaimed ids
  /// while the memoized path was active).
  std::uint64_t delta_cache_clears() const { return cache_clears_; }

  /// Colliding interactions resolved individually (block path), and
  /// ordered community pairs drawn (community path; equals interactions()
  /// there — every interaction draws exactly one pair when n ≥ 2).
  std::uint64_t collision_resolutions() const { return collisions_; }
  std::uint64_t community_pair_draws() const { return community_draws_; }

  /// Uniform engine-metrics snapshot (obs/metrics.hpp): the engine's own
  /// counters plus the registry's.  O(1) — counters are always on.
  obs::EngineMetrics metrics() const {
    obs::EngineMetrics m;
    m.engine = Config::kUniformPairs ? "batched" : "batched-community";
    m.population = config_.population_size();
    m.interactions = interactions_;
    m.interactions_iterated = interactions_;
    m.blocks_dense = dense_blocks_;
    m.blocks_fenwick = fenwick_blocks_;
    m.blocks_flat = flat_blocks_;
    m.flat_scan_draws = flat_draws_;
    m.collision_resolutions = collisions_;
    m.community_pair_draws = community_draws_;
    m.fenwick_point_updates = config_.fenwick_updates();
    m.fenwick_samples = config_.fenwick_samples();
    m.registry_live_states = config_.num_live_states();
    m.registry_allocated_states = config_.num_allocated_states();
    m.registry_capacity = config_.num_states();
    m.registry_compactions = config_.compactions();
    m.registry_version = config_.registry_version();
    m.delta_cache_hits = cache_hits_;
    m.delta_cache_misses = cache_misses_;
    m.delta_cache_clears = cache_clears_;
    m.delta_cache_entries = delta_cache_.size();
    return m;
  }

  // --- checkpoint/resume support (obs/checkpoint.hpp) --------------------
  //
  // A checkpoint must pin the engine's FUTURE trajectory bit-for-bit, and
  // the trajectory depends on registry id layout (uniform positions resolve
  // through registry cumulative order), which a restore cannot reproduce
  // when the saver's interner carries free-list holes from compact().  The
  // discipline is therefore canonicalize-THEN-serialize: the saver rebuilds
  // its registry into dense-id form (ids 0..q-1 in live-id order, no holes)
  // and KEEPS RUNNING from that form, so the continuation and a restorer
  // that re-adds the serialized (state, count) list in order are in
  // literally identical state.  Engine op counters (blocks, cache stats,
  // registry counters) are process-local diagnostics and restart at zero on
  // restore; interactions() and the RNG streams are part of the state.

  /// Rebuilds the registry into canonical dense-id form and drops every
  /// id-keyed cache (δ-memo, block scratch).  O(q).  The counts multiset —
  /// and hence the law — is unchanged; only id labels move, exactly as the
  /// restorer will lay them out.  Uniform configurations only (the
  /// community lifting checkpoints are not supported).
  void canonicalize()
    requires Config::kUniformPairs
  {
    Config fresh{std::vector<State>{}};
    config_.for_each(
        [&](const State& s, std::uint64_t c) { fresh.add(s, c); });
    config_ = std::move(fresh);
    delta_cache_.clear();
    used_.assign(config_.num_states(), 0);
    flat_drawn_.assign(config_.num_states(), 0);
    touched_.clear();
  }

  /// The engine's RNG streams, in a fixed order the restorer relies on:
  /// [scheduler rng_, transition agent_rng_].
  std::vector<std::array<std::uint64_t, 4>> rng_states() const {
    return {rng_.state(), agent_rng_.state()};
  }

  /// Restores the streams saved by rng_states(); false on arity mismatch.
  bool set_rng_states(
      const std::vector<std::array<std::uint64_t, 4>>& states) {
    if (states.size() != 2) return false;
    rng_.set_state(states[0]);
    agent_rng_.set_state(states[1]);
    return true;
  }

  void set_interactions(std::uint64_t t) { interactions_ = t; }

 private:
  /// One exact interaction of the community-weighted pair law
  /// (pp/graph.hpp): ordered community pair (a, b) from the closed-form
  /// edge-weight table, then a uniform agent (≡ count-proportional class)
  /// draw within each community — removing the initiator before the
  /// responder draw makes the a = b case without-replacement
  /// automatically.  δ application reuses the block engine's collision
  /// machinery (memoized id-space transitions, hinted re-interning).
  void step_community()
    requires(!Config::kUniformPairs)
  {
    ++community_draws_;
    const auto [a, b] = config_.sample_community_pair(rng_);
    const std::uint32_t ia =
        config_.sample_class_in(a, rng_.below(config_.community_size(a)));
    config_.remove_at(ia, 1);
    const std::uint32_t ib =
        config_.sample_class_in(b, rng_.below(config_.community_size(b)));
    config_.remove_at(ib, 1);
    apply_collision(ia, ib);
  }

  /// Runs one block of at most `cap` interactions; returns how many ran.
  std::uint64_t run_block(std::uint64_t cap) {
    const std::uint64_t n = config_.population_size();

    // 1. First-collision time T (shared BlockLengthSampler): L is the
    // collision-free prefix; not finding T within the first cap entries
    // means the block is cut collision-free at the cap.  Churn edits the
    // configuration between blocks (never inside one), so re-checking the
    // table's n here is all the engine needs to track a live population.
    if (!block_length_.ready_for(n)) block_length_.build(n);
    const auto [L, collided] = block_length_.draw(rng_, cap);

    const std::uint32_t q = config_.num_states();
    if (use_flat_block(q, L)) {
      ++flat_blocks_;
      run_block_flat(n, L, collided);
    } else if (use_fenwick_block(q, L)) {
      ++fenwick_blocks_;
      run_block_fenwick(n, L, collided);
    } else {
      ++dense_blocks_;
      run_block_dense(n, L, collided);
    }
    return L + (collided ? 1 : 0);
  }

  /// The per-draw paths (flat, Fenwick) beat the dense registry scan when
  /// q is large relative to the block: the dense path pays a heavyweight
  /// hypergeometric evaluation per visited class, the per-draw paths
  /// ~2L tree descents of ~log2 q steps.  The factor 2 biases toward the
  /// dense path, which additionally enjoys the bulk same-pair-type fast
  /// path for deterministic protocols.
  static bool per_draw_beats_dense(std::uint32_t q, std::uint64_t L) {
    return static_cast<std::uint64_t>(q) >
           2 * L * static_cast<std::uint64_t>(std::bit_width(q));
  }

  /// kAuto substitutes the flat sampler exactly where it would have chosen
  /// Fenwick AND the registry is narrow enough that a linear scan beats
  /// the tree descent.  Because kFlat and kFenwick consume the identical
  /// RNG stream, this substitution leaves every kAuto trajectory
  /// bit-identical to what it was before kFlat existed — the auto rule is
  /// a pure speed choice, never a distributional one.
  bool use_flat_block(std::uint32_t q, std::uint64_t L) const {
    if (sampling_ == BlockSampling::kFlat) return true;
    if (sampling_ != BlockSampling::kAuto) return false;
    return q <= kFlatMaxStates && per_draw_beats_dense(q, L);
  }

  /// kAuto's Fenwick-vs-dense choice (checked after use_flat_block).
  bool use_fenwick_block(std::uint32_t q, std::uint64_t L) const {
    if (sampling_ != BlockSampling::kAuto) {
      return sampling_ == BlockSampling::kFenwick;
    }
    return per_draw_beats_dense(q, L);
  }

  /// Dense sampler: 2L distinct agents without replacement as one
  /// multivariate hypergeometric draw over the whole registry.  After the
  /// initial draw, compact to the ≤ min(2L, q) classes actually drawn: the
  /// initiator/responder split and matching then cost O(L·min(L, q))
  /// instead of O(L·q).  Zero-count classes consume no randomness in
  /// sample_hypergeometric, so the compaction leaves the RNG stream — and
  /// therefore every result — bit-identical to the dense formulation.
  void run_block_dense(std::uint64_t n, std::uint64_t L, bool collided) {
    const std::uint32_t q = config_.num_states();
    if (used_.size() < q) used_.resize(q, 0);

    if (L > 0) {
      sample_multivariate_hypergeometric(rng_, config_.counts(), 2 * L, k_);
      nz_.clear();
      nzk_.clear();
      for (std::uint32_t i = 0; i < q; ++i) {
        if (k_[i] > 0) {
          config_.remove_at(i, k_[i]);
          nz_.push_back(i);
          nzk_.push_back(k_[i]);
        }
      }
      const auto m = static_cast<std::uint32_t>(nz_.size());
      sample_multivariate_hypergeometric(rng_, nzk_, L, init_);
      resp_.assign(nzk_.begin(), nzk_.end());
      for (std::uint32_t i = 0; i < m; ++i) resp_[i] -= init_[i];
      for (std::uint32_t a = 0; a < m; ++a) {
        if (init_[a] == 0) continue;
        sample_multivariate_hypergeometric(rng_, resp_, init_[a], match_);
        for (std::uint32_t b = 0; b < m; ++b) {
          if (match_[b] == 0) continue;
          resp_[b] -= match_[b];
          apply_pair_type(nz_[a], nz_[b], match_[b]);
        }
      }
    }

    // 3. Colliding interaction: at least one participant is among the 2L
    // used agents.  Sample which side(s), then the states from the used /
    // unused multisets (agents are exchangeable given the counts).
    if (collided) {
      const std::uint64_t used_total = 2 * L;
      const std::uint64_t unused_total = n - used_total;
      const auto [init_used, resp_used] =
          pick_collision_sides(rng_, used_total, unused_total);

      const std::uint32_t ai =
          init_used ? draw_used(used_total) : draw_unused(unused_total);
      std::uint32_t bi;
      if (init_used && resp_used) {
        // Same pool: draw the responder without replacement.
        used_[ai] -= 1;
        bi = draw_used(used_total - 1);
        used_[ai] += 1;
      } else if (resp_used) {
        bi = draw_used(used_total);
      } else {
        bi = draw_unused(unused_total);  // disjoint from the used initiator
      }

      config_.remove_at(ai, 1);
      config_.remove_at(bi, 1);
      apply_collision(ai, bi);
    }

    std::fill(used_.begin(), used_.end(), 0);
  }

  /// Fenwick sampler: the 2L distinct agents are drawn one at a time via
  /// the registry's Fenwick index — each draw an O(log q) class search
  /// plus an O(log q) count decrement — and consecutive draws pair up as
  /// (initiator, responder) of one interaction, which is exactly the
  /// uniform scheduler's conditional law given a collision-free prefix.
  /// Outputs are parked in the used multiset until the block ends (they
  /// must not be eligible for later in-block draws), so after the 2L
  /// removals config_ *is* the unused multiset and the colliding
  /// interaction samples used/unused pools directly.  Every piece of
  /// per-block work is O(L·log q) or O(L): nothing scans the registry.
  void run_block_fenwick(std::uint64_t n, std::uint64_t L, bool collided) {
    seq_.clear();
    for (std::uint64_t t = 0; t < 2 * L; ++t) {
      const std::uint32_t idx = config_.sample_class(rng_.below(n - t));
      config_.remove_at(idx, 1);
      seq_.push_back(idx);
    }
    for (std::uint64_t t = 0; t < L; ++t) {
      const std::uint32_t ia = seq_[2 * t];
      const std::uint32_t ib = seq_[2 * t + 1];
      if constexpr (kDeterministicDelta<P>) {
        // Memoizable δ: the whole interaction is an id-space lookup (plus
        // one δ evaluation per distinct pair type on a cache miss).
        const auto [oa, ob] = delta_outputs(ia, ib);
        record_used_id(oa);
        record_used_id(ob);
      } else {
        // Randomized δ: copy into persistent scratch (reusing its heap
        // buffers), run δ, re-intern via the hinted fast path.
        State& sa = assign_scratch(scratch_a_, ia);
        State& sb = assign_scratch(scratch_b_, ib);
        protocol_.interact(sa, sb, agent_rng_);
        record_used_id(config_.index_near(sa, ia));
        record_used_id(config_.index_near(sb, ib));
      }
    }

    if (collided) {
      const std::uint64_t used_total = 2 * L;
      const std::uint64_t unused_total = n - used_total;
      const auto [init_used, resp_used] =
          pick_collision_sides(rng_, used_total, unused_total);

      std::uint32_t ai, bi;
      if (init_used) {
        ai = draw_used_sparse(used_total);
        if (resp_used) {
          // Same pool: draw the responder without replacement.
          used_[ai] -= 1;
          bi = draw_used_sparse(used_total - 1);
          used_[ai] += 1;
        } else {
          bi = config_.sample_class(rng_.below(unused_total));
        }
      } else {
        ai = config_.sample_class(rng_.below(unused_total));
        bi = draw_used_sparse(used_total);
      }

      if (init_used) used_[ai] -= 1; else config_.remove_at(ai, 1);
      if (resp_used) used_[bi] -= 1; else config_.remove_at(bi, 1);
      apply_collision(ai, bi);
    }

    // Return the block's post-states to the configuration and clear the
    // used multiset — touched entries only, never an O(q) sweep.
    for (const std::uint32_t idx : touched_) {
      if (used_[idx] > 0) config_.add_at(idx, used_[idx]);
      used_[idx] = 0;
    }
    touched_.clear();
  }

  /// Flat sampler: the same draw law AND the same scheduler stream as the
  /// Fenwick path — every rng_ consumption below mirrors run_block_fenwick
  /// call for call, and each uniform position resolves to the identical
  /// registry class (both pick the unique idx with cum(idx) ≤ pos <
  /// cum(idx+1) in registry order) — so kFlat and kFenwick trajectories
  /// are bit-identical per seed.  What changes is the machinery: classes
  /// resolve by a branchless cumulative scan over a dense snapshot of the
  /// counts (flat_counts_), draws are tallied in flat_drawn_, and the
  /// registry's O(log q) Fenwick point updates are deferred to ONE
  /// reconciliation per touched class at block end.  Per block:
  /// O(q + L·q) flat arithmetic + O(q·log q) reconcile, vs the Fenwick
  /// path's O(L·log q) pointer-chasing descents — the scan wins while q
  /// stays within a few cache lines (q ≤ kFlatMaxStates ≈ 64).
  void run_block_flat(std::uint64_t n, std::uint64_t L, bool collided) {
    const std::uint32_t q = config_.num_states();
    flat_counts_.assign(config_.counts().begin(), config_.counts().end());
    if (flat_drawn_.size() < q) flat_drawn_.resize(q, 0);

    // 2L collision-free agents, one per-draw sample each, consuming
    // rng_.below(n - t) exactly like the Fenwick path.  config_ itself is
    // NOT decremented here — the snapshot is; drawn classes reconcile once
    // at block end.  New classes interned mid-block (δ outputs) have count
    // zero in both views, so they are never drawable either way.
    seq_.clear();
    for (std::uint64_t t = 0; t < 2 * L; ++t) {
      const std::uint32_t idx = flat_pick(rng_.below(n - t));
      flat_counts_[idx] -= 1;
      flat_drawn_[idx] += 1;
      seq_.push_back(idx);
    }
    flat_draws_ += 2 * L;
    for (std::uint64_t t = 0; t < L; ++t) {
      const std::uint32_t ia = seq_[2 * t];
      const std::uint32_t ib = seq_[2 * t + 1];
      if constexpr (kDeterministicDelta<P>) {
        const auto [oa, ob] = delta_outputs(ia, ib);
        record_used_id(oa);
        record_used_id(ob);
      } else {
        State& sa = assign_scratch(scratch_a_, ia);
        State& sb = assign_scratch(scratch_b_, ib);
        protocol_.interact(sa, sb, agent_rng_);
        record_used_id(config_.index_near(sa, ia));
        record_used_id(config_.index_near(sb, ib));
      }
    }

    if (collided) {
      const std::uint64_t used_total = 2 * L;
      const std::uint64_t unused_total = n - used_total;
      const auto [init_used, resp_used] =
          pick_collision_sides(rng_, used_total, unused_total);

      // flat_counts_ is exactly the unused multiset here (snapshot minus
      // the 2L draws), so flat_pick replaces the Fenwick path's
      // config_.sample_class over the decremented registry, position for
      // position.
      std::uint32_t ai, bi;
      if (init_used) {
        ai = draw_used_sparse(used_total);
        if (resp_used) {
          // Same pool: draw the responder without replacement.
          used_[ai] -= 1;
          bi = draw_used_sparse(used_total - 1);
          used_[ai] += 1;
        } else {
          bi = flat_pick(rng_.below(unused_total));
        }
      } else {
        ai = flat_pick(rng_.below(unused_total));
        bi = draw_used_sparse(used_total);
      }
      flat_draws_ += (init_used ? 0 : 1) + ((resp_used || !init_used) ? 0 : 1);

      if (init_used) {
        used_[ai] -= 1;
      } else {
        flat_counts_[ai] -= 1;
        flat_drawn_[ai] += 1;
      }
      if (resp_used) {
        used_[bi] -= 1;
      } else {
        flat_counts_[bi] -= 1;
        flat_drawn_[bi] += 1;
      }
      apply_collision(ai, bi);
    }

    // Reconcile: return the block's post-states (touched entries only),
    // then charge each drawn class's total to the registry in one
    // remove_at.  Adding before removing keeps every intermediate count
    // non-negative without needing the two loops to visit classes in any
    // particular order.
    for (const std::uint32_t idx : touched_) {
      if (used_[idx] > 0) config_.add_at(idx, used_[idx]);
      used_[idx] = 0;
    }
    touched_.clear();
    for (std::uint32_t i = 0; i < q; ++i) {
      if (flat_drawn_[i] > 0) {
        config_.remove_at(i, flat_drawn_[i]);
        flat_drawn_[i] = 0;
      }
    }
  }

  /// The class containing uniform position `pos` of the flat snapshot:
  /// the unique idx with cum(idx) ≤ pos < cum(idx+1) — the same class a
  /// Fenwick descent over equal counts returns.  Branchless: one pass of
  /// add + compare over a dense array the whole of which fits in a few
  /// cache lines, no data-dependent branches for the predictor to miss.
  std::uint32_t flat_pick(std::uint64_t pos) const {
    std::uint32_t idx = 0;
    std::uint64_t cum = 0;
    for (const std::uint64_t c : flat_counts_) {
      cum += c;
      idx += static_cast<std::uint32_t>(cum <= pos);
    }
    return idx;
  }

  /// Output ids of the interaction (ia, ib): memoized lookup when enabled,
  /// δ evaluation otherwise.  Deterministic protocols only.
  std::pair<std::uint32_t, std::uint32_t> delta_outputs(std::uint32_t ia,
                                                        std::uint32_t ib)
    requires kDeterministicDelta<P>
  {
    if (memo_ == DeltaMemo::kEnabled) {
      const std::uint64_t key = DeltaCache::pack(ia, ib);
      std::uint64_t val;
      if (delta_cache_.lookup(key, val)) {
        ++cache_hits_;
        return DeltaCache::unpack(val);
      }
      ++cache_misses_;
      const auto out = compute_delta(ia, ib);
      delta_cache_.insert(key, DeltaCache::pack(out.first, out.second));
      return out;
    }
    return compute_delta(ia, ib);
  }

  /// One δ evaluation over the classes (ia, ib), outputs re-interned via
  /// the hinted fast path.  δ is deterministic here, so passing agent_rng_
  /// consumes nothing — cached and uncached runs see identical streams.
  std::pair<std::uint32_t, std::uint32_t> compute_delta(std::uint32_t ia,
                                                        std::uint32_t ib)
    requires kDeterministicDelta<P>
  {
    State& sa = assign_scratch(scratch_a_, ia);
    State& sb = assign_scratch(scratch_b_, ib);
    protocol_.interact(sa, sb, agent_rng_);
    const std::uint32_t oa = config_.index_near(sa, ia);
    const std::uint32_t ob = config_.index_near(sb, ib);
    return {oa, ob};
  }

  /// The colliding interaction, on classes already removed from both
  /// pools: outputs go straight back to the configuration (the block ends
  /// here, so they can never be drawn again within it).
  void apply_collision(std::uint32_t ai, std::uint32_t bi) {
    ++collisions_;
    if constexpr (kDeterministicDelta<P>) {
      const auto [oa, ob] = delta_outputs(ai, bi);
      config_.add_at(oa, 1);
      config_.add_at(ob, 1);
    } else {
      State& sa = assign_scratch(scratch_a_, ai);
      State& sb = assign_scratch(scratch_b_, bi);
      protocol_.interact(sa, sb, agent_rng_);
      config_.add_at(config_.index_near(sa, ai), 1);
      config_.add_at(config_.index_near(sb, bi), 1);
    }
  }

  /// Copies `src` into a persistent scratch slot.  The slot is constructed
  /// on first use and copy-ASSIGNED afterwards, so its heap buffers (rich
  /// states: vectors of ranks, messages, coin rings) are reused instead of
  /// re-allocated on every interaction — the difference between several
  /// mallocs per interaction and none in steady state.
  static State& assign_scratch(std::optional<State>& slot, const State& src) {
    if (slot.has_value()) {
      *slot = src;
    } else {
      slot.emplace(src);
    }
    return *slot;
  }

  State& assign_scratch(std::optional<State>& slot, std::uint32_t idx) {
    return assign_scratch(slot, config_.state(idx));
  }

  /// Tracks one output agent of the running block in the used multiset
  /// without returning it to the configuration yet.
  void record_used_id(std::uint32_t idx) {
    if (used_.size() <= idx) used_.resize(idx + 1, 0);
    if (used_[idx] == 0) touched_.push_back(idx);
    used_[idx] += 1;
  }

  /// Uniform state draw from the used multiset, scanning only the ≤ 2L
  /// touched registry entries (total must be the multiset's size).
  std::uint32_t draw_used_sparse(std::uint64_t total) {
    std::uint64_t pos = rng_.below(total);
    for (const std::uint32_t idx : touched_) {
      if (pos < used_[idx]) return idx;
      pos -= used_[idx];
    }
    return touched_.back();  // unreachable
  }

  /// Applies δ to `m` pairs whose (initiator, responder) states are the
  /// registry entries (a, b).  The 2m agents were already removed from the
  /// counts; outputs are added back and tracked in the used multiset.
  void apply_pair_type(std::uint32_t a, std::uint32_t b, std::uint64_t m) {
    if constexpr (kDeterministicDelta<P>) {
      const auto [oa, ob] = delta_outputs(a, b);
      record_output_id(oa, m);
      record_output_id(ob, m);
    } else {
      // Copy the pair type's prototype states once (record_output may grow
      // the registry and reseat its arena, so references are not stable),
      // then run δ per pair out of persistent scratch.
      assign_scratch(proto_a_, a);
      assign_scratch(proto_b_, b);
      for (std::uint64_t i = 0; i < m; ++i) {
        State& sa = assign_scratch(scratch_a_, *proto_a_);
        State& sb = assign_scratch(scratch_b_, *proto_b_);
        protocol_.interact(sa, sb, agent_rng_);
        record_output_id(config_.index_near(sa, a), 1);
        record_output_id(config_.index_near(sb, b), 1);
      }
    }
  }

  /// Long runs leave behind zero-count registry entries (states the
  /// population moved through); once they dominate, release them so
  /// sampling, scratch arrays and the id table track the number of *live*
  /// states.  The registry counts its live entries incrementally, so the
  /// decision is O(1) per block.  Safe between blocks because all
  /// block-local indices (used_, scratch) are dead — and because ids are
  /// stable, nothing else needs re-deriving except the memoized
  /// transition cache, whose entries may name reclaimed ids.
  void maybe_compact() {
    if (config_.should_compact()) {
      config_.compact();
      if (used_.size() > config_.num_states()) {
        used_.resize(config_.num_states());
      }
      if (flat_drawn_.size() > config_.num_states()) {
        flat_drawn_.resize(config_.num_states());  // all-zero between blocks
      }
      if constexpr (kDeterministicDelta<P>) {
        delta_cache_.clear();
        ++cache_clears_;
      }
    }
  }

  /// Returns m output agents to the configuration and the used multiset.
  void record_output_id(std::uint32_t idx, std::uint64_t m) {
    config_.add_at(idx, m);
    if (used_.size() <= idx) used_.resize(idx + 1, 0);
    used_[idx] += m;
  }

  /// Uniform state draw from the used multiset (total must be its size).
  std::uint32_t draw_used(std::uint64_t total) {
    std::uint64_t pos = rng_.below(total);
    for (std::uint32_t i = 0; i < used_.size(); ++i) {
      if (pos < used_[i]) return i;
      pos -= used_[i];
    }
    return static_cast<std::uint32_t>(used_.size() - 1);  // unreachable
  }

  /// Uniform state draw from the unused multiset (counts minus used).
  std::uint32_t draw_unused(std::uint64_t total) {
    std::uint64_t pos = rng_.below(total);
    const std::uint32_t q = config_.num_states();
    for (std::uint32_t i = 0; i < q; ++i) {
      const std::uint64_t c =
          config_.count(i) - (i < used_.size() ? used_[i] : 0);
      if (pos < c) return i;
      pos -= c;
    }
    return q - 1;  // unreachable
  }

  P protocol_;
  Config config_;
  util::Rng rng_;        ///< scheduler randomness (block structure, pairs)
  util::Rng agent_rng_;  ///< transition-function randomness
  BlockSampling sampling_ = BlockSampling::kAuto;
  DeltaMemo memo_ = DeltaMemo::kEnabled;
  std::uint64_t interactions_ = 0;
  std::uint64_t dense_blocks_ = 0;
  std::uint64_t fenwick_blocks_ = 0;
  std::uint64_t flat_blocks_ = 0;
  std::uint64_t flat_draws_ = 0;        ///< flat-path per-draw samples
  std::uint64_t collisions_ = 0;        ///< colliding interactions resolved
  std::uint64_t community_draws_ = 0;   ///< community path: pairs drawn

  DeltaCache delta_cache_;  ///< (id, id) → (id, id), deterministic δ only
  std::uint64_t cache_hits_ = 0;
  std::uint64_t cache_misses_ = 0;
  std::uint64_t cache_clears_ = 0;

  BlockLengthSampler block_length_;  ///< first-collision law, built on n

  // Persistent δ scratch (optional: State need not be default-
  // constructible).  proto_a_/proto_b_ hold a dense pair type's inputs
  // across the per-pair loop.
  std::optional<State> scratch_a_, scratch_b_;
  std::optional<State> proto_a_, proto_b_;

  // Scratch buffers.  used_ and k_ are indexed like the registry; nz_
  // lists the registry indices drawn this block, and init_/resp_/match_
  // are indexed like nz_ (compact, ≤ 2L entries).  seq_ and touched_
  // belong to the Fenwick path (drawn-agent sequence, used-entry list).
  std::vector<std::uint64_t> used_;   ///< post-states of this block's agents
  std::vector<std::uint64_t> k_;      ///< sampled state totals (2L agents)
  std::vector<std::uint32_t> nz_;     ///< registry indices with k_[i] > 0
  std::vector<std::uint64_t> nzk_;    ///< k_ compacted to nz_
  std::vector<std::uint64_t> init_;   ///< initiator split
  std::vector<std::uint64_t> resp_;   ///< responder pool (consumed)
  std::vector<std::uint64_t> match_;  ///< per-initiator-state matching
  std::vector<std::uint32_t> seq_;      ///< Fenwick path: drawn classes, 2L
  std::vector<std::uint32_t> touched_;  ///< Fenwick path: used_ support
  std::vector<std::uint64_t> flat_counts_;  ///< flat path: counts snapshot
  std::vector<std::uint64_t> flat_drawn_;   ///< flat path: per-class draws
};

}  // namespace ssle::pp
