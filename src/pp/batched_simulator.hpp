// Batched count-based simulation engine.
//
// The naive Simulator advances one interaction at a time over a length-n
// agent array; at n = 10^6+ every interaction costs two random-access cache
// misses.  BatchedSimulator instead advances the CountsConfiguration (the
// exact Markov projection of the configuration, see pp/counts.hpp) a whole
// *collision-free block* at a time:
//
//   1. Sample T, the index of the first interaction that reuses an agent
//      already touched in this block (inverse-transform over the exact
//      birthday survival probabilities ∏ (n-2t)(n-2t-1)/(n(n-1))).
//   2. The L = T-1 collision-free interactions involve 2L *distinct* agents
//      drawn uniformly without replacement, so their states are a
//      multivariate hypergeometric draw from the counts; splitting them
//      into initiators/responders and matching the two multisets are again
//      sequential hypergeometric draws.  Each ordered state-pair type
//      (A, B) with multiplicity m is then applied m times — or exactly
//      once, with the counts updated in bulk, when the protocol declares
//      `static constexpr bool kDeterministicInteract = true`.
//   3. The colliding interaction T is executed individually: conditioned on
//      "at least one participant was already used", the pair is sampled
//      from the tracked used/unused multisets, which is exact because agent
//      identities are exchangeable given the counts.
//
// Blocks are stopping times of the counts chain, so chaining them (and
// truncating a block at a probe boundary) reproduces the sequential
// process's distribution exactly — BatchedSimulator and Simulator are
// statistically indistinguishable, which tests/test_batched_simulator.cpp
// checks empirically.  Expected block length is L = Θ(√n); each block
// costs O(q) for the hypergeometric draw over the registry's q states
// plus O(L·min(L, q)) for the initiator/responder matching (the matching
// runs over the ≤ 2L classes actually drawn, not the full registry), so
// per-interaction cost is O(q/√n + √n) amortized — no O(n) agent array,
// no cache misses.
//
// The API mirrors Simulator (`step`, `run_until`, RunResult, probe
// semantics); predicates observe the CountsConfiguration instead of the
// Population.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "pp/counts.hpp"
#include "pp/protocol.hpp"
#include "pp/simulator.hpp"
#include "util/rng.hpp"

namespace ssle::pp {

/// Exact draw from Hypergeometric(total, successes, draws): the number of
/// "success" items in `draws` draws without replacement from a population
/// of `total` items containing `successes` successes.  Mode-centered
/// inverse transform; expected O(σ) work.
std::uint64_t sample_hypergeometric(util::Rng& rng, std::uint64_t total,
                                    std::uint64_t successes,
                                    std::uint64_t draws);

/// Exact multivariate hypergeometric draw: out[i] items of class i when
/// drawing `draws` items without replacement from class sizes `counts`.
/// `out` is resized to counts.size(); Σ out == draws.
void sample_multivariate_hypergeometric(util::Rng& rng,
                                        const std::vector<std::uint64_t>& counts,
                                        std::uint64_t draws,
                                        std::vector<std::uint64_t>& out);

/// True when P declares its transition function deterministic (consumes no
/// randomness), enabling the bulk same-pair-type fast path.  Declaring this
/// on a protocol whose δ *does* draw from the Rng silently biases results.
template <typename P>
inline constexpr bool kBatchDeterministic = [] {
  if constexpr (requires {
                  { P::kDeterministicInteract } -> std::convertible_to<bool>;
                }) {
    return static_cast<bool>(P::kDeterministicInteract);
  } else {
    return false;
  }
}();

template <Protocol P>
class BatchedSimulator {
 public:
  using State = typename P::State;
  using Config = CountsConfiguration<P>;
  using Predicate =
      std::function<bool(const Config&, std::uint64_t /*interactions*/)>;

  BatchedSimulator(const P& protocol, Config config, std::uint64_t seed)
      : protocol_(protocol),
        config_(std::move(config)),
        rng_(util::substream(seed, 1)),
        agent_rng_(util::substream(seed, 2)) {}

  BatchedSimulator(const P& protocol, std::uint64_t seed)
      : BatchedSimulator(protocol, Config(protocol), seed) {}

  /// Executes exactly `count` interactions.  With fewer than two agents no
  /// pair exists and no interaction can change the configuration; steps
  /// are counted (so run_until terminates) but are no-ops.
  void step(std::uint64_t count = 1) {
    if (config_.population_size() < 2) {
      interactions_ += count;
      return;
    }
    std::uint64_t done = 0;
    while (done < count) {
      done += run_block(count - done);
      maybe_compact();
    }
    interactions_ += count;
  }

  /// Same contract as Simulator::run_until: probes at multiples of
  /// `probe_every` interactions (default n), plus once up front.
  RunResult run_until(const Predicate& done, std::uint64_t max_interactions,
                      std::uint64_t probe_every = 0) {
    if (probe_every == 0) {
      probe_every = std::max<std::uint64_t>(1, config_.population_size());
    }
    if (done(config_, interactions_)) {
      return {interactions_, true};
    }
    const std::uint64_t limit = interactions_ + max_interactions;
    while (interactions_ < limit) {
      const std::uint64_t chunk =
          std::min<std::uint64_t>(probe_every, limit - interactions_);
      step(chunk);
      if (done(config_, interactions_)) {
        return {interactions_, true};
      }
    }
    return {interactions_, false};
  }

  std::uint64_t interactions() const { return interactions_; }
  Config& config() { return config_; }
  const Config& config() const { return config_; }
  const P& protocol() const { return protocol_; }

 private:
  /// Builds log P(T > t), the log-survival of the first-collision time T,
  /// at every t: ∏_{s<t} (n-2s)(n-2s-1)/(n(n-1)).  Entries stop below
  /// -40 < log(2^-53), the log of the smallest positive value real() can
  /// produce, so every inverse-transform draw resolves inside the table.
  /// Length is Θ(√n); built once (interactions conserve agents, so n is
  /// fixed for the simulator's lifetime).
  void build_survival_table() {
    const std::uint64_t n = config_.population_size();
    const double log_denom = std::log(static_cast<double>(n)) +
                             std::log(static_cast<double>(n - 1));
    log_survival_.clear();
    log_survival_.push_back(0.0);  // P(T > 0) = 1
    double acc = 0.0;
    for (std::uint64_t t = 0; acc > -40.0; ++t) {
      const std::uint64_t used = 2 * t;
      if (n < used + 2) break;  // survival hits exactly 0: all agents used
      acc += std::log(static_cast<double>(n - used)) +
             std::log(static_cast<double>(n - used - 1)) - log_denom;
      log_survival_.push_back(acc);
    }
  }

  /// Runs one block of at most `cap` interactions; returns how many ran.
  std::uint64_t run_block(std::uint64_t cap) {
    const std::uint64_t n = config_.population_size();

    // 1. First-collision time T via inverse transform on the precomputed
    // log-survival table: T is the smallest t with log P(T > t) ≤ log u.
    // L is the collision-free prefix (T ≥ 2 always: the first step cannot
    // collide).  Not finding T within the first cap entries means the
    // block is cut collision-free at the cap.
    if (log_survival_.empty()) build_survival_table();
    std::uint64_t L = cap;
    bool collided = false;
    {
      double u = rng_.real();
      if (u <= 0.0) u = 0x1.0p-53;  // real() granularity; log(0) guard
      const double lu = std::log(u);
      const auto begin = log_survival_.begin();
      // Search indices t = 0 .. min(cap, last table index).
      const std::size_t entries =
          static_cast<std::size_t>(std::min<std::uint64_t>(
              cap, log_survival_.size() - 1)) + 1;
      const auto end = begin + entries;
      const auto it = std::lower_bound(
          begin, end, lu, [](double s, double target) { return s > target; });
      if (it != end) {
        // Found the first t ≤ cap with S_t ≤ u: collision at step t.
        collided = true;
        L = static_cast<std::uint64_t>(it - begin) - 1;
      } else if (cap >= log_survival_.size()) {
        // The whole table survived the draw but the process walked off its
        // end, where survival is exactly 0 (all agents used): the very
        // next step must collide.
        collided = true;
        L = log_survival_.size() - 1;
      }
    }

    const std::uint32_t q = config_.num_states();
    if (used_.size() < q) used_.resize(q, 0);

    // 2. Collision-free block: 2L distinct agents without replacement.
    // After the initial draw, compact to the ≤ min(2L, q) classes actually
    // drawn: the initiator/responder split and matching then cost
    // O(L·min(L, q)) instead of O(L·q).  Zero-count classes consume no
    // randomness in sample_hypergeometric, so the compaction leaves the
    // RNG stream — and therefore every result — bit-identical to the
    // dense formulation.  This is what keeps registries with q ≈ n
    // distinct states (ElectLeader_r once identifiers/ranks spread)
    // runnable at n = 10^5–10^6.
    if (L > 0) {
      sample_multivariate_hypergeometric(rng_, config_.counts(), 2 * L, k_);
      nz_.clear();
      nzk_.clear();
      for (std::uint32_t i = 0; i < q; ++i) {
        if (k_[i] > 0) {
          config_.remove_at(i, k_[i]);
          nz_.push_back(i);
          nzk_.push_back(k_[i]);
        }
      }
      const auto m = static_cast<std::uint32_t>(nz_.size());
      sample_multivariate_hypergeometric(rng_, nzk_, L, init_);
      resp_.assign(nzk_.begin(), nzk_.end());
      for (std::uint32_t i = 0; i < m; ++i) resp_[i] -= init_[i];
      for (std::uint32_t a = 0; a < m; ++a) {
        if (init_[a] == 0) continue;
        sample_multivariate_hypergeometric(rng_, resp_, init_[a], match_);
        for (std::uint32_t b = 0; b < m; ++b) {
          if (match_[b] == 0) continue;
          resp_[b] -= match_[b];
          apply_pair_type(nz_[a], nz_[b], match_[b]);
        }
      }
    }

    // 3. Colliding interaction: at least one participant is among the 2L
    // used agents.  Sample which side(s), then the states from the used /
    // unused multisets (agents are exchangeable given the counts).
    if (collided) {
      const std::uint64_t used_total = 2 * L;
      const std::uint64_t unused_total = n - used_total;
      const std::uint64_t w_uu = used_total * (used_total - 1);
      const std::uint64_t w_ux = used_total * unused_total;
      const std::uint64_t w_xu = unused_total * used_total;
      const std::uint64_t pick = rng_.below(w_uu + w_ux + w_xu);
      const bool init_used = pick < w_uu + w_ux;
      const bool resp_used = pick < w_uu || pick >= w_uu + w_ux;

      const std::uint32_t ai =
          init_used ? draw_used(used_total) : draw_unused(unused_total);
      std::uint32_t bi;
      if (init_used && resp_used) {
        // Same pool: draw the responder without replacement.
        used_[ai] -= 1;
        bi = draw_used(used_total - 1);
        used_[ai] += 1;
      } else if (resp_used) {
        bi = draw_used(used_total);
      } else {
        bi = draw_unused(unused_total);  // disjoint from the used initiator
      }

      State sa = config_.state(ai);
      State sb = config_.state(bi);
      config_.remove_at(ai, 1);
      config_.remove_at(bi, 1);
      protocol_.interact(sa, sb, agent_rng_);
      config_.add(sa, 1);
      config_.add(sb, 1);
    }

    std::fill(used_.begin(), used_.end(), 0);
    return L + (collided ? 1 : 0);
  }

  /// Applies δ to `m` pairs whose (initiator, responder) states are the
  /// registry entries (a, b).  The 2m agents were already removed from the
  /// counts; outputs are added back and tracked in the used multiset.
  void apply_pair_type(std::uint32_t a, std::uint32_t b, std::uint64_t m) {
    // Copy by value: record_output may grow the registry and invalidate
    // references into it.
    const State proto_a = config_.state(a);
    const State proto_b = config_.state(b);
    if constexpr (kBatchDeterministic<P>) {
      State sa = proto_a;
      State sb = proto_b;
      protocol_.interact(sa, sb, agent_rng_);
      record_output(sa, m);
      record_output(sb, m);
    } else {
      for (std::uint64_t i = 0; i < m; ++i) {
        State sa = proto_a;
        State sb = proto_b;
        protocol_.interact(sa, sb, agent_rng_);
        record_output(sa, 1);
        record_output(sb, 1);
      }
    }
  }

  /// Long runs leave behind zero-count registry entries (states the
  /// population moved through); once they dominate, drop them so the O(q)
  /// sampling scans track the number of *live* states.  Safe between
  /// blocks because all block-local indices (used_, scratch) are dead.
  void maybe_compact() {
    const std::uint32_t q = config_.num_states();
    if (q < 32) return;
    std::uint32_t live = 0;
    for (std::uint32_t i = 0; i < q; ++i) live += config_.count(i) > 0;
    if (2 * live <= q) {
      config_.compact();
      used_.assign(config_.num_states(), 0);
    }
  }

  void record_output(const State& s, std::uint64_t m) {
    const std::uint32_t idx = config_.add(s, m);
    if (used_.size() <= idx) used_.resize(idx + 1, 0);
    used_[idx] += m;
  }

  /// Uniform state draw from the used multiset (total must be its size).
  std::uint32_t draw_used(std::uint64_t total) {
    std::uint64_t pos = rng_.below(total);
    for (std::uint32_t i = 0; i < used_.size(); ++i) {
      if (pos < used_[i]) return i;
      pos -= used_[i];
    }
    return static_cast<std::uint32_t>(used_.size() - 1);  // unreachable
  }

  /// Uniform state draw from the unused multiset (counts minus used).
  std::uint32_t draw_unused(std::uint64_t total) {
    std::uint64_t pos = rng_.below(total);
    const std::uint32_t q = config_.num_states();
    for (std::uint32_t i = 0; i < q; ++i) {
      const std::uint64_t c =
          config_.count(i) - (i < used_.size() ? used_[i] : 0);
      if (pos < c) return i;
      pos -= c;
    }
    return q - 1;  // unreachable
  }

  P protocol_;
  Config config_;
  util::Rng rng_;        ///< scheduler randomness (block structure, pairs)
  util::Rng agent_rng_;  ///< transition-function randomness
  std::uint64_t interactions_ = 0;

  std::vector<double> log_survival_;  ///< log P(first collision > t), Θ(√n)

  // Scratch buffers.  used_ and k_ are indexed like the registry; nz_
  // lists the registry indices drawn this block, and init_/resp_/match_
  // are indexed like nz_ (compact, ≤ 2L entries).
  std::vector<std::uint64_t> used_;   ///< post-states of this block's agents
  std::vector<std::uint64_t> k_;      ///< sampled state totals (2L agents)
  std::vector<std::uint32_t> nz_;     ///< registry indices with k_[i] > 0
  std::vector<std::uint64_t> nzk_;    ///< k_ compacted to nz_
  std::vector<std::uint64_t> init_;   ///< initiator split
  std::vector<std::uint64_t> resp_;   ///< responder pool (consumed)
  std::vector<std::uint64_t> match_;  ///< per-initiator-state matching
};

}  // namespace ssle::pp
