#include "pp/graph.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <numeric>

namespace ssle::pp {

void Graph::add_edge(std::uint32_t a, std::uint32_t b) {
  if (a == b || a >= n_ || b >= n_ || has_edge(a, b)) return;
  adjacency_[a].push_back(b);
  adjacency_[b].push_back(a);
  edge_list_.emplace_back(std::min(a, b), std::max(a, b));
}

bool Graph::has_edge(std::uint32_t a, std::uint32_t b) const {
  if (a >= n_ || b >= n_) return false;
  const auto& adj = adjacency_[a];
  return std::find(adj.begin(), adj.end(), b) != adj.end();
}

bool Graph::is_connected() const {
  if (n_ == 0) return true;
  std::vector<char> seen(n_, 0);
  std::vector<std::uint32_t> stack{0};
  seen[0] = 1;
  std::uint32_t visited = 1;
  while (!stack.empty()) {
    const std::uint32_t v = stack.back();
    stack.pop_back();
    for (const std::uint32_t w : adjacency_[v]) {
      if (!seen[w]) {
        seen[w] = 1;
        ++visited;
        stack.push_back(w);
      }
    }
  }
  return visited == n_;
}

std::uint32_t Graph::min_degree() const {
  std::uint32_t d = ~0u;
  for (std::uint32_t v = 0; v < n_; ++v) d = std::min(d, degree(v));
  return n_ == 0 ? 0 : d;
}

std::uint32_t Graph::max_degree() const {
  std::uint32_t d = 0;
  for (std::uint32_t v = 0; v < n_; ++v) d = std::max(d, degree(v));
  return d;
}

Graph Graph::complete(std::uint32_t n) {
  Graph g(n);
  for (std::uint32_t a = 0; a < n; ++a) {
    for (std::uint32_t b = a + 1; b < n; ++b) g.add_edge(a, b);
  }
  return g;
}

Graph Graph::cycle(std::uint32_t n) {
  Graph g(n);
  for (std::uint32_t v = 0; v < n; ++v) g.add_edge(v, (v + 1) % n);
  return g;
}

Graph Graph::path(std::uint32_t n) {
  Graph g(n);
  for (std::uint32_t v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  return g;
}

Graph Graph::star(std::uint32_t n) {
  Graph g(n);
  for (std::uint32_t v = 1; v < n; ++v) g.add_edge(0, v);
  return g;
}

Graph Graph::random_regular(std::uint32_t n, std::uint32_t d,
                            util::Rng& rng) {
  Graph g(n);
  // d/2 superposed random Hamilton cycles → connected, near-d-regular.
  const std::uint32_t cycles = std::max(1u, d / 2);
  std::vector<std::uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  for (std::uint32_t c = 0; c < cycles; ++c) {
    for (std::uint32_t i = n; i > 1; --i) {
      std::swap(perm[i - 1], perm[rng.below(i)]);
    }
    for (std::uint32_t i = 0; i < n; ++i) {
      g.add_edge(perm[i], perm[(i + 1) % n]);
    }
  }
  return g;
}

Graph Graph::erdos_renyi(std::uint32_t n, double p, util::Rng& rng) {
  for (int attempt = 0; attempt < 100; ++attempt) {
    Graph g(n);
    for (std::uint32_t a = 0; a < n; ++a) {
      for (std::uint32_t b = a + 1; b < n; ++b) {
        if (rng.real() < p) g.add_edge(a, b);
      }
    }
    if (g.is_connected()) return g;
  }
  // Sparse p on a tiny n may never connect; fall back to a cycle so the
  // caller always gets a usable graph.
  return cycle(n);
}

namespace {

/// n split into k near-equal parts, first n % k parts one larger — the
/// shared layout of Graph::complete_multipartite and BlockedTopology, so
/// the materialized and closed-form views agree agent-for-agent.
std::vector<std::uint64_t> near_equal_split(std::uint64_t n, std::uint32_t k) {
  std::vector<std::uint64_t> sizes(k, n / k);
  for (std::uint32_t c = 0; c < n % k; ++c) ++sizes[c];
  return sizes;
}

[[noreturn]] void topology_fatal(const char* what) {
  std::fprintf(stderr, "BlockedTopology: %s\n", what);
  std::exit(2);
}

}  // namespace

Graph Graph::complete_multipartite(std::uint32_t n, std::uint32_t k) {
  Graph g(n);
  if (k == 0) return g;
  const auto sizes = near_equal_split(n, k);
  std::vector<std::uint32_t> block(n);
  std::uint32_t v = 0;
  for (std::uint32_t c = 0; c < k; ++c) {
    for (std::uint64_t j = 0; j < sizes[c]; ++j) block[v++] = c;
  }
  for (std::uint32_t a = 0; a < n; ++a) {
    for (std::uint32_t b = a + 1; b < n; ++b) {
      if (block[a] != block[b]) g.add_edge(a, b);
    }
  }
  return g;
}

BlockedTopology::BlockedTopology(std::string name,
                                 std::vector<std::uint64_t> sizes,
                                 double intra, double inter)
    : name_(std::move(name)),
      sizes_(std::move(sizes)),
      intra_(intra),
      inter_(inter) {
  const auto k = static_cast<std::uint32_t>(sizes_.size());
  if (k == 0) topology_fatal("needs at least one community");
  if (intra_ < 0.0 || inter_ < 0.0) topology_fatal("edge weights must be >= 0");
  offsets_.resize(k);
  for (std::uint32_t c = 0; c < k; ++c) {
    if (sizes_[c] == 0) topology_fatal("zero-size community");
    offsets_[c] = total_;
    total_ += sizes_[c];
  }
  if (total_ < 2) topology_fatal("needs at least two agents");
  // Connectivity of the weighted interaction graph: with one community
  // agents must talk within it; with several, only inter edges bridge them.
  if (k == 1 && intra_ <= 0.0) {
    topology_fatal("single community with intra weight 0 is disconnected");
  }
  if (k > 1 && inter_ <= 0.0) {
    topology_fatal("multiple communities with inter weight 0 are disconnected");
  }
  // Complete multipartite needs every block nonempty *and* a partner; a
  // lone community with intra = 0 has no edges at all (caught above), and
  // k > 1 with inter > 0 is always connected.
  cum_.resize(static_cast<std::size_t>(k) * k);
  double running = 0.0;
  for (std::uint32_t a = 0; a < k; ++a) {
    for (std::uint32_t b = 0; b < k; ++b) {
      running += pair_weight(a, b);
      cum_[static_cast<std::size_t>(a) * k + b] = running;
    }
  }
  total_weight_ = running;
  if (!(total_weight_ > 0.0)) topology_fatal("total edge weight is zero");
}

std::uint32_t BlockedTopology::community_of_agent(std::uint64_t agent) const {
  const auto it = std::upper_bound(offsets_.begin(), offsets_.end(), agent);
  return static_cast<std::uint32_t>(it - offsets_.begin()) - 1;
}

double BlockedTopology::pair_weight(std::uint32_t a, std::uint32_t b) const {
  const auto ma = static_cast<double>(sizes_[a]);
  const auto mb = static_cast<double>(sizes_[b]);
  return a == b ? intra_ * ma * (ma - 1.0) : inter_ * ma * mb;
}

std::pair<std::uint32_t, std::uint32_t> BlockedTopology::sample_pair(
    util::Rng& rng) const {
  const auto k = static_cast<std::uint32_t>(sizes_.size());
  if (k == 1) return {0, 0};
  // Inverse transform on the cumulative table.  u < cum_.back() strictly
  // (real() < 1 and total_weight_ == cum_.back()), and upper_bound skips
  // zero-weight pairs because their cumulative entry equals the previous.
  const double u = rng.real() * total_weight_;
  const auto it = std::upper_bound(cum_.begin(), cum_.end(), u);
  const auto idx = static_cast<std::size_t>(
      std::min(it - cum_.begin(),
               static_cast<std::ptrdiff_t>(cum_.size()) - 1));
  return {static_cast<std::uint32_t>(idx / k),
          static_cast<std::uint32_t>(idx % k)};
}

BlockedTopology BlockedTopology::complete(std::uint64_t n) {
  return BlockedTopology("complete", {n}, 1.0, 1.0);
}

BlockedTopology BlockedTopology::islands(std::uint64_t n, std::uint32_t k,
                                         double intra, double inter) {
  if (k == 0) topology_fatal("islands: K must be >= 1");
  if (n < k) topology_fatal("islands: need n >= K agents");
  return BlockedTopology("islands:" + std::to_string(k),
                         near_equal_split(n, k), intra, inter);
}

BlockedTopology BlockedTopology::multipartite(std::uint64_t n,
                                              std::uint32_t k) {
  if (k < 2) topology_fatal("multipartite: K must be >= 2");
  if (n < k) topology_fatal("multipartite: need n >= K agents");
  return BlockedTopology("multipartite:" + std::to_string(k),
                         near_equal_split(n, k), 0.0, 1.0);
}

}  // namespace ssle::pp
