#include "pp/graph.hpp"

#include <algorithm>
#include <numeric>

namespace ssle::pp {

void Graph::add_edge(std::uint32_t a, std::uint32_t b) {
  if (a == b || a >= n_ || b >= n_ || has_edge(a, b)) return;
  adjacency_[a].push_back(b);
  adjacency_[b].push_back(a);
  edge_list_.emplace_back(std::min(a, b), std::max(a, b));
}

bool Graph::has_edge(std::uint32_t a, std::uint32_t b) const {
  if (a >= n_ || b >= n_) return false;
  const auto& adj = adjacency_[a];
  return std::find(adj.begin(), adj.end(), b) != adj.end();
}

bool Graph::is_connected() const {
  if (n_ == 0) return true;
  std::vector<char> seen(n_, 0);
  std::vector<std::uint32_t> stack{0};
  seen[0] = 1;
  std::uint32_t visited = 1;
  while (!stack.empty()) {
    const std::uint32_t v = stack.back();
    stack.pop_back();
    for (const std::uint32_t w : adjacency_[v]) {
      if (!seen[w]) {
        seen[w] = 1;
        ++visited;
        stack.push_back(w);
      }
    }
  }
  return visited == n_;
}

std::uint32_t Graph::min_degree() const {
  std::uint32_t d = ~0u;
  for (std::uint32_t v = 0; v < n_; ++v) d = std::min(d, degree(v));
  return n_ == 0 ? 0 : d;
}

std::uint32_t Graph::max_degree() const {
  std::uint32_t d = 0;
  for (std::uint32_t v = 0; v < n_; ++v) d = std::max(d, degree(v));
  return d;
}

Graph Graph::complete(std::uint32_t n) {
  Graph g(n);
  for (std::uint32_t a = 0; a < n; ++a) {
    for (std::uint32_t b = a + 1; b < n; ++b) g.add_edge(a, b);
  }
  return g;
}

Graph Graph::cycle(std::uint32_t n) {
  Graph g(n);
  for (std::uint32_t v = 0; v < n; ++v) g.add_edge(v, (v + 1) % n);
  return g;
}

Graph Graph::path(std::uint32_t n) {
  Graph g(n);
  for (std::uint32_t v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  return g;
}

Graph Graph::star(std::uint32_t n) {
  Graph g(n);
  for (std::uint32_t v = 1; v < n; ++v) g.add_edge(0, v);
  return g;
}

Graph Graph::random_regular(std::uint32_t n, std::uint32_t d,
                            util::Rng& rng) {
  Graph g(n);
  // d/2 superposed random Hamilton cycles → connected, near-d-regular.
  const std::uint32_t cycles = std::max(1u, d / 2);
  std::vector<std::uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  for (std::uint32_t c = 0; c < cycles; ++c) {
    for (std::uint32_t i = n; i > 1; --i) {
      std::swap(perm[i - 1], perm[rng.below(i)]);
    }
    for (std::uint32_t i = 0; i < n; ++i) {
      g.add_edge(perm[i], perm[(i + 1) % n]);
    }
  }
  return g;
}

Graph Graph::erdos_renyi(std::uint32_t n, double p, util::Rng& rng) {
  for (int attempt = 0; attempt < 100; ++attempt) {
    Graph g(n);
    for (std::uint32_t a = 0; a < n; ++a) {
      for (std::uint32_t b = a + 1; b < n; ++b) {
        if (rng.real() < p) g.add_edge(a, b);
      }
    }
    if (g.is_connected()) return g;
  }
  // Sparse p on a tiny n may never connect; fall back to a cycle so the
  // caller always gets a usable graph.
  return cycle(n);
}

}  // namespace ssle::pp
