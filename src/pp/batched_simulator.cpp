#include "pp/batched_simulator.hpp"

#include <algorithm>
#include <cmath>

#include "pp/log_combinatorics.hpp"

namespace ssle::pp {

std::uint64_t sample_hypergeometric(util::Rng& rng, std::uint64_t total,
                                    std::uint64_t successes,
                                    std::uint64_t draws) {
  if (draws == 0 || successes == 0) return 0;
  if (successes == total) return draws;
  if (draws == total) return successes;

  // Support [lo, hi] of the pmf.
  const std::uint64_t lo =
      draws + successes > total ? draws + successes - total : 0;
  const std::uint64_t hi = std::min(draws, successes);
  if (lo == hi) return lo;

  // Inverse transform expanding outward from the mode, using the pmf
  // recurrence p(k+1)/p(k) = (K-k)(m-k) / ((k+1)(N-K-m+k+1)); expected
  // number of visited support points is O(standard deviation).
  const double N = static_cast<double>(total);
  const double K = static_cast<double>(successes);
  const double M = static_cast<double>(draws);
  std::uint64_t mode =
      static_cast<std::uint64_t>((M + 1.0) * (K + 1.0) / (N + 2.0));
  mode = std::clamp(mode, lo, hi);

  const double log_pmode = log_choose(successes, mode) +
                           log_choose(total - successes, draws - mode) -
                           log_choose(total, draws);
  double u = rng.real();
  const double p_mode = std::exp(log_pmode);
  u -= p_mode;
  if (u < 0.0) return mode;

  double p_up = p_mode;
  double p_down = p_mode;
  std::uint64_t k_up = mode;
  std::uint64_t k_down = mode;
  while (k_up < hi || k_down > lo) {
    if (k_up < hi) {
      const double k = static_cast<double>(k_up);
      p_up *= (K - k) * (M - k) / ((k + 1.0) * (N - K - M + k + 1.0));
      ++k_up;
      u -= p_up;
      if (u < 0.0) return k_up;
    }
    if (k_down > lo) {
      const double k = static_cast<double>(k_down);
      p_down *= k * (N - K - M + k) / ((K - k + 1.0) * (M - k + 1.0));
      --k_down;
      u -= p_down;
      if (u < 0.0) return k_down;
    }
  }
  // Floating-point residue (Σ pmf ≈ 1 - ε): u landed in the sliver of mass
  // the accumulated pmf failed to cover.  That sliver lives in the tails —
  // returning the mode here would transfer tail mass to the distribution's
  // peak, a bias that extreme-tail regimes (huge `total`, tiny `successes`,
  // exactly what the leap engine stresses) turn into a measurable skew.
  // Attribute the residue to the outermost *visited* support point on the
  // heavier side instead: both ends have been walked (k_up == hi,
  // k_down == lo) and their pmf already subtracted from u, so this
  // overweights that endpoint by O(double epsilon) — but the extra mass
  // stays in the tail where the residue belongs.  p_up / p_down hold the
  // last computed tail pmfs.
  return p_up >= p_down ? hi : lo;
}

void sample_multivariate_hypergeometric(
    util::Rng& rng, const std::vector<std::uint64_t>& counts,
    std::uint64_t draws, std::vector<std::uint64_t>& out) {
  out.assign(counts.size(), 0);
  std::uint64_t remaining_total = 0;
  for (const std::uint64_t c : counts) remaining_total += c;
  std::uint64_t remaining_draws = draws;
  for (std::size_t i = 0; i < counts.size() && remaining_draws > 0; ++i) {
    const std::uint64_t k = sample_hypergeometric(
        rng, remaining_total, counts[i], remaining_draws);
    out[i] = k;
    remaining_draws -= k;
    remaining_total -= counts[i];
  }
  return;
}

std::pair<bool, bool> pick_collision_sides(util::Rng& rng,
                                           std::uint64_t used_total,
                                           std::uint64_t unused_total) {
  const std::uint64_t w_uu = used_total * (used_total - 1);
  const std::uint64_t w_ux = used_total * unused_total;
  const std::uint64_t w_xu = unused_total * used_total;
  const std::uint64_t pick = rng.below(w_uu + w_ux + w_xu);
  const bool init_used = pick < w_uu + w_ux;
  const bool resp_used = pick < w_uu || pick >= w_uu + w_ux;
  return {init_used, resp_used};
}

}  // namespace ssle::pp
