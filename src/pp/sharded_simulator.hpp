// Sharded single-run engine: one giant run across all the cores.
//
// Every other engine in this repository gives ONE run to ONE core;
// analysis::parallel_sweep only parallelizes across trials.  For the paper's
// adversarial single-run regimes (recovery from a worst-case configuration
// at q ≈ n = 10^5+, where one trajectory takes minutes) that leaves the
// machine idle.  ShardedSimulator partitions the population into T disjoint
// shards — each a full CountsConfiguration with its own registry, Fenwick
// index, δ-cache and RNG streams — and advances the SAME collision-free
// birthday blocks as BatchedSimulator, with the per-block work fanned out
// over a persistent util::ThreadPool:
//
//   phase 0 (serial)    Draw the block length L from the shared
//                       BlockLengthSampler (the union's first-collision
//                       law), then the shard label of each of the 2L slots
//                       by sequential without-replacement draws over the
//                       shards' remaining populations — the exact
//                       multivariate-hypergeometric chain rule.  Slots
//                       pair up as interactions; each shard receives a
//                       script of its ops in slot order (intra-shard
//                       interaction, or "draw one side of cross pair #c").
//   phase A (parallel)  Each shard settles the previous block's parked
//                       outputs, then runs its script: agents are drawn
//                       uniformly without replacement from the shard's own
//                       counts (flat scan when the shard registry is
//                       narrow, Fenwick descent otherwise — the two are
//                       stream-identical, so the choice never changes the
//                       trajectory); intra-shard δs apply immediately with
//                       outputs parked in the shard's used multiset;
//                       cross-pair draws record the drawn class id.
//   phase B (parallel)  Cross-pair δs.  Under uniform pairing a fraction
//                       1 - 1/T of interactions cross shards — the
//                       MAJORITY for T ≥ 2 — so resolving them serially
//                       would forfeit the speedup to Amdahl's law.  The
//                       pairs are split into T fixed index chunks (fixed →
//                       the chunk→rng binding is hardware-independent),
//                       each chunk running δ into the pair's own slots.
//   phase C (parallel)  Each shard re-interns its cross outputs (registry
//                       writes are shard-local) and parks them used.
//   phase D (serial)    The colliding interaction, when the block ends in
//                       one: sides via the shared pick_collision_sides,
//                       participants drawn from the UNION used/unused
//                       pools (walk shard totals, then within-shard), δ on
//                       the engine's collision stream, outputs returned.
//   phase E (deferred)  Parked outputs merge back into shard counts at the
//                       START of the next block's phase A (saving one pool
//                       dispatch per block); settle_all() runs the merge
//                       serially before any probe or config read.
//
// Exactness: conditioned on the labels, the slot agents are uniform
// without replacement within each shard, independently across shards
// (exchangeability), and parked outputs are not redrawable — so a block
// realizes exactly the batched engine's conditional in-block law, and
// blocks remain stopping times of the counts chain.  The engine is
// statistically indistinguishable from every other engine for ANY T
// (tests/test_sharded_simulator.cpp, TV law vs naive), and per-seed
// deterministic for any T on any hardware: every phase's randomness comes
// from per-shard / per-chunk streams split off the run seed
// (util::Rng::split), and chunk boundaries depend only on T.  Different T
// give different (equally exact) trajectories; T = 1 delegates to a real
// BatchedSimulator and is BIT-IDENTICAL to --engine=batched on the same
// seed.
//
// What sharding does NOT give you: per-shard δ-caches cannot memoize
// cross-pair transitions (the two sides live in different registries, and
// id-pair keys are only meaningful within one), so deterministic-δ
// protocols pay a δ evaluation + two hashed re-interns per cross pair
// where the batched engine would hit its cache.  Dense small-q workloads
// (memoized epidemics) should stay on --engine=batched: the bulk pair-type
// path there is orders of magnitude ahead of anything per-agent.  Sharding
// pays off when single-run wall-clock is dominated by per-draw work at
// large q — the Fenwick-floor regime.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "pp/batched_simulator.hpp"
#include "pp/counts.hpp"
#include "pp/delta_cache.hpp"
#include "pp/protocol.hpp"
#include "pp/simulator.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace ssle::pp {

/// Default shard count T when the caller passes 0: the machine's
/// concurrency, clamped to [1, 8] (beyond ~8 shards the serial label walk
/// and per-block dispatch overhead outgrow the per-shard win).
std::size_t default_shard_count();

template <Protocol P>
class ShardedSimulator {
 public:
  using State = typename P::State;
  using Config = CountsConfiguration<P>;
  using Predicate =
      std::function<bool(const Config&, std::uint64_t /*interactions*/)>;

  /// `shard_count` = 0 picks default_shard_count().  `sampling` pins the
  /// per-shard draw machinery: kFlat / kFenwick force one path in every
  /// shard (stream-identical, for tests); kAuto (and kDense, which has no
  /// sharded analogue) picks per shard by registry width.
  ShardedSimulator(const P& protocol, Config config, std::uint64_t seed,
                   std::size_t shard_count = 0,
                   BlockSampling sampling = BlockSampling::kAuto,
                   DeltaMemo memo = DeltaMemo::kEnabled)
      : protocol_(protocol),
        sampling_(sampling),
        memo_(memo),
        n_(config.population_size()),
        rng_(util::substream(seed, 1)),
        collision_agent_rng_(util::substream(seed, 2)) {
    std::size_t T = shard_count == 0 ? default_shard_count() : shard_count;
    if (T < 1) T = 1;
    if (T == 1) {
      // One shard is the batched engine, exactly: same seed, same
      // substreams, same block machinery — bit-identical trajectories.
      inner_.emplace(protocol_, std::move(config), seed, sampling, memo);
      return;
    }
    shards_.resize(T);
    chunks_.resize(T);
    util::Rng stream_root(util::substream(seed, 3));
    for (std::size_t j = 0; j < T; ++j) {
      shards_[j].rng = stream_root.split(2 * j);
      shards_[j].agent_rng = stream_root.split(2 * j + 1);
      chunks_[j].rng = stream_root.split(2 * T + j);
    }
    // Partition the initial counts: each class splits as evenly as
    // possible, remainders rotating across shards so no shard
    // systematically outweighs the rest.  ANY deterministic partition is
    // exact — the tracked law is the union counts process, and agents are
    // exchangeable — the split only affects load balance.
    const std::uint32_t q = config.num_states();
    for (std::uint32_t idx = 0; idx < q; ++idx) {
      const std::uint64_t c = config.count(idx);
      if (c == 0) continue;
      const std::uint64_t base = c / T;
      const std::uint64_t rem = c % T;
      for (std::size_t j = 0; j < T; ++j) {
        const std::uint64_t share = base + ((j + idx) % T < rem ? 1 : 0);
        if (share > 0) shards_[j].config.add(config.state(idx), share);
      }
    }
    shard_pop_.resize(T);
    for (std::size_t j = 0; j < T; ++j) {
      shard_pop_[j] = shards_[j].config.population_size();
    }
    remaining_.resize(T);
    pool_.emplace(T - 1);  // the calling thread is the T-th executor
  }

  ShardedSimulator(const P& protocol, std::uint64_t seed,
                   std::size_t shard_count = 0,
                   BlockSampling sampling = BlockSampling::kAuto,
                   DeltaMemo memo = DeltaMemo::kEnabled)
      : ShardedSimulator(protocol, Config(protocol), seed, shard_count,
                         sampling, memo) {}

  /// Executes exactly `count` interactions (same contract as the batched
  /// engine: n < 2 counts no-op steps).
  void step(std::uint64_t count = 1) {
    if (inner_) {
      inner_->step(count);
      return;
    }
    if (n_ < 2) {
      interactions_ += count;
      return;
    }
    std::uint64_t done = 0;
    while (done < count) done += run_block(count - done);
    interactions_ += count;
  }

  /// Same contract as BatchedSimulator::run_until.  Probes observe the
  /// settled merged configuration (an O(Σ q_j) rebuild per probe — cheap
  /// against the Θ(n) interactions a probe interval covers).
  RunResult run_until(const Predicate& done, std::uint64_t max_interactions,
                      std::uint64_t probe_every = 0) {
    if (inner_) return inner_->run_until(done, max_interactions, probe_every);
    if (probe_every == 0) probe_every = std::max<std::uint64_t>(1, n_);
    if (done(config(), interactions_)) return {interactions_, true};
    const std::uint64_t limit = interactions_ + max_interactions;
    while (interactions_ < limit) {
      const std::uint64_t chunk =
          std::min<std::uint64_t>(probe_every, limit - interactions_);
      step(chunk);
      if (done(config(), interactions_)) return {interactions_, true};
    }
    return {interactions_, false};
  }

  std::uint64_t interactions() const {
    return inner_ ? inner_->interactions() : interactions_;
  }
  const P& protocol() const { return protocol_; }
  std::size_t shard_count() const { return inner_ ? 1 : shards_.size(); }

  /// The merged (whole-population) configuration: parked outputs settled,
  /// shard counts summed into one registry.  Rebuilt on demand; the
  /// reference stays valid until the next step()/config() call.
  const Config& config() {
    if (inner_) return inner_->config();
    settle_all();
    merged_.emplace(std::vector<State>{});
    for (Shard& sh : shards_) {
      sh.config.for_each(
          [&](const State& s, std::uint64_t c) { merged_->add(s, c); });
    }
    return *merged_;
  }

  /// Engine-level snapshot.  Registry / δ-cache / block counters are the
  /// merge (obs::EngineMetrics::merge) of the per-shard snapshots;
  /// interaction accounting is engine-level, satisfying
  ///   intra_shard_interactions + cross_shard_interactions +
  ///   collision_resolutions == interactions  (n ≥ 2), and
  ///   intra_shard_interactions == Σ_j shard_metrics(j).interactions.
  obs::EngineMetrics metrics() const {
    if (inner_) {
      obs::EngineMetrics m = inner_->metrics();
      m.engine = "sharded";
      m.shards = 1;
      m.intra_shard_interactions = m.interactions - m.collision_resolutions;
      return m;
    }
    obs::EngineMetrics m;
    std::uint64_t intra = 0;
    for (std::size_t j = 0; j < shards_.size(); ++j) {
      m += shard_metrics(j);
      intra += shards_[j].intra;
    }
    m.engine = "sharded";
    m.population = n_;
    m.shards = shards_.size();
    m.interactions = interactions_;
    m.interactions_iterated = interactions_;
    m.intra_shard_interactions = intra;
    m.cross_shard_interactions = cross_total_;
    m.collision_resolutions = collisions_;
    return m;
  }

  /// One shard's own snapshot (T ≥ 2 only): `interactions` counts the
  /// intra-shard interactions it resolved, the registry/cache/block fields
  /// are its private machinery.  Feeds the engine-level merge and the
  /// reconciliation tests.
  obs::EngineMetrics shard_metrics(std::size_t j) const {
    assert(!inner_ && j < shards_.size());
    const Shard& sh = shards_[j];
    obs::EngineMetrics m;
    m.engine = "shard";
    m.interactions = sh.intra;
    m.interactions_iterated = sh.intra;
    m.blocks_fenwick = sh.fenwick_blocks;
    m.blocks_flat = sh.flat_blocks;
    m.flat_scan_draws = sh.flat_draws;
    m.fenwick_point_updates = sh.config.fenwick_updates();
    m.fenwick_samples = sh.config.fenwick_samples();
    m.registry_live_states = sh.config.num_live_states();
    m.registry_allocated_states = sh.config.num_allocated_states();
    m.registry_capacity = sh.config.num_states();
    m.registry_compactions = sh.config.compactions();
    m.registry_version = sh.config.registry_version();
    m.delta_cache_hits = sh.cache_hits;
    m.delta_cache_misses = sh.cache_misses;
    m.delta_cache_clears = sh.cache_clears;
    m.delta_cache_entries = sh.cache.size();
    return m;
  }

  /// Total colliding interactions resolved (engine stream, phase D).
  std::uint64_t collision_resolutions() const {
    return inner_ ? inner_->collision_resolutions() : collisions_;
  }
  /// Total cross-shard interactions resolved (phases B + C).
  std::uint64_t cross_shard_interactions() const {
    return inner_ ? 0 : cross_total_;
  }

  // --- checkpoint/resume support (obs/checkpoint.hpp) --------------------
  // The batched engine's canonicalize-then-serialize discipline (see
  // pp/batched_simulator.hpp), applied per shard: each shard's registry is
  // rebuilt dense, each shard's RNG pair and each chunk's δ stream is
  // saved, and a restorer that re-adds every shard's (state, count) list in
  // order reconstructs bit-identical engine state.  Stream order for
  // rng_states():
  //   T = 1: delegates to the inner batched engine ([rng, agent_rng]);
  //   T ≥ 2: [engine rng_, collision_agent_rng_,
  //           shard_0.rng, shard_0.agent_rng, …, shard_{T-1}.agent_rng,
  //           chunk_0.rng, …, chunk_{T-1}.rng]   (2 + 3T entries).

  /// Settles parked outputs and rebuilds every shard registry into dense-id
  /// form, dropping id-keyed caches.  The continuation runs from exactly
  /// the form the checkpoint serializes.
  void canonicalize() {
    if (inner_) {
      inner_->canonicalize();
      return;
    }
    settle_all();
    for (Shard& sh : shards_) {
      Config fresh{std::vector<State>{}};
      sh.config.for_each(
          [&](const State& s, std::uint64_t c) { fresh.add(s, c); });
      sh.config = std::move(fresh);
      sh.cache.clear();
      sh.used.assign(sh.config.num_states(), 0);
      sh.flat_drawn.assign(sh.config.num_states(), 0);
      sh.touched.clear();
    }
    merged_.reset();
  }

  std::vector<std::array<std::uint64_t, 4>> rng_states() const {
    if (inner_) return inner_->rng_states();
    std::vector<std::array<std::uint64_t, 4>> out;
    out.reserve(2 + 3 * shards_.size());
    out.push_back(rng_.state());
    out.push_back(collision_agent_rng_.state());
    for (const Shard& sh : shards_) {
      out.push_back(sh.rng.state());
      out.push_back(sh.agent_rng.state());
    }
    for (const ChunkCtx& cx : chunks_) out.push_back(cx.rng.state());
    return out;
  }

  bool set_rng_states(
      const std::vector<std::array<std::uint64_t, 4>>& states) {
    if (inner_) return inner_->set_rng_states(states);
    const std::size_t T = shards_.size();
    if (states.size() != 2 + 3 * T) return false;
    rng_.set_state(states[0]);
    collision_agent_rng_.set_state(states[1]);
    for (std::size_t j = 0; j < T; ++j) {
      shards_[j].rng.set_state(states[2 + 2 * j]);
      shards_[j].agent_rng.set_state(states[2 + 2 * j + 1]);
    }
    for (std::size_t j = 0; j < T; ++j) {
      chunks_[j].rng.set_state(states[2 + 2 * T + j]);
    }
    return true;
  }

  void set_interactions(std::uint64_t t) {
    if (inner_) {
      inner_->set_interactions(t);
      return;
    }
    interactions_ = t;
  }

  /// Settled registry of shard j, for the checkpoint writer (canonicalize()
  /// first, so the view is dense and parked outputs are merged).
  const Config& shard_config(std::size_t j) {
    if (inner_) {
      assert(j == 0);
      return inner_->config();
    }
    settle_shard(shards_[j]);
    return shards_[j].config;
  }

  /// Installs restored per-shard registries (one per shard, in the order
  /// shard_config() serialized them); false on shard-count mismatch.
  /// Follow with set_rng_states/set_interactions to finish the restore.
  bool restore_shard_configs(std::vector<Config> configs) {
    if (inner_) {
      if (configs.size() != 1) return false;
      inner_->config() = std::move(configs[0]);
      inner_->canonicalize();  // idempotent on a canonical registry; sizes
                               // the block scratch to the new registry
      return true;
    }
    if (configs.size() != shards_.size()) return false;
    n_ = 0;
    for (std::size_t j = 0; j < shards_.size(); ++j) {
      Shard& sh = shards_[j];
      sh.config = std::move(configs[j]);
      sh.cache.clear();
      sh.used.assign(sh.config.num_states(), 0);
      sh.flat_drawn.assign(sh.config.num_states(), 0);
      sh.touched.clear();
      sh.used_total = 0;
      sh.merge_pending = false;
      shard_pop_[j] = sh.config.population_size();
      n_ += shard_pop_[j];
    }
    merged_.reset();
    return true;
  }

 private:
  /// One cross-shard interaction: input class ids recorded by each side's
  /// shard in phase A, output states written by a phase-B chunk, re-interned
  /// by the owning shards in phase C.  Entries persist across blocks so the
  /// output states' heap buffers are reused.
  struct CrossPair {
    std::uint32_t shard_a = 0, shard_b = 0;
    std::uint32_t a_id = 0, b_id = 0;
    std::optional<State> out_a, out_b;
  };

  /// One shard: a private CountsConfiguration plus everything the batched
  /// engine keeps per run — scheduler/agent RNG streams, δ-cache, parked-
  /// output multiset, flat-sampler scratch.  All mutable state is touched
  /// by exactly one pool worker per phase (phases index shards), so the
  /// struct needs no synchronization.
  struct Shard {
    Config config{std::vector<State>{}};
    util::Rng rng{0};        ///< scheduler draws (split off the run seed)
    util::Rng agent_rng{0};  ///< intra-shard δ randomness
    DeltaCache cache;        ///< intra-shard (id, id) memo; never cross
    std::uint64_t cache_hits = 0, cache_misses = 0, cache_clears = 0;
    std::uint64_t intra = 0;        ///< intra-shard interactions resolved
    std::uint64_t fenwick_blocks = 0, flat_blocks = 0, flat_draws = 0;

    // Block-scoped (phase A/C): the op script in slot order (kIntraOp, or
    // cross-pair slot code 2c | side), the without-replacement draw
    // budget, and the flat snapshot when this block runs the flat sampler.
    std::vector<std::int64_t> script;
    std::uint64_t remaining = 0;
    bool flat_mode = false;
    std::vector<std::uint64_t> flat_counts, flat_drawn;

    // Parked outputs (the shard's slice of the block's used multiset),
    // merged back into config at the next phase A / settle_all.
    std::vector<std::uint64_t> used;
    std::vector<std::uint32_t> touched;
    std::uint64_t used_total = 0;
    bool merge_pending = false;

    // Persistent δ scratch (State need not be default-constructible).
    std::optional<State> scratch_a, scratch_b;
  };

  /// One phase-B executor: a fixed chunk index w owns cross pairs
  /// [w·C/T, (w+1)·C/T) every block, with its own δ stream and scratch —
  /// the binding depends only on T, never on thread scheduling, which is
  /// what makes sharded runs deterministic on any hardware.
  struct ChunkCtx {
    util::Rng rng{0};
    std::optional<State> scratch_a, scratch_b;
  };

  static constexpr std::int64_t kIntraOp = -1;

  static State& assign_scratch(std::optional<State>& slot, const State& src) {
    if (slot.has_value()) {
      *slot = src;
    } else {
      slot.emplace(src);
    }
    return *slot;
  }

  /// Runs one block of at most `cap` interactions; returns how many ran.
  std::uint64_t run_block(std::uint64_t cap) {
    if (!block_length_.ready_for(n_)) block_length_.build(n_);
    const auto [L, collided] = block_length_.draw(rng_, cap);

    // Phase 0: shard labels for the 2L slots.  Sequential without-
    // replacement draws over the remaining shard populations — the chain
    // rule of the multivariate hypergeometric, so the label vector has
    // exactly the law of "which shard does each of 2L uniformly-drawn
    // distinct agents belong to".  Slot t's draw is below(n - t), walked
    // against the ≤ T remaining counts.
    const std::size_t T = shards_.size();
    for (std::size_t j = 0; j < T; ++j) {
      remaining_[j] = shard_pop_[j];
      shards_[j].script.clear();
    }
    std::uint64_t total_rem = n_;
    cross_n_ = 0;
    std::uint32_t lab_a = 0;
    for (std::uint64_t t = 0; t < 2 * L; ++t) {
      std::uint64_t pos = rng_.below(total_rem);
      std::uint32_t lab = static_cast<std::uint32_t>(T) - 1;
      for (std::size_t j = 0; j < T; ++j) {
        if (pos < remaining_[j]) {
          lab = static_cast<std::uint32_t>(j);
          break;
        }
        pos -= remaining_[j];
      }
      --remaining_[lab];
      --total_rem;
      if ((t & 1) == 0) {
        lab_a = lab;
        continue;
      }
      // Slot pair (t-1, t) is one interaction: initiator from lab_a,
      // responder from lab.
      if (lab_a == lab) {
        shards_[lab].script.push_back(kIntraOp);
      } else {
        if (cross_n_ == cross_.size()) cross_.emplace_back();
        CrossPair& cp = cross_[cross_n_];
        cp.shard_a = lab_a;
        cp.shard_b = lab;
        shards_[lab_a].script.push_back(
            static_cast<std::int64_t>(2 * cross_n_));
        shards_[lab].script.push_back(
            static_cast<std::int64_t>(2 * cross_n_ + 1));
        ++cross_n_;
      }
    }

    // Phase A: per-shard settle + draws + intra δs (parallel over shards).
    pool_->run_indexed(T, [this](std::size_t j) { phase_a(shards_[j]); });

    if (cross_n_ > 0) {
      // Phase B: cross δs, T fixed chunks (parallel over chunks).
      pool_->run_indexed(T, [this](std::size_t w) { phase_b(w); });
      // Phase C: re-intern cross outputs (parallel over shards).
      pool_->run_indexed(T, [this](std::size_t j) { phase_c(shards_[j]); });
      cross_total_ += cross_n_;
    }

    if (collided) phase_d(L);

    // Phase E is deferred: parked outputs merge at the next block's
    // phase A (or settle_all before a probe).
    for (Shard& sh : shards_) sh.merge_pending = true;
    return L + (collided ? 1 : 0);
  }

  /// Phase A body for one shard (one pool worker).
  void phase_a(Shard& sh) {
    settle_shard(sh);
    if (sh.config.should_compact()) {
      sh.config.compact();
      if (sh.used.size() > sh.config.num_states()) {
        sh.used.resize(sh.config.num_states());
      }
      if (sh.flat_drawn.size() > sh.config.num_states()) {
        sh.flat_drawn.resize(sh.config.num_states());
      }
      if constexpr (kDeterministicDelta<P>) {
        sh.cache.clear();
        ++sh.cache_clears;
      }
    }
    if (sh.script.empty()) return;

    const std::uint32_t q = sh.config.num_states();
    sh.remaining = sh.config.population_size();
    // Flat vs Fenwick per-draw machinery: stream-identical, so this is a
    // pure speed choice (see BlockSampling / kFlatMaxStates).
    sh.flat_mode = sampling_ == BlockSampling::kFlat ||
                   (sampling_ != BlockSampling::kFenwick &&
                    q <= kFlatMaxStates);
    if (sh.flat_mode) {
      ++sh.flat_blocks;
      sh.flat_counts.assign(sh.config.counts().begin(),
                            sh.config.counts().end());
      if (sh.flat_drawn.size() < q) sh.flat_drawn.resize(q, 0);
    } else {
      ++sh.fenwick_blocks;
    }

    for (const std::int64_t op : sh.script) {
      if (op == kIntraOp) {
        const std::uint32_t ia = shard_draw(sh);
        const std::uint32_t ib = shard_draw(sh);
        apply_intra(sh, ia, ib);
        ++sh.intra;
      } else {
        CrossPair& cp = cross_[static_cast<std::size_t>(op >> 1)];
        const std::uint32_t id = shard_draw(sh);
        if ((op & 1) != 0) {
          cp.b_id = id;
        } else {
          cp.a_id = id;
        }
      }
    }

    if (sh.flat_mode) {
      // Settle the flat draws now: phase D's union-pool walk reads shard
      // configs as "the unused multiset", so removals cannot stay
      // snapshot-only past this phase.
      for (std::uint32_t i = 0; i < q; ++i) {
        if (sh.flat_drawn[i] > 0) {
          sh.config.remove_at(i, sh.flat_drawn[i]);
          sh.flat_drawn[i] = 0;
        }
      }
    }
  }

  /// One without-replacement agent draw from the shard (phase A): the
  /// uniform position resolves through the flat snapshot or the Fenwick
  /// descent — identical class either way.
  std::uint32_t shard_draw(Shard& sh) {
    const std::uint64_t pos = sh.rng.below(sh.remaining);
    --sh.remaining;
    if (sh.flat_mode) {
      std::uint32_t idx = 0;
      std::uint64_t cum = 0;
      for (const std::uint64_t c : sh.flat_counts) {
        cum += c;
        idx += static_cast<std::uint32_t>(cum <= pos);
      }
      sh.flat_counts[idx] -= 1;
      sh.flat_drawn[idx] += 1;
      ++sh.flat_draws;
      return idx;
    }
    const std::uint32_t idx = sh.config.sample_class(pos);
    sh.config.remove_at(idx, 1);
    return idx;
  }

  /// One intra-shard interaction: δ through the shard's cache / scratch,
  /// outputs parked in the shard's used multiset.
  void apply_intra(Shard& sh, std::uint32_t ia, std::uint32_t ib) {
    if constexpr (kDeterministicDelta<P>) {
      std::uint32_t oa, ob;
      if (memo_ == DeltaMemo::kEnabled) {
        const std::uint64_t key = DeltaCache::pack(ia, ib);
        std::uint64_t val;
        if (sh.cache.lookup(key, val)) {
          ++sh.cache_hits;
          std::tie(oa, ob) = DeltaCache::unpack(val);
        } else {
          ++sh.cache_misses;
          std::tie(oa, ob) = shard_delta(sh, ia, ib);
          sh.cache.insert(key, DeltaCache::pack(oa, ob));
        }
      } else {
        std::tie(oa, ob) = shard_delta(sh, ia, ib);
      }
      record_used(sh, oa);
      record_used(sh, ob);
    } else {
      State& sa = assign_scratch(sh.scratch_a, sh.config.state(ia));
      State& sb = assign_scratch(sh.scratch_b, sh.config.state(ib));
      protocol_.interact(sa, sb, sh.agent_rng);
      record_used(sh, sh.config.index_near(sa, ia));
      record_used(sh, sh.config.index_near(sb, ib));
    }
  }

  std::pair<std::uint32_t, std::uint32_t> shard_delta(Shard& sh,
                                                      std::uint32_t ia,
                                                      std::uint32_t ib) {
    State& sa = assign_scratch(sh.scratch_a, sh.config.state(ia));
    State& sb = assign_scratch(sh.scratch_b, sh.config.state(ib));
    protocol_.interact(sa, sb, sh.agent_rng);
    return {sh.config.index_near(sa, ia), sh.config.index_near(sb, ib)};
  }

  void record_used(Shard& sh, std::uint32_t idx) {
    if (sh.used.size() <= idx) sh.used.resize(idx + 1, 0);
    if (sh.used[idx] == 0) sh.touched.push_back(idx);
    sh.used[idx] += 1;
    sh.used_total += 1;
  }

  /// Phase B body for chunk w: δ over this chunk's cross pairs.  Reads
  /// (only) the two shards' registries; writes (only) the pair's own
  /// output slots — no synchronization needed.
  void phase_b(std::size_t w) {
    const std::size_t T = shards_.size();
    ChunkCtx& cx = chunks_[w];
    const std::size_t lo = w * cross_n_ / T;
    const std::size_t hi = (w + 1) * cross_n_ / T;
    for (std::size_t i = lo; i < hi; ++i) {
      CrossPair& cp = cross_[i];
      State& sa =
          assign_scratch(cx.scratch_a, shards_[cp.shard_a].config.state(cp.a_id));
      State& sb =
          assign_scratch(cx.scratch_b, shards_[cp.shard_b].config.state(cp.b_id));
      protocol_.interact(sa, sb, cx.rng);
      assign_scratch(cp.out_a, sa);
      assign_scratch(cp.out_b, sb);
    }
  }

  /// Phase C body for one shard: re-intern this shard's cross outputs (in
  /// slot order) and park them in the used multiset.
  void phase_c(Shard& sh) {
    for (const std::int64_t op : sh.script) {
      if (op == kIntraOp) continue;
      const CrossPair& cp = cross_[static_cast<std::size_t>(op >> 1)];
      const bool side_b = (op & 1) != 0;
      const State& out = side_b ? *cp.out_b : *cp.out_a;
      const std::uint32_t hint = side_b ? cp.b_id : cp.a_id;
      record_used(sh, sh.config.index_near(out, hint));
    }
  }

  /// Phase D: the colliding interaction over the union pools.  At this
  /// point Σ_j shard used multisets hold exactly the 2L parked outputs and
  /// Σ_j shard configs exactly the n - 2L undrawn agents, so walking shard
  /// totals then drawing within the shard realizes a uniform draw from
  /// either union pool — the batched engine's conditional law verbatim.
  void phase_d(std::uint64_t L) {
    const std::uint64_t used_total = 2 * L;
    const std::uint64_t unused_total = n_ - used_total;
    const auto [init_used, resp_used] =
        pick_collision_sides(rng_, used_total, unused_total);

    std::pair<std::size_t, std::uint32_t> a, b;
    if (init_used) {
      a = draw_union_used(used_total);
      if (resp_used) {
        // Same pool: without replacement.
        Shard& sha = shards_[a.first];
        sha.used[a.second] -= 1;
        sha.used_total -= 1;
        b = draw_union_used(used_total - 1);
        sha.used[a.second] += 1;
        sha.used_total += 1;
      } else {
        b = draw_union_unused(unused_total);
      }
    } else {
      a = draw_union_unused(unused_total);
      b = draw_union_used(used_total);
    }

    consume(a, init_used);
    consume(b, resp_used);

    State& sa =
        assign_scratch(collision_a_, shards_[a.first].config.state(a.second));
    State& sb =
        assign_scratch(collision_b_, shards_[b.first].config.state(b.second));
    protocol_.interact(sa, sb, collision_agent_rng_);
    // The block ends here: outputs return straight to their shards' counts.
    Shard& sha = shards_[a.first];
    sha.config.add_at(sha.config.index_near(sa, a.second), 1);
    Shard& shb = shards_[b.first];
    shb.config.add_at(shb.config.index_near(sb, b.second), 1);
    ++collisions_;
  }

  std::pair<std::size_t, std::uint32_t> draw_union_used(std::uint64_t total) {
    std::uint64_t pos = rng_.below(total);
    for (std::size_t j = 0; j < shards_.size(); ++j) {
      Shard& sh = shards_[j];
      if (pos < sh.used_total) {
        for (const std::uint32_t idx : sh.touched) {
          if (pos < sh.used[idx]) return {j, idx};
          pos -= sh.used[idx];
        }
      }
      pos -= sh.used_total;
    }
    assert(false && "union used draw out of range");
    return {0, 0};
  }

  std::pair<std::size_t, std::uint32_t> draw_union_unused(
      std::uint64_t total) {
    std::uint64_t pos = rng_.below(total);
    for (std::size_t j = 0; j < shards_.size(); ++j) {
      Shard& sh = shards_[j];
      const std::uint64_t size = sh.config.population_size();
      if (pos < size) return {j, sh.config.sample_class(pos)};
      pos -= size;
    }
    assert(false && "union unused draw out of range");
    return {0, 0};
  }

  void consume(std::pair<std::size_t, std::uint32_t> pick, bool from_used) {
    Shard& sh = shards_[pick.first];
    if (from_used) {
      sh.used[pick.second] -= 1;
      sh.used_total -= 1;
    } else {
      sh.config.remove_at(pick.second, 1);
    }
  }

  /// Phase E / pre-probe: merge one shard's parked outputs back into its
  /// counts.  Idempotent — touched/used are cleared, so a second call (the
  /// next phase A after a settle_all) is a no-op.
  void settle_shard(Shard& sh) {
    if (!sh.merge_pending) return;
    for (const std::uint32_t idx : sh.touched) {
      if (sh.used[idx] > 0) sh.config.add_at(idx, sh.used[idx]);
      sh.used[idx] = 0;
    }
    sh.touched.clear();
    sh.used_total = 0;
    sh.merge_pending = false;
  }

  void settle_all() {
    for (Shard& sh : shards_) settle_shard(sh);
  }

  P protocol_;
  BlockSampling sampling_ = BlockSampling::kAuto;
  DeltaMemo memo_ = DeltaMemo::kEnabled;
  std::uint64_t n_ = 0;
  util::Rng rng_;                  ///< engine stream: blocks, labels, collisions
  util::Rng collision_agent_rng_;  ///< phase-D δ randomness
  std::optional<BatchedSimulator<P>> inner_;  ///< T = 1 delegation

  std::vector<Shard> shards_;
  std::vector<ChunkCtx> chunks_;
  std::vector<std::uint64_t> shard_pop_;  ///< fixed shard sizes n_j
  std::vector<std::uint64_t> remaining_;  ///< phase-0 label-draw scratch
  std::optional<util::ThreadPool> pool_;

  BlockLengthSampler block_length_;  ///< union first-collision law
  std::vector<CrossPair> cross_;     ///< persistent cross-pair slots
  std::size_t cross_n_ = 0;          ///< pairs live this block

  std::uint64_t interactions_ = 0;
  std::uint64_t cross_total_ = 0;
  std::uint64_t collisions_ = 0;

  std::optional<State> collision_a_, collision_b_;  ///< phase-D δ scratch
  std::optional<Config> merged_;  ///< probe view, rebuilt by config()
};

}  // namespace ssle::pp
