// Protocol concept for the simulation engine.
//
// A population protocol supplies:
//   * `using State = ...`               — the per-agent state type,
//   * `State initial_state(agent) const` — the clean initial state,
//   * `void interact(State& initiator, State& responder, util::Rng&) const`
//                                        — the transition function δ.
//
// The transition function may consume randomness (the paper assumes agents
// can sample almost-u.a.r. values; Appendix B shows how to derandomize,
// which we implement separately in core/synthetic_coin).
#pragma once

#include <concepts>
#include <cstdint>

#include "util/rng.hpp"

namespace ssle::pp {

template <typename P>
concept Protocol = requires(const P& p, typename P::State& s,
                            typename P::State& t, util::Rng& rng,
                            std::uint32_t agent) {
  { p.initial_state(agent) } -> std::same_as<typename P::State>;
  { p.interact(s, t, rng) };
  { p.population_size() } -> std::convertible_to<std::uint32_t>;
};

/// True when P declares its transition function deterministic — δ is a pure
/// function (State × State) → (State × State) that never draws from the
/// engine Rng — by defining `static constexpr bool kDeterministicInteract
/// = true`.  The batched engine then (a) applies one transition result to
/// a whole block of same-type pairs and (b) memoizes transitions as an
/// (id, id) → (id, id) lookup over interned class ids, skipping the δ call,
/// both state copies and both hashes on the hot path.  Declaring this on a
/// protocol whose δ *does* draw from the Rng silently biases results.
template <typename P>
inline constexpr bool kDeterministicDelta = [] {
  if constexpr (requires {
                  { P::kDeterministicInteract } -> std::convertible_to<bool>;
                }) {
    return static_cast<bool>(P::kDeterministicInteract);
  } else {
    return false;
  }
}();

/// Concept form of the opt-in, for overload gating.
template <typename P>
concept DeterministicDelta = Protocol<P> && kDeterministicDelta<P>;

/// True when P declares its reachable state space narrow — the set of
/// distinct states reachable (under δ) from any initial configuration is
/// bounded by a small q independent of n — by defining
/// `static constexpr bool kNarrowRegistry = true`.  The leap engine
/// (pp/leaping_simulator.hpp) precomputes the full q × q pair-type table by
/// closure over δ, so it requires this bound to hold: protocols whose
/// registry grows with n (ranks, identifiers, q ≈ n random starts) must
/// not declare it — their closure would not terminate in bounded space,
/// and pair-type leaping cannot pay there anyway (almost every pair type
/// is live, so there are no long null runs to jump).
template <typename P>
inline constexpr bool kNarrowRegistry = [] {
  if constexpr (requires {
                  { P::kNarrowRegistry } -> std::convertible_to<bool>;
                }) {
    return static_cast<bool>(P::kNarrowRegistry);
  } else {
    return false;
  }
}();

/// Leap eligibility: deterministic δ (pair types have fixed outputs, so a
/// pair type is durably "null" or "active") AND a narrow registry (the
/// O(q²) pair-type table is affordable and closes).  The leap engine
/// static_asserts this; `analysis::stabilize(Engine::kLeaping, …)` routes
/// ineligible protocols to the batched engine instead.
template <typename P>
concept LeapEligible = DeterministicDelta<P> && kNarrowRegistry<P>;

}  // namespace ssle::pp
