// Protocol concept for the simulation engine.
//
// A population protocol supplies:
//   * `using State = ...`               — the per-agent state type,
//   * `State initial_state(agent) const` — the clean initial state,
//   * `void interact(State& initiator, State& responder, util::Rng&) const`
//                                        — the transition function δ.
//
// The transition function may consume randomness (the paper assumes agents
// can sample almost-u.a.r. values; Appendix B shows how to derandomize,
// which we implement separately in core/synthetic_coin).
#pragma once

#include <concepts>
#include <cstdint>

#include "util/rng.hpp"

namespace ssle::pp {

template <typename P>
concept Protocol = requires(const P& p, typename P::State& s,
                            typename P::State& t, util::Rng& rng,
                            std::uint32_t agent) {
  { p.initial_state(agent) } -> std::same_as<typename P::State>;
  { p.interact(s, t, rng) };
  { p.population_size() } -> std::convertible_to<std::uint32_t>;
};

}  // namespace ssle::pp
