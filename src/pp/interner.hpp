// State interner: the id space behind the count-based engine.
//
// A `StateInterner<S>` owns an arena of distinct states and hands out dense
// `std::uint32_t` ids for them.  The contract that makes it worth having
// (instead of the registry's previous inline vector+unordered_map pair):
//
//   * A state is hashed ONCE, when it is first interned.  The hash is
//     cached next to the arena slot, so table probes compare cached hashes
//     before paying for a deep operator== — and a state that is already
//     interned is found with zero allocations.
//   * Ids are STABLE: an id keeps pointing at the same state until the id
//     is explicitly reclaimed.  Reclamation (compact) releases dead ids to
//     a free list instead of re-indexing, so live ids — and everything
//     keyed on them: counts, Fenwick nodes, memoized transitions, scratch
//     multisets — survive compaction untouched.
//   * Interning a novel state costs exactly one deep copy (into the arena
//     slot).  Reused free-list slots keep their heap buffers, so in steady
//     churn the copy-assign usually allocates nothing.  The open-addressing
//     id table stores plain uint32s — no per-insert node allocations.
//
// Non-hashable state types fall back to a linear scan over allocated ids,
// which is exact but only sensible when the number of distinct states is
// small (mirrors the registry's historical fallback).
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace ssle::pp {

/// True when std::hash is specialized for T (enables the hash id table).
template <typename T>
concept HashableState = requires(const T& t) {
  { std::hash<T>{}(t) } -> std::convertible_to<std::size_t>;
};

template <typename S>
class StateInterner {
 public:
  /// Sentinel returned by find() when a state was never interned.
  static constexpr std::uint32_t kNoId = 0xffffffffu;

  /// Arena size: ids live in [0, capacity()).  Includes reclaimed slots
  /// awaiting reuse, so this bounds every id ever handed out and not yet
  /// trimmed — the right extent for id-indexed side arrays.
  std::uint32_t capacity() const {
    return static_cast<std::uint32_t>(arena_.size());
  }

  /// Number of currently allocated (not reclaimed) ids.
  std::uint32_t size() const { return size_; }

  /// True iff id is currently allocated (reclaimed slots are not).
  bool allocated(std::uint32_t id) const {
    return id < alive_.size() && alive_[id];
  }

  /// The state an allocated id stands for.  Reclaimed slots hold stale
  /// payloads (kept warm for buffer reuse) — never dereference them.
  const S& state(std::uint32_t id) const {
    assert(allocated(id));
    return arena_[id];
  }

  /// Bumped every time reclaim() releases at least one id.  Anything that
  /// caches ids (e.g. a memoized transition table) must treat a version
  /// change as "all cached ids may now be dangling".
  std::uint64_t version() const { return version_; }

  /// Id of s, allocating a slot (free list first, then arena append) if s
  /// was never interned.  The single hash of s happens here.
  std::uint32_t intern(const S& s) {
    if constexpr (HashableState<S>) {
      const std::size_t h = std::hash<S>{}(s);
      std::size_t slot = find_slot(h, s);
      if (table_[slot] != kNoId) return table_[slot];
      const std::uint32_t id = allocate(s);
      hashes_[id] = h;
      table_[slot] = id;
      ++table_used_;
      if (2 * table_used_ >= table_.size()) rebuild_table(2 * table_.size());
      return id;
    } else {
      for (std::uint32_t id = 0; id < capacity(); ++id) {
        if (alive_[id] && arena_[id] == s) return id;
      }
      return allocate(s);
    }
  }

  /// Id of s if it is interned, kNoId otherwise.  Never allocates.
  std::uint32_t find(const S& s) const {
    if constexpr (HashableState<S>) {
      const std::size_t h = std::hash<S>{}(s);
      std::size_t slot = h & (table_.size() - 1);
      while (table_[slot] != kNoId) {
        const std::uint32_t id = table_[slot];
        if (hashes_[id] == h && arena_[id] == s) return id;
        slot = (slot + 1) & (table_.size() - 1);
      }
      return kNoId;
    } else {
      for (std::uint32_t id = 0; id < capacity(); ++id) {
        if (alive_[id] && arena_[id] == s) return id;
      }
      return kNoId;
    }
  }

  /// Releases every allocated id for which dead(id) holds: the id leaves
  /// the hash table and joins the free list for reuse by later intern()
  /// calls.  Slot payloads are deliberately NOT destroyed — a reused slot's
  /// copy-assign then recycles its heap buffers.  Returns the number of
  /// ids released; bumps version() when that is nonzero.
  template <typename Dead>
  std::uint32_t reclaim(Dead&& dead) {
    std::uint32_t released = 0;
    for (std::uint32_t id = 0; id < capacity(); ++id) {
      if (alive_[id] && dead(id)) {
        alive_[id] = false;
        free_.push_back(id);
        --size_;
        ++released;
      }
    }
    if (released > 0) {
      ++version_;
      if constexpr (HashableState<S>) rebuild_table(table_.size());
    }
    return released;
  }

  /// Trims trailing reclaimed slots off the arena (their heap payloads are
  /// actually freed here), shrinking capacity() — and with it every
  /// id-indexed side array the owner keeps.  Interior free slots stay on
  /// the free list.  Returns the new capacity.
  std::uint32_t shrink() {
    const std::uint32_t before = capacity();
    while (!alive_.empty() && !alive_.back()) {
      arena_.pop_back();
      hashes_.pop_back();
      alive_.pop_back();
    }
    if (capacity() != before) {
      const std::uint32_t cap = capacity();
      std::erase_if(free_, [cap](std::uint32_t id) { return id >= cap; });
    }
    return capacity();
  }

 private:
  std::uint32_t allocate(const S& s) {
    assert(capacity() < kNoId);
    std::uint32_t id;
    if (!free_.empty()) {
      id = free_.back();
      free_.pop_back();
      arena_[id] = s;  // copy-assign: reuses the dead slot's heap buffers
      alive_[id] = true;
    } else {
      id = capacity();
      arena_.push_back(s);
      hashes_.push_back(0);
      alive_.push_back(true);
    }
    ++size_;
    return id;
  }

  /// Linear probe for s (cached-hash pre-check): the slot holding s's id,
  /// or the empty slot where s would be inserted.
  std::size_t find_slot(std::size_t h, const S& s) const {
    std::size_t slot = h & (table_.size() - 1);
    while (table_[slot] != kNoId) {
      const std::uint32_t id = table_[slot];
      if (hashes_[id] == h && arena_[id] == s) return slot;
      slot = (slot + 1) & (table_.size() - 1);
    }
    return slot;
  }

  /// Re-seats every allocated id in a table of `want` slots (rounded up to
  /// a power of two ≥ 2·size()+16, so the load factor stays below 1/2).
  void rebuild_table(std::size_t want) {
    std::size_t cap = 16;
    while (cap < want || cap < 2 * static_cast<std::size_t>(size_) + 16) {
      cap *= 2;
    }
    table_.assign(cap, kNoId);
    table_used_ = size_;
    for (std::uint32_t id = 0; id < capacity(); ++id) {
      if (!alive_[id]) continue;
      std::size_t slot = hashes_[id] & (cap - 1);
      while (table_[slot] != kNoId) slot = (slot + 1) & (cap - 1);
      table_[slot] = id;
    }
  }

  // Hot id-indexed fields are separate dense arrays (SoA): hashes_ and
  // alive_ are the two fields every table probe / allocated() check reads,
  // and keeping them out of the (possibly fat) state arena keeps those
  // reads cache-dense.  alive_ is a byte array, not vector<bool>: the
  // allocated() check sits on the hinted re-intern fast path of every
  // engine, and a plain byte load beats a bit-extract there.
  std::vector<S> arena_;              ///< id → state (append-only + reuse)
  std::vector<std::size_t> hashes_;   ///< id → cached hash (hashable only)
  std::vector<std::uint8_t> alive_;   ///< id → currently allocated? (0/1)
  std::vector<std::uint32_t> free_;   ///< reclaimed ids awaiting reuse
  /// Open-addressing id table (hashable only), power-of-two sized.
  std::vector<std::uint32_t> table_ = std::vector<std::uint32_t>(16, kNoId);
  std::size_t table_used_ = 0;        ///< allocated ids seated in table_
  std::uint32_t size_ = 0;
  std::uint64_t version_ = 0;
};

}  // namespace ssle::pp
