// Memoized transition cache for deterministic-δ protocols.
//
// For a protocol with `kDeterministicDelta` (pp/protocol.hpp), a
// transition is a pure function of the two interacting *classes*, so over
// interned class ids (pp/interner.hpp) it collapses to a lookup:
//
//   (id_initiator, id_responder) → (id_initiator', id_responder')
//
// `DeltaCache` is that table: a linear-probing, power-of-two flat map from
// a packed 64-bit id pair to a packed 64-bit id pair.  Entries are plain
// uint64 pairs — no per-insert allocation, one probe chain per lookup — so
// a cache hit replaces two deep state copies, a δ call, two hashes and two
// map lookups with a couple of cache lines.  The owner must clear() the
// table whenever ids are reclaimed (CountsConfiguration::registry_version
// changes): a reclaimed id may be reused for a different state.
//
// Growth doubles the table at 1/2 load.  Insertion stops (lookups continue)
// once kMaxEntries is reached — a protocol whose live pair-type set really
// is unbounded would otherwise trade memory for a near-zero hit rate.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ssle::pp {

class DeltaCache {
 public:
  /// Hard cap on resident entries (~64 MiB of table at 16 B/slot and the
  /// load bound): beyond this, misses stop being inserted.
  static constexpr std::size_t kMaxEntries = std::size_t{1} << 22;

  static std::uint64_t pack(std::uint32_t a, std::uint32_t b) {
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }
  static std::pair<std::uint32_t, std::uint32_t> unpack(std::uint64_t v) {
    return {static_cast<std::uint32_t>(v >> 32),
            static_cast<std::uint32_t>(v)};
  }

  DeltaCache() : slots_(kInitialSlots, Slot{kEmpty, 0}) {}

  /// True and sets `value` iff `key` is cached.
  bool lookup(std::uint64_t key, std::uint64_t& value) const {
    std::size_t i = index_of(key);
    while (slots_[i].key != kEmpty) {
      if (slots_[i].key == key) {
        value = slots_[i].value;
        return true;
      }
      i = (i + 1) & (slots_.size() - 1);
    }
    return false;
  }

  /// Inserts key → value (caller guarantees key is absent).  Silently
  /// drops the entry once kMaxEntries resident entries are reached.
  void insert(std::uint64_t key, std::uint64_t value) {
    if (entries_ >= kMaxEntries) return;
    if (2 * (entries_ + 1) >= slots_.size()) grow();
    std::size_t i = index_of(key);
    while (slots_[i].key != kEmpty) i = (i + 1) & (slots_.size() - 1);
    slots_[i] = Slot{key, value};
    ++entries_;
  }

  /// Drops every entry (table storage is kept warm).
  void clear() {
    if (entries_ == 0) return;
    for (Slot& s : slots_) s.key = kEmpty;
    entries_ = 0;
  }

  std::size_t size() const { return entries_; }

 private:
  struct Slot {
    std::uint64_t key;
    std::uint64_t value;
  };

  /// Packed keys are two valid ids, each < 0xffffffff (the interner's kNoId
  /// sentinel), so all-ones can never be a real key.
  static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};
  static constexpr std::size_t kInitialSlots = 1024;

  std::size_t index_of(std::uint64_t key) const {
    // splitmix64 finalizer: id pairs are highly regular, the table is
    // power-of-two — full-width mixing keeps probe chains short.
    std::uint64_t x = key + 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<std::size_t>(x) & (slots_.size() - 1);
  }

  void grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size() * 2, Slot{kEmpty, 0});
    for (const Slot& s : old) {
      if (s.key == kEmpty) continue;
      std::size_t i = index_of(s.key);
      while (slots_[i].key != kEmpty) i = (i + 1) & (slots_.size() - 1);
      slots_[i] = s;
    }
  }

  std::vector<Slot> slots_;
  std::size_t entries_ = 0;
};

}  // namespace ssle::pp
