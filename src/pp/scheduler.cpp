#include "pp/scheduler.hpp"

namespace ssle::pp {}
