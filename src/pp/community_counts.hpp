// The (community, state) counts projection for blocked topologies.
//
// On a BlockedTopology (pp/graph.hpp) agents of a community are
// exchangeable: the scheduler's pair law depends only on the communities
// of the endpoints, and the transition function δ only on the states.  So
// the projection of a configuration onto counts indexed by the pair
// (community, state) is again a Markov chain — the same lumping argument
// that justifies the plain counts projection under uniform scheduling,
// lifted by one coordinate.  `CommunityCountsConfiguration<P>` is that
// lifted configuration: a `CountsKernel<CommunityKey<State>>`
// (pp/counts.hpp — identical interner/Fenwick/compaction machinery, just
// a packed key) plus the per-community bookkeeping the exact pair law
// needs:
//
//   1. draw the ordered community pair (a, b) from the topology's
//      closed-form edge-weight table,
//   2. draw the initiator class within a and the responder class within b
//      hypergeometrically (uniform agent draws against the current
//      community counts, without replacement when a = b),
//   3. apply δ and re-intern the outputs in their original communities
//      (δ never moves an agent between communities — communities are
//      topology, not state).
//
// Steps 2–3 are what BatchedSimulator's community path executes
// (pp/batched_simulator.hpp); this type owns the law-relevant state.
// Communities are contiguous index ranges of the underlying agent vector,
// matching BlockedScheduler's agent layout, so naive(BlockedScheduler) and
// batched(lumped) runs of the same topology simulate the same chain.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "pp/counts.hpp"
#include "pp/graph.hpp"
#include "pp/interner.hpp"
#include "pp/population.hpp"
#include "pp/protocol.hpp"
#include "util/rng.hpp"

namespace ssle::pp {

/// The packed key of the lifted projection: which community an agent sits
/// in, and which protocol state it carries.
template <typename S>
struct CommunityKey {
  std::uint32_t community = 0;
  S state{};

  friend bool operator==(const CommunityKey&, const CommunityKey&) = default;
};

}  // namespace ssle::pp

/// Hash for hashable states only — non-hashable states make the packed key
/// non-hashable too, and the kernel's interner falls back to its exact
/// linear scan, mirroring the plain configuration's behavior.
template <typename S>
  requires ssle::pp::HashableState<S>
struct std::hash<ssle::pp::CommunityKey<S>> {
  std::size_t operator()(const ssle::pp::CommunityKey<S>& k) const {
    const std::size_t h = std::hash<S>{}(k.state);
    return h ^ (static_cast<std::size_t>(k.community) +
                0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
  }
};

namespace ssle::pp {

template <Protocol P>
class CommunityCountsConfiguration {
 public:
  using State = typename P::State;
  using Key = CommunityKey<State>;

  /// The pair law is community-weighted, not uniform: the batched engine
  /// must take its exact per-interaction community path instead of the
  /// uniform birthday-block machinery (whose collision law assumes every
  /// ordered pair is equally likely).
  static constexpr bool kUniformPairs = false;

  /// Clean initial configuration: agent i of the protocol's initial
  /// assignment lands in community_of_agent(i) — identical layout to a
  /// Population driven by BlockedScheduler.
  CommunityCountsConfiguration(const P& protocol, BlockedTopology topology)
      : CommunityCountsConfiguration(std::move(topology)) {
    assert(topology_.total_agents() == protocol.population_size());
    for (std::uint32_t i = 0; i < protocol.population_size(); ++i) {
      add_in(topology_.community_of_agent(i), protocol.initial_state(i), 1);
    }
  }

  /// Projection of an explicit configuration (adversarial starts).
  CommunityCountsConfiguration(const std::vector<State>& states,
                               BlockedTopology topology)
      : CommunityCountsConfiguration(std::move(topology)) {
    assert(topology_.total_agents() == states.size());
    for (std::size_t i = 0; i < states.size(); ++i) {
      add_in(topology_.community_of_agent(i), states[i], 1);
    }
  }

  /// Empty configuration over a topology: callers with closed-form counts
  /// (e.g. the O(1)-construction epidemic at n = 10^10) fill communities
  /// directly with add_in and skip the O(n) projection loop entirely.
  explicit CommunityCountsConfiguration(BlockedTopology topology)
      : topology_(std::move(topology)),
        csize_(topology_.communities(), 0),
        members_(topology_.communities()) {}

  // --- Registry view (engine-facing; see CountsKernel) -----------------
  std::uint64_t population_size() const { return kernel_.population_size(); }
  std::uint32_t num_states() const { return kernel_.num_states(); }
  std::uint32_t num_allocated_states() const {
    return kernel_.num_allocated_states();
  }
  std::uint32_t num_live_states() const { return kernel_.num_live_states(); }
  std::uint64_t count(std::uint32_t idx) const { return kernel_.count(idx); }
  std::uint64_t registry_version() const { return kernel_.registry_version(); }
  std::uint64_t fenwick_updates() const { return kernel_.fenwick_updates(); }
  std::uint64_t fenwick_samples() const { return kernel_.fenwick_samples(); }
  std::uint64_t compactions() const { return kernel_.compactions(); }
  bool should_compact() const { return kernel_.should_compact(); }

  /// The protocol state class idx stands for (community stripped — this is
  /// what δ consumes; δ is community-oblivious).
  const State& state(std::uint32_t idx) const { return kernel_.key(idx).state; }
  std::uint32_t community_of(std::uint32_t idx) const {
    return kernel_.key(idx).community;
  }

  /// Id of output state s for an interaction whose input held id `hint`:
  /// the output stays in the input's community (topology is not state), so
  /// the packed key is (community_of(hint), s).
  std::uint32_t index_near(const State& s, std::uint32_t hint) {
    scratch_.community = community_of(hint);
    scratch_.state = s;
    return register_index(kernel_.index_of(scratch_, hint));
  }

  void add_at(std::uint32_t idx, std::uint64_t c) {
    kernel_.add_at(idx, c);
    csize_[community_of(idx)] += c;
  }

  void remove_at(std::uint32_t idx, std::uint64_t c) {
    csize_[community_of(idx)] -= c;
    kernel_.remove_at(idx, c);
  }

  /// Registers (community, state) and adds c agents; the community-lifted
  /// twin of CountsKernel::add.
  std::uint32_t add_in(std::uint32_t community, const State& s,
                       std::uint64_t c) {
    scratch_.community = community;
    scratch_.state = s;
    const std::uint32_t idx = register_index(kernel_.index_of(scratch_));
    add_at(idx, c);
    return idx;
  }

  void compact() {
    kernel_.compact();
    rebuild_members();
  }

  // --- State marginal (analysis-facing: predicates ignore communities) --
  std::uint64_t count_of(const State& s) const {
    std::uint64_t c = 0;
    kernel_.for_each([&](const Key& k, std::uint64_t cnt) {
      if (k.state == s) c += cnt;
    });
    return c;
  }

  template <typename Pred>
  std::uint64_t count_if(Pred&& pred) const {
    return kernel_.count_if([&](const Key& k) { return pred(k.state); });
  }

  template <typename F>
  void for_each(F&& f) const {
    kernel_.for_each(
        [&](const Key& k, std::uint64_t cnt) { f(k.state, cnt); });
  }

  // --- The pair law ----------------------------------------------------
  const BlockedTopology& topology() const { return topology_; }

  std::pair<std::uint32_t, std::uint32_t> sample_community_pair(
      util::Rng& rng) const {
    return topology_.sample_pair(rng);
  }

  /// Current number of agents in community c (= topology size except in
  /// the middle of an interaction, when the initiator is held out).
  std::uint64_t community_size(std::uint32_t c) const { return csize_[c]; }

  /// The class holding the pos-th agent of community c (agents of a
  /// community laid out in member-list order): drawing pos uniformly from
  /// [0, community_size(c)) samples a class with probability proportional
  /// to its count — the within-community uniform agent draw of the exact
  /// law.  O(q_c) scan over the community's member ids; blocked-topology
  /// protocols worth lumping have narrow per-community registries, and the
  /// global Fenwick tree cannot answer per-community ranks.
  std::uint32_t sample_class_in(std::uint32_t c, std::uint64_t pos) const {
    assert(pos < csize_[c]);
    for (const std::uint32_t idx : members_[c]) {
      const std::uint64_t cnt = kernel_.count(idx);
      if (pos < cnt) return idx;
      pos -= cnt;
    }
    assert(false && "community member lists out of sync with counts");
    return members_[c].back();
  }

  /// Expansion back to a flat configuration, agents grouped by community
  /// in topology order — the layout BlockedScheduler assumes.
  std::vector<State> to_states() const {
    std::vector<State> out;
    out.reserve(population_size());
    for (std::uint32_t c = 0; c < topology_.communities(); ++c) {
      for (const std::uint32_t idx : members_[c]) {
        for (std::uint64_t j = 0; j < kernel_.count(idx); ++j) {
          out.push_back(state(idx));
        }
      }
    }
    return out;
  }

 private:
  /// Keeps the per-community member lists in sync with the registry: a
  /// newly allocated (or free-list-reused) id joins its community's list.
  std::uint32_t register_index(std::uint32_t idx) {
    if (idx >= in_members_.size()) in_members_.resize(idx + 1, 0);
    if (!in_members_[idx]) {
      in_members_[idx] = 1;
      members_[community_of(idx)].push_back(idx);
    }
    return idx;
  }

  void rebuild_members() {
    for (auto& m : members_) m.clear();
    in_members_.assign(kernel_.num_states(), 0);
    for (std::uint32_t idx = 0; idx < kernel_.num_states(); ++idx) {
      if (kernel_.interner().allocated(idx)) {
        in_members_[idx] = 1;
        members_[community_of(idx)].push_back(idx);
      }
    }
  }

  CountsKernel<Key> kernel_;
  BlockedTopology topology_;
  std::vector<std::uint64_t> csize_;  ///< community → current agent count
  /// community → registered class ids (live and zero-count until compact).
  std::vector<std::vector<std::uint32_t>> members_;
  std::vector<char> in_members_;  ///< id → already in a member list?
  Key scratch_{};                 ///< reused packed key (no per-step copies)
};

}  // namespace ssle::pp
