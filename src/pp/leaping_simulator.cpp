#include "pp/leaping_simulator.hpp"

#include <algorithm>
#include <cmath>

#include "pp/log_combinatorics.hpp"

namespace ssle::pp {

std::uint64_t sample_binomial(util::Rng& rng, std::uint64_t trials,
                              double p) {
  if (trials == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return trials;

  // Inverse transform expanding outward from the mode ⌊(trials+1)·p⌋,
  // using the pmf recurrence p(k+1)/p(k) = (trials−k)/(k+1) · p/(1−p);
  // expected number of visited support points is O(standard deviation).
  // The pmf at the mode is computed once in log space (log_choose handles
  // trials ~ 10^10 where C(trials, k) overflows everything).
  const double nd = static_cast<double>(trials);
  std::uint64_t mode = static_cast<std::uint64_t>((nd + 1.0) * p);
  mode = std::min(mode, trials);

  const double log_pmode = log_choose(trials, mode) +
                           static_cast<double>(mode) * std::log(p) +
                           (nd - static_cast<double>(mode)) * std::log1p(-p);
  double u = rng.real();
  const double p_mode = std::exp(log_pmode);
  u -= p_mode;
  if (u < 0.0) return mode;

  const double odds = p / (1.0 - p);
  double p_up = p_mode;
  double p_down = p_mode;
  std::uint64_t k_up = mode;
  std::uint64_t k_down = mode;
  while (k_up < trials || k_down > 0) {
    if (k_up < trials) {
      const double k = static_cast<double>(k_up);
      p_up *= (nd - k) / (k + 1.0) * odds;
      ++k_up;
      u -= p_up;
      if (u < 0.0) return k_up;
    }
    if (k_down > 0) {
      const double k = static_cast<double>(k_down);
      p_down *= k / ((nd - k + 1.0) * odds);
      --k_down;
      u -= p_down;
      if (u < 0.0) return k_down;
    }
    // Unlike the hypergeometric (support bounded by min(draws, successes))
    // the binomial support runs to `trials`: once both running pmfs have
    // decayed to zero the remaining mass is below double resolution and
    // walking further is pure waste — attribute the residue to the heavier
    // outermost *visited* point, an O(double-epsilon) overweight of that
    // endpoint (same tail policy as sample_hypergeometric).
    if (p_up < 1e-300 && p_down < 1e-300) break;
  }
  return p_up >= p_down ? k_up : k_down;
}

}  // namespace ssle::pp
