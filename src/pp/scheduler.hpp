// Uniformly random pair scheduler (paper §1.1): in each step a uniformly
// random *ordered* pair of distinct agents interacts.  The paper's
// transition function δ: Q×Q → Q×Q is on ordered pairs (initiator,
// responder); our draw is uniform over ordered pairs, which is the standard
// population-model scheduler.
#pragma once

#include <cstdint>
#include <utility>

#include "util/rng.hpp"

namespace ssle::pp {

struct Pair {
  std::uint32_t initiator;
  std::uint32_t responder;
};

class UniformScheduler {
 public:
  UniformScheduler(std::uint32_t n, std::uint64_t seed)
      : n_(n), rng_(seed) {}

  /// Draws a uniformly random ordered pair of distinct agents.
  Pair next() {
    const auto a = static_cast<std::uint32_t>(rng_.below(n_));
    auto b = static_cast<std::uint32_t>(rng_.below(n_ - 1));
    if (b >= a) ++b;
    return {a, b};
  }

  std::uint32_t population_size() const { return n_; }
  util::Rng& rng() { return rng_; }

 private:
  std::uint32_t n_;
  util::Rng rng_;
};

}  // namespace ssle::pp
