#include "analysis/census.hpp"

#include <array>

namespace ssle::analysis {

Census take_census(const core::Params& params,
                   const std::vector<core::Agent>& config) {
  Census c;
  std::array<bool, core::Params::kGenerations> gens{};
  std::vector<std::uint32_t> rank_count(params.n + 1, 0);
  for (const core::Agent& a : config) {
    switch (a.role) {
      case core::Role::kResetting: ++c.resetters; break;
      case core::Role::kRanking: ++c.rankers; break;
      case core::Role::kVerifying: ++c.verifiers; break;
    }
    if (a.role == core::Role::kVerifying) {
      if (a.rank == 1) ++c.leaders;
      if (a.sv.dc.error) ++c.errors;
      gens[a.sv.generation % core::Params::kGenerations] = true;
      if (a.rank >= 1 && a.rank <= params.n) ++rank_count[a.rank];
      for (const auto& bucket : a.sv.dc.msgs) {
        c.total_messages += bucket.size();
        c.approx_bytes += bucket.capacity() * sizeof(core::Msg);
      }
      c.approx_bytes += a.sv.dc.observations.capacity() * sizeof(std::uint32_t);
    }
    c.approx_bytes += sizeof(core::Agent);
    c.approx_bytes += a.ar.channel.capacity() * sizeof(std::uint32_t);
  }
  for (bool g : gens) c.distinct_generations += g ? 1 : 0;
  for (std::uint32_t count : rank_count) {
    c.max_rank_multiplicity = std::max(c.max_rank_multiplicity, count);
  }
  return c;
}

}  // namespace ssle::analysis
