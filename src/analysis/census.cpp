#include "analysis/census.hpp"

#include <algorithm>
#include <array>
#include <utility>

namespace ssle::analysis {
namespace {

/// Shared body of the counts-native censuses: one registry pass, each live
/// class contributing count-weighted.  Rank multiplicity is resolved from
/// the (rank, count) pairs themselves — O(q log q) — instead of an O(n)
/// per-rank table, so the census stays counts-sized at any n.
template <typename Counts>
Census census_from_counts(const core::Params& params, const Counts& counts) {
  Census c;
  std::array<bool, core::Params::kGenerations> gens{};
  std::vector<std::pair<std::uint32_t, std::uint64_t>> ranks;
  std::uint64_t resetters = 0, rankers = 0, verifiers = 0, leaders = 0,
                errors = 0;
  counts.for_each([&](const core::Agent& a, std::uint64_t count) {
    switch (a.role) {
      case core::Role::kResetting: resetters += count; break;
      case core::Role::kRanking: rankers += count; break;
      case core::Role::kVerifying: verifiers += count; break;
    }
    if (a.role == core::Role::kVerifying) {
      if (a.rank == 1) leaders += count;
      if (a.sv.dc.error) errors += count;
      gens[a.sv.generation % core::Params::kGenerations] = true;
      if (a.rank >= 1 && a.rank <= params.n) ranks.emplace_back(a.rank, count);
      std::uint64_t class_messages = 0, class_bytes = 0;
      for (const auto& bucket : a.sv.dc.msgs) {
        class_messages += bucket.size();
        class_bytes += bucket.capacity() * sizeof(core::Msg);
      }
      class_bytes += a.sv.dc.observations.capacity() * sizeof(std::uint32_t);
      c.total_messages += class_messages * count;
      c.approx_bytes += class_bytes * count;
    }
    c.approx_bytes +=
        (sizeof(core::Agent) + a.ar.channel.capacity() * sizeof(std::uint32_t)) *
        count;
  });
  c.resetters = static_cast<std::uint32_t>(resetters);
  c.rankers = static_cast<std::uint32_t>(rankers);
  c.verifiers = static_cast<std::uint32_t>(verifiers);
  c.leaders = static_cast<std::uint32_t>(leaders);
  c.errors = static_cast<std::uint32_t>(errors);
  for (bool g : gens) c.distinct_generations += g ? 1 : 0;
  // Distinct registry classes can carry the same rank (e.g. under the
  // community lift, or differing in message state); sum runs of equal rank.
  std::sort(ranks.begin(), ranks.end());
  std::uint64_t run = 0;
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    run = (i > 0 && ranks[i].first == ranks[i - 1].first)
              ? run + ranks[i].second
              : ranks[i].second;
    c.max_rank_multiplicity = std::max(
        c.max_rank_multiplicity, static_cast<std::uint32_t>(run));
  }
  return c;
}

}  // namespace

Census take_census(const core::Params& params,
                   const std::vector<core::Agent>& config) {
  Census c;
  std::array<bool, core::Params::kGenerations> gens{};
  std::vector<std::uint32_t> rank_count(params.n + 1, 0);
  for (const core::Agent& a : config) {
    switch (a.role) {
      case core::Role::kResetting: ++c.resetters; break;
      case core::Role::kRanking: ++c.rankers; break;
      case core::Role::kVerifying: ++c.verifiers; break;
    }
    if (a.role == core::Role::kVerifying) {
      if (a.rank == 1) ++c.leaders;
      if (a.sv.dc.error) ++c.errors;
      gens[a.sv.generation % core::Params::kGenerations] = true;
      if (a.rank >= 1 && a.rank <= params.n) ++rank_count[a.rank];
      for (const auto& bucket : a.sv.dc.msgs) {
        c.total_messages += bucket.size();
        c.approx_bytes += bucket.capacity() * sizeof(core::Msg);
      }
      c.approx_bytes += a.sv.dc.observations.capacity() * sizeof(std::uint32_t);
    }
    c.approx_bytes += sizeof(core::Agent);
    c.approx_bytes += a.ar.channel.capacity() * sizeof(std::uint32_t);
  }
  for (bool g : gens) c.distinct_generations += g ? 1 : 0;
  for (std::uint32_t count : rank_count) {
    c.max_rank_multiplicity = std::max(c.max_rank_multiplicity, count);
  }
  return c;
}

Census take_census(const core::Params& params,
                   const pp::CountsConfiguration<core::ElectLeader>& counts) {
  return census_from_counts(params, counts);
}

Census take_census(
    const core::Params& params,
    const pp::CommunityCountsConfiguration<core::ElectLeader>& counts) {
  return census_from_counts(params, counts);
}

}  // namespace ssle::analysis
