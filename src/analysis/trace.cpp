#include "analysis/trace.hpp"

#include <sstream>

#include "core/safety.hpp"

namespace ssle::analysis {

void Trace::record(std::uint64_t interactions,
                   const std::vector<core::Agent>& config) {
  points_.push_back({interactions, take_census(params_, config)});
  safe_.push_back(core::is_safe_configuration(params_, config));
}

void Trace::record(std::uint64_t interactions,
                   const pp::CountsConfiguration<core::ElectLeader>& counts) {
  points_.push_back({interactions, take_census(params_, counts)});
  safe_.push_back(core::is_safe_configuration(params_, counts));
}

void Trace::record(
    std::uint64_t interactions,
    const pp::CommunityCountsConfiguration<core::ElectLeader>& counts) {
  points_.push_back({interactions, take_census(params_, counts)});
  safe_.push_back(core::is_safe_configuration(params_, counts));
}

std::optional<std::uint64_t> Trace::first_verifier() const {
  for (const auto& pt : points_) {
    if (pt.census.verifiers > 0) return pt.interactions;
  }
  return std::nullopt;
}

std::optional<std::uint64_t> Trace::all_verifiers() const {
  for (const auto& pt : points_) {
    if (pt.census.verifiers == params_.n) return pt.interactions;
  }
  return std::nullopt;
}

std::optional<std::uint64_t> Trace::first_safe() const {
  for (std::size_t i = 0; i < points_.size(); ++i) {
    if (safe_[i]) return points_[i].interactions;
  }
  return std::nullopt;
}

std::uint32_t Trace::reset_waves() const {
  std::uint32_t waves = 0;
  bool in_wave = false;
  for (const auto& pt : points_) {
    const bool resetting = pt.census.resetters > 0;
    if (resetting && !in_wave) ++waves;
    in_wave = resetting;
  }
  return waves;
}

std::string Trace::summary() const {
  std::ostringstream os;
  auto show = [&](const char* label, std::optional<std::uint64_t> t) {
    os << "  " << label << ": ";
    if (t) {
      os << *t << " interactions ("
         << static_cast<double>(*t) / params_.n << " parallel)";
    } else {
      os << "never";
    }
    os << '\n';
  };
  os << "Trace over " << points_.size() << " probes:\n";
  show("first verifier", first_verifier());
  show("all verifiers", all_verifiers());
  show("first safe", first_safe());
  os << "  reset waves: " << reset_waves() << '\n';
  return os.str();
}

}  // namespace ssle::analysis
