#include "analysis/churn.hpp"

#include <charconv>
#include <cinttypes>

#include "core/elect_leader.hpp"
#include "core/safety.hpp"
#include "core/snapshot.hpp"
#include "obs/journal.hpp"
#include "pp/scheduler.hpp"

namespace ssle::analysis {

[[noreturn]] void fault_plan_die(const std::string& message) {
  std::fprintf(stderr, "error: fault plan: %s\n", message.c_str());
  std::exit(2);
}

// --- legacy corruption loop -----------------------------------------------

void validate_churn_spec(const ChurnSpec& spec, std::uint64_t n) {
  if (spec.horizon == 0) {
    fault_plan_die("a zero-interaction churn run measures nothing "
                   "(field: horizon)");
  }
  if (spec.probe_every == 0) {
    fault_plan_die("availability is measured at probes; probe_every must be "
                   "positive (field: probe_every)");
  }
  if (spec.burst_size > n) {
    fault_plan_die("a burst cannot corrupt more agents than the population "
                   "holds: burst_size=" + std::to_string(spec.burst_size) +
                   " > n=" + std::to_string(n) + " (field: burst_size)");
  }
}

ChurnReport run_churn(const core::Params& params, const ChurnSpec& spec,
                      std::uint64_t seed) {
  validate_churn_spec(spec, params.n);
  core::ElectLeader protocol(params);
  auto config = core::make_safe_config(params);
  pp::UniformScheduler sched(params.n, util::substream(seed, 1));
  util::Rng agent_rng(util::substream(seed, 2));
  util::Rng fault_rng(util::substream(seed, 3));

  ChurnReport report;
  for (std::uint64_t t = 1; t <= spec.horizon; ++t) {
    const auto [a, b] = sched.next();
    protocol.interact(config[a], config[b], agent_rng);

    if (spec.burst_period != 0 && t % spec.burst_period == 0) {
      ++report.bursts;
      for (std::uint32_t k = 0; k < spec.burst_size; ++k) {
        const auto victim =
            static_cast<std::uint32_t>(fault_rng.below(params.n));
        config[victim] = core::random_agent(params, fault_rng);
        ++report.agents_corrupted;
      }
    }

    if (t % spec.probe_every == 0) {
      ++report.probes;
      report.probes_with_unique_leader +=
          core::leader_count(config) == 1 ? 1 : 0;
      report.probes_safe +=
          core::is_safe_configuration(params, config) ? 1 : 0;
      if (spec.journal != nullptr) {
        // The churn loop drives agents directly (no Simulator), so it
        // reports the naive engine's counter shape itself.
        obs::EngineMetrics m;
        m.engine = "naive";
        m.interactions = t;
        m.interactions_iterated = t;
        m.population = params.n;
        spec.journal->tick(t, m);
      }
    }
  }
  return report;
}

// --- FaultPlan validation and the --schedule grammar ----------------------

void validate_fault_plan(const FaultPlan& plan, std::uint64_t n) {
  if (plan.horizon == 0) {
    fault_plan_die("a zero-interaction fault run measures nothing "
                   "(field: horizon)");
  }
  if (plan.probe_every == 0) {
    fault_plan_die("availability and recovery are measured at probes; "
                   "probe_every must be positive (field: probe_every)");
  }
  for (const FaultRule& rule : plan.rules) {
    if (rule.count == 0) {
      fault_plan_die("a rule affecting zero agents is a no-op "
                     "(field: count)");
    }
    if (rule.timing == FaultTiming::kPeriodic && rule.period == 0) {
      fault_plan_die("a periodic rule needs a positive period "
                     "(field: period)");
    }
    if (rule.timing == FaultTiming::kPoisson && rule.period == 0) {
      fault_plan_die("a poisson rule needs a positive mean gap "
                     "(field: mean)");
    }
    if (rule.action == FaultAction::kCorrupt && rule.count > n) {
      fault_plan_die("a burst cannot corrupt more agents than the "
                     "population holds: count=" + std::to_string(rule.count) +
                     " > n=" + std::to_string(n) + " (field: count)");
    }
    if (rule.action == FaultAction::kLeave && rule.count + 2 > n) {
      fault_plan_die("a leave burst of count=" + std::to_string(rule.count) +
                     " would reduce the n=" + std::to_string(n) +
                     " population below 2 (field: count)");
    }
  }
  if (plan.battery.levels > 0) {
    if (plan.battery.decay_every == 0) {
      fault_plan_die("the battery model needs a positive decay interval "
                     "(field: decay_every)");
    }
    if (!(plan.battery.decay_prob > 0.0) || plan.battery.decay_prob > 1.0) {
      fault_plan_die("battery decay_prob must lie in (0, 1] "
                     "(field: decay_prob)");
    }
  }
}

namespace {

/// Strict whole-token uint64 (from_chars: no sign, no wrap, no garbage).
std::optional<std::uint64_t> parse_u64(const std::string& token) {
  std::uint64_t v = 0;
  const char* begin = token.data();
  const char* end = begin + token.size();
  auto [ptr, ec] = std::from_chars(begin, end, v);
  if (ec != std::errc{} || ptr != end || token.empty()) return std::nullopt;
  return v;
}

[[noreturn]] void bad_schedule(const std::string& part) {
  fault_plan_die(
      "cannot parse schedule rule '" + part +
      "' — expected corrupt|join|leave:periodic|poisson:<period>:<count>, "
      "corrupt|join|leave:recovery:<count>, or "
      "battery:<levels>:<decay_every>[:<decay_prob>] (field: schedule)");
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::size_t from = 0;
  while (true) {
    const std::size_t to = s.find(sep, from);
    parts.push_back(s.substr(from, to - from));
    if (to == std::string::npos) return parts;
    from = to + 1;
  }
}

}  // namespace

FaultPlan parse_fault_plan(const std::string& spec, std::uint64_t horizon,
                           std::uint64_t probe_every) {
  FaultPlan plan;
  plan.horizon = horizon;
  plan.probe_every = probe_every;
  if (spec.empty()) {
    fault_plan_die("an empty schedule injects nothing (field: schedule)");
  }
  for (const std::string& part : split(spec, ',')) {
    const auto fields = split(part, ':');
    if (fields[0] == "battery") {
      if (plan.battery.levels > 0) {
        fault_plan_die("at most one battery model per schedule "
                       "(field: schedule)");
      }
      if (fields.size() != 3 && fields.size() != 4) bad_schedule(part);
      const auto levels = parse_u64(fields[1]);
      const auto every = parse_u64(fields[2]);
      if (!levels || *levels == 0 || *levels > 0xffffffffull || !every) {
        bad_schedule(part);
      }
      plan.battery.levels = static_cast<std::uint32_t>(*levels);
      plan.battery.decay_every = *every;
      if (fields.size() == 4) {
        char* tail = nullptr;
        plan.battery.decay_prob = std::strtod(fields[3].c_str(), &tail);
        if (tail != fields[3].c_str() + fields[3].size() ||
            fields[3].empty()) {
          bad_schedule(part);
        }
      }
      continue;
    }
    FaultRule rule;
    if (fields[0] == "corrupt") {
      rule.action = FaultAction::kCorrupt;
    } else if (fields[0] == "join") {
      rule.action = FaultAction::kJoin;
    } else if (fields[0] == "leave") {
      rule.action = FaultAction::kLeave;
    } else {
      bad_schedule(part);
    }
    if (fields.size() == 3 && fields[1] == "recovery") {
      rule.timing = FaultTiming::kOnRecovery;
      const auto count = parse_u64(fields[2]);
      if (!count) bad_schedule(part);
      rule.count = *count;
    } else if (fields.size() == 4 &&
               (fields[1] == "periodic" || fields[1] == "poisson")) {
      rule.timing = fields[1] == "periodic" ? FaultTiming::kPeriodic
                                            : FaultTiming::kPoisson;
      const auto period = parse_u64(fields[2]);
      const auto count = parse_u64(fields[3]);
      if (!period || !count) bad_schedule(part);
      rule.period = *period;
      rule.count = *count;
    } else {
      bad_schedule(part);
    }
    plan.rules.push_back(rule);
  }
  return plan;
}

// --- FaultReport ----------------------------------------------------------

std::uint64_t FaultReport::recovery_quantile(double q) const {
  if (recovery_times.empty()) return 0;
  std::vector<std::uint64_t> sorted(recovery_times);
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::min(1.0, std::max(0.0, q));
  // Nearest-rank: the ⌈q·N⌉-th smallest (1-indexed); q = 0 gives the min.
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(clamped * static_cast<double>(sorted.size())));
  if (rank == 0) rank = 1;
  return sorted[rank - 1];
}

util::Json FaultReport::to_json() const {
  auto j = util::Json::object();
  j.set("probes", static_cast<std::int64_t>(probes));
  j.set("probes_safe", static_cast<std::int64_t>(probes_safe));
  j.set("probes_with_unique_leader",
        static_cast<std::int64_t>(probes_with_unique_leader));
  j.set("events", static_cast<std::int64_t>(events));
  j.set("agents_corrupted", static_cast<std::int64_t>(agents_corrupted));
  j.set("agents_joined", static_cast<std::int64_t>(agents_joined));
  j.set("agents_left", static_cast<std::int64_t>(agents_left));
  j.set("agents_drained", static_cast<std::int64_t>(agents_drained));
  j.set("interactions", static_cast<std::int64_t>(interactions));
  j.set("final_population", static_cast<std::int64_t>(final_population));
  j.set("registry_fingerprint", obs::hex_u64(registry_fingerprint));
  j.set("completed", completed);
  j.set("resumed", resumed);
  j.set("safe_availability", safe_availability());
  j.set("leader_availability", leader_availability());
  j.set("recovery_cycles", static_cast<std::int64_t>(recovery_times.size()));
  j.set("recovery_p50", static_cast<std::int64_t>(recovery_quantile(0.50)));
  j.set("recovery_p95", static_cast<std::int64_t>(recovery_quantile(0.95)));
  j.set("recovery_max", static_cast<std::int64_t>(recovery_quantile(1.0)));
  return j;
}

// --- FaultCursor codec ----------------------------------------------------

util::Json fault_cursor_to_json(const FaultCursor& cur) {
  auto j = util::Json::object();
  j.set("t", static_cast<std::int64_t>(cur.t));
  j.set("last_checkpoint", static_cast<std::int64_t>(cur.last_checkpoint));
  j.set("in_cycle", cur.in_cycle);
  j.set("cycle_start", static_cast<std::int64_t>(cur.cycle_start));
  j.set("fault_rng", obs::rng_state_to_json(cur.fault_rng));
  // Rule timers may hold kFaultNever (> int64 max): hex strings, like RNG
  // words, so util::Json never degrades them to lossy doubles.
  auto next = util::Json::array();
  for (const std::uint64_t nx : cur.next) next.push(obs::hex_u64(nx));
  j.set("next", std::move(next));
  auto battery = util::Json::array();
  for (const std::uint64_t c : cur.battery) {
    battery.push(static_cast<std::int64_t>(c));
  }
  j.set("battery", std::move(battery));
  auto r = util::Json::object();
  r.set("probes", static_cast<std::int64_t>(cur.report.probes));
  r.set("probes_safe", static_cast<std::int64_t>(cur.report.probes_safe));
  r.set("probes_with_unique_leader",
        static_cast<std::int64_t>(cur.report.probes_with_unique_leader));
  r.set("events", static_cast<std::int64_t>(cur.report.events));
  r.set("agents_corrupted",
        static_cast<std::int64_t>(cur.report.agents_corrupted));
  r.set("agents_joined", static_cast<std::int64_t>(cur.report.agents_joined));
  r.set("agents_left", static_cast<std::int64_t>(cur.report.agents_left));
  r.set("agents_drained",
        static_cast<std::int64_t>(cur.report.agents_drained));
  auto recovery = util::Json::array();
  for (const std::uint64_t rt : cur.report.recovery_times) {
    recovery.push(static_cast<std::int64_t>(rt));
  }
  r.set("recovery_times", std::move(recovery));
  j.set("report", std::move(r));
  return j;
}

namespace {

bool read_u64_field(const util::Json& j, const char* key,
                    std::uint64_t* out) {
  const util::Json* v = j.find(key);
  if (!v) return false;
  const auto u = v->as_u64();
  if (!u) return false;
  *out = *u;
  return true;
}

}  // namespace

std::optional<FaultCursor> fault_cursor_from_json(const util::Json& j) {
  if (!j.is_object()) return std::nullopt;
  FaultCursor cur;
  if (!read_u64_field(j, "t", &cur.t)) return std::nullopt;
  if (!read_u64_field(j, "last_checkpoint", &cur.last_checkpoint)) {
    return std::nullopt;
  }
  if (!read_u64_field(j, "cycle_start", &cur.cycle_start)) {
    return std::nullopt;
  }
  const util::Json* in_cycle = j.find("in_cycle");
  if (!in_cycle || !in_cycle->is_bool()) return std::nullopt;
  cur.in_cycle = *in_cycle->as_bool();

  const util::Json* rng = j.find("fault_rng");
  if (!rng) return std::nullopt;
  const auto words = obs::rng_state_from_json(*rng);
  if (!words) return std::nullopt;
  cur.fault_rng = *words;

  const util::Json* next = j.find("next");
  if (!next || !next->is_array()) return std::nullopt;
  for (std::size_t i = 0; i < next->size(); ++i) {
    const auto s = next->at(i)->as_string();
    if (!s) return std::nullopt;
    const auto v = obs::parse_hex_u64(*s);
    if (!v) return std::nullopt;
    cur.next.push_back(*v);
  }

  const util::Json* battery = j.find("battery");
  if (!battery || !battery->is_array()) return std::nullopt;
  for (std::size_t i = 0; i < battery->size(); ++i) {
    const auto v = battery->at(i)->as_u64();
    if (!v) return std::nullopt;
    cur.battery.push_back(*v);
  }

  const util::Json* r = j.find("report");
  if (!r || !r->is_object()) return std::nullopt;
  if (!read_u64_field(*r, "probes", &cur.report.probes) ||
      !read_u64_field(*r, "probes_safe", &cur.report.probes_safe) ||
      !read_u64_field(*r, "probes_with_unique_leader",
                      &cur.report.probes_with_unique_leader) ||
      !read_u64_field(*r, "events", &cur.report.events) ||
      !read_u64_field(*r, "agents_corrupted",
                      &cur.report.agents_corrupted) ||
      !read_u64_field(*r, "agents_joined", &cur.report.agents_joined) ||
      !read_u64_field(*r, "agents_left", &cur.report.agents_left) ||
      !read_u64_field(*r, "agents_drained", &cur.report.agents_drained)) {
    return std::nullopt;
  }
  const util::Json* recovery = r->find("recovery_times");
  if (!recovery || !recovery->is_array()) return std::nullopt;
  for (std::size_t i = 0; i < recovery->size(); ++i) {
    const auto v = recovery->at(i)->as_u64();
    if (!v) return std::nullopt;
    cur.report.recovery_times.push_back(*v);
  }
  return cur;
}

// --- the ElectLeader_r entry ----------------------------------------------

FaultReport run_fault_plan(EngineSpec engine, const core::Params& params,
                           const FaultPlan& plan, std::uint64_t seed,
                           const FaultRunOptions& opts) {
  core::ElectLeader protocol(params);
  Engine kind = engine.kind;
  if (kind == Engine::kLeaping || kind == Engine::kSharded) {
    std::fprintf(stderr,
                 "note: fault injection mutates the population between "
                 "blocks; routing --engine=%s to the batched counts "
                 "engine\n",
                 engine_name(kind));
    kind = Engine::kBatched;
  }

  if (kind == Engine::kNaive) {
    NaiveFaultModel<core::ElectLeader> model;
    model.corrupt_state = [&params](util::Rng& rng) {
      return core::random_agent(params, rng);
    };
    model.join_state = [&protocol] { return protocol.initial_state(0); };
    model.safe = [&params](const std::vector<core::Agent>& config) {
      return core::is_safe_configuration(params, config);
    };
    model.unique_leader = [](const std::vector<core::Agent>& config) {
      return core::leader_count(config) == 1;
    };
    return run_fault_plan_naive(protocol, core::make_safe_config(params),
                                plan, seed, model, opts);
  }

  FaultModel<core::ElectLeader> model;
  model.corrupt_state = [&params](util::Rng& rng) {
    return core::random_agent(params, rng);
  };
  model.join_state = [&protocol] { return protocol.initial_state(0); };
  model.safe =
      [&params](const pp::CountsConfiguration<core::ElectLeader>& c) {
        return core::is_safe_configuration(params, c);
      };
  model.unique_leader =
      [](const pp::CountsConfiguration<core::ElectLeader>& c) {
        return c.count_if(core::ElectLeader::is_leader) == 1;
      };
  model.encode = [](const core::Agent& a) {
    return core::snapshot_write_agent(a);
  };
  model.decode = [](const std::string& text) {
    return core::snapshot_read_agent(text);
  };
  model.label = "elect_leader";
  pp::CountsConfiguration<core::ElectLeader> counts(
      core::make_safe_config(params));
  return run_fault_plan_counts(protocol, std::move(counts), plan, seed,
                               model, opts);
}

}  // namespace ssle::analysis
