#include "analysis/churn.hpp"

#include "core/elect_leader.hpp"
#include "core/safety.hpp"
#include "obs/journal.hpp"
#include "pp/scheduler.hpp"

namespace ssle::analysis {

ChurnReport run_churn(const core::Params& params, const ChurnSpec& spec,
                      std::uint64_t seed) {
  core::ElectLeader protocol(params);
  auto config = core::make_safe_config(params);
  pp::UniformScheduler sched(params.n, util::substream(seed, 1));
  util::Rng agent_rng(util::substream(seed, 2));
  util::Rng fault_rng(util::substream(seed, 3));

  ChurnReport report;
  const std::uint64_t probe_every =
      spec.probe_every == 0 ? params.n : spec.probe_every;
  for (std::uint64_t t = 1; t <= spec.horizon; ++t) {
    const auto [a, b] = sched.next();
    protocol.interact(config[a], config[b], agent_rng);

    if (spec.burst_period != 0 && t % spec.burst_period == 0) {
      ++report.bursts;
      for (std::uint32_t k = 0; k < spec.burst_size; ++k) {
        const auto victim =
            static_cast<std::uint32_t>(fault_rng.below(params.n));
        config[victim] = core::random_agent(params, fault_rng);
        ++report.agents_corrupted;
      }
    }

    if (t % probe_every == 0) {
      ++report.probes;
      report.probes_with_unique_leader +=
          core::leader_count(config) == 1 ? 1 : 0;
      report.probes_safe +=
          core::is_safe_configuration(params, config) ? 1 : 0;
      if (spec.journal != nullptr) {
        // The churn loop drives agents directly (no Simulator), so it
        // reports the naive engine's counter shape itself.
        obs::EngineMetrics m;
        m.engine = "naive";
        m.interactions = t;
        m.interactions_iterated = t;
        spec.journal->tick(t, m);
      }
    }
  }
  return report;
}

}  // namespace ssle::analysis
