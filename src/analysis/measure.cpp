#include "analysis/measure.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "analysis/trace.hpp"
#include "core/derandomized.hpp"
#include "core/safety.hpp"
#include "core/snapshot.hpp"
#include "obs/checkpoint.hpp"
#include "obs/journal.hpp"
#include "pp/batched_simulator.hpp"
#include "pp/community_counts.hpp"
#include "pp/epidemic.hpp"
#include "pp/graph.hpp"
#include "pp/leaping_simulator.hpp"
#include "pp/sharded_simulator.hpp"
#include "pp/simulator.hpp"

namespace ssle::analysis {

std::uint64_t default_budget(const core::Params& params) {
  const double n = params.n;
  const double r = params.r;
  const double L = std::log2(n) + 1.0;
  return static_cast<std::uint64_t>(150.0 * (n * n / r) * L) + 200000;
}

StabilizationResult stabilize_from(const core::Params& params,
                                   std::vector<core::Agent> config,
                                   std::uint64_t seed,
                                   std::uint64_t max_interactions,
                                   const ProbeOptions& probes) {
  if (!probes.checkpoint_path.empty()) {
    std::fprintf(stderr,
                 "note: checkpoints are counts-native; the naive engine "
                 "runs uncheckpointed\n");
  }
  core::ElectLeader protocol(params);
  pp::Population<core::ElectLeader> population(std::move(config));
  pp::Simulator<core::ElectLeader> sim(protocol, std::move(population), seed);

  const auto probe = [&](const pp::Population<core::ElectLeader>& pop,
                         std::uint64_t t) {
    if (probes.trace) probes.trace->record(t, pop.states());
    if (probes.journal) probes.journal->tick(t, sim.metrics());
    return core::is_safe_configuration(params, pop.states());
  };
  const auto run =
      sim.run_until(probe, max_interactions,
                    probes.probe_every ? probes.probe_every : params.n);

  StabilizationResult res;
  res.converged = run.converged;
  res.interactions = run.interactions;
  res.parallel_time = run.parallel_time(params.n);
  res.leaders = core::leader_count(sim.population().states());
  res.metrics = sim.metrics();
  return res;
}

namespace {

/// Checkpoint identity + codec for the ElectLeader_r counts engines
/// (ProbeOptions.checkpoint_*): the protocol label restore checks, and the
/// per-state snapshot stanza codec (core/snapshot.hpp).
constexpr const char* kElectLeaderLabel = "elect_leader";

std::string encode_elect_leader(const core::Agent& a) {
  return core::snapshot_write_agent(a);
}

std::optional<core::Agent> decode_elect_leader(const std::string& text) {
  return core::snapshot_read_agent(text);
}

/// Shared ProbeOptions.checkpoint_* plumbing for the counts engines: call
/// resume() before run_until (it loads an existing checkpoint, restores the
/// engine, and shrinks the remaining budget), and on_probe(t) from the
/// probe lambda (it saves every checkpoint_every interactions).
template <typename Sim>
class StabilizeCheckpointer {
 public:
  StabilizeCheckpointer(Sim& sim, const ProbeOptions& probes)
      : sim_(sim), probes_(probes) {}

  void resume(std::uint64_t* max_interactions) {
    if (!enabled()) return;
    auto doc = obs::checkpoint_load(probes_.checkpoint_path);
    if (!doc) return;  // nothing saved yet: a fresh run
    if (!obs::restore_checkpoint(sim_, *doc, kElectLeaderLabel,
                                 decode_elect_leader)) {
      std::fprintf(stderr,
                   "error: checkpoint at %s does not restore into this "
                   "engine/protocol\n",
                   probes_.checkpoint_path.c_str());
      std::exit(2);
    }
    last_saved_ = sim_.interactions();
    // run_until budgets are relative to the engine's interaction count:
    // a resumed run only owes the remainder of the original budget.
    *max_interactions -= std::min(*max_interactions, sim_.interactions());
  }

  void on_probe(std::uint64_t t) {
    if (!enabled() || t < last_saved_ + probes_.checkpoint_every) return;
    auto doc = obs::make_checkpoint(sim_, kElectLeaderLabel,
                                    encode_elect_leader);
    if (obs::checkpoint_save(probes_.checkpoint_path, doc)) last_saved_ = t;
  }

 private:
  bool enabled() const {
    return !probes_.checkpoint_path.empty() && probes_.checkpoint_every > 0;
  }

  Sim& sim_;
  const ProbeOptions& probes_;
  std::uint64_t last_saved_ = 0;
};

/// Batched-engine counterpart of stabilize_from: advances a counts
/// configuration until the (counts-native) safe predicate holds.
StabilizationResult stabilize_counts_from(
    const core::Params& params,
    pp::CountsConfiguration<core::ElectLeader> config, std::uint64_t seed,
    std::uint64_t max_interactions, const ProbeOptions& probes) {
  core::ElectLeader protocol(params);
  pp::BatchedSimulator<core::ElectLeader> sim(protocol, std::move(config),
                                              seed);
  StabilizeCheckpointer checkpointer(sim, probes);
  checkpointer.resume(&max_interactions);

  const auto probe = [&](const pp::CountsConfiguration<core::ElectLeader>& c,
                         std::uint64_t t) {
    if (probes.trace) probes.trace->record(t, c);
    if (probes.journal) probes.journal->tick(t, sim.metrics());
    // Safety first: saving canonicalizes the engine, which may rebuild the
    // very configuration `c` refers to.
    const bool safe = core::is_safe_configuration(params, c);
    checkpointer.on_probe(t);
    return safe;
  };
  const auto run =
      sim.run_until(probe, max_interactions,
                    probes.probe_every ? probes.probe_every : params.n);

  StabilizationResult res;
  res.converged = run.converged;
  res.interactions = run.interactions;
  res.parallel_time = run.parallel_time(params.n);
  res.leaders = static_cast<std::uint32_t>(
      sim.config().count_if(core::ElectLeader::is_leader));
  res.metrics = sim.metrics();
  return res;
}

/// Sharded-engine counterpart of stabilize_counts_from: the same counts
/// configuration, partitioned over `shards` worker shards
/// (pp::ShardedSimulator).  Probes observe the settled merged
/// configuration, so the predicate and census code are shared verbatim.
StabilizationResult stabilize_sharded_counts_from(
    const core::Params& params,
    pp::CountsConfiguration<core::ElectLeader> config, std::uint64_t seed,
    std::uint64_t max_interactions, const ProbeOptions& probes,
    std::size_t shards) {
  core::ElectLeader protocol(params);
  pp::ShardedSimulator<core::ElectLeader> sim(protocol, std::move(config),
                                              seed, shards);
  StabilizeCheckpointer checkpointer(sim, probes);
  checkpointer.resume(&max_interactions);

  const auto probe = [&](const pp::CountsConfiguration<core::ElectLeader>& c,
                         std::uint64_t t) {
    if (probes.trace) probes.trace->record(t, c);
    if (probes.journal) probes.journal->tick(t, sim.metrics());
    // Safety first: saving canonicalizes the engine, which may rebuild the
    // very configuration `c` refers to.
    const bool safe = core::is_safe_configuration(params, c);
    checkpointer.on_probe(t);
    return safe;
  };
  const auto run =
      sim.run_until(probe, max_interactions,
                    probes.probe_every ? probes.probe_every : params.n);

  StabilizationResult res;
  res.converged = run.converged;
  res.interactions = run.interactions;
  res.parallel_time = run.parallel_time(params.n);
  res.leaders = static_cast<std::uint32_t>(
      sim.config().count_if(core::ElectLeader::is_leader));
  res.metrics = sim.metrics();
  return res;
}

/// The protocol's clean initial configuration as a per-agent array.
std::vector<core::Agent> clean_config(const core::Params& params) {
  core::ElectLeader protocol(params);
  std::vector<core::Agent> config;
  config.reserve(params.n);
  for (std::uint32_t i = 0; i < params.n; ++i) {
    config.push_back(protocol.initial_state(i));
  }
  return config;
}

}  // namespace

StabilizationResult stabilize(EngineSpec engine, StartKind start,
                              const core::Params& params,
                              core::Corruption corruption, std::uint64_t seed,
                              std::uint64_t max_interactions,
                              const ProbeOptions& probes) {
  if (start == StartKind::kClean) {
    if (engine == Engine::kNaive) {
      return stabilize_from(params, clean_config(params), seed,
                            max_interactions, probes);
    }
    core::ElectLeader protocol(params);
    if (engine == Engine::kSharded) {
      return stabilize_sharded_counts_from(
          params, pp::CountsConfiguration<core::ElectLeader>(protocol), seed,
          max_interactions, probes, engine.shards);
    }
    // kBatched and kLeaping both take the counts path: ElectLeader_r draws
    // randomness in δ, so it is not leap-eligible (pp::LeapEligible) and a
    // leap request degrades to the nearest exact engine (documented in
    // measure.hpp; the routing is pinned by a test).
    return stabilize_counts_from(
        params, pp::CountsConfiguration<core::ElectLeader>(protocol), seed,
        max_interactions, probes);
  }

  // Adversarial start: both engines draw the same configuration from the
  // same seed-derived stream (substream 77, distinct from the simulation
  // streams), so the start distribution — in fact the start itself — is
  // engine-independent.
  util::Rng rng(util::substream(seed, 77));
  auto config = core::make_adversarial_config(params, corruption, rng);
  if (engine == Engine::kNaive) {
    return stabilize_from(params, std::move(config), seed, max_interactions,
                          probes);
  }
  // Project the per-agent array onto state counts; only the multiset
  // survives into the simulation (any agent labelling is dynamics-
  // equivalent under the uniform scheduler).
  pp::CountsConfiguration<core::ElectLeader> counts(config);
  if (engine == Engine::kSharded) {
    return stabilize_sharded_counts_from(params, std::move(counts), seed,
                                         max_interactions, probes,
                                         engine.shards);
  }
  return stabilize_counts_from(params, std::move(counts), seed,
                               max_interactions, probes);
}

StabilizationResult stabilize(EngineSpec engine, const core::Params& params,
                              std::uint64_t seed,
                              std::uint64_t max_interactions) {
  return stabilize(engine, StartKind::kClean, params, core::Corruption::kNone,
                   seed, max_interactions);
}

namespace {

/// Naive-engine stabilization under an explicit scheduler (BlockedScheduler
/// for blocked topologies, GraphScheduler for the ring) — the agent-array
/// twin of stabilize_from.
template <typename Sched>
StabilizationResult stabilize_population(const core::Params& params,
                                         std::vector<core::Agent> config,
                                         Sched scheduler, std::uint64_t seed,
                                         std::uint64_t max_interactions,
                                         const ProbeOptions& probes) {
  core::ElectLeader protocol(params);
  pp::Population<core::ElectLeader> population(std::move(config));
  pp::Simulator<core::ElectLeader, Sched> sim(
      protocol, std::move(population), std::move(scheduler), seed);

  const auto probe = [&](const pp::Population<core::ElectLeader>& pop,
                         std::uint64_t t) {
    if (probes.trace) probes.trace->record(t, pop.states());
    if (probes.journal) probes.journal->tick(t, sim.metrics());
    return core::is_safe_configuration(params, pop.states());
  };
  const auto run =
      sim.run_until(probe, max_interactions,
                    probes.probe_every ? probes.probe_every : params.n);

  StabilizationResult res;
  res.converged = run.converged;
  res.interactions = run.interactions;
  res.parallel_time = run.parallel_time(params.n);
  res.leaders = core::leader_count(sim.population().states());
  res.metrics = sim.metrics();
  return res;
}

/// Lumped-engine stabilization on a blocked topology: the batched engine's
/// community path over (community, state) counts.  The safe predicate is a
/// property of the state *multiset* (leader uniqueness, verifier roles,
/// message-system consistency — none of it community-dependent), so the
/// probe uses the community-counts overload of core::is_safe_configuration
/// directly: O(q) multiset pre-checks per probe, expansion only once they
/// pass — exactly mirroring the uniform counts probe.
StabilizationResult stabilize_community_from(
    const core::Params& params,
    pp::CommunityCountsConfiguration<core::ElectLeader> config,
    std::uint64_t seed, std::uint64_t max_interactions,
    const ProbeOptions& probes) {
  core::ElectLeader protocol(params);
  pp::BatchedSimulator<core::ElectLeader,
                       pp::CommunityCountsConfiguration<core::ElectLeader>>
      sim(protocol, std::move(config), seed);

  const auto probe =
      [&](const pp::CommunityCountsConfiguration<core::ElectLeader>& c,
          std::uint64_t t) {
        if (probes.trace) probes.trace->record(t, c);
        if (probes.journal) probes.journal->tick(t, sim.metrics());
        return core::is_safe_configuration(params, c);
      };
  const auto run =
      sim.run_until(probe, max_interactions,
                    probes.probe_every ? probes.probe_every : params.n);

  StabilizationResult res;
  res.converged = run.converged;
  res.interactions = run.interactions;
  res.parallel_time = run.parallel_time(params.n);
  res.leaders = static_cast<std::uint32_t>(
      sim.config().count_if(core::ElectLeader::is_leader));
  res.metrics = sim.metrics();
  return res;
}

/// Engine routing for a topology request: the ring has no community
/// lumping (each agent's neighborhood is private to it), so the counts
/// engines reroute to naive with a loud note — the runtime analogue of the
/// old compile-time static_assert, but survivable.
Engine route_topology_engine(Engine engine, const Topology& topology) {
  if (topology.kind == Topology::Kind::kRing && engine != Engine::kNaive) {
    std::fprintf(stderr,
                 "note: topology '%s' has no lumped configuration; routing "
                 "--engine=%s to the naive agent-array engine\n",
                 topology_name(topology), engine_name(engine));
    return Engine::kNaive;
  }
  return engine;
}

/// The hard S1 error: an engine/topology/size combination NO engine can
/// run.  Always names the topology.
[[noreturn]] void no_engine_for_topology(const Topology& topology,
                                         std::uint64_t n, const char* why) {
  std::fprintf(stderr,
               "error: no engine supports topology '%s' at n=%llu: %s\n",
               topology_name(topology), static_cast<unsigned long long>(n),
               why);
  std::exit(2);
}

}  // namespace

StabilizationResult stabilize(EngineSpec engine, StartKind start,
                              const core::Params& params,
                              core::Corruption corruption, std::uint64_t seed,
                              std::uint64_t max_interactions,
                              const Topology& topology,
                              const ProbeOptions& probes) {
  if (topology.kind == Topology::Kind::kComplete) {
    // The classical model: the uniform paths, byte-for-byte.
    return stabilize(engine, start, params, corruption, seed, max_interactions,
                     probes);
  }
  engine = route_topology_engine(engine, topology);

  // Both engines start from the same agent array with the same layout
  // (agent i in community_of_agent(i)), drawn from the same stream as the
  // complete-topology paths, so runs differ only in the scheduling law.
  std::vector<core::Agent> config;
  if (start == StartKind::kClean) {
    config = clean_config(params);
  } else {
    util::Rng rng(util::substream(seed, 77));
    config = core::make_adversarial_config(params, corruption, rng);
  }

  if (topology.kind == Topology::Kind::kRing) {
    return stabilize_population(
        params, std::move(config),
        pp::GraphScheduler(pp::Graph::cycle(params.n),
                           util::substream(seed, 1)),
        seed, max_interactions, probes);
  }

  pp::BlockedTopology blocked = blocked_topology(topology, params.n);
  if (engine == Engine::kNaive) {
    return stabilize_population(
        params, std::move(config),
        pp::BlockedScheduler(std::move(blocked), util::substream(seed, 1)),
        seed, max_interactions, probes);
  }
  // kBatched and kLeaping: the lumped community engine (leaping has no
  // community leap path; same nearest-exact-engine routing as for
  // ineligible protocols).  kSharded reroutes here too — its birthday-
  // block partition assumes the uniform pair law, which community
  // weighting breaks — loudly, like every other engine degrade.
  if (engine == Engine::kSharded) {
    std::fprintf(stderr,
                 "note: topology '%s' is community-weighted; the sharded "
                 "engine's uniform block partition does not apply — routing "
                 "--engine=sharded to the community batched engine\n",
                 topology_name(topology));
  }
  pp::CommunityCountsConfiguration<core::ElectLeader> counts(
      config, std::move(blocked));
  return stabilize_community_from(params, std::move(counts), seed,
                                  max_interactions, probes);
}

namespace {

/// Safety probe for the derandomized protocol's counts projection: the
/// multiset-checkable parts run first (every agent a verifier; in a safe
/// configuration all ranks — hence all agents — are distinct, so every
/// live class must have count 1), and only then is the O(n) agent
/// expansion paid for the message-system scan.
bool derandomized_counts_safe(
    const core::Params& params,
    const pp::CountsConfiguration<core::DerandomizedElectLeader>& counts) {
  if (counts.population_size() != params.n) return false;
  if (counts.num_live_states() != params.n) return false;
  bool all_verifiers = true;
  counts.for_each([&](const core::DerandomizedElectLeader::State& s,
                      std::uint64_t c) {
    all_verifiers &= c == 1 && s.agent.role == core::Role::kVerifying;
  });
  if (!all_verifiers) return false;
  std::vector<core::Agent> agents;
  agents.reserve(params.n);
  counts.for_each([&](const core::DerandomizedElectLeader::State& s,
                      std::uint64_t c) {
    for (std::uint64_t i = 0; i < c; ++i) agents.push_back(s.agent);
  });
  return core::is_safe_configuration(params, agents);
}

}  // namespace

StabilizationResult stabilize_derandomized(EngineSpec engine,
                                           const core::Params& params,
                                           std::uint64_t seed,
                                           std::uint64_t max_interactions) {
  core::DerandomizedElectLeader protocol(params);
  StabilizationResult res;
  if (engine == Engine::kNaive) {
    pp::Simulator<core::DerandomizedElectLeader> sim(protocol, seed);
    const auto probe =
        [&](const pp::Population<core::DerandomizedElectLeader>& pop,
            std::uint64_t) {
          std::vector<core::Agent> agents;
          agents.reserve(pop.size());
          for (std::uint32_t i = 0; i < pop.size(); ++i) {
            if (pop[i].agent.role != core::Role::kVerifying) return false;
            agents.push_back(pop[i].agent);
          }
          return core::is_safe_configuration(params, agents);
        };
    const auto run = sim.run_until(probe, max_interactions,
                                   /*probe_every=*/params.n);
    res.converged = run.converged;
    res.interactions = run.interactions;
    res.parallel_time = run.parallel_time(params.n);
    res.leaders = 0;
    for (std::uint32_t i = 0; i < params.n; ++i) {
      res.leaders += core::DerandomizedElectLeader::is_leader(
          sim.population()[i]);
    }
    res.metrics = sim.metrics();
    return res;
  }

  if (engine == Engine::kSharded) {
    pp::ShardedSimulator<core::DerandomizedElectLeader> sim(
        protocol,
        pp::CountsConfiguration<core::DerandomizedElectLeader>(protocol), seed,
        engine.shards);
    const auto probe =
        [&](const pp::CountsConfiguration<core::DerandomizedElectLeader>& c,
            std::uint64_t) { return derandomized_counts_safe(params, c); };
    const auto run = sim.run_until(probe, max_interactions,
                                   /*probe_every=*/params.n);
    res.converged = run.converged;
    res.interactions = run.interactions;
    res.parallel_time = run.parallel_time(params.n);
    res.leaders = static_cast<std::uint32_t>(
        sim.config().count_if(core::DerandomizedElectLeader::is_leader));
    res.metrics = sim.metrics();
    return res;
  }

  // kBatched and kLeaping both land here: DerandomizedElectLeader has a
  // deterministic δ but keeps q ≈ n distinct states (FastLE identifiers,
  // ranks), so it fails the narrow-registry half of pp::LeapEligible —
  // and with almost every pair type active there are no null runs for the
  // leap engine to jump anyway.
  pp::BatchedSimulator<core::DerandomizedElectLeader> sim(protocol, seed);
  const auto probe =
      [&](const pp::CountsConfiguration<core::DerandomizedElectLeader>& c,
          std::uint64_t) { return derandomized_counts_safe(params, c); };
  const auto run = sim.run_until(probe, max_interactions,
                                 /*probe_every=*/params.n);
  res.converged = run.converged;
  res.interactions = run.interactions;
  res.parallel_time = run.parallel_time(params.n);
  res.leaders = static_cast<std::uint32_t>(
      sim.config().count_if(core::DerandomizedElectLeader::is_leader));
  res.metrics = sim.metrics();
  return res;
}

EngineSpec engine_from_string(const std::string& name) {
  if (name == "naive") return Engine::kNaive;
  if (name == "batched") return Engine::kBatched;
  if (name == "leaping") return Engine::kLeaping;
  if (name == "sharded") return EngineSpec(Engine::kSharded, 0);
  std::size_t shards = 0;
  char tail = '\0';
  if (std::sscanf(name.c_str(), "sharded:%zu%c", &shards, &tail) == 1 &&
      shards >= 1) {
    return EngineSpec(Engine::kSharded, shards);
  }
  std::fprintf(stderr,
               "error: --engine=%s is not a valid engine "
               "(naive|batched|leaping|sharded[:T])\n",
               name.c_str());
  std::exit(2);
}

const char* engine_name(Engine engine) {
  switch (engine) {
    case Engine::kNaive:
      return "naive";
    case Engine::kBatched:
      return "batched";
    case Engine::kLeaping:
      return "leaping";
    case Engine::kSharded:
      return "sharded";
  }
  return "unknown";
}

StartKind start_from_string(const std::string& name) {
  if (name == "clean") return StartKind::kClean;
  if (name == "adversarial") return StartKind::kAdversarial;
  std::fprintf(stderr,
               "error: --start=%s is not a valid start (clean|adversarial)\n",
               name.c_str());
  std::exit(2);
}

const char* start_name(StartKind start) {
  return start == StartKind::kClean ? "clean" : "adversarial";
}

Topology topology_from_string(const std::string& spec) {
  Topology t;
  t.spec = spec;
  if (spec == "complete") {
    t.kind = Topology::Kind::kComplete;
    return t;
  }
  if (spec == "ring") {
    t.kind = Topology::Kind::kRing;
    return t;
  }
  unsigned k = 0;
  double intra = 1.0;
  double inter = 0.05;
  char tail = 0;
  // Longest form first; the %c sentinel rejects trailing garbage (a typo'd
  // spec must not silently run a different topology).
  if (std::sscanf(spec.c_str(), "islands:%u:%lf:%lf%c", &k, &intra, &inter,
                  &tail) == 3) {
    t.kind = Topology::Kind::kIslands;
  } else if (std::sscanf(spec.c_str(), "islands:%u%c", &k, &tail) == 1) {
    t.kind = Topology::Kind::kIslands;
    intra = 1.0;
    inter = 0.05;
  } else if (std::sscanf(spec.c_str(), "multipartite:%u%c", &k, &tail) == 1) {
    t.kind = Topology::Kind::kMultipartite;
    intra = 0.0;
    inter = 1.0;
  } else {
    std::fprintf(stderr,
                 "error: --topology=%s is not a valid topology "
                 "(complete|ring|islands:K|islands:K:intra:inter|"
                 "multipartite:K)\n",
                 spec.c_str());
    std::exit(2);
  }
  t.communities = k;
  t.intra = intra;
  t.inter = inter;
  if (k == 0) {
    std::fprintf(stderr, "error: --topology=%s: K must be >= 1\n",
                 spec.c_str());
    std::exit(2);
  }
  if (t.kind == Topology::Kind::kMultipartite && k < 2) {
    std::fprintf(stderr,
                 "error: --topology=%s: a complete multipartite graph needs "
                 "K >= 2 blocks (K=1 has no edges)\n",
                 spec.c_str());
    std::exit(2);
  }
  if (intra < 0.0 || inter < 0.0) {
    std::fprintf(stderr, "error: --topology=%s: edge weights must be >= 0\n",
                 spec.c_str());
    std::exit(2);
  }
  if (t.kind == Topology::Kind::kIslands && k > 1 && inter <= 0.0) {
    std::fprintf(stderr,
                 "error: --topology=%s: K > 1 islands with inter weight 0 "
                 "are disconnected\n",
                 spec.c_str());
    std::exit(2);
  }
  if (t.kind == Topology::Kind::kIslands && k == 1 && intra <= 0.0) {
    std::fprintf(stderr,
                 "error: --topology=%s: a single island with intra weight 0 "
                 "has no edges\n",
                 spec.c_str());
    std::exit(2);
  }
  return t;
}

const char* topology_name(const Topology& topology) {
  return topology.spec.c_str();
}

bool topology_is_lumpable(const Topology& topology) {
  switch (topology.kind) {
    case Topology::Kind::kComplete:
    case Topology::Kind::kIslands:
    case Topology::Kind::kMultipartite:
      return true;
    case Topology::Kind::kRing:
      return false;
  }
  return false;
}

pp::BlockedTopology blocked_topology(const Topology& topology,
                                     std::uint64_t n) {
  switch (topology.kind) {
    case Topology::Kind::kComplete:
      return pp::BlockedTopology::complete(n);
    case Topology::Kind::kIslands:
      return pp::BlockedTopology::islands(n, topology.communities,
                                          topology.intra, topology.inter);
    case Topology::Kind::kMultipartite:
      return pp::BlockedTopology::multipartite(n, topology.communities);
    case Topology::Kind::kRing:
      break;
  }
  std::fprintf(stderr,
               "error: topology '%s' is not blocked — it has no lumped "
               "(community, state) configuration\n",
               topology_name(topology));
  std::exit(2);
}

namespace {

std::uint64_t epidemic_budget(std::uint64_t n) {
  std::uint64_t log2ceil = 0;
  while ((std::uint64_t{1} << log2ceil) < n) ++log2ceil;
  return 64ull * n * std::max<std::uint64_t>(1, log2ceil);
}

/// {1 infected, n−1 susceptible} as a counts configuration in O(1) —
/// never an O(n) agent loop, so n = 10^10 costs nothing to set up.
pp::CountsConfiguration<pp::Epidemic> epidemic_counts(std::uint64_t n) {
  pp::CountsConfiguration<pp::Epidemic> counts(std::vector<int>{1});
  counts.add(0, n - 1);
  return counts;
}

}  // namespace

pp::RunResult epidemic_convergence(EngineSpec engine, std::uint64_t n,
                                   std::uint64_t seed,
                                   std::uint64_t max_interactions,
                                   std::uint64_t probe_every,
                                   obs::Journal* journal) {
  if (n < 2) return {0, true};
  if (max_interactions == 0) max_interactions = epidemic_budget(n);
  // The protocol object's n is only consulted when an engine builds the
  // clean start itself; both counts engines get the configuration
  // pre-built, so clamping to uint32 range is harmless bookkeeping.
  const pp::Epidemic protocol{
      static_cast<std::uint32_t>(std::min<std::uint64_t>(n, 0xffffffffull))};
  // Per-engine probe: heartbeat (when journaled), then the convergence
  // check.  `sim` is the engine the lambda is used with.
  const auto all_infected = [&](const auto& sim, const auto& config,
                                std::uint64_t t) {
    if (journal) journal->tick(t, sim.metrics());
    return config.count_of(0) == 0;
  };
  switch (engine) {
    case Engine::kNaive: {
      if (n > 0xffffffffull) {
        std::fprintf(stderr,
                     "error: the naive engine materializes n agents; "
                     "n=%llu exceeds its uint32 population limit "
                     "(use --engine=batched or --engine=leaping)\n",
                     static_cast<unsigned long long>(n));
        std::exit(2);
      }
      pp::Simulator<pp::Epidemic> sim(protocol, seed);
      return sim.run_until(
          [&](const pp::Population<pp::Epidemic>& pop, std::uint64_t t) {
            if (journal) journal->tick(t, sim.metrics());
            for (std::uint32_t i = 0; i < pop.size(); ++i) {
              if (pop[i] == 0) return false;
            }
            return true;
          },
          max_interactions, probe_every);
    }
    case Engine::kBatched: {
      pp::BatchedSimulator<pp::Epidemic> sim(protocol, epidemic_counts(n),
                                             seed);
      return sim.run_until(
          [&](const pp::CountsConfiguration<pp::Epidemic>& c, std::uint64_t t) {
            return all_infected(sim, c, t);
          },
          max_interactions, probe_every);
    }
    case Engine::kLeaping: {
      pp::LeapingSimulator<pp::Epidemic> sim(protocol, epidemic_counts(n),
                                             seed);
      return sim.run_until(
          [&](const pp::CountsConfiguration<pp::Epidemic>& c, std::uint64_t t) {
            return all_infected(sim, c, t);
          },
          max_interactions, probe_every);
    }
    case Engine::kSharded: {
      pp::ShardedSimulator<pp::Epidemic> sim(protocol, epidemic_counts(n),
                                             seed, engine.shards);
      return sim.run_until(
          [&](const pp::CountsConfiguration<pp::Epidemic>& c, std::uint64_t t) {
            return all_infected(sim, c, t);
          },
          max_interactions, probe_every);
    }
  }
  return {0, false};
}

pp::RunResult epidemic_convergence(EngineSpec engine, std::uint64_t n,
                                   std::uint64_t seed,
                                   std::uint64_t max_interactions,
                                   std::uint64_t probe_every,
                                   const Topology& topology,
                                   obs::Journal* journal) {
  if (topology.kind == Topology::Kind::kComplete) {
    return epidemic_convergence(engine, n, seed, max_interactions, probe_every,
                                journal);
  }
  if (n < 2) return {0, true};
  engine = route_topology_engine(engine, topology);
  const pp::Epidemic protocol{
      static_cast<std::uint32_t>(std::min<std::uint64_t>(n, 0xffffffffull))};

  if (topology.kind == Topology::Kind::kRing) {
    if (n > 0xffffffffull) {
      no_engine_for_topology(topology, n,
                             "the ring has no lumped configuration and the "
                             "naive engine materializes n agents (uint32 "
                             "limit)");
    }
    if (max_interactions == 0) {
      // The cycle spreads by boundary contact: Θ(n²) interactions.
      const long double b = 16.0L * static_cast<long double>(n) *
                            static_cast<long double>(n);
      max_interactions = b > 1.8e19L ? ~std::uint64_t{0}
                                     : static_cast<std::uint64_t>(b);
    }
    pp::Simulator<pp::Epidemic, pp::GraphScheduler> sim(
        protocol, pp::Population<pp::Epidemic>(protocol),
        pp::GraphScheduler(pp::Graph::cycle(static_cast<std::uint32_t>(n)),
                           util::substream(seed, 1)),
        seed);
    return sim.run_until(
        [&](const pp::Population<pp::Epidemic>& pop, std::uint64_t t) {
          if (journal) journal->tick(t, sim.metrics());
          for (std::uint32_t i = 0; i < pop.size(); ++i) {
            if (pop[i] == 0) return false;
          }
          return true;
        },
        max_interactions, probe_every);
  }

  // Blocked topology.  The default budget is 8× the complete-graph bound:
  // spreading must cross the (possibly low-weight) inter-community cut,
  // but each crossing is a one-time event against a Θ(n log n) backbone.
  if (max_interactions == 0) max_interactions = 8 * epidemic_budget(n);
  pp::BlockedTopology blocked = blocked_topology(topology, n);
  if (engine == Engine::kNaive) {
    if (n > 0xffffffffull) {
      no_engine_for_topology(topology, n,
                             "the naive engine materializes n agents "
                             "(uint32 limit); use --engine=batched — the "
                             "lumped (community, state) engine holds O(K·q) "
                             "counters");
    }
    pp::Simulator<pp::Epidemic, pp::BlockedScheduler> sim(
        protocol, pp::Population<pp::Epidemic>(protocol),
        pp::BlockedScheduler(std::move(blocked), util::substream(seed, 1)),
        seed);
    return sim.run_until(
        [&](const pp::Population<pp::Epidemic>& pop, std::uint64_t t) {
          if (journal) journal->tick(t, sim.metrics());
          for (std::uint32_t i = 0; i < pop.size(); ++i) {
            if (pop[i] == 0) return false;
          }
          return true;
        },
        max_interactions, probe_every);
  }
  // kBatched / kLeaping: the lumped engine.  The configuration is built in
  // O(K) — {1 infected in community 0 (agent 0 lives there), the rest
  // susceptible} — never an O(n) agent loop.  kSharded reroutes here too
  // (its uniform block partition doesn't apply under community weighting).
  if (engine == Engine::kSharded) {
    std::fprintf(stderr,
                 "note: topology '%s' is community-weighted; routing "
                 "--engine=sharded to the community batched engine\n",
                 topology_name(topology));
  }
  pp::CommunityCountsConfiguration<pp::Epidemic> counts(blocked);
  counts.add_in(0, 1, 1);
  for (std::uint32_t c = 0; c < blocked.communities(); ++c) {
    const std::uint64_t susceptible = blocked.size(c) - (c == 0 ? 1 : 0);
    if (susceptible > 0) counts.add_in(c, 0, susceptible);
  }
  pp::BatchedSimulator<pp::Epidemic,
                       pp::CommunityCountsConfiguration<pp::Epidemic>>
      sim(protocol, std::move(counts), seed);
  return sim.run_until(
      [&](const pp::CommunityCountsConfiguration<pp::Epidemic>& c,
          std::uint64_t t) {
        if (journal) journal->tick(t, sim.metrics());
        return c.count_of(0) == 0;
      },
      max_interactions, probe_every);
}

core::MessageMultiplicity multiplicity_from_string(const std::string& name) {
  if (name == "faithful") return core::MessageMultiplicity::kFaithful;
  if (name == "light") return core::MessageMultiplicity::kLight;
  std::fprintf(
      stderr,
      "error: --mult=%s is not a valid multiplicity (faithful|light)\n",
      name.c_str());
  std::exit(2);
}

const char* multiplicity_name(core::MessageMultiplicity mult) {
  return mult == core::MessageMultiplicity::kFaithful ? "faithful" : "light";
}

}  // namespace ssle::analysis
