#include "analysis/measure.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/safety.hpp"
#include "pp/batched_simulator.hpp"
#include "pp/simulator.hpp"

namespace ssle::analysis {

std::uint64_t default_budget(const core::Params& params) {
  const double n = params.n;
  const double r = params.r;
  const double L = std::log2(n) + 1.0;
  return static_cast<std::uint64_t>(150.0 * (n * n / r) * L) + 200000;
}

StabilizationResult stabilize_from(const core::Params& params,
                                   std::vector<core::Agent> config,
                                   std::uint64_t seed,
                                   std::uint64_t max_interactions) {
  core::ElectLeader protocol(params);
  pp::Population<core::ElectLeader> population(std::move(config));
  pp::Simulator<core::ElectLeader> sim(protocol, std::move(population), seed);

  const auto probe = [&](const pp::Population<core::ElectLeader>& pop,
                         std::uint64_t) {
    return core::is_safe_configuration(params, pop.states());
  };
  const auto run = sim.run_until(probe, max_interactions,
                                 /*probe_every=*/params.n);

  StabilizationResult res;
  res.converged = run.converged;
  res.interactions = run.interactions;
  res.parallel_time = run.parallel_time(params.n);
  res.leaders = core::leader_count(sim.population().states());
  return res;
}

StabilizationResult stabilize_clean(const core::Params& params,
                                    std::uint64_t seed,
                                    std::uint64_t max_interactions) {
  core::ElectLeader protocol(params);
  std::vector<core::Agent> config;
  config.reserve(params.n);
  for (std::uint32_t i = 0; i < params.n; ++i) {
    config.push_back(protocol.initial_state(i));
  }
  return stabilize_from(params, std::move(config), seed, max_interactions);
}

StabilizationResult stabilize_clean_batched(const core::Params& params,
                                            std::uint64_t seed,
                                            std::uint64_t max_interactions) {
  core::ElectLeader protocol(params);
  pp::BatchedSimulator<core::ElectLeader> sim(protocol, seed);

  const auto probe = [&](const pp::CountsConfiguration<core::ElectLeader>& c,
                         std::uint64_t) {
    return core::is_safe_configuration(params, c.to_states());
  };
  const auto run = sim.run_until(probe, max_interactions,
                                 /*probe_every=*/params.n);

  StabilizationResult res;
  res.converged = run.converged;
  res.interactions = run.interactions;
  res.parallel_time = run.parallel_time(params.n);
  res.leaders = static_cast<std::uint32_t>(
      sim.config().count_if(core::ElectLeader::is_leader));
  return res;
}

Engine engine_from_string(const std::string& name) {
  if (name == "naive") return Engine::kNaive;
  if (name == "batched") return Engine::kBatched;
  std::fprintf(stderr,
               "error: --engine=%s is not a valid engine (naive|batched)\n",
               name.c_str());
  std::exit(2);
}

const char* engine_name(Engine engine) {
  return engine == Engine::kNaive ? "naive" : "batched";
}

core::MessageMultiplicity multiplicity_from_string(const std::string& name) {
  if (name == "faithful") return core::MessageMultiplicity::kFaithful;
  if (name == "light") return core::MessageMultiplicity::kLight;
  std::fprintf(
      stderr,
      "error: --mult=%s is not a valid multiplicity (faithful|light)\n",
      name.c_str());
  std::exit(2);
}

const char* multiplicity_name(core::MessageMultiplicity mult) {
  return mult == core::MessageMultiplicity::kFaithful ? "faithful" : "light";
}

StabilizationResult stabilize_clean_engine(Engine engine,
                                           const core::Params& params,
                                           std::uint64_t seed,
                                           std::uint64_t max_interactions) {
  return engine == Engine::kNaive
             ? stabilize_clean(params, seed, max_interactions)
             : stabilize_clean_batched(params, seed, max_interactions);
}

StabilizationResult stabilize_adversarial(const core::Params& params,
                                          core::Corruption c,
                                          std::uint64_t seed,
                                          std::uint64_t max_interactions) {
  util::Rng rng(util::substream(seed, 77));
  auto config = core::make_adversarial_config(params, c, rng);
  return stabilize_from(params, std::move(config), seed, max_interactions);
}

}  // namespace ssle::analysis
