#include "analysis/measure.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "core/derandomized.hpp"
#include "core/safety.hpp"
#include "pp/batched_simulator.hpp"
#include "pp/simulator.hpp"

namespace ssle::analysis {

std::uint64_t default_budget(const core::Params& params) {
  const double n = params.n;
  const double r = params.r;
  const double L = std::log2(n) + 1.0;
  return static_cast<std::uint64_t>(150.0 * (n * n / r) * L) + 200000;
}

StabilizationResult stabilize_from(const core::Params& params,
                                   std::vector<core::Agent> config,
                                   std::uint64_t seed,
                                   std::uint64_t max_interactions) {
  core::ElectLeader protocol(params);
  pp::Population<core::ElectLeader> population(std::move(config));
  pp::Simulator<core::ElectLeader> sim(protocol, std::move(population), seed);

  const auto probe = [&](const pp::Population<core::ElectLeader>& pop,
                         std::uint64_t) {
    return core::is_safe_configuration(params, pop.states());
  };
  const auto run = sim.run_until(probe, max_interactions,
                                 /*probe_every=*/params.n);

  StabilizationResult res;
  res.converged = run.converged;
  res.interactions = run.interactions;
  res.parallel_time = run.parallel_time(params.n);
  res.leaders = core::leader_count(sim.population().states());
  return res;
}

namespace {

/// Batched-engine counterpart of stabilize_from: advances a counts
/// configuration until the (counts-native) safe predicate holds.
StabilizationResult stabilize_counts_from(
    const core::Params& params,
    pp::CountsConfiguration<core::ElectLeader> config, std::uint64_t seed,
    std::uint64_t max_interactions) {
  core::ElectLeader protocol(params);
  pp::BatchedSimulator<core::ElectLeader> sim(protocol, std::move(config),
                                              seed);

  const auto probe = [&](const pp::CountsConfiguration<core::ElectLeader>& c,
                         std::uint64_t) {
    return core::is_safe_configuration(params, c);
  };
  const auto run = sim.run_until(probe, max_interactions,
                                 /*probe_every=*/params.n);

  StabilizationResult res;
  res.converged = run.converged;
  res.interactions = run.interactions;
  res.parallel_time = run.parallel_time(params.n);
  res.leaders = static_cast<std::uint32_t>(
      sim.config().count_if(core::ElectLeader::is_leader));
  return res;
}

/// The protocol's clean initial configuration as a per-agent array.
std::vector<core::Agent> clean_config(const core::Params& params) {
  core::ElectLeader protocol(params);
  std::vector<core::Agent> config;
  config.reserve(params.n);
  for (std::uint32_t i = 0; i < params.n; ++i) {
    config.push_back(protocol.initial_state(i));
  }
  return config;
}

}  // namespace

StabilizationResult stabilize(Engine engine, StartKind start,
                              const core::Params& params,
                              core::Corruption corruption, std::uint64_t seed,
                              std::uint64_t max_interactions) {
  if (start == StartKind::kClean) {
    if (engine == Engine::kNaive) {
      return stabilize_from(params, clean_config(params), seed,
                            max_interactions);
    }
    core::ElectLeader protocol(params);
    return stabilize_counts_from(
        params, pp::CountsConfiguration<core::ElectLeader>(protocol), seed,
        max_interactions);
  }

  // Adversarial start: both engines draw the same configuration from the
  // same seed-derived stream (substream 77, distinct from the simulation
  // streams), so the start distribution — in fact the start itself — is
  // engine-independent.
  util::Rng rng(util::substream(seed, 77));
  auto config = core::make_adversarial_config(params, corruption, rng);
  if (engine == Engine::kNaive) {
    return stabilize_from(params, std::move(config), seed, max_interactions);
  }
  // Project the per-agent array onto state counts; only the multiset
  // survives into the simulation (any agent labelling is dynamics-
  // equivalent under the uniform scheduler).
  pp::CountsConfiguration<core::ElectLeader> counts(config);
  return stabilize_counts_from(params, std::move(counts), seed,
                               max_interactions);
}

StabilizationResult stabilize(Engine engine, const core::Params& params,
                              std::uint64_t seed,
                              std::uint64_t max_interactions) {
  return stabilize(engine, StartKind::kClean, params, core::Corruption::kNone,
                   seed, max_interactions);
}

namespace {

/// Safety probe for the derandomized protocol's counts projection: the
/// multiset-checkable parts run first (every agent a verifier; in a safe
/// configuration all ranks — hence all agents — are distinct, so every
/// live class must have count 1), and only then is the O(n) agent
/// expansion paid for the message-system scan.
bool derandomized_counts_safe(
    const core::Params& params,
    const pp::CountsConfiguration<core::DerandomizedElectLeader>& counts) {
  if (counts.population_size() != params.n) return false;
  if (counts.num_live_states() != params.n) return false;
  bool all_verifiers = true;
  counts.for_each([&](const core::DerandomizedElectLeader::State& s,
                      std::uint64_t c) {
    all_verifiers &= c == 1 && s.agent.role == core::Role::kVerifying;
  });
  if (!all_verifiers) return false;
  std::vector<core::Agent> agents;
  agents.reserve(params.n);
  counts.for_each([&](const core::DerandomizedElectLeader::State& s,
                      std::uint64_t c) {
    for (std::uint64_t i = 0; i < c; ++i) agents.push_back(s.agent);
  });
  return core::is_safe_configuration(params, agents);
}

}  // namespace

StabilizationResult stabilize_derandomized(Engine engine,
                                           const core::Params& params,
                                           std::uint64_t seed,
                                           std::uint64_t max_interactions) {
  core::DerandomizedElectLeader protocol(params);
  StabilizationResult res;
  if (engine == Engine::kNaive) {
    pp::Simulator<core::DerandomizedElectLeader> sim(protocol, seed);
    const auto probe =
        [&](const pp::Population<core::DerandomizedElectLeader>& pop,
            std::uint64_t) {
          std::vector<core::Agent> agents;
          agents.reserve(pop.size());
          for (std::uint32_t i = 0; i < pop.size(); ++i) {
            if (pop[i].agent.role != core::Role::kVerifying) return false;
            agents.push_back(pop[i].agent);
          }
          return core::is_safe_configuration(params, agents);
        };
    const auto run = sim.run_until(probe, max_interactions,
                                   /*probe_every=*/params.n);
    res.converged = run.converged;
    res.interactions = run.interactions;
    res.parallel_time = run.parallel_time(params.n);
    res.leaders = 0;
    for (std::uint32_t i = 0; i < params.n; ++i) {
      res.leaders += core::DerandomizedElectLeader::is_leader(
          sim.population()[i]);
    }
    return res;
  }

  pp::BatchedSimulator<core::DerandomizedElectLeader> sim(protocol, seed);
  const auto probe =
      [&](const pp::CountsConfiguration<core::DerandomizedElectLeader>& c,
          std::uint64_t) { return derandomized_counts_safe(params, c); };
  const auto run = sim.run_until(probe, max_interactions,
                                 /*probe_every=*/params.n);
  res.converged = run.converged;
  res.interactions = run.interactions;
  res.parallel_time = run.parallel_time(params.n);
  res.leaders = static_cast<std::uint32_t>(
      sim.config().count_if(core::DerandomizedElectLeader::is_leader));
  return res;
}

Engine engine_from_string(const std::string& name) {
  if (name == "naive") return Engine::kNaive;
  if (name == "batched") return Engine::kBatched;
  std::fprintf(stderr,
               "error: --engine=%s is not a valid engine (naive|batched)\n",
               name.c_str());
  std::exit(2);
}

const char* engine_name(Engine engine) {
  return engine == Engine::kNaive ? "naive" : "batched";
}

StartKind start_from_string(const std::string& name) {
  if (name == "clean") return StartKind::kClean;
  if (name == "adversarial") return StartKind::kAdversarial;
  std::fprintf(stderr,
               "error: --start=%s is not a valid start (clean|adversarial)\n",
               name.c_str());
  std::exit(2);
}

const char* start_name(StartKind start) {
  return start == StartKind::kClean ? "clean" : "adversarial";
}

core::MessageMultiplicity multiplicity_from_string(const std::string& name) {
  if (name == "faithful") return core::MessageMultiplicity::kFaithful;
  if (name == "light") return core::MessageMultiplicity::kLight;
  std::fprintf(
      stderr,
      "error: --mult=%s is not a valid multiplicity (faithful|light)\n",
      name.c_str());
  std::exit(2);
}

const char* multiplicity_name(core::MessageMultiplicity mult) {
  return mult == core::MessageMultiplicity::kFaithful ? "faithful" : "light";
}

}  // namespace ssle::analysis
