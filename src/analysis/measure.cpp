#include "analysis/measure.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "core/derandomized.hpp"
#include "core/safety.hpp"
#include "pp/batched_simulator.hpp"
#include "pp/epidemic.hpp"
#include "pp/leaping_simulator.hpp"
#include "pp/simulator.hpp"

namespace ssle::analysis {

std::uint64_t default_budget(const core::Params& params) {
  const double n = params.n;
  const double r = params.r;
  const double L = std::log2(n) + 1.0;
  return static_cast<std::uint64_t>(150.0 * (n * n / r) * L) + 200000;
}

StabilizationResult stabilize_from(const core::Params& params,
                                   std::vector<core::Agent> config,
                                   std::uint64_t seed,
                                   std::uint64_t max_interactions) {
  core::ElectLeader protocol(params);
  pp::Population<core::ElectLeader> population(std::move(config));
  pp::Simulator<core::ElectLeader> sim(protocol, std::move(population), seed);

  const auto probe = [&](const pp::Population<core::ElectLeader>& pop,
                         std::uint64_t) {
    return core::is_safe_configuration(params, pop.states());
  };
  const auto run = sim.run_until(probe, max_interactions,
                                 /*probe_every=*/params.n);

  StabilizationResult res;
  res.converged = run.converged;
  res.interactions = run.interactions;
  res.parallel_time = run.parallel_time(params.n);
  res.leaders = core::leader_count(sim.population().states());
  return res;
}

namespace {

/// Batched-engine counterpart of stabilize_from: advances a counts
/// configuration until the (counts-native) safe predicate holds.
StabilizationResult stabilize_counts_from(
    const core::Params& params,
    pp::CountsConfiguration<core::ElectLeader> config, std::uint64_t seed,
    std::uint64_t max_interactions) {
  core::ElectLeader protocol(params);
  pp::BatchedSimulator<core::ElectLeader> sim(protocol, std::move(config),
                                              seed);

  const auto probe = [&](const pp::CountsConfiguration<core::ElectLeader>& c,
                         std::uint64_t) {
    return core::is_safe_configuration(params, c);
  };
  const auto run = sim.run_until(probe, max_interactions,
                                 /*probe_every=*/params.n);

  StabilizationResult res;
  res.converged = run.converged;
  res.interactions = run.interactions;
  res.parallel_time = run.parallel_time(params.n);
  res.leaders = static_cast<std::uint32_t>(
      sim.config().count_if(core::ElectLeader::is_leader));
  return res;
}

/// The protocol's clean initial configuration as a per-agent array.
std::vector<core::Agent> clean_config(const core::Params& params) {
  core::ElectLeader protocol(params);
  std::vector<core::Agent> config;
  config.reserve(params.n);
  for (std::uint32_t i = 0; i < params.n; ++i) {
    config.push_back(protocol.initial_state(i));
  }
  return config;
}

}  // namespace

StabilizationResult stabilize(Engine engine, StartKind start,
                              const core::Params& params,
                              core::Corruption corruption, std::uint64_t seed,
                              std::uint64_t max_interactions) {
  if (start == StartKind::kClean) {
    if (engine == Engine::kNaive) {
      return stabilize_from(params, clean_config(params), seed,
                            max_interactions);
    }
    // kBatched and kLeaping both take the counts path: ElectLeader_r draws
    // randomness in δ, so it is not leap-eligible (pp::LeapEligible) and a
    // leap request degrades to the nearest exact engine (documented in
    // measure.hpp; the routing is pinned by a test).
    core::ElectLeader protocol(params);
    return stabilize_counts_from(
        params, pp::CountsConfiguration<core::ElectLeader>(protocol), seed,
        max_interactions);
  }

  // Adversarial start: both engines draw the same configuration from the
  // same seed-derived stream (substream 77, distinct from the simulation
  // streams), so the start distribution — in fact the start itself — is
  // engine-independent.
  util::Rng rng(util::substream(seed, 77));
  auto config = core::make_adversarial_config(params, corruption, rng);
  if (engine == Engine::kNaive) {
    return stabilize_from(params, std::move(config), seed, max_interactions);
  }
  // Project the per-agent array onto state counts; only the multiset
  // survives into the simulation (any agent labelling is dynamics-
  // equivalent under the uniform scheduler).
  pp::CountsConfiguration<core::ElectLeader> counts(config);
  return stabilize_counts_from(params, std::move(counts), seed,
                               max_interactions);
}

StabilizationResult stabilize(Engine engine, const core::Params& params,
                              std::uint64_t seed,
                              std::uint64_t max_interactions) {
  return stabilize(engine, StartKind::kClean, params, core::Corruption::kNone,
                   seed, max_interactions);
}

namespace {

/// Safety probe for the derandomized protocol's counts projection: the
/// multiset-checkable parts run first (every agent a verifier; in a safe
/// configuration all ranks — hence all agents — are distinct, so every
/// live class must have count 1), and only then is the O(n) agent
/// expansion paid for the message-system scan.
bool derandomized_counts_safe(
    const core::Params& params,
    const pp::CountsConfiguration<core::DerandomizedElectLeader>& counts) {
  if (counts.population_size() != params.n) return false;
  if (counts.num_live_states() != params.n) return false;
  bool all_verifiers = true;
  counts.for_each([&](const core::DerandomizedElectLeader::State& s,
                      std::uint64_t c) {
    all_verifiers &= c == 1 && s.agent.role == core::Role::kVerifying;
  });
  if (!all_verifiers) return false;
  std::vector<core::Agent> agents;
  agents.reserve(params.n);
  counts.for_each([&](const core::DerandomizedElectLeader::State& s,
                      std::uint64_t c) {
    for (std::uint64_t i = 0; i < c; ++i) agents.push_back(s.agent);
  });
  return core::is_safe_configuration(params, agents);
}

}  // namespace

StabilizationResult stabilize_derandomized(Engine engine,
                                           const core::Params& params,
                                           std::uint64_t seed,
                                           std::uint64_t max_interactions) {
  core::DerandomizedElectLeader protocol(params);
  StabilizationResult res;
  if (engine == Engine::kNaive) {
    pp::Simulator<core::DerandomizedElectLeader> sim(protocol, seed);
    const auto probe =
        [&](const pp::Population<core::DerandomizedElectLeader>& pop,
            std::uint64_t) {
          std::vector<core::Agent> agents;
          agents.reserve(pop.size());
          for (std::uint32_t i = 0; i < pop.size(); ++i) {
            if (pop[i].agent.role != core::Role::kVerifying) return false;
            agents.push_back(pop[i].agent);
          }
          return core::is_safe_configuration(params, agents);
        };
    const auto run = sim.run_until(probe, max_interactions,
                                   /*probe_every=*/params.n);
    res.converged = run.converged;
    res.interactions = run.interactions;
    res.parallel_time = run.parallel_time(params.n);
    res.leaders = 0;
    for (std::uint32_t i = 0; i < params.n; ++i) {
      res.leaders += core::DerandomizedElectLeader::is_leader(
          sim.population()[i]);
    }
    return res;
  }

  // kBatched and kLeaping both land here: DerandomizedElectLeader has a
  // deterministic δ but keeps q ≈ n distinct states (FastLE identifiers,
  // ranks), so it fails the narrow-registry half of pp::LeapEligible —
  // and with almost every pair type active there are no null runs for the
  // leap engine to jump anyway.
  pp::BatchedSimulator<core::DerandomizedElectLeader> sim(protocol, seed);
  const auto probe =
      [&](const pp::CountsConfiguration<core::DerandomizedElectLeader>& c,
          std::uint64_t) { return derandomized_counts_safe(params, c); };
  const auto run = sim.run_until(probe, max_interactions,
                                 /*probe_every=*/params.n);
  res.converged = run.converged;
  res.interactions = run.interactions;
  res.parallel_time = run.parallel_time(params.n);
  res.leaders = static_cast<std::uint32_t>(
      sim.config().count_if(core::DerandomizedElectLeader::is_leader));
  return res;
}

Engine engine_from_string(const std::string& name) {
  if (name == "naive") return Engine::kNaive;
  if (name == "batched") return Engine::kBatched;
  if (name == "leaping") return Engine::kLeaping;
  std::fprintf(
      stderr,
      "error: --engine=%s is not a valid engine (naive|batched|leaping)\n",
      name.c_str());
  std::exit(2);
}

const char* engine_name(Engine engine) {
  switch (engine) {
    case Engine::kNaive:
      return "naive";
    case Engine::kBatched:
      return "batched";
    case Engine::kLeaping:
      return "leaping";
  }
  return "unknown";
}

StartKind start_from_string(const std::string& name) {
  if (name == "clean") return StartKind::kClean;
  if (name == "adversarial") return StartKind::kAdversarial;
  std::fprintf(stderr,
               "error: --start=%s is not a valid start (clean|adversarial)\n",
               name.c_str());
  std::exit(2);
}

const char* start_name(StartKind start) {
  return start == StartKind::kClean ? "clean" : "adversarial";
}

namespace {

std::uint64_t epidemic_budget(std::uint64_t n) {
  std::uint64_t log2ceil = 0;
  while ((std::uint64_t{1} << log2ceil) < n) ++log2ceil;
  return 64ull * n * std::max<std::uint64_t>(1, log2ceil);
}

/// {1 infected, n−1 susceptible} as a counts configuration in O(1) —
/// never an O(n) agent loop, so n = 10^10 costs nothing to set up.
pp::CountsConfiguration<pp::Epidemic> epidemic_counts(std::uint64_t n) {
  pp::CountsConfiguration<pp::Epidemic> counts(std::vector<int>{1});
  counts.add(0, n - 1);
  return counts;
}

}  // namespace

pp::RunResult epidemic_convergence(Engine engine, std::uint64_t n,
                                   std::uint64_t seed,
                                   std::uint64_t max_interactions,
                                   std::uint64_t probe_every) {
  if (n < 2) return {0, true};
  if (max_interactions == 0) max_interactions = epidemic_budget(n);
  // The protocol object's n is only consulted when an engine builds the
  // clean start itself; both counts engines get the configuration
  // pre-built, so clamping to uint32 range is harmless bookkeeping.
  const pp::Epidemic protocol{
      static_cast<std::uint32_t>(std::min<std::uint64_t>(n, 0xffffffffull))};
  const auto all_infected = [](const auto& config, std::uint64_t) {
    return config.count_of(0) == 0;
  };
  switch (engine) {
    case Engine::kNaive: {
      if (n > 0xffffffffull) {
        std::fprintf(stderr,
                     "error: the naive engine materializes n agents; "
                     "n=%llu exceeds its uint32 population limit "
                     "(use --engine=batched or --engine=leaping)\n",
                     static_cast<unsigned long long>(n));
        std::exit(2);
      }
      pp::Simulator<pp::Epidemic> sim(protocol, seed);
      return sim.run_until(
          [](const pp::Population<pp::Epidemic>& pop, std::uint64_t) {
            for (std::uint32_t i = 0; i < pop.size(); ++i) {
              if (pop[i] == 0) return false;
            }
            return true;
          },
          max_interactions, probe_every);
    }
    case Engine::kBatched: {
      pp::BatchedSimulator<pp::Epidemic> sim(protocol, epidemic_counts(n),
                                             seed);
      return sim.run_until(all_infected, max_interactions, probe_every);
    }
    case Engine::kLeaping: {
      pp::LeapingSimulator<pp::Epidemic> sim(protocol, epidemic_counts(n),
                                             seed);
      return sim.run_until(all_infected, max_interactions, probe_every);
    }
  }
  return {0, false};
}

core::MessageMultiplicity multiplicity_from_string(const std::string& name) {
  if (name == "faithful") return core::MessageMultiplicity::kFaithful;
  if (name == "light") return core::MessageMultiplicity::kLight;
  std::fprintf(
      stderr,
      "error: --mult=%s is not a valid multiplicity (faithful|light)\n",
      name.c_str());
  std::exit(2);
}

const char* multiplicity_name(core::MessageMultiplicity mult) {
  return mult == core::MessageMultiplicity::kFaithful ? "faithful" : "light";
}

}  // namespace ssle::analysis
