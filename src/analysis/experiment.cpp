#include "analysis/experiment.hpp"

#include <algorithm>
#include <cmath>
#include <iostream>
#include <thread>

#include "util/thread_pool.hpp"

namespace ssle::analysis {

namespace {

/// Folds the raw per-trial values (in seed order) into a SweepResult.
/// Shared by both runners so serial and parallel sweeps classify and
/// aggregate identically: the samples vector, and therefore every summary
/// statistic, is bit-identical between them.
SweepResult aggregate(const std::vector<double>& values) {
  SweepResult res;
  res.samples.reserve(values.size());
  for (const double value : values) {
    if (!std::isfinite(value) || value < 0.0) {
      ++res.failures;
    } else {
      res.samples.push_back(value);
    }
  }
  res.summary = util::summarize(res.samples);
  return res;
}

}  // namespace

std::size_t resolve_jobs(std::size_t jobs) {
  if (jobs != 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

std::size_t effective_jobs(std::size_t jobs, std::size_t trials) {
  return std::min(resolve_jobs(jobs), std::max<std::size_t>(trials, 1));
}

SweepResult parallel_sweep(std::uint64_t base_seed, std::size_t trials,
                           const std::function<double(std::uint64_t)>& measure,
                           std::size_t jobs) {
  std::vector<double> values(trials);
  jobs = std::min(resolve_jobs(jobs), trials);
  if (jobs <= 1) {
    for (std::size_t t = 0; t < trials; ++t) {
      values[t] = measure(base_seed + t);
    }
  } else {
    // util::ThreadPool claims trial indices from one atomic counter, just
    // as the historical inline pool did, and the calling thread counts as
    // one of the `jobs` executors.  Values land in seed order regardless of
    // which thread ran which trial, so the SweepResult is bit-identical to
    // sweep()'s; the first trial exception is rethrown here after the
    // drain, matching the jobs == 1 path's error behavior.
    util::ThreadPool pool(jobs - 1);
    pool.run_indexed(trials, [&](std::size_t t) {
      values[t] = measure(base_seed + t);
    });
  }
  return aggregate(values);
}

SweepResult sweep(std::uint64_t base_seed, std::size_t trials,
                  const std::function<double(std::uint64_t)>& measure) {
  return parallel_sweep(base_seed, trials, measure, /*jobs=*/1);
}

void print_banner(const std::string& experiment_id, const std::string& claim,
                  const std::string& prediction) {
  std::cout << "==============================================================="
               "=================\n"
            << "Experiment " << experiment_id << '\n'
            << "Claim:      " << claim << '\n'
            << "Prediction: " << prediction << '\n'
            << "==============================================================="
               "=================\n";
}

}  // namespace ssle::analysis
