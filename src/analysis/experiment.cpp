#include "analysis/experiment.hpp"

#include <iostream>

namespace ssle::analysis {

SweepResult sweep(std::uint64_t base_seed, std::size_t trials,
                  const std::function<double(std::uint64_t)>& measure) {
  SweepResult res;
  res.samples.reserve(trials);
  for (std::size_t t = 0; t < trials; ++t) {
    const double value = measure(base_seed + t);
    if (value < 0.0) {
      ++res.failures;
    } else {
      res.samples.push_back(value);
    }
  }
  res.summary = util::summarize(res.samples);
  return res;
}

void print_banner(const std::string& experiment_id, const std::string& claim,
                  const std::string& prediction) {
  std::cout << "==============================================================="
               "=================\n"
            << "Experiment " << experiment_id << '\n'
            << "Claim:      " << claim << '\n'
            << "Prediction: " << prediction << '\n'
            << "==============================================================="
               "=================\n";
}

}  // namespace ssle::analysis
