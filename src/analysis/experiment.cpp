#include "analysis/experiment.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <exception>
#include <iostream>
#include <mutex>
#include <thread>

namespace ssle::analysis {

namespace {

/// Folds the raw per-trial values (in seed order) into a SweepResult.
/// Shared by both runners so serial and parallel sweeps classify and
/// aggregate identically: the samples vector, and therefore every summary
/// statistic, is bit-identical between them.
SweepResult aggregate(const std::vector<double>& values) {
  SweepResult res;
  res.samples.reserve(values.size());
  for (const double value : values) {
    if (!std::isfinite(value) || value < 0.0) {
      ++res.failures;
    } else {
      res.samples.push_back(value);
    }
  }
  res.summary = util::summarize(res.samples);
  return res;
}

}  // namespace

std::size_t resolve_jobs(std::size_t jobs) {
  if (jobs != 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

std::size_t effective_jobs(std::size_t jobs, std::size_t trials) {
  return std::min(resolve_jobs(jobs), std::max<std::size_t>(trials, 1));
}

SweepResult parallel_sweep(std::uint64_t base_seed, std::size_t trials,
                           const std::function<double(std::uint64_t)>& measure,
                           std::size_t jobs) {
  std::vector<double> values(trials);
  jobs = std::min(resolve_jobs(jobs), trials);
  if (jobs <= 1) {
    for (std::size_t t = 0; t < trials; ++t) {
      values[t] = measure(base_seed + t);
    }
  } else {
    std::atomic<std::size_t> next{0};
    // First exception thrown by any trial, rethrown on the calling thread
    // after the join so error behavior matches the jobs == 1 path.
    std::exception_ptr error;
    std::mutex error_mutex;
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (std::size_t j = 0; j < jobs; ++j) {
      pool.emplace_back([&] {
        for (;;) {
          const std::size_t t = next.fetch_add(1, std::memory_order_relaxed);
          if (t >= trials) return;
          try {
            values[t] = measure(base_seed + t);
          } catch (...) {
            {
              const std::lock_guard<std::mutex> lock(error_mutex);
              if (!error) error = std::current_exception();
            }
            // Drain the queue so the other workers stop picking up trials
            // and the rethrow below is not delayed by remaining work.
            next.store(trials, std::memory_order_relaxed);
            return;
          }
        }
      });
    }
    for (auto& worker : pool) worker.join();
    if (error) std::rethrow_exception(error);
  }
  return aggregate(values);
}

SweepResult sweep(std::uint64_t base_seed, std::size_t trials,
                  const std::function<double(std::uint64_t)>& measure) {
  return parallel_sweep(base_seed, trials, measure, /*jobs=*/1);
}

void print_banner(const std::string& experiment_id, const std::string& claim,
                  const std::string& prediction) {
  std::cout << "==============================================================="
               "=================\n"
            << "Experiment " << experiment_id << '\n'
            << "Claim:      " << claim << '\n'
            << "Prediction: " << prediction << '\n'
            << "==============================================================="
               "=================\n";
}

}  // namespace ssle::analysis
