// Seed-sweep experiment driver: runs a measurement across independent
// seeds and aggregates summary statistics.  Used by every bench binary.
//
// Two runners share one contract:
//   * sweep()          — serial reference implementation,
//   * parallel_sweep() — thread-pool runner fanning the per-seed trials
//                        across cores.
// Each trial is a pure function of its seed, and parallel_sweep collects
// the per-trial values back into seed order before aggregating, so its
// SweepResult is bit-identical to sweep()'s for any jobs count.
//
// A trial fails when the measurement returns a negative value (the
// did-not-converge convention) or any non-finite value (NaN/±inf): failed
// trials are counted in `failures` and excluded from the samples, never
// silently folded into the mean.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/stats.hpp"

namespace ssle::analysis {

struct SweepResult {
  util::Summary summary;        ///< of the per-seed measurements
  std::size_t failures = 0;     ///< trials that failed (negative/non-finite)
  std::vector<double> samples;  ///< converged samples only
};

/// Runs `measure(seed)` for `trials` consecutive seeds starting at
/// `base_seed`; a negative or non-finite return marks a failed trial.
SweepResult sweep(std::uint64_t base_seed, std::size_t trials,
                  const std::function<double(std::uint64_t)>& measure);

/// Thread-pool variant of sweep(): fans the trials across `jobs` worker
/// threads (jobs == 0 → std::thread::hardware_concurrency()).  `measure`
/// is called concurrently from multiple threads and must not mutate
/// shared state without synchronization.  Results are identical to
/// sweep() for every jobs value.
SweepResult parallel_sweep(std::uint64_t base_seed, std::size_t trials,
                           const std::function<double(std::uint64_t)>& measure,
                           std::size_t jobs);

/// Resolves a `--jobs` CLI value: 0 (the flag's conventional default)
/// means "all hardware threads"; anything else is used as given.
std::size_t resolve_jobs(std::size_t jobs);

/// The worker count parallel_sweep actually uses for `trials` trials:
/// resolve_jobs(jobs) clamped to the trial count (at least 1).  Banners
/// should print this, not the unclamped resolution.
std::size_t effective_jobs(std::size_t jobs, std::size_t trials);

/// Standard experiment banner printed by every bench binary.
void print_banner(const std::string& experiment_id, const std::string& claim,
                  const std::string& prediction);

}  // namespace ssle::analysis
