// Seed-sweep experiment driver: runs a measurement across independent
// seeds and aggregates summary statistics.  Used by every bench binary.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/stats.hpp"

namespace ssle::analysis {

struct SweepResult {
  util::Summary summary;        ///< of the per-seed measurements
  std::size_t failures = 0;     ///< seeds that did not converge in budget
  std::vector<double> samples;  ///< converged samples only
};

/// Runs `measure(seed)` for `trials` consecutive seeds starting at
/// `base_seed`; a negative return marks a failed (non-converged) trial.
SweepResult sweep(std::uint64_t base_seed, std::size_t trials,
                  const std::function<double(std::uint64_t)>& measure);

/// Standard experiment banner printed by every bench binary.
void print_banner(const std::string& experiment_id, const std::string& claim,
                  const std::string& prediction);

}  // namespace ssle::analysis
