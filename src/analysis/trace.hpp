// Phase-timeline tracing: samples a census at fixed probe intervals and
// derives phase milestones (first all-ranker, first verifier, first
// all-verifier, first safe) plus reset-wave counts.  Gives experiments and
// debugging sessions a compact view of *where the time goes* inside
// ElectLeader_r (ranking vs countdown vs verification).
//
// record() accepts agent vectors (naive engine) and counts registries
// (batched/leaping/lumped engines); the counts overloads take their census
// and safety probe counts-natively (analysis/census.hpp, core/safety.hpp),
// so tracing at n = 10^6+ never expands a per-agent configuration while
// the run is unsafe.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/census.hpp"
#include "core/params.hpp"

namespace ssle::analysis {

struct TracePoint {
  std::uint64_t interactions = 0;
  Census census;
};

class Trace {
 public:
  explicit Trace(core::Params params) : params_(std::move(params)) {}

  /// Records one probe.
  void record(std::uint64_t interactions,
              const std::vector<core::Agent>& config);
  void record(std::uint64_t interactions,
              const pp::CountsConfiguration<core::ElectLeader>& counts);
  void record(std::uint64_t interactions,
              const pp::CommunityCountsConfiguration<core::ElectLeader>& counts);

  const std::vector<TracePoint>& points() const { return points_; }

  // --- Milestones (probe-granular; nullopt if never reached) --------------
  std::optional<std::uint64_t> first_verifier() const;
  std::optional<std::uint64_t> all_verifiers() const;
  std::optional<std::uint64_t> first_safe() const;
  /// Number of distinct reset waves observed (probes where resetters
  /// appear after a probe without any).
  std::uint32_t reset_waves() const;

  /// Multi-line human-readable phase summary.
  std::string summary() const;

 private:
  core::Params params_;
  std::vector<TracePoint> points_;
  std::vector<bool> safe_;  ///< per-point safety flag
};

}  // namespace ssle::analysis
