// Stabilization / convergence measurement for ElectLeader_r and baselines.
//
// Every experiment funnels through ONE engine-generic entry point:
//
//   stabilize(engine, start, params, [corruption,] seed, budget)
//
// with engine ∈ {naive, batched} × start ∈ {clean, adversarial} — the full
// measurement matrix of the paper (clean-start convergence, Theorem 1.1;
// recovery from arbitrary corruption, Lemma 6.3).  The batched adversarial
// path projects core::make_adversarial_config through the counts
// representation (the per-agent array is counted into state classes and
// discarded), so every adversarial figure can run on the batched engine at
// n = 10^5+ instead of being stuck at naive-engine scale.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/adversary.hpp"
#include "core/agent.hpp"
#include "core/elect_leader.hpp"
#include "core/params.hpp"
#include "obs/metrics.hpp"
#include "pp/graph.hpp"
#include "pp/simulator.hpp"

namespace ssle::obs {
class Journal;
}  // namespace ssle::obs

namespace ssle::analysis {

class Trace;

struct StabilizationResult {
  bool converged = false;
  std::uint64_t interactions = 0;
  double parallel_time = 0.0;
  std::uint32_t leaders = 0;  ///< leader count at the end
  /// Engine counter snapshot at the end of the run (obs/metrics.hpp):
  /// which engine actually ran (after routing), and what it did.
  obs::EngineMetrics metrics;
};

/// Observability hooks for stabilize(): evaluated at the same probe grid as
/// the safe predicate, on whichever engine the request routes to.  The
/// trace records a counts-native census + safety flag per probe (O(q) while
/// the run is unsafe — affordable at n = 10^6+ on the counts engines); the
/// journal emits heartbeat events with the engine's live counters.  Both
/// are optional and may be combined; `probe_every` of 0 keeps the engines'
/// default probe grid (n interactions).
struct ProbeOptions {
  Trace* trace = nullptr;
  obs::Journal* journal = nullptr;
  std::uint64_t probe_every = 0;
  /// Crash-safe checkpointing (obs/checkpoint.hpp), counts engines only:
  /// when checkpoint_path is nonempty and checkpoint_every > 0, the engine
  /// atomically saves a checkpoint every checkpoint_every interactions (on
  /// the probe grid) and resumes from an existing file at the path.  Note
  /// that saving canonicalizes the registry, so a checkpointed run's
  /// trajectory matches OTHER checkpointed runs (in particular its own
  /// kill−9/resume), not an uncheckpointed run.  The naive engine ignores
  /// the request with a loud stderr note (checkpoints are counts-native).
  std::uint64_t checkpoint_every = 0;
  std::string checkpoint_path;
};

/// Which simulation engine a measurement should run on.
/// Graph-restricted workloads (pp::GraphScheduler) are naive-only by
/// design — pp::BatchedSimulator enforces that with a static_assert on
/// its scheduler type.
///
/// kLeaping selects pp::LeapingSimulator where the workload is eligible
/// (deterministic δ AND a narrow registry, pp::LeapEligible).  ElectLeader_r
/// draws randomness in δ and DerandomizedElectLeader keeps q ≈ n distinct
/// states, so neither is leap-eligible: stabilize() and
/// stabilize_derandomized() route kLeaping to the batched engine (the
/// nearest exact engine) rather than failing — `--engine=leaping` is safe
/// to pass to every bench, and pays off on the workloads that can leap
/// (epidemic_convergence below).
///
/// kSharded selects pp::ShardedSimulator: the batched block machinery with
/// one run's blocks fanned out over T shards on a worker pool — exact for
/// any T, bit-identical to kBatched at T = 1.  Uniform (complete-topology)
/// workloads only: blocked topologies reroute loudly to the community
/// batched engine, the ring to naive.
enum class Engine { kNaive, kBatched, kLeaping, kSharded };

/// An engine request: the engine kind plus its parameters (today just the
/// sharded engine's shard count).  Implicitly interconvertible with Engine
/// so existing call sites — `stabilize(Engine::kBatched, ...)`,
/// `switch (engine)`, `engine == Engine::kNaive` — keep working unchanged;
/// only code that must preserve the shard count (CLI plumbing) needs to
/// hold the EngineSpec itself.
struct EngineSpec {
  Engine kind = Engine::kBatched;
  std::size_t shards = 0;  ///< sharded engine: T (0 = default_shard_count())

  EngineSpec() = default;
  /*implicit*/ EngineSpec(Engine k) : kind(k) {}
  EngineSpec(Engine k, std::size_t t) : kind(k), shards(t) {}
  /*implicit*/ operator Engine() const { return kind; }
};

/// Which initial configuration a measurement starts from: the protocol's
/// clean initial configuration, or an adversarial configuration drawn by
/// core::make_adversarial_config (self-stabilization quantifies over
/// arbitrary starts).
enum class StartKind { kClean, kAdversarial };

/// Which interaction topology a measurement runs on.  The Engine × Topology
/// dispatch in stabilize()/epidemic_convergence() routes each combination
/// to an engine that simulates it *exactly*:
///
///   * kComplete      — the classical model; every engine, unchanged paths.
///   * kIslands       — K cliques (intra weight) bridged all-to-all (inter
///                      weight); blocked (pp::BlockedTopology), so naive
///                      runs pp::BlockedScheduler and batched/leaping run
///                      the lumped (community, state) engine
///                      (pp::CommunityCountsConfiguration) — the only
///                      engine for it beyond naive-feasible n.
///   * kMultipartite  — complete K-partite (inter edges only); blocked,
///                      same routing as islands.
///   * kRing          — the cycle graph: NOT blocked (no community lumping
///                      exists — each agent's neighborhood is private), so
///                      only the naive agent-array engine is exact.  A
///                      batched/leaping request routes to naive with a loud
///                      stderr note; population sizes beyond the naive
///                      engine's uint32 limit are a hard error naming the
///                      topology, because no engine supports that point.
struct Topology {
  enum class Kind { kComplete, kIslands, kMultipartite, kRing };
  Kind kind = Kind::kComplete;
  std::uint32_t communities = 1;  ///< K (blocked kinds only)
  double intra = 1.0;             ///< islands intra-community edge weight
  double inter = 0.05;            ///< islands inter-community edge weight
  std::string spec = "complete";  ///< the canonical CLI spelling
};

/// Parses a `--topology=` CLI value:
///   complete | ring | islands:K | islands:K:intra:inter | multipartite:K
/// Exits with a clear error on anything else (K and the weights are
/// validated here; sizes are validated against n by blocked_topology).
Topology topology_from_string(const std::string& spec);
const char* topology_name(const Topology& topology);

/// True when the topology admits the (community, state) lumping — i.e. the
/// counts engines can run it exactly (pp::LumpableTopology is the engine-
/// side concept; this is the analysis-side routing predicate).
bool topology_is_lumpable(const Topology& topology);

/// The pp::BlockedTopology descriptor for a lumpable topology at
/// population size n (exits with a clear error when n is too small for K
/// communities).  Must not be called for kRing — the ring is not blocked.
pp::BlockedTopology blocked_topology(const Topology& topology,
                                     std::uint64_t n);

/// Parses a `--engine=` CLI value
/// ("naive" | "batched" | "leaping" | "sharded" | "sharded:T"); exits with
/// a clear error on anything else.  "sharded" alone picks
/// pp::default_shard_count() shards at run time.
EngineSpec engine_from_string(const std::string& name);
const char* engine_name(Engine engine);

/// Parses a `--start=` CLI value ("clean" | "adversarial"); exits with a
/// clear error on anything else.
StartKind start_from_string(const std::string& name);
const char* start_name(StartKind start);

/// Parses a `--mult=` CLI value ("faithful" | "light"); exits with a
/// clear error on anything else (a typo'd "light" must not silently run
/// the far more expensive faithful sweep).
core::MessageMultiplicity multiplicity_from_string(const std::string& name);
const char* multiplicity_name(core::MessageMultiplicity mult);

/// Runs ElectLeader_r on the chosen engine from the chosen start until the
/// safe predicate holds (or the budget is exhausted).  `corruption` is
/// consulted only for StartKind::kAdversarial; the adversarial
/// configuration is drawn from a seed-derived stream, identically for both
/// engines, so naive and batched runs start from the same distribution
/// (the trajectories themselves agree statistically, never bit-wise).
///
/// Engine guidance: core::Agent hashes, so the batched registry always
/// takes its indexed path, and its Fenwick-indexed block sampling costs
/// O(L·log q) per length-L block even at q ≈ n distinct states — but
/// ElectLeader_r keeps q ≈ n live states (FastLE identifiers, ranks), so
/// counts compress little and per-interaction state copies/hashes remain;
/// bench_parallel_sweep measures the honest wall-clock ratio.  The batched
/// engine is what makes n = 10^5–10^6 rows executable and is strictly
/// preferable for count-compressible workloads.
StabilizationResult stabilize(EngineSpec engine, StartKind start,
                              const core::Params& params,
                              core::Corruption corruption, std::uint64_t seed,
                              std::uint64_t max_interactions,
                              const ProbeOptions& probes = {});

/// Clean-start convenience overload.  Deliberately takes no StartKind:
/// an adversarial measurement must name its corruption class, so there
/// is no way to ask for an adversarial start and silently get kNone.
StabilizationResult stabilize(EngineSpec engine, const core::Params& params,
                              std::uint64_t seed,
                              std::uint64_t max_interactions);

/// Engine × Topology dispatch (see Topology above): runs ElectLeader_r on
/// the chosen topology, with each combination routed to an exact engine.
/// kComplete delegates to the uniform paths unchanged; blocked topologies
/// run BlockedScheduler (naive) or the lumped community engine
/// (batched/leaping — leaping has no community leap path yet and routes to
/// the community batched engine, mirroring its ineligible-protocol
/// routing); kRing is naive-only (loud reroute).  Both engines of a
/// blocked topology start from the same agent→community layout, so their
/// laws agree (pinned by tiny-n TV tests).
StabilizationResult stabilize(EngineSpec engine, StartKind start,
                              const core::Params& params,
                              core::Corruption corruption, std::uint64_t seed,
                              std::uint64_t max_interactions,
                              const Topology& topology,
                              const ProbeOptions& probes = {});

/// Runs core::DerandomizedElectLeader (paper App. B: ElectLeader_r with a
/// *deterministic* transition function) from a clean start on the chosen
/// engine until the safe predicate holds.  On the batched engine the
/// deterministic-δ opt-in routes every interaction through the memoized
/// (id, id) → (id, id) transition cache (pp/delta_cache.hpp) — this is the
/// measurement entry point for that path, used by bench_parallel_sweep §5
/// and the CI smoke.
StabilizationResult stabilize_derandomized(EngineSpec engine,
                                           const core::Params& params,
                                           std::uint64_t seed,
                                           std::uint64_t max_interactions);

/// Runs ElectLeader_r from an explicit per-agent configuration on the
/// naive engine (the building block for mid-run-corruption tests and any
/// measurement that needs agent identity).
StabilizationResult stabilize_from(const core::Params& params,
                                   std::vector<core::Agent> config,
                                   std::uint64_t seed,
                                   std::uint64_t max_interactions,
                                   const ProbeOptions& probes = {});

/// A generous default interaction budget for (n, r):
/// c · (n²/r) · log n, scaled to dominate the protocol's constants.
std::uint64_t default_budget(const core::Params& params);

/// Lemma A.2 acceptance workload: the one-way epidemic from one infected
/// agent, run to full infection on the chosen engine.  Returns the raw
/// RunResult (interactions at the first probe where infection is total).
/// `n` is 64-bit — the leap engine runs this at n = 10^10, beyond the
/// uint32 population sizes of the agent-array engines — so the counts
/// configuration is built directly from {1 infected, n−1 susceptible}
/// (O(1), never an O(n) agent loop).  The naive engine materializes n
/// agents and is rejected (exit 2) above uint32.  `max_interactions` of 0
/// means the standard 64 · n · ⌈log2 n⌉ epidemic budget; `probe_every` of
/// 0 means the engines' default probe grid (n) — pass 1 for exact hit
/// times when fitting constants at small n (bench_f9).
/// The trailing `journal` (when non-null) receives a heartbeat with the
/// engine's counter snapshot at every probe — the cheap way to watch a
/// n = 10^10 leap run make progress.
pp::RunResult epidemic_convergence(EngineSpec engine, std::uint64_t n,
                                   std::uint64_t seed,
                                   std::uint64_t max_interactions = 0,
                                   std::uint64_t probe_every = 0,
                                   obs::Journal* journal = nullptr);

/// Engine × Topology epidemic: one infected agent (agent 0, community 0)
/// run to full infection.  kComplete delegates to the uniform overload;
/// blocked topologies route naive → BlockedScheduler and batched/leaping →
/// the lumped community engine, whose O(K) configuration keeps n = 10^6+
/// feasible (an islands edge list at that n would hold ~5·10^11 edges).
/// kRing runs the cycle graph on the naive engine (batched/leaping reroute
/// loudly; n beyond uint32 is a hard error naming the topology).
/// `max_interactions` of 0 scales the default budget to the topology: the
/// blocked default is 8× the complete-graph 64·n·⌈log2 n⌉ (crossing
/// sparse inter-community cuts), and the ring default is 16·n² (the cycle
/// spreads by boundary contact — Θ(n²) interactions, paper §2 conductance).
pp::RunResult epidemic_convergence(EngineSpec engine, std::uint64_t n,
                                   std::uint64_t seed,
                                   std::uint64_t max_interactions,
                                   std::uint64_t probe_every,
                                   const Topology& topology,
                                   obs::Journal* journal = nullptr);

}  // namespace ssle::analysis
