// Stabilization / convergence measurement for ElectLeader_r and baselines.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/adversary.hpp"
#include "core/agent.hpp"
#include "core/elect_leader.hpp"
#include "core/params.hpp"

namespace ssle::analysis {

struct StabilizationResult {
  bool converged = false;
  std::uint64_t interactions = 0;
  double parallel_time = 0.0;
  std::uint32_t leaders = 0;  ///< leader count at the end
};

/// Runs ElectLeader_r from its clean initial configuration until the safe
/// predicate holds (or the budget is exhausted).
StabilizationResult stabilize_clean(const core::Params& params,
                                    std::uint64_t seed,
                                    std::uint64_t max_interactions);

/// Runs ElectLeader_r from an adversarial configuration of class `c`.
StabilizationResult stabilize_adversarial(const core::Params& params,
                                          core::Corruption c,
                                          std::uint64_t seed,
                                          std::uint64_t max_interactions);

/// Runs ElectLeader_r from an explicit configuration.
StabilizationResult stabilize_from(const core::Params& params,
                                   std::vector<core::Agent> config,
                                   std::uint64_t seed,
                                   std::uint64_t max_interactions);

/// Same measurement as stabilize_clean but on the count-based batched
/// engine (pp/batched_simulator.hpp).  Statistically equivalent to the
/// naive engine.  core::Agent has a std::hash specialization, so the
/// registry takes the O(1) hash-indexed path; but note ElectLeader_r has
/// ≥ n distinct live states once FastLE identifiers are drawn, so the
/// counts compress little for this protocol — the batched engine is the
/// right tool for the uniform-scheduler sweeps at large n where the
/// per-interaction block amortization (no O(n) agent array, no cache
/// misses) dominates, and for cross-validation everywhere.
StabilizationResult stabilize_clean_batched(const core::Params& params,
                                            std::uint64_t seed,
                                            std::uint64_t max_interactions);

/// Which simulation engine a sweep should run ElectLeader_r on.  Graph-
/// restricted workloads (pp::GraphScheduler) are naive-only by design.
enum class Engine { kNaive, kBatched };

/// Parses a `--engine=` CLI value ("naive" | "batched"); exits with a
/// clear error on anything else.
Engine engine_from_string(const std::string& name);
const char* engine_name(Engine engine);

/// Parses a `--mult=` CLI value ("faithful" | "light"); exits with a
/// clear error on anything else (a typo'd "light" must not silently run
/// the far more expensive faithful sweep).
core::MessageMultiplicity multiplicity_from_string(const std::string& name);
const char* multiplicity_name(core::MessageMultiplicity mult);

/// Dispatches stabilize_clean / stabilize_clean_batched on `engine`.
StabilizationResult stabilize_clean_engine(Engine engine,
                                           const core::Params& params,
                                           std::uint64_t seed,
                                           std::uint64_t max_interactions);

/// A generous default interaction budget for (n, r):
/// c · (n²/r) · log n, scaled to dominate the protocol's constants.
std::uint64_t default_budget(const core::Params& params);

}  // namespace ssle::analysis
