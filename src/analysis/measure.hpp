// Stabilization / convergence measurement for ElectLeader_r and baselines.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/adversary.hpp"
#include "core/agent.hpp"
#include "core/elect_leader.hpp"
#include "core/params.hpp"

namespace ssle::analysis {

struct StabilizationResult {
  bool converged = false;
  std::uint64_t interactions = 0;
  double parallel_time = 0.0;
  std::uint32_t leaders = 0;  ///< leader count at the end
};

/// Runs ElectLeader_r from its clean initial configuration until the safe
/// predicate holds (or the budget is exhausted).
StabilizationResult stabilize_clean(const core::Params& params,
                                    std::uint64_t seed,
                                    std::uint64_t max_interactions);

/// Runs ElectLeader_r from an adversarial configuration of class `c`.
StabilizationResult stabilize_adversarial(const core::Params& params,
                                          core::Corruption c,
                                          std::uint64_t seed,
                                          std::uint64_t max_interactions);

/// Runs ElectLeader_r from an explicit configuration.
StabilizationResult stabilize_from(const core::Params& params,
                                   std::vector<core::Agent> config,
                                   std::uint64_t seed,
                                   std::uint64_t max_interactions);

/// Same measurement as stabilize_clean but on the count-based batched
/// engine (pp/batched_simulator.hpp).  Statistically equivalent to the
/// naive engine.  Note: ElectLeader_r has ≥ n distinct live states once
/// ranks spread (and core::Agent uses the registry's linear-scan path),
/// so this is NOT faster than stabilize_clean today — it exists for
/// engine cross-validation at small n; see the ROADMAP item on hashing
/// core::Agent before using it at scale.
StabilizationResult stabilize_clean_batched(const core::Params& params,
                                            std::uint64_t seed,
                                            std::uint64_t max_interactions);

/// A generous default interaction budget for (n, r):
/// c · (n²/r) · log n, scaled to dominate the protocol's constants.
std::uint64_t default_budget(const core::Params& params);

}  // namespace ssle::analysis
