// Live state census: measures the actual footprint of a running
// configuration (message counts, per-role populations, generation spread).
// Complements core/state_size.* (which evaluates the formal state-space
// formulas) with what the simulation actually allocates.
//
// Counts-native overloads read the registries of the counts engines
// directly — O(q log q) per census, never an O(n) agent expansion — so
// phase probes stay affordable on batched/leaping/lumped runs at n = 10^6+.
// They agree field-for-field with the agent-vector census of the same
// multiset (take_census(params, counts.to_states()); pinned by
// tests/test_obs.cpp).  approx_bytes counts the freshly materialized
// footprint (vector capacity == size), matching what to_states() would
// allocate; a long-lived agent array can carry growth slack above that.
#pragma once

#include <cstdint>
#include <vector>

#include "core/agent.hpp"
#include "core/elect_leader.hpp"
#include "core/params.hpp"
#include "pp/community_counts.hpp"
#include "pp/counts.hpp"

namespace ssle::analysis {

struct Census {
  std::uint32_t resetters = 0;
  std::uint32_t rankers = 0;
  std::uint32_t verifiers = 0;
  std::uint32_t leaders = 0;
  std::uint32_t errors = 0;          ///< agents at ⊤
  std::uint64_t total_messages = 0;  ///< circulating messages held
  std::uint64_t approx_bytes = 0;    ///< heap footprint of the configuration
  std::uint32_t distinct_generations = 0;
  std::uint32_t max_rank_multiplicity = 0;
};

Census take_census(const core::Params& params,
                   const std::vector<core::Agent>& config);

/// Counts-native censuses: one pass over the registry's live classes,
/// weighting each class's contribution by its count.
Census take_census(const core::Params& params,
                   const pp::CountsConfiguration<core::ElectLeader>& counts);
Census take_census(
    const core::Params& params,
    const pp::CommunityCountsConfiguration<core::ElectLeader>& counts);

}  // namespace ssle::analysis
