// Live state census: measures the actual footprint of a running
// configuration (message counts, per-role populations, generation spread).
// Complements core/state_size.* (which evaluates the formal state-space
// formulas) with what the simulation actually allocates.
#pragma once

#include <cstdint>
#include <vector>

#include "core/agent.hpp"
#include "core/params.hpp"

namespace ssle::analysis {

struct Census {
  std::uint32_t resetters = 0;
  std::uint32_t rankers = 0;
  std::uint32_t verifiers = 0;
  std::uint32_t leaders = 0;
  std::uint32_t errors = 0;          ///< agents at ⊤
  std::uint64_t total_messages = 0;  ///< circulating messages held
  std::uint64_t approx_bytes = 0;    ///< heap footprint of the configuration
  std::uint32_t distinct_generations = 0;
  std::uint32_t max_rank_multiplicity = 0;
};

Census take_census(const core::Params& params,
                   const std::vector<core::Agent>& config);

}  // namespace ssle::analysis
