// Sustained-churn harness: keeps corrupting random agents while the
// protocol runs and measures availability — the operational consequence of
// self-stabilization (the protocol re-converges after every fault burst,
// forever, without external intervention).
#pragma once

#include <cstdint>

#include "core/adversary.hpp"
#include "core/params.hpp"

namespace ssle::obs {
class Journal;
}  // namespace ssle::obs

namespace ssle::analysis {

struct ChurnSpec {
  /// Interactions between fault bursts (0 = no churn).
  std::uint64_t burst_period = 0;
  /// Agents corrupted per burst (re-randomized via core::random_agent).
  std::uint32_t burst_size = 0;
  /// Total interactions to simulate.
  std::uint64_t horizon = 0;
  /// Interactions between availability probes.
  std::uint64_t probe_every = 0;
  /// Optional run journal (obs/journal.hpp): a heartbeat per probe, so
  /// long soak runs are observable while they churn.
  obs::Journal* journal = nullptr;
};

struct ChurnReport {
  std::uint64_t probes = 0;
  std::uint64_t probes_with_unique_leader = 0;
  std::uint64_t probes_safe = 0;
  std::uint64_t bursts = 0;
  std::uint64_t agents_corrupted = 0;

  /// Fraction of probes with exactly one leader present.
  double leader_availability() const {
    return probes == 0 ? 0.0
                       : static_cast<double>(probes_with_unique_leader) /
                             static_cast<double>(probes);
  }
  /// Fraction of probes in a provably safe configuration.
  double safe_availability() const {
    return probes == 0
               ? 0.0
               : static_cast<double>(probes_safe) / static_cast<double>(probes);
  }
};

/// Runs ElectLeader_r from a safe configuration under the given churn.
ChurnReport run_churn(const core::Params& params, const ChurnSpec& spec,
                      std::uint64_t seed);

}  // namespace ssle::analysis
