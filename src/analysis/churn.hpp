// Fault injection: composable {corrupt, join, leave} schedules run against
// a live protocol, measuring availability and per-cycle recovery time — the
// operational consequence of self-stabilization (the protocol re-converges
// after every fault, forever, without external intervention).
//
// Two layers:
//
//   * ChurnSpec / run_churn — the original naive-engine corruption loop,
//     kept as the independently-written reference law for parity tests.
//
//   * FaultPlan — the engine-generic schedule language.  A plan is a list
//     of FaultRules (action × timing × burst size) plus an optional
//     battery-dropout model, validated hard (exit 2 naming the offending
//     field) and runnable on
//       - the batched counts engine (run_fault_plan_counts): faults are
//         O(log q) registry edits (pp::CountsConfiguration::insert_agent /
//         remove_agent) between blocks, so a churn soak runs at
//         n = 10^5–10^6; counts-native probes; crash-safe checkpoints
//         (obs/checkpoint.hpp) with the full fault cursor on board;
//       - the naive agent-array engine (run_fault_plan_naive): an
//         independent twin over std::vector<State>, used to pin the counts
//         runner's law at tiny n (TV-distance tests).
//
// Timing kinds:
//   periodic — fire every `period` interactions;
//   poisson  — exponential inter-event gaps with mean `period` (memoryless
//              background churn);
//   recovery — the adversarial schedule: fire at every probe that reports a
//              SAFE configuration, i.e. re-fault the protocol the moment it
//              has provably recovered (worst-case sustained pressure).
//
// Battery model (sensor-network dropout): every agent carries a quantized
// charge in {0..levels}, held OUTSIDE the protocol state as a histogram —
// charge is exchangeable across agents, so the histogram is the exact
// lumping.  Every `decay_every` interactions each charged agent loses one
// level with probability `decay_prob`; agents reaching 0 drop out of the
// population.  Joining agents enter fully charged.
//
// Recovery cycles: a cycle opens at the first fault event after a safe
// probe (or after the start) and closes at the next safe probe; its length
// in interactions is one recovery-time sample.  The report carries the full
// sample vector plus nearest-rank quantiles (p50/p95/max) — distributions,
// not just availability fractions.
#pragma once

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/adversary.hpp"
#include "core/params.hpp"
#include "analysis/measure.hpp"
#include "obs/checkpoint.hpp"
#include "obs/journal.hpp"
#include "pp/batched_simulator.hpp"
#include "pp/counts.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace ssle::analysis {

// --- legacy corruption loop (reference law) -------------------------------

struct ChurnSpec {
  /// Interactions between fault bursts (0 = no churn).
  std::uint64_t burst_period = 0;
  /// Agents corrupted per burst (re-randomized via core::random_agent).
  std::uint32_t burst_size = 0;
  /// Total interactions to simulate.
  std::uint64_t horizon = 0;
  /// Interactions between availability probes.
  std::uint64_t probe_every = 0;
  /// Optional run journal (obs/journal.hpp): a heartbeat per probe, so
  /// long soak runs are observable while they churn.
  obs::Journal* journal = nullptr;
};

struct ChurnReport {
  std::uint64_t probes = 0;
  std::uint64_t probes_with_unique_leader = 0;
  std::uint64_t probes_safe = 0;
  std::uint64_t bursts = 0;
  std::uint64_t agents_corrupted = 0;

  /// Fraction of probes with exactly one leader present.
  double leader_availability() const {
    return probes == 0 ? 0.0
                       : static_cast<double>(probes_with_unique_leader) /
                             static_cast<double>(probes);
  }
  /// Fraction of probes in a provably safe configuration.
  double safe_availability() const {
    return probes == 0
               ? 0.0
               : static_cast<double>(probes_safe) / static_cast<double>(probes);
  }
};

/// Rejects an unrunnable spec with exit(2) naming the field: horizon = 0,
/// probe_every = 0 (a churn run that never probes measures nothing), and
/// burst_size > n.
void validate_churn_spec(const ChurnSpec& spec, std::uint64_t n);

/// Runs ElectLeader_r from a safe configuration under the given churn on
/// the naive engine.  Validates the spec first (exit 2 on bad fields).
ChurnReport run_churn(const core::Params& params, const ChurnSpec& spec,
                      std::uint64_t seed);

// --- FaultPlan: the engine-generic schedule language ----------------------

enum class FaultAction { kCorrupt, kJoin, kLeave };
enum class FaultTiming { kPeriodic, kPoisson, kOnRecovery };

struct FaultRule {
  FaultAction action = FaultAction::kCorrupt;
  FaultTiming timing = FaultTiming::kPeriodic;
  /// kPeriodic: interactions between events.  kPoisson: MEAN interaction
  /// gap (exponential).  Unused (0) for kOnRecovery.
  std::uint64_t period = 0;
  /// Agents affected per event (the burst size).
  std::uint64_t count = 1;
};

/// Quantized per-agent charge decay (sensor-network dropout).  Disabled
/// when levels == 0.
struct BatteryModel {
  std::uint32_t levels = 0;      ///< charge quantization (agents start full)
  std::uint64_t decay_every = 0; ///< interactions between decay ticks
  double decay_prob = 1.0;       ///< per-agent decrement chance per tick
};

struct FaultPlan {
  std::vector<FaultRule> rules;
  BatteryModel battery;
  /// Total interactions to simulate.
  std::uint64_t horizon = 0;
  /// Interactions between safety probes (the availability / recovery grid).
  std::uint64_t probe_every = 0;
};

/// Parses the --schedule grammar (comma-separated rules):
///
///   corrupt|join|leave : periodic|poisson : <period> : <count>
///   corrupt|join|leave : recovery : <count>
///   battery : <levels> : <decay_every> [ : <decay_prob> ]
///
/// e.g. "corrupt:recovery:8,leave:periodic:5000:4,join:periodic:5000:4".
/// Exits with code 2 (naming the bad part) on anything else.  The returned
/// plan still needs validate_fault_plan against the population size.
FaultPlan parse_fault_plan(const std::string& spec, std::uint64_t horizon,
                           std::uint64_t probe_every);

/// Hard validation, exit(2) naming the field: horizon = 0, probe_every = 0,
/// zero periods/means/counts, corrupt bursts larger than the population,
/// leave bursts that would drop the (initial) population below 2, and
/// malformed battery models.  Runners call this before starting; the leave
/// guard is re-checked dynamically as the population moves.
void validate_fault_plan(const FaultPlan& plan, std::uint64_t n);

/// One fault-plan run's outcome.  Availability is probe-grid-based like
/// ChurnReport; recovery_times holds one sample per completed cycle.
struct FaultReport {
  std::uint64_t probes = 0;
  std::uint64_t probes_safe = 0;
  std::uint64_t probes_with_unique_leader = 0;
  std::uint64_t events = 0;  ///< fault events executed (bursts, not agents)
  std::uint64_t agents_corrupted = 0;
  std::uint64_t agents_joined = 0;
  std::uint64_t agents_left = 0;
  std::uint64_t agents_drained = 0;  ///< battery deaths
  std::uint64_t interactions = 0;    ///< where the run stopped
  std::uint64_t final_population = 0;
  /// Order-sensitive FNV fingerprint of the final canonical registry
  /// ((state hash, count) in id order) — counts runner only.  Two runs of
  /// the SAME binary that followed the same trajectory match; it is not a
  /// portable digest.  The CI kill−9/resume smoke compares it.
  std::uint64_t registry_fingerprint = 0;
  bool completed = false;  ///< horizon reached (false: wall-clock stop)
  bool resumed = false;    ///< this run restored a checkpoint
  /// Completed recovery cycles, in interactions (see file header).
  std::vector<std::uint64_t> recovery_times;
  /// Final engine counter snapshot (registry gauges drive the soak gate's
  /// bounded-allocation check).  Process-local: NOT checkpointed — a
  /// resumed run's counters restart at the resume point.
  obs::EngineMetrics metrics;

  double safe_availability() const {
    return probes == 0
               ? 0.0
               : static_cast<double>(probes_safe) / static_cast<double>(probes);
  }
  double leader_availability() const {
    return probes == 0 ? 0.0
                       : static_cast<double>(probes_with_unique_leader) /
                             static_cast<double>(probes);
  }
  /// Nearest-rank quantile of recovery_times (q in [0, 1]; 1 = max).
  /// 0 when no cycle completed.
  std::uint64_t recovery_quantile(double q) const;
  util::Json to_json() const;
};

/// Knobs shared by the fault runners.  Checkpointing is counts-native: the
/// naive runner rejects a checkpoint request (exit 2).
struct FaultRunOptions {
  obs::Journal* journal = nullptr;
  /// Crash-safe checkpoint file (empty = no checkpointing).  When set, a
  /// checkpoint (engine + fault cursor) is written atomically every
  /// `checkpoint_every` interactions at the probe grid, and an existing
  /// file at the path is resumed from (bit-identically) unless `resume`
  /// is false.
  std::string checkpoint_path;
  std::uint64_t checkpoint_every = 0;
  bool resume = true;
  /// Wall-clock budget checked at probes (0 = unlimited).  On expiry the
  /// run checkpoints (if enabled) and returns with completed = false.
  double max_wall_seconds = 0.0;
};

/// How a fault plan touches a specific protocol: the state drawn into a
/// corrupted slot, the state of a joining agent, and the probe predicates.
/// encode/decode are the per-state checkpoint codec (leave empty to run
/// without checkpoint support); unique_leader may be empty for leaderless
/// protocols.
template <pp::Protocol P>
struct FaultModel {
  using State = typename P::State;
  std::function<State(util::Rng&)> corrupt_state;
  std::function<State()> join_state;
  std::function<bool(const pp::CountsConfiguration<P>&)> safe;
  std::function<bool(const pp::CountsConfiguration<P>&)> unique_leader;
  std::function<std::string(const State&)> encode;
  std::function<std::optional<State>(const std::string&)> decode;
  std::string label = "protocol";
};

/// The naive twin's view: identical knobs over the agent array.
template <pp::Protocol P>
struct NaiveFaultModel {
  using State = typename P::State;
  std::function<State(util::Rng&)> corrupt_state;
  std::function<State()> join_state;
  std::function<bool(const std::vector<State>&)> safe;
  std::function<bool(const std::vector<State>&)> unique_leader;
};

/// Runs ElectLeader_r from a safe configuration under `plan` on the chosen
/// engine.  kBatched is the native path (counts edits + counts probes +
/// checkpoints); kNaive is the reference twin; kLeaping and kSharded
/// reroute loudly to kBatched (fault injection mutates the population
/// between blocks, which only the single-engine batched path supports).
FaultReport run_fault_plan(EngineSpec engine, const core::Params& params,
                           const FaultPlan& plan, std::uint64_t seed,
                           const FaultRunOptions& opts = {});

// --- implementation machinery (shared by the template runners) ------------

/// Sentinel "this rule is not scheduled" time.
inline constexpr std::uint64_t kFaultNever = ~std::uint64_t{0};

/// Serializable mid-run state of a fault-plan run: everything the future
/// of the schedule depends on beyond the engine itself.  Travels as the
/// opaque `cursor` member of obs::CheckpointDoc.
struct FaultCursor {
  std::uint64_t t = 0;
  std::uint64_t last_checkpoint = 0;
  bool in_cycle = false;
  std::uint64_t cycle_start = 0;
  std::array<std::uint64_t, 4> fault_rng{};
  std::vector<std::uint64_t> next;     ///< per-rule next fire time
  std::vector<std::uint64_t> battery;  ///< charge histogram (empty = off)
  FaultReport report;                  ///< counters + recovery samples so far
};

util::Json fault_cursor_to_json(const FaultCursor& cur);
std::optional<FaultCursor> fault_cursor_from_json(const util::Json& j);

[[noreturn]] void fault_plan_die(const std::string& message);

/// Exponential inter-event gap with the given mean, quantized to >= 1
/// interaction (the poisson timing's gap law).
inline std::uint64_t poisson_gap(util::Rng& rng, std::uint64_t mean) {
  const double g =
      -std::log(1.0 - rng.real()) * static_cast<double>(mean);
  if (!(g < 9.0e18)) return static_cast<std::uint64_t>(9.0e18);
  return std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(g)));
}

/// Order-sensitive FNV-1a fingerprint of a counts registry in id order.
/// Stable within one binary only (std::hash is not portable) — a
/// trajectory-comparison aid, not a digest.
template <pp::Protocol P>
std::uint64_t registry_fingerprint(const pp::CountsConfiguration<P>& cfg) {
  std::uint64_t h = 1469598103934665603ull;
  cfg.for_each([&](const typename P::State& s, std::uint64_t c) {
    h ^= std::hash<typename P::State>{}(s);
    h *= 1099511628211ull;
    h ^= c;
    h *= 1099511628211ull;
  });
  return h;
}

namespace detail {

/// Draws exponential/periodic initial fire times for every rule.
inline void arm_rules(const FaultPlan& plan, util::Rng& fault_rng,
                      std::vector<std::uint64_t>* next) {
  next->assign(plan.rules.size(), kFaultNever);
  for (std::size_t i = 0; i < plan.rules.size(); ++i) {
    switch (plan.rules[i].timing) {
      case FaultTiming::kPeriodic:
        (*next)[i] = plan.rules[i].period;
        break;
      case FaultTiming::kPoisson:
        (*next)[i] = poisson_gap(fault_rng, plan.rules[i].period);
        break;
      case FaultTiming::kOnRecovery:
        break;  // fires off the probe grid, not the clock
    }
  }
}

/// The earliest scheduled instant strictly after `t`: rule timers plus the
/// battery decay grid.  kFaultNever when nothing is scheduled.
inline std::uint64_t next_fault_time(const FaultPlan& plan,
                                     const std::vector<std::uint64_t>& next,
                                     std::uint64_t t) {
  std::uint64_t e = kFaultNever;
  for (const std::uint64_t nx : next) e = std::min(e, nx);
  if (plan.battery.levels > 0) {
    e = std::min(e, (t / plan.battery.decay_every + 1) *
                        plan.battery.decay_every);
  }
  return e;
}

/// Exact binomial(trials, p) via per-trial Bernoulli draws; p >= 1 is the
/// deterministic (and draw-free) fast path the default battery uses.
inline std::uint64_t binomial_draw(util::Rng& rng, std::uint64_t trials,
                                   double p) {
  if (p >= 1.0) return trials;
  std::uint64_t d = 0;
  for (std::uint64_t k = 0; k < trials; ++k) d += rng.real() < p ? 1 : 0;
  return d;
}

/// Removes one uniformly-random charge from the histogram (the battery of
/// an agent leaving the population; charge is exchangeable across agents).
inline void battery_remove_random(std::vector<std::uint64_t>* hist,
                                  util::Rng& rng) {
  std::uint64_t total = 0;
  for (const std::uint64_t c : *hist) total += c;
  if (total == 0) return;
  std::uint64_t pos = rng.below(total);
  for (auto& c : *hist) {
    if (pos < c) {
      --c;
      return;
    }
    pos -= c;
  }
}

}  // namespace detail

/// The counts-native fault runner: `plan` against a pp::BatchedSimulator
/// over `start`.  Faults are O(log q) registry edits between blocks; the
/// engine re-reads the population per block, so n may drift freely (the
/// block envelope, scheduler weights and metrics all track the live n).
/// See the file header for cycle semantics and FaultRunOptions for
/// checkpointing.  `final_out` (optional) receives the final configuration
/// — the tiny-n TV parity tests compare its law against the naive twin's.
template <pp::Protocol P>
FaultReport run_fault_plan_counts(
    const P& protocol, pp::CountsConfiguration<P> start,
    const FaultPlan& plan, std::uint64_t seed, const FaultModel<P>& model,
    const FaultRunOptions& opts = {},
    pp::CountsConfiguration<P>* final_out = nullptr) {
  validate_fault_plan(plan, start.population_size());
  const std::uint64_t n0 = start.population_size();
  pp::BatchedSimulator<P> sim(protocol, std::move(start), seed);
  util::Rng fault_rng(util::substream(seed, 3));

  const bool want_ckpt = !opts.checkpoint_path.empty();
  if (want_ckpt && !(model.encode && model.decode)) {
    fault_plan_die("checkpointing requested but the protocol model has no "
                   "state codec (field: checkpoint_path)");
  }
  if (want_ckpt && opts.checkpoint_every == 0) {
    fault_plan_die("checkpoint_every must be positive when a checkpoint "
                   "path is set (field: checkpoint_every)");
  }

  FaultCursor cur;
  if (plan.battery.levels > 0) {
    cur.battery.assign(plan.battery.levels + 1, 0);
    cur.battery[plan.battery.levels] = n0;
  }

  bool resumed = false;
  if (want_ckpt && opts.resume) {
    if (auto doc = obs::checkpoint_load(opts.checkpoint_path)) {
      if (!doc->cursor) {
        fault_plan_die("checkpoint at " + opts.checkpoint_path +
                       " carries no fault cursor (not a fault-plan "
                       "checkpoint)");
      }
      auto restored = fault_cursor_from_json(*doc->cursor);
      if (!restored || restored->next.size() != plan.rules.size() ||
          restored->t != doc->interactions ||
          (plan.battery.levels > 0) !=
              (restored->battery.size() == plan.battery.levels + 1u)) {
        fault_plan_die("checkpoint at " + opts.checkpoint_path +
                       " has a fault cursor inconsistent with this plan");
      }
      if (!obs::restore_checkpoint(sim, *doc, model.label, model.decode)) {
        fault_plan_die("checkpoint at " + opts.checkpoint_path +
                       " does not restore into this engine/protocol");
      }
      cur = std::move(*restored);
      fault_rng.set_state(cur.fault_rng);
      resumed = true;
    }
  }
  if (!resumed) detail::arm_rules(plan, fault_rng, &cur.next);
  FaultReport& report = cur.report;
  report.resumed = resumed;

  const auto wall_start = std::chrono::steady_clock::now();

  const auto start_cycle = [&](std::uint64_t t) {
    if (!cur.in_cycle) {
      cur.in_cycle = true;
      cur.cycle_start = t;
    }
  };

  const auto apply_rule = [&](const FaultRule& rule, std::uint64_t t) {
    auto& cfg = sim.config();
    ++report.events;
    switch (rule.action) {
      case FaultAction::kCorrupt:
        for (std::uint64_t k = 0; k < rule.count; ++k) {
          const std::uint64_t live = cfg.population_size();
          const std::uint32_t idx = cfg.sample_class(fault_rng.below(live));
          cfg.remove_agent(idx);
          cfg.insert_agent(model.corrupt_state(fault_rng));
          ++report.agents_corrupted;
        }
        break;
      case FaultAction::kJoin:
        for (std::uint64_t k = 0; k < rule.count; ++k) {
          cfg.insert_agent(model.join_state());
          if (!cur.battery.empty()) ++cur.battery[plan.battery.levels];
          ++report.agents_joined;
        }
        break;
      case FaultAction::kLeave:
        for (std::uint64_t k = 0; k < rule.count; ++k) {
          const std::uint64_t live = cfg.population_size();
          if (live <= 2) {
            fault_plan_die("leave event would reduce the population below 2 "
                           "(field: count)");
          }
          cfg.remove_agent(cfg.sample_class(fault_rng.below(live)));
          if (!cur.battery.empty()) {
            detail::battery_remove_random(&cur.battery, fault_rng);
          }
          ++report.agents_left;
        }
        break;
    }
    start_cycle(t);
  };

  const auto battery_tick = [&](std::uint64_t t) {
    auto& hist = cur.battery;
    for (std::uint32_t l = 1; l <= plan.battery.levels; ++l) {
      const std::uint64_t d =
          detail::binomial_draw(fault_rng, hist[l], plan.battery.decay_prob);
      hist[l] -= d;
      hist[l - 1] += d;
    }
    const std::uint64_t deaths = hist[0];
    if (deaths == 0) return;
    auto& cfg = sim.config();
    if (cfg.population_size() < deaths + 2) {
      fault_plan_die("battery dropout would reduce the population below 2 "
                     "(field: levels)");
    }
    for (std::uint64_t k = 0; k < deaths; ++k) {
      cfg.remove_agent(
          cfg.sample_class(fault_rng.below(cfg.population_size())));
    }
    hist[0] = 0;
    report.agents_drained += deaths;
    ++report.events;
    start_cycle(t);
  };

  const auto save_checkpoint = [&] {
    cur.fault_rng = fault_rng.state();
    auto doc = obs::make_checkpoint(sim, model.label, model.encode);
    doc.cursor = fault_cursor_to_json(cur);
    if (!obs::checkpoint_save(opts.checkpoint_path, doc)) {
      std::fprintf(stderr,
                   "error: fault plan: checkpoint write to %s failed\n",
                   opts.checkpoint_path.c_str());
      std::exit(1);
    }
    if (opts.journal) {
      auto payload = util::Json::object();
      payload.set("t", static_cast<std::int64_t>(cur.t));
      payload.set("path", opts.checkpoint_path);
      opts.journal->event("checkpoint", std::move(payload));
    }
  };

  bool wall_expired = false;
  while (cur.t < plan.horizon && !wall_expired) {
    const std::uint64_t next_probe =
        (cur.t / plan.probe_every + 1) * plan.probe_every;
    const std::uint64_t next_event =
        detail::next_fault_time(plan, cur.next, cur.t);
    const std::uint64_t stop =
        std::min({plan.horizon, next_probe, next_event});
    if (stop > cur.t) sim.step(stop - cur.t);
    cur.t = stop;

    // Faults due now run BEFORE the probe at the same instant (matching
    // the legacy run_churn ordering: burst, then probe).
    for (std::size_t i = 0; i < plan.rules.size(); ++i) {
      if (cur.next[i] != cur.t) continue;
      const FaultRule& rule = plan.rules[i];
      apply_rule(rule, cur.t);
      cur.next[i] = rule.timing == FaultTiming::kPeriodic
                        ? cur.t + rule.period
                        : cur.t + poisson_gap(fault_rng, rule.period);
    }
    if (plan.battery.levels > 0 &&
        cur.t % plan.battery.decay_every == 0) {
      battery_tick(cur.t);
    }

    if (cur.t % plan.probe_every == 0) {
      ++report.probes;
      const auto& cfg = sim.config();
      const bool safe = model.safe(cfg);
      report.probes_safe += safe ? 1 : 0;
      if (model.unique_leader) {
        report.probes_with_unique_leader += model.unique_leader(cfg) ? 1 : 0;
      }
      if (safe && cur.in_cycle) {
        report.recovery_times.push_back(cur.t - cur.cycle_start);
        cur.in_cycle = false;
      }
      if (safe) {
        for (std::size_t i = 0; i < plan.rules.size(); ++i) {
          if (plan.rules[i].timing == FaultTiming::kOnRecovery) {
            apply_rule(plan.rules[i], cur.t);
          }
        }
      }
      if (opts.journal) opts.journal->tick(cur.t, sim.metrics());
      if (opts.max_wall_seconds > 0.0) {
        const double elapsed = std::chrono::duration<double>(
                                   std::chrono::steady_clock::now() -
                                   wall_start)
                                   .count();
        wall_expired = elapsed >= opts.max_wall_seconds;
      }
      if (want_ckpt && (cur.t - cur.last_checkpoint >= opts.checkpoint_every ||
                        (wall_expired && cur.t > cur.last_checkpoint))) {
        cur.last_checkpoint = cur.t;
        save_checkpoint();
      }
    }
  }

  // Final checkpoint, so a re-invocation of a finished soak resumes to a
  // no-op instead of rerunning.  (Saving canonicalizes — do it before the
  // fingerprint so full and resumed runs fingerprint the same layout.)
  if (want_ckpt && !wall_expired && cur.t > cur.last_checkpoint) {
    cur.last_checkpoint = cur.t;
    save_checkpoint();
  }

  report.completed = cur.t >= plan.horizon;
  report.interactions = cur.t;
  report.final_population = sim.config().population_size();
  report.registry_fingerprint = registry_fingerprint(sim.config());
  report.metrics = sim.metrics();
  if (final_out) *final_out = sim.config();
  return report;
}

/// The naive twin: the same plan semantics over a per-agent array with a
/// hand-rolled uniform ordered-pair scheduler — written independently of
/// the counts runner so tiny-n TV tests pin the two laws against each
/// other.  No checkpoint support (counts-native only; a request exits 2).
template <pp::Protocol P>
FaultReport run_fault_plan_naive(
    const P& protocol, std::vector<typename P::State> config,
    const FaultPlan& plan, std::uint64_t seed,
    const NaiveFaultModel<P>& model, const FaultRunOptions& opts = {},
    std::vector<typename P::State>* final_out = nullptr) {
  validate_fault_plan(plan, config.size());
  if (!opts.checkpoint_path.empty()) {
    fault_plan_die("checkpointing is counts-native; run the fault plan on "
                   "--engine=batched (field: checkpoint_path)");
  }
  util::Rng sched_rng(util::substream(seed, 1));
  util::Rng agent_rng(util::substream(seed, 2));
  util::Rng fault_rng(util::substream(seed, 3));

  FaultCursor cur;
  detail::arm_rules(plan, fault_rng, &cur.next);
  // Per-agent batteries, aligned with `config` (swap-removed together).
  std::vector<std::uint32_t> battery;
  if (plan.battery.levels > 0) {
    battery.assign(config.size(), plan.battery.levels);
  }
  FaultReport& report = cur.report;

  const auto wall_start = std::chrono::steady_clock::now();

  const auto start_cycle = [&](std::uint64_t t) {
    if (!cur.in_cycle) {
      cur.in_cycle = true;
      cur.cycle_start = t;
    }
  };

  const auto remove_agent_at = [&](std::size_t victim) {
    if (victim + 1 != config.size()) config[victim] = std::move(config.back());
    config.pop_back();
    if (!battery.empty()) {
      battery[victim] = battery.back();  // trivial type: self-assign is fine
      battery.pop_back();
    }
  };

  const auto apply_rule = [&](const FaultRule& rule, std::uint64_t t) {
    ++report.events;
    switch (rule.action) {
      case FaultAction::kCorrupt:
        for (std::uint64_t k = 0; k < rule.count; ++k) {
          const auto victim =
              static_cast<std::size_t>(fault_rng.below(config.size()));
          config[victim] = model.corrupt_state(fault_rng);
          ++report.agents_corrupted;
        }
        break;
      case FaultAction::kJoin:
        for (std::uint64_t k = 0; k < rule.count; ++k) {
          config.push_back(model.join_state());
          if (!battery.empty()) battery.push_back(plan.battery.levels);
          ++report.agents_joined;
        }
        break;
      case FaultAction::kLeave:
        for (std::uint64_t k = 0; k < rule.count; ++k) {
          if (config.size() <= 2) {
            fault_plan_die("leave event would reduce the population below 2 "
                           "(field: count)");
          }
          remove_agent_at(
              static_cast<std::size_t>(fault_rng.below(config.size())));
          ++report.agents_left;
        }
        break;
    }
    start_cycle(t);
  };

  const auto battery_tick = [&](std::uint64_t t) {
    std::uint64_t deaths = 0;
    for (std::size_t i = 0; i < battery.size(); ++i) {
      if (battery[i] == 0) continue;  // impossible between ticks; defensive
      if (plan.battery.decay_prob >= 1.0 ||
          fault_rng.real() < plan.battery.decay_prob) {
        if (--battery[i] == 0) ++deaths;
      }
    }
    if (deaths == 0) return;
    if (config.size() < deaths + 2) {
      fault_plan_die("battery dropout would reduce the population below 2 "
                     "(field: levels)");
    }
    for (std::size_t i = battery.size(); i-- > 0;) {
      if (battery[i] == 0) remove_agent_at(i);
    }
    report.agents_drained += deaths;
    ++report.events;
    start_cycle(t);
  };

  bool wall_expired = false;
  while (cur.t < plan.horizon && !wall_expired) {
    const std::uint64_t next_probe =
        (cur.t / plan.probe_every + 1) * plan.probe_every;
    const std::uint64_t next_event =
        detail::next_fault_time(plan, cur.next, cur.t);
    const std::uint64_t stop =
        std::min({plan.horizon, next_probe, next_event});
    for (std::uint64_t k = cur.t; k < stop; ++k) {
      const std::uint64_t live = config.size();
      const std::uint64_t a = sched_rng.below(live);
      std::uint64_t b = sched_rng.below(live - 1);
      if (b >= a) ++b;  // ordered distinct pair, uniform
      protocol.interact(config[a], config[b], agent_rng);
    }
    cur.t = stop;

    for (std::size_t i = 0; i < plan.rules.size(); ++i) {
      if (cur.next[i] != cur.t) continue;
      const FaultRule& rule = plan.rules[i];
      apply_rule(rule, cur.t);
      cur.next[i] = rule.timing == FaultTiming::kPeriodic
                        ? cur.t + rule.period
                        : cur.t + poisson_gap(fault_rng, rule.period);
    }
    if (plan.battery.levels > 0 &&
        cur.t % plan.battery.decay_every == 0) {
      battery_tick(cur.t);
    }

    if (cur.t % plan.probe_every == 0) {
      ++report.probes;
      const bool safe = model.safe(config);
      report.probes_safe += safe ? 1 : 0;
      if (model.unique_leader) {
        report.probes_with_unique_leader +=
            model.unique_leader(config) ? 1 : 0;
      }
      if (safe && cur.in_cycle) {
        report.recovery_times.push_back(cur.t - cur.cycle_start);
        cur.in_cycle = false;
      }
      if (safe) {
        for (std::size_t i = 0; i < plan.rules.size(); ++i) {
          if (plan.rules[i].timing == FaultTiming::kOnRecovery) {
            apply_rule(plan.rules[i], cur.t);
          }
        }
      }
      if (opts.journal) {
        // The naive twin drives agents directly (no Simulator), so it
        // reports the naive engine's counter shape itself.
        obs::EngineMetrics m;
        m.engine = "naive";
        m.interactions = cur.t;
        m.interactions_iterated = cur.t;
        m.population = config.size();
        opts.journal->tick(cur.t, m);
      }
      if (opts.max_wall_seconds > 0.0) {
        const double elapsed = std::chrono::duration<double>(
                                   std::chrono::steady_clock::now() -
                                   wall_start)
                                   .count();
        wall_expired = elapsed >= opts.max_wall_seconds;
      }
    }
  }

  report.completed = cur.t >= plan.horizon;
  report.interactions = cur.t;
  report.final_population = config.size();
  report.metrics.engine = "naive";
  report.metrics.interactions = cur.t;
  report.metrics.interactions_iterated = cur.t;
  report.metrics.population = config.size();
  if (final_out) *final_out = std::move(config);
  return report;
}

}  // namespace ssle::analysis
