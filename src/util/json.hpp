// Minimal JSON document builder for structured benchmark output.
//
// Bench binaries historically emit aligned tables plus "CSV," lines; the
// repo's perf trajectory (BENCH_*.json) wants machine-readable documents
// with nesting, so this adds a tiny insertion-ordered value tree:
//
//   auto doc = Json::object();
//   doc.set("bench", "parallel_sweep");
//   auto section = Json::object();
//   section.set("wall_s", 1.25);
//   doc.set("fenwick", std::move(section));
//   write_json_file("BENCH.json", doc);
//
// Writing is pretty-printed (write/dump) or compact single-line
// (dump_line — the JSONL form obs::Journal emits), keys keep insertion
// order (stable diffs), doubles print with shortest round-trip precision
// (strtod(dump) == value, up to max_digits10), and non-finite doubles
// serialize as null (JSON has no NaN/inf).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace ssle::util {

class Json {
 public:
  Json() : value_(nullptr) {}
  Json(bool v) : value_(v) {}
  Json(double v) : value_(v) {}
  Json(int v) : value_(static_cast<std::int64_t>(v)) {}
  Json(std::int64_t v) : value_(v) {}
  Json(std::uint64_t v);  ///< values above int64 max fall back to double
  Json(std::string v) : value_(std::move(v)) {}
  Json(const char* v) : value_(std::string(v)) {}

  static Json object();
  static Json array();

  /// Object insertion (keeps insertion order; duplicate keys overwrite).
  Json& set(const std::string& key, Json v);

  /// Array append.
  Json& push(Json v);

  void write(std::ostream& os, int indent = 0) const;
  std::string dump() const;

  /// Compact single-line form (no whitespace, no trailing newline): one
  /// JSONL record per call.  Same value syntax as write().
  void write_compact(std::ostream& os) const;
  std::string dump_line() const;

  // --- Reading (checkpoint/resume, obs/checkpoint) ------------------------
  //
  // A strict recursive-descent parser over the subset this writer emits:
  // objects, arrays, strings with \"\\/bnrt and \uXXXX escapes (BMP only),
  // integer and decimal numbers, true/false/null.  Any trailing non-
  // whitespace, unterminated construct, bad escape, or malformed number
  // returns nullopt — a half-parsed checkpoint must never restore.

  static std::optional<Json> parse(const std::string& text);

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_number() const {
    return std::holds_alternative<double>(value_) ||
           std::holds_alternative<std::int64_t>(value_);
  }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_object() const { return std::holds_alternative<Members>(value_); }
  bool is_array() const { return std::holds_alternative<Elements>(value_); }

  /// Object member lookup; nullptr when absent or not an object.
  const Json* find(const std::string& key) const;

  /// Element count: members of an object, elements of an array, 0 otherwise.
  std::size_t size() const;

  /// Array element access; nullptr when out of range or not an array.
  const Json* at(std::size_t i) const;

  /// Scalar accessors; nullopt on type mismatch (u64 additionally rejects
  /// negatives and non-integral doubles).
  std::optional<bool> as_bool() const;
  std::optional<std::int64_t> as_i64() const;
  std::optional<std::uint64_t> as_u64() const;
  std::optional<double> as_double() const;
  std::optional<std::string> as_string() const;

 private:
  struct ObjectTag {};
  struct ArrayTag {};
  using Members = std::vector<std::pair<std::string, Json>>;
  using Elements = std::vector<Json>;

  std::variant<std::nullptr_t, bool, double, std::int64_t, std::string,
               Members, Elements>
      value_;
};

/// Writes `doc` (pretty-printed, trailing newline) to `path`; prints a
/// clear error to stderr and exits with status 2 on I/O failure — a bench
/// asked for --json must not silently drop its results.
void write_json_file(const std::string& path, const Json& doc);

}  // namespace ssle::util
