// Aligned table / CSV emission for the benchmark harness.  Every bench
// binary prints (a) a human-readable aligned table and (b) machine-readable
// CSV rows prefixed with "CSV," so results can be grepped into files.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ssle::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds one row; missing cells render empty, extra cells are kept.
  void add_row(std::vector<std::string> cells);

  /// Renders the aligned human-readable table.
  void print(std::ostream& os) const;

  /// Renders CSV lines (including a header line), each prefixed with "CSV,".
  void print_csv(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with a sensible fixed precision for tables.
std::string fmt(double v, int precision = 2);
std::string fmt_int(long long v);

}  // namespace ssle::util
