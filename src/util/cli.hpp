// Minimal command-line option parsing for the bench/example binaries.
// Supports "--key=value" and "--flag" forms; anything unknown is reported.
//
// Numeric getters are strict: a present-but-unparseable value (e.g.
// "--n=abc", "--x=1.2.3") prints a clear error and exits with status 2
// instead of silently yielding 0 and feeding nonsense downstream.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ssle::util {

class Cli {
 public:
  Cli(int argc, char** argv);

  bool has(const std::string& key) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  std::string get_string(const std::string& key,
                         const std::string& fallback) const;

  /// get_int for count-like flags (--trials, --n, --jobs, --budget, …):
  /// additionally rejects negative values, which would otherwise wrap to
  /// huge unsigned counts at the cast.
  std::size_t get_count(const std::string& key, std::size_t fallback) const;

  /// get_count for parameters stored in 32 bits (population sizes): also
  /// rejects values above 2^32−1 instead of silently truncating at the
  /// narrowing cast.
  std::uint32_t get_count_u32(const std::string& key,
                              std::uint32_t fallback) const;

  /// The repo-wide `--jobs` flag: worker threads for parallel_sweep.
  /// Absent or 0 means "all hardware threads" (resolved by the runner).
  std::size_t get_jobs() const { return get_count("jobs", 0); }

  /// Positional (non --option) arguments.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace ssle::util
