// Minimal command-line option parsing for the bench/example binaries.
// Supports "--key=value" and "--flag" forms; anything unknown is reported.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ssle::util {

class Cli {
 public:
  Cli(int argc, char** argv);

  bool has(const std::string& key) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  std::string get_string(const std::string& key,
                         const std::string& fallback) const;

  /// Positional (non --option) arguments.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace ssle::util
