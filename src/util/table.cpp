#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace ssle::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c >= widths.size()) widths.resize(c + 1, 0);
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << "  " << std::left << std::setw(static_cast<int>(widths[c]))
         << cell;
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = 2;
  for (auto w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    os << "CSV";
    for (const auto& cell : row) os << ',' << cell;
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string fmt(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

std::string fmt_int(long long v) { return std::to_string(v); }

}  // namespace ssle::util
