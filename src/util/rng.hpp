// Deterministic pseudo-random number generation for simulations.
//
// The population model assumes a uniformly random scheduler and agents that
// can sample values (almost) u.a.r. (paper §1.1).  Every simulation in this
// repository is a pure function of (seed, parameters); we use xoshiro256**
// seeded through SplitMix64, which is fast, high-quality and reproducible
// across platforms (unlike std::mt19937 + std::uniform_int_distribution,
// whose output is implementation-defined for bounded draws).
#pragma once

#include <array>
#include <cassert>
#include <cstdint>

namespace ssle::util {

/// SplitMix64: used to expand a 64-bit seed into xoshiro256** state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: the repository-wide PRNG.
/// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform draw from {0, 1, ..., bound-1}.  Uses Lemire's multiply-shift
  /// with rejection, so the result is exactly uniform.
  std::uint64_t below(std::uint64_t bound) {
    // bound == 0 is a caller bug; return 0 deterministically.
    if (bound <= 1) return 0;
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform draw from {lo, ..., hi} inclusive.  Requires lo <= hi.
  /// The span is computed in uint64, where wraparound is well defined, so
  /// extreme ranges (e.g. the full int64 domain) are exact instead of UB.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    assert(lo <= hi);
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    // span == 0 means hi - lo + 1 wrapped: the full 2^64 domain.  Every
    // 64-bit value is in range, so a raw draw is already uniform.
    const std::uint64_t offset = span == 0 ? next() : below(span);
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) + offset);
  }

  /// Uniform real in [0, 1).
  double real() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  bool coin() { return (next() >> 63) != 0; }

  /// Derives the k-th child generator from this generator's CURRENT state,
  /// without consuming any of the parent's randomness (the parent's next
  /// draw is the same whether or not split was called).  Stream-identity
  /// guarantees, pinned by tests/test_rng.cpp:
  ///
  ///   * deterministic — the same parent state and the same k always yield
  ///     the same child, on every platform;
  ///   * parent-independent — split() is const: it never advances the
  ///     parent, and the child owns fresh state, so interleaving child and
  ///     parent draws in any order cannot change either stream;
  ///   * pairwise distinct — children for different k (and children of
  ///     parents differing in ANY state word) are seeded through SplitMix64
  ///     chains over (k, full 256-bit state), the same whitening the seed
  ///     path uses, so distinct inputs give statistically independent
  ///     streams (no additive-lattice correlations between siblings).
  ///
  /// This is how one run seed fans out into per-shard scheduler and agent
  /// streams in the sharded engine: substream() keys top-level components,
  /// split() keys dynamic per-component families.
  Rng split(std::uint64_t k) const {
    SplitMix64 mix(0x8e9d3c1fb2a45679ULL ^ (k * 0x9e3779b97f4a7c15ULL));
    std::uint64_t acc = mix.next();
    for (const std::uint64_t w : state_) {
      SplitMix64 m(acc ^ w);
      acc = m.next();
    }
    return Rng(acc);
  }

  /// Raw 256-bit generator state, for crash-safe checkpoints
  /// (obs/checkpoint).  Restoring a saved state with set_state() resumes
  /// the stream exactly where state() captured it.  Only feed set_state()
  /// words previously obtained from state(): the all-zero state is a fixed
  /// point of xoshiro256** and must never be installed (asserted).
  std::array<std::uint64_t, 4> state() const { return state_; }

  void set_state(const std::array<std::uint64_t, 4>& s) {
    assert((s[0] | s[1] | s[2] | s[3]) != 0);
    state_ = s;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Derives a stream-specific seed so that independent components of one
/// experiment (scheduler, adversary, agent sampling) never share a stream.
constexpr std::uint64_t substream(std::uint64_t seed, std::uint64_t stream) {
  SplitMix64 sm(seed ^ (0xabcdef1234567890ULL + stream * 0x9e3779b97f4a7c15ULL));
  return sm.next();
}

}  // namespace ssle::util
