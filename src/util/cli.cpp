#include "util/cli.hpp"

#include <cstdlib>

namespace ssle::util {

Cli::Cli(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        options_[arg.substr(2)] = "1";
      } else {
        options_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    } else {
      positional_.push_back(std::move(arg));
    }
  }
}

bool Cli::has(const std::string& key) const { return options_.count(key) > 0; }

std::int64_t Cli::get_int(const std::string& key, std::int64_t fallback) const {
  auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Cli::get_double(const std::string& key, double fallback) const {
  auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

std::string Cli::get_string(const std::string& key,
                            const std::string& fallback) const {
  auto it = options_.find(key);
  return it == options_.end() ? fallback : it->second;
}

}  // namespace ssle::util
