#include "util/cli.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace ssle::util {

namespace {

[[noreturn]] void die_bad_value(const std::string& key,
                                const std::string& value, const char* kind) {
  std::fprintf(stderr, "error: --%s=%s is not a valid %s\n", key.c_str(),
               value.c_str(), kind);
  std::exit(2);
}

}  // namespace

Cli::Cli(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        options_[arg.substr(2)] = "1";
      } else {
        options_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    } else {
      positional_.push_back(std::move(arg));
    }
  }
}

bool Cli::has(const std::string& key) const { return options_.count(key) > 0; }

std::int64_t Cli::get_int(const std::string& key, std::int64_t fallback) const {
  auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  const char* begin = it->second.c_str();
  char* end = nullptr;
  errno = 0;
  const long long value = std::strtoll(begin, &end, 10);
  if (end == begin || *end != '\0' || errno == ERANGE) {
    die_bad_value(key, it->second, "integer");
  }
  return value;
}

std::size_t Cli::get_count(const std::string& key, std::size_t fallback) const {
  auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  const std::int64_t value = get_int(key, 0);
  if (value < 0) die_bad_value(key, it->second, "non-negative count");
  return static_cast<std::size_t>(value);
}

std::uint32_t Cli::get_count_u32(const std::string& key,
                                 std::uint32_t fallback) const {
  const std::size_t value = get_count(key, fallback);
  if (value > 0xffffffffULL) {
    die_bad_value(key, options_.at(key), "32-bit count");
  }
  return static_cast<std::uint32_t>(value);
}

double Cli::get_double(const std::string& key, double fallback) const {
  auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  const char* begin = it->second.c_str();
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(begin, &end);
  if (end == begin || *end != '\0' || errno == ERANGE) {
    die_bad_value(key, it->second, "number");
  }
  return value;
}

std::string Cli::get_string(const std::string& key,
                            const std::string& fallback) const {
  auto it = options_.find(key);
  return it == options_.end() ? fallback : it->second;
}

}  // namespace ssle::util
