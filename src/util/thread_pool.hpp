// Reusable worker pool: the thread machinery behind analysis::parallel_sweep
// and the sharded single-run engine (pp/sharded_simulator.hpp).
//
// Two usage shapes share one pool:
//
//   * submit()/wait_idle() — fire-and-forget tasks drained by a barrier:
//     what a seed sweep needs (one task per trial batch, join at the end).
//   * run_indexed(count, body) — execute body(0..count-1) across the
//     workers WITH the calling thread participating, returning when every
//     index has finished.  This is the per-phase primitive of the sharded
//     engine: a pool of W workers plus the caller gives W+1 executors, and
//     indices are claimed from one atomic counter, so the set of indices
//     each thread runs is nondeterministic but the work per index is not —
//     callers must keep per-index state disjoint (both in-repo users do).
//
// Error contract (matches the historical parallel_sweep behavior): the
// FIRST exception thrown by any task is captured, the remaining queue is
// drained without running, and wait_idle()/run_indexed() rethrow it on the
// calling thread.  Which exception is "first" under concurrency is
// nondeterministic, exactly as it was with the per-call thread vector.
//
// A pool constructed with 0 threads degrades to inline execution on the
// calling thread (submit runs the task immediately) — the serial fallback
// for 1-core hosts, with identical semantics.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ssle::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (0 = inline execution, no threads).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Enqueues one task.  With 0 workers the task runs inline here.
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is running, then rethrows
  /// the first captured task exception (if any).
  void wait_idle();

  /// Runs body(i) for every i in [0, count) across the workers and the
  /// calling thread; returns when all are done.  Rethrows the first
  /// exception (remaining indices are abandoned, matching wait_idle).
  void run_indexed(std::size_t count,
                   const std::function<void(std::size_t)>& body);

 private:
  void worker_loop();
  void note_error();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable task_cv_;  ///< workers: queue non-empty or stop
  std::condition_variable idle_cv_;  ///< waiters: queue empty and none active
  std::size_t active_ = 0;           ///< tasks currently executing
  bool stop_ = false;
  std::exception_ptr error_;         ///< first task exception, until rethrown
};

}  // namespace ssle::util
