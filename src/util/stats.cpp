#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace ssle::util {

double percentile(std::span<const double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  if (xs.empty()) return s;
  s.count = xs.size();
  double sum = 0.0;
  s.min = xs[0];
  s.max = xs[0];
  for (double x : xs) {
    sum += x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = sum / static_cast<double>(xs.size());
  double ss = 0.0;
  for (double x : xs) ss += (x - s.mean) * (x - s.mean);
  s.stddev = xs.size() > 1
                 ? std::sqrt(ss / static_cast<double>(xs.size() - 1))
                 : 0.0;
  s.median = percentile(xs, 0.5);
  s.p10 = percentile(xs, 0.10);
  s.p90 = percentile(xs, 0.90);
  return s;
}

double t95_critical(std::size_t dof) {
  // Two-sided P = 0.95 quantiles of the t distribution, dof 1..30.
  static constexpr double kTable[] = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  constexpr std::size_t kTableSize = sizeof(kTable) / sizeof(kTable[0]);
  if (dof == 0) return 0.0;
  if (dof <= kTableSize) return kTable[dof - 1];
  return 1.96;
}

double ci95_halfwidth(const Summary& s) {
  if (s.count < 2) return 0.0;
  return t95_critical(s.count - 1) * s.stddev /
         std::sqrt(static_cast<double>(s.count));
}

double fit_scale(std::span<const double> xs, std::span<const double> ys,
                 double (*model)(double)) {
  double num = 0.0;
  double den = 0.0;
  const std::size_t k = std::min(xs.size(), ys.size());
  for (std::size_t i = 0; i < k; ++i) {
    const double f = model(xs[i]);
    num += f * ys[i];
    den += f * f;
  }
  return den > 0.0 ? num / den : 0.0;
}

double fit_r2(std::span<const double> xs, std::span<const double> ys,
              double (*model)(double), double scale) {
  const std::size_t k = std::min(xs.size(), ys.size());
  if (k == 0) return 0.0;
  double mean = 0.0;
  for (std::size_t i = 0; i < k; ++i) mean += ys[i];
  mean /= static_cast<double>(k);
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    const double pred = scale * model(xs[i]);
    ss_res += (ys[i] - pred) * (ys[i] - pred);
    ss_tot += (ys[i] - mean) * (ys[i] - mean);
  }
  return ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
}

PowerFit fit_power(std::span<const double> xs, std::span<const double> ys) {
  PowerFit out;
  const std::size_t k = std::min(xs.size(), ys.size());
  if (k < 2) return out;
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  std::size_t m = 0;
  for (std::size_t i = 0; i < k; ++i) {
    if (xs[i] <= 0.0 || ys[i] <= 0.0) continue;
    const double lx = std::log(xs[i]);
    const double ly = std::log(ys[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
    ++m;
  }
  if (m < 2) return out;
  const double dm = static_cast<double>(m);
  const double denom = dm * sxx - sx * sx;
  if (denom == 0.0) return out;
  out.exponent = (dm * sxy - sx * sy) / denom;
  out.scale = std::exp((sy - out.exponent * sx) / dm);
  // R² in log space.
  double mean = sy / dm;
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    if (xs[i] <= 0.0 || ys[i] <= 0.0) continue;
    const double pred = std::log(out.scale) + out.exponent * std::log(xs[i]);
    const double ly = std::log(ys[i]);
    ss_res += (ly - pred) * (ly - pred);
    ss_tot += (ly - mean) * (ly - mean);
  }
  out.r2 = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return out;
}

double model_identity(double x) { return x; }
double model_nlogn(double x) { return x > 1.0 ? x * std::log(x) : x; }
double model_n2(double x) { return x * x; }
double model_logn(double x) { return x > 1.0 ? std::log(x) : 1.0; }
double model_n2logn(double x) { return x > 1.0 ? x * x * std::log(x) : x * x; }

}  // namespace ssle::util
