#include "util/rng.hpp"

// Header-only; this translation unit exists so the library has a stable
// object for the component and to hold future non-inline helpers.
namespace ssle::util {}
