#include "util/thread_pool.hpp"

#include <atomic>
#include <memory>
#include <utility>

namespace ssle::util {

ThreadPool::ThreadPool(std::size_t threads) {
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  task_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::note_error() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!error_) error_ = std::current_exception();
}

void ThreadPool::submit(std::function<void()> task) {
  if (workers_.empty()) {
    // Inline fallback: same error contract as the threaded path (captured,
    // rethrown by wait_idle), so callers never branch on thread_count().
    try {
      task();
    } catch (...) {
      note_error();
    }
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  task_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [&] { return queue_.empty() && active_ == 0; });
  if (error_) {
    std::exception_ptr e = std::exchange(error_, nullptr);
    lock.unlock();
    std::rethrow_exception(e);
  }
}

void ThreadPool::run_indexed(std::size_t count,
                             const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  // One shared claim counter; each executor (helpers + the caller) loops
  // claiming the next index until exhausted.  An exception drains the
  // counter so everyone stops promptly; wait_idle rethrows it.
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  const auto work = [this, next, count, &body] {
    for (;;) {
      const std::size_t i = next->fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        body(i);
      } catch (...) {
        note_error();
        next->store(count, std::memory_order_relaxed);
        return;
      }
    }
  };
  const std::size_t helpers = std::min(thread_count(), count - 1);
  for (std::size_t h = 0; h < helpers; ++h) submit(work);
  work();  // the calling thread participates
  wait_idle();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    try {
      task();
    } catch (...) {
      note_error();
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace ssle::util
