#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <ostream>
#include <sstream>

namespace ssle::util {

namespace {

void write_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void write_indent(std::ostream& os, int indent) {
  for (int i = 0; i < indent; ++i) os << "  ";
}

/// Shortest round-trip decimal form of a finite double: the fewest
/// significant digits (≤ max_digits10 = 17) whose strtod re-parse gives
/// back the exact bit pattern.  %.10g (the old form) silently lost
/// precision on values needing 11+ digits; always printing 17 digits would
/// bloat every document with noise digits.
void write_double(std::ostream& os, double d) {
  char buf[40];
  for (int prec = 15; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, d);
    if (std::strtod(buf, nullptr) == d) break;
  }
  os << buf;
}

}  // namespace

Json::Json(std::uint64_t v) {
  if (v <= static_cast<std::uint64_t>(
               std::numeric_limits<std::int64_t>::max())) {
    value_ = static_cast<std::int64_t>(v);
  } else {
    value_ = static_cast<double>(v);
  }
}

Json Json::object() {
  Json j;
  j.value_ = Members{};
  return j;
}

Json Json::array() {
  Json j;
  j.value_ = Elements{};
  return j;
}

Json& Json::set(const std::string& key, Json v) {
  if (!std::holds_alternative<Members>(value_)) value_ = Members{};
  auto& members = std::get<Members>(value_);
  for (auto& [k, existing] : members) {
    if (k == key) {
      existing = std::move(v);
      return *this;
    }
  }
  members.emplace_back(key, std::move(v));
  return *this;
}

Json& Json::push(Json v) {
  if (!std::holds_alternative<Elements>(value_)) value_ = Elements{};
  std::get<Elements>(value_).push_back(std::move(v));
  return *this;
}

void Json::write(std::ostream& os, int indent) const {
  if (std::holds_alternative<std::nullptr_t>(value_)) {
    os << "null";
  } else if (const auto* b = std::get_if<bool>(&value_)) {
    os << (*b ? "true" : "false");
  } else if (const auto* d = std::get_if<double>(&value_)) {
    if (!std::isfinite(*d)) {
      os << "null";  // JSON has no NaN/inf
    } else {
      write_double(os, *d);
    }
  } else if (const auto* i = std::get_if<std::int64_t>(&value_)) {
    os << *i;
  } else if (const auto* s = std::get_if<std::string>(&value_)) {
    write_escaped(os, *s);
  } else if (const auto* members = std::get_if<Members>(&value_)) {
    if (members->empty()) {
      os << "{}";
      return;
    }
    os << "{\n";
    for (std::size_t i = 0; i < members->size(); ++i) {
      write_indent(os, indent + 1);
      write_escaped(os, (*members)[i].first);
      os << ": ";
      (*members)[i].second.write(os, indent + 1);
      if (i + 1 < members->size()) os << ',';
      os << '\n';
    }
    write_indent(os, indent);
    os << '}';
  } else if (const auto* elements = std::get_if<Elements>(&value_)) {
    if (elements->empty()) {
      os << "[]";
      return;
    }
    os << "[\n";
    for (std::size_t i = 0; i < elements->size(); ++i) {
      write_indent(os, indent + 1);
      (*elements)[i].write(os, indent + 1);
      if (i + 1 < elements->size()) os << ',';
      os << '\n';
    }
    write_indent(os, indent);
    os << ']';
  }
}

std::string Json::dump() const {
  std::ostringstream os;
  write(os);
  return os.str();
}

void Json::write_compact(std::ostream& os) const {
  if (const auto* members = std::get_if<Members>(&value_)) {
    os << '{';
    for (std::size_t i = 0; i < members->size(); ++i) {
      if (i > 0) os << ',';
      write_escaped(os, (*members)[i].first);
      os << ':';
      (*members)[i].second.write_compact(os);
    }
    os << '}';
  } else if (const auto* elements = std::get_if<Elements>(&value_)) {
    os << '[';
    for (std::size_t i = 0; i < elements->size(); ++i) {
      if (i > 0) os << ',';
      (*elements)[i].write_compact(os);
    }
    os << ']';
  } else {
    write(os);  // scalars have no layout to compact
  }
}

std::string Json::dump_line() const {
  std::ostringstream os;
  write_compact(os);
  return os.str();
}

void write_json_file(const std::string& path, const Json& doc) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "error: cannot open %s for writing\n", path.c_str());
    std::exit(2);
  }
  doc.write(out);
  out << '\n';
  if (!out.flush()) {
    std::fprintf(stderr, "error: failed writing %s\n", path.c_str());
    std::exit(2);
  }
}

}  // namespace ssle::util
