#include "util/json.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <ostream>
#include <sstream>

namespace ssle::util {

namespace {

void write_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void write_indent(std::ostream& os, int indent) {
  for (int i = 0; i < indent; ++i) os << "  ";
}

/// Shortest round-trip decimal form of a finite double: the fewest
/// significant digits (≤ max_digits10 = 17) whose strtod re-parse gives
/// back the exact bit pattern.  %.10g (the old form) silently lost
/// precision on values needing 11+ digits; always printing 17 digits would
/// bloat every document with noise digits.
void write_double(std::ostream& os, double d) {
  char buf[40];
  for (int prec = 15; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, d);
    if (std::strtod(buf, nullptr) == d) break;
  }
  os << buf;
}

}  // namespace

Json::Json(std::uint64_t v) {
  if (v <= static_cast<std::uint64_t>(
               std::numeric_limits<std::int64_t>::max())) {
    value_ = static_cast<std::int64_t>(v);
  } else {
    value_ = static_cast<double>(v);
  }
}

Json Json::object() {
  Json j;
  j.value_ = Members{};
  return j;
}

Json Json::array() {
  Json j;
  j.value_ = Elements{};
  return j;
}

Json& Json::set(const std::string& key, Json v) {
  if (!std::holds_alternative<Members>(value_)) value_ = Members{};
  auto& members = std::get<Members>(value_);
  for (auto& [k, existing] : members) {
    if (k == key) {
      existing = std::move(v);
      return *this;
    }
  }
  members.emplace_back(key, std::move(v));
  return *this;
}

Json& Json::push(Json v) {
  if (!std::holds_alternative<Elements>(value_)) value_ = Elements{};
  std::get<Elements>(value_).push_back(std::move(v));
  return *this;
}

void Json::write(std::ostream& os, int indent) const {
  if (std::holds_alternative<std::nullptr_t>(value_)) {
    os << "null";
  } else if (const auto* b = std::get_if<bool>(&value_)) {
    os << (*b ? "true" : "false");
  } else if (const auto* d = std::get_if<double>(&value_)) {
    if (!std::isfinite(*d)) {
      os << "null";  // JSON has no NaN/inf
    } else {
      write_double(os, *d);
    }
  } else if (const auto* i = std::get_if<std::int64_t>(&value_)) {
    os << *i;
  } else if (const auto* s = std::get_if<std::string>(&value_)) {
    write_escaped(os, *s);
  } else if (const auto* members = std::get_if<Members>(&value_)) {
    if (members->empty()) {
      os << "{}";
      return;
    }
    os << "{\n";
    for (std::size_t i = 0; i < members->size(); ++i) {
      write_indent(os, indent + 1);
      write_escaped(os, (*members)[i].first);
      os << ": ";
      (*members)[i].second.write(os, indent + 1);
      if (i + 1 < members->size()) os << ',';
      os << '\n';
    }
    write_indent(os, indent);
    os << '}';
  } else if (const auto* elements = std::get_if<Elements>(&value_)) {
    if (elements->empty()) {
      os << "[]";
      return;
    }
    os << "[\n";
    for (std::size_t i = 0; i < elements->size(); ++i) {
      write_indent(os, indent + 1);
      (*elements)[i].write(os, indent + 1);
      if (i + 1 < elements->size()) os << ',';
      os << '\n';
    }
    write_indent(os, indent);
    os << ']';
  }
}

std::string Json::dump() const {
  std::ostringstream os;
  write(os);
  return os.str();
}

void Json::write_compact(std::ostream& os) const {
  if (const auto* members = std::get_if<Members>(&value_)) {
    os << '{';
    for (std::size_t i = 0; i < members->size(); ++i) {
      if (i > 0) os << ',';
      write_escaped(os, (*members)[i].first);
      os << ':';
      (*members)[i].second.write_compact(os);
    }
    os << '}';
  } else if (const auto* elements = std::get_if<Elements>(&value_)) {
    os << '[';
    for (std::size_t i = 0; i < elements->size(); ++i) {
      if (i > 0) os << ',';
      (*elements)[i].write_compact(os);
    }
    os << ']';
  } else {
    write(os);  // scalars have no layout to compact
  }
}

std::string Json::dump_line() const {
  std::ostringstream os;
  write_compact(os);
  return os.str();
}

namespace {

/// Recursive-descent parser state.  Depth-capped so adversarial nesting in
/// a corrupted checkpoint cannot overflow the stack.
struct Parser {
  const char* p;
  const char* end;
  int depth = 0;
  static constexpr int kMaxDepth = 64;

  void skip_ws() {
    while (p < end &&
           (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) {
      ++p;
    }
  }

  bool consume(char c) {
    if (p < end && *p == c) {
      ++p;
      return true;
    }
    return false;
  }

  bool literal(const char* s) {
    const char* q = p;
    while (*s) {
      if (q >= end || *q != *s) return false;
      ++q;
      ++s;
    }
    p = q;
    return true;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (p < end) {
      const unsigned char c = static_cast<unsigned char>(*p++);
      if (c == '"') return true;
      if (c == '\\') {
        if (p >= end) return false;
        const char esc = *p++;
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (end - p < 4) return false;
            unsigned cp = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = *p++;
              cp <<= 4;
              if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
              else return false;
            }
            // Encode the BMP code point as UTF-8 (surrogates pass through
            // as-is bytes of their code unit; the writer never emits them).
            if (cp < 0x80) {
              out += static_cast<char>(cp);
            } else if (cp < 0x800) {
              out += static_cast<char>(0xC0 | (cp >> 6));
              out += static_cast<char>(0x80 | (cp & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (cp >> 12));
              out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (cp & 0x3F));
            }
            break;
          }
          default:
            return false;
        }
      } else if (c < 0x20) {
        return false;  // raw control character inside a string
      } else {
        out += static_cast<char>(c);
      }
    }
    return false;  // unterminated
  }

  bool parse_number(Json& out) {
    const char* start = p;
    if (p < end && *p == '-') ++p;
    if (p >= end || *p < '0' || *p > '9') return false;
    while (p < end && *p >= '0' && *p <= '9') ++p;
    bool integral = true;
    if (p < end && *p == '.') {
      integral = false;
      ++p;
      if (p >= end || *p < '0' || *p > '9') return false;
      while (p < end && *p >= '0' && *p <= '9') ++p;
    }
    if (p < end && (*p == 'e' || *p == 'E')) {
      integral = false;
      ++p;
      if (p < end && (*p == '+' || *p == '-')) ++p;
      if (p >= end || *p < '0' || *p > '9') return false;
      while (p < end && *p >= '0' && *p <= '9') ++p;
    }
    const std::string token(start, p);
    if (integral) {
      errno = 0;
      char* parsed_end = nullptr;
      const long long v = std::strtoll(token.c_str(), &parsed_end, 10);
      if (errno == 0 && parsed_end == token.c_str() + token.size()) {
        out = Json(static_cast<std::int64_t>(v));
        return true;
      }
      // Integer out of int64 range: fall back to double, like the writer.
    }
    errno = 0;
    char* parsed_end = nullptr;
    const double d = std::strtod(token.c_str(), &parsed_end);
    if (parsed_end != token.c_str() + token.size()) return false;
    out = Json(d);
    return true;
  }

  bool parse_value(Json& out) {
    if (++depth > kMaxDepth) return false;
    skip_ws();
    if (p >= end) return false;
    bool ok = false;
    switch (*p) {
      case '{': {
        ++p;
        Json obj = Json::object();
        skip_ws();
        if (consume('}')) {
          out = std::move(obj);
          ok = true;
          break;
        }
        while (true) {
          skip_ws();
          std::string key;
          if (!parse_string(key)) return false;
          skip_ws();
          if (!consume(':')) return false;
          Json v;
          if (!parse_value(v)) return false;
          obj.set(key, std::move(v));
          skip_ws();
          if (consume(',')) continue;
          if (consume('}')) break;
          return false;
        }
        out = std::move(obj);
        ok = true;
        break;
      }
      case '[': {
        ++p;
        Json arr = Json::array();
        skip_ws();
        if (consume(']')) {
          out = std::move(arr);
          ok = true;
          break;
        }
        while (true) {
          Json v;
          if (!parse_value(v)) return false;
          arr.push(std::move(v));
          skip_ws();
          if (consume(',')) continue;
          if (consume(']')) break;
          return false;
        }
        out = std::move(arr);
        ok = true;
        break;
      }
      case '"': {
        std::string s;
        if (!parse_string(s)) return false;
        out = Json(std::move(s));
        ok = true;
        break;
      }
      case 't':
        if (!literal("true")) return false;
        out = Json(true);
        ok = true;
        break;
      case 'f':
        if (!literal("false")) return false;
        out = Json(false);
        ok = true;
        break;
      case 'n':
        if (!literal("null")) return false;
        out = Json();
        ok = true;
        break;
      default:
        ok = parse_number(out);
        break;
    }
    --depth;
    return ok;
  }
};

}  // namespace

std::optional<Json> Json::parse(const std::string& text) {
  Parser parser{text.data(), text.data() + text.size()};
  Json out;
  if (!parser.parse_value(out)) return std::nullopt;
  parser.skip_ws();
  if (parser.p != parser.end) return std::nullopt;  // trailing garbage
  return out;
}

const Json* Json::find(const std::string& key) const {
  const auto* members = std::get_if<Members>(&value_);
  if (!members) return nullptr;
  for (const auto& [k, v] : *members) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::size_t Json::size() const {
  if (const auto* members = std::get_if<Members>(&value_)) {
    return members->size();
  }
  if (const auto* elements = std::get_if<Elements>(&value_)) {
    return elements->size();
  }
  return 0;
}

const Json* Json::at(std::size_t i) const {
  const auto* elements = std::get_if<Elements>(&value_);
  if (!elements || i >= elements->size()) return nullptr;
  return &(*elements)[i];
}

std::optional<bool> Json::as_bool() const {
  if (const auto* b = std::get_if<bool>(&value_)) return *b;
  return std::nullopt;
}

std::optional<std::int64_t> Json::as_i64() const {
  if (const auto* i = std::get_if<std::int64_t>(&value_)) return *i;
  return std::nullopt;
}

std::optional<std::uint64_t> Json::as_u64() const {
  if (const auto* i = std::get_if<std::int64_t>(&value_)) {
    if (*i < 0) return std::nullopt;
    return static_cast<std::uint64_t>(*i);
  }
  if (const auto* d = std::get_if<double>(&value_)) {
    if (*d < 0 || *d != static_cast<double>(static_cast<std::uint64_t>(*d))) {
      return std::nullopt;
    }
    return static_cast<std::uint64_t>(*d);
  }
  return std::nullopt;
}

std::optional<double> Json::as_double() const {
  if (const auto* d = std::get_if<double>(&value_)) return *d;
  if (const auto* i = std::get_if<std::int64_t>(&value_)) {
    return static_cast<double>(*i);
  }
  return std::nullopt;
}

std::optional<std::string> Json::as_string() const {
  if (const auto* s = std::get_if<std::string>(&value_)) return *s;
  return std::nullopt;
}

void write_json_file(const std::string& path, const Json& doc) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "error: cannot open %s for writing\n", path.c_str());
    std::exit(2);
  }
  doc.write(out);
  out << '\n';
  if (!out.flush()) {
    std::fprintf(stderr, "error: failed writing %s\n", path.c_str());
    std::exit(2);
  }
}

}  // namespace ssle::util
