// The repository-wide hash-combine step (boost-style, 64-bit golden-ratio
// constant).  Every std::hash specialization for protocol state types
// builds on this one mixer so hash quality can be tuned in one place.
#pragma once

#include <cstddef>

namespace ssle::util {

inline void hash_mix(std::size_t& seed, std::size_t v) {
  seed ^= v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}

}  // namespace ssle::util
