// Small statistics toolkit used by the experiment harness: summary
// statistics, percentiles, bootstrap-free normal confidence intervals and
// least-squares fits against model curves (n, n log n, n^2, ...).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace ssle::util {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p10 = 0.0;
  double p90 = 0.0;
};

/// Summarizes a sample.  An empty sample yields an all-zero Summary.
Summary summarize(std::span<const double> xs);

/// Linear interpolation percentile, q in [0, 1].
double percentile(std::span<const double> xs, double q);

/// Two-sided 95% Student-t critical value for `dof` degrees of freedom.
/// Exact table through 30 d.o.f., the normal z = 1.96 beyond — at the
/// bench default of 5 trials (4 d.o.f.) the normal value would understate
/// the interval by ~42%.  dof == 0 (no residual degrees of freedom: the
/// t distribution is undefined) returns 0.0 by contract, so callers that
/// multiply by it report a zero-width interval rather than NaN/garbage.
double t95_critical(std::size_t dof);

/// Half-width of a ~95% confidence interval for the mean, using the
/// Student-t critical value for the sample's degrees of freedom (count−1).
/// Summaries with count <= 1 (empty sweeps, a single surviving trial) have
/// no estimable dispersion; by contract they return a 0-width interval —
/// never NaN — so sweep rows degrade to "mean ± 0.0" instead of breaking
/// downstream JSON/tables.  Note the count−1 here would underflow size_t
/// on count == 0; the guard makes that path unreachable.
double ci95_halfwidth(const Summary& s);

/// Least-squares fit of y ≈ c * f(x) through the origin; returns c.
/// Used to report the empirical constant in "T(n) = c · n log n" style fits.
double fit_scale(std::span<const double> xs, std::span<const double> ys,
                 double (*model)(double));

/// Coefficient of determination R² for the fit y ≈ c · f(x).
double fit_r2(std::span<const double> xs, std::span<const double> ys,
              double (*model)(double), double scale);

/// Fits y ≈ a · x^b (log-log regression); returns {a, b}.
struct PowerFit {
  double scale = 0.0;
  double exponent = 0.0;
  double r2 = 0.0;
};
PowerFit fit_power(std::span<const double> xs, std::span<const double> ys);

// Model curves for fit_scale / fit_r2.
double model_identity(double x);
double model_nlogn(double x);
double model_n2(double x);
double model_logn(double x);
double model_n2logn(double x);

}  // namespace ssle::util
