// Example: interactive exploration of the paper's space-time trade-off.
//
// For a population size n, sweeps the trade-off parameter r and reports,
// side by side, what you pay (per-agent state bits, live memory) and what
// you get (stabilization time) — the engineering view of Theorem 1.1.
//
//   ./examples/tradeoff_explorer [--n=64] [--trials=3] [--seed=3] [--jobs=0]
//                                [--engine=naive|batched]
#include <cstdint>
#include <iostream>

#include "analysis/census.hpp"
#include "analysis/experiment.hpp"
#include "analysis/measure.hpp"
#include "core/adversary.hpp"
#include "core/state_size.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ssle;
  const util::Cli cli(argc, argv);
  const auto n = static_cast<std::uint32_t>(cli.get_int("n", 64));
  const auto trials = cli.get_count("trials", 3);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 3));
  const auto jobs = cli.get_jobs();
  const auto engine = analysis::engine_from_string(
      cli.get_string("engine", "naive"));

  std::cout << "Space-time trade-off for self-stabilizing leader election, n="
            << n << "\n"
            << "(Theorem 1.1: time O((n²/r)·log n), states 2^{O(r² log n)})\n\n";

  util::Table table({"r", "groups", "par.time(mean)", "speedup vs r=1",
                     "state_bits", "live_MiB", "msgs/agent"});
  double base_time = 0.0;
  for (std::uint32_t r = 1; r <= n / 2; r *= 2) {
    const core::Params params = core::Params::make(n, r);
    const auto result =
        analysis::parallel_sweep(seed, trials, [&](std::uint64_t s) {
          const auto run = analysis::stabilize(
              engine, params, s,
              analysis::default_budget(params));
          return run.converged ? static_cast<double>(run.interactions) : -1.0;
        }, jobs);
    const double par = result.summary.mean / n;
    if (r == 1) base_time = par;
    const auto census =
        analysis::take_census(params, core::make_safe_config(params));
    table.add_row(
        {util::fmt_int(r), util::fmt_int(params.num_groups()),
         util::fmt(par, 1), util::fmt(base_time / par, 1) + "x",
         util::fmt(core::bits_elect_leader(params), 0),
         util::fmt(static_cast<double>(census.approx_bytes) / (1 << 20), 2),
         util::fmt_int(static_cast<long long>(census.total_messages / n))});
  }
  table.print(std::cout);
  table.print_csv(std::cout);

  std::cout << "\nReading guide: doubling r halves stabilization time "
               "(speedup column ≈ r) while state bits grow ~r²·log r — "
               "choose r by your device's memory budget.\n";
  return 0;
}
