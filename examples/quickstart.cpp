// Quickstart: run ElectLeader_r on a small population, watch the phases
// (ranking → verification → safe), and print the elected leader.
//
//   ./examples/quickstart [--n=64] [--r=8] [--seed=1]
#include <cstdint>
#include <iostream>

#include "analysis/census.hpp"
#include "core/elect_leader.hpp"
#include "core/safety.hpp"
#include "pp/simulator.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace ssle;
  const util::Cli cli(argc, argv);
  const auto n = static_cast<std::uint32_t>(cli.get_int("n", 64));
  const auto r = static_cast<std::uint32_t>(cli.get_int("r", 8));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));

  const core::Params params = core::Params::make(n, r);
  core::ElectLeader protocol(params);
  pp::Simulator<core::ElectLeader> sim(protocol, seed);

  std::cout << "ElectLeader_r quickstart: n=" << n << " r=" << r
            << " groups=" << params.num_groups() << " seed=" << seed << "\n\n";

  std::uint64_t next_report = 0;
  bool safe = false;
  const std::uint64_t budget = 4000ull * n * core::Params::log2ceil(n) *
                               ((n + r - 1) / r);
  while (sim.interactions() < budget) {
    sim.step(n);  // one unit of parallel time
    if (sim.interactions() >= next_report) {
      const auto census =
          analysis::take_census(params, sim.population().states());
      std::cout << "t=" << sim.interactions() / n
                << " (interactions=" << sim.interactions() << ")"
                << "  resetters=" << census.resetters
                << " rankers=" << census.rankers
                << " verifiers=" << census.verifiers
                << " leaders=" << census.leaders
                << " msgs=" << census.total_messages << '\n';
      next_report = sim.interactions() + 16ull * n;
    }
    if (core::is_safe_configuration(params, sim.population().states())) {
      safe = true;
      break;
    }
  }

  if (!safe) {
    std::cout << "\nDid not reach a safe configuration within the budget.\n";
    return 1;
  }

  std::cout << "\nSafe configuration reached after " << sim.interactions()
            << " interactions (parallel time "
            << static_cast<double>(sim.interactions()) / n << ").\n";
  for (std::uint32_t i = 0; i < n; ++i) {
    if (core::ElectLeader::is_leader(sim.population()[i])) {
      std::cout << "Leader: agent " << i << " (rank 1).\n";
    }
  }
  return 0;
}
