// Journaled epidemic run: the smallest end-to-end demo of the
// observability layer, and the driver CI uses to smoke a journaled
// leaping run at n = 10^6.
//
// Runs the Lemma A.2 epidemic on the chosen engine with an obs::Journal
// attached to the probe path, then prints the engine's final counter
// block.  Every heartbeat line in the journal is one JSON object:
//
//   ./journaled_run --engine=leaping --n=1000000 --journal=run.jsonl
//   ./journaled_run --engine=batched --n=100000        # journal on stderr
//
//   --engine=naive|batched|leaping   engine (default leaping)
//   --n=<agents>                     population size (default 10^6)
//   --seed=<u64>                     RNG seed (default 42)
//   --journal=<path>                 JSONL sink ("-" or unset = stderr)
//   --heartbeat-interactions=<k>     min interactions between heartbeats
//                                    (default n — one event per probe grid
//                                    step at most)
//   --topology=complete|islands:K[:intra:inter]|multipartite:K|ring
#include <cstdint>
#include <iostream>

#include "analysis/measure.hpp"
#include "obs/journal.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"

int main(int argc, char** argv) {
  using namespace ssle;
  const util::Cli cli(argc, argv);
  const auto engine =
      analysis::engine_from_string(cli.get_string("engine", "leaping"));
  const auto n = static_cast<std::uint64_t>(cli.get_count("n", 1000000));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  const auto journal_path = cli.get_string("journal", "-");
  const auto heartbeat =
      static_cast<std::uint64_t>(cli.get_count("heartbeat-interactions", n));
  const auto topology =
      analysis::topology_from_string(cli.get_string("topology", "complete"));

  obs::Journal::Options jopts;
  jopts.path = journal_path == "-" ? "" : journal_path;
  jopts.every_interactions = heartbeat;
  jopts.run = "journaled_epidemic";
  obs::Journal journal(jopts);

  const auto res = analysis::epidemic_convergence(engine, n, seed, 0, 0,
                                                  topology, &journal);

  auto summary = util::Json::object();
  summary.set("engine", analysis::engine_name(engine));
  summary.set("n", n);
  summary.set("converged", res.converged);
  summary.set("interactions", res.interactions);
  summary.set("heartbeats", journal.events_emitted());
  journal.event("done", std::move(summary));

  std::cout << "epidemic on " << analysis::engine_name(engine) << " at n=" << n
            << (res.converged ? " converged" : " DID NOT CONVERGE") << " after "
            << res.interactions << " interactions; " << journal.events_emitted()
            << " journal events"
            << (jopts.path.empty() ? " (stderr)" : "") << "\n";
  return res.converged ? 0 : 1;
}
