// Epidemic wave at scale: the batched engine simulating the one-way
// epidemic (Lemma A.2's primitive) on populations far beyond what the
// per-agent Simulator can touch, and comparing the observed infection
// curve to the logistic-growth prediction di/dt = 2·i·(1-i) (parallel
// time t, infected fraction i; the factor 2 is the ordered-pair rate).
//
//   ./epidemic_wave [--n=10000000] [--seed=1]
#include <cmath>
#include <cstdint>
#include <iostream>

#include "pp/batched_simulator.hpp"
#include "pp/epidemic.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ssle;
  const util::Cli cli(argc, argv);
  const auto n = static_cast<std::uint32_t>(cli.get_int("n", 10000000));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  if (n < 2) {
    std::cerr << "epidemic_wave: need --n >= 2 (an epidemic needs agents "
                 "to meet).\n";
    return 2;
  }

  pp::Epidemic proto{n};
  pp::BatchedSimulator<pp::Epidemic> sim(proto, seed);

  std::cout << "One-way epidemic, batched engine: n=" << n << " seed=" << seed
            << "\n(logistic prediction i(t) = i0 / (i0 + (1-i0)·e^{-2t}))\n\n";

  util::Table table({"parallel t", "infected", "fraction", "logistic"});
  const double i0 = 1.0 / static_cast<double>(n);
  const std::uint64_t probe = n;  // one unit of parallel time
  double t = 0.0;
  while (true) {
    const std::uint64_t infected = sim.config().count_of(1);
    const double frac = static_cast<double>(infected) / n;
    const double logistic = i0 / (i0 + (1.0 - i0) * std::exp(-2.0 * t));
    table.add_row({util::fmt(t, 0), util::fmt_int(static_cast<long long>(infected)),
                   util::fmt(frac, 6), util::fmt(logistic, 6)});
    if (infected == n) break;
    if (t > 10.0 * std::log(static_cast<double>(n))) {
      std::cout << "Epidemic did not saturate within 10·ln n parallel time "
                   "(unexpected).\n";
      table.print(std::cout);
      return 1;
    }
    sim.step(probe);
    t += 1.0;
  }
  table.print(std::cout);
  // E[T] = (n-1)·H_{n-1} interactions, i.e. ≈ ln n parallel time.
  std::cout << "\nSaturated after " << sim.interactions()
            << " interactions (parallel time "
            << static_cast<double>(sim.interactions()) / n << ", ~ln n = "
            << std::log(static_cast<double>(n)) << " predicted).\n";
  return 0;
}
