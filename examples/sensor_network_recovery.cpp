// Example: self-healing coordinator election in a sensor swarm.
//
// The paper's motivating setting: a large population of tiny, anonymous
// devices that communicate in random pairwise encounters and must keep
// exactly one coordinator alive — even when radiation/power glitches
// corrupt the memory of arbitrary devices at arbitrary times.
//
// This example stabilizes a swarm, then injects two fault waves:
//   wave 1: soft memory corruption (message tables scrambled, ranks kept)
//            → healed by soft resets, the coordinator survives;
//   wave 2: hard corruption (device ranks cloned)
//            → full reset + re-ranking, a fresh coordinator emerges.
//
//   ./examples/sensor_network_recovery [--n=48] [--r=12] [--seed=7]
#include <cstdint>
#include <iostream>

#include "analysis/census.hpp"
#include "core/adversary.hpp"
#include "core/elect_leader.hpp"
#include "core/safety.hpp"
#include "pp/simulator.hpp"
#include "util/cli.hpp"

namespace {

using namespace ssle;

int find_leader(const pp::Population<core::ElectLeader>& pop) {
  for (std::uint32_t i = 0; i < pop.size(); ++i) {
    if (core::ElectLeader::is_leader(pop[i])) return static_cast<int>(i);
  }
  return -1;
}

bool run_to_safe(const core::Params& params,
                 pp::Simulator<core::ElectLeader>& sim, std::uint64_t budget,
                 const char* phase) {
  const auto start = sim.interactions();
  const auto run = sim.run_until(
      [&](const pp::Population<core::ElectLeader>& pop, std::uint64_t) {
        return core::is_safe_configuration(params, pop.states());
      },
      budget, params.n);
  if (!run.converged) {
    std::cout << phase << ": did not re-stabilize within budget!\n";
    return false;
  }
  std::cout << phase << ": stable after "
            << static_cast<double>(run.interactions - start) / params.n
            << " parallel time units; coordinator = device "
            << find_leader(sim.population()) << "\n";
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto n = static_cast<std::uint32_t>(cli.get_int("n", 48));
  const auto r = static_cast<std::uint32_t>(cli.get_int("r", 12));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));

  const core::Params params = core::Params::make(n, r);
  core::ElectLeader protocol(params);
  pp::Simulator<core::ElectLeader> sim(protocol, seed);
  const std::uint64_t budget =
      4000ull * n * core::Params::log2ceil(n) * ((n + r - 1) / r);

  std::cout << "Sensor swarm: " << n << " devices, trade-off parameter r="
            << r << "\n\n";
  if (!run_to_safe(params, sim, budget, "boot")) return 1;
  const int coordinator = find_leader(sim.population());

  // Let the swarm settle: fresh verifiers are on probation (§3.2), and an
  // error caught during probation is handled by a full reset.  After
  // ~P_max·n/2 further interactions all probation timers have drained and
  // faults take the soft path.
  sim.step(static_cast<std::uint64_t>(params.probation_max) * n);

  // --- Fault wave 1: scramble the collision-detection tables --------------
  std::cout << "\n>>> fault wave 1: scrambling message tables of all devices "
               "(ranks intact)\n";
  util::Rng fault(seed + 1);
  for (std::uint32_t i = 0; i < n; ++i) {
    core::Agent& a = sim.population()[i];
    if (a.role != core::Role::kVerifying) continue;
    for (auto& bucket : a.sv.dc.msgs) {
      for (auto& msg : bucket) {
        if (fault.below(3) == 0) {
          msg.content = static_cast<std::uint32_t>(2 + fault.below(1u << 20));
        }
      }
    }
    // Re-establish the state-space restriction for the device's own rank.
    const std::uint32_t own = params.rank_in_group(a.rank) - 1;
    if (own < a.sv.dc.msgs.size()) {
      for (const auto& msg : a.sv.dc.msgs[own]) {
        a.sv.dc.observations[msg.id - 1] = msg.content;
      }
    }
  }
  if (!run_to_safe(params, sim, budget, "after wave 1")) return 1;
  const int coordinator_after_soft = find_leader(sim.population());
  std::cout << (coordinator_after_soft == coordinator
                    ? "coordinator SURVIVED the soft fault (soft resets only)\n"
                    : "coordinator changed — unexpected for a soft fault\n");

  // --- Fault wave 2: clone ranks (hard fault) ------------------------------
  std::cout << "\n>>> fault wave 2: cloning device ranks (duplicate "
               "coordinators possible)\n";
  for (std::uint32_t i = 0; i < n / 4; ++i) {
    core::Agent& a = sim.population()[i];
    const core::Agent& donor = sim.population()[n - 1 - i];
    a.rank = donor.rank;
    a.sv = donor.sv;
  }
  if (!run_to_safe(params, sim, 10 * budget, "after wave 2")) return 1;

  const auto census = analysis::take_census(params, sim.population().states());
  std::cout << "\nfinal census: verifiers=" << census.verifiers
            << " coordinators=" << census.leaders
            << " circulating messages=" << census.total_messages << '\n';
  return census.leaders == 1 ? 0 : 1;
}
