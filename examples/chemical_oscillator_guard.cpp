// Example: a chemical reaction network with a self-stabilizing "catalyst".
//
// Population protocols are equivalent to chemical reaction networks with
// unit rates (paper §1 cites Doty'14).  Many CRN constructions need a
// *catalyst/leader molecule* with exactly one copy: with two copies the
// downstream computation double-fires, with zero it stalls.  This example
// couples a simple downstream CRN — a leader-driven phase clock — to
// ElectLeader_r and shows the clock only ticks cleanly once the leader
// count self-stabilizes to one, including after a "contamination" event
// that injects extra catalyst copies.
//
//   ./examples/chemical_oscillator_guard [--n=48] [--r=12] [--seed=11]
#include <cstdint>
#include <iostream>
#include <vector>

#include "core/elect_leader.hpp"
#include "core/safety.hpp"
#include "core/stable_verify.hpp"
#include "pp/scheduler.hpp"
#include "util/cli.hpp"

namespace {

using namespace ssle;

/// Downstream CRN: a leader-driven phase clock.  The catalyst (leader)
/// advances its phase when meeting a molecule marked with its own phase;
/// non-catalysts copy the catalyst's phase.  With a unique catalyst the
/// phase advances in clean Θ(n log n)-interaction rounds; with duplicated
/// catalysts the phases race and "misfire" (two catalysts in different
/// phases both advancing).
struct PhaseClock {
  std::vector<std::uint8_t> phase;
  std::uint64_t ticks = 0;
  std::uint64_t misfires = 0;

  explicit PhaseClock(std::uint32_t n) : phase(n, 0) {}

  void react(std::uint32_t a, std::uint32_t b, bool a_cat, bool b_cat) {
    if (a_cat && b_cat) {
      if (phase[a] != phase[b]) ++misfires;  // racing catalysts
      return;
    }
    if (!a_cat && !b_cat) return;
    const std::uint32_t cat = a_cat ? a : b;
    const std::uint32_t mol = a_cat ? b : a;
    if (phase[mol] == phase[cat]) {
      phase[cat] = (phase[cat] + 1) % 8;  // the round is complete: tick
      ++ticks;
    } else {
      phase[mol] = phase[cat];
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto n = static_cast<std::uint32_t>(cli.get_int("n", 48));
  const auto r = static_cast<std::uint32_t>(cli.get_int("r", 12));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 11));

  const core::Params params = core::Params::make(n, r);
  core::ElectLeader protocol(params);
  std::vector<core::Agent> soup;
  for (std::uint32_t i = 0; i < n; ++i) soup.push_back(protocol.initial_state(i));
  PhaseClock clock(n);
  pp::UniformScheduler sched(n, seed);
  util::Rng rng(util::substream(seed, 2));

  const std::uint64_t epoch = 2000ull * n;  // report interval
  bool contaminated = false;
  std::uint64_t prev_ticks = 0, prev_misfires = 0;

  std::cout << "CRN with self-stabilizing catalyst: n=" << n << " r=" << r
            << "\nepoch  catalysts  ticks  misfires  note\n";
  for (int e = 0; e < 14; ++e) {
    for (std::uint64_t t = 0; t < epoch; ++t) {
      const auto [a, b] = sched.next();
      protocol.interact(soup[a], soup[b], rng);
      clock.react(a, b, core::ElectLeader::is_leader(soup[a]),
                  core::ElectLeader::is_leader(soup[b]));
    }
    const auto leaders = core::leader_count(soup);
    std::cout << e << "      " << leaders << "          "
              << clock.ticks - prev_ticks << "     "
              << clock.misfires - prev_misfires << "        "
              << (contaminated ? "(recovering)" : "") << '\n';
    prev_ticks = clock.ticks;
    prev_misfires = clock.misfires;

    if (e == 7) {
      // Contamination: clone the catalyst into three extra molecules.
      std::uint32_t donor = 0;
      for (std::uint32_t i = 0; i < n; ++i) {
        if (core::ElectLeader::is_leader(soup[i])) donor = i;
      }
      for (std::uint32_t i = 1; i <= 3; ++i) {
        soup[(donor + i) % n] = soup[donor];
      }
      contaminated = true;
      std::cout << ">>> contamination: 3 extra catalyst copies injected\n";
    }
    if (contaminated && core::leader_count(soup) == 1 &&
        core::is_safe_configuration(params, soup)) {
      contaminated = false;
      std::cout << ">>> catalyst uniqueness restored by self-stabilization\n";
    }
  }

  const bool ok = core::leader_count(soup) == 1;
  std::cout << "\nfinal: catalysts=" << core::leader_count(soup)
            << " total_ticks=" << clock.ticks
            << " total_misfires=" << clock.misfires << '\n';
  return ok ? 0 : 1;
}
