// Experiment F4 — Lemma E.1(b) robust completeness: with a duplicated rank
// present, DetectCollision_r (run standalone, any initialization) raises ⊤
// within O((n²/r)·log n) interactions w.h.p.  Sweeps n and the number of
// duplicates; compares against the no-message ablation expectation (direct
// meetings alone need Θ(n²) — the messages are the paper's speed-up).
#include <iostream>
#include <vector>

#include "analysis/experiment.hpp"
#include "core/detect_collision.hpp"
#include "pp/scheduler.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace ssle;

double detection_time(const core::Params& params,
                      const std::vector<std::uint32_t>& ranks,
                      std::uint64_t seed, std::uint64_t budget) {
  std::vector<core::DcState> states;
  states.reserve(ranks.size());
  for (const auto rank : ranks) {
    states.push_back(core::dc_initial_state(params, rank));
  }
  pp::UniformScheduler sched(static_cast<std::uint32_t>(ranks.size()), seed);
  util::Rng rng(util::substream(seed, 4));
  for (std::uint64_t t = 1; t <= budget; ++t) {
    const auto [a, b] = sched.next();
    core::detect_collision(params, ranks[a], states[a], ranks[b], states[b],
                           rng);
    if (states[a].error || states[b].error) return static_cast<double>(t);
  }
  return -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto trials = cli.get_count("trials", 5);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 40));
  const auto jobs = cli.get_jobs();

  analysis::print_banner(
      "F4 (Lemma E.1(b))",
      "DetectCollision_r detects a duplicated rank within O((n²/r)·log n) "
      "interactions w.h.p., regardless of its own initialization",
      "detect/(n²·ln n / r) roughly constant; more duplicates detect faster");

  util::Table table({"n", "r", "dups", "detect(mean)", "ci95",
                     "detect·r/(n² ln n)", "fails"});
  std::vector<double> ns, ys;
  for (std::uint32_t n : {16u, 32u, 48u, 64u, 96u}) {
    const std::uint32_t r = n / 2;
    const core::Params params = core::Params::make(n, r);
    for (std::uint32_t dups : {1u, 2u, n / 4}) {
      std::vector<std::uint32_t> ranks(n);
      for (std::uint32_t i = 0; i < n; ++i) ranks[i] = i + 1;
      for (std::uint32_t d = 0; d < dups; ++d) {
        ranks[d] = ranks[n - 1 - d];  // plant duplicates
      }
      const std::uint64_t L = core::Params::log2ceil(n);
      const std::uint64_t budget = 3000ull * (n * n / r) * L + 500000;
      const auto result =
          analysis::parallel_sweep(seed, trials, [&](std::uint64_t s) {
            return detection_time(params, ranks, s, budget);
          }, jobs);
      const double model = util::model_nlogn(n) * n / r;
      table.add_row({util::fmt_int(n), util::fmt_int(r), util::fmt_int(dups),
                     util::fmt(result.summary.mean, 0),
                     util::fmt(util::ci95_halfwidth(result.summary), 0),
                     util::fmt(result.summary.mean / model, 2),
                     util::fmt_int(static_cast<long long>(result.failures))});
      if (dups == 1) {
        ns.push_back(n);
        ys.push_back(result.summary.mean);
      }
    }
  }
  table.print(std::cout);
  table.print_csv(std::cout);

  // Detection latency for one duplicate ≈ signature-refresh wait
  // (period · n/2 interactions) + message-spread time — both Θ(n log n)
  // with r = n/2.  Compare both candidate models directly.
  const double c1 = util::fit_scale(ns, ys, util::model_nlogn);
  const double r2_nlogn = util::fit_r2(ns, ys, util::model_nlogn, c1);
  const double c2 = util::fit_scale(ns, ys, util::model_n2);
  const double r2_n2 = util::fit_r2(ns, ys, util::model_n2, c2);
  std::cout << "\nSingle-duplicate detection: n·ln n fit gives "
            << util::fmt(c1, 2) << "·n·ln n (R²=" << util::fmt(r2_nlogn, 3)
            << "), n² fit R²=" << util::fmt(r2_n2, 3)
            << ".  Lemma E.1(b) predicts O((n²/r) log n) = O(n log n) at "
               "r = n/2; the message-free meeting bound would be Θ(n²).  "
               "Note: single-duplicate latency has high variance (the wait "
               "for the first signature refresh dominates).\n";
  return 0;
}
