// Experiment F6 — state complexity (Fig. 1–3, Theorem 1.1, §2 comparison):
// evaluates the exact per-agent bit complexity of ElectLeader_r across the
// r range and against the baselines, plus the live memory footprint of a
// stabilized simulation (analysis::census).
#include <cmath>
#include <iostream>

#include "analysis/census.hpp"
#include "analysis/experiment.hpp"
#include "core/adversary.hpp"
#include "core/state_size.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ssle;
  const util::Cli cli(argc, argv);
  const auto n = static_cast<std::uint32_t>(cli.get_int("n", 1024));

  analysis::print_banner(
      "F6 (state complexity trade-off)",
      "ElectLeader_r uses 2^{O(r² log n)} states (DetectCollision dominates "
      "at 2^{O(r² log r)}, Fig. 3); baseline SSR uses 2^{Θ(n log n)}; CIW "
      "uses n states",
      "bits grow ~r²·log r in r; polylog r beats the SSR baseline at large n");

  util::Table table({"n", "r", "bits(DetectCollision)", "bits(AssignRanks)",
                     "bits(ElectLeader)", "bits(SSR)", "bits(CIW)"});
  for (std::uint32_t r = 1; r <= n / 2; r *= 4) {
    const core::Params p = core::Params::make(n, r);
    table.add_row({util::fmt_int(n), util::fmt_int(r),
                   util::fmt(core::bits_detect_collision(p), 0),
                   util::fmt(core::bits_assign_ranks(p), 0),
                   util::fmt(core::bits_elect_leader(p), 0),
                   util::fmt(core::bits_ssr_baseline(n), 0),
                   util::fmt(core::bits_ciw(n), 0)});
  }
  table.print(std::cout);
  table.print_csv(std::cout);

  // Crossover scan: smallest n where ElectLeader_{log² n} beats SSR bits.
  std::cout << "\nPolylog-regime crossover (r = ⌈log² n⌉):\n";
  util::Table cross({"n", "bits(ElectLeader_polylog)", "bits(SSR)", "winner"});
  for (std::uint32_t nn = 256; nn <= (1u << 22); nn *= 4) {
    const auto L = static_cast<std::uint32_t>(std::log2(nn));
    const core::Params p = core::Params::make(nn, L * L);
    const double el = core::bits_elect_leader(p);
    const double ssr = core::bits_ssr_baseline(nn);
    cross.add_row({util::fmt_int(nn), util::fmt(el, 0), util::fmt(ssr, 0),
                   el < ssr ? "ElectLeader" : "SSR"});
  }
  cross.print(std::cout);
  cross.print_csv(std::cout);

  // Live footprint of a stabilized population (what the simulation holds).
  std::cout << "\nLive simulated footprint at a safe configuration "
               "(messages are the dominant cost):\n";
  util::Table live({"n", "r", "messages", "approx_MiB"});
  for (std::uint32_t nn : {32u, 64u, 128u}) {
    for (std::uint32_t r : {4u, nn / 2}) {
      const core::Params p = core::Params::make(nn, r);
      const auto config = core::make_safe_config(p);
      const auto census = analysis::take_census(p, config);
      live.add_row({util::fmt_int(nn), util::fmt_int(r),
                    util::fmt_int(static_cast<long long>(census.total_messages)),
                    util::fmt(static_cast<double>(census.approx_bytes) /
                                  (1024.0 * 1024.0),
                              2)});
    }
  }
  live.print(std::cout);
  live.print_csv(std::cout);
  return 0;
}
