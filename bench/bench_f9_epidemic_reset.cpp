// Experiment F9 — the substrate lemmas:
//   * Lemma A.2: a one/two-way epidemic infects all agents within
//     c_epi·n·log n interactions w.h.p. with c_epi < 7;
//   * Corollary C.3: PropagateReset's phases (triggered → fully dormant →
//     awakening/computing) each take O(n log n) interactions w.h.p.
#include <iostream>
#include <vector>

#include "analysis/experiment.hpp"
#include "analysis/measure.hpp"
#include "core/elect_leader.hpp"
#include "core/propagate_reset.hpp"
#include "pp/scheduler.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace ssle;

/// Lemma A.2 measurement through the engine-generic entry point
/// (--engine=naive|batched|leaping); probe_every=1 keeps exact hit times
/// so the fitted constant is not inflated by probe-grid overshoot.
double epidemic_time(analysis::Engine engine, std::uint32_t n,
                     std::uint64_t seed) {
  const auto r = analysis::epidemic_convergence(engine, n, seed,
                                                /*max_interactions=*/0,
                                                /*probe_every=*/1);
  return r.converged ? static_cast<double>(r.interactions) : -1.0;
}

struct ResetPhases {
  double to_dormant = -1.0;
  double to_computing = -1.0;
};

ResetPhases reset_phases(const core::Params& params, std::uint64_t seed) {
  core::ElectLeader protocol(params);
  std::vector<core::Agent> agents;
  for (std::uint32_t i = 0; i < params.n; ++i) {
    agents.push_back(protocol.initial_state(i));
  }
  core::trigger_reset(params, agents[0]);
  pp::UniformScheduler sched(params.n, seed);
  util::Rng rng(util::substream(seed, 4));

  ResetPhases phases;
  const std::uint64_t budget =
      4000ull * params.n * core::Params::log2ceil(params.n) +
      40ull * params.n * params.delay_timer_max;
  for (std::uint64_t t = 1; t <= budget; ++t) {
    const auto [a, b] = sched.next();
    protocol.interact(agents[a], agents[b], rng);
    if (t % (params.n / 2 + 1) != 0) continue;
    if (phases.to_dormant < 0) {
      bool dormant = true;
      for (const auto& ag : agents) dormant &= core::is_dormant(ag);
      if (dormant) phases.to_dormant = static_cast<double>(t);
    } else if (phases.to_computing < 0) {
      bool computing = true;
      for (const auto& ag : agents) computing &= core::is_computing(ag);
      if (computing) {
        phases.to_computing = static_cast<double>(t);
        break;
      }
    }
  }
  return phases;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto trials = cli.get_count("trials", 20);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 80));
  const auto jobs = cli.get_jobs();
  const auto engine =
      analysis::engine_from_string(cli.get_string("engine", "naive"));

  analysis::print_banner(
      "F9 (Lemma A.2 + Corollary C.3)",
      "Epidemics finish in < 7·n·ln n interactions w.h.p.; PropagateReset "
      "reaches fully-dormant and then computing in O(n log n) each",
      "epidemic/(n·ln n) < 7; both reset phases scale ~n·log n");
  std::cout << "epidemic engine: " << analysis::engine_name(engine) << "\n";

  util::Table table({"n", "epidemic(mean)", "epi/(n·ln n)", "dormant@(mean)",
                     "computing@(mean)", "fails"});
  std::vector<double> ns, es;
  for (std::uint32_t n : {16u, 32u, 64u, 128u, 256u, 512u}) {
    const auto epi =
        analysis::parallel_sweep(seed, trials, [&](std::uint64_t s) {
          return epidemic_time(engine, n, s);
        }, jobs);
    const core::Params params = core::Params::make(n, std::max(1u, n / 4));
    double dorm_sum = 0, comp_sum = 0;
    std::size_t fails = 0;
    for (std::size_t t = 0; t < trials; ++t) {
      const ResetPhases ph = reset_phases(params, seed + 1000 + t);
      if (ph.to_dormant < 0 || ph.to_computing < 0) {
        ++fails;
        continue;
      }
      dorm_sum += ph.to_dormant;
      comp_sum += ph.to_computing;
    }
    const double ok = static_cast<double>(trials - fails);
    table.add_row({util::fmt_int(n), util::fmt(epi.summary.mean, 0),
                   util::fmt(epi.summary.mean / util::model_nlogn(n), 2),
                   util::fmt(ok > 0 ? dorm_sum / ok : -1, 0),
                   util::fmt(ok > 0 ? comp_sum / ok : -1, 0),
                   util::fmt_int(static_cast<long long>(fails))});
    ns.push_back(n);
    es.push_back(epi.summary.mean);
  }
  table.print(std::cout);
  table.print_csv(std::cout);

  const double c = util::fit_scale(ns, es, util::model_nlogn);
  std::cout << "\nEpidemic fit: " << util::fmt(c, 2)
            << "·n·ln n (Lemma A.2 requires the constant < 7)\n";
  return 0;
}
