// Experiment T1 — the regime comparison the paper's §1–§2 narrates:
// at a fixed n, compare stabilization time and state bits across
//   * ElectLeader_r at r = n/2 (time-optimal), r = ⌈log² n⌉ (sub-exponential
//     states), r = 2 (near-minimal states),
//   * Cai–Izumi–Wada (n states, Θ(n²) expected time),
//   * the name-broadcast SSR baseline (Θ(n log n) time, 2^{Θ(n log n)}
//     states),
//   * loosely-stabilizing leader election (cheap but finite holding time).
//
//   --n=64      population size
//   --trials=5  seeds per row
//   --jobs=0    parallel_sweep worker threads (0 = all cores)
//   --engine=naive|batched   runs every row (ElectLeader and baselines —
//              all use the uniform scheduler) on the chosen engine; every
//              state type carries a std::hash, so the batched engine's
//              registry takes the O(1) path throughout
#include <algorithm>
#include <cmath>
#include <iostream>
#include <vector>

#include "analysis/experiment.hpp"
#include "analysis/measure.hpp"
#include "baselines/cai_izumi_wada.hpp"
#include "baselines/fight_leader.hpp"
#include "baselines/loose_leader.hpp"
#include "baselines/silent_ssr.hpp"
#include "core/state_size.hpp"
#include "pp/batched_simulator.hpp"
#include "pp/simulator.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace ssle;

template <typename Protocol, typename StablePred>
double run_protocol(const Protocol& protocol, StablePred stable,
                    std::uint64_t seed, std::uint64_t budget) {
  pp::Simulator<Protocol> sim(protocol, seed);
  const auto res = sim.run_until(
      [&](const pp::Population<Protocol>& pop, std::uint64_t) {
        return stable(pop.states());
      },
      budget);
  return res.converged ? static_cast<double>(res.interactions) : -1.0;
}

/// Same measurement on the count-based batched engine; the predicate still
/// sees a flat configuration (expanded once per probe).
template <typename Protocol, typename StablePred>
double run_protocol_batched(const Protocol& protocol, StablePred stable,
                            std::uint64_t seed, std::uint64_t budget) {
  pp::BatchedSimulator<Protocol> sim(protocol, seed);
  const auto res = sim.run_until(
      [&](const pp::CountsConfiguration<Protocol>& c, std::uint64_t) {
        return stable(c.to_states());
      },
      budget);
  return res.converged ? static_cast<double>(res.interactions) : -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto n = cli.get_count_u32("n", 64);
  const auto trials = cli.get_count("trials", 5);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 100));
  const auto jobs = cli.get_jobs();
  const auto engine =
      analysis::engine_from_string(cli.get_string("engine", "naive"));
  const bool batched = engine == analysis::Engine::kBatched;

  analysis::print_banner(
      "T1 (regime comparison, §1–§2)",
      "Protocol landscape at fixed n: time vs state bits per protocol",
      "ElectLeader_{n/2} ~ SSR time but polynomially-bounded bit growth; "
      "CIW slowest/smallest; loose-LE fastest but only loosely stabilizing");
  std::cout << "engine=" << analysis::engine_name(engine)
            << " jobs=" << analysis::effective_jobs(jobs, trials)
            << " trials=" << trials
            << "\n";

  util::Table table({"protocol", "self-stab", "interactions(mean)",
                     "par.time", "state_bits", "fails"});

  // A baseline row: dispatches on the engine choice.
  const auto run_baseline = [&](const auto& protocol, auto stable,
                                std::uint64_t s, std::uint64_t budget) {
    return batched ? run_protocol_batched(protocol, stable, s, budget)
                   : run_protocol(protocol, stable, s, budget);
  };

  // ElectLeader at three r regimes (deduplicated: log²n may clamp to n/2).
  const auto L = static_cast<std::uint32_t>(std::log2(n));
  std::vector<std::uint32_t> regimes{n / 2, std::min(n / 2, L * L),
                                     std::min(n / 2, 2u)};
  regimes.erase(std::unique(regimes.begin(), regimes.end()), regimes.end());
  for (std::uint32_t r : regimes) {
    const core::Params params = core::Params::make(n, r);
    const auto res =
        analysis::parallel_sweep(seed, trials, [&](std::uint64_t s) {
          const auto run = analysis::stabilize(
              engine, params, s, analysis::default_budget(params));
          return run.converged ? static_cast<double>(run.interactions) : -1.0;
        }, jobs);
    table.add_row({"ElectLeader r=" + std::to_string(params.r), "yes",
                   util::fmt(res.summary.mean, 0),
                   util::fmt(res.summary.mean / n, 1),
                   util::fmt(core::bits_elect_leader(params), 0),
                   util::fmt_int(static_cast<long long>(res.failures))});
  }

  {
    baselines::CaiIzumiWada protocol(n);
    const auto res =
        analysis::parallel_sweep(seed, trials, [&](std::uint64_t s) {
          return run_baseline(
              protocol,
              [&](const auto& states) { return protocol.is_stable(states); },
              s, 600ull * n * n);
        }, jobs);
    table.add_row({"CaiIzumiWada", "yes", util::fmt(res.summary.mean, 0),
                   util::fmt(res.summary.mean / n, 1),
                   util::fmt(core::bits_ciw(n), 0),
                   util::fmt_int(static_cast<long long>(res.failures))});
  }

  {
    baselines::SilentSsrBaseline protocol(n);
    const auto res =
        analysis::parallel_sweep(seed, trials, [&](std::uint64_t s) {
          return run_baseline(
              protocol,
              [&](const auto& states) { return protocol.is_stable(states); },
              s, 4000ull * n * core::Params::log2ceil(n));
        }, jobs);
    table.add_row({"SilentSSR(names)", "yes", util::fmt(res.summary.mean, 0),
                   util::fmt(res.summary.mean / n, 1),
                   util::fmt(core::bits_ssr_baseline(n), 0),
                   util::fmt_int(static_cast<long long>(res.failures))});
  }

  {
    baselines::FightLeaderElection protocol(n);
    const auto res =
        analysis::parallel_sweep(seed, trials, [&](std::uint64_t s) {
          return run_baseline(
              protocol,
              [&](const auto& states) {
                return protocol.leader_count(states) == 1;
              },
              s, 200ull * n * n);
        }, jobs);
    table.add_row({"FightLE(2-state)", "no", util::fmt(res.summary.mean, 0),
                   util::fmt(res.summary.mean / n, 1), "1",
                   util::fmt_int(static_cast<long long>(res.failures))});
  }

  {
    baselines::LooseLeaderElection protocol(n);
    const auto res =
        analysis::parallel_sweep(seed, trials, [&](std::uint64_t s) {
          return run_baseline(
              protocol,
              [&](const auto& states) {
                return protocol.leader_count(states) == 1;
              },
              s, 4000ull * n * core::Params::log2ceil(n));
        }, jobs);
    table.add_row(
        {"LooseLeader", "loose", util::fmt(res.summary.mean, 0),
         util::fmt(res.summary.mean / n, 1),
         util::fmt(std::log2(2.0 * protocol.timeout()), 0),
         util::fmt_int(static_cast<long long>(res.failures))});
  }

  table.print(std::cout);
  table.print_csv(std::cout);
  std::cout << "\nn=" << n
            << ".  'state_bits' = log2(states) per agent (formal accounting; "
               "see bench_f6 for the full trade-off curves).\n";
  return 0;
}
