// Experiment E1 (extension) — graphical populations (paper §2, related
// work on anonymous networks): how do the paper's substrate primitives and
// the full protocol behave when interactions are restricted to the edges
// of a communication graph?
//
//   * Epidemic time tracks the graph's conductance (complete ≈ expander ≪
//     cycle/path/star-center-bottleneck).
//   * ElectLeader_r, designed for the complete graph, still stabilizes on
//     dense/expander graphs (timers concentrate), but degrades on
//     low-conductance graphs — quantifying how far the paper's assumption
//     can be relaxed in practice.
#include <iostream>
#include <string>
#include <vector>

#include "analysis/experiment.hpp"
#include "analysis/measure.hpp"
#include "core/elect_leader.hpp"
#include "core/safety.hpp"
#include "pp/graph.hpp"
#include "pp/simulator.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace ssle;

struct Epidemic {
  using State = int;
  std::uint32_t n;
  std::uint32_t population_size() const { return n; }
  State initial_state(std::uint32_t agent) const { return agent == 0 ? 1 : 0; }
  void interact(State& u, State& v, util::Rng&) const {
    if (u == 1 || v == 1) u = v = 1;
  }
};

double epidemic_time(const pp::Graph& g, std::uint64_t seed) {
  Epidemic proto{g.vertices()};
  pp::Simulator<Epidemic, pp::GraphScheduler> sim(
      proto, pp::Population<Epidemic>(proto), pp::GraphScheduler(g, seed),
      seed);
  const auto res = sim.run_until(
      [](const pp::Population<Epidemic>& pop, std::uint64_t) {
        for (std::uint32_t i = 0; i < pop.size(); ++i) {
          if (pop[i] == 0) return false;
        }
        return true;
      },
      1u << 26, g.vertices());
  return res.converged ? static_cast<double>(res.interactions) : -1.0;
}

double elect_leader_time(const pp::Graph& g, const core::Params& params,
                         std::uint64_t seed, std::uint64_t budget) {
  core::ElectLeader protocol(params);
  pp::Population<core::ElectLeader> pop(protocol);
  pp::Simulator<core::ElectLeader, pp::GraphScheduler> sim(
      protocol, std::move(pop), pp::GraphScheduler(g, seed), seed);
  const auto res = sim.run_until(
      [&](const pp::Population<core::ElectLeader>& c, std::uint64_t) {
        return core::is_safe_configuration(params, c.states());
      },
      budget, params.n);
  return res.converged ? static_cast<double>(res.interactions) : -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto n = static_cast<std::uint32_t>(cli.get_int("n", 48));
  const auto r = static_cast<std::uint32_t>(cli.get_int("r", 12));
  const auto jobs = cli.get_jobs();
  const auto trials = cli.get_count("trials", 3);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 120));

  analysis::print_banner(
      "E1 (extension: graphical populations, cf. §2)",
      "Population protocols transfer to communication graphs with runtime "
      "governed by graph properties (conductance)",
      "epidemic + stabilization: complete ≈ expander ≪ ER ≪ cycle/path; "
      "ElectLeader survives on well-connected graphs");

  util::Rng graph_rng(seed);
  std::vector<std::pair<std::string, pp::Graph>> graphs;
  graphs.emplace_back("complete", pp::Graph::complete(n));
  graphs.emplace_back("regular(d=8)",
                      pp::Graph::random_regular(n, 8, graph_rng));
  graphs.emplace_back("erdos_renyi(p=0.2)",
                      pp::Graph::erdos_renyi(n, 0.2, graph_rng));
  graphs.emplace_back("star", pp::Graph::star(n));
  graphs.emplace_back("cycle", pp::Graph::cycle(n));

  const core::Params params = core::Params::make(n, r);
  const std::uint64_t budget =
      60ull * analysis::default_budget(params);  // low-conductance headroom

  util::Table table({"graph", "edges", "epidemic(par.time)",
                     "stabilize(par.time)", "stab fails"});
  for (const auto& [name, graph] : graphs) {
    const auto epi =
        analysis::parallel_sweep(seed, trials, [&](std::uint64_t s) {
          return epidemic_time(graph, s);
        }, jobs);
    const auto stab =
        analysis::parallel_sweep(seed, trials, [&](std::uint64_t s) {
          return elect_leader_time(graph, params, s, budget);
        }, jobs);
    table.add_row({name, util::fmt_int(static_cast<long long>(graph.edges())),
                   util::fmt(epi.summary.mean / n, 1),
                   stab.samples.empty() ? "-"
                                        : util::fmt(stab.summary.mean / n, 1),
                   util::fmt_int(static_cast<long long>(stab.failures))});
  }
  table.print(std::cout);
  table.print_csv(std::cout);
  std::cout << "\nn=" << n << " r=" << r
            << ".  The paper's guarantees assume the complete interaction "
               "graph; this table measures how gracefully they degrade.\n";
  return 0;
}
