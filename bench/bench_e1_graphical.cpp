// Experiment E1 (extension) — graphical populations (paper §2, related
// work on anonymous networks): how do the paper's substrate primitives and
// the full protocol behave when interactions are restricted to the edges
// of a communication graph?
//
//   §1  Epidemic time tracks the graph's conductance (complete ≈ expander ≪
//       cycle/path/star-center-bottleneck), and ElectLeader_r — designed
//       for the complete graph — still stabilizes on dense/expander graphs
//       but degrades on low-conductance ones.
//   §2  Election scenarios: bully-style max-identifier election on the
//       complete graph, the star, and the ring — the classical distributed-
//       computing comparison point (one immortal leader, no
//       self-stabilization), whose runtime is exactly an epidemic of the
//       max identifier.
//   §3  Structured topologies at scale: the lumped (community, state)
//       engine runs blocked topologies (islands:K, multipartite:K) at
//       n = 10^6 — far beyond any materialized edge list (an islands edge
//       list at that n holds ~5·10^11 edges) — next to the naive
//       BlockedScheduler engine at comparison scale.  Same law (pinned by
//       tests/test_community_counts.cpp), disjoint feasibility ranges.
#include <chrono>
#include <cmath>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/experiment.hpp"
#include "analysis/measure.hpp"
#include "core/elect_leader.hpp"
#include "core/safety.hpp"
#include "obs/report.hpp"
#include "pp/epidemic.hpp"
#include "pp/graph.hpp"
#include "pp/simulator.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace ssle;

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

double epidemic_time(const pp::Graph& g, std::uint64_t seed) {
  pp::Epidemic proto{g.vertices()};
  pp::Simulator<pp::Epidemic, pp::GraphScheduler> sim(
      proto, pp::Population<pp::Epidemic>(proto), pp::GraphScheduler(g, seed),
      seed);
  const auto res = sim.run_until(
      [](const pp::Population<pp::Epidemic>& pop, std::uint64_t) {
        for (std::uint32_t i = 0; i < pop.size(); ++i) {
          if (pop[i] == 0) return false;
        }
        return true;
      },
      1u << 26, g.vertices());
  return res.converged ? static_cast<double>(res.interactions) : -1.0;
}

double elect_leader_time(const pp::Graph& g, const core::Params& params,
                         std::uint64_t seed, std::uint64_t budget) {
  core::ElectLeader protocol(params);
  pp::Population<core::ElectLeader> pop(protocol);
  pp::Simulator<core::ElectLeader, pp::GraphScheduler> sim(
      protocol, std::move(pop), pp::GraphScheduler(g, seed), seed);
  const auto res = sim.run_until(
      [&](const pp::Population<core::ElectLeader>& c, std::uint64_t) {
        return core::is_safe_configuration(params, c.states());
      },
      budget, params.n);
  return res.converged ? static_cast<double>(res.interactions) : -1.0;
}

// Bully-style max-identifier election: every agent starts leading with its
// own identifier; interacting agents both adopt the larger identifier seen
// so far, and an agent leads iff it still carries its own.  One immortal
// unique leader (agent n−1) emerges when its identifier has reached
// everyone — election time IS the epidemic time of that identifier, which
// makes this the clean scenario for conductance comparisons (and the
// classical non-self-stabilizing baseline: a single corrupted max_seen
// above n−1 kills every leader forever).
struct MaxIdElection {
  struct State {
    std::uint32_t own = 0;
    std::uint32_t max_seen = 0;
    friend bool operator==(const State&, const State&) = default;
  };
  std::uint32_t n;
  std::uint32_t population_size() const { return n; }
  State initial_state(std::uint32_t agent) const { return {agent, agent}; }
  void interact(State& u, State& v, util::Rng&) const {
    const std::uint32_t m = std::max(u.max_seen, v.max_seen);
    u.max_seen = m;
    v.max_seen = m;
  }
  static bool is_leader(const State& s) { return s.own == s.max_seen; }
};

double bully_time(const pp::Graph& g, std::uint64_t seed) {
  MaxIdElection proto{g.vertices()};
  pp::Simulator<MaxIdElection, pp::GraphScheduler> sim(
      proto, pp::Population<MaxIdElection>(proto), pp::GraphScheduler(g, seed),
      seed);
  const auto res = sim.run_until(
      [](const pp::Population<MaxIdElection>& pop, std::uint64_t) {
        std::uint32_t leaders = 0;
        for (std::uint32_t i = 0; i < pop.size(); ++i) {
          leaders += MaxIdElection::is_leader(pop[i]) ? 1 : 0;
        }
        return leaders == 1;
      },
      1u << 26, g.vertices());
  return res.converged ? static_cast<double>(res.interactions) : -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto n = static_cast<std::uint32_t>(cli.get_int("n", 48));
  const auto r = static_cast<std::uint32_t>(cli.get_int("r", 12));
  const auto jobs = cli.get_jobs();
  const auto trials = cli.get_count("trials", 3);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 120));
  // §3 knobs: the at-scale population for the lumped engine, the
  // comparison population for the naive BlockedScheduler engine, and an
  // optional single --topology / --engine restriction (the CI smoke runs
  // --topology=islands:4 --engine=batched --nbig=100000).
  const auto nbig = cli.get_count("nbig", 1000000);
  const auto ncmp = cli.get_count_u32("ncmp", 20000);
  const auto engine_big =
      analysis::engine_from_string(cli.get_string("engine", "batched"));
  const auto json_path = cli.get_string("json", "");

  obs::Report report("e1_graphical", 8);
  report.set("n", static_cast<std::uint64_t>(n))
      .set("r", static_cast<std::uint64_t>(r))
      .set("trials", static_cast<std::uint64_t>(trials));

  analysis::print_banner(
      "E1 (extension: graphical populations, cf. §2)",
      "Population protocols transfer to communication graphs with runtime "
      "governed by graph properties (conductance)",
      "epidemic + stabilization: complete ≈ expander ≪ ER ≪ cycle/path; "
      "blocked topologies scale to n=10^6 on the lumped engine");

  util::Rng graph_rng(seed);
  std::vector<std::pair<std::string, pp::Graph>> graphs;
  graphs.emplace_back("complete", pp::Graph::complete(n));
  graphs.emplace_back("regular(d=8)",
                      pp::Graph::random_regular(n, 8, graph_rng));
  graphs.emplace_back("erdos_renyi(p=0.2)",
                      pp::Graph::erdos_renyi(n, 0.2, graph_rng));
  graphs.emplace_back("star", pp::Graph::star(n));
  graphs.emplace_back("cycle", pp::Graph::cycle(n));

  const core::Params params = core::Params::make(n, r);
  const std::uint64_t budget =
      60ull * analysis::default_budget(params);  // low-conductance headroom

  util::Table table({"graph", "edges", "epidemic(par.time)",
                     "stabilize(par.time)", "stab fails"});
  auto graph_rows = util::Json::array();
  for (const auto& [name, graph] : graphs) {
    const auto epi =
        analysis::parallel_sweep(seed, trials, [&](std::uint64_t s) {
          return epidemic_time(graph, s);
        }, jobs);
    const auto stab =
        analysis::parallel_sweep(seed, trials, [&](std::uint64_t s) {
          return elect_leader_time(graph, params, s, budget);
        }, jobs);
    table.add_row({name, util::fmt_int(static_cast<long long>(graph.edges())),
                   util::fmt(epi.summary.mean / n, 1),
                   stab.samples.empty() ? "-"
                                        : util::fmt(stab.summary.mean / n, 1),
                   util::fmt_int(static_cast<long long>(stab.failures))});
    auto row = util::Json::object();
    row.set("graph", name);
    row.set("edges", static_cast<std::uint64_t>(graph.edges()));
    row.set("epidemic_mean_interactions", epi.summary.mean);
    row.set("stabilize_mean_interactions",
            stab.samples.empty() ? -1.0 : stab.summary.mean);
    row.set("stabilize_failures", static_cast<std::uint64_t>(stab.failures));
    graph_rows.push(std::move(row));
  }
  report.section("conductance", std::move(graph_rows));
  table.print(std::cout);
  table.print_csv(std::cout);
  std::cout << "\nn=" << n << " r=" << r
            << ".  The paper's guarantees assume the complete interaction "
               "graph; this table measures how gracefully they degrade.\n";

  // --- §2: election scenarios ---------------------------------------------
  // Bully (max-identifier) election on the three canonical shapes.  The
  // ring is the classical ring-election setting; the star shows the
  // center bottleneck; the complete graph is the population-protocol
  // default.  Election time = max-identifier epidemic time.
  std::cout << "\n-- election scenarios: bully (max-id) --\n";
  util::Table bully({"scenario", "graph", "election(par.time)",
                     "epidemic(par.time)"});
  const std::vector<std::pair<std::string, pp::Graph>> scenarios = {
      {"bully/complete", pp::Graph::complete(n)},
      {"bully/star", pp::Graph::star(n)},
      {"bully/ring", pp::Graph::cycle(n)},
  };
  auto bully_rows = util::Json::array();
  for (const auto& [name, graph] : scenarios) {
    const auto elect =
        analysis::parallel_sweep(seed + 7, trials, [&](std::uint64_t s) {
          return bully_time(graph, s);
        }, jobs);
    const auto epi =
        analysis::parallel_sweep(seed + 7, trials, [&](std::uint64_t s) {
          return epidemic_time(graph, s);
        }, jobs);
    bully.add_row({name, name.substr(name.find('/') + 1),
                   util::fmt(elect.summary.mean / n, 1),
                   util::fmt(epi.summary.mean / n, 1)});
    auto row = util::Json::object();
    row.set("scenario", name);
    row.set("election_mean_interactions", elect.summary.mean);
    row.set("epidemic_mean_interactions", epi.summary.mean);
    bully_rows.push(std::move(row));
  }
  report.section("bully_election", std::move(bully_rows));
  bully.print(std::cout);
  bully.print_csv(std::cout);
  std::cout << "Electing a maximum is spreading it — but a leader dies as "
               "soon as ANY larger identifier reaches it, so uniqueness can "
               "arrive well before the maximum has spread everywhere "
               "(visible on the ring).\n";

  // --- §3: blocked topologies at scale (the lumped engine) ----------------
  // Each topology runs on the naive BlockedScheduler engine at comparison
  // scale and on the lumped (community, state) engine at --nbig.  The
  // lumped rows are the point: n = 10^6 with K communities costs O(K·q)
  // memory, no edge list, exact law.
  std::cout << "\n-- blocked topologies at scale --\n";
  std::vector<std::string> specs;
  if (cli.has("topology")) {
    specs.push_back(cli.get_string("topology", "islands:4"));
  } else {
    specs = {"islands:4", "multipartite:4"};
  }
  util::Table big({"topology", "engine", "n", "interactions", "/(n ln n)",
                   "wall_s"});
  auto scale_rows = util::Json::array();
  for (const std::string& spec : specs) {
    const auto topology = analysis::topology_from_string(spec);
    struct Row {
      analysis::Engine engine;
      std::uint64_t n;
    };
    const std::vector<Row> rows = {{analysis::Engine::kNaive, ncmp},
                                   {engine_big, nbig}};
    for (const auto& row : rows) {
      const auto t0 = Clock::now();
      const auto res = analysis::epidemic_convergence(row.engine, row.n,
                                                      seed + 13, 0, 0,
                                                      topology);
      const double wall = seconds_since(t0);
      const double nlogn =
          static_cast<double>(row.n) * std::log(static_cast<double>(row.n));
      big.add_row({spec, analysis::engine_name(row.engine),
                   util::fmt_int(static_cast<long long>(row.n)),
                   res.converged
                       ? util::fmt_int(static_cast<long long>(res.interactions))
                       : "-",
                   res.converged
                       ? util::fmt(static_cast<double>(res.interactions) /
                                       nlogn,
                                   2)
                       : "-",
                   util::fmt(wall, 2)});
      auto jrow = util::Json::object();
      jrow.set("topology", spec);
      jrow.set("engine", analysis::engine_name(row.engine));
      jrow.set("n", row.n);
      jrow.set("converged", res.converged);
      jrow.set("interactions", res.interactions);
      jrow.set("wall_s", wall);
      scale_rows.push(std::move(jrow));
    }
  }
  big.print(std::cout);
  big.print_csv(std::cout);
  std::cout << "Blocked topologies keep the epidemic within a constant of "
               "n ln n while the cut weight stays bounded; the lumped "
               "engine is the only exact engine at n beyond edge-list "
               "feasibility.\n";
  report.section("blocked_scale", std::move(scale_rows));
  report.write_if(json_path, std::cout);
  return 0;
}
