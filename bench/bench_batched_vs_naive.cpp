// Batched vs naive (vs leaping) engine throughput on the epidemic
// workload.
//
// Acceptance target (ISSUE 1): the count-based BatchedSimulator must
// deliver ≥10x interactions/sec over the per-agent Simulator at n = 10^6.
// The naive engine pays two random-access cache misses per interaction
// into a multi-megabyte agent array; the batched engine advances Θ(√n)
// interactions per hypergeometric block over two counters.  The leaping
// engine (ISSUE 6) is reported alongside: it never iterates null
// interactions at all, so its interactions/sec figure scales with the
// *active* fraction of the workload, not the schedule length.
//
//   ./bench_batched_vs_naive [--n=1000000] [--interactions=20000000]
//                            [--seed=1] [--sweep=0]
#include <chrono>
#include <cstdint>
#include <iostream>
#include <vector>

#include "pp/batched_simulator.hpp"
#include "pp/epidemic.hpp"
#include "pp/leaping_simulator.hpp"
#include "pp/simulator.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct EngineResult {
  double secs = 0.0;
  double rate = 0.0;        ///< interactions per second
  std::uint64_t infected = 0;  ///< cross-check of the final configuration
};

EngineResult run_naive(std::uint32_t n, std::uint64_t interactions,
                       std::uint64_t seed) {
  ssle::pp::Epidemic proto{n};
  ssle::pp::Simulator<ssle::pp::Epidemic> sim(proto, seed);
  const auto t0 = Clock::now();
  sim.step(interactions);
  EngineResult r;
  r.secs = seconds_since(t0);
  r.rate = static_cast<double>(interactions) / r.secs;
  for (std::uint32_t i = 0; i < n; ++i) {
    r.infected += static_cast<std::uint64_t>(sim.population()[i]);
  }
  return r;
}

EngineResult run_batched(std::uint32_t n, std::uint64_t interactions,
                         std::uint64_t seed) {
  ssle::pp::Epidemic proto{n};
  ssle::pp::BatchedSimulator<ssle::pp::Epidemic> sim(proto, seed);
  const auto t0 = Clock::now();
  sim.step(interactions);
  EngineResult r;
  r.secs = seconds_since(t0);
  r.rate = static_cast<double>(interactions) / r.secs;
  r.infected = sim.config().count_of(1);
  return r;
}

EngineResult run_leaping(std::uint32_t n, std::uint64_t interactions,
                         std::uint64_t seed) {
  ssle::pp::Epidemic proto{n};
  ssle::pp::LeapingSimulator<ssle::pp::Epidemic> sim(proto, seed);
  const auto t0 = Clock::now();
  sim.step(interactions);
  EngineResult r;
  r.secs = seconds_since(t0);
  r.rate = static_cast<double>(interactions) / r.secs;
  r.infected = sim.config().count_of(1);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ssle;
  const util::Cli cli(argc, argv);
  const auto n = static_cast<std::uint32_t>(cli.get_int("n", 1000000));
  const auto interactions =
      static_cast<std::uint64_t>(cli.get_int("interactions", 20000000));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const bool sweep = cli.get_int("sweep", 0) != 0;
  if (n < 2 || interactions == 0) {
    std::cerr << "bench_batched_vs_naive: need --n >= 2 (the naive "
                 "scheduler draws pairs of distinct agents) and "
                 "--interactions > 0.\n";
    return 2;
  }

  std::vector<std::uint32_t> sizes;
  if (sweep) {
    sizes = {10000, 100000, 1000000};
  } else {
    sizes = {n};
  }

  util::Table table({"n", "interactions", "naive s", "naive ix/s", "batched s",
                     "batched ix/s", "speedup", "leaping s", "leap ix/s",
                     "leap speedup"});
  double final_speedup = 0.0;
  for (const auto size : sizes) {
    const auto naive = run_naive(size, interactions, seed);
    const auto batched = run_batched(size, interactions, seed);
    const auto leaping = run_leaping(size, interactions, seed);
    const double speedup = batched.rate / naive.rate;
    final_speedup = speedup;
    table.add_row({util::fmt_int(size),
                   util::fmt_int(static_cast<long long>(interactions)),
                   util::fmt(naive.secs, 3), util::fmt(naive.rate, 0),
                   util::fmt(batched.secs, 3), util::fmt(batched.rate, 0),
                   util::fmt(speedup, 1), util::fmt(leaping.secs, 3),
                   util::fmt(leaping.rate, 0),
                   util::fmt(leaping.rate / naive.rate, 1)});
    // At the default budget (20·n·ln n-ish) every engine saturates the
    // epidemic; failing to is a red flag that one of them is not
    // simulating the same process (or the budget was set too low).
    if (naive.infected != size || batched.infected != size ||
        leaping.infected != size) {
      std::cerr << "WARNING: epidemic not saturated at this budget: naive="
                << naive.infected << "/" << size << " batched="
                << batched.infected << "/" << size << " leaping="
                << leaping.infected << "/" << size << "\n";
    }
  }
  table.print(std::cout);
  std::cout << "\nspeedup at n=" << sizes.back() << ": " << final_speedup
            << "x (target >= 10x); the leaping column counts *scheduled* "
               "interactions — null runs are leapt, never iterated, so its "
               "rate is bounded by events, not interactions\n";
  return final_speedup >= 10.0 ? 0 : 1;
}
