// Experiment F3 — self-stabilization recovery (Lemma 6.3 + Theorem 1.1):
// from ANY configuration, the protocol reaches a safe configuration within
// O((n²/r)·log n) interactions w.h.p.  Measures recovery time per
// adversarial corruption class, on either engine:
//
//   --engine=naive|batched   dispatches analysis::stabilize (the batched
//                            path projects the adversarial configuration
//                            onto state counts and runs the Fenwick-indexed
//                            block sampler — this is what makes n = 10^5
//                            recovery rows executable)
//   --start=adversarial|clean  adversarial (default) sweeps the corruption
//                            classes; clean measures the clean-start
//                            baseline only
//   --class=<name>           restrict to one corruption class (CI smoke)
//   --budget=<interactions>  override the per-trial budget (0 = auto)
//   --mult=faithful|light    message multiplicity; faithful's Θ(m²)
//                            messages per rank are prohibitive at large n
//   --topology=complete|ring|islands:K[:intra:inter]|multipartite:K
//                            interaction topology (Engine × Topology
//                            dispatch in analysis::stabilize: blocked
//                            topologies run the lumped community engine
//                            on --engine=batched; ring is naive-only)
//   --json=<path>            structured results (obs::Report envelope)
#include <iostream>
#include <utility>

#include "analysis/experiment.hpp"
#include "analysis/measure.hpp"
#include "core/adversary.hpp"
#include "core/params.hpp"
#include "obs/report.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ssle;
  const util::Cli cli(argc, argv);
  const auto n = static_cast<std::uint32_t>(cli.get_int("n", 48));
  const auto r = static_cast<std::uint32_t>(cli.get_int("r", n / 4));
  const auto trials = cli.get_count("trials", 5);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 30));
  const auto jobs = cli.get_jobs();
  const auto engine = analysis::engine_from_string(
      cli.get_string("engine", "naive"));
  const auto start = analysis::start_from_string(
      cli.get_string("start", "adversarial"));
  const auto class_filter = cli.get_string("class", "");
  const auto mult = analysis::multiplicity_from_string(
      cli.get_string("mult", "faithful"));
  const auto topology = analysis::topology_from_string(
      cli.get_string("topology", "complete"));
  const auto json_path = cli.get_string("json", "");

  analysis::print_banner(
      "F3 (Lemma 6.3 recovery)",
      "From an arbitrary configuration, ElectLeader_r triggers a reset or "
      "reaches C_safe within O((n²/r)·log n) interactions w.h.p.",
      "every corruption class recovers within the budget; clean-start time "
      "is the baseline row ('none' = already safe, 0)");

  const core::Params params = core::Params::make(n, r, mult);
  std::uint64_t budget = cli.get_count("budget", 0);
  if (budget == 0) budget = 8 * analysis::default_budget(params);

  // Row set: the corruption classes (adversarial), or the single clean
  // baseline.  --class narrows the sweep to one class, e.g. for CI smoke
  // at n = 10^5 where the full matrix would take minutes.
  std::vector<core::Corruption> classes;
  if (start == analysis::StartKind::kClean) {
    classes.push_back(core::Corruption::kNone);
  } else if (class_filter.empty()) {
    classes = core::all_corruptions();
  } else {
    for (const auto c : core::all_corruptions()) {
      if (core::corruption_name(c) == class_filter) classes.push_back(c);
    }
    if (classes.empty()) {
      std::cerr << "error: --class=" << class_filter
                << " is not a corruption class\n";
      return 2;
    }
  }

  obs::Report report("f3_recovery", 8);
  report.set("n", static_cast<std::uint64_t>(n))
      .set("r", static_cast<std::uint64_t>(r))
      .set("trials", static_cast<std::uint64_t>(trials))
      .set("engine", analysis::engine_name(engine))
      .set("start", analysis::start_name(start))
      .set("mult", analysis::multiplicity_name(mult))
      .set("topology", analysis::topology_name(topology))
      .set("budget", budget);
  auto rows = util::Json::array();

  util::Table table({"class", "recov.interactions(mean)", "ci95", "par.time",
                     "p90", "fails"});
  for (const auto corruption : classes) {
    const auto result =
        analysis::parallel_sweep(seed, trials, [&](std::uint64_t s) {
          const auto run = analysis::stabilize(engine, start, params,
                                               corruption, s, budget,
                                               topology);
          return run.converged ? static_cast<double>(run.interactions) : -1.0;
        }, jobs);
    const std::string label = start == analysis::StartKind::kClean
                                  ? "clean"
                                  : core::corruption_name(corruption);
    table.add_row({label,
                   util::fmt(result.summary.mean, 0),
                   util::fmt(util::ci95_halfwidth(result.summary), 0),
                   util::fmt(result.summary.mean / n, 1),
                   util::fmt(result.summary.p90, 0),
                   util::fmt_int(static_cast<long long>(result.failures))});
    auto row = util::Json::object();
    row.set("class", label);
    row.set("mean_interactions", result.summary.mean);
    row.set("ci95", util::ci95_halfwidth(result.summary));
    row.set("p90", result.summary.p90);
    row.set("failures", static_cast<std::uint64_t>(result.failures));
    rows.push(std::move(row));
  }
  table.print(std::cout);
  table.print_csv(std::cout);
  std::cout << "\nn=" << n << " r=" << r
            << "  engine=" << analysis::engine_name(engine)
            << " start=" << analysis::start_name(start)
            << " mult=" << analysis::multiplicity_name(mult)
            << " topology=" << analysis::topology_name(topology)
            << "  (budget per trial: " << budget << " interactions)\n";
  report.section("recovery", std::move(rows));
  report.write_if(json_path, std::cout);
  return 0;
}
