// Experiment F3 — self-stabilization recovery (Lemma 6.3 + Theorem 1.1):
// from ANY configuration, the protocol reaches a safe configuration within
// O((n²/r)·log n) interactions w.h.p.  Measures recovery time per
// adversarial corruption class.
#include <iostream>

#include "analysis/experiment.hpp"
#include "analysis/measure.hpp"
#include "core/adversary.hpp"
#include "core/params.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ssle;
  const util::Cli cli(argc, argv);
  const auto n = static_cast<std::uint32_t>(cli.get_int("n", 48));
  const auto r = static_cast<std::uint32_t>(cli.get_int("r", n / 4));
  const auto trials = cli.get_count("trials", 5);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 30));
  const auto jobs = cli.get_jobs();

  analysis::print_banner(
      "F3 (Lemma 6.3 recovery)",
      "From an arbitrary configuration, ElectLeader_r triggers a reset or "
      "reaches C_safe within O((n²/r)·log n) interactions w.h.p.",
      "every corruption class recovers within the budget; clean-start time "
      "is the baseline row ('none' = already safe, 0)");

  const core::Params params = core::Params::make(n, r);
  const std::uint64_t budget = 8 * analysis::default_budget(params);

  util::Table table({"class", "recov.interactions(mean)", "ci95", "par.time",
                     "p90", "fails"});
  for (const auto corruption : core::all_corruptions()) {
    const auto result =
        analysis::parallel_sweep(seed, trials, [&](std::uint64_t s) {
          const auto run =
              analysis::stabilize_adversarial(params, corruption, s, budget);
          return run.converged ? static_cast<double>(run.interactions) : -1.0;
        }, jobs);
    table.add_row({core::corruption_name(corruption),
                   util::fmt(result.summary.mean, 0),
                   util::fmt(util::ci95_halfwidth(result.summary), 0),
                   util::fmt(result.summary.mean / n, 1),
                   util::fmt(result.summary.p90, 0),
                   util::fmt_int(static_cast<long long>(result.failures))});
  }
  table.print(std::cout);
  table.print_csv(std::cout);
  std::cout << "\nn=" << n << " r=" << r
            << "  (budget per trial: " << budget << " interactions)\n";
  return 0;
}
