// The multi-trial experiment runner, measured.  Three sections:
//
//   [1] Determinism — parallel_sweep must return a SweepResult that is
//       bit-identical to serial sweep() for every jobs count (each trial
//       is a pure function of its seed; results are collected in seed
//       order).  Verified here on a real ElectLeader workload, and the
//       serial-vs-parallel wall clock gives the measured multi-core
//       speedup.
//
//   [2] Engine cross-validation — stabilize(naive) vs stabilize(batched)
//       at --ncross (default 1024).  std::hash<core::Agent> puts the
//       batched registry on the O(1) path, but ElectLeader keeps ~n
//       distinct live states (FastLE identifiers), so counts compress
//       little for this protocol: this section reports the honest ratio
//       rather than assuming the batched engine wins.
//
//   [3] Scale — a paper sweep point at n = --nbig (default 10^6): the
//       Lemma A.2 epidemic bound (< 7·n·ln n w.h.p.), multi-trial on the
//       batched engine with trials fanned across cores.  The same
//       measurement bench_f9 runs at n ≤ 512 on the naive engine.
//
//   [4] Fenwick registry at q ≈ n — ElectLeader from a random_states
//       adversarial start at n = --nfen (default 10^5), so the registry
//       holds ≈ n distinct states from the first block.  Both engines run
//       the same fixed interaction count (--fen-interactions; recovery to
//       convergence at this scale is a multi-minute bench, fixed work is
//       the honest apples-to-apples wall clock) and the table reports the
//       naive/batched ratio plus which block sampler the batched engine
//       chose (fenwick vs dense blocks).
//
//   [5] Interned-state engine + memoized δ-cache at q ≈ n — the PR-5 A/B.
//       DerandomizedElectLeader (deterministic δ, the paper's App. B
//       presentation) from the same random_states start at n = --nmem,
//       fixed work: naive vs batched-uncached (DeltaMemo::kDisabled — the
//       per-interaction path minus the cache) vs batched-memoized.  Plus
//       an epidemic parity gate: the memoized engine must not lose to the
//       uncached dense path on the two-state workload (--gate-perf turns
//       a regression there into a nonzero exit for CI).  Section 4 run on
//       the same binary is the like-for-like comparison point against the
//       PR 3 numbers recorded in ROADMAP/BENCH_PR5.json.
//
//   [6] Pair-type leap engine — the PR-6 A/B.  Same Lemma A.2 epidemic
//       measurement as section 3, twice: a multi-trial sweep at n = --nbig
//       on the leaping engine (law parity with section 3's batched means
//       plus the wall-clock ratio; --gate-perf fails the run if either
//       regresses), and the headline single-trial point at n = --nleap
//       (default 10^10 — beyond the naive engine's 32-bit population
//       ceiling) where the banded batch path resolves whole windows in
//       O(1) draws and the sweep completes in about a second.
//
//   [7] Community lumping — the PR-7 law gate.  The Lemma A.2 epidemic on
//       a blocked islands topology, twice: the naive agent-array engine
//       under pp::BlockedScheduler and the lumped (community, state)
//       engine (pp::CommunityCountsConfiguration under the batched
//       simulator).  Exact probes (probe_every = 1) at n = --ncomm, so the
//       two empirical means estimate the same hitting-time law and must
//       agree within the CI band — a statistical twin of the tiny-n TV
//       tests, run at a scale where a pair-weight bug cannot hide either.
//       Law only: the engines have disjoint feasibility ranges (§3 of
//       bench_e1_graphical is the wall-clock story), so --gate-perf gates
//       the law band, not the wall clock.
//
//   [8] Observability overhead — the PR-8 gate.  The memoized epidemic
//       workload of section 5 run twice with identical chunked stepping:
//       plain, and with a metrics()+Journal::tick probe per chunk (the
//       heartbeat sink is /dev/null unless --json is set).  The engine
//       counters themselves are always-on in both runs; what this gates is
//       the cost of *reading* them — the snapshot + journal layer must
//       stay under 3% on the hottest path (--gate-perf turns a breach into
//       a nonzero exit).
//
//   [9] Sharded single-run engine + flat sampler — the PR-9 A/B, three
//       parts.  (a) T = 1 parity: --engine=sharded:1 delegates to a real
//       BatchedSimulator, so a stabilization run must return the exact
//       same result as --engine=batched — always gated, like section 1's
//       determinism check.  (b) Flat-vs-Fenwick forced comparison on a
//       small-q per-draw workload (LooseLeaderElection, q ≪ 64): the
//       branchless cumulative scan must beat the Fenwick descent ≥ 1.3×
//       (--gate-perf).  (c) The headline: one adversarial ElectLeader run
//       at q ≈ n = --nfen, batched vs sharded:4 — the single-run speedup
//       this PR exists for, gated ≥ 1.25× under --gate-perf when the host
//       has ≥ 4 cores (loud skip otherwise; the honest measured ratio is
//       reported and recorded either way).
//
//   --n=64 --trials=8 --seed=7 --jobs=0 (0 = all cores)
//   --ncross=1024 --cross-trials=1 --nbig=1000000
//   --nfen=100000 --fen-interactions=1000000
//   --nmem=100000 --mem-interactions=300000
//   --nleap=10000000000 --ncomm=2000 --json=<path> --gate-perf
#include <algorithm>
#include <chrono>
#include <cmath>
#include <iostream>
#include <thread>
#include <vector>

#include "analysis/experiment.hpp"
#include "analysis/measure.hpp"
#include "baselines/loose_leader.hpp"
#include "core/adversary.hpp"
#include "core/derandomized.hpp"
#include "core/params.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "pp/batched_simulator.hpp"
#include "pp/epidemic.hpp"
#include "pp/sharded_simulator.hpp"
#include "pp/simulator.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace ssle;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

bool identical(const analysis::SweepResult& a, const analysis::SweepResult& b) {
  return a.samples == b.samples && a.failures == b.failures &&
         a.summary.count == b.summary.count && a.summary.mean == b.summary.mean &&
         a.summary.stddev == b.summary.stddev &&
         a.summary.median == b.summary.median && a.summary.p10 == b.summary.p10 &&
         a.summary.p90 == b.summary.p90;
}

double epidemic_time_batched(std::uint32_t n, std::uint64_t seed) {
  pp::Epidemic proto{n};
  pp::BatchedSimulator<pp::Epidemic> sim(proto, seed);
  const auto r = sim.run_until(
      [](const pp::CountsConfiguration<pp::Epidemic>& c, std::uint64_t) {
        return c.count_of(1) == c.population_size();
      },
      64ull * n * core::Params::log2ceil(n));
  return r.converged ? static_cast<double>(r.interactions) : -1.0;
}

double epidemic_time_leaping(std::uint64_t n, std::uint64_t seed) {
  const auto r =
      analysis::epidemic_convergence(analysis::Engine::kLeaping, n, seed);
  return r.converged ? static_cast<double>(r.interactions) : -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto n = cli.get_count_u32("n", 64);
  const auto trials = cli.get_count("trials", 8);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));
  const auto jobs = analysis::effective_jobs(cli.get_jobs(), trials);
  const auto ncross = cli.get_count_u32("ncross", 1024);
  const auto cross_trials = cli.get_count("cross-trials", 1);
  const auto nbig =
      cli.get_count_u32("nbig", 1000000);
  const auto nfen = cli.get_count_u32("nfen", 100000);
  const auto fen_interactions = cli.get_count("fen-interactions", 1000000);
  const auto nmem = cli.get_count_u32("nmem", 100000);
  const auto mem_interactions = cli.get_count("mem-interactions", 300000);
  const auto nleap =
      static_cast<std::uint64_t>(cli.get_count("nleap", 10000000000ull));
  const auto ncomm = cli.get_count_u32("ncomm", 2000);
  const auto json_path = cli.get_string("json", "");
  const bool gate_perf = cli.has("gate-perf");

  obs::Report report("parallel_sweep", 9);

  analysis::print_banner(
      "PS (parallel sweep runner)",
      "parallel_sweep is bit-identical to serial sweep for any jobs count "
      "and scales with cores; the batched engine extends paper sweeps to "
      "n >= 10^6",
      "identical tables at jobs 1/2/N; speedup ~ min(jobs, trials); "
      "epidemic at n=10^6 within 7 n ln n");

  // [1] Determinism + speedup on ElectLeader stabilization.
  const core::Params params = core::Params::make(n, n / 2);
  const auto measure = [&](std::uint64_t s) {
    const auto run = analysis::stabilize(analysis::Engine::kNaive, params, s,
                                         analysis::default_budget(params));
    return run.converged ? static_cast<double>(run.interactions) : -1.0;
  };
  auto t0 = Clock::now();
  const auto serial = analysis::sweep(seed, trials, measure);
  const double serial_s = seconds_since(t0);
  const auto two = analysis::parallel_sweep(seed, trials, measure, 2);
  t0 = Clock::now();
  const auto wide = analysis::parallel_sweep(seed, trials, measure, jobs);
  const double wide_s = seconds_since(t0);

  const bool ok = identical(serial, two) && identical(serial, wide);
  util::Table t1({"runner", "jobs", "mean", "ci95", "fails", "wall_s",
                  "speedup"});
  t1.add_row({"sweep", "1", util::fmt(serial.summary.mean, 0),
              util::fmt(util::ci95_halfwidth(serial.summary), 0),
              util::fmt_int(static_cast<long long>(serial.failures)),
              util::fmt(serial_s, 2), "1.0x"});
  t1.add_row({"parallel_sweep", util::fmt_int(static_cast<long long>(jobs)),
              util::fmt(wide.summary.mean, 0),
              util::fmt(util::ci95_halfwidth(wide.summary), 0),
              util::fmt_int(static_cast<long long>(wide.failures)),
              util::fmt(wide_s, 2),
              util::fmt(wide_s > 0 ? serial_s / wide_s : 0.0, 1) + "x"});
  std::cout << "\n[1] Determinism + speedup (ElectLeader n=" << n
            << ", r=" << n / 2 << ", trials=" << trials << "):\n";
  t1.print(std::cout);
  t1.print_csv(std::cout);
  std::cout << "bit-identical across jobs {1, 2, " << jobs << "}: "
            << (ok ? "YES" : "NO — BUG") << "\n";
  {
    auto s1 = util::Json::object();
    s1.set("n", static_cast<std::uint64_t>(n));
    s1.set("trials", static_cast<std::uint64_t>(trials));
    s1.set("jobs", static_cast<std::uint64_t>(jobs));
    s1.set("bit_identical", ok);
    s1.set("serial_wall_s", serial_s);
    s1.set("parallel_wall_s", wide_s);
    report.section("determinism", std::move(s1));
  }

  // [2] Naive vs batched engine on the same measurement.
  {
    const core::Params p =
        core::Params::make(ncross, 64, core::MessageMultiplicity::kLight);
    util::Table t2({"engine", "mean interactions", "fails", "wall_s"});
    double naive_s = 0.0, batched_s = 0.0;
    for (const auto engine :
         {analysis::Engine::kNaive, analysis::Engine::kBatched}) {
      t0 = Clock::now();
      const auto res = analysis::parallel_sweep(
          seed + 1000, cross_trials,
          [&](std::uint64_t s) {
            const auto run = analysis::stabilize(
                engine, p, s, analysis::default_budget(p));
            return run.converged ? static_cast<double>(run.interactions)
                                 : -1.0;
          },
          jobs);
      const double wall = seconds_since(t0);
      (engine == analysis::Engine::kNaive ? naive_s : batched_s) = wall;
      t2.add_row({analysis::engine_name(engine),
                  util::fmt(res.summary.mean, 0),
                  util::fmt_int(static_cast<long long>(res.failures)),
                  util::fmt(wall, 2)});
    }
    std::cout << "\n[2] Engine cross-validation (ElectLeader n=" << ncross
              << ", r=64, light multiplicity, trials=" << cross_trials
              << "):\n";
    t2.print(std::cout);
    t2.print_csv(std::cout);
    std::cout << "batched/naive wall-clock ratio: "
              << util::fmt(naive_s > 0 ? batched_s / naive_s : 0.0, 2)
              << " (ElectLeader keeps ~n distinct states, so counts "
                 "compress little here; two-state workloads are the "
                 "batched engine's home turf — see section 3)\n";
    auto s2 = util::Json::object();
    s2.set("n", static_cast<std::uint64_t>(ncross));
    s2.set("naive_wall_s", naive_s);
    s2.set("batched_wall_s", batched_s);
    report.section("cross_engine", std::move(s2));
  }

  // [3] A paper sweep point at n >= 10^6: Lemma A.2 epidemic, batched.
  // The summary and wall clock feed section 6's leap-vs-batched parity
  // gate, so they live in the outer scope.
  util::Summary batched_epi_summary;
  double batched_epi_wall_s = 0.0;
  {
    t0 = Clock::now();
    const auto res = analysis::parallel_sweep(
        seed + 2000, trials,
        [&](std::uint64_t s) { return epidemic_time_batched(nbig, s); }, jobs);
    const double wall = seconds_since(t0);
    const double bound = 7.0 * static_cast<double>(nbig) *
                         std::log(static_cast<double>(nbig));
    util::Table t3({"n", "epidemic(mean)", "ci95", "epi/(n·ln n)", "fails",
                    "wall_s"});
    t3.add_row({util::fmt_int(nbig), util::fmt(res.summary.mean, 0),
                util::fmt(util::ci95_halfwidth(res.summary), 0),
                util::fmt(res.summary.mean /
                              (static_cast<double>(nbig) *
                               std::log(static_cast<double>(nbig))),
                          2),
                util::fmt_int(static_cast<long long>(res.failures)),
                util::fmt(wall, 2)});
    std::cout << "\n[3] Batched-engine sweep point at n=" << nbig
              << " (Lemma A.2, " << trials << " trials across " << jobs
              << " jobs):\n";
    t3.print(std::cout);
    t3.print_csv(std::cout);
    std::cout << "w.h.p. bound 7·n·ln n = " << util::fmt(bound, 0) << ": "
              << (res.failures == 0 && res.summary.max < bound ? "HELD"
                                                               : "EXCEEDED")
              << "\n";
    auto s3 = util::Json::object();
    s3.set("n", static_cast<std::uint64_t>(nbig));
    s3.set("epidemic_mean_interactions", res.summary.mean);
    s3.set("failures", static_cast<std::uint64_t>(res.failures));
    s3.set("bound_held", res.failures == 0 && res.summary.max < bound);
    s3.set("wall_s", wall);
    report.section("epidemic_scale", std::move(s3));
    batched_epi_summary = res.summary;
    batched_epi_wall_s = wall;
  }

  // [4] Fenwick registry at q ≈ n: ElectLeader throughput from a
  // random_states adversarial start (the registry is ≈ n distinct states
  // from interaction zero), fixed work on both engines.  r stays small
  // (64, as in section 2): per-agent state is Θ(r), so r = n/2 at this n
  // would be a memory bench, not a sampler bench — and q ≈ n already
  // holds at small r via the FastLE identifiers and AssignRanks labels.
  {
    const core::Params p = core::Params::make(
        nfen, std::min(64u, std::max(1u, nfen / 2)),
        core::MessageMultiplicity::kLight);
    util::Rng gen(util::substream(seed + 3000, 77));
    const auto adversarial = core::make_adversarial_config(
        p, core::Corruption::kRandomStates, gen);

    core::ElectLeader protocol(p);
    t0 = Clock::now();
    {
      pp::Simulator<core::ElectLeader> sim(
          protocol, pp::Population<core::ElectLeader>(adversarial),
          seed + 3000);
      sim.step(fen_interactions);
    }
    const double naive_s = seconds_since(t0);

    const auto batched_wall = [&](pp::BlockSampling sampling) {
      pp::CountsConfiguration<core::ElectLeader> counts(adversarial);
      pp::BatchedSimulator<core::ElectLeader> bsim(
          protocol, std::move(counts), seed + 3000, sampling);
      const auto start_t = Clock::now();
      bsim.step(fen_interactions);
      return seconds_since(start_t);
    };
    // The A/B this section exists for: the PR-2 dense sampler (O(q) per
    // block) against the Fenwick sampler (O(L·log q) per block) on the
    // exact same workload, plus the naive engine as the honest yardstick.
    const double dense_s = batched_wall(pp::BlockSampling::kDense);
    const double fenwick_s = batched_wall(pp::BlockSampling::kFenwick);

    util::Table t4({"engine", "interactions", "wall_s", "Mint/s"});
    const auto add = [&](const char* name, double wall) {
      t4.add_row({name, util::fmt_int(static_cast<long long>(fen_interactions)),
                  util::fmt(wall, 2),
                  util::fmt(fen_interactions / 1e6 / std::max(1e-9, wall), 2)});
    };
    add("naive", naive_s);
    add("batched (dense blocks)", dense_s);
    add("batched (fenwick blocks)", fenwick_s);
    std::cout << "\n[4] Fenwick registry at q ~ n (ElectLeader n=" << nfen
              << ", r=" << p.r
              << ", light, random_states start, fixed work):\n";
    t4.print(std::cout);
    t4.print_csv(std::cout);
    std::cout << "initial live states q="
              << pp::CountsConfiguration<core::ElectLeader>(adversarial)
                     .num_live_states()
              << " of n=" << nfen << "\n"
              << "fenwick vs dense block sampling speedup: "
              << util::fmt(fenwick_s > 0 ? dense_s / fenwick_s : 0.0, 2)
              << "x\nnaive/batched(fenwick) wall-clock ratio: "
              << util::fmt(fenwick_s > 0 ? naive_s / fenwick_s : 0.0, 2)
              << " (>1 means the batched engine wins; honest either way — "
                 "the interned id-space loop removed the per-interaction "
                 "allocations, but the randomized δ still pays two state "
                 "copy-assigns and a hash per changed output)\n";
    auto s4 = util::Json::object();
    s4.set("n", static_cast<std::uint64_t>(nfen));
    s4.set("interactions", static_cast<std::uint64_t>(fen_interactions));
    s4.set("naive_wall_s", naive_s);
    s4.set("batched_dense_wall_s", dense_s);
    s4.set("batched_fenwick_wall_s", fenwick_s);
    report.section("fenwick_q_eq_n", std::move(s4));
  }

  // [5] Interned-state engine + memoized δ-cache at q ≈ n: the A/B this
  // PR exists for.  DerandomizedElectLeader (deterministic δ) from the
  // same kind of random_states start as section 4, fixed work, three
  // ways: naive, batched with the memo cache pinned OFF (the uncached
  // per-interaction path), batched with the cache ON.  Cached and
  // uncached runs are bit-identical by construction (tests pin that), so
  // the wall-clock delta is purely the cache.
  bool gate_ok = true;
  {
    const core::Params p = core::Params::make(
        nmem, std::min(64u, std::max(1u, nmem / 2)),
        core::MessageMultiplicity::kLight);
    util::Rng gen(util::substream(seed + 4000, 77));
    const auto agents = core::make_adversarial_config(
        p, core::Corruption::kRandomStates, gen);
    // Wrap the corrupted agents with the protocol's own initial synthetic
    // coins (wrap_agent keeps the stagger rule in one place).
    std::vector<core::DerandomizedElectLeader::State> derand;
    derand.reserve(agents.size());
    for (std::uint32_t i = 0; i < agents.size(); ++i) {
      derand.push_back(
          core::DerandomizedElectLeader::wrap_agent(agents[i], p, i));
    }
    core::DerandomizedElectLeader dproto(p);

    t0 = Clock::now();
    {
      pp::Simulator<core::DerandomizedElectLeader> sim(
          dproto, pp::Population<core::DerandomizedElectLeader>(derand),
          seed + 4000);
      sim.step(mem_interactions);
    }
    const double derand_naive_s = seconds_since(t0);

    std::uint64_t hits = 0, misses = 0, entries = 0;
    const auto batched_wall = [&](pp::DeltaMemo memo) {
      pp::CountsConfiguration<core::DerandomizedElectLeader> counts(derand);
      pp::BatchedSimulator<core::DerandomizedElectLeader> bsim(
          dproto, std::move(counts), seed + 4000, pp::BlockSampling::kAuto,
          memo);
      const auto start_t = Clock::now();
      bsim.step(mem_interactions);
      const double w = seconds_since(start_t);
      if (memo == pp::DeltaMemo::kEnabled) {
        hits = bsim.delta_cache_hits();
        misses = bsim.delta_cache_misses();
        entries = bsim.delta_cache_size();
      }
      return w;
    };
    const double uncached_s = batched_wall(pp::DeltaMemo::kDisabled);
    const double cached_s = batched_wall(pp::DeltaMemo::kEnabled);

    // Clean start on the same protocol: the registry starts narrow and the
    // convergence regime keeps revisiting the same pair types — the
    // memoized path's favourable regime, as the adversarial random_states
    // start (fresh identifiers everywhere, pair types almost never recur)
    // is its unfavourable one.  Both are reported.
    std::uint64_t clean_hits = 0, clean_misses = 0;
    const auto clean_wall = [&](pp::DeltaMemo memo) {
      pp::BatchedSimulator<core::DerandomizedElectLeader> bsim(
          dproto, seed + 4500, pp::BlockSampling::kAuto, memo);
      const auto start_t = Clock::now();
      bsim.step(mem_interactions);
      const double w = seconds_since(start_t);
      if (memo == pp::DeltaMemo::kEnabled) {
        clean_hits = bsim.delta_cache_hits();
        clean_misses = bsim.delta_cache_misses();
      }
      return w;
    };
    const double clean_uncached_s = clean_wall(pp::DeltaMemo::kDisabled);
    const double clean_cached_s = clean_wall(pp::DeltaMemo::kEnabled);

    util::Table t5({"start", "engine", "interactions", "wall_s", "Mint/s"});
    const auto add = [&](const char* start, const char* name, double wall) {
      t5.add_row({start, name,
                  util::fmt_int(static_cast<long long>(mem_interactions)),
                  util::fmt(wall, 2),
                  util::fmt(mem_interactions / 1e6 / std::max(1e-9, wall), 2)});
    };
    add("random_states", "naive", derand_naive_s);
    add("random_states", "batched (memo off)", uncached_s);
    add("random_states", "batched (memo on)", cached_s);
    add("clean", "batched (memo off)", clean_uncached_s);
    add("clean", "batched (memo on)", clean_cached_s);
    std::cout << "\n[5] Interned engine + memoized δ-cache "
                 "(DerandomizedElectLeader n=" << nmem << ", r=" << p.r
              << ", light, fixed work):\n";
    t5.print(std::cout);
    t5.print_csv(std::cout);
    const auto rate = [](std::uint64_t h, std::uint64_t m) {
      return h + m > 0 ? static_cast<double>(h) / static_cast<double>(h + m)
                       : 0.0;
    };
    std::cout << "δ-cache, random_states start: " << hits << " hits / "
              << misses << " misses ("
              << util::fmt(100.0 * rate(hits, misses), 1) << "% hit rate, "
              << entries << " resident pair types)\n"
              << "δ-cache, clean start: " << clean_hits << " hits / "
              << clean_misses << " misses ("
              << util::fmt(100.0 * rate(clean_hits, clean_misses), 1)
              << "% hit rate)\n"
              << "memoized vs uncached speedup: "
              << util::fmt(cached_s > 0 ? uncached_s / cached_s : 0.0, 2)
              << "x (random_states), "
              << util::fmt(
                     clean_cached_s > 0 ? clean_uncached_s / clean_cached_s
                                        : 0.0,
                     2)
              << "x (clean)\nnaive/batched(memoized) wall-clock ratio: "
              << util::fmt(cached_s > 0 ? derand_naive_s / cached_s : 0.0, 2)
              << " (>1 means the batched engine wins; honest either way)\n";

    // Epidemic parity gate: on the two-state workload the memoized engine
    // must at least match the uncached dense path (the PR 3 hot path) —
    // the cache would be a net loss if its lookups cost more than the δ
    // calls it replaces on narrow registries.
    pp::Epidemic eproto{nmem};
    const std::uint64_t epi_work = 50 * static_cast<std::uint64_t>(nmem);
    // min-of-3, alternating the two configurations, so a single scheduler
    // hiccup (or first-run cache warmup) cannot flip the gate on a shared
    // CI runner.
    const auto epidemic_wall = [&](pp::DeltaMemo memo) {
      pp::BatchedSimulator<pp::Epidemic> bsim(
          eproto, seed + 5000, pp::BlockSampling::kDense, memo);
      const auto start_t = Clock::now();
      bsim.step(epi_work);
      return seconds_since(start_t);
    };
    double epi_uncached_s = 1e300, epi_cached_s = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      epi_uncached_s =
          std::min(epi_uncached_s, epidemic_wall(pp::DeltaMemo::kDisabled));
      epi_cached_s =
          std::min(epi_cached_s, epidemic_wall(pp::DeltaMemo::kEnabled));
    }
    gate_ok = epi_cached_s <= 1.25 * epi_uncached_s + 0.02;
    std::cout << "epidemic parity gate (n=" << nmem << ", " << epi_work
              << " interactions, dense blocks): uncached "
              << util::fmt(epi_uncached_s, 3) << "s vs memoized "
              << util::fmt(epi_cached_s, 3) << "s — "
              << (gate_ok ? "PASS" : "FAIL (memoized engine slower)") << "\n";

    auto s5 = util::Json::object();
    s5.set("n", static_cast<std::uint64_t>(nmem));
    s5.set("interactions", static_cast<std::uint64_t>(mem_interactions));
    s5.set("derand_naive_wall_s", derand_naive_s);
    s5.set("derand_batched_uncached_wall_s", uncached_s);
    s5.set("derand_batched_memoized_wall_s", cached_s);
    s5.set("delta_cache_hits", hits);
    s5.set("delta_cache_misses", misses);
    s5.set("delta_cache_entries", entries);
    s5.set("clean_batched_uncached_wall_s", clean_uncached_s);
    s5.set("clean_batched_memoized_wall_s", clean_cached_s);
    s5.set("clean_delta_cache_hits", clean_hits);
    s5.set("clean_delta_cache_misses", clean_misses);
    s5.set("epidemic_uncached_wall_s", epi_uncached_s);
    s5.set("epidemic_memoized_wall_s", epi_cached_s);
    s5.set("epidemic_gate_ok", gate_ok);
    report.section("interned_memoized", std::move(s5));
  }

  // [6] Pair-type leap engine: the same Lemma A.2 measurement as section
  // 3 on the leaping engine.  Law parity first (the leap trajectory is
  // exactly distributed as the sequential one; the means must agree up to
  // sampling noise), wall clock second.
  bool leap_gate_ok = true;
  {
    t0 = Clock::now();
    const auto res = analysis::parallel_sweep(
        seed + 6000, trials,
        [&](std::uint64_t s) {
          return epidemic_time_leaping(nbig, s);
        },
        jobs);
    const double wall = seconds_since(t0);

    const double leap_ci = util::ci95_halfwidth(res.summary);
    const double batched_ci = util::ci95_halfwidth(batched_epi_summary);
    // Independent seed sets: the gap between the two means is within
    // 2·sqrt(ci_l² + ci_b²) with ≈95% probability when the laws agree; 3×
    // keeps shared-CI-runner flakiness out of the gate without letting a
    // real law divergence through.
    const double band =
        3.0 * std::sqrt(leap_ci * leap_ci + batched_ci * batched_ci);
    const bool law_ok =
        res.failures == 0 &&
        std::abs(res.summary.mean - batched_epi_summary.mean) <= band;
    // The leap engine exists to be faster on this workload; parity (with
    // the same slack as the memo gate) is the floor, not the target.
    const bool wall_ok = wall <= 1.25 * batched_epi_wall_s + 0.02;
    leap_gate_ok = law_ok && wall_ok;

    util::Table t6({"engine", "n", "epidemic(mean)", "ci95", "fails",
                    "wall_s"});
    t6.add_row({"batched", util::fmt_int(nbig),
                util::fmt(batched_epi_summary.mean, 0),
                util::fmt(batched_ci, 0), "0",
                util::fmt(batched_epi_wall_s, 2)});
    t6.add_row({"leaping", util::fmt_int(nbig),
                util::fmt(res.summary.mean, 0), util::fmt(leap_ci, 0),
                util::fmt_int(static_cast<long long>(res.failures)),
                util::fmt(wall, 2)});
    std::cout << "\n[6] Pair-type leap engine (Lemma A.2 epidemic, "
              << trials << " trials at n=" << nbig << "):\n";
    t6.print(std::cout);
    t6.print_csv(std::cout);
    std::cout << "leap-vs-batched parity gate: law "
              << (law_ok ? "PASS" : "FAIL") << " (|Δmean| "
              << util::fmt(std::abs(res.summary.mean -
                                    batched_epi_summary.mean),
                           0)
              << " vs band " << util::fmt(band, 0) << "), wall "
              << (wall_ok ? "PASS" : "FAIL") << " ("
              << util::fmt(wall, 2) << "s vs batched "
              << util::fmt(batched_epi_wall_s, 2) << "s)\n";

    // The headline point: n = 10^10 — 250× beyond the naive engine's
    // 32-bit population ceiling — converges in roughly a second because
    // the banded batch path resolves whole windows in O(1) draws.
    t0 = Clock::now();
    const auto head = analysis::epidemic_convergence(
        analysis::Engine::kLeaping, nleap, seed + 6500);
    const double head_wall = seconds_since(t0);
    const double nl = static_cast<double>(nleap);
    const double head_bound = 7.0 * nl * std::log(nl);
    const bool head_ok = head.converged &&
                         static_cast<double>(head.interactions) < head_bound;
    std::cout << "headline: n=" << nleap << " epidemic "
              << (head.converged ? "converged" : "DID NOT CONVERGE")
              << " at " << head.interactions << " interactions ("
              << util::fmt(static_cast<double>(head.interactions) /
                               (nl * std::log(nl)),
                           2)
              << "·n·ln n, w.h.p. bound " << (head_ok ? "HELD" : "EXCEEDED")
              << ") in " << util::fmt(head_wall, 2) << "s\n";

    auto s6 = util::Json::object();
    s6.set("n", static_cast<std::uint64_t>(nbig));
    s6.set("leap_mean_interactions", res.summary.mean);
    s6.set("batched_mean_interactions", batched_epi_summary.mean);
    s6.set("failures", static_cast<std::uint64_t>(res.failures));
    s6.set("leap_wall_s", wall);
    s6.set("batched_wall_s", batched_epi_wall_s);
    s6.set("law_gate_ok", law_ok);
    s6.set("wall_gate_ok", wall_ok);
    s6.set("headline_n", nleap);
    s6.set("headline_interactions", head.interactions);
    s6.set("headline_converged", head.converged);
    s6.set("headline_bound_held", head_ok);
    s6.set("headline_wall_s", head_wall);
    report.section("leap_engine", std::move(s6));
  }

  // [7] Community lumping: the naive agent-array engine under
  // BlockedScheduler vs the lumped (community, state) engine, same islands
  // topology, same epidemic, exact probes.  Both estimate the same
  // hitting-time law (tests/test_community_counts.cpp pins the exact laws
  // at tiny n by total variation); here the means must agree within the
  // combined CI band at a scale where constants matter.
  bool comm_gate_ok = true;
  {
    const auto topology = analysis::topology_from_string("islands:4:1.0:0.1");
    const auto epi_on = [&](analysis::Engine engine, std::uint64_t s) {
      const auto r = analysis::epidemic_convergence(engine, ncomm, s, 0,
                                                    /*probe_every=*/1,
                                                    topology);
      return r.converged ? static_cast<double>(r.interactions) : -1.0;
    };
    t0 = Clock::now();
    const auto naive_res = analysis::parallel_sweep(
        seed + 7000, trials,
        [&](std::uint64_t s) { return epi_on(analysis::Engine::kNaive, s); },
        jobs);
    const double naive_wall = seconds_since(t0);
    t0 = Clock::now();
    const auto lumped_res = analysis::parallel_sweep(
        seed + 7500, trials,
        [&](std::uint64_t s) { return epi_on(analysis::Engine::kBatched, s); },
        jobs);
    const double lumped_wall = seconds_since(t0);

    const double naive_ci = util::ci95_halfwidth(naive_res.summary);
    const double lumped_ci = util::ci95_halfwidth(lumped_res.summary);
    const double band =
        3.0 * std::sqrt(naive_ci * naive_ci + lumped_ci * lumped_ci);
    const double gap =
        std::abs(naive_res.summary.mean - lumped_res.summary.mean);
    comm_gate_ok = naive_res.failures == 0 && lumped_res.failures == 0 &&
                   gap <= band;

    util::Table t7({"engine", "n", "epidemic(mean)", "ci95", "fails",
                    "wall_s"});
    t7.add_row({"naive (BlockedScheduler)", util::fmt_int(ncomm),
                util::fmt(naive_res.summary.mean, 0),
                util::fmt(naive_ci, 0),
                util::fmt_int(static_cast<long long>(naive_res.failures)),
                util::fmt(naive_wall, 2)});
    t7.add_row({"batched (lumped)", util::fmt_int(ncomm),
                util::fmt(lumped_res.summary.mean, 0),
                util::fmt(lumped_ci, 0),
                util::fmt_int(static_cast<long long>(lumped_res.failures)),
                util::fmt(lumped_wall, 2)});
    std::cout << "\n[7] Community lumping law parity (epidemic on "
                 "islands:4:1.0:0.1, "
              << trials << " trials at n=" << ncomm << ", exact probes):\n";
    t7.print(std::cout);
    t7.print_csv(std::cout);
    std::cout << "naive-vs-lumped law gate: "
              << (comm_gate_ok ? "PASS" : "FAIL") << " (|Δmean| "
              << util::fmt(gap, 0) << " vs band " << util::fmt(band, 0)
              << ")\n";

    auto s7 = util::Json::object();
    s7.set("n", static_cast<std::uint64_t>(ncomm));
    s7.set("topology", "islands:4:1.0:0.1");
    s7.set("naive_mean_interactions", naive_res.summary.mean);
    s7.set("lumped_mean_interactions", lumped_res.summary.mean);
    s7.set("naive_failures", static_cast<std::uint64_t>(naive_res.failures));
    s7.set("lumped_failures",
           static_cast<std::uint64_t>(lumped_res.failures));
    s7.set("naive_wall_s", naive_wall);
    s7.set("lumped_wall_s", lumped_wall);
    s7.set("law_gate_ok", comm_gate_ok);
    report.section("community_lumping", std::move(s7));
  }

  // [8] Observability overhead: the memoized epidemic path of section 5,
  // plain vs observed.  Both runs step in identical chunks (so the engine
  // work is the same machine code either way); the observed run adds what
  // the journal layer actually costs per probe — an EngineMetrics snapshot
  // and a Journal::tick (which only *emits* when its interaction gate
  // passes).  min-of-3, alternating, same slack form as the other gates.
  bool obs_gate_ok = true;
  {
    pp::Epidemic eproto{nmem};
    const std::uint64_t epi_work = 50 * static_cast<std::uint64_t>(nmem);
    const std::uint64_t chunk = nmem;
    const std::string sink =
        json_path.empty() ? "/dev/null" : json_path + ".journal.jsonl";

    obs::EngineMetrics observed_metrics;
    const auto epidemic_wall = [&](bool observed) {
      pp::BatchedSimulator<pp::Epidemic> bsim(
          eproto, seed + 8000, pp::BlockSampling::kDense,
          pp::DeltaMemo::kEnabled);
      obs::Journal::Options jopts;
      jopts.path = sink;
      jopts.every_interactions = epi_work / 4;
      jopts.budget = epi_work;
      jopts.run = "parallel_sweep_s8";
      obs::Journal journal(jopts);
      const auto start_t = Clock::now();
      for (std::uint64_t done = 0; done < epi_work; done += chunk) {
        bsim.step(std::min<std::uint64_t>(chunk, epi_work - done));
        if (observed) journal.tick(bsim.interactions(), bsim.metrics());
      }
      const double w = seconds_since(start_t);
      if (observed) observed_metrics = bsim.metrics();
      return w;
    };
    double plain_s = 1e300, observed_s = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      plain_s = std::min(plain_s, epidemic_wall(false));
      observed_s = std::min(observed_s, epidemic_wall(true));
    }
    obs_gate_ok = observed_s <= 1.03 * plain_s + 0.02;
    const double ratio = plain_s > 0 ? observed_s / plain_s : 0.0;
    std::cout << "\n[8] Observability overhead (memoized epidemic n=" << nmem
              << ", " << epi_work << " interactions, " << epi_work / chunk
              << " probes): plain " << util::fmt(plain_s, 3)
              << "s vs observed " << util::fmt(observed_s, 3) << "s (ratio "
              << util::fmt(ratio, 3) << ") — "
              << (obs_gate_ok ? "PASS (< 3% + 20ms slack)"
                              : "FAIL (metrics layer too hot)")
              << "\n";

    auto s8 = util::Json::object();
    s8.set("n", static_cast<std::uint64_t>(nmem));
    s8.set("interactions", epi_work);
    s8.set("plain_wall_s", plain_s);
    s8.set("observed_wall_s", observed_s);
    s8.set("overhead_ratio", ratio);
    s8.set("gate_ok", obs_gate_ok);
    s8.set("final_metrics", observed_metrics.to_json());
    report.section("observability_overhead", std::move(s8));
  }

  // [9] Sharded single-run engine + small-q flat sampler: the PR-9 A/B,
  // three parts (parity, flat sampler, single-run speedup).
  bool sharded_parity_ok = true;
  bool flat_gate_ok = true;
  bool sharded_gate_ok = true;
  {
    // (a) T = 1 parity: --engine=sharded:1 delegates to a real
    // BatchedSimulator, so a full adversarial stabilization must return
    // the exact same result — interactions, leader count, and engine
    // counters alike.  Always gated, like section 1's determinism check:
    // if this breaks, the sharded engine's claim to exactness is void.
    const core::Params p9 =
        core::Params::make(2048, 64, core::MessageMultiplicity::kLight);
    const auto budget9 = analysis::default_budget(p9);
    const auto run_b = analysis::stabilize(
        analysis::Engine::kBatched, analysis::StartKind::kAdversarial, p9,
        core::Corruption::kRandomStates, seed + 9000, budget9);
    const auto run_s = analysis::stabilize(
        analysis::EngineSpec(analysis::Engine::kSharded, 1),
        analysis::StartKind::kAdversarial, p9,
        core::Corruption::kRandomStates, seed + 9000, budget9);
    sharded_parity_ok =
        run_b.converged == run_s.converged &&
        run_b.interactions == run_s.interactions &&
        run_b.leaders == run_s.leaders &&
        run_b.metrics.blocks_dense == run_s.metrics.blocks_dense &&
        run_b.metrics.blocks_fenwick == run_s.metrics.blocks_fenwick &&
        run_b.metrics.blocks_flat == run_s.metrics.blocks_flat &&
        run_b.metrics.collision_resolutions ==
            run_s.metrics.collision_resolutions;
    std::cout << "\n[9] Sharded engine + flat sampler:\n"
              << "sharded:1 vs batched parity (ElectLeader n=" << p9.n
              << ", random_states start, full stabilization): "
              << (sharded_parity_ok ? "PASS" : "FAIL — BUG") << " ("
              << run_s.interactions << " vs " << run_b.interactions
              << " interactions)\n";

    // (b) Flat vs Fenwick, forced, on a genuinely small-q per-draw
    // workload: LooseLeaderElection with timeout_scale 1 keeps the live
    // registry at q = O(log n) ≪ 64 — exactly the regime kAuto hands to
    // the flat sampler — and its deterministic δ memoizes identically on
    // both runs, so the wall-clock delta is purely the block sampler
    // (the two runs are bit-identical by construction; tests pin that).
    baselines::LooseLeaderElection lproto(nfen, /*timeout_scale=*/1);
    std::uint64_t flat_q = 0;
    const auto loose_wall = [&](pp::BlockSampling sampling) {
      pp::BatchedSimulator<baselines::LooseLeaderElection> bsim(
          lproto, seed + 9100, sampling);
      const auto start_t = Clock::now();
      bsim.step(fen_interactions);
      const double w = seconds_since(start_t);
      if (sampling == pp::BlockSampling::kFlat) {
        flat_q = bsim.config().num_live_states();
      }
      return w;
    };
    // min-of-3, alternating, same slack form as the other gates.
    double flat_s = 1e300, flat_fen_s = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      flat_s = std::min(flat_s, loose_wall(pp::BlockSampling::kFlat));
      flat_fen_s =
          std::min(flat_fen_s, loose_wall(pp::BlockSampling::kFenwick));
    }
    flat_gate_ok = 1.3 * flat_s <= flat_fen_s + 0.02;
    std::cout << "flat vs fenwick, forced (LooseLeaderElection n=" << nfen
              << ", q=" << flat_q << ", " << fen_interactions
              << " interactions): flat " << util::fmt(flat_s, 3)
              << "s vs fenwick " << util::fmt(flat_fen_s, 3) << "s — "
              << util::fmt(flat_s > 0 ? flat_fen_s / flat_s : 0.0, 2)
              << "x, gate (>= 1.3x) "
              << (flat_gate_ok ? "PASS" : "FAIL (flat scan too slow)")
              << "\n";

    // (c) The headline: ONE adversarial ElectLeader run at q ≈ n = --nfen
    // (the section-4 workload — per-draw Fenwick/flat territory, no dense
    // bulk path, δ-cache useless), batched vs sharded:4, fixed work.
    // Phases A–C go wide; the serial remainder (shard-label draws,
    // collision resolution, merges) bounds the ratio per Amdahl, so the
    // gate asks for 1.25× — the honest measured number is reported and
    // recorded either way — and only on hosts with ≥ 4 cores.
    const core::Params pf = core::Params::make(
        nfen, std::min(64u, std::max(1u, nfen / 2)),
        core::MessageMultiplicity::kLight);
    util::Rng gen9(util::substream(seed + 9200, 77));
    const auto adversarial9 = core::make_adversarial_config(
        pf, core::Corruption::kRandomStates, gen9);
    core::ElectLeader fproto(pf);
    const std::size_t shard_t = 4;

    const auto batched_one_run = [&] {
      pp::CountsConfiguration<core::ElectLeader> counts(adversarial9);
      pp::BatchedSimulator<core::ElectLeader> bsim(fproto, std::move(counts),
                                                   seed + 9200);
      const auto start_t = Clock::now();
      bsim.step(fen_interactions);
      return seconds_since(start_t);
    };
    obs::EngineMetrics shard_final;
    const auto sharded_one_run = [&] {
      pp::ShardedSimulator<core::ElectLeader> ssim(
          fproto, pp::CountsConfiguration<core::ElectLeader>(adversarial9),
          seed + 9200, shard_t);
      const auto start_t = Clock::now();
      ssim.step(fen_interactions);
      const double w = seconds_since(start_t);
      shard_final = ssim.metrics();
      return w;
    };
    double batched_one_s = 1e300, sharded_s = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      batched_one_s = std::min(batched_one_s, batched_one_run());
      sharded_s = std::min(sharded_s, sharded_one_run());
    }
    const double shard_speedup =
        sharded_s > 0 ? batched_one_s / sharded_s : 0.0;
    const unsigned cores = std::thread::hardware_concurrency();
    const bool enough_cores = cores >= 4;

    util::Table t9({"engine", "interactions", "wall_s", "Mint/s"});
    const auto add9 = [&](const char* name, double wall) {
      t9.add_row({name, util::fmt_int(static_cast<long long>(fen_interactions)),
                  util::fmt(wall, 2),
                  util::fmt(fen_interactions / 1e6 / std::max(1e-9, wall), 2)});
    };
    add9("batched (one run)", batched_one_s);
    add9("sharded:4 (one run)", sharded_s);
    std::cout << "single-run speedup at q ~ n (ElectLeader n=" << nfen
              << ", r=" << pf.r << ", random_states start, fixed work):\n";
    t9.print(std::cout);
    t9.print_csv(std::cout);
    std::cout << "cross-shard fraction "
              << util::fmt(shard_final.interactions > 0
                               ? static_cast<double>(
                                     shard_final.cross_shard_interactions) /
                                     static_cast<double>(
                                         shard_final.interactions)
                               : 0.0,
                           3)
              << " (expect ~ 1 - 1/T = 0.75), collisions "
              << shard_final.collision_resolutions << "\n";
    if (enough_cores) {
      sharded_gate_ok = 1.25 * sharded_s <= batched_one_s + 0.02;
      std::cout << "sharded:4 vs batched single-run speedup: "
                << util::fmt(shard_speedup, 2) << "x — gate (>= 1.25x) "
                << (sharded_gate_ok ? "PASS"
                                    : "FAIL (sharding lost on this host)")
                << "\n";
    } else {
      std::cout << "sharded:4 vs batched single-run speedup: "
                << util::fmt(shard_speedup, 2) << "x — gate SKIPPED (host has "
                << cores << " hardware threads; the gate needs >= 4)\n";
    }

    auto s9 = util::Json::object();
    s9.set("parity_n", static_cast<std::uint64_t>(p9.n));
    s9.set("parity_ok", sharded_parity_ok);
    s9.set("flat_n", static_cast<std::uint64_t>(nfen));
    s9.set("flat_q", flat_q);
    s9.set("flat_interactions", static_cast<std::uint64_t>(fen_interactions));
    s9.set("flat_wall_s", flat_s);
    s9.set("fenwick_wall_s", flat_fen_s);
    s9.set("flat_gate_ok", flat_gate_ok);
    s9.set("sharded_n", static_cast<std::uint64_t>(nfen));
    s9.set("sharded_t", static_cast<std::uint64_t>(shard_t));
    s9.set("hardware_threads", static_cast<std::uint64_t>(cores));
    s9.set("batched_one_run_wall_s", batched_one_s);
    s9.set("sharded_wall_s", sharded_s);
    s9.set("sharded_speedup", shard_speedup);
    s9.set("sharded_gate_applied", enough_cores);
    s9.set("sharded_gate_ok", sharded_gate_ok);
    s9.set("cross_shard_interactions", shard_final.cross_shard_interactions);
    s9.set("intra_shard_interactions", shard_final.intra_shard_interactions);
    s9.set("collision_resolutions", shard_final.collision_resolutions);
    report.section("sharded_flat", std::move(s9));
  }

  report.write_if(json_path, std::cout);

  // The determinism check and the sharded:1 parity check are this binary's
  // reason to exist — both fail loudly (CI runs it on every push).
  // --gate-perf additionally fails the run when the memoized engine
  // regresses on the epidemic workload, the leap engine loses law or
  // wall-clock parity with the batched engine, the lumped community engine
  // drifts from the naive blocked-scheduler law, the observability layer
  // costs more than 3% on the hottest path, the flat sampler fails to beat
  // the Fenwick descent by 1.3× at small q, or (on ≥ 4-core hosts) the
  // sharded engine fails to beat the batched engine by 1.25× on a single
  // adversarial run at q ≈ n.
  return (ok && sharded_parity_ok &&
          (!gate_perf || (gate_ok && leap_gate_ok && comm_gate_ok &&
                          obs_gate_ok && flat_gate_ok && sharded_gate_ok)))
             ? 0
             : 1;
}
