// The multi-trial experiment runner, measured.  Three sections:
//
//   [1] Determinism — parallel_sweep must return a SweepResult that is
//       bit-identical to serial sweep() for every jobs count (each trial
//       is a pure function of its seed; results are collected in seed
//       order).  Verified here on a real ElectLeader workload, and the
//       serial-vs-parallel wall clock gives the measured multi-core
//       speedup.
//
//   [2] Engine cross-validation — stabilize(naive) vs stabilize(batched)
//       at --ncross (default 1024).  std::hash<core::Agent> puts the
//       batched registry on the O(1) path, but ElectLeader keeps ~n
//       distinct live states (FastLE identifiers), so counts compress
//       little for this protocol: this section reports the honest ratio
//       rather than assuming the batched engine wins.
//
//   [3] Scale — a paper sweep point at n = --nbig (default 10^6): the
//       Lemma A.2 epidemic bound (< 7·n·ln n w.h.p.), multi-trial on the
//       batched engine with trials fanned across cores.  The same
//       measurement bench_f9 runs at n ≤ 512 on the naive engine.
//
//   [4] Fenwick registry at q ≈ n — ElectLeader from a random_states
//       adversarial start at n = --nfen (default 10^5), so the registry
//       holds ≈ n distinct states from the first block.  Both engines run
//       the same fixed interaction count (--fen-interactions; recovery to
//       convergence at this scale is a multi-minute bench, fixed work is
//       the honest apples-to-apples wall clock) and the table reports the
//       naive/batched ratio plus which block sampler the batched engine
//       chose (fenwick vs dense blocks).
//
//   --n=64 --trials=8 --seed=7 --jobs=0 (0 = all cores)
//   --ncross=1024 --cross-trials=1 --nbig=1000000
//   --nfen=100000 --fen-interactions=1000000
#include <algorithm>
#include <chrono>
#include <cmath>
#include <iostream>

#include "analysis/experiment.hpp"
#include "analysis/measure.hpp"
#include "core/adversary.hpp"
#include "core/params.hpp"
#include "pp/batched_simulator.hpp"
#include "pp/epidemic.hpp"
#include "pp/simulator.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace ssle;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

bool identical(const analysis::SweepResult& a, const analysis::SweepResult& b) {
  return a.samples == b.samples && a.failures == b.failures &&
         a.summary.count == b.summary.count && a.summary.mean == b.summary.mean &&
         a.summary.stddev == b.summary.stddev &&
         a.summary.median == b.summary.median && a.summary.p10 == b.summary.p10 &&
         a.summary.p90 == b.summary.p90;
}

double epidemic_time_batched(std::uint32_t n, std::uint64_t seed) {
  pp::Epidemic proto{n};
  pp::BatchedSimulator<pp::Epidemic> sim(proto, seed);
  const auto r = sim.run_until(
      [](const pp::CountsConfiguration<pp::Epidemic>& c, std::uint64_t) {
        return c.count_of(1) == c.population_size();
      },
      64ull * n * core::Params::log2ceil(n));
  return r.converged ? static_cast<double>(r.interactions) : -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto n = cli.get_count_u32("n", 64);
  const auto trials = cli.get_count("trials", 8);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));
  const auto jobs = analysis::effective_jobs(cli.get_jobs(), trials);
  const auto ncross = cli.get_count_u32("ncross", 1024);
  const auto cross_trials = cli.get_count("cross-trials", 1);
  const auto nbig =
      cli.get_count_u32("nbig", 1000000);
  const auto nfen = cli.get_count_u32("nfen", 100000);
  const auto fen_interactions = cli.get_count("fen-interactions", 1000000);

  analysis::print_banner(
      "PS (parallel sweep runner)",
      "parallel_sweep is bit-identical to serial sweep for any jobs count "
      "and scales with cores; the batched engine extends paper sweeps to "
      "n >= 10^6",
      "identical tables at jobs 1/2/N; speedup ~ min(jobs, trials); "
      "epidemic at n=10^6 within 7 n ln n");

  // [1] Determinism + speedup on ElectLeader stabilization.
  const core::Params params = core::Params::make(n, n / 2);
  const auto measure = [&](std::uint64_t s) {
    const auto run = analysis::stabilize(analysis::Engine::kNaive, params, s,
                                         analysis::default_budget(params));
    return run.converged ? static_cast<double>(run.interactions) : -1.0;
  };
  auto t0 = Clock::now();
  const auto serial = analysis::sweep(seed, trials, measure);
  const double serial_s = seconds_since(t0);
  const auto two = analysis::parallel_sweep(seed, trials, measure, 2);
  t0 = Clock::now();
  const auto wide = analysis::parallel_sweep(seed, trials, measure, jobs);
  const double wide_s = seconds_since(t0);

  const bool ok = identical(serial, two) && identical(serial, wide);
  util::Table t1({"runner", "jobs", "mean", "ci95", "fails", "wall_s",
                  "speedup"});
  t1.add_row({"sweep", "1", util::fmt(serial.summary.mean, 0),
              util::fmt(util::ci95_halfwidth(serial.summary), 0),
              util::fmt_int(static_cast<long long>(serial.failures)),
              util::fmt(serial_s, 2), "1.0x"});
  t1.add_row({"parallel_sweep", util::fmt_int(static_cast<long long>(jobs)),
              util::fmt(wide.summary.mean, 0),
              util::fmt(util::ci95_halfwidth(wide.summary), 0),
              util::fmt_int(static_cast<long long>(wide.failures)),
              util::fmt(wide_s, 2),
              util::fmt(wide_s > 0 ? serial_s / wide_s : 0.0, 1) + "x"});
  std::cout << "\n[1] Determinism + speedup (ElectLeader n=" << n
            << ", r=" << n / 2 << ", trials=" << trials << "):\n";
  t1.print(std::cout);
  t1.print_csv(std::cout);
  std::cout << "bit-identical across jobs {1, 2, " << jobs << "}: "
            << (ok ? "YES" : "NO — BUG") << "\n";

  // [2] Naive vs batched engine on the same measurement.
  {
    const core::Params p =
        core::Params::make(ncross, 64, core::MessageMultiplicity::kLight);
    util::Table t2({"engine", "mean interactions", "fails", "wall_s"});
    double naive_s = 0.0, batched_s = 0.0;
    for (const auto engine :
         {analysis::Engine::kNaive, analysis::Engine::kBatched}) {
      t0 = Clock::now();
      const auto res = analysis::parallel_sweep(
          seed + 1000, cross_trials,
          [&](std::uint64_t s) {
            const auto run = analysis::stabilize(
                engine, p, s, analysis::default_budget(p));
            return run.converged ? static_cast<double>(run.interactions)
                                 : -1.0;
          },
          jobs);
      const double wall = seconds_since(t0);
      (engine == analysis::Engine::kNaive ? naive_s : batched_s) = wall;
      t2.add_row({analysis::engine_name(engine),
                  util::fmt(res.summary.mean, 0),
                  util::fmt_int(static_cast<long long>(res.failures)),
                  util::fmt(wall, 2)});
    }
    std::cout << "\n[2] Engine cross-validation (ElectLeader n=" << ncross
              << ", r=64, light multiplicity, trials=" << cross_trials
              << "):\n";
    t2.print(std::cout);
    t2.print_csv(std::cout);
    std::cout << "batched/naive wall-clock ratio: "
              << util::fmt(naive_s > 0 ? batched_s / naive_s : 0.0, 2)
              << " (ElectLeader keeps ~n distinct states, so counts "
                 "compress little here; two-state workloads are the "
                 "batched engine's home turf — see section 3)\n";
  }

  // [3] A paper sweep point at n >= 10^6: Lemma A.2 epidemic, batched.
  {
    t0 = Clock::now();
    const auto res = analysis::parallel_sweep(
        seed + 2000, trials,
        [&](std::uint64_t s) { return epidemic_time_batched(nbig, s); }, jobs);
    const double wall = seconds_since(t0);
    const double bound = 7.0 * static_cast<double>(nbig) *
                         std::log(static_cast<double>(nbig));
    util::Table t3({"n", "epidemic(mean)", "ci95", "epi/(n·ln n)", "fails",
                    "wall_s"});
    t3.add_row({util::fmt_int(nbig), util::fmt(res.summary.mean, 0),
                util::fmt(util::ci95_halfwidth(res.summary), 0),
                util::fmt(res.summary.mean /
                              (static_cast<double>(nbig) *
                               std::log(static_cast<double>(nbig))),
                          2),
                util::fmt_int(static_cast<long long>(res.failures)),
                util::fmt(wall, 2)});
    std::cout << "\n[3] Batched-engine sweep point at n=" << nbig
              << " (Lemma A.2, " << trials << " trials across " << jobs
              << " jobs):\n";
    t3.print(std::cout);
    t3.print_csv(std::cout);
    std::cout << "w.h.p. bound 7·n·ln n = " << util::fmt(bound, 0) << ": "
              << (res.failures == 0 && res.summary.max < bound ? "HELD"
                                                               : "EXCEEDED")
              << "\n";
  }

  // [4] Fenwick registry at q ≈ n: ElectLeader throughput from a
  // random_states adversarial start (the registry is ≈ n distinct states
  // from interaction zero), fixed work on both engines.  r stays small
  // (64, as in section 2): per-agent state is Θ(r), so r = n/2 at this n
  // would be a memory bench, not a sampler bench — and q ≈ n already
  // holds at small r via the FastLE identifiers and AssignRanks labels.
  {
    const core::Params p = core::Params::make(
        nfen, std::min(64u, std::max(1u, nfen / 2)),
        core::MessageMultiplicity::kLight);
    util::Rng gen(util::substream(seed + 3000, 77));
    const auto adversarial = core::make_adversarial_config(
        p, core::Corruption::kRandomStates, gen);

    core::ElectLeader protocol(p);
    t0 = Clock::now();
    {
      pp::Simulator<core::ElectLeader> sim(
          protocol, pp::Population<core::ElectLeader>(adversarial),
          seed + 3000);
      sim.step(fen_interactions);
    }
    const double naive_s = seconds_since(t0);

    const auto batched_wall = [&](pp::BlockSampling sampling) {
      pp::CountsConfiguration<core::ElectLeader> counts(adversarial);
      pp::BatchedSimulator<core::ElectLeader> bsim(
          protocol, std::move(counts), seed + 3000, sampling);
      const auto start_t = Clock::now();
      bsim.step(fen_interactions);
      return seconds_since(start_t);
    };
    // The A/B this section exists for: the PR-2 dense sampler (O(q) per
    // block) against the Fenwick sampler (O(L·log q) per block) on the
    // exact same workload, plus the naive engine as the honest yardstick.
    const double dense_s = batched_wall(pp::BlockSampling::kDense);
    const double fenwick_s = batched_wall(pp::BlockSampling::kFenwick);

    util::Table t4({"engine", "interactions", "wall_s", "Mint/s"});
    const auto add = [&](const char* name, double wall) {
      t4.add_row({name, util::fmt_int(static_cast<long long>(fen_interactions)),
                  util::fmt(wall, 2),
                  util::fmt(fen_interactions / 1e6 / std::max(1e-9, wall), 2)});
    };
    add("naive", naive_s);
    add("batched (dense blocks)", dense_s);
    add("batched (fenwick blocks)", fenwick_s);
    std::cout << "\n[4] Fenwick registry at q ~ n (ElectLeader n=" << nfen
              << ", r=" << p.r
              << ", light, random_states start, fixed work):\n";
    t4.print(std::cout);
    t4.print_csv(std::cout);
    std::cout << "initial live states q="
              << pp::CountsConfiguration<core::ElectLeader>(adversarial)
                     .num_live_states()
              << " of n=" << nfen << "\n"
              << "fenwick vs dense block sampling speedup: "
              << util::fmt(fenwick_s > 0 ? dense_s / fenwick_s : 0.0, 2)
              << "x\nnaive/batched(fenwick) wall-clock ratio: "
              << util::fmt(fenwick_s > 0 ? naive_s / fenwick_s : 0.0, 2)
              << " (>1 means the batched engine wins; honest either way — "
                 "ElectLeader's per-interaction state copies and hashes "
                 "remain even though the Fenwick index removed the O(q) "
                 "registry scans)\n";
  }
  // The determinism check is this binary's reason to exist — fail loudly
  // (CI runs it on every push).
  return ok ? 0 : 1;
}
