// Experiment F1 — Theorem 1.1 in the time-optimal regime r = Θ(n):
// self-stabilizing leader election in O(n log n) interactions w.h.p.
// Sweeps n with r = n/2 from the clean (post-reset) configuration and fits
// measured stabilization interactions against c·n·log n.
#include <iostream>
#include <vector>

#include "analysis/experiment.hpp"
#include "analysis/measure.hpp"
#include "core/params.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ssle;
  const util::Cli cli(argc, argv);
  const auto trials = static_cast<std::size_t>(cli.get_int("trials", 5));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 10));

  analysis::print_banner(
      "F1 (Theorem 1.1, r = Θ(n))",
      "ElectLeader_{n/2} stabilizes in O(n log n) interactions w.h.p.",
      "interactions/(n·ln n) roughly constant in n; parallel time Θ(log n)");

  util::Table table({"n", "r", "interactions(mean)", "ci95", "par.time",
                     "inter/(n·ln n)", "fails"});
  std::vector<double> ns, ys;
  for (std::uint32_t n : {16u, 24u, 32u, 48u, 64u, 96u, 128u}) {
    const core::Params params = core::Params::make(n, n / 2);
    const auto result = analysis::sweep(seed, trials, [&](std::uint64_t s) {
      const auto run =
          analysis::stabilize_clean(params, s, analysis::default_budget(params));
      return run.converged ? static_cast<double>(run.interactions) : -1.0;
    });
    const double nlogn = util::model_nlogn(n);
    table.add_row({util::fmt_int(n), util::fmt_int(n / 2),
                   util::fmt(result.summary.mean, 0),
                   util::fmt(util::ci95_halfwidth(result.summary), 0),
                   util::fmt(result.summary.mean / n, 1),
                   util::fmt(result.summary.mean / nlogn, 1),
                   util::fmt_int(static_cast<long long>(result.failures))});
    ns.push_back(n);
    ys.push_back(result.summary.mean);
  }
  table.print(std::cout);
  table.print_csv(std::cout);

  const double c = util::fit_scale(ns, ys, util::model_nlogn);
  const double r2_nlogn = util::fit_r2(ns, ys, util::model_nlogn, c);
  const double c2 = util::fit_scale(ns, ys, util::model_n2);
  const double r2_n2 = util::fit_r2(ns, ys, util::model_n2, c2);
  const auto power = util::fit_power(ns, ys);
  std::cout << "\nFit: T(n) ≈ " << util::fmt(c, 1) << "·n·ln n  (R²="
            << util::fmt(r2_nlogn, 4) << "); n² fit R²=" << util::fmt(r2_n2, 4)
            << "; power-law exponent=" << util::fmt(power.exponent, 3)
            << " (n log n predicts ≈1.0–1.3, n² predicts 2)\n";
  return 0;
}
