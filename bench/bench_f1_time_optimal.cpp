// Experiment F1 — Theorem 1.1 in the time-optimal regime r = Θ(n):
// self-stabilizing leader election in O(n log n) interactions w.h.p.
// Sweeps n with r = n/2 from the clean (post-reset) configuration and fits
// measured stabilization interactions against c·n·log n.
//
//   --trials=5   seeds per sweep point
//   --jobs=0     parallel_sweep worker threads (0 = all cores)
//   --nmax=128   extends the n grid (16, 24, 32, ... doubling pattern)
//   --engine=naive|batched   simulation engine for the sweep
//   --mult=faithful|light    message multiplicity (use light for large n)
//   --budget=0   interaction-budget override per trial (0 = default model
//                budget); capped trials are reported as failures, never
//                folded into the mean
//
// Scale note: r = n/2 means Θ(r) per-agent state (the paper's trade-off:
// time-optimal costs 2^{O(n² log n)} states), so full stabilization runs
// are practical to n ≈ 10^3 faithful / 10^4 light; beyond that, use a
// --budget cap to probe throughput (rows report fails honestly) or
// bench_f2_tradeoff's small-r regimes.
#include <iostream>
#include <vector>

#include "analysis/experiment.hpp"
#include "analysis/measure.hpp"
#include "core/params.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ssle;
  const util::Cli cli(argc, argv);
  const auto trials = cli.get_count("trials", 5);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 10));
  const auto jobs = cli.get_jobs();
  const auto nmax = static_cast<std::uint64_t>(cli.get_count("nmax", 128));
  const auto engine =
      analysis::engine_from_string(cli.get_string("engine", "naive"));
  const auto mult =
      analysis::multiplicity_from_string(cli.get_string("mult", "faithful"));
  const auto budget_override =
      static_cast<std::uint64_t>(cli.get_count("budget", 0));

  analysis::print_banner(
      "F1 (Theorem 1.1, r = Θ(n))",
      "ElectLeader_{n/2} stabilizes in O(n log n) interactions w.h.p.",
      "interactions/(n·ln n) roughly constant in n; parallel time Θ(log n)");
  std::cout << "engine=" << analysis::engine_name(engine)
            << " mult=" << analysis::multiplicity_name(mult)
            << " jobs=" << analysis::effective_jobs(jobs, trials)
            << " trials=" << trials
            << "\n";

  // The seed grid 16..128, extended by the same ×1.5/×4/3 ladder to nmax
  // (capped at 2^31: the ladder runs in 64 bits so a huge nmax cannot
  // wrap the step and loop forever).
  std::vector<std::uint32_t> grid;
  for (std::uint64_t n = 16; n <= std::min<std::uint64_t>(nmax, 1u << 31);) {
    grid.push_back(static_cast<std::uint32_t>(n));
    n = grid.size() % 2 == 1 ? n + n / 2 : (n / 3) * 4;
  }

  util::Table table({"n", "r", "interactions(mean)", "ci95", "par.time",
                     "inter/(n·ln n)", "fails"});
  std::vector<double> ns, ys;
  for (const std::uint32_t n : grid) {
    const core::Params params = core::Params::make(n, n / 2, mult);
    const std::uint64_t budget =
        budget_override ? budget_override : analysis::default_budget(params);
    const auto result =
        analysis::parallel_sweep(seed, trials, [&](std::uint64_t s) {
          const auto run =
              analysis::stabilize(engine, params, s, budget);
          return run.converged ? static_cast<double>(run.interactions) : -1.0;
        }, jobs);
    const double nlogn = util::model_nlogn(n);
    table.add_row({util::fmt_int(n), util::fmt_int(n / 2),
                   util::fmt(result.summary.mean, 0),
                   util::fmt(util::ci95_halfwidth(result.summary), 0),
                   util::fmt(result.summary.mean / n, 1),
                   util::fmt(result.summary.mean / nlogn, 1),
                   util::fmt_int(static_cast<long long>(result.failures))});
    if (!result.samples.empty()) {
      ns.push_back(n);
      ys.push_back(result.summary.mean);
    }
  }
  table.print(std::cout);
  table.print_csv(std::cout);

  if (ns.size() >= 2) {
    const double c = util::fit_scale(ns, ys, util::model_nlogn);
    const double r2_nlogn = util::fit_r2(ns, ys, util::model_nlogn, c);
    const double c2 = util::fit_scale(ns, ys, util::model_n2);
    const double r2_n2 = util::fit_r2(ns, ys, util::model_n2, c2);
    const auto power = util::fit_power(ns, ys);
    std::cout << "\nFit: T(n) ≈ " << util::fmt(c, 1) << "·n·ln n  (R²="
              << util::fmt(r2_nlogn, 4) << "); n² fit R²="
              << util::fmt(r2_n2, 4)
              << "; power-law exponent=" << util::fmt(power.exponent, 3)
              << " (n log n predicts ≈1.0–1.3, n² predicts 2)\n";
  } else {
    std::cout << "\nFit skipped: fewer than two sweep points converged "
                 "within budget.\n";
  }
  return 0;
}
