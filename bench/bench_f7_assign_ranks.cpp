// Experiment F7 — Lemma D.1: AssignRanks_r assigns unique ranks within
// c·(n²/r)·log n interactions w.h.p. from a dormant configuration and is
// silent afterwards.  Runs the sub-protocol standalone.
#include <algorithm>
#include <atomic>
#include <iostream>
#include <vector>

#include "analysis/experiment.hpp"
#include "core/assign_ranks.hpp"
#include "pp/scheduler.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace ssle;

double ranking_time(const core::Params& params, std::uint64_t seed,
                    std::uint64_t budget, bool* correct) {
  std::vector<core::ArState> agents(params.n, core::ar_initial_state(params));
  pp::UniformScheduler sched(params.n, seed);
  util::Rng rng(util::substream(seed, 4));
  std::uint64_t t = 0;
  auto all_ranked = [&] {
    return std::all_of(agents.begin(), agents.end(), core::ar_ranked);
  };
  while (t < budget) {
    const auto [a, b] = sched.next();
    core::assign_ranks(params, agents[a], agents[b], rng);
    ++t;
    if (t % params.n == 0 && all_ranked()) break;
  }
  if (!all_ranked()) return -1.0;
  std::vector<bool> seen(params.n + 1, false);
  *correct = true;
  for (const auto& s : agents) {
    if (s.rank < 1 || s.rank > params.n || seen[s.rank]) {
      *correct = false;
      break;
    }
    seen[s.rank] = true;
  }
  return static_cast<double>(t);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto trials = cli.get_count("trials", 5);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 60));
  const auto jobs = cli.get_jobs();

  analysis::print_banner(
      "F7 (Lemma D.1)",
      "AssignRanks_r assigns unique ranks in [n] within c·(n²/r)·log n "
      "interactions w.h.p. from a dormant configuration (silent protocol)",
      "time·r/(n²·ln n) roughly constant across (n, r); correctness = 100%");

  util::Table table({"n", "r", "rank-time(mean)", "ci95", "par.time",
                     "time·r/(n² ln n)", "correct", "fails"});
  for (std::uint32_t n : {16u, 32u, 64u, 128u}) {
    std::vector<std::uint32_t> rs{1u, 4u, n / 4, n / 2};
    std::sort(rs.begin(), rs.end());
    rs.erase(std::unique(rs.begin(), rs.end()), rs.end());
    for (std::uint32_t r : rs) {
      if (r < 1 || r > n / 2) continue;
      const core::Params params = core::Params::make(n, r);
      const std::uint64_t L = core::Params::log2ceil(n);
      const std::uint64_t budget = 2000ull * (n * n / r) * L + 500000;
      std::atomic<std::size_t> correct_count{0};  // measure runs concurrently
      const auto result =
          analysis::parallel_sweep(seed, trials, [&](std::uint64_t s) {
            bool correct = false;
            const double t = ranking_time(params, s, budget, &correct);
            correct_count += correct;
            return t;
          }, jobs);
      const double model = util::model_nlogn(n) * n / r;
      table.add_row(
          {util::fmt_int(n), util::fmt_int(r),
           util::fmt(result.summary.mean, 0),
           util::fmt(util::ci95_halfwidth(result.summary), 0),
           util::fmt(result.summary.mean / n, 1),
           util::fmt(result.summary.mean / model, 2),
           util::fmt_int(static_cast<long long>(correct_count.load())) + "/" +
               util::fmt_int(static_cast<long long>(trials)),
           util::fmt_int(static_cast<long long>(result.failures))});
    }
  }
  table.print(std::cout);
  table.print_csv(std::cout);
  return 0;
}
