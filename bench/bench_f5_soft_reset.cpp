// Experiment F5 — the soft-reset mechanism (§3.2, Protocol 2):
//   (a) message corruption on a CORRECT ranking is healed exclusively by
//       soft resets — the ranking (and thus the leader) survives;
//   (b) genuine rank collisions escalate to a hard reset.
// Counts soft/hard resets along recovery per corruption class.
#include <iostream>
#include <vector>

#include "analysis/experiment.hpp"
#include "analysis/measure.hpp"
#include "core/adversary.hpp"
#include "core/elect_leader.hpp"
#include "core/propagate_reset.hpp"
#include "core/safety.hpp"
#include "core/stable_verify.hpp"
#include "pp/scheduler.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace ssle;

struct Outcome {
  bool converged = false;
  bool ranking_preserved = false;
  std::uint64_t soft = 0;
  std::uint64_t hard = 0;
};

/// Runs recovery while counting resets; "ranking preserved" compares the
/// final rank vector with the initial one.
Outcome run_counted(const core::Params& params, core::Corruption corruption,
                    std::uint64_t seed, std::uint64_t budget) {
  util::Rng gen(util::substream(seed, 77));
  auto config = core::make_adversarial_config(params, corruption, gen);
  std::vector<std::uint32_t> before;
  for (const auto& a : config) before.push_back(a.rank);

  core::ElectLeader protocol(params);
  pp::UniformScheduler sched(params.n, util::substream(seed, 1));
  util::Rng rng(util::substream(seed, 2));

  Outcome out;
  for (std::uint64_t t = 0; t < budget; ++t) {
    const auto [x, y] = sched.next();
    core::Agent& u = config[x];
    core::Agent& v = config[y];
    // Mirror ElectLeader::interact, but use the counted StableVerify.
    if (u.role == core::Role::kResetting) {
      core::propagate_reset(params, u, v);
    } else if (v.role == core::Role::kResetting) {
      core::propagate_reset(params, v, u);
    }
    if (u.role == core::Role::kRanking && v.role == core::Role::kRanking) {
      protocol.interact(u, v, rng);  // full wrapper handles ranking branch
    } else {
      for (auto [self, other] : {std::pair{&u, &v}, std::pair{&v, &u}}) {
        if (self->role == core::Role::kRanking &&
            (self->countdown == 0 || other->role == core::Role::kVerifying)) {
          self->role = core::Role::kVerifying;
          self->rank = std::min(std::max(self->ar.rank, 1u), params.n);
          self->sv = core::sv_initial_state(params, self->rank);
          self->ar = core::ArState{};
        }
      }
      if (u.role == core::Role::kVerifying &&
          v.role == core::Role::kVerifying) {
        const auto stats = core::stable_verify_counted(params, u, v, rng);
        out.soft += stats.soft_resets;
        out.hard += stats.hard_resets;
      }
    }
    if (t % params.n == 0 && core::is_safe_configuration(params, config)) {
      out.converged = true;
      break;
    }
  }
  if (out.converged) {
    out.ranking_preserved = true;
    for (std::uint32_t i = 0; i < params.n; ++i) {
      out.ranking_preserved &= (config[i].rank == before[i]);
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto n = static_cast<std::uint32_t>(cli.get_int("n", 32));
  const auto r = static_cast<std::uint32_t>(cli.get_int("r", 8));
  const auto trials = cli.get_count("trials", 5);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 50));

  analysis::print_banner(
      "F5 (§3.2 soft reset / probation)",
      "Message corruption on a correct ranking is repaired by soft resets "
      "only (ranking preserved); duplicate ranks escalate to hard resets",
      "corrupt_messages: preserved=trials, hard=0; duplicate_ranks/no_leader: "
      "hard>0");

  const core::Params params = core::Params::make(n, r);
  const std::uint64_t budget = 8 * analysis::default_budget(params);

  util::Table table({"class", "converged", "ranking_preserved", "soft(mean)",
                     "hard(mean)"});
  for (const auto corruption :
       {core::Corruption::kCorruptMessages, core::Corruption::kLostMessages,
        core::Corruption::kMixedGenerations, core::Corruption::kDuplicateRanks,
        core::Corruption::kNoLeader}) {
    std::uint64_t converged = 0, preserved = 0, soft = 0, hard = 0;
    for (std::size_t t = 0; t < trials; ++t) {
      const Outcome o = run_counted(params, corruption, seed + t, budget);
      converged += o.converged;
      preserved += o.ranking_preserved;
      soft += o.soft;
      hard += o.hard;
    }
    table.add_row({core::corruption_name(corruption),
                   util::fmt_int(static_cast<long long>(converged)) + "/" +
                       util::fmt_int(static_cast<long long>(trials)),
                   util::fmt_int(static_cast<long long>(preserved)) + "/" +
                       util::fmt_int(static_cast<long long>(trials)),
                   util::fmt(static_cast<double>(soft) / trials, 1),
                   util::fmt(static_cast<double>(hard) / trials, 1)});
  }
  table.print(std::cout);
  table.print_csv(std::cout);
  std::cout << "\nn=" << n << " r=" << r << '\n';
  return 0;
}
