// Experiment F10 — Lemma E.6: starting from all 4m messages of one
// (rank, content) class at a single agent, the BalanceLoad mechanism
// (coupled to Tight & Simple Load Balancing) gives every agent at least
// one message within O(m log m) interactions w.h.p.
#include <algorithm>
#include <iostream>
#include <vector>

#include "analysis/experiment.hpp"
#include "core/detect_collision.hpp"
#include "pp/scheduler.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace ssle;

double spread_time(std::uint32_t m, std::uint64_t seed) {
  // One group of size m: n = 2m, r = m.
  const core::Params p = core::Params::make(2 * m, m);
  const std::uint32_t rank = p.group_begin(0);
  std::vector<core::DcState> agents(m);
  for (auto& s : agents) {
    s = core::dc_initial_state(p, rank);
    for (auto& bucket : s.msgs) bucket.clear();
  }
  const std::uint32_t ids = p.ids_per_rank(0);
  for (std::uint32_t j = 1; j <= ids; ++j) agents[0].msgs[0].push_back({j, 1});

  pp::UniformScheduler sched(m, seed);
  const std::uint64_t budget = 4000ull * m * core::Params::log2ceil(m);
  for (std::uint64_t t = 1; t <= budget; ++t) {
    const auto [a, b] = sched.next();
    core::balance_load(p, rank, agents[a], agents[b]);
    if (t % m != 0) continue;
    const bool all = std::all_of(
        agents.begin(), agents.end(),
        [](const core::DcState& s) { return !s.msgs[0].empty(); });
    if (all) return static_cast<double>(t);
  }
  return -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto trials = cli.get_count("trials", 20);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 90));
  const auto jobs = cli.get_jobs();

  analysis::print_banner(
      "F10 (Lemma E.6)",
      "From maximal clumping (all of one rank's messages at one agent), "
      "BalanceLoad delivers ≥1 message to every group member within "
      "O(m log m) interactions w.h.p.",
      "spread/(m·ln m) roughly constant in m");

  util::Table table({"m", "spread(mean)", "ci95", "spread/(m·ln m)", "fails"});
  std::vector<double> ms, ys;
  for (std::uint32_t m : {8u, 16u, 32u, 64u, 128u}) {
    const auto result =
        analysis::parallel_sweep(seed, trials, [&](std::uint64_t s) {
          return spread_time(m, s);
        }, jobs);
    table.add_row({util::fmt_int(m), util::fmt(result.summary.mean, 0),
                   util::fmt(util::ci95_halfwidth(result.summary), 0),
                   util::fmt(result.summary.mean / util::model_nlogn(m), 2),
                   util::fmt_int(static_cast<long long>(result.failures))});
    ms.push_back(m);
    ys.push_back(result.summary.mean);
  }
  table.print(std::cout);
  table.print_csv(std::cout);

  const auto power = util::fit_power(ms, ys);
  std::cout << "\nSpread time scales as m^" << util::fmt(power.exponent, 3)
            << " (R²=" << util::fmt(power.r2, 4)
            << "); m·log m predicts ≈1.0–1.3\n";
  return 0;
}
