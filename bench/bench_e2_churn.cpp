// Experiment E2 (extension) — availability under sustained churn: the
// operational payoff of self-stabilization.  Random agents are corrupted
// at a steady rate while ElectLeader_r runs; we measure the fraction of
// time a unique leader is present and the fraction of time the
// configuration is provably safe, as a function of fault rate.
//
//   --json=<path>     structured results (obs::Report envelope)
//   --journal=<path>  JSONL heartbeats from inside the churn loop
//                     (obs::Journal; "-" for stderr)
#include <iostream>
#include <memory>
#include <utility>

#include "analysis/churn.hpp"
#include "analysis/experiment.hpp"
#include "analysis/measure.hpp"
#include "obs/journal.hpp"
#include "obs/report.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ssle;
  const util::Cli cli(argc, argv);
  const auto n = static_cast<std::uint32_t>(cli.get_int("n", 32));
  const auto r = static_cast<std::uint32_t>(cli.get_int("r", 8));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 130));
  const auto json_path = cli.get_string("json", "");
  const auto journal_path = cli.get_string("journal", "");

  analysis::print_banner(
      "E2 (extension: availability under churn)",
      "Self-stabilization ⇒ the population re-converges after every fault "
      "burst, forever",
      "leader availability degrades gracefully with fault rate; zero churn "
      "gives 100%");

  const core::Params params = core::Params::make(n, r);
  const std::uint64_t recovery_scale = analysis::default_budget(params) / 20;

  // One journal across all churn points ("-" = the Journal's stderr sink);
  // the per-point boundary events make the JSONL self-describing.
  std::unique_ptr<obs::Journal> journal;
  if (cli.has("journal")) {
    obs::Journal::Options jopts;
    jopts.path = journal_path == "-" ? "" : journal_path;
    jopts.every_interactions = 16 * static_cast<std::uint64_t>(n);
    jopts.run = "e2_churn";
    journal = std::make_unique<obs::Journal>(std::move(jopts));
  }

  obs::Report doc("e2_churn", 8);
  doc.set("n", static_cast<std::uint64_t>(n))
      .set("r", static_cast<std::uint64_t>(r))
      .set("horizon", 400 * recovery_scale);
  auto rows = util::Json::array();

  util::Table table({"burst period (interactions)", "burst size",
                     "corrupted total", "leader avail %", "safe %"});
  struct Point {
    std::uint64_t period;
    std::uint32_t size;
  };
  const Point points[] = {
      {0, 0},
      {64 * recovery_scale, 1},
      {16 * recovery_scale, 1},
      {4 * recovery_scale, 1},
      {4 * recovery_scale, n / 4},
      {1 * recovery_scale, n / 4},
  };
  for (const auto& point : points) {
    analysis::ChurnSpec spec;
    spec.burst_period = point.period;
    spec.burst_size = point.size;
    spec.horizon = 400 * recovery_scale;
    spec.probe_every = n;
    spec.journal = journal.get();
    if (journal) {
      auto boundary = util::Json::object();
      boundary.set("burst_period", point.period);
      boundary.set("burst_size", static_cast<std::uint64_t>(point.size));
      journal->event("churn_point", std::move(boundary));
    }
    const auto report = analysis::run_churn(params, spec, seed);
    table.add_row(
        {point.period == 0 ? "none" : util::fmt_int(
                                          static_cast<long long>(point.period)),
         util::fmt_int(point.size),
         util::fmt_int(static_cast<long long>(report.agents_corrupted)),
         util::fmt(100.0 * report.leader_availability(), 1),
         util::fmt(100.0 * report.safe_availability(), 1)});
    auto row = util::Json::object();
    row.set("burst_period", point.period);
    row.set("burst_size", static_cast<std::uint64_t>(point.size));
    row.set("agents_corrupted", report.agents_corrupted);
    row.set("leader_availability", report.leader_availability());
    row.set("safe_availability", report.safe_availability());
    rows.push(std::move(row));
  }
  table.print(std::cout);
  table.print_csv(std::cout);
  std::cout << "\nn=" << n << " r=" << r << ", horizon="
            << 400 * recovery_scale << " interactions; faults are full "
            << "state randomizations of random agents.\n";
  doc.section("availability", std::move(rows));
  doc.write_if(json_path, std::cout);
  return 0;
}
