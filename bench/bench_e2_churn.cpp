// Experiment E2 (extension) — availability under sustained churn: the
// operational payoff of self-stabilization.  Random agents are corrupted
// at a steady rate while ElectLeader_r runs; we measure the fraction of
// time a unique leader is present and the fraction of time the
// configuration is provably safe, as a function of fault rate.
#include <iostream>

#include "analysis/churn.hpp"
#include "analysis/experiment.hpp"
#include "analysis/measure.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ssle;
  const util::Cli cli(argc, argv);
  const auto n = static_cast<std::uint32_t>(cli.get_int("n", 32));
  const auto r = static_cast<std::uint32_t>(cli.get_int("r", 8));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 130));

  analysis::print_banner(
      "E2 (extension: availability under churn)",
      "Self-stabilization ⇒ the population re-converges after every fault "
      "burst, forever",
      "leader availability degrades gracefully with fault rate; zero churn "
      "gives 100%");

  const core::Params params = core::Params::make(n, r);
  const std::uint64_t recovery_scale = analysis::default_budget(params) / 20;

  util::Table table({"burst period (interactions)", "burst size",
                     "corrupted total", "leader avail %", "safe %"});
  struct Point {
    std::uint64_t period;
    std::uint32_t size;
  };
  const Point points[] = {
      {0, 0},
      {64 * recovery_scale, 1},
      {16 * recovery_scale, 1},
      {4 * recovery_scale, 1},
      {4 * recovery_scale, n / 4},
      {1 * recovery_scale, n / 4},
  };
  for (const auto& point : points) {
    analysis::ChurnSpec spec;
    spec.burst_period = point.period;
    spec.burst_size = point.size;
    spec.horizon = 400 * recovery_scale;
    spec.probe_every = n;
    const auto report = analysis::run_churn(params, spec, seed);
    table.add_row(
        {point.period == 0 ? "none" : util::fmt_int(
                                          static_cast<long long>(point.period)),
         util::fmt_int(point.size),
         util::fmt_int(static_cast<long long>(report.agents_corrupted)),
         util::fmt(100.0 * report.leader_availability(), 1),
         util::fmt(100.0 * report.safe_availability(), 1)});
  }
  table.print(std::cout);
  table.print_csv(std::cout);
  std::cout << "\nn=" << n << " r=" << r << ", horizon="
            << 400 * recovery_scale << " interactions; faults are full "
            << "state randomizations of random agents.\n";
  return 0;
}
