// Experiment E2 (extension) — the churn soak harness: ElectLeader_r under
// composable fault schedules ({corrupt, join, leave} × {periodic, poisson,
// recovery} + battery dropout) on the counts engines, with crash-safe
// checkpoints, journal heartbeats, and soak gates.
//
//   --n=, --r=, --seed=        population / parameter / seed
//   --engine=<spec>            naive | batched | leaping | sharded[:T]
//                              (leaping/sharded reroute loudly to batched:
//                              fault injection mutates n between blocks)
//   --protocol=elect|loose     elect (default): ElectLeader_r — the paper's
//                              protocol; recovery is a full re-stabilization
//                              (Θ(n²/r·log n)), so thousand-cycle soaks are
//                              infeasible beyond small n.  loose: the
//                              LooseLeaderElection baseline — recovery is
//                              Θ(n·τ) and the registry is O(τ), which is
//                              what makes ≥1000-cycle soak gates at
//                              n = 10^5–10^6 runnable (counts engine only).
//   --schedule=<grammar>       analysis::parse_fault_plan grammar, e.g.
//                              "corrupt:recovery:8,leave:periodic:5000:4,
//                               join:periodic:5000:4,battery:8:20000:0.5"
//                              (default: recovery-pressure corruption plus
//                              balanced periodic leave/join, periods scaled
//                              to the protocol's recovery timescale)
//   --horizon=<interactions>   run length (default ≈ 25 recovery cycles)
//   --hours=<wall clock>       wall-clock budget; the run checkpoints and
//                              stops cleanly when it expires
//   --probe-every=<int>        safety-probe grid (default n)
//   --checkpoint=<path>        crash-safe checkpoint file; an existing
//                              file auto-resumes (kill −9 safe)
//   --checkpoint-every=<int>   interactions between saves (default 64n)
//   --fresh                    delete an existing checkpoint first
//   --journal=<path>           JSONL heartbeats with live engine counters
//                              and peak-RSS ("-" for stderr)
//   --json=<path>              structured results (obs::Report envelope)
//   --gate-soak                assert soak health and exit 1 on failure:
//                              ≥ --gate-cycles recovery cycles (default
//                              1000), bounded registry allocation, and
//                              last-decile recovery p95 ≤ 2× first-decile
//   --legacy                   the original fixed availability-vs-rate
//                              table on the naive engine (kept for
//                              comparison with earlier reports)
#include <algorithm>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <optional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "analysis/churn.hpp"
#include "analysis/experiment.hpp"
#include "analysis/measure.hpp"
#include "baselines/loose_leader.hpp"
#include "obs/journal.hpp"
#include "obs/report.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace {

using namespace ssle;

int run_legacy(const core::Params& params, std::uint64_t seed,
               obs::Journal* journal, const std::string& json_path) {
  const std::uint32_t n = params.n;
  const std::uint64_t recovery_scale = analysis::default_budget(params) / 20;
  obs::Report doc("e2_churn", 8);
  doc.set("n", static_cast<std::uint64_t>(params.n))
      .set("r", static_cast<std::uint64_t>(params.r))
      .set("horizon", 400 * recovery_scale);
  auto rows = util::Json::array();

  util::Table table({"burst period (interactions)", "burst size",
                     "corrupted total", "leader avail %", "safe %"});
  struct Point {
    std::uint64_t period;
    std::uint32_t size;
  };
  const Point points[] = {
      {0, 0},
      {64 * recovery_scale, 1},
      {16 * recovery_scale, 1},
      {4 * recovery_scale, 1},
      {4 * recovery_scale, n / 4},
      {1 * recovery_scale, n / 4},
  };
  for (const auto& point : points) {
    analysis::ChurnSpec spec;
    spec.burst_period = point.period;
    spec.burst_size = point.size;
    spec.horizon = 400 * recovery_scale;
    spec.probe_every = n;
    spec.journal = journal;
    if (journal) {
      auto boundary = util::Json::object();
      boundary.set("burst_period", point.period);
      boundary.set("burst_size", static_cast<std::uint64_t>(point.size));
      journal->event("churn_point", std::move(boundary));
    }
    const auto report = analysis::run_churn(params, spec, seed);
    table.add_row(
        {point.period == 0 ? "none" : util::fmt_int(
                                          static_cast<long long>(point.period)),
         util::fmt_int(point.size),
         util::fmt_int(static_cast<long long>(report.agents_corrupted)),
         util::fmt(100.0 * report.leader_availability(), 1),
         util::fmt(100.0 * report.safe_availability(), 1)});
    auto row = util::Json::object();
    row.set("burst_period", point.period);
    row.set("burst_size", static_cast<std::uint64_t>(point.size));
    row.set("agents_corrupted", report.agents_corrupted);
    row.set("leader_availability", report.leader_availability());
    row.set("safe_availability", report.safe_availability());
    rows.push(std::move(row));
  }
  table.print(std::cout);
  table.print_csv(std::cout);
  doc.section("availability", std::move(rows));
  doc.write_if(json_path, std::cout);
  return 0;
}

std::uint64_t nearest_rank_p95(std::vector<std::uint64_t> v) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const std::size_t rank = std::max<std::size_t>(1, (v.size() * 95 + 99) / 100);
  return v[rank - 1];
}

/// The loose-leader soak: LooseLeaderElection on the batched counts engine
/// under the same FaultPlan machinery.  Its O(τ) registry and Θ(n·τ)
/// recovery make long-cycle soaks tractable at n = 10^5–10^6.
analysis::FaultReport run_loose_fault_plan(analysis::EngineSpec engine,
                                           const core::Params& params,
                                           const analysis::FaultPlan& plan,
                                           std::uint64_t seed,
                                           const analysis::FaultRunOptions& opts) {
  using Protocol = baselines::LooseLeaderElection;
  using State = Protocol::State;
  if (static_cast<analysis::Engine>(engine) != analysis::Engine::kBatched) {
    std::fprintf(stderr,
                 "note: --protocol=loose is counts-native; routing "
                 "--engine=%s to the batched counts engine\n",
                 analysis::engine_name(engine));
  }
  const Protocol protocol(params.n);
  const std::uint32_t timeout = protocol.timeout();
  analysis::FaultModel<Protocol> model;
  model.label = "loose_leader";
  model.corrupt_state = [timeout](util::Rng& rng) {
    return State{rng.below(2) == 0,
                 static_cast<std::uint32_t>(rng.below(timeout + 1))};
  };
  model.join_state = [&protocol] { return protocol.initial_state(0); };
  model.safe = [](const pp::CountsConfiguration<Protocol>& c) {
    return c.count_if(Protocol::is_leader) == 1;
  };
  model.unique_leader = model.safe;
  model.encode = [](const State& s) {
    return std::string(s.leader ? "L" : "F") + std::to_string(s.timer);
  };
  model.decode = [](const std::string& text) -> std::optional<State> {
    if (text.empty() || (text[0] != 'L' && text[0] != 'F')) {
      return std::nullopt;
    }
    std::uint32_t timer = 0;
    const char* begin = text.data() + 1;
    const char* end = text.data() + text.size();
    const auto [ptr, ec] = std::from_chars(begin, end, timer);
    if (ec != std::errc{} || ptr != end) return std::nullopt;
    return State{text[0] == 'L', timer};
  };
  pp::CountsConfiguration<Protocol> start(protocol);
  return analysis::run_fault_plan_counts(protocol, std::move(start), plan,
                                         seed, model, opts);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ssle;
  const util::Cli cli(argc, argv);
  const auto n = cli.get_count_u32("n", 100000);
  const auto r = static_cast<std::uint32_t>(cli.get_int("r", 8));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 130));
  const auto json_path = cli.get_string("json", "");
  const auto journal_path = cli.get_string("journal", "");
  const core::Params params = core::Params::make(n, r);

  const auto probe_every = static_cast<std::uint64_t>(
      cli.get_count("probe-every", n));

  // One journal for the whole run; every probe heartbeat carries the live
  // engine counters (population gauge, registry sizes) plus peak-RSS.
  std::unique_ptr<obs::Journal> journal;
  if (cli.has("journal")) {
    obs::Journal::Options jopts;
    jopts.path = journal_path == "-" ? "" : journal_path;
    jopts.every_interactions = 16 * probe_every;
    jopts.run = "e2_soak";
    journal = std::make_unique<obs::Journal>(std::move(jopts));
  }

  if (cli.has("legacy")) {
    analysis::print_banner(
        "E2 (extension: availability under churn)",
        "Self-stabilization ⇒ the population re-converges after every fault "
        "burst, forever",
        "leader availability degrades gracefully with fault rate; zero churn "
        "gives 100%");
    return run_legacy(params, seed, journal.get(), json_path);
  }

  const auto engine = analysis::engine_from_string(
      cli.get_string("engine", "batched"));
  const std::string protocol_name = cli.get_string("protocol", "elect");
  if (protocol_name != "elect" && protocol_name != "loose") {
    std::fprintf(stderr, "unknown --protocol=%s (want elect or loose)\n",
                 protocol_name.c_str());
    return 2;
  }
  const bool loose = protocol_name == "loose";

  // Schedule defaults scale with the protocol's measured recovery
  // timescale, not with n: ElectLeader re-stabilizes in Θ(n²/r·log n)
  // interactions (≈ default_budget; a corrupt:recovery:8 burst at n=1000,
  // r=8 takes ~16.4M interactions ≈ 0.95 budgets to recover), while the
  // loose baseline recovers in Θ(n·τ).  Churn periods shorter than the
  // recovery time would keep the run permanently unsafe and no cycle
  // would ever complete.
  const std::uint64_t recovery_scale =
      loose ? std::max<std::uint64_t>(
                  1, static_cast<std::uint64_t>(n) *
                         baselines::LooseLeaderElection(n).timeout() / 4)
            : analysis::default_budget(params) / 20;
  // Recovery from an 8-agent burst measures ≈ 1.6·recovery_scale
  // (≈ default_budget/12.5), so the defaults give a ~25-cycle run with
  // churn every ~10 cycles; long soaks pass --horizon / --hours.
  const std::uint64_t horizon = static_cast<std::uint64_t>(
      cli.get_int("horizon",
                  static_cast<std::int64_t>(40 * recovery_scale)));
  const std::uint64_t default_churn_period = 16 * recovery_scale;
  const std::string schedule = cli.get_string(
      "schedule",
      "corrupt:recovery:8,leave:periodic:" +
          std::to_string(default_churn_period) +
          ":4,join:periodic:" + std::to_string(default_churn_period) + ":4");
  const analysis::FaultPlan plan =
      analysis::parse_fault_plan(schedule, horizon, probe_every);
  analysis::validate_fault_plan(plan, params.n);

  analysis::FaultRunOptions opts;
  opts.journal = journal.get();
  opts.checkpoint_path = cli.get_string("checkpoint", "");
  opts.checkpoint_every = static_cast<std::uint64_t>(cli.get_count(
      "checkpoint-every", 64 * static_cast<std::size_t>(n)));
  opts.max_wall_seconds = cli.get_double("hours", 0.0) * 3600.0;
  if (cli.has("fresh") && !opts.checkpoint_path.empty()) {
    std::remove(opts.checkpoint_path.c_str());
  }

  analysis::print_banner(
      "E2 (soak: fault schedules, churn, crash-safe checkpoints)",
      "Self-stabilization ⇒ bounded memory and stable recovery across "
      "thousands of corrupt→churn→recover cycles",
      "recovery-time distribution is stationary; registry allocation stays "
      "bounded under id churn");
  std::cout << "n=" << n << " r=" << r << " protocol=" << protocol_name
            << " engine=" << analysis::engine_name(engine) << " schedule=\""
            << schedule << "\" horizon=" << horizon
            << " probe_every=" << probe_every << "\n\n";

  const auto wall_start = std::chrono::steady_clock::now();
  const analysis::FaultReport report =
      loose ? run_loose_fault_plan(engine, params, plan, seed, opts)
            : analysis::run_fault_plan(engine, params, plan, seed, opts);
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  util::Table table({"metric", "value"});
  table.add_row({"interactions",
                 util::fmt_int(static_cast<long long>(report.interactions))});
  table.add_row({"completed", report.completed ? "yes" : "no (wall clock)"});
  table.add_row({"resumed from checkpoint", report.resumed ? "yes" : "no"});
  table.add_row({"fault events",
                 util::fmt_int(static_cast<long long>(report.events))});
  table.add_row(
      {"agents corrupted/joined/left/drained",
       util::fmt_int(static_cast<long long>(report.agents_corrupted)) + "/" +
           util::fmt_int(static_cast<long long>(report.agents_joined)) + "/" +
           util::fmt_int(static_cast<long long>(report.agents_left)) + "/" +
           util::fmt_int(static_cast<long long>(report.agents_drained))});
  table.add_row({"final population",
                 util::fmt_int(static_cast<long long>(
                     report.final_population))});
  table.add_row({"leader availability %",
                 util::fmt(100.0 * report.leader_availability(), 2)});
  table.add_row({"safe availability %",
                 util::fmt(100.0 * report.safe_availability(), 2)});
  table.add_row({"recovery cycles",
                 util::fmt_int(static_cast<long long>(
                     report.recovery_times.size()))});
  table.add_row({"recovery p50 (interactions)",
                 util::fmt_int(static_cast<long long>(
                     report.recovery_quantile(0.50)))});
  table.add_row({"recovery p95 (interactions)",
                 util::fmt_int(static_cast<long long>(
                     report.recovery_quantile(0.95)))});
  table.add_row({"recovery max (interactions)",
                 util::fmt_int(static_cast<long long>(
                     report.recovery_quantile(1.0)))});
  table.add_row({"registry live/allocated states",
                 util::fmt_int(static_cast<long long>(
                     report.metrics.registry_live_states)) +
                     "/" +
                     util::fmt_int(static_cast<long long>(
                         report.metrics.registry_allocated_states))});
  table.add_row({"registry compactions",
                 util::fmt_int(static_cast<long long>(
                     report.metrics.registry_compactions))});
  table.add_row({"peak RSS (KiB)",
                 util::fmt_int(static_cast<long long>(obs::peak_rss_kb()))});
  table.add_row({"wall seconds", util::fmt(wall_seconds, 2)});
  table.add_row(
      {"interactions/sec",
       wall_seconds > 0.0
           ? util::fmt(static_cast<double>(report.interactions) / wall_seconds,
                       0)
           : "-"});
  table.print(std::cout);

  obs::Report doc("e2_soak", 10);
  doc.set("n", static_cast<std::uint64_t>(n))
      .set("r", static_cast<std::uint64_t>(r))
      .set("protocol", protocol_name)
      .set("engine", analysis::engine_name(engine))
      .set("schedule", schedule)
      .set("horizon", horizon)
      .set("probe_every", probe_every)
      .set("seed", seed)
      .set("wall_seconds", wall_seconds)
      .set("peak_rss_kb", obs::peak_rss_kb());
  doc.section("report", report.to_json());
  doc.section("metrics", report.metrics.to_json());
  doc.write_if(json_path, std::cout);

  if (!cli.has("gate-soak")) return 0;

  // --- soak gates -----------------------------------------------------
  const auto min_cycles = cli.get_count("gate-cycles", 1000);
  bool ok = true;
  const std::size_t cycles = report.recovery_times.size();
  if (cycles < min_cycles) {
    std::fprintf(stderr,
                 "GATE: only %zu recovery cycles completed (need >= %zu)\n",
                 cycles, static_cast<std::size_t>(min_cycles));
    ok = false;
  }
  // Bounded allocation: the compaction policy admits at most
  // max(live, kCompactDeadAbsolute) dead ids between compactions, plus
  // slack for the final partial window.
  const std::uint64_t live = report.metrics.registry_live_states;
  const std::uint64_t allocated = report.metrics.registry_allocated_states;
  const std::uint64_t bound = 2 * live + (1ull << 16) + 64;
  if (allocated > bound) {
    std::fprintf(stderr,
                 "GATE: registry allocation unbounded: %llu allocated ids "
                 "for %llu live states (bound %llu)\n",
                 static_cast<unsigned long long>(allocated),
                 static_cast<unsigned long long>(live),
                 static_cast<unsigned long long>(bound));
    ok = false;
  }
  // Recovery-time stationarity: the last decile of cycles must not be more
  // than 2x slower (p95) than the first decile — a drifting distribution
  // means the protocol degrades with soak time.
  const std::size_t decile = cycles / 10;
  if (decile >= 1) {
    const std::uint64_t first = nearest_rank_p95(std::vector<std::uint64_t>(
        report.recovery_times.begin(),
        report.recovery_times.begin() + static_cast<std::ptrdiff_t>(decile)));
    const std::uint64_t last = nearest_rank_p95(std::vector<std::uint64_t>(
        report.recovery_times.end() - static_cast<std::ptrdiff_t>(decile),
        report.recovery_times.end()));
    std::cout << "gate: first-decile p95 = " << first
              << ", last-decile p95 = " << last << "\n";
    if (last > 2 * first) {
      std::fprintf(stderr,
                   "GATE: recovery time drifts: last-decile p95 %llu > 2x "
                   "first-decile p95 %llu\n",
                   static_cast<unsigned long long>(last),
                   static_cast<unsigned long long>(first));
      ok = false;
    }
  }
  if (!ok) return 1;
  std::cout << "gate-soak: OK (" << cycles << " cycles, " << allocated
            << " allocated ids for " << live << " live states)\n";
  return 0;
}
