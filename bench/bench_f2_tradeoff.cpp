// Experiment F2 — the space-time trade-off of Theorem 1.1: at fixed n,
// stabilization takes O((n²/r)·log n) interactions, so measured time should
// scale ∝ 1/r while the per-agent state bits grow with r (see also F6).
//
//   --n=64       population size (the r sweep runs r = 1, 2, 4, ..., rmax)
//   --rmax=0     cap on the r sweep (0 = n/2)
//   --trials=5   seeds per sweep point
//   --jobs=0     parallel_sweep worker threads (0 = all cores)
//   --engine=naive|batched   simulation engine for the sweep
//   --mult=faithful|light    message multiplicity (use light for large n)
//   --budget=0   interaction-budget override per trial (0 = default model
//                budget).  Full stabilization is Θ((n²/r)·log n), so at
//                n ≥ 10^5 set a budget cap: capped trials are counted as
//                failures — never folded into the mean — and the row still
//                reports how far the engine got.  The batched engine with
//                the hashed-Agent registry is what makes n = 10^6 rows
//                executable at all (no O(n) agent array per interaction).
#include <iostream>
#include <vector>

#include "analysis/experiment.hpp"
#include "analysis/measure.hpp"
#include "core/params.hpp"
#include "core/state_size.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ssle;
  const util::Cli cli(argc, argv);
  const auto n = cli.get_count_u32("n", 64);
  const auto trials = cli.get_count("trials", 5);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 20));
  const auto jobs = cli.get_jobs();
  const auto rmax_flag = cli.get_count_u32("rmax", 0);
  const std::uint32_t rmax =
      rmax_flag == 0 ? n / 2 : std::min(rmax_flag, n / 2);
  const auto engine =
      analysis::engine_from_string(cli.get_string("engine", "naive"));
  const auto mult =
      analysis::multiplicity_from_string(cli.get_string("mult", "faithful"));
  const auto budget_override =
      static_cast<std::uint64_t>(cli.get_count("budget", 0));

  analysis::print_banner(
      "F2 (Theorem 1.1 trade-off)",
      "ElectLeader_r stabilizes in O((n²/r)·log n) interactions using "
      "2^{O(r² log n)} states",
      "interactions·r/(n²·ln n) roughly constant across r; bits grow ~r²");
  std::cout << "engine=" << analysis::engine_name(engine)
            << " mult=" << analysis::multiplicity_name(mult)
            << " jobs=" << analysis::effective_jobs(jobs, trials)
            << " trials=" << trials
            << "\n";

  util::Table table({"n", "r", "interactions(mean)", "ci95", "par.time",
                     "inter·r/(n² ln n)", "state_bits", "fails"});
  std::vector<double> rs, ys;
  for (std::uint32_t r = 1; r <= rmax; r *= 2) {
    const core::Params params = core::Params::make(n, r, mult);
    const std::uint64_t budget =
        budget_override ? budget_override : analysis::default_budget(params);
    const auto result =
        analysis::parallel_sweep(seed, trials, [&](std::uint64_t s) {
          const auto run =
              analysis::stabilize(engine, params, s, budget);
          return run.converged ? static_cast<double>(run.interactions) : -1.0;
        }, jobs);
    const double model = util::model_nlogn(n) * n / r;
    table.add_row(
        {util::fmt_int(n), util::fmt_int(r), util::fmt(result.summary.mean, 0),
         util::fmt(util::ci95_halfwidth(result.summary), 0),
         util::fmt(result.summary.mean / n, 1),
         util::fmt(result.summary.mean / model, 2),
         util::fmt(core::bits_elect_leader(params), 0),
         util::fmt_int(static_cast<long long>(result.failures))});
    if (!result.samples.empty()) {
      rs.push_back(r);
      ys.push_back(result.summary.mean);
    }
  }
  table.print(std::cout);
  table.print_csv(std::cout);

  if (rs.size() >= 2) {
    const auto power = util::fit_power(rs, ys);
    std::cout << "\nFit: T(r) ∝ r^" << util::fmt(power.exponent, 3)
              << " (R²=" << util::fmt(power.r2, 4)
              << "); the 1/r trade-off predicts an exponent near -1\n";
  } else {
    std::cout << "\nFit skipped: fewer than two sweep points converged "
                 "within budget.\n";
  }
  return 0;
}
