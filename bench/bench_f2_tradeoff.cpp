// Experiment F2 — the space-time trade-off of Theorem 1.1: at fixed n,
// stabilization takes O((n²/r)·log n) interactions, so measured time should
// scale ∝ 1/r while the per-agent state bits grow with r (see also F6).
#include <iostream>
#include <vector>

#include "analysis/experiment.hpp"
#include "analysis/measure.hpp"
#include "core/params.hpp"
#include "core/state_size.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ssle;
  const util::Cli cli(argc, argv);
  const auto n = static_cast<std::uint32_t>(cli.get_int("n", 64));
  const auto trials = static_cast<std::size_t>(cli.get_int("trials", 5));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 20));

  analysis::print_banner(
      "F2 (Theorem 1.1 trade-off)",
      "ElectLeader_r stabilizes in O((n²/r)·log n) interactions using "
      "2^{O(r² log n)} states",
      "interactions·r/(n²·ln n) roughly constant across r; bits grow ~r²");

  util::Table table({"n", "r", "interactions(mean)", "ci95", "par.time",
                     "inter·r/(n² ln n)", "state_bits", "fails"});
  std::vector<double> rs, ys;
  for (std::uint32_t r = 1; r <= n / 2; r *= 2) {
    const core::Params params = core::Params::make(n, r);
    const auto result = analysis::sweep(seed, trials, [&](std::uint64_t s) {
      const auto run =
          analysis::stabilize_clean(params, s, analysis::default_budget(params));
      return run.converged ? static_cast<double>(run.interactions) : -1.0;
    });
    const double model = util::model_nlogn(n) * n / r;
    table.add_row(
        {util::fmt_int(n), util::fmt_int(r), util::fmt(result.summary.mean, 0),
         util::fmt(util::ci95_halfwidth(result.summary), 0),
         util::fmt(result.summary.mean / n, 1),
         util::fmt(result.summary.mean / model, 2),
         util::fmt(core::bits_elect_leader(params), 0),
         util::fmt_int(static_cast<long long>(result.failures))});
    rs.push_back(r);
    ys.push_back(result.summary.mean);
  }
  table.print(std::cout);
  table.print_csv(std::cout);

  const auto power = util::fit_power(rs, ys);
  std::cout << "\nFit: T(r) ∝ r^" << util::fmt(power.exponent, 3)
            << " (R²=" << util::fmt(power.r2, 4)
            << "); the 1/r trade-off predicts an exponent near -1\n";
  return 0;
}
