// Experiment F8 — Lemma D.10: FastLeaderElect elects a unique leader in
// O(log n) parallel time w.h.p. using 2^{O(log n)} states.  Measures
// completion time and the uniqueness rate over many trials.
#include <atomic>
#include <iostream>
#include <vector>

#include "analysis/experiment.hpp"
#include "core/fast_leader_elect.hpp"
#include "pp/scheduler.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace ssle;

struct FleOutcome {
  double interactions = -1.0;
  bool unique_leader = false;
};

FleOutcome run_once(const core::Params& params, std::uint64_t seed) {
  std::vector<core::FastLeState> agents(params.n, core::fle_initial_state());
  pp::UniformScheduler sched(params.n, seed);
  util::Rng rng(util::substream(seed, 4));
  const std::uint64_t budget =
      4000ull * params.n * core::Params::log2ceil(params.n);
  FleOutcome out;
  for (std::uint64_t t = 1; t <= budget; ++t) {
    const auto [a, b] = sched.next();
    core::fle_interact(params, agents[a], agents[b], rng);
    if (t % params.n != 0) continue;
    bool all_done = true;
    for (const auto& s : agents) all_done &= s.leader_done;
    if (all_done) {
      out.interactions = static_cast<double>(t);
      break;
    }
  }
  if (out.interactions < 0) return out;
  int leaders = 0;
  for (const auto& s : agents) leaders += s.leader_bit;
  out.unique_leader = (leaders == 1);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto trials = cli.get_count("trials", 30);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 70));
  const auto jobs = cli.get_jobs();

  analysis::print_banner(
      "F8 (Lemma D.10)",
      "FastLeaderElect elects a unique leader in time O(log n) w.h.p. from "
      "an awakening configuration, using 2^{O(log n)} states",
      "parallel time /(ln n) roughly constant; uniqueness rate → 1 with n");

  util::Table table(
      {"n", "completion(mean)", "par.time", "par.time/ln n", "unique", "fails"});
  std::vector<double> ns, ys;
  for (std::uint32_t n : {16u, 32u, 64u, 128u, 256u, 512u, 1024u}) {
    const core::Params params = core::Params::make(n, 2);
    std::atomic<std::size_t> unique{0};  // measure runs concurrently
    const auto result =
        analysis::parallel_sweep(seed, trials, [&](std::uint64_t s) {
          const FleOutcome o = run_once(params, s);
          unique += o.unique_leader;
          return o.interactions;
        }, jobs);
    const double par = result.summary.mean / n;
    table.add_row({util::fmt_int(n), util::fmt(result.summary.mean, 0),
                   util::fmt(par, 1),
                   util::fmt(par / util::model_logn(n), 2),
                   util::fmt_int(static_cast<long long>(unique.load())) + "/" +
                       util::fmt_int(static_cast<long long>(trials)),
                   util::fmt_int(static_cast<long long>(result.failures))});
    ns.push_back(n);
    ys.push_back(result.summary.mean);
  }
  table.print(std::cout);
  table.print_csv(std::cout);

  const double c = util::fit_scale(ns, ys, util::model_nlogn);
  std::cout << "\nFit: completion ≈ " << util::fmt(c, 2)
            << "·n·ln n interactions (R²="
            << util::fmt(util::fit_r2(ns, ys, util::model_nlogn, c), 4)
            << ") — i.e. Θ(log n) parallel time\n";
  return 0;
}
