// Experiment A1 — ablations of the paper's three design choices:
//   1. Soft resets (§3.2): without them, message corruption on a correct
//      ranking forces a full reset — recovery destroys the ranking and
//      costs a full re-ranking pass.
//   2. Load balancing (§3.1): without BalanceLoad, messages stay clumped
//      and duplicate-rank detection slows dramatically.
//   3. Message multiplicity: the Θ(m²)-messages-per-rank amplification vs
//      the Light Θ(m) variant.
#include <iostream>
#include <vector>

#include "analysis/experiment.hpp"
#include "analysis/measure.hpp"
#include "core/adversary.hpp"
#include "core/detect_collision.hpp"
#include "core/elect_leader.hpp"
#include "core/safety.hpp"
#include "pp/scheduler.hpp"
#include "pp/simulator.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace ssle;

/// Recovery time from corrupt-messages + whether the ranking survived.
/// The preserved check compares each agent's rank before/after, which
/// needs per-agent identity — a naive-engine capability by construction
/// (the counts projection only keeps the multiset).  The trajectory is
/// identical to analysis::stabilize(kNaive, kAdversarial, …,
/// kCorruptMessages, …): same substream-77 configuration draw, same
/// simulator seeding, same safety probe.
struct RecoveryOutcome {
  double interactions = -1.0;
  bool preserved = false;
};

RecoveryOutcome recover_corrupt_messages(const core::Params& params,
                                         std::uint64_t seed,
                                         std::uint64_t budget) {
  util::Rng gen(util::substream(seed, 77));
  auto config = core::make_adversarial_config(
      params, core::Corruption::kCorruptMessages, gen);
  std::vector<std::uint32_t> before;
  for (const auto& a : config) before.push_back(a.rank);

  core::ElectLeader protocol(params);
  pp::Population<core::ElectLeader> pop(std::move(config));
  pp::Simulator<core::ElectLeader> sim(protocol, std::move(pop), seed);
  const auto run = sim.run_until(
      [&](const pp::Population<core::ElectLeader>& c, std::uint64_t) {
        return core::is_safe_configuration(params, c.states());
      },
      budget, params.n);
  RecoveryOutcome out;
  if (!run.converged) return out;
  out.interactions = static_cast<double>(run.interactions);
  out.preserved = true;
  for (std::uint32_t i = 0; i < params.n; ++i) {
    out.preserved &= sim.population()[i].rank == before[i];
  }
  return out;
}

/// Standalone DetectCollision latency with one planted duplicate.
double detect_latency(const core::Params& params, std::uint64_t seed,
                      std::uint64_t budget) {
  std::vector<std::uint32_t> ranks(params.n);
  for (std::uint32_t i = 0; i < params.n; ++i) ranks[i] = i + 1;
  ranks[0] = ranks[params.n - 1];
  std::vector<core::DcState> states;
  for (const auto rank : ranks) {
    states.push_back(core::dc_initial_state(params, rank));
  }
  pp::UniformScheduler sched(params.n, seed);
  util::Rng rng(util::substream(seed, 4));
  for (std::uint64_t t = 1; t <= budget; ++t) {
    const auto [a, b] = sched.next();
    core::detect_collision(params, ranks[a], states[a], ranks[b], states[b],
                           rng);
    if (states[a].error || states[b].error) return static_cast<double>(t);
  }
  return -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto n = static_cast<std::uint32_t>(cli.get_int("n", 32));
  const auto trials = cli.get_count("trials", 5);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 110));
  const auto jobs = cli.get_jobs();
  const auto engine = analysis::engine_from_string(
      cli.get_string("engine", "naive"));
  const auto start = analysis::start_from_string(
      cli.get_string("start", "adversarial"));

  analysis::print_banner(
      "A1 (design-choice ablations)",
      "Soft resets preserve correct rankings; BalanceLoad and the Θ(m²) "
      "message amplification buy the fast detection bound",
      "disabling each mechanism degrades exactly its claimed benefit");

  // --- Ablation 1: soft reset ------------------------------------------------
  //
  // Engine-generic via the unified analysis::stabilize.  The
  // ranking_preserved column needs per-agent identity, so it is only
  // computed on the naive adversarial path (same trajectory, one run);
  // the batched engine measures recovery time on the counts projection
  // and reports the column as n/a.
  {
    const bool per_agent = engine == analysis::Engine::kNaive &&
                           start == analysis::StartKind::kAdversarial;
    util::Table table({"variant", "recovery(mean)", "ranking_preserved"});
    for (const bool soft : {true, false}) {
      core::Params params = core::Params::make(n, n / 4);
      params.soft_reset_enabled = soft;
      const std::uint64_t budget = 10 * analysis::default_budget(params);
      double mean = -1.0;
      std::string preserved_cell = "n/a (counts)";
      if (per_agent) {
        double sum = 0;
        std::size_t preserved = 0, converged = 0;
        for (std::size_t t = 0; t < trials; ++t) {
          const auto o = recover_corrupt_messages(params, seed + t, budget);
          if (o.interactions >= 0) {
            ++converged;
            sum += o.interactions;
            preserved += o.preserved;
          }
        }
        mean = converged ? sum / converged : -1.0;
        preserved_cell = util::fmt_int(static_cast<long long>(preserved)) +
                         "/" + util::fmt_int(static_cast<long long>(trials));
      } else {
        const auto res =
            analysis::parallel_sweep(seed, trials, [&](std::uint64_t s) {
              const auto run = analysis::stabilize(
                  engine, start, params, core::Corruption::kCorruptMessages,
                  s, budget);
              return run.converged ? static_cast<double>(run.interactions)
                                   : -1.0;
            }, jobs);
        mean = res.summary.count > 0 ? res.summary.mean : -1.0;
        if (start == analysis::StartKind::kClean) preserved_cell = "- (clean)";
      }
      table.add_row(
          {soft ? "soft resets ON (paper)" : "soft resets OFF (ablated)",
           util::fmt(mean, 0), preserved_cell});
    }
    std::cout << "\n[1] Recovery from corrupt_messages (n=" << n
              << ", engine=" << analysis::engine_name(engine)
              << ", start=" << analysis::start_name(start) << "):\n";
    table.print(std::cout);
    table.print_csv(std::cout);
  }

  // --- Ablation 2: load balancing -------------------------------------------
  {
    util::Table table({"variant", "detect(mean)", "fails"});
    for (const bool lb : {true, false}) {
      core::Params params = core::Params::make(n, n / 2);
      params.load_balancing_enabled = lb;
      const std::uint64_t L = core::Params::log2ceil(n);
      const std::uint64_t budget = 4000ull * n * L;
      const auto res =
          analysis::parallel_sweep(seed, trials, [&](std::uint64_t s) {
            return detect_latency(params, s, budget);
          }, jobs);
      table.add_row(
          {lb ? "BalanceLoad ON (paper)" : "BalanceLoad OFF (ablated)",
           util::fmt(res.summary.mean, 0),
           util::fmt_int(static_cast<long long>(res.failures))});
    }
    std::cout << "\n[2] Duplicate-rank detection latency (n=" << n
              << ", r=n/2, budget-capped):\n";
    table.print(std::cout);
    table.print_csv(std::cout);
  }

  // --- Ablation 3: message multiplicity -------------------------------------
  {
    util::Table table({"variant", "detect(mean)", "msgs/agent", "fails"});
    for (const auto mult : {core::MessageMultiplicity::kFaithful,
                            core::MessageMultiplicity::kLight}) {
      const core::Params params = core::Params::make(n, n / 2, mult);
      const std::uint64_t L = core::Params::log2ceil(n);
      const std::uint64_t budget = 8000ull * n * L;
      const auto res =
          analysis::parallel_sweep(seed, trials, [&](std::uint64_t s) {
            return detect_latency(params, s, budget);
          }, jobs);
      const auto held =
          core::dc_message_count(core::dc_initial_state(params, 1));
      table.add_row(
          {mult == core::MessageMultiplicity::kFaithful ? "Faithful Θ(m²)/rank"
                                                        : "Light Θ(m)/rank",
           util::fmt(res.summary.mean, 0),
           util::fmt_int(static_cast<long long>(held)),
           util::fmt_int(static_cast<long long>(res.failures))});
    }
    std::cout << "\n[3] Detection latency vs message multiplicity (n=" << n
              << ", r=n/2):\n";
    table.print(std::cout);
    table.print_csv(std::cout);
  }
  return 0;
}
