// Experiment F11 — Appendix B derandomization: synthetic-coin samples are
// almost uniform, P[x = v] ∈ [1/(2N), 2/N] for every v ∈ [N] (Lemma B.1),
// harvested purely from scheduler randomness.
#include <iostream>
#include <map>
#include <vector>

#include "analysis/experiment.hpp"
#include "core/synthetic_coin.hpp"
#include "pp/scheduler.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ssle;
  const util::Cli cli(argc, argv);
  const auto n = static_cast<std::uint32_t>(cli.get_int("n", 128));
  const auto samples_target =
      static_cast<std::uint64_t>(cli.get_int("samples", 200000));

  analysis::print_banner(
      "F11 (Appendix B, Lemma B.1)",
      "Each agent assembles values x ∈ [N] from partner coin bits with "
      "P[x = v] ∈ [1/(2N), 2/N]",
      "max/min empirical probability ratio ≤ 4 and within the paper's band");

  util::Table table({"N", "samples", "min_p·N", "max_p·N", "band_ok"});
  for (std::uint64_t N : {2ull, 8ull, 32ull, 256ull}) {
    std::vector<core::SyntheticCoin> agents(n, core::SyntheticCoin(N));
    util::Rng init(3);
    for (std::uint32_t i = 0; i < n; i += 2) agents[i].observe(init.coin());

    pp::UniformScheduler sched(n, 4 + N);
    std::map<std::uint64_t, std::uint64_t> counts;
    std::uint64_t samples = 0;
    while (samples < samples_target) {
      const auto [a, b] = sched.next();
      const bool coin_a = agents[a].coin();
      const bool coin_b = agents[b].coin();
      agents[a].observe(coin_b);
      agents[b].observe(coin_a);
      for (auto idx : {a, b}) {
        if (agents[idx].ready()) {
          ++counts[agents[idx].sample()];
          ++samples;
        }
      }
    }
    double min_p = 1.0, max_p = 0.0;
    for (std::uint64_t v = 1; v <= N; ++v) {
      const double p = static_cast<double>(counts[v]) / samples;
      min_p = std::min(min_p, p);
      max_p = std::max(max_p, p);
    }
    const bool ok = min_p >= 0.5 / N && max_p <= 2.0 / N;
    table.add_row({util::fmt_int(static_cast<long long>(N)),
                   util::fmt_int(static_cast<long long>(samples)),
                   util::fmt(min_p * N, 3), util::fmt(max_p * N, 3),
                   ok ? "yes" : "NO"});
  }
  table.print(std::cout);
  table.print_csv(std::cout);
  return 0;
}
