// Experiment M1 — engine micro-benchmarks (google-benchmark): raw
// interaction throughput of each protocol, the scheduler, the heavy
// DetectCollision inner loops, and a per-interaction cost breakdown of the
// batched engine's hot path (state copy vs hash vs Fenwick update vs δ
// call vs intern vs δ-cache lookup), so end-to-end engine ratios can be
// decomposed into their components.  Not a paper claim; establishes the
// simulation cost model used to size the other experiments.
//
// `--json=<path>` maps to google-benchmark's JSON reporter
// (--benchmark_out=<path> --benchmark_out_format=json), matching the
// structured-output flag of the plain bench binaries.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "baselines/cai_izumi_wada.hpp"
#include "baselines/loose_leader.hpp"
#include "baselines/silent_ssr.hpp"
#include "core/adversary.hpp"
#include "core/derandomized.hpp"
#include "core/detect_collision.hpp"
#include "core/elect_leader.hpp"
#include "pp/batched_simulator.hpp"
#include "pp/delta_cache.hpp"
#include "pp/interner.hpp"
#include "pp/simulator.hpp"

namespace {

using namespace ssle;

void BM_Scheduler(benchmark::State& state) {
  pp::UniformScheduler sched(static_cast<std::uint32_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched.next());
  }
}
BENCHMARK(BM_Scheduler)->Arg(64)->Arg(1024);

void BM_ElectLeaderInteraction(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto r = static_cast<std::uint32_t>(state.range(1));
  const core::Params params = core::Params::make(n, r);
  core::ElectLeader protocol(params);
  pp::Simulator<core::ElectLeader> sim(protocol, 1);
  for (auto _ : state) {
    sim.step(64);
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_ElectLeaderInteraction)
    ->Args({64, 2})
    ->Args({64, 16})
    ->Args({64, 32})
    ->Args({128, 64});

void BM_DetectCollisionPair(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const core::Params params = core::Params::make(n, n / 2);
  core::DcState a = core::dc_initial_state(params, 1);
  core::DcState b = core::dc_initial_state(params, 2);
  util::Rng rng(1);
  for (auto _ : state) {
    core::detect_collision(params, 1, a, 2, b, rng);
    benchmark::DoNotOptimize(a);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DetectCollisionPair)->Arg(32)->Arg(64)->Arg(128);

void BM_BalanceLoad(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const core::Params params = core::Params::make(n, n / 2);
  core::DcState a = core::dc_initial_state(params, 1);
  core::DcState b = core::dc_initial_state(params, 2);
  for (auto _ : state) {
    core::balance_load(params, 1, a, b);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_BalanceLoad)->Arg(32)->Arg(64)->Arg(128);

void BM_CaiIzumiWada(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  baselines::CaiIzumiWada protocol(n);
  pp::Simulator<baselines::CaiIzumiWada> sim(protocol, 1);
  for (auto _ : state) {
    sim.step(1024);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_CaiIzumiWada)->Arg(1024);

void BM_SilentSsr(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  baselines::SilentSsrBaseline protocol(n);
  pp::Simulator<baselines::SilentSsrBaseline> sim(protocol, 1);
  for (auto _ : state) {
    sim.step(256);
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_SilentSsr)->Arg(128);

void BM_LooseLeader(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  baselines::LooseLeaderElection protocol(n);
  pp::Simulator<baselines::LooseLeaderElection> sim(protocol, 1);
  for (auto _ : state) {
    sim.step(1024);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_LooseLeader)->Arg(1024);

// ---------------------------------------------------------------------------
// Batched-engine hot-path breakdown (ISSUE 5): the per-interaction cost of
// ElectLeader on the batched engine decomposes into state copies, a δ
// call, re-interning the outputs (hash + id-table probe) and O(log q)
// Fenwick updates.  Each component is measured in isolation over a
// realistic q ≈ n registry (random_states corruption at n = 10^5), so the
// end-to-end engine numbers in bench_parallel_sweep §4/§5 can be read as
// a sum of parts rather than a mystery.
// ---------------------------------------------------------------------------

/// A churned q ≈ n agent population (every state distinct w.h.p.).
const std::vector<core::Agent>& churned_agents() {
  static const std::vector<core::Agent> agents = [] {
    const core::Params params =
        core::Params::make(100000, 64, core::MessageMultiplicity::kLight);
    util::Rng rng(12345);
    return core::make_adversarial_config(
        params, core::Corruption::kRandomStates, rng);
  }();
  return agents;
}

void BM_Breakdown_AgentCopyConstruct(benchmark::State& state) {
  const auto& agents = churned_agents();
  std::size_t i = 0;
  for (auto _ : state) {
    core::Agent copy(agents[i]);  // fresh construction: allocates
    benchmark::DoNotOptimize(copy);
    i = (i + 1) % agents.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Breakdown_AgentCopyConstruct);

void BM_Breakdown_AgentCopyAssign(benchmark::State& state) {
  // The engine's scratch-reuse path: copy-assign into a warm object
  // reuses its heap buffers — this vs CopyConstruct is the allocation
  // traffic the interned hot loop eliminated.
  const auto& agents = churned_agents();
  core::Agent scratch = agents[0];
  std::size_t i = 0;
  for (auto _ : state) {
    scratch = agents[i];
    benchmark::DoNotOptimize(scratch);
    i = (i + 1) % agents.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Breakdown_AgentCopyAssign);

void BM_Breakdown_AgentHash(benchmark::State& state) {
  const auto& agents = churned_agents();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::hash_value(agents[i]));
    i = (i + 1) % agents.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Breakdown_AgentHash);

void BM_Breakdown_DeltaCall(benchmark::State& state) {
  // One ElectLeader δ evaluation on scratch states (copy-assign included,
  // matching what a δ-cache miss actually pays on top of the lookup).
  const auto& agents = churned_agents();
  const core::Params params =
      core::Params::make(100000, 64, core::MessageMultiplicity::kLight);
  core::ElectLeader protocol(params);
  util::Rng rng(7);
  core::Agent a = agents[0], b = agents[1];
  std::size_t i = 0;
  for (auto _ : state) {
    a = agents[i];
    b = agents[i + 1];
    protocol.interact(a, b, rng);
    benchmark::DoNotOptimize(a);
    i = (i + 2) % (agents.size() - 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Breakdown_DeltaCall);

void BM_Breakdown_FenwickUpdatePair(benchmark::State& state) {
  // The irreducible id-space cost per interaction: a sample_class draw
  // plus remove/add point updates on a q ≈ n registry.
  pp::CountsConfiguration<core::ElectLeader> config(churned_agents());
  util::Rng rng(9);
  const std::uint64_t n = config.population_size();
  for (auto _ : state) {
    const auto idx = config.sample_class(rng.below(n));
    config.remove_at(idx, 1);
    config.add_at(idx, 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Breakdown_FenwickUpdatePair);

void BM_Breakdown_InternHit(benchmark::State& state) {
  // Re-interning an already-known state: one hash + id-table probe (the
  // cost of a *changed* δ output that lands on an existing class).
  pp::StateInterner<core::Agent> interner;
  const auto& agents = churned_agents();
  for (const auto& a : agents) interner.intern(a);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(interner.intern(agents[i]));
    i = (i + 1) % agents.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Breakdown_InternHit);

void BM_Breakdown_DeltaCacheLookup(benchmark::State& state) {
  // A memoized transition: what a δ-cache hit costs instead of
  // copy + δ + re-intern.
  pp::DeltaCache cache;
  const std::uint32_t kPairs = 1 << 16;
  for (std::uint32_t i = 0; i < kPairs; ++i) {
    cache.insert(pp::DeltaCache::pack(i, i ^ 0x55u),
                 pp::DeltaCache::pack(i + 1, i + 2));
  }
  std::uint32_t i = 0;
  std::uint64_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cache.lookup(pp::DeltaCache::pack(i, i ^ 0x55u), v));
    i = (i + 1) & (kPairs - 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Breakdown_DeltaCacheLookup);

void BM_BatchedElectLeaderInteraction(benchmark::State& state) {
  // End-to-end batched per-interaction cost at q ≈ n (randomized δ:
  // Fenwick draws + scratch copies + δ + hinted re-intern).
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const core::Params params =
      core::Params::make(n, 64, core::MessageMultiplicity::kLight);
  util::Rng rng(4242);
  const auto agents =
      core::make_adversarial_config(params, core::Corruption::kRandomStates,
                                    rng);
  core::ElectLeader protocol(params);
  pp::BatchedSimulator<core::ElectLeader> sim(
      protocol, pp::CountsConfiguration<core::ElectLeader>(agents), 1);
  for (auto _ : state) {
    sim.step(1024);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_BatchedElectLeaderInteraction)->Arg(16384);

void BM_BatchedDerandomizedMemoized(benchmark::State& state) {
  // End-to-end memoized per-interaction cost (deterministic δ, clean
  // start: the δ-cache's favourable regime).  range(1) = 1 enables the
  // cache, 0 pins the uncached path.
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const core::Params params =
      core::Params::make(n, 64, core::MessageMultiplicity::kLight);
  core::DerandomizedElectLeader protocol(params);
  pp::BatchedSimulator<core::DerandomizedElectLeader> sim(
      protocol, 1, pp::BlockSampling::kAuto,
      state.range(1) == 1 ? pp::DeltaMemo::kEnabled
                          : pp::DeltaMemo::kDisabled);
  for (auto _ : state) {
    sim.step(1024);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_BatchedDerandomizedMemoized)->Args({16384, 0})->Args({16384, 1});

}  // namespace

/// BENCHMARK_MAIN with one extra flag: --json=<path> becomes google-
/// benchmark's JSON file reporter, so every bench binary shares the same
/// structured-output interface.
int main(int argc, char** argv) {
  std::vector<std::string> args;
  std::string json_path;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else {
      args.push_back(arg);
    }
  }
  if (!json_path.empty()) {
    args.push_back("--benchmark_out=" + json_path);
    args.push_back("--benchmark_out_format=json");
  }
  std::vector<char*> argv2;
  argv2.reserve(args.size());
  for (auto& a : args) argv2.push_back(a.data());
  int argc2 = static_cast<int>(argv2.size());
  benchmark::Initialize(&argc2, argv2.data());
  if (benchmark::ReportUnrecognizedArguments(argc2, argv2.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
