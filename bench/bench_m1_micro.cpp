// Experiment M1 — engine micro-benchmarks (google-benchmark): raw
// interaction throughput of each protocol, the scheduler, and the heavy
// DetectCollision inner loops.  Not a paper claim; establishes the
// simulation cost model used to size the other experiments.
#include <benchmark/benchmark.h>

#include "baselines/cai_izumi_wada.hpp"
#include "baselines/loose_leader.hpp"
#include "baselines/silent_ssr.hpp"
#include "core/detect_collision.hpp"
#include "core/elect_leader.hpp"
#include "pp/simulator.hpp"

namespace {

using namespace ssle;

void BM_Scheduler(benchmark::State& state) {
  pp::UniformScheduler sched(static_cast<std::uint32_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched.next());
  }
}
BENCHMARK(BM_Scheduler)->Arg(64)->Arg(1024);

void BM_ElectLeaderInteraction(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto r = static_cast<std::uint32_t>(state.range(1));
  const core::Params params = core::Params::make(n, r);
  core::ElectLeader protocol(params);
  pp::Simulator<core::ElectLeader> sim(protocol, 1);
  for (auto _ : state) {
    sim.step(64);
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_ElectLeaderInteraction)
    ->Args({64, 2})
    ->Args({64, 16})
    ->Args({64, 32})
    ->Args({128, 64});

void BM_DetectCollisionPair(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const core::Params params = core::Params::make(n, n / 2);
  core::DcState a = core::dc_initial_state(params, 1);
  core::DcState b = core::dc_initial_state(params, 2);
  util::Rng rng(1);
  for (auto _ : state) {
    core::detect_collision(params, 1, a, 2, b, rng);
    benchmark::DoNotOptimize(a);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DetectCollisionPair)->Arg(32)->Arg(64)->Arg(128);

void BM_BalanceLoad(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const core::Params params = core::Params::make(n, n / 2);
  core::DcState a = core::dc_initial_state(params, 1);
  core::DcState b = core::dc_initial_state(params, 2);
  for (auto _ : state) {
    core::balance_load(params, 1, a, b);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_BalanceLoad)->Arg(32)->Arg(64)->Arg(128);

void BM_CaiIzumiWada(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  baselines::CaiIzumiWada protocol(n);
  pp::Simulator<baselines::CaiIzumiWada> sim(protocol, 1);
  for (auto _ : state) {
    sim.step(1024);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_CaiIzumiWada)->Arg(1024);

void BM_SilentSsr(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  baselines::SilentSsrBaseline protocol(n);
  pp::Simulator<baselines::SilentSsrBaseline> sim(protocol, 1);
  for (auto _ : state) {
    sim.step(256);
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_SilentSsr)->Arg(128);

void BM_LooseLeader(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  baselines::LooseLeaderElection protocol(n);
  pp::Simulator<baselines::LooseLeaderElection> sim(protocol, 1);
  for (auto _ : state) {
    sim.step(1024);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_LooseLeader)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
