#!/usr/bin/env python3
"""Assembles BENCH_PR10.json from the three soak harness runs.

Inputs (paths passed on the command line, in order):
  1. the 1000-cycle gate run's --json output (bench_e2_churn, elect)
  2. the n = 10^6 churn demonstration's --json output
  3. checkpoint-overhead A/B: the checkpointed run's --json and the
     uncheckpointed run's --json

Usage:
  compose_bench_pr10.py GATE.json BIGN.json CKPT_DENSE.json \
      CKPT_DEFAULT.json CKPT_OFF.json OUT.json
"""
import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def main():
    gate, bign, ck_dense, ck_default, ck_off, out = sys.argv[1:7]
    gate, bign, ck_dense, ck_default, ck_off = (
        load(gate), load(bign), load(ck_dense), load(ck_default), load(ck_off))

    def recovery_table(doc):
        r = doc["sections"]["report"]
        return {
            "recovery_cycles": r["recovery_cycles"],
            "recovery_p50": r["recovery_p50"],
            "recovery_p95": r["recovery_p95"],
            "recovery_max": r["recovery_max"],
            "safe_availability": r["safe_availability"],
            "leader_availability": r["leader_availability"],
        }

    dense_wall = ck_dense["wall_seconds"]
    default_wall = ck_default["wall_seconds"]
    off_wall = ck_off["wall_seconds"]
    doc = {
        "schema_version": 1,
        "bench": "e2_soak_snapshot",
        "pr": 10,
        "sections": {
            # The ≥1000-cycle soak gate run (ElectLeader, batched engine,
            # corrupt-on-recovery + periodic leave/join churn).
            "soak_gate": {
                "params": {k: gate[k] for k in
                           ("n", "r", "engine", "protocol", "schedule",
                            "horizon", "probe_every", "seed")},
                "recovery": recovery_table(gate),
                "registry": {
                    "live": gate["sections"]["metrics"]["registry_live_states"],
                    "allocated":
                        gate["sections"]["metrics"]["registry_allocated_states"],
                },
                "wall_seconds": gate["wall_seconds"],
                "peak_rss_kb": gate["peak_rss_kb"],
                "report": gate["sections"]["report"],
            },
            # Churn at n = 10^6 on the batched engine: O(log q) fault
            # events, bounded registry allocation, crash-safe checkpoints.
            "churn_n1e6": {
                "params": {k: bign[k] for k in
                           ("n", "r", "engine", "protocol", "schedule",
                            "horizon", "probe_every", "seed")},
                "report": bign["sections"]["report"],
                "metrics": bign["sections"]["metrics"],
                "wall_seconds": bign["wall_seconds"],
                "peak_rss_kb": bign["peak_rss_kb"],
            },
            # Same run with and without --checkpoint: the overhead of the
            # canonicalize + serialize + fsync + rename discipline, at a
            # deliberately dense cadence (every 10^6 interactions — ~2 s of
            # wall clock at this n) and at the default cadence (64n).
            "checkpoint_overhead": {
                "params": {k: ck_dense[k] for k in
                           ("n", "r", "horizon", "probe_every", "seed")},
                "wall_seconds_dense_cadence": dense_wall,
                "wall_seconds_default_cadence": default_wall,
                "wall_seconds_plain": off_wall,
                "overhead_ratio_dense": (dense_wall / off_wall)
                                        if off_wall else None,
                "overhead_ratio_default": (default_wall / off_wall)
                                          if off_wall else None,
            },
        },
    }
    with open(out, "w") as f:
        json.dump(doc, f, indent=1, sort_keys=False)
        f.write("\n")
    print("wrote", out)


if __name__ == "__main__":
    main()
