#include "analysis/trace.hpp"

#include <gtest/gtest.h>

#include "analysis/measure.hpp"
#include "core/adversary.hpp"
#include "core/elect_leader.hpp"
#include "pp/simulator.hpp"

namespace ssle::analysis {
namespace {

using core::Params;

Trace trace_clean_run(const Params& p, std::uint64_t seed,
                      std::uint64_t horizon) {
  core::ElectLeader protocol(p);
  pp::Simulator<core::ElectLeader> sim(protocol, seed);
  Trace trace(p);
  trace.record(0, sim.population().states());
  while (sim.interactions() < horizon) {
    sim.step(p.n);
    trace.record(sim.interactions(), sim.population().states());
  }
  return trace;
}

TEST(Trace, CleanRunMilestonesAreOrdered) {
  const Params p = Params::make(16, 8);
  const Trace trace = trace_clean_run(p, 3, default_budget(p));
  ASSERT_TRUE(trace.first_verifier().has_value());
  ASSERT_TRUE(trace.all_verifiers().has_value());
  ASSERT_TRUE(trace.first_safe().has_value());
  EXPECT_LE(*trace.first_verifier(), *trace.all_verifiers());
  EXPECT_LE(*trace.all_verifiers(), *trace.first_safe());
  EXPECT_EQ(trace.reset_waves(), 0u);  // clean runs never reset (w.h.p.)
}

TEST(Trace, EmptyTraceHasNoMilestones) {
  Trace trace(Params::make(8, 2));
  EXPECT_FALSE(trace.first_verifier().has_value());
  EXPECT_FALSE(trace.first_safe().has_value());
  EXPECT_EQ(trace.reset_waves(), 0u);
}

TEST(Trace, ResetWavesCounted) {
  const Params p = Params::make(16, 8);
  core::ElectLeader protocol(p);
  util::Rng gen(7);
  auto config =
      core::make_adversarial_config(p, core::Corruption::kDuplicateRanks, gen);
  pp::Population<core::ElectLeader> pop(std::move(config));
  pp::Simulator<core::ElectLeader> sim(protocol, std::move(pop), 8);
  Trace trace(p);
  const std::uint64_t horizon = 8 * default_budget(p);
  bool safe_seen = false;
  while (sim.interactions() < horizon && !safe_seen) {
    sim.step(p.n / 2);
    trace.record(sim.interactions(), sim.population().states());
    safe_seen = trace.first_safe().has_value();
  }
  ASSERT_TRUE(safe_seen);
  EXPECT_GE(trace.reset_waves(), 1u);  // duplicates force a hard reset
}

TEST(Trace, SummaryMentionsAllMilestones) {
  const Params p = Params::make(16, 8);
  const Trace trace = trace_clean_run(p, 3, default_budget(p));
  const std::string text = trace.summary();
  EXPECT_NE(text.find("first verifier"), std::string::npos);
  EXPECT_NE(text.find("all verifiers"), std::string::npos);
  EXPECT_NE(text.find("first safe"), std::string::npos);
  EXPECT_NE(text.find("reset waves"), std::string::npos);
  EXPECT_EQ(text.find("never"), std::string::npos);
}

}  // namespace
}  // namespace ssle::analysis
