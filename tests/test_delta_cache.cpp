// Memoized transition cache: unit tests, bit-identical cached-vs-uncached
// determinism for every deterministic-δ protocol, and naive-vs-batched
// statistical equivalence for the interned engine across the shipped
// protocol zoo (the newly deterministic baselines plus the randomized
// SilentSsr path).
#include "pp/delta_cache.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "analysis/measure.hpp"
#include "baselines/cai_izumi_wada.hpp"
#include "baselines/fight_leader.hpp"
#include "baselines/loose_leader.hpp"
#include "baselines/silent_ssr.hpp"
#include "core/derandomized.hpp"
#include "core/params.hpp"
#include "pp/batched_simulator.hpp"
#include "pp/epidemic.hpp"
#include "pp/simulator.hpp"

namespace ssle::pp {
namespace {

// ---------------------------------------------------------------------------
// DeltaCache unit tests.
// ---------------------------------------------------------------------------

TEST(DeltaCache, PackUnpackRoundTrips) {
  const auto key = DeltaCache::pack(0xdeadbeefu, 0x12345678u);
  const auto [a, b] = DeltaCache::unpack(key);
  EXPECT_EQ(a, 0xdeadbeefu);
  EXPECT_EQ(b, 0x12345678u);
}

TEST(DeltaCache, InsertLookupClear) {
  DeltaCache cache;
  std::uint64_t v = 0;
  EXPECT_FALSE(cache.lookup(DeltaCache::pack(1, 2), v));
  cache.insert(DeltaCache::pack(1, 2), DeltaCache::pack(3, 4));
  ASSERT_TRUE(cache.lookup(DeltaCache::pack(1, 2), v));
  EXPECT_EQ(DeltaCache::unpack(v), (std::pair<std::uint32_t, std::uint32_t>{3, 4}));
  EXPECT_FALSE(cache.lookup(DeltaCache::pack(2, 1), v));  // ordered pairs
  EXPECT_EQ(cache.size(), 1u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.lookup(DeltaCache::pack(1, 2), v));
}

TEST(DeltaCache, GrowthPreservesEveryEntry) {
  DeltaCache cache;
  const std::uint32_t kEntries = 40000;  // well past the 1024-slot start
  for (std::uint32_t i = 0; i < kEntries; ++i) {
    cache.insert(DeltaCache::pack(i, i + 1), DeltaCache::pack(i + 2, i + 3));
  }
  EXPECT_EQ(cache.size(), kEntries);
  std::uint64_t v = 0;
  for (std::uint32_t i = 0; i < kEntries; ++i) {
    ASSERT_TRUE(cache.lookup(DeltaCache::pack(i, i + 1), v)) << i;
    EXPECT_EQ(v, DeltaCache::pack(i + 2, i + 3));
  }
}

// ---------------------------------------------------------------------------
// Bit-identical determinism: for a deterministic δ the memoized engine must
// reproduce the uncached engine's run EXACTLY — same RNG consumption, same
// id sequences, same final configuration — for both block samplers.
// ---------------------------------------------------------------------------

template <Protocol P>
void expect_bit_identical_runs(const P& proto, std::uint64_t seed,
                               std::uint64_t steps, BlockSampling sampling) {
  static_assert(kDeterministicDelta<P>);
  BatchedSimulator<P> cached(proto, seed, sampling, DeltaMemo::kEnabled);
  BatchedSimulator<P> uncached(proto, seed, sampling, DeltaMemo::kDisabled);
  cached.step(steps);
  uncached.step(steps);
  EXPECT_EQ(cached.interactions(), uncached.interactions());
  EXPECT_TRUE(cached.config().to_states() == uncached.config().to_states());
  EXPECT_EQ(cached.config().num_live_states(),
            uncached.config().num_live_states());
  EXPECT_EQ(uncached.delta_cache_hits(), 0u);
  EXPECT_EQ(uncached.delta_cache_misses(), 0u);
  EXPECT_GT(cached.delta_cache_hits() + cached.delta_cache_misses(), 0u);
}

TEST(DeltaMemoIdentical, Epidemic) {
  Epidemic proto{256};
  for (const auto sampling :
       {BlockSampling::kAuto, BlockSampling::kDense, BlockSampling::kFenwick}) {
    expect_bit_identical_runs(proto, 17, 5000, sampling);
  }
}

TEST(DeltaMemoIdentical, DerandomizedElectLeader) {
  const core::Params params = core::Params::make(64, 16);
  core::DerandomizedElectLeader proto(params);
  for (const auto sampling :
       {BlockSampling::kAuto, BlockSampling::kDense, BlockSampling::kFenwick}) {
    expect_bit_identical_runs(proto, 23, 20000, sampling);
  }
}

TEST(DeltaMemoIdentical, DeterministicBaselines) {
  baselines::CaiIzumiWada ciw(32);
  baselines::FightLeaderElection fle(128);
  baselines::LooseLeaderElection lle(128);
  for (const auto sampling :
       {BlockSampling::kAuto, BlockSampling::kFenwick}) {
    expect_bit_identical_runs(ciw, 31, 20000, sampling);
    expect_bit_identical_runs(fle, 37, 5000, sampling);
    expect_bit_identical_runs(lle, 41, 20000, sampling);
  }
}

TEST(DeltaMemoIdentical, RunResultMatchesThroughRunUntil) {
  Epidemic proto{512};
  const auto probe = [](const CountsConfiguration<Epidemic>& c,
                        std::uint64_t) {
    return c.count_of(1) == c.population_size();
  };
  BatchedSimulator<Epidemic> cached(proto, 5, BlockSampling::kAuto,
                                    DeltaMemo::kEnabled);
  BatchedSimulator<Epidemic> uncached(proto, 5, BlockSampling::kAuto,
                                      DeltaMemo::kDisabled);
  const auto rc = cached.run_until(probe, 1u << 22);
  const auto ru = uncached.run_until(probe, 1u << 22);
  EXPECT_TRUE(rc.converged);
  EXPECT_EQ(rc.converged, ru.converged);
  EXPECT_EQ(rc.interactions, ru.interactions);
  EXPECT_GT(cached.delta_cache_hits(), 0u);
}

TEST(DeltaMemo, CacheActuallyHitsOnNarrowRegistries) {
  // Epidemic has ≤ 4 ordered pair types alive at any time: after warmup the
  // cache should absorb nearly every transition.
  Epidemic proto{1024};
  BatchedSimulator<Epidemic> sim(proto, 7);
  sim.step(50000);
  EXPECT_GT(sim.delta_cache_hits(), 10 * sim.delta_cache_misses());
}

// ---------------------------------------------------------------------------
// Statistical equivalence vs the naive engine for the protocols whose
// batched path changed in this PR: the newly deterministic baselines (now
// bulk-applied + memoized) and the randomized SilentSsr (interned,
// scratch-reuse path).  Epidemic and ElectLeader equivalence live in
// test_batched_simulator.cpp.
// ---------------------------------------------------------------------------

struct SampleStats {
  double mean = 0.0;
  double sd = 0.0;
};

SampleStats stats_of(const std::vector<double>& xs) {
  double sum = 0.0, sumsq = 0.0;
  for (const double x : xs) {
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / static_cast<double>(xs.size());
  const double var = sumsq / static_cast<double>(xs.size()) - mean * mean;
  return {mean, std::sqrt(std::max(0.0, var))};
}

/// Mean first-hit times of `naive_done` / `batched_done` over many seeds
/// must agree within a wide band (engines are statistically equivalent,
/// never bit-wise).
template <Protocol P, typename NaiveDone, typename BatchedDone>
void expect_engines_statistically_equivalent(
    const P& proto, int trials, std::uint64_t budget, NaiveDone&& naive_done,
    BatchedDone&& batched_done) {
  std::vector<double> naive, batched;
  for (int t = 0; t < trials; ++t) {
    {
      Simulator<P> sim(proto, 100 + static_cast<std::uint64_t>(t));
      const auto r = sim.run_until(naive_done, budget, 1);
      ASSERT_TRUE(r.converged) << "naive trial " << t;
      naive.push_back(static_cast<double>(r.interactions));
    }
    {
      BatchedSimulator<P> sim(proto, 9000 + static_cast<std::uint64_t>(t));
      const auto r = sim.run_until(batched_done, budget, 1);
      ASSERT_TRUE(r.converged) << "batched trial " << t;
      batched.push_back(static_cast<double>(r.interactions));
    }
  }
  const auto sn = stats_of(naive);
  const auto sb = stats_of(batched);
  EXPECT_GT(sb.mean, 0.5 * sn.mean)
      << "naive mean=" << sn.mean << " batched mean=" << sb.mean;
  EXPECT_LT(sb.mean, 2.0 * sn.mean)
      << "naive mean=" << sn.mean << " batched mean=" << sb.mean;
}

TEST(InternedEquivalence, FightLeaderElection) {
  baselines::FightLeaderElection proto(64);
  expect_engines_statistically_equivalent(
      proto, 150, 1u << 20,
      [&](const Population<baselines::FightLeaderElection>& pop,
          std::uint64_t) { return proto.leader_count(pop.states()) == 1; },
      [](const CountsConfiguration<baselines::FightLeaderElection>& c,
         std::uint64_t) {
        return c.count_if(baselines::FightLeaderElection::is_leader) == 1;
      });
}

TEST(InternedEquivalence, CaiIzumiWada) {
  baselines::CaiIzumiWada proto(8);
  expect_engines_statistically_equivalent(
      proto, 100, 1u << 22,
      [&](const Population<baselines::CaiIzumiWada>& pop, std::uint64_t) {
        return proto.is_stable(pop.states());
      },
      [&](const CountsConfiguration<baselines::CaiIzumiWada>& c,
          std::uint64_t) {
        // Ranks form a permutation of [n] iff all n classes are live (each
        // then necessarily has count 1).
        return c.num_live_states() == proto.population_size();
      });
}

TEST(InternedEquivalence, LooseLeaderElection) {
  // All-leaders start (the interesting fight: duplicate leaders abdicate
  // pairwise while zero timers can promote fresh ones): first moment the
  // population is down to exactly one leader.
  baselines::LooseLeaderElection proto(48);
  const std::vector<baselines::LooseLeaderElection::State> all_leaders(
      48, baselines::LooseLeaderElection::State{true, 0});
  const std::uint64_t budget = 1u << 20;
  const int trials = 120;
  std::vector<double> naive, batched;
  for (int t = 0; t < trials; ++t) {
    {
      Simulator<baselines::LooseLeaderElection> sim(
          proto, Population<baselines::LooseLeaderElection>(all_leaders),
          100 + static_cast<std::uint64_t>(t));
      const auto r = sim.run_until(
          [&](const Population<baselines::LooseLeaderElection>& pop,
              std::uint64_t) { return proto.leader_count(pop.states()) == 1; },
          budget, 1);
      ASSERT_TRUE(r.converged) << "naive trial " << t;
      naive.push_back(static_cast<double>(r.interactions));
    }
    {
      BatchedSimulator<baselines::LooseLeaderElection> sim(
          proto,
          CountsConfiguration<baselines::LooseLeaderElection>(all_leaders),
          9000 + static_cast<std::uint64_t>(t));
      const auto r = sim.run_until(
          [](const CountsConfiguration<baselines::LooseLeaderElection>& c,
             std::uint64_t) {
            return c.count_if(baselines::LooseLeaderElection::is_leader) == 1;
          },
          budget, 1);
      ASSERT_TRUE(r.converged) << "batched trial " << t;
      batched.push_back(static_cast<double>(r.interactions));
    }
  }
  const auto sn = stats_of(naive);
  const auto sb = stats_of(batched);
  EXPECT_GT(sb.mean, 0.5 * sn.mean)
      << "naive mean=" << sn.mean << " batched mean=" << sb.mean;
  EXPECT_LT(sb.mean, 2.0 * sn.mean)
      << "naive mean=" << sn.mean << " batched mean=" << sb.mean;
}

TEST(InternedEquivalence, SilentSsrRandomizedPath) {
  // SilentSsr keeps a randomized δ: this exercises the interned scratch-
  // reuse path (copy-assign + hinted re-intern) rather than the memo cache.
  baselines::SilentSsrBaseline proto(12);
  expect_engines_statistically_equivalent(
      proto, 60, 1u << 22,
      [&](const Population<baselines::SilentSsrBaseline>& pop, std::uint64_t) {
        return proto.is_stable(pop.states());
      },
      [&](const CountsConfiguration<baselines::SilentSsrBaseline>& c,
          std::uint64_t) { return proto.is_stable(c.to_states()); });
}

// ---------------------------------------------------------------------------
// The analysis plumbing: derandomized ElectLeader through both engines.
// ---------------------------------------------------------------------------

TEST(InternedEquivalence, DerandomizedElectLeader) {
  // Class identity includes the synthetic coin (δ reads it), so the
  // counts projection is an exact lumping and the engines must agree in
  // distribution — checked on clean-start stabilization times.
  const core::Params params = core::Params::make(16, 4);
  const std::uint64_t budget = 4 * analysis::default_budget(params);
  const int trials = 20;
  std::vector<double> naive, batched;
  for (int t = 0; t < trials; ++t) {
    const auto rn = analysis::stabilize_derandomized(
        analysis::Engine::kNaive, params, 300 + t, budget);
    ASSERT_TRUE(rn.converged) << "naive trial " << t;
    naive.push_back(rn.parallel_time);
    const auto rb = analysis::stabilize_derandomized(
        analysis::Engine::kBatched, params, 900 + t, budget);
    ASSERT_TRUE(rb.converged) << "batched trial " << t;
    EXPECT_EQ(rb.leaders, 1u);
    batched.push_back(rb.parallel_time);
  }
  const auto sn = stats_of(naive);
  const auto sb = stats_of(batched);
  // Stabilization time is heavy-tailed and 20 trials is modest: wide band,
  // same spirit as the ElectLeader test in test_batched_simulator.cpp.
  EXPECT_GT(sb.mean, 0.4 * sn.mean)
      << "naive mean=" << sn.mean << " batched mean=" << sb.mean;
  EXPECT_LT(sb.mean, 2.5 * sn.mean)
      << "naive mean=" << sn.mean << " batched mean=" << sb.mean;
}

TEST(StabilizeDerandomized, ConvergesOnBothEnginesWithOneLeader) {
  const core::Params params = core::Params::make(24, 8);
  const std::uint64_t budget = 4 * analysis::default_budget(params);
  for (const auto engine :
       {analysis::Engine::kNaive, analysis::Engine::kBatched}) {
    const auto res = analysis::stabilize_derandomized(engine, params, 3, budget);
    EXPECT_TRUE(res.converged) << analysis::engine_name(engine);
    EXPECT_EQ(res.leaders, 1u) << analysis::engine_name(engine);
  }
}

}  // namespace
}  // namespace ssle::pp
