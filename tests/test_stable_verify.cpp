#include "core/stable_verify.hpp"

#include <gtest/gtest.h>

#include "core/detect_collision.hpp"
#include "core/propagate_reset.hpp"

namespace ssle::core {
namespace {

Agent make_verifier(const Params& p, std::uint32_t rank,
                    std::uint32_t generation = 0,
                    std::uint32_t probation = 0) {
  Agent a;
  a.role = Role::kVerifying;
  a.rank = rank;
  a.sv = sv_initial_state(p, rank);
  a.sv.generation = generation;
  a.sv.probation_timer = probation;
  return a;
}

TEST(SvInitialState, StartsOnProbationGenerationZero) {
  const Params p = Params::make(16, 8);
  const SvState s = sv_initial_state(p, 3);
  EXPECT_EQ(s.generation, 0u);
  EXPECT_EQ(s.probation_timer, p.probation_max);
  EXPECT_FALSE(s.dc.error);
}

TEST(StableVerify, ProbationTimersDecrement) {
  const Params p = Params::make(16, 8);
  Agent u = make_verifier(p, 1, 0, 5);
  Agent v = make_verifier(p, 2, 0, 1);
  util::Rng rng(1);
  stable_verify(p, u, v, rng);
  EXPECT_EQ(u.sv.probation_timer, 4u);
  EXPECT_EQ(v.sv.probation_timer, 0u);
  stable_verify(p, u, v, rng);
  EXPECT_EQ(v.sv.probation_timer, 0u);  // clamped at zero
}

TEST(StableVerify, ErrorOffProbationSoftResets) {
  const Params p = Params::make(16, 8);
  Agent u = make_verifier(p, 4, 0, 0);
  Agent v = make_verifier(p, 4, 0, 0);  // duplicate rank → ⊤ on interaction
  util::Rng rng(2);
  const VerifyStats stats = stable_verify_counted(p, u, v, rng);
  EXPECT_GE(stats.soft_resets, 1u);
  EXPECT_EQ(stats.hard_resets, 0u);
  // Soft-reset agents advanced a generation and are on probation.
  for (const Agent* a : {&u, &v}) {
    if (a->sv.generation == 1) {
      EXPECT_EQ(a->sv.probation_timer, p.probation_max);
      EXPECT_FALSE(a->sv.dc.error);  // re-initialized at q0,DC
    }
  }
}

TEST(StableVerify, ErrorOnProbationHardResets) {
  const Params p = Params::make(16, 8);
  Agent u = make_verifier(p, 4, 0, 10);
  Agent v = make_verifier(p, 4, 0, 10);
  util::Rng rng(3);
  const VerifyStats stats = stable_verify_counted(p, u, v, rng);
  EXPECT_GE(stats.hard_resets, 1u);
  EXPECT_TRUE(u.role == Role::kResetting || v.role == Role::kResetting);
}

TEST(StableVerify, SuccessorGenerationAdoptedOffProbation) {
  const Params p = Params::make(16, 8);
  Agent u = make_verifier(p, 1, 0, 0);
  Agent v = make_verifier(p, 2, 1, p.probation_max);
  util::Rng rng(4);
  const VerifyStats stats = stable_verify_counted(p, u, v, rng);
  EXPECT_EQ(stats.soft_resets, 1u);
  EXPECT_EQ(u.sv.generation, 1u);  // u adopted v's generation
  EXPECT_EQ(u.sv.probation_timer, p.probation_max);
  EXPECT_EQ(u.role, Role::kVerifying);
  EXPECT_EQ(v.role, Role::kVerifying);
}

TEST(StableVerify, GenerationWrapsModuloSix) {
  const Params p = Params::make(16, 8);
  Agent u = make_verifier(p, 1, 5, 0);
  Agent v = make_verifier(p, 2, 0, p.probation_max);
  util::Rng rng(5);
  stable_verify(p, u, v, rng);
  EXPECT_EQ(u.sv.generation, 0u);  // 5 → 0 (mod 6)
  EXPECT_EQ(u.role, Role::kVerifying);
}

TEST(StableVerify, SuccessorGenerationOnProbationHardResets) {
  const Params p = Params::make(16, 8);
  Agent u = make_verifier(p, 1, 0, 50);  // behind but on probation
  Agent v = make_verifier(p, 2, 1, 0);
  util::Rng rng(6);
  const VerifyStats stats = stable_verify_counted(p, u, v, rng);
  EXPECT_GE(stats.hard_resets, 1u);
}

TEST(StableVerify, NonAdjacentGenerationsHardReset) {
  const Params p = Params::make(16, 8);
  Agent u = make_verifier(p, 1, 0, 0);
  Agent v = make_verifier(p, 2, 3, 0);
  util::Rng rng(7);
  const VerifyStats stats = stable_verify_counted(p, u, v, rng);
  EXPECT_GE(stats.hard_resets, 1u);
}

TEST(StableVerify, BackwardAdjacencyIsAsymmetric) {
  // v is one *behind* u; v should adopt u's generation, not vice versa.
  const Params p = Params::make(16, 8);
  Agent u = make_verifier(p, 1, 2, 0);
  Agent v = make_verifier(p, 2, 1, 0);
  util::Rng rng(8);
  stable_verify(p, u, v, rng);
  EXPECT_EQ(u.sv.generation, 2u);
  EXPECT_EQ(v.sv.generation, 2u);
  EXPECT_EQ(u.role, Role::kVerifying);
  EXPECT_EQ(v.role, Role::kVerifying);
}

TEST(StableVerify, SameGenerationCleanPairNoResets) {
  const Params p = Params::make(16, 8);
  Agent u = make_verifier(p, 1, 0, 0);
  Agent v = make_verifier(p, 2, 0, 0);
  util::Rng rng(9);
  for (int i = 0; i < 500; ++i) {
    const VerifyStats stats = stable_verify_counted(p, u, v, rng);
    ASSERT_EQ(stats.soft_resets, 0u);
    ASSERT_EQ(stats.hard_resets, 0u);
  }
  EXPECT_EQ(u.role, Role::kVerifying);
  EXPECT_EQ(v.role, Role::kVerifying);
}

TEST(StableVerify, DifferentGenerationSkipsDetectCollision) {
  // Same rank would raise ⊤ — but generations differ, so DetectCollision
  // must not run (Protocol 2 line 3 guard).
  const Params p = Params::make(16, 8);
  Agent u = make_verifier(p, 4, 0, 0);
  Agent v = make_verifier(p, 4, 1, p.probation_max);
  util::Rng rng(10);
  stable_verify(p, u, v, rng);
  EXPECT_FALSE(v.sv.dc.error);
}

}  // namespace
}  // namespace ssle::core
