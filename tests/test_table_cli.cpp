#include <gtest/gtest.h>

#include <sstream>

#include "util/cli.hpp"
#include "util/table.hpp"

namespace ssle::util {
namespace {

TEST(Table, AlignsColumns) {
  Table t({"n", "time"});
  t.add_row({"8", "1.5"});
  t.add_row({"1024", "123.25"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("n"), std::string::npos);
  EXPECT_NE(out.find("1024"), std::string::npos);
  EXPECT_NE(out.find("123.25"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CsvFormat) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "CSV,a,b\nCSV,1,2\n");
}

TEST(Table, RaggedRowsTolerated) {
  Table t({"a", "b", "c"});
  t.add_row({"1"});
  t.add_row({"1", "2", "3", "4"});
  std::ostringstream os;
  t.print(os);
  EXPECT_FALSE(os.str().empty());
}

TEST(Fmt, FixedPrecision) {
  EXPECT_EQ(fmt(1.23456, 2), "1.23");
  EXPECT_EQ(fmt(1.0, 0), "1");
  EXPECT_EQ(fmt_int(-42), "-42");
}

TEST(Cli, ParsesKeyValueAndFlags) {
  const char* argv[] = {"prog", "--n=128", "--verbose", "pos1", "--x=2.5"};
  Cli cli(5, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("n", 0), 128);
  EXPECT_TRUE(cli.has("verbose"));
  EXPECT_FALSE(cli.has("quiet"));
  EXPECT_DOUBLE_EQ(cli.get_double("x", 0.0), 2.5);
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "pos1");
}

TEST(Cli, FallbacksUsedWhenAbsent) {
  const char* argv[] = {"prog"};
  Cli cli(1, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("n", 7), 7);
  EXPECT_EQ(cli.get_string("mode", "fast"), "fast");
}

}  // namespace
}  // namespace ssle::util
