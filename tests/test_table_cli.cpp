#include <gtest/gtest.h>

#include <sstream>

#include "util/cli.hpp"
#include "util/table.hpp"

namespace ssle::util {
namespace {

TEST(Table, AlignsColumns) {
  Table t({"n", "time"});
  t.add_row({"8", "1.5"});
  t.add_row({"1024", "123.25"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("n"), std::string::npos);
  EXPECT_NE(out.find("1024"), std::string::npos);
  EXPECT_NE(out.find("123.25"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CsvFormat) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "CSV,a,b\nCSV,1,2\n");
}

TEST(Table, RaggedRowsTolerated) {
  Table t({"a", "b", "c"});
  t.add_row({"1"});
  t.add_row({"1", "2", "3", "4"});
  std::ostringstream os;
  t.print(os);
  EXPECT_FALSE(os.str().empty());
}

TEST(Fmt, FixedPrecision) {
  EXPECT_EQ(fmt(1.23456, 2), "1.23");
  EXPECT_EQ(fmt(1.0, 0), "1");
  EXPECT_EQ(fmt_int(-42), "-42");
}

TEST(Cli, ParsesKeyValueAndFlags) {
  const char* argv[] = {"prog", "--n=128", "--verbose", "pos1", "--x=2.5"};
  Cli cli(5, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("n", 0), 128);
  EXPECT_TRUE(cli.has("verbose"));
  EXPECT_FALSE(cli.has("quiet"));
  EXPECT_DOUBLE_EQ(cli.get_double("x", 0.0), 2.5);
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "pos1");
}

TEST(Cli, FallbacksUsedWhenAbsent) {
  const char* argv[] = {"prog"};
  Cli cli(1, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("n", 7), 7);
  EXPECT_EQ(cli.get_string("mode", "fast"), "fast");
}

TEST(Cli, NegativeAndFlagValuesParse) {
  const char* argv[] = {"prog", "--delta=-42", "--verbose"};
  Cli cli(3, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("delta", 0), -42);
  // A bare flag stores "1", so numeric reads of it stay valid.
  EXPECT_EQ(cli.get_int("verbose", 0), 1);
}

TEST(Cli, JobsFlagDefaultsToZeroMeaningAllCores) {
  const char* argv1[] = {"prog"};
  Cli plain(1, const_cast<char**>(argv1));
  EXPECT_EQ(plain.get_jobs(), 0u);
  const char* argv2[] = {"prog", "--jobs=4"};
  Cli four(2, const_cast<char**>(argv2));
  EXPECT_EQ(four.get_jobs(), 4u);
}

// Regression: get_int/get_double used to silently return 0 on garbage
// ("--n=abc" → n = 0 → nonsense Params::make(0, r)); they now exit(2)
// with a clear message.
TEST(CliDeathTest, GarbageIntegerExitsWithError) {
  const char* argv[] = {"prog", "--n=abc"};
  Cli cli(2, const_cast<char**>(argv));
  EXPECT_EXIT(cli.get_int("n", 0), ::testing::ExitedWithCode(2),
              "--n=abc is not a valid integer");
}

TEST(CliDeathTest, TrailingGarbageIntegerExitsWithError) {
  const char* argv[] = {"prog", "--n=12x"};
  Cli cli(2, const_cast<char**>(argv));
  EXPECT_EXIT(cli.get_int("n", 0), ::testing::ExitedWithCode(2),
              "--n=12x is not a valid integer");
}

TEST(CliDeathTest, IntegerOverflowExitsWithError) {
  const char* argv[] = {"prog", "--n=99999999999999999999999"};
  Cli cli(2, const_cast<char**>(argv));
  EXPECT_EXIT(cli.get_int("n", 0), ::testing::ExitedWithCode(2),
              "is not a valid integer");
}

TEST(CliDeathTest, GarbageDoubleExitsWithError) {
  const char* argv[] = {"prog", "--x=1.2.3"};
  Cli cli(2, const_cast<char**>(argv));
  EXPECT_EXIT(cli.get_double("x", 0.0), ::testing::ExitedWithCode(2),
              "--x=1.2.3 is not a valid number");
}

TEST(CliDeathTest, EmptyValueExitsWithError) {
  const char* argv[] = {"prog", "--x="};
  Cli cli(2, const_cast<char**>(argv));
  EXPECT_EXIT(cli.get_double("x", 0.0), ::testing::ExitedWithCode(2),
              "is not a valid number");
}

TEST(CliDeathTest, NegativeCountExitsWithError) {
  // --trials=-1 would wrap to 2^64-1 at the size_t cast; count-like flags
  // reject negatives outright.
  const char* argv[] = {"prog", "--trials=-1"};
  Cli cli(2, const_cast<char**>(argv));
  EXPECT_EXIT(cli.get_count("trials", 5), ::testing::ExitedWithCode(2),
              "--trials=-1 is not a valid non-negative count");
}

TEST(Cli, GetCountParsesAndFallsBack) {
  const char* argv[] = {"prog", "--trials=12"};
  Cli cli(2, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_count("trials", 5), 12u);
  EXPECT_EQ(cli.get_count("absent", 5), 5u);
}

}  // namespace
}  // namespace ssle::util
