// FaultPlan subsystem tests: schedule grammar + hard validation (S1),
// runner accounting and recovery-cycle semantics, tiny-n TV law parity
// between the counts-native runner and the independently-written naive
// twin (Epidemic and LooseLeaderElection), and checkpoint/resume
// determinism of full ElectLeader_r fault runs.
#include "analysis/churn.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "analysis/measure.hpp"
#include "baselines/loose_leader.hpp"
#include "pp/epidemic.hpp"

namespace ssle::analysis {
namespace {

using core::Params;

// --- grammar --------------------------------------------------------------

TEST(FaultPlanParse, FullGrammarRoundTrips) {
  const FaultPlan plan = parse_fault_plan(
      "corrupt:periodic:1000:4,leave:poisson:500:2,join:recovery:3,"
      "battery:8:2000:0.25",
      /*horizon=*/100000, /*probe_every=*/100);
  ASSERT_EQ(plan.rules.size(), 3u);
  EXPECT_EQ(plan.rules[0].action, FaultAction::kCorrupt);
  EXPECT_EQ(plan.rules[0].timing, FaultTiming::kPeriodic);
  EXPECT_EQ(plan.rules[0].period, 1000u);
  EXPECT_EQ(plan.rules[0].count, 4u);
  EXPECT_EQ(plan.rules[1].action, FaultAction::kLeave);
  EXPECT_EQ(plan.rules[1].timing, FaultTiming::kPoisson);
  EXPECT_EQ(plan.rules[1].period, 500u);
  EXPECT_EQ(plan.rules[2].action, FaultAction::kJoin);
  EXPECT_EQ(plan.rules[2].timing, FaultTiming::kOnRecovery);
  EXPECT_EQ(plan.rules[2].count, 3u);
  EXPECT_EQ(plan.battery.levels, 8u);
  EXPECT_EQ(plan.battery.decay_every, 2000u);
  EXPECT_DOUBLE_EQ(plan.battery.decay_prob, 0.25);
  EXPECT_EQ(plan.horizon, 100000u);
  EXPECT_EQ(plan.probe_every, 100u);
}

TEST(FaultPlanParseDeath, GarbageRuleExits) {
  EXPECT_EXIT(parse_fault_plan("corrupt:sometimes:17", 1000, 10),
              ::testing::ExitedWithCode(2), "field: schedule");
}

TEST(FaultPlanParseDeath, EmptyScheduleExits) {
  EXPECT_EXIT(parse_fault_plan("", 1000, 10), ::testing::ExitedWithCode(2),
              "field: schedule");
}

TEST(FaultPlanParseDeath, NegativeCountExits) {
  EXPECT_EXIT(parse_fault_plan("corrupt:periodic:100:-3", 1000, 10),
              ::testing::ExitedWithCode(2), "field: schedule");
}

// --- S1: validation exits naming the field --------------------------------

FaultPlan corrupt_plan(std::uint64_t period, std::uint64_t count,
                       std::uint64_t horizon, std::uint64_t probe_every) {
  FaultPlan plan;
  plan.rules.push_back(
      {FaultAction::kCorrupt, FaultTiming::kPeriodic, period, count});
  plan.horizon = horizon;
  plan.probe_every = probe_every;
  return plan;
}

TEST(FaultPlanDeath, ZeroHorizonExits) {
  EXPECT_EXIT(validate_fault_plan(corrupt_plan(100, 1, 0, 10), 16),
              ::testing::ExitedWithCode(2), "field: horizon");
}

TEST(FaultPlanDeath, ZeroProbeEveryExits) {
  EXPECT_EXIT(validate_fault_plan(corrupt_plan(100, 1, 1000, 0), 16),
              ::testing::ExitedWithCode(2), "field: probe_every");
}

TEST(FaultPlanDeath, ZeroPeriodExits) {
  EXPECT_EXIT(validate_fault_plan(corrupt_plan(0, 1, 1000, 10), 16),
              ::testing::ExitedWithCode(2), "field: period");
}

TEST(FaultPlanDeath, BurstLargerThanPopulationExits) {
  EXPECT_EXIT(validate_fault_plan(corrupt_plan(100, 17, 1000, 10), 16),
              ::testing::ExitedWithCode(2), "field: count");
}

TEST(FaultPlanDeath, LeaveEmptyingPopulationExits) {
  FaultPlan plan;
  plan.rules.push_back(
      {FaultAction::kLeave, FaultTiming::kPeriodic, 100, 15});
  plan.horizon = 1000;
  plan.probe_every = 10;
  EXPECT_EXIT(validate_fault_plan(plan, 16), ::testing::ExitedWithCode(2),
              "field: count");
}

TEST(FaultPlanDeath, RepeatedLeavesDrainingPopulationExitAtRuntime) {
  // Statically fine (4 < 16 − 2) but with no joins the population drains;
  // the runtime guard in the runner must fire before it reaches 2.
  const Params p = Params::make(16, 8);
  FaultPlan plan;
  plan.rules.push_back({FaultAction::kLeave, FaultTiming::kPeriodic, 50, 4});
  plan.horizon = 100000;
  plan.probe_every = 100;
  EXPECT_EXIT(run_fault_plan(Engine::kBatched, p, plan, 5),
              ::testing::ExitedWithCode(2), "below 2");
}

TEST(FaultPlanDeath, BatteryWithoutDecayIntervalExits) {
  FaultPlan plan = corrupt_plan(100, 1, 1000, 10);
  plan.battery.levels = 4;
  EXPECT_EXIT(validate_fault_plan(plan, 16), ::testing::ExitedWithCode(2),
              "field: decay_every");
}

TEST(FaultPlanDeath, NaiveEngineRejectsCheckpointRequest) {
  const Params p = Params::make(16, 8);
  FaultRunOptions opts;
  opts.checkpoint_path = "/tmp/fault_plan_naive.ckpt";
  opts.checkpoint_every = 100;
  EXPECT_EXIT(run_fault_plan(Engine::kNaive, p, corrupt_plan(100, 1, 1000, 10),
                             1, opts),
              ::testing::ExitedWithCode(2), "counts-native");
}

// --- runner accounting ----------------------------------------------------

TEST(FaultPlanRun, PeriodicCorruptionAccounting) {
  const Params p = Params::make(16, 8);
  const FaultPlan plan = corrupt_plan(1000, 3, 10000, 100);
  const FaultReport report = run_fault_plan(Engine::kBatched, p, plan, 4);
  EXPECT_EQ(report.events, 10u);
  EXPECT_EQ(report.agents_corrupted, 30u);
  EXPECT_EQ(report.probes, 100u);
  EXPECT_EQ(report.final_population, 16u);
  EXPECT_EQ(report.interactions, 10000u);
  EXPECT_TRUE(report.completed);
  EXPECT_FALSE(report.resumed);
}

TEST(FaultPlanRun, JoinAndLeaveTrackThePopulation) {
  const Params p = Params::make(16, 8);
  FaultPlan plan;
  plan.rules.push_back({FaultAction::kJoin, FaultTiming::kPeriodic, 500, 2});
  plan.horizon = 5000;
  plan.probe_every = 100;
  const FaultReport report = run_fault_plan(Engine::kBatched, p, plan, 7);
  EXPECT_EQ(report.agents_joined, 20u);
  EXPECT_EQ(report.final_population, 36u);

  FaultPlan churn = plan;
  churn.rules.push_back(
      {FaultAction::kLeave, FaultTiming::kPeriodic, 500, 2});
  const FaultReport balanced =
      run_fault_plan(Engine::kBatched, p, churn, 7);
  EXPECT_EQ(balanced.agents_joined, 20u);
  EXPECT_EQ(balanced.agents_left, 20u);
  EXPECT_EQ(balanced.final_population, 16u);
}

TEST(FaultPlanRun, BatteryDecayDrainsThePopulation) {
  const Params p = Params::make(32, 8);
  FaultPlan plan;
  plan.battery.levels = 3;
  plan.battery.decay_every = 1000;  // deterministic decay_prob = 1
  plan.horizon = 3500;              // 3 ticks: everyone reaches 0 at t=3000
  plan.probe_every = 100;
  EXPECT_EXIT(run_fault_plan(Engine::kBatched, p, plan, 3),
              ::testing::ExitedWithCode(2), "below 2");

  // With a slower clock only some ticks land inside the horizon.
  plan.horizon = 2500;  // 2 ticks: batteries at level 1, nobody drained
  const FaultReport report = run_fault_plan(Engine::kBatched, p, plan, 3);
  EXPECT_EQ(report.agents_drained, 0u);
  EXPECT_EQ(report.final_population, 32u);
}

TEST(FaultPlanRun, RecoveryCyclesAreRecorded) {
  const Params p = Params::make(16, 8);
  // Rare large bursts with a long quiet gap: the protocol should recover
  // between bursts, closing measurable cycles.
  FaultPlan plan;
  plan.rules.push_back({FaultAction::kCorrupt, FaultTiming::kPeriodic,
                        8 * default_budget(p) / 20, 4});
  plan.horizon = 6 * plan.rules[0].period;
  plan.probe_every = 64;
  const FaultReport report = run_fault_plan(Engine::kBatched, p, plan, 11);
  EXPECT_GT(report.recovery_times.size(), 0u);
  // Quantiles are ordered and bounded by the horizon.
  EXPECT_LE(report.recovery_quantile(0.5), report.recovery_quantile(0.95));
  EXPECT_LE(report.recovery_quantile(0.95), report.recovery_quantile(1.0));
  EXPECT_LE(report.recovery_quantile(1.0), plan.horizon);
}

TEST(FaultPlanRun, OnRecoveryScheduleKeepsPressure) {
  const Params p = Params::make(16, 8);
  FaultPlan plan;
  plan.rules.push_back(
      {FaultAction::kCorrupt, FaultTiming::kOnRecovery, 0, 2});
  plan.horizon = 20 * default_budget(p) / 20;
  plan.probe_every = 256;
  const FaultReport report = run_fault_plan(Engine::kBatched, p, plan, 13);
  // Every safe probe triggers a burst, so bursts ≈ safe probes (within 1:
  // the final probe's burst has no later probe to observe it).
  EXPECT_EQ(report.events, report.probes_safe);
  if (report.probes_safe > 0) {
    EXPECT_GT(report.agents_corrupted, 0u);
  }
}

TEST(FaultPlanRun, DeterministicPerSeedAndEngineRouting) {
  const Params p = Params::make(16, 8);
  const FaultPlan plan = corrupt_plan(2000, 2, 50000, 100);
  const FaultReport a = run_fault_plan(Engine::kBatched, p, plan, 9);
  const FaultReport b = run_fault_plan(Engine::kBatched, p, plan, 9);
  EXPECT_EQ(a.probes_safe, b.probes_safe);
  EXPECT_EQ(a.registry_fingerprint, b.registry_fingerprint);
  EXPECT_EQ(a.recovery_times, b.recovery_times);
  // kLeaping and kSharded reroute to the batched runner (loudly): the
  // trajectory is the batched one, bit for bit.
  const FaultReport c = run_fault_plan(Engine::kLeaping, p, plan, 9);
  const FaultReport d =
      run_fault_plan(EngineSpec(Engine::kSharded, 2), p, plan, 9);
  EXPECT_EQ(a.registry_fingerprint, c.registry_fingerprint);
  EXPECT_EQ(a.registry_fingerprint, d.registry_fingerprint);
}

TEST(FaultPlanRun, WallClockStopReportsIncomplete) {
  const Params p = Params::make(16, 8);
  FaultPlan plan = corrupt_plan(1000, 1, ~std::uint64_t{0} / 2, 100);
  FaultRunOptions opts;
  opts.max_wall_seconds = 0.05;
  const FaultReport report =
      run_fault_plan(Engine::kBatched, p, plan, 21, opts);
  EXPECT_FALSE(report.completed);
  EXPECT_GT(report.interactions, 0u);
  EXPECT_LT(report.interactions, plan.horizon);
}

// --- quantiles ------------------------------------------------------------

TEST(FaultReportQuantiles, NearestRank) {
  FaultReport report;
  report.recovery_times = {50, 10, 40, 20, 30};
  EXPECT_EQ(report.recovery_quantile(0.0), 10u);
  EXPECT_EQ(report.recovery_quantile(0.5), 30u);
  EXPECT_EQ(report.recovery_quantile(0.95), 50u);
  EXPECT_EQ(report.recovery_quantile(1.0), 50u);
  FaultReport empty;
  EXPECT_EQ(empty.recovery_quantile(0.5), 0u);
}

// --- tiny-n TV parity: counts runner vs the naive twin --------------------

double tv_distance(const std::map<std::uint64_t, int>& a,
                   const std::map<std::uint64_t, int>& b, int trials) {
  std::map<std::uint64_t, double> diff;
  for (const auto& [k, c] : a) diff[k] += static_cast<double>(c) / trials;
  for (const auto& [k, c] : b) diff[k] -= static_cast<double>(c) / trials;
  double tv = 0.0;
  for (const auto& [k, d] : diff) tv += std::abs(d);
  return tv / 2.0;
}

TEST(FaultPlanParity, EpidemicUnderCorruptionMatchesNaiveLaw) {
  // Epidemic with corrupt = "re-susceptible a random agent": the number of
  // infected agents at the horizon is a scalar whose law both runners must
  // share.  n = 6 keeps the counts engine in its tiny-block regime.
  const std::uint32_t n = 6;
  const int trials = 2500;
  const pp::Epidemic protocol{n};
  FaultPlan plan;
  plan.rules.push_back(
      {FaultAction::kCorrupt, FaultTiming::kPoisson, 7, 1});
  plan.horizon = 40;
  plan.probe_every = 10;

  FaultModel<pp::Epidemic> counts_model;
  counts_model.corrupt_state = [](util::Rng&) { return 0; };
  counts_model.safe = [n](const pp::CountsConfiguration<pp::Epidemic>& c) {
    return c.count_of(0) == 0 && c.population_size() == n;
  };
  NaiveFaultModel<pp::Epidemic> naive_model;
  naive_model.corrupt_state = [](util::Rng&) { return 0; };
  naive_model.safe = [n](const std::vector<int>& config) {
    if (config.size() != n) return false;
    for (const int s : config) {
      if (s == 0) return false;
    }
    return true;
  };

  std::map<std::uint64_t, int> pmf_counts, pmf_naive;
  for (int t = 0; t < trials; ++t) {
    std::vector<int> init(n, 0);
    init[0] = 1;
    pp::CountsConfiguration<pp::Epidemic> start(init);
    pp::CountsConfiguration<pp::Epidemic> final_counts(std::vector<int>{});
    run_fault_plan_counts(protocol, std::move(start), plan,
                          static_cast<std::uint64_t>(1000 + t), counts_model,
                          {}, &final_counts);
    ++pmf_counts[n - final_counts.count_of(0)];

    std::vector<int> naive_start(n, 0);
    naive_start[0] = 1;
    std::vector<int> final_naive;
    run_fault_plan_naive(protocol, std::move(naive_start), plan,
                         static_cast<std::uint64_t>(501000 + t), naive_model,
                         {}, &final_naive);
    std::uint64_t infected = 0;
    for (const int s : final_naive) infected += s == 1 ? 1 : 0;
    ++pmf_naive[infected];
  }
  const double tv = tv_distance(pmf_counts, pmf_naive, trials);
  EXPECT_LT(tv, 0.1) << "total variation distance " << tv;
}

TEST(FaultPlanParity, LooseLeaderUnderChurnMatchesNaiveLaw) {
  // LooseLeaderElection under join/leave churn: compare the law of the
  // leader count at the horizon.  Corruption promotes a random agent to a
  // fresh leader (timer full), the nastiest single-agent fault here.
  const std::uint32_t n = 6;
  const int trials = 2500;
  const baselines::LooseLeaderElection protocol(n);
  using State = baselines::LooseLeaderElection::State;
  FaultPlan plan;
  plan.rules.push_back(
      {FaultAction::kCorrupt, FaultTiming::kPeriodic, 11, 1});
  plan.rules.push_back({FaultAction::kLeave, FaultTiming::kPeriodic, 17, 1});
  plan.rules.push_back({FaultAction::kJoin, FaultTiming::kPeriodic, 17, 1});
  plan.horizon = 100;
  plan.probe_every = 25;

  const auto corrupt = [&](util::Rng&) {
    return State{true, protocol.timeout()};
  };
  const auto join = [&] { return protocol.initial_state(0); };
  FaultModel<baselines::LooseLeaderElection> counts_model;
  counts_model.corrupt_state = corrupt;
  counts_model.join_state = join;
  counts_model.safe =
      [](const pp::CountsConfiguration<baselines::LooseLeaderElection>& c) {
        return c.count_if(baselines::LooseLeaderElection::is_leader) == 1;
      };
  NaiveFaultModel<baselines::LooseLeaderElection> naive_model;
  naive_model.corrupt_state = corrupt;
  naive_model.join_state = join;
  naive_model.safe = [&](const std::vector<State>& config) {
    std::uint32_t leaders = 0;
    for (const State& s : config) leaders += s.leader ? 1 : 0;
    return leaders == 1;
  };

  std::map<std::uint64_t, int> pmf_counts, pmf_naive;
  for (int t = 0; t < trials; ++t) {
    std::vector<State> start(n);
    pp::CountsConfiguration<baselines::LooseLeaderElection> counts_start(
        start);
    pp::CountsConfiguration<baselines::LooseLeaderElection> final_counts(
        std::vector<State>{});
    run_fault_plan_counts(protocol, std::move(counts_start), plan,
                          static_cast<std::uint64_t>(3000 + t), counts_model,
                          {}, &final_counts);
    ++pmf_counts[final_counts.count_if(
        baselines::LooseLeaderElection::is_leader)];

    std::vector<State> final_naive;
    run_fault_plan_naive(protocol, start, plan,
                         static_cast<std::uint64_t>(703000 + t), naive_model,
                         {}, &final_naive);
    std::uint64_t leaders = 0;
    for (const State& s : final_naive) leaders += s.leader ? 1 : 0;
    ++pmf_naive[leaders];
  }
  const double tv = tv_distance(pmf_counts, pmf_naive, trials);
  EXPECT_LT(tv, 0.1) << "total variation distance " << tv;
}

// --- checkpoint / resume determinism --------------------------------------

std::string temp_checkpoint_path(const char* name) {
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  return ::testing::TempDir() + "fault_" + info->name() + "_" + name +
         ".ckpt";
}

TEST(FaultPlanCheckpoint, ResumeContinuesBitIdentically) {
  const Params p = Params::make(16, 8);
  const FaultPlan plan = corrupt_plan(2000, 2, 60000, 100);
  const std::uint64_t seed = 77;

  // Reference: one uninterrupted run WITH checkpointing (saving
  // canonicalizes, so only checkpointed runs compare bit-identically).
  const std::string ref_path = temp_checkpoint_path("ref");
  std::remove(ref_path.c_str());
  FaultRunOptions ref_opts;
  ref_opts.checkpoint_path = ref_path;
  ref_opts.checkpoint_every = 10000;
  const FaultReport full =
      run_fault_plan(Engine::kBatched, p, plan, seed, ref_opts);
  ASSERT_TRUE(full.completed);

  // Interrupted twin: run the first half against a SHORTER horizon (the
  // checkpoint grid is identical), then resume the full plan from its
  // last checkpoint.
  const std::string cut_path = temp_checkpoint_path("cut");
  std::remove(cut_path.c_str());
  FaultPlan half = plan;
  half.horizon = 30000;
  FaultRunOptions cut_opts;
  cut_opts.checkpoint_path = cut_path;
  cut_opts.checkpoint_every = 10000;
  const FaultReport first_half =
      run_fault_plan(Engine::kBatched, p, half, seed, cut_opts);
  ASSERT_TRUE(first_half.completed);
  const FaultReport resumed =
      run_fault_plan(Engine::kBatched, p, plan, seed, cut_opts);
  EXPECT_TRUE(resumed.resumed);
  EXPECT_TRUE(resumed.completed);

  // Counter-for-counter identical ends.
  EXPECT_EQ(full.probes, resumed.probes);
  EXPECT_EQ(full.probes_safe, resumed.probes_safe);
  EXPECT_EQ(full.agents_corrupted, resumed.agents_corrupted);
  EXPECT_EQ(full.recovery_times, resumed.recovery_times);
  EXPECT_EQ(full.final_population, resumed.final_population);
  EXPECT_EQ(full.registry_fingerprint, resumed.registry_fingerprint);
  std::remove(ref_path.c_str());
  std::remove(cut_path.c_str());
}

TEST(FaultPlanCheckpoint, ResumingAFinishedRunIsANoOp) {
  const Params p = Params::make(16, 8);
  const FaultPlan plan = corrupt_plan(2000, 2, 20000, 100);
  const std::string path = temp_checkpoint_path("done");
  std::remove(path.c_str());
  FaultRunOptions opts;
  opts.checkpoint_path = path;
  opts.checkpoint_every = 5000;
  const FaultReport first =
      run_fault_plan(Engine::kBatched, p, plan, 5, opts);
  const FaultReport again =
      run_fault_plan(Engine::kBatched, p, plan, 5, opts);
  EXPECT_TRUE(again.resumed);
  EXPECT_EQ(first.probes, again.probes);
  EXPECT_EQ(first.registry_fingerprint, again.registry_fingerprint);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ssle::analysis
