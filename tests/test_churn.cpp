#include "analysis/churn.hpp"

#include <gtest/gtest.h>

#include "analysis/measure.hpp"

namespace ssle::analysis {
namespace {

using core::Params;

TEST(Churn, NoChurnIsFullyAvailable) {
  const Params p = Params::make(16, 8);
  ChurnSpec spec;
  spec.burst_period = 0;
  spec.horizon = 50000;
  spec.probe_every = 16;
  const ChurnReport report = run_churn(p, spec, 1);
  EXPECT_EQ(report.bursts, 0u);
  EXPECT_DOUBLE_EQ(report.leader_availability(), 1.0);
  EXPECT_DOUBLE_EQ(report.safe_availability(), 1.0);
}

TEST(Churn, RareFaultsRecoverToHighAvailability) {
  const Params p = Params::make(16, 8);
  ChurnSpec spec;
  spec.burst_period = 4 * default_budget(p) / 20;
  spec.burst_size = 1;
  spec.horizon = 12 * spec.burst_period;
  spec.probe_every = 16;
  const ChurnReport report = run_churn(p, spec, 2);
  EXPECT_GT(report.bursts, 10u);
  EXPECT_GT(report.leader_availability(), 0.60);
}

TEST(Churn, HeavyChurnDegradesButNeverCrashes) {
  const Params p = Params::make(16, 4);
  ChurnSpec spec;
  spec.burst_period = 2000;
  spec.burst_size = 4;
  spec.horizon = 400000;
  spec.probe_every = 16;
  const ChurnReport report = run_churn(p, spec, 3);
  EXPECT_GT(report.bursts, 100u);
  // Under heavy churn availability drops, but the run completes and some
  // probes still observe a unique leader.
  EXPECT_LT(report.leader_availability(), 1.0);
  EXPECT_GT(report.probes, 0u);
}

TEST(Churn, ReportAccounting) {
  const Params p = Params::make(16, 8);
  ChurnSpec spec;
  spec.burst_period = 1000;
  spec.burst_size = 3;
  spec.horizon = 10000;
  spec.probe_every = 100;
  const ChurnReport report = run_churn(p, spec, 4);
  EXPECT_EQ(report.bursts, 10u);
  EXPECT_EQ(report.agents_corrupted, 30u);
  EXPECT_EQ(report.probes, 100u);
}

TEST(Churn, DeterministicPerSeed) {
  const Params p = Params::make(16, 8);
  ChurnSpec spec;
  spec.burst_period = 5000;
  spec.burst_size = 2;
  spec.horizon = 100000;
  spec.probe_every = 16;
  const ChurnReport a = run_churn(p, spec, 9);
  const ChurnReport b = run_churn(p, spec, 9);
  EXPECT_EQ(a.probes_with_unique_leader, b.probes_with_unique_leader);
  EXPECT_EQ(a.probes_safe, b.probes_safe);
}

// --- S1: unrunnable specs die loudly, naming the field --------------------

TEST(ChurnDeath, ZeroHorizonExitsNamingField) {
  const Params p = Params::make(16, 8);
  ChurnSpec spec;
  spec.probe_every = 16;
  EXPECT_EXIT(run_churn(p, spec, 1), ::testing::ExitedWithCode(2),
              "field: horizon");
}

TEST(ChurnDeath, ZeroProbeEveryExitsNamingField) {
  const Params p = Params::make(16, 8);
  ChurnSpec spec;
  spec.horizon = 1000;
  spec.probe_every = 0;
  EXPECT_EXIT(run_churn(p, spec, 1), ::testing::ExitedWithCode(2),
              "field: probe_every");
}

TEST(ChurnDeath, BurstLargerThanPopulationExitsNamingField) {
  const Params p = Params::make(16, 8);
  ChurnSpec spec;
  spec.horizon = 1000;
  spec.probe_every = 16;
  spec.burst_period = 100;
  spec.burst_size = 17;  // > n
  EXPECT_EXIT(run_churn(p, spec, 1), ::testing::ExitedWithCode(2),
              "field: burst_size");
}

}  // namespace
}  // namespace ssle::analysis
