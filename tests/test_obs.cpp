// Observability layer: engine metrics reconciliation, counts-native
// census/safety probes, the run journal, and the report envelope.
//
// The counter invariants documented in obs/metrics.hpp are pinned here on
// every engine:
//   * interactions_iterated + interactions_leapt == interactions;
//   * community_pair_draws == interactions on the community path;
//   * delta_cache_misses == delta_cache_entries while clears == 0.
// The counts-native census/safety overloads must agree field-for-field
// with the agent-vector functions applied to to_states() of the same
// registry — the property that makes O(q) phase probes trustworthy.
#include "obs/journal.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/census.hpp"
#include "analysis/measure.hpp"
#include "analysis/trace.hpp"
#include "core/adversary.hpp"
#include "core/elect_leader.hpp"
#include "core/params.hpp"
#include "core/safety.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "pp/batched_simulator.hpp"
#include "pp/community_counts.hpp"
#include "pp/epidemic.hpp"
#include "pp/graph.hpp"
#include "pp/leaping_simulator.hpp"
#include "pp/sharded_simulator.hpp"
#include "pp/simulator.hpp"
#include "util/rng.hpp"

namespace ssle {
namespace {

// ---------------------------------------------------------------------------
// EngineMetrics reconciliation, one engine at a time.
// ---------------------------------------------------------------------------

TEST(EngineMetrics, NaiveCountersReconcile) {
  pp::Epidemic proto{64};
  pp::Simulator<pp::Epidemic> sim(proto, 3);
  sim.step(500);
  const obs::EngineMetrics m = sim.metrics();
  EXPECT_STREQ(m.engine, "naive");
  EXPECT_EQ(m.interactions, 500u);
  EXPECT_EQ(m.interactions_iterated + m.interactions_leapt, m.interactions);
  EXPECT_EQ(m.interactions_leapt, 0u);
  // The naive engine has no registry and no block machinery.
  EXPECT_EQ(m.registry_live_states, 0u);
  EXPECT_EQ(m.blocks_dense + m.blocks_fenwick, 0u);
}

TEST(EngineMetrics, BatchedCountersReconcile) {
  pp::Epidemic proto{256};
  pp::BatchedSimulator<pp::Epidemic> sim(proto, 5);
  sim.step(4000);
  const obs::EngineMetrics m = sim.metrics();
  EXPECT_STREQ(m.engine, "batched");
  EXPECT_EQ(m.interactions, 4000u);
  EXPECT_EQ(m.interactions_iterated + m.interactions_leapt, m.interactions);
  EXPECT_EQ(m.interactions_leapt, 0u);
  EXPECT_GT(m.blocks_dense + m.blocks_fenwick, 0u);
  // Registry: live ⊆ allocated ⊆ id space; the epidemic keeps q ≤ 2.
  EXPECT_GE(m.registry_live_states, 1u);
  EXPECT_LE(m.registry_live_states, m.registry_allocated_states);
  EXPECT_LE(m.registry_allocated_states, m.registry_capacity);
}

TEST(EngineMetrics, CommunityPairDrawsEqualInteractions) {
  pp::Epidemic proto{32};
  auto blocked = pp::BlockedTopology::islands(32, 4, 1.0, 0.1);
  pp::BatchedSimulator<pp::Epidemic,
                       pp::CommunityCountsConfiguration<pp::Epidemic>>
      sim(proto,
          pp::CommunityCountsConfiguration<pp::Epidemic>(proto,
                                                         std::move(blocked)),
          7);
  sim.step(600);
  const obs::EngineMetrics m = sim.metrics();
  EXPECT_STREQ(m.engine, "batched-community");
  EXPECT_EQ(m.interactions, 600u);
  EXPECT_EQ(m.community_pair_draws, m.interactions);
  EXPECT_EQ(m.interactions_iterated + m.interactions_leapt, m.interactions);
}

TEST(EngineMetrics, LeapingCountersReconcileUnderSplits) {
  // A tiny event cap forces the split path, so the reconciliation covers
  // leapt runs, iterated events, and recursive window splits at once.
  pp::Epidemic proto{512};
  pp::LeapingSimulator<pp::Epidemic> sim(proto, 11, /*event_cap=*/2);
  const auto result = sim.run_until(
      [](const pp::CountsConfiguration<pp::Epidemic>& c, std::uint64_t) {
        return c.count_of(0) == 0;
      },
      1u << 24);
  ASSERT_TRUE(result.converged);
  const obs::EngineMetrics m = sim.metrics();
  EXPECT_STREQ(m.engine, "leaping");
  EXPECT_EQ(m.interactions_iterated + m.interactions_leapt, m.interactions);
  EXPECT_GT(m.interactions_leapt, 0u);
  EXPECT_GT(m.leap_windows, 0u);
  EXPECT_GE(m.split_depth_max, 1u);
}

TEST(EngineMetrics, DeltaCacheCountersReconcile) {
  pp::Epidemic proto{64};
  pp::BatchedSimulator<pp::Epidemic> sim(proto, 7, pp::BlockSampling::kAuto,
                                         pp::DeltaMemo::kEnabled);
  sim.step(2000);
  const obs::EngineMetrics m = sim.metrics();
  EXPECT_GT(m.delta_cache_hits + m.delta_cache_misses, 0u);
  EXPECT_EQ(m.delta_cache_entries, sim.delta_cache_size());
  // Every miss inserts one entry; equality holds until an invalidation.
  ASSERT_EQ(m.delta_cache_clears, 0u);
  EXPECT_EQ(m.delta_cache_entries, m.delta_cache_misses);
  EXPECT_GE(m.delta_cache_misses, m.delta_cache_entries);
}

TEST(EngineMetrics, ToJsonCarriesEngineAndCounters) {
  pp::Epidemic proto{16};
  pp::BatchedSimulator<pp::Epidemic> sim(proto, 1);
  sim.step(64);
  const std::string line = sim.metrics().to_json().dump_line();
  EXPECT_NE(line.find("\"engine\":\"batched\""), std::string::npos);
  EXPECT_NE(line.find("\"interactions\":64"), std::string::npos);
}

TEST(EngineMetrics, ToJsonCarriesFlatAndShardCounters) {
  pp::Epidemic proto{64};
  pp::ShardedSimulator<pp::Epidemic> sim(proto, 1, /*shard_count=*/2);
  sim.step(500);
  const std::string line = sim.metrics().to_json().dump_line();
  EXPECT_NE(line.find("\"engine\":\"sharded\""), std::string::npos);
  EXPECT_NE(line.find("\"shards\":2"), std::string::npos);
  EXPECT_NE(line.find("\"blocks_flat\":"), std::string::npos);
  EXPECT_NE(line.find("\"flat_scan_draws\":"), std::string::npos);
  EXPECT_NE(line.find("\"intra_shard_interactions\":"), std::string::npos);
  EXPECT_NE(line.find("\"cross_shard_interactions\":"), std::string::npos);
}

TEST(EngineMetrics, MergeSumsCountersAndTakesTheDepthMax) {
  obs::EngineMetrics a;
  a.engine = "batched";
  a.interactions = 100;
  a.blocks_flat = 3;
  a.flat_scan_draws = 40;
  a.delta_cache_hits = 7;
  a.split_depth_max = 2;
  obs::EngineMetrics b;
  b.engine = "leaping";
  b.interactions = 11;
  b.blocks_flat = 1;
  b.intra_shard_interactions = 5;
  b.split_depth_max = 6;

  obs::EngineMetrics m = a;
  m.merge(b);
  EXPECT_STREQ(m.engine, "batched");  // lhs label wins when set
  EXPECT_EQ(m.interactions, 111u);
  EXPECT_EQ(m.blocks_flat, 4u);
  EXPECT_EQ(m.flat_scan_draws, 40u);
  EXPECT_EQ(m.delta_cache_hits, 7u);
  EXPECT_EQ(m.intra_shard_interactions, 5u);
  EXPECT_EQ(m.split_depth_max, 6u);  // max, not sum

  // An unlabeled accumulator adopts the first labeled operand — the
  // pattern a per-shard reduction uses.
  obs::EngineMetrics acc;
  acc += a;
  acc += b;
  EXPECT_STREQ(acc.engine, "batched");
  EXPECT_EQ(acc.interactions, 111u);

  const obs::EngineMetrics sum = a + b;
  EXPECT_EQ(sum.interactions, 111u);
  EXPECT_EQ(sum.split_depth_max, 6u);
}

TEST(EngineMetrics, ShardedCountersReconcile) {
  // The engine-level invariant documented in obs/metrics.hpp:
  //   intra + cross + collisions == interactions (n ≥ 2).
  pp::Epidemic proto{128};
  pp::ShardedSimulator<pp::Epidemic> sim(proto, 13, /*shard_count=*/4);
  sim.step(3000);
  const obs::EngineMetrics m = sim.metrics();
  EXPECT_STREQ(m.engine, "sharded");
  EXPECT_EQ(m.shards, 4u);
  EXPECT_EQ(m.interactions, 3000u);
  EXPECT_EQ(m.intra_shard_interactions + m.cross_shard_interactions +
                m.collision_resolutions,
            m.interactions);
  EXPECT_EQ(m.interactions_iterated + m.interactions_leapt, m.interactions);
}

// ---------------------------------------------------------------------------
// Counts-native census == agent-vector census (uniform + community).
// ---------------------------------------------------------------------------

void expect_census_eq(const analysis::Census& a, const analysis::Census& b) {
  EXPECT_EQ(a.resetters, b.resetters);
  EXPECT_EQ(a.rankers, b.rankers);
  EXPECT_EQ(a.verifiers, b.verifiers);
  EXPECT_EQ(a.leaders, b.leaders);
  EXPECT_EQ(a.errors, b.errors);
  EXPECT_EQ(a.total_messages, b.total_messages);
  EXPECT_EQ(a.approx_bytes, b.approx_bytes);
  EXPECT_EQ(a.distinct_generations, b.distinct_generations);
  EXPECT_EQ(a.max_rank_multiplicity, b.max_rank_multiplicity);
}

TEST(CountsCensus, AgreesWithAgentVectorOnEveryCorruptionClass) {
  const core::Params params = core::Params::make(24, 6);
  std::uint64_t seed = 100;
  for (const auto corruption : core::all_corruptions()) {
    SCOPED_TRACE(core::corruption_name(corruption));
    util::Rng rng(seed++);
    const auto config =
        core::make_adversarial_config(params, corruption, rng);
    const pp::CountsConfiguration<core::ElectLeader> counts(config);
    expect_census_eq(analysis::take_census(params, counts),
                     analysis::take_census(params, counts.to_states()));
  }
}

TEST(CountsCensus, CommunityAgreesWithAgentVector) {
  const core::Params params = core::Params::make(20, 5);
  std::uint64_t seed = 300;
  for (const auto corruption : core::all_corruptions()) {
    SCOPED_TRACE(core::corruption_name(corruption));
    util::Rng rng(seed++);
    const auto config =
        core::make_adversarial_config(params, corruption, rng);
    const pp::CommunityCountsConfiguration<core::ElectLeader> counts(
        config, pp::BlockedTopology::islands(20, 4, 1.0, 0.2));
    expect_census_eq(analysis::take_census(params, counts),
                     analysis::take_census(params, counts.to_states()));
  }
}

// ---------------------------------------------------------------------------
// Counts-native safety == agent-vector safety (community path).
// ---------------------------------------------------------------------------

TEST(CountsSafety, CommunityAgreesWithAgentVector) {
  const core::Params params = core::Params::make(16, 8);
  const auto blocked = [] {
    return pp::BlockedTopology::islands(16, 2, 1.0, 0.5);
  };

  // A safe multiset stays safe through the community lift, even though
  // the lift splits states across communities.
  const pp::CommunityCountsConfiguration<core::ElectLeader> safe(
      core::make_safe_config(params), blocked());
  EXPECT_TRUE(core::is_safe_configuration(params, safe));
  EXPECT_TRUE(core::is_safe_configuration(params, safe.to_states()));

  std::uint64_t seed = 500;
  for (const auto corruption : core::all_corruptions()) {
    SCOPED_TRACE(core::corruption_name(corruption));
    util::Rng rng(seed++);
    const pp::CommunityCountsConfiguration<core::ElectLeader> counts(
        core::make_adversarial_config(params, corruption, rng), blocked());
    EXPECT_EQ(core::is_safe_configuration(params, counts),
              core::is_safe_configuration(params, counts.to_states()));
  }
}

// ---------------------------------------------------------------------------
// Trace: counts-native records match agent-vector records.
// ---------------------------------------------------------------------------

TEST(Trace, CountsNativeRecordMatchesAgentVectorRecord) {
  const core::Params params = core::Params::make(24, 6);
  util::Rng rng(41);
  const auto config = core::make_adversarial_config(
      params, core::all_corruptions().front(), rng);
  const pp::CountsConfiguration<core::ElectLeader> counts(config);

  analysis::Trace native(params);
  analysis::Trace expanded(params);
  native.record(0, counts);
  expanded.record(0, counts.to_states());

  ASSERT_EQ(native.points().size(), 1u);
  ASSERT_EQ(expanded.points().size(), 1u);
  EXPECT_EQ(native.points()[0].interactions, 0u);
  expect_census_eq(native.points()[0].census, expanded.points()[0].census);
  EXPECT_EQ(native.first_safe().has_value(),
            expanded.first_safe().has_value());
}

// ---------------------------------------------------------------------------
// Journal: cadence gates and line-by-line JSONL validity.
// ---------------------------------------------------------------------------

// Minimal JSON acceptor (objects, arrays, strings, numbers, literals) —
// util::Json is write-only by design, so the "every line parses" claim is
// checked against the grammar directly.
struct JsonAcceptor {
  const std::string& s;
  std::size_t i = 0;

  void skip_ws() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
  }
  bool eat(char c) {
    skip_ws();
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    return false;
  }
  bool string() {
    skip_ws();
    if (i >= s.size() || s[i] != '"') return false;
    for (++i; i < s.size(); ++i) {
      if (s[i] == '\\') {
        ++i;
      } else if (s[i] == '"') {
        ++i;
        return true;
      }
    }
    return false;
  }
  bool number() {
    skip_ws();
    const std::size_t start = i;
    if (i < s.size() && s[i] == '-') ++i;
    while (i < s.size() && (std::isdigit(static_cast<unsigned char>(s[i])) ||
                            s[i] == '.' || s[i] == 'e' || s[i] == 'E' ||
                            s[i] == '+' || s[i] == '-')) {
      ++i;
    }
    return i > start && std::isdigit(static_cast<unsigned char>(s[i - 1]));
  }
  bool literal(const char* word) {
    skip_ws();
    const std::size_t len = std::string(word).size();
    if (s.compare(i, len, word) != 0) return false;
    i += len;
    return true;
  }
  bool value() {
    skip_ws();
    if (i >= s.size()) return false;
    switch (s[i]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    if (!eat('{')) return false;
    if (eat('}')) return true;
    do {
      if (!string() || !eat(':') || !value()) return false;
    } while (eat(','));
    return eat('}');
  }
  bool array() {
    if (!eat('[')) return false;
    if (eat(']')) return true;
    do {
      if (!value()) return false;
    } while (eat(','));
    return eat(']');
  }
  bool document() {
    if (!value()) return false;
    skip_ws();
    return i == s.size();
  }
};

bool parses_as_json(const std::string& line) {
  JsonAcceptor acceptor{line};
  return acceptor.document();
}

TEST(Journal, InteractionCadenceGatesHeartbeats) {
  const std::string path = "test_obs_journal_cadence.jsonl";
  obs::Journal::Options opts;
  opts.path = path;
  opts.every_interactions = 100;
  opts.budget = 1000;
  opts.run = "test";
  obs::Journal journal(opts);

  obs::EngineMetrics m;
  m.engine = "naive";
  journal.tick(0, m);    // first tick always emits
  journal.tick(50, m);   // below the interaction gate: silent
  journal.tick(150, m);  // 150 ≥ 0 + 100: emits
  EXPECT_EQ(journal.events_emitted(), 2u);

  auto payload = util::Json::object();
  payload.set("note", "boundary");
  journal.event("marker", std::move(payload));  // events are unconditional
  EXPECT_EQ(journal.events_emitted(), 3u);

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    SCOPED_TRACE(line);
    ++lines;
    EXPECT_TRUE(parses_as_json(line));
    EXPECT_NE(line.find("\"v\":1"), std::string::npos);
    EXPECT_NE(line.find("\"run\":\"test\""), std::string::npos);
  }
  EXPECT_EQ(lines, 3u);
  in.close();
  std::remove(path.c_str());
}

TEST(Journal, HeartbeatCarriesProgressAndMetrics) {
  const std::string path = "test_obs_journal_fields.jsonl";
  obs::Journal::Options opts;
  opts.path = path;
  opts.budget = 500;
  obs::Journal journal(opts);

  pp::Epidemic proto{32};
  pp::BatchedSimulator<pp::Epidemic> sim(proto, 13);
  sim.step(250);
  journal.tick(sim.interactions(), sim.metrics());

  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_TRUE(parses_as_json(line));
  EXPECT_NE(line.find("\"kind\":\"heartbeat\""), std::string::npos);
  EXPECT_NE(line.find("\"interactions\":250"), std::string::npos);
  EXPECT_NE(line.find("\"budget\":500"), std::string::npos);
  EXPECT_NE(line.find("\"eta_s\":"), std::string::npos);
  EXPECT_NE(line.find("\"peak_rss_kb\":"), std::string::npos);
  EXPECT_NE(line.find("\"metrics\":{\"engine\":\"batched\""),
            std::string::npos);
  in.close();
  std::remove(path.c_str());
}

TEST(Journal, PeakRssIsPositiveOnUnix) {
#if defined(__unix__) || defined(__APPLE__)
  EXPECT_GT(obs::peak_rss_kb(), 0u);
#else
  GTEST_SKIP() << "no getrusage on this platform";
#endif
}

// ---------------------------------------------------------------------------
// Report envelope.
// ---------------------------------------------------------------------------

TEST(Report, EnvelopeCarriesVersionBenchAndSections) {
  obs::Report report("unit_bench", 8);
  report.set("n", std::uint64_t{16});
  auto rows = util::Json::array();
  rows.push(util::Json(1.5));
  report.section("rows", std::move(rows));

  const std::string line = report.to_json().dump_line();
  EXPECT_TRUE(parses_as_json(line));
  EXPECT_NE(line.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(line.find("\"bench\":\"unit_bench\""), std::string::npos);
  EXPECT_NE(line.find("\"pr\":8"), std::string::npos);
  EXPECT_NE(line.find("\"n\":16"), std::string::npos);
  EXPECT_NE(line.find("\"sections\":{\"rows\":[1.5]}"), std::string::npos);
}

// ---------------------------------------------------------------------------
// ProbeOptions through stabilize: trace + journal + final metrics.
// ---------------------------------------------------------------------------

TEST(ProbeOptions, StabilizeFillsTraceJournalAndMetrics) {
  const core::Params params = core::Params::make(16, 4);
  analysis::Trace trace(params);
  const std::string path = "test_obs_probe_journal.jsonl";
  obs::Journal::Options opts;
  opts.path = path;
  obs::Journal journal(opts);

  analysis::ProbeOptions probes;
  probes.trace = &trace;
  probes.journal = &journal;
  probes.probe_every = params.n;

  const auto res = analysis::stabilize(
      analysis::Engine::kBatched, analysis::StartKind::kAdversarial, params,
      core::all_corruptions().front(), 9,
      8 * analysis::default_budget(params), probes);

  ASSERT_TRUE(res.converged);
  EXPECT_STREQ(res.metrics.engine, "batched");
  EXPECT_EQ(res.metrics.interactions, res.interactions);
  ASSERT_FALSE(trace.points().empty());
  // The probe grid saw the run end safe.
  EXPECT_TRUE(trace.first_safe().has_value());
  EXPECT_GE(journal.events_emitted(), 1u);

  std::ifstream in(path);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_TRUE(parses_as_json(line)) << line;
  }
  EXPECT_EQ(lines, journal.events_emitted());
  in.close();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ssle
