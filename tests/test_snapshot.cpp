#include "core/snapshot.hpp"

#include <gtest/gtest.h>

#include "core/adversary.hpp"
#include "core/elect_leader.hpp"

namespace ssle::core {
namespace {

TEST(Snapshot, RoundTripsSafeConfig) {
  const Params p = Params::make(16, 8);
  const auto config = make_safe_config(p);
  const std::string text = snapshot_write(p, config);
  const auto parsed = snapshot_read(p, text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, config);
}

TEST(Snapshot, RoundTripsCleanStart) {
  const Params p = Params::make(8, 2);
  ElectLeader protocol(p);
  std::vector<Agent> config;
  for (std::uint32_t i = 0; i < p.n; ++i) {
    config.push_back(protocol.initial_state(i));
  }
  const auto parsed = snapshot_read(p, snapshot_write(p, config));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, config);
}

class SnapshotCorruptions : public ::testing::TestWithParam<Corruption> {};

TEST_P(SnapshotCorruptions, RoundTripsEveryCorruptionClass) {
  const Params p = Params::make(12, 4);
  util::Rng rng(5);
  const auto config = make_adversarial_config(p, GetParam(), rng);
  const auto parsed = snapshot_read(p, snapshot_write(p, config));
  ASSERT_TRUE(parsed.has_value()) << corruption_name(GetParam());
  EXPECT_EQ(*parsed, config) << corruption_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    All, SnapshotCorruptions, ::testing::ValuesIn(all_corruptions()),
    [](const ::testing::TestParamInfo<Corruption>& info) {
      return corruption_name(info.param);
    });

TEST(Snapshot, RejectsWrongHeader) {
  const Params p = Params::make(8, 2);
  EXPECT_FALSE(snapshot_read(p, "garbage").has_value());
  EXPECT_FALSE(snapshot_read(p, "").has_value());
}

TEST(Snapshot, RejectsMismatchedParameters) {
  const Params p = Params::make(16, 8);
  const auto text = snapshot_write(p, make_safe_config(p));
  EXPECT_FALSE(snapshot_read(Params::make(16, 4), text).has_value());
  EXPECT_FALSE(snapshot_read(Params::make(8, 4), text).has_value());
}

TEST(Snapshot, RejectsTruncatedInput) {
  const Params p = Params::make(8, 4);
  const auto text = snapshot_write(p, make_safe_config(p));
  for (const double frac : {0.3, 0.7, 0.95}) {
    const auto cut = text.substr(0, static_cast<std::size_t>(
                                        text.size() * frac));
    EXPECT_FALSE(snapshot_read(p, cut).has_value()) << frac;
  }
}

TEST(Snapshot, RejectsCorruptedField) {
  const Params p = Params::make(8, 4);
  auto text = snapshot_write(p, make_safe_config(p));
  const auto pos = text.find("role=");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 6, "role=9");  // invalid role value
  EXPECT_FALSE(snapshot_read(p, text).has_value());
}

// Replaces the value of the first `key=` occurrence with `value`.
std::string with_field(std::string text, const std::string& key,
                       const std::string& value) {
  const auto pos = text.find(key);
  EXPECT_NE(pos, std::string::npos) << key;
  const auto begin = pos + key.size();
  auto end = begin;
  while (end < text.size() && text[end] != ' ' && text[end] != '\n') ++end;
  text.replace(begin, end - begin, value);
  return text;
}

TEST(Snapshot, RejectsDuplicatedAgentStanza) {
  const Params p = Params::make(8, 4);
  const auto config = make_safe_config(p);
  // A trailing duplicated stanza claims more agents than the header's n:
  // the parse must fail rather than silently drop or absorb it.
  const std::string text =
      snapshot_write(p, config) + snapshot_write_agent(config.front());
  EXPECT_FALSE(snapshot_read(p, text).has_value());
}

TEST(Snapshot, RejectsCountOverflowAndNegativeFields) {
  const Params p = Params::make(8, 4);
  const std::string text = snapshot_write(p, make_safe_config(p));
  // 2^32: one past the uint32 fields' range — must not wrap.
  EXPECT_FALSE(
      snapshot_read(p, with_field(text, " rank=", "4294967296")).has_value());
  // Negative values must not wrap through unsigned parsing either.
  EXPECT_FALSE(
      snapshot_read(p, with_field(text, " rank=", "-1")).has_value());
  // Absurd container sizes are rejected before any allocation.
  EXPECT_FALSE(
      snapshot_read(p, with_field(text, " chan_n=", "4000000000"))
          .has_value());
  EXPECT_FALSE(
      snapshot_read(p, with_field(text, " buckets=", "4000000000"))
          .has_value());
}

TEST(Snapshot, AgentStanzaCodecRoundTrips) {
  const Params p = Params::make(12, 4);
  util::Rng rng(17);
  for (const Corruption c : all_corruptions()) {
    for (const Agent& a : make_adversarial_config(p, c, rng)) {
      const std::string stanza = snapshot_write_agent(a);
      const auto back = snapshot_read_agent(stanza);
      ASSERT_TRUE(back.has_value()) << corruption_name(c);
      EXPECT_EQ(*back, a) << corruption_name(c);
      // Strictness: trailing garbage and truncation both reject.
      EXPECT_FALSE(snapshot_read_agent(stanza + " x").has_value());
      EXPECT_FALSE(
          snapshot_read_agent(stanza.substr(0, stanza.size() / 2)).has_value());
    }
  }
}

TEST(Snapshot, RoundTripPropertyOverRandomConfigs) {
  // Property sweep: every corruption class × several seeds drives the
  // writer through randomized field values (identifiers, channels, message
  // buckets); read(write(config)) must be the identity on all of them.
  const Params p = Params::make(10, 4);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    util::Rng rng(seed);
    for (const Corruption c : all_corruptions()) {
      const auto config = make_adversarial_config(p, c, rng);
      const auto parsed = snapshot_read(p, snapshot_write(p, config));
      ASSERT_TRUE(parsed.has_value())
          << corruption_name(c) << " seed " << seed;
      EXPECT_EQ(*parsed, config) << corruption_name(c) << " seed " << seed;
    }
  }
}

}  // namespace
}  // namespace ssle::core
