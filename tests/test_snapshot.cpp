#include "core/snapshot.hpp"

#include <gtest/gtest.h>

#include "core/adversary.hpp"
#include "core/elect_leader.hpp"

namespace ssle::core {
namespace {

TEST(Snapshot, RoundTripsSafeConfig) {
  const Params p = Params::make(16, 8);
  const auto config = make_safe_config(p);
  const std::string text = snapshot_write(p, config);
  const auto parsed = snapshot_read(p, text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, config);
}

TEST(Snapshot, RoundTripsCleanStart) {
  const Params p = Params::make(8, 2);
  ElectLeader protocol(p);
  std::vector<Agent> config;
  for (std::uint32_t i = 0; i < p.n; ++i) {
    config.push_back(protocol.initial_state(i));
  }
  const auto parsed = snapshot_read(p, snapshot_write(p, config));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, config);
}

class SnapshotCorruptions : public ::testing::TestWithParam<Corruption> {};

TEST_P(SnapshotCorruptions, RoundTripsEveryCorruptionClass) {
  const Params p = Params::make(12, 4);
  util::Rng rng(5);
  const auto config = make_adversarial_config(p, GetParam(), rng);
  const auto parsed = snapshot_read(p, snapshot_write(p, config));
  ASSERT_TRUE(parsed.has_value()) << corruption_name(GetParam());
  EXPECT_EQ(*parsed, config) << corruption_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    All, SnapshotCorruptions, ::testing::ValuesIn(all_corruptions()),
    [](const ::testing::TestParamInfo<Corruption>& info) {
      return corruption_name(info.param);
    });

TEST(Snapshot, RejectsWrongHeader) {
  const Params p = Params::make(8, 2);
  EXPECT_FALSE(snapshot_read(p, "garbage").has_value());
  EXPECT_FALSE(snapshot_read(p, "").has_value());
}

TEST(Snapshot, RejectsMismatchedParameters) {
  const Params p = Params::make(16, 8);
  const auto text = snapshot_write(p, make_safe_config(p));
  EXPECT_FALSE(snapshot_read(Params::make(16, 4), text).has_value());
  EXPECT_FALSE(snapshot_read(Params::make(8, 4), text).has_value());
}

TEST(Snapshot, RejectsTruncatedInput) {
  const Params p = Params::make(8, 4);
  const auto text = snapshot_write(p, make_safe_config(p));
  for (const double frac : {0.3, 0.7, 0.95}) {
    const auto cut = text.substr(0, static_cast<std::size_t>(
                                        text.size() * frac));
    EXPECT_FALSE(snapshot_read(p, cut).has_value()) << frac;
  }
}

TEST(Snapshot, RejectsCorruptedField) {
  const Params p = Params::make(8, 4);
  auto text = snapshot_write(p, make_safe_config(p));
  const auto pos = text.find("role=");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 6, "role=9");  // invalid role value
  EXPECT_FALSE(snapshot_read(p, text).has_value());
}

}  // namespace
}  // namespace ssle::core
