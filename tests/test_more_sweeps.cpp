// Additional parameterized sweeps: Light multiplicity soundness, r = 1
// degenerate recovery, odd population sizes end-to-end, and long-horizon
// safety soak tests.
#include <gtest/gtest.h>

#include <tuple>

#include "analysis/measure.hpp"
#include "core/adversary.hpp"
#include "core/detect_collision.hpp"
#include "core/elect_leader.hpp"
#include "core/safety.hpp"
#include "pp/scheduler.hpp"
#include "pp/simulator.hpp"

namespace ssle::core {
namespace {

// --- Light-multiplicity soundness (mirror of DcSoundness for kLight) -------

class LightSoundness
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {
};

TEST_P(LightSoundness, NoFalsePositive) {
  const auto [n, r] = GetParam();
  const Params p = Params::make(n, r, MessageMultiplicity::kLight);
  std::vector<std::uint32_t> ranks(n);
  std::vector<DcState> states;
  for (std::uint32_t i = 0; i < n; ++i) {
    ranks[i] = i + 1;
    states.push_back(dc_initial_state(p, ranks[i]));
  }
  pp::UniformScheduler sched(n, 321);
  util::Rng rng(322);
  for (int t = 0; t < 150000; ++t) {
    const auto [a, b] = sched.next();
    detect_collision(p, ranks[a], states[a], ranks[b], states[b], rng);
  }
  for (const auto& s : states) EXPECT_FALSE(s.error);
}

INSTANTIATE_TEST_SUITE_P(Sweep, LightSoundness,
                         ::testing::Values(std::tuple{16u, 8u},
                                           std::tuple{32u, 16u},
                                           std::tuple{64u, 32u},
                                           std::tuple{64u, 8u}));

// --- Odd population sizes end-to-end ---------------------------------------

class OddSizes : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(OddSizes, CleanStartStabilizes) {
  const std::uint32_t n = GetParam();
  const Params p = Params::make(n, std::max(1u, n / 3));
  const auto res = analysis::stabilize(analysis::Engine::kNaive, p, 11,
                                       analysis::default_budget(p));
  ASSERT_TRUE(res.converged) << "n=" << n;
  EXPECT_EQ(res.leaders, 1u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, OddSizes,
                         ::testing::Values(9u, 13u, 21u, 27u, 35u, 49u));

// --- r = 1 (degenerate groups) recovery ------------------------------------

TEST(DegenerateR, RecoveryFromDuplicatesWithSingletonGroups) {
  // With r = 1 every group has one rank; detection falls back to direct
  // same-rank meetings (Θ(n²·log n) budget needed).
  const Params p = Params::make(12, 1);
  const auto res = analysis::stabilize(
      analysis::Engine::kNaive, analysis::StartKind::kAdversarial, p,
      Corruption::kDuplicateRanks, 17, 20 * analysis::default_budget(p));
  ASSERT_TRUE(res.converged);
  EXPECT_EQ(res.leaders, 1u);
}

TEST(DegenerateR, CleanStartAllRegimeBoundaries) {
  for (std::uint32_t n : {8u, 12u}) {
    for (std::uint32_t r : {1u, n / 2}) {
      const Params p = Params::make(n, r);
      const auto res =
          analysis::stabilize(analysis::Engine::kNaive, p, 19,
                              analysis::default_budget(p));
      ASSERT_TRUE(res.converged) << "n=" << n << " r=" << r;
    }
  }
}

// --- Long-horizon safety soak ----------------------------------------------

TEST(Soak, SafeConfigurationSurvivesMillionInteractions) {
  const Params p = Params::make(16, 8);
  ElectLeader protocol(p);
  pp::Population<ElectLeader> pop(make_safe_config(p));
  pp::Simulator<ElectLeader> sim(protocol, std::move(pop), 23);
  sim.step(1'000'000);
  EXPECT_TRUE(is_safe_configuration(p, sim.population().states()));
  EXPECT_EQ(leader_count(sim.population().states()), 1u);
}

TEST(Soak, StabilizedCleanRunStaysStable) {
  const Params p = Params::make(24, 12);
  ElectLeader protocol(p);
  pp::Simulator<ElectLeader> sim(protocol, 29);
  const auto res = sim.run_until(
      [&](const pp::Population<ElectLeader>& c, std::uint64_t) {
        return is_safe_configuration(p, c.states());
      },
      analysis::default_budget(p), p.n);
  ASSERT_TRUE(res.converged);
  const std::uint32_t leader_rank_holder = [&] {
    for (std::uint32_t i = 0; i < p.n; ++i) {
      if (ElectLeader::is_leader(sim.population()[i])) return i;
    }
    return ~0u;
  }();
  sim.step(500'000);
  EXPECT_TRUE(ElectLeader::is_leader(sim.population()[leader_rank_holder]));
  EXPECT_EQ(leader_count(sim.population().states()), 1u);
}

// --- Ablation knobs interact correctly with the test predicates -------------

TEST(AblationKnobs, HardOnlyStillSelfStabilizes) {
  Params p = Params::make(16, 8);
  p.soft_reset_enabled = false;
  const auto res = analysis::stabilize(
      analysis::Engine::kNaive, analysis::StartKind::kAdversarial, p,
      Corruption::kCorruptMessages, 31, 20 * analysis::default_budget(p));
  ASSERT_TRUE(res.converged);  // slower, but still correct
  EXPECT_EQ(res.leaders, 1u);
}

TEST(AblationKnobs, NoBalanceStillDetectsEventually) {
  Params p = Params::make(16, 8);
  p.load_balancing_enabled = false;
  const auto res = analysis::stabilize(
      analysis::Engine::kNaive, analysis::StartKind::kAdversarial, p,
      Corruption::kDuplicateRanks, 37, 20 * analysis::default_budget(p));
  ASSERT_TRUE(res.converged);
  EXPECT_EQ(res.leaders, 1u);
}

}  // namespace
}  // namespace ssle::core
