#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "core/detect_collision.hpp"
#include "pp/scheduler.hpp"

namespace ssle::core {
namespace {

/// Multiset of (bucket, id, content) held by a state.
std::multiset<std::tuple<std::size_t, std::uint32_t, std::uint32_t>>
message_multiset(const DcState& a, const DcState& b) {
  std::multiset<std::tuple<std::size_t, std::uint32_t, std::uint32_t>> out;
  for (const DcState* s : {&a, &b}) {
    for (std::size_t k = 0; k < s->msgs.size(); ++k) {
      for (const Msg& m : s->msgs[k]) out.insert({k, m.id, m.content});
    }
  }
  return out;
}

TEST(BalanceLoad, ConservesMessagesExactly) {
  const Params p = Params::make(8, 4);
  DcState a = dc_initial_state(p, 1);
  DcState b = dc_initial_state(p, 2);
  const auto before = message_multiset(a, b);
  balance_load(p, 1, a, b);
  EXPECT_EQ(before, message_multiset(a, b));
}

TEST(BalanceLoad, SplitsEachContentClassWithinOne) {
  const Params p = Params::make(8, 4);
  DcState a = dc_initial_state(p, 1);
  DcState b = dc_initial_state(p, 2);
  // Restamp a's bucket-0 messages with two distinct contents.
  for (std::size_t i = 0; i < a.msgs[0].size(); ++i) {
    a.msgs[0][i].content = (i % 2 == 0) ? 7 : 9;
  }
  balance_load(p, 1, a, b);
  // Per (bucket, content) class the two agents' counts differ by ≤ 1.
  for (std::uint32_t content : {1u, 7u, 9u}) {
    for (std::size_t k = 0; k < a.msgs.size(); ++k) {
      const auto count = [&](const DcState& s) {
        return std::count_if(s.msgs[k].begin(), s.msgs[k].end(),
                             [&](const Msg& m) { return m.content == content; });
      };
      EXPECT_LE(std::abs(count(a) - count(b)), 1)
          << "content=" << content << " bucket=" << k;
    }
  }
}

TEST(BalanceLoad, KeepsBucketsSortedAndUnique) {
  const Params p = Params::make(8, 4);
  DcState a = dc_initial_state(p, 1);
  DcState b = dc_initial_state(p, 2);
  balance_load(p, 1, a, b);
  for (const DcState* s : {&a, &b}) {
    for (const auto& bucket : s->msgs) {
      for (std::size_t i = 1; i < bucket.size(); ++i) {
        EXPECT_LT(bucket[i - 1].id, bucket[i].id);
      }
    }
  }
}

TEST(BalanceLoad, EmptyAgentsNoCrash) {
  const Params p = Params::make(8, 4);
  DcState a = dc_initial_state(p, 1);
  DcState b = dc_initial_state(p, 2);
  for (auto& bucket : a.msgs) bucket.clear();
  for (auto& bucket : b.msgs) bucket.clear();
  balance_load(p, 1, a, b);
  EXPECT_EQ(dc_message_count(a), 0u);
  EXPECT_EQ(dc_message_count(b), 0u);
}

TEST(BalanceLoad, OneSidedLoadHalves) {
  const Params p = Params::make(8, 4);
  DcState a = dc_initial_state(p, 1);
  DcState b = dc_initial_state(p, 2);
  // Give everything to a.
  for (std::size_t k = 0; k < a.msgs.size(); ++k) {
    for (const Msg& m : b.msgs[k]) a.msgs[k].push_back(m);
    std::sort(a.msgs[k].begin(), a.msgs[k].end());
    b.msgs[k].clear();
  }
  const auto total = dc_message_count(a);
  balance_load(p, 1, a, b);
  EXPECT_EQ(dc_message_count(a) + dc_message_count(b), total);
  // All classes are uniform-content (content 1), so counts split evenly.
  EXPECT_LE(dc_message_count(a) > dc_message_count(b)
                ? dc_message_count(a) - dc_message_count(b)
                : dc_message_count(b) - dc_message_count(a),
            a.msgs.size());  // ≤ 1 per bucket
}

// --- Lemma E.6 behaviour: freshly stamped messages reach everyone ----------

TEST(BalanceLoad, SpreadDynamics) {
  // m agents, one rank's 2m² messages, one content class: after O(m log m)
  // pairwise balancing interactions every agent holds ≥ 1 message.
  const std::uint32_t m = 16;
  const Params p = Params::make(2 * m, m);  // one group of size 2m? no:
  // groups of size m when r = m and n = 2m → num_groups = 2.
  const std::uint32_t group = 0;
  const std::uint32_t rank = p.group_begin(group);

  // All messages start at agent 0.
  std::vector<DcState> agents(m);
  for (auto& s : agents) {
    s = dc_initial_state(p, rank);
    for (auto& bucket : s.msgs) bucket.clear();
  }
  const std::uint32_t ids = p.ids_per_rank(group);
  for (std::uint32_t j = 1; j <= ids; ++j) {
    agents[0].msgs[0].push_back({j, 1});
  }

  pp::UniformScheduler sched(m, 3);
  std::uint64_t t = 0;
  auto all_nonempty = [&] {
    return std::all_of(agents.begin(), agents.end(), [](const DcState& s) {
      return !s.msgs[0].empty();
    });
  };
  const std::uint64_t budget = 200ull * m * Params::log2ceil(m);
  while (t < budget && !all_nonempty()) {
    const auto [x, y] = sched.next();
    balance_load(p, rank, agents[x], agents[y]);
    ++t;
  }
  EXPECT_TRUE(all_nonempty());
  // Keep balancing for another O(m log m) stretch; loads then equalize to
  // within a small additive gap (Tight & Simple Load Balancing, Lemma E.6).
  for (std::uint64_t extra = 0; extra < budget; ++extra) {
    const auto [x, y] = sched.next();
    balance_load(p, rank, agents[x], agents[y]);
  }
  std::uint64_t mn = ~0ull, mx = 0;
  for (const auto& s : agents) {
    mn = std::min(mn, dc_message_count(s));
    mx = std::max(mx, dc_message_count(s));
  }
  EXPECT_LE(mx - mn, Params::log2ceil(m) + 2);
}

}  // namespace
}  // namespace ssle::core
