#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

namespace ssle::util {
namespace {

TEST(Summarize, EmptyIsZero) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.stddev, 0.0);
}

TEST(Summarize, SingleValue) {
  const std::vector<double> xs{3.5};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 3.5);
  EXPECT_DOUBLE_EQ(s.median, 3.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 3.5);
  EXPECT_DOUBLE_EQ(s.max, 3.5);
}

TEST(Summarize, KnownSample) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const Summary s = summarize(xs);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
}

TEST(Percentile, Interpolates) {
  const std::vector<double> xs{0, 10};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 10.0);
}

TEST(Percentile, UnsortedInputHandled) {
  const std::vector<double> xs{5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 3.0);
}

TEST(Ci95, ShrinksWithSampleSize) {
  Summary small;
  small.count = 4;
  small.stddev = 2.0;
  Summary large;
  large.count = 400;
  large.stddev = 2.0;
  EXPECT_GT(ci95_halfwidth(small), ci95_halfwidth(large));
  Summary one;
  one.count = 1;
  EXPECT_EQ(ci95_halfwidth(one), 0.0);
}

TEST(Ci95, DegenerateSummariesYieldZeroWidthNeverNaN) {
  // Contract (stats.hpp): count <= 1 — an empty sweep or a single
  // surviving trial — has no estimable dispersion and must report a
  // 0-width interval, never NaN (count−1 would underflow size_t on an
  // empty summary if the guard slipped).
  const Summary empty = summarize({});
  EXPECT_EQ(empty.count, 0u);
  EXPECT_EQ(ci95_halfwidth(empty), 0.0);
  EXPECT_FALSE(std::isnan(ci95_halfwidth(empty)));

  const std::vector<double> one_trial{17.25};
  const Summary single = summarize(one_trial);
  EXPECT_EQ(single.count, 1u);
  EXPECT_EQ(ci95_halfwidth(single), 0.0);
  EXPECT_FALSE(std::isnan(ci95_halfwidth(single)));

  // Adversarial hand-built summary: count 1 with garbage stddev must
  // still be clamped by the count guard, not multiplied through.
  Summary weird;
  weird.count = 1;
  weird.stddev = std::numeric_limits<double>::infinity();
  EXPECT_EQ(ci95_halfwidth(weird), 0.0);
}

TEST(Ci95, T95CriticalMatchesTheStudentTTable) {
  EXPECT_DOUBLE_EQ(t95_critical(1), 12.706);
  EXPECT_DOUBLE_EQ(t95_critical(4), 2.776);   // bench default: 5 trials
  EXPECT_DOUBLE_EQ(t95_critical(10), 2.228);
  EXPECT_DOUBLE_EQ(t95_critical(30), 2.042);
  EXPECT_DOUBLE_EQ(t95_critical(31), 1.96);   // normal beyond the table
  EXPECT_DOUBLE_EQ(t95_critical(1000), 1.96);
  EXPECT_EQ(t95_critical(0), 0.0);
  // Critical values decrease toward z as d.o.f. grow.
  for (std::size_t dof = 1; dof < 35; ++dof) {
    EXPECT_GE(t95_critical(dof), t95_critical(dof + 1)) << "dof " << dof;
  }
}

TEST(Ci95, UsesStudentTAtSmallCounts) {
  // Regression: the normal z = 1.96 at every count understated the
  // interval at the bench default of 5 trials by ~42%.
  Summary five;
  five.count = 5;
  five.stddev = 2.0;
  EXPECT_NEAR(ci95_halfwidth(five), 2.776 * 2.0 / std::sqrt(5.0), 1e-12);
  Summary big;
  big.count = 500;
  big.stddev = 2.0;
  EXPECT_NEAR(ci95_halfwidth(big), 1.96 * 2.0 / std::sqrt(500.0), 1e-12);
}

TEST(FitScale, RecoversExactScale) {
  std::vector<double> xs, ys;
  for (double x = 2; x <= 100; x += 7) {
    xs.push_back(x);
    ys.push_back(4.25 * model_nlogn(x));
  }
  const double c = fit_scale(xs, ys, model_nlogn);
  EXPECT_NEAR(c, 4.25, 1e-9);
  EXPECT_NEAR(fit_r2(xs, ys, model_nlogn, c), 1.0, 1e-9);
}

TEST(FitScale, R2DegradesForWrongModel) {
  std::vector<double> xs, ys;
  for (double x = 2; x <= 200; x += 3) {
    xs.push_back(x);
    ys.push_back(2.0 * model_n2(x));
  }
  const double c_right = fit_scale(xs, ys, model_n2);
  const double c_wrong = fit_scale(xs, ys, model_identity);
  EXPECT_GT(fit_r2(xs, ys, model_n2, c_right),
            fit_r2(xs, ys, model_identity, c_wrong));
}

TEST(FitPower, RecoversExponent) {
  std::vector<double> xs, ys;
  for (double x = 2; x <= 300; x *= 1.5) {
    xs.push_back(x);
    ys.push_back(0.7 * std::pow(x, 1.8));
  }
  const PowerFit fit = fit_power(xs, ys);
  EXPECT_NEAR(fit.exponent, 1.8, 1e-6);
  EXPECT_NEAR(fit.scale, 0.7, 1e-6);
  EXPECT_NEAR(fit.r2, 1.0, 1e-9);
}

TEST(FitPower, DegenerateInputsYieldZero) {
  const PowerFit fit = fit_power({}, {});
  EXPECT_EQ(fit.scale, 0.0);
  EXPECT_EQ(fit.exponent, 0.0);
}

TEST(Models, SaneAtSmallArguments) {
  EXPECT_DOUBLE_EQ(model_nlogn(1.0), 1.0);
  EXPECT_DOUBLE_EQ(model_logn(1.0), 1.0);
  EXPECT_DOUBLE_EQ(model_n2(3.0), 9.0);
  EXPECT_GT(model_n2logn(10.0), model_n2(10.0));
}

}  // namespace
}  // namespace ssle::util
