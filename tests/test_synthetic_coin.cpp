#include "core/synthetic_coin.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "pp/scheduler.hpp"
#include "util/rng.hpp"

namespace ssle::core {
namespace {

TEST(SyntheticCoin, BitsCoverValueSpace) {
  EXPECT_EQ(SyntheticCoin(2).bits(), 1u);
  EXPECT_EQ(SyntheticCoin(4).bits(), 2u);
  EXPECT_EQ(SyntheticCoin(5).bits(), 3u);
  EXPECT_EQ(SyntheticCoin(1024).bits(), 10u);
}

TEST(SyntheticCoin, CoinAlternates) {
  SyntheticCoin c(16);
  const bool first = c.coin();
  c.observe(false);
  EXPECT_NE(c.coin(), first);
  c.observe(false);
  EXPECT_EQ(c.coin(), first);
}

TEST(SyntheticCoin, ReadyAfterFullRefresh) {
  SyntheticCoin c(16);  // 4 bits
  EXPECT_FALSE(c.ready());
  for (int i = 0; i < 4; ++i) c.observe(true);
  EXPECT_TRUE(c.ready());
  (void)c.sample();
  EXPECT_FALSE(c.ready());  // stale until refreshed again
  for (int i = 0; i < 4; ++i) c.observe(false);
  EXPECT_TRUE(c.ready());
}

TEST(SyntheticCoin, SampleInRange) {
  SyntheticCoin c(10);
  util::Rng rng(1);
  for (int round = 0; round < 200; ++round) {
    for (std::uint32_t i = 0; i < c.bits(); ++i) c.observe(rng.coin());
    const auto v = c.sample();
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 10u);
  }
}

/// Full population simulation of App. B: agents flip alternating coins and
/// harvest partner bits through the scheduler; measures the bias of the
/// assembled samples against the paper's bound P[x=v] ∈ [1/(2N), 2/N].
TEST(SyntheticCoin, PopulationHarvestNearUniform) {
  constexpr std::uint32_t n = 64;
  constexpr std::uint64_t N = 8;  // small space so counts concentrate
  std::vector<SyntheticCoin> agents(n, SyntheticCoin(N));
  // Desynchronize the alternating coins (arbitrary initial parity).
  util::Rng init(3);
  for (std::uint32_t i = 0; i < n; i += 2) agents[i].observe(init.coin());

  pp::UniformScheduler sched(n, 4);
  std::map<std::uint64_t, std::uint64_t> counts;
  std::uint64_t samples = 0;
  for (std::uint64_t t = 0; t < 2000000 && samples < 40000; ++t) {
    const auto [a, b] = sched.next();
    const bool coin_a = agents[a].coin();
    const bool coin_b = agents[b].coin();
    agents[a].observe(coin_b);
    agents[b].observe(coin_a);
    for (auto idx : {a, b}) {
      if (agents[idx].ready()) {
        ++counts[agents[idx].sample()];
        ++samples;
      }
    }
  }
  ASSERT_GE(samples, 40000u);
  for (std::uint64_t v = 1; v <= N; ++v) {
    const double p = static_cast<double>(counts[v]) / samples;
    EXPECT_GE(p, 0.5 / N) << "value " << v;
    EXPECT_LE(p, 2.0 / N) << "value " << v;
  }
}

TEST(SyntheticCoin, ConsecutiveSamplesDecorrelated) {
  // With a fully refreshed buffer between samples, consecutive samples of a
  // single agent driven by fair partner bits look independent: check the
  // empirical correlation of (s_t, s_{t+1}) parity is near zero.
  SyntheticCoin c(2);
  util::Rng rng(9);
  int agree = 0;
  int prev = -1;
  int pairs = 0;
  for (int round = 0; round < 20000; ++round) {
    c.observe(rng.coin());
    if (!c.ready()) continue;
    const int cur = static_cast<int>(c.sample() - 1);
    if (prev >= 0) {
      agree += (cur == prev);
      ++pairs;
    }
    prev = cur;
  }
  ASSERT_GT(pairs, 1000);
  EXPECT_NEAR(static_cast<double>(agree) / pairs, 0.5, 0.05);
}

}  // namespace
}  // namespace ssle::core
