#include "core/assign_ranks.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>
#include <vector>

#include "pp/scheduler.hpp"

namespace ssle::core {
namespace {

struct ArRun {
  std::vector<ArState> agents;
  std::uint64_t interactions = 0;
  bool all_ranked = false;
};

/// Runs AssignRanks_r standalone from the clean (dormant-equivalent) start.
ArRun run_assign_ranks(const Params& params, std::uint64_t seed,
                       std::uint64_t budget) {
  ArRun run;
  run.agents.assign(params.n, ar_initial_state(params));
  pp::UniformScheduler sched(params.n, seed);
  util::Rng rng(util::substream(seed, 4));
  auto all_ranked = [&] {
    return std::all_of(run.agents.begin(), run.agents.end(),
                       [](const ArState& s) { return ar_ranked(s); });
  };
  while (run.interactions < budget) {
    const auto [a, b] = sched.next();
    assign_ranks(params, run.agents[a], run.agents[b], rng);
    ++run.interactions;
    if (run.interactions % params.n == 0 && all_ranked()) break;
  }
  run.all_ranked = all_ranked();
  return run;
}

bool ranks_are_permutation(const std::vector<ArState>& agents,
                           std::uint32_t n) {
  std::set<std::uint32_t> ranks;
  for (const auto& s : agents) {
    if (s.rank < 1 || s.rank > n) return false;
    ranks.insert(s.rank);
  }
  return ranks.size() == n;
}

TEST(AssignRanks, InitialStateIsLeaderElection) {
  const Params p = Params::make(16, 4);
  const ArState s = ar_initial_state(p);
  EXPECT_EQ(s.type, ArType::kLeaderElection);
  EXPECT_FALSE(s.le.drawn);
  EXPECT_EQ(s.rank, 1u);
}

TEST(RankFromLabel, LexicographicBijection) {
  ArState s;
  s.channel = {3, 2, 4};  // deputies handed out 3, 2, 4 labels
  s.label = {1, 1};
  EXPECT_EQ(rank_from_label(s), 1u);
  s.label = {1, 3};
  EXPECT_EQ(rank_from_label(s), 3u);
  s.label = {2, 1};
  EXPECT_EQ(rank_from_label(s), 4u);
  s.label = {3, 4};
  EXPECT_EQ(rank_from_label(s), 9u);
}

TEST(RankFromLabel, InvalidLabelMapsToOne) {
  ArState s;
  s.channel = {2, 2};
  s.label = {};
  EXPECT_EQ(rank_from_label(s), 1u);
  s.label = {5, 1};  // deputy id out of range
  EXPECT_EQ(rank_from_label(s), 1u);
}

TEST(Deputize, SplitsBadgeRangeExactly) {
  const Params p = Params::make(16, 4);
  ArState sheriff;
  sheriff.type = ArType::kSheriff;
  sheriff.low_badge = 1;
  sheriff.high_badge = 4;
  sheriff.channel.assign(4, 0);
  ArState recipient;
  recipient.type = ArType::kRecipient;
  recipient.channel.assign(4, 0);

  deputize(p, sheriff, recipient);
  // Badges {1..4} split into {1,2} and {3,4}.
  EXPECT_EQ(sheriff.type, ArType::kSheriff);
  EXPECT_EQ(sheriff.low_badge, 1u);
  EXPECT_EQ(sheriff.high_badge, 2u);
  EXPECT_EQ(recipient.type, ArType::kSheriff);
  EXPECT_EQ(recipient.low_badge, 3u);
  EXPECT_EQ(recipient.high_badge, 4u);
}

TEST(Deputize, SingleBadgeBecomesDeputy) {
  const Params p = Params::make(16, 2);
  ArState sheriff;
  sheriff.type = ArType::kSheriff;
  sheriff.low_badge = 1;
  sheriff.high_badge = 2;
  sheriff.channel.assign(2, 0);
  ArState recipient;
  recipient.type = ArType::kRecipient;
  recipient.channel.assign(2, 0);

  deputize(p, sheriff, recipient);
  EXPECT_EQ(sheriff.type, ArType::kDeputy);
  EXPECT_EQ(sheriff.deputy_id, 1u);
  EXPECT_EQ(sheriff.counter, 1u);
  EXPECT_EQ(sheriff.channel[0], 1u);
  EXPECT_EQ(recipient.type, ArType::kDeputy);
  EXPECT_EQ(recipient.deputy_id, 2u);
}

TEST(Labeling, BlockedUntilAllDeputiesKnown) {
  const Params p = Params::make(16, 4);
  ArState deputy;
  deputy.type = ArType::kDeputy;
  deputy.deputy_id = 1;
  deputy.counter = 1;
  deputy.channel = {1, 0, 0, 0};  // sum 1 < r = 4
  ArState recipient;
  recipient.type = ArType::kRecipient;
  recipient.channel.assign(4, 0);

  labeling(p, deputy, recipient);
  EXPECT_FALSE(recipient.label.valid());

  deputy.channel = {1, 1, 1, 1};  // all deputies known
  labeling(p, deputy, recipient);
  EXPECT_TRUE(recipient.label.valid());
  EXPECT_EQ(recipient.label.deputy, 1u);
  EXPECT_EQ(recipient.label.index, 2u);
  EXPECT_EQ(deputy.counter, 2u);
  EXPECT_EQ(deputy.channel[0], 2u);
}

TEST(Labeling, PoolExhaustionStopsLabeling) {
  const Params p = Params::make(8, 2);
  ArState deputy;
  deputy.type = ArType::kDeputy;
  deputy.deputy_id = 1;
  deputy.counter = p.label_pool;  // exhausted
  deputy.channel.assign(2, 1);
  deputy.channel[0] = p.label_pool;
  ArState recipient;
  recipient.type = ArType::kRecipient;
  recipient.channel.assign(2, 0);
  labeling(p, deputy, recipient);
  EXPECT_FALSE(recipient.label.valid());
}

TEST(Sleep, RankedWakesSleeper) {
  const Params p = Params::make(8, 2);
  ArState sleeper;
  sleeper.type = ArType::kSleeper;
  sleeper.sleep_timer = 1;
  sleeper.label = {1, 2};
  sleeper.channel = {4, 4};
  ArState ranked;
  ranked.type = ArType::kRanked;
  ranked.rank = 5;

  ar_sleep(p, sleeper, ranked);
  EXPECT_EQ(sleeper.type, ArType::kRanked);
  EXPECT_EQ(sleeper.rank, 2u);
}

TEST(Sleep, TimerExpiryRanksBoth) {
  const Params p = Params::make(8, 2);
  ArState a;
  a.type = ArType::kSleeper;
  a.sleep_timer = p.sleep_max;
  a.label = {1, 1};
  a.channel = {4, 4};
  ArState b;
  b.type = ArType::kSleeper;
  b.sleep_timer = 2;
  b.label = {2, 1};
  b.channel = {4, 4};

  ar_sleep(p, a, b);
  EXPECT_EQ(a.type, ArType::kRanked);
  EXPECT_EQ(a.rank, 1u);
  EXPECT_EQ(b.type, ArType::kRanked);
  EXPECT_EQ(b.rank, 5u);
}

TEST(Sleep, SpreadsToNonSleeper) {
  const Params p = Params::make(8, 2);
  ArState sleeper;
  sleeper.type = ArType::kSleeper;
  sleeper.sleep_timer = 1;
  sleeper.label = {1, 1};
  sleeper.channel = {4, 4};
  ArState recipient;
  recipient.type = ArType::kRecipient;
  recipient.label = {2, 1};
  recipient.channel = {4, 4};

  ar_sleep(p, sleeper, recipient);
  EXPECT_EQ(recipient.type, ArType::kSleeper);
}

// --- End-to-end AssignRanks sweeps (Lemma D.1) -----------------------------

class AssignRanksSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {
};

TEST_P(AssignRanksSweep, ProducesUniqueRanking) {
  const auto [n, r] = GetParam();
  const Params p = Params::make(n, r);
  const std::uint64_t L = Params::log2ceil(n);
  const std::uint64_t budget = 2000ull * (n * n / p.r) * L + 500000;
  int successes = 0;
  constexpr int kTrials = 5;
  for (int trial = 0; trial < kTrials; ++trial) {
    const ArRun run = run_assign_ranks(p, 500 + trial * 17, budget);
    ASSERT_TRUE(run.all_ranked)
        << "n=" << n << " r=" << r << " trial=" << trial;
    successes += ranks_are_permutation(run.agents, n);
  }
  EXPECT_EQ(successes, kTrials) << "n=" << n << " r=" << r;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AssignRanksSweep,
    ::testing::Values(std::tuple{8u, 1u}, std::tuple{8u, 4u},
                      std::tuple{16u, 2u}, std::tuple{16u, 8u},
                      std::tuple{32u, 4u}, std::tuple{32u, 16u},
                      std::tuple{64u, 8u}, std::tuple{64u, 32u},
                      std::tuple{100u, 13u}, std::tuple{128u, 64u}));

TEST(AssignRanks, SilentOnceRanked) {
  // Lemma D.1: the protocol is silent — once ranked, qAR never changes.
  const Params p = Params::make(32, 8);
  ArRun run = run_assign_ranks(p, 7, 10000000);
  ASSERT_TRUE(run.all_ranked);
  auto snapshot = run.agents;
  pp::UniformScheduler sched(p.n, 99);
  util::Rng rng(100);
  for (int t = 0; t < 20000; ++t) {
    const auto [a, b] = sched.next();
    assign_ranks(p, run.agents[a], run.agents[b], rng);
  }
  EXPECT_EQ(run.agents, snapshot);
}

}  // namespace
}  // namespace ssle::core
