// The thread-pool experiment runner: parallel_sweep must be bit-identical
// to serial sweep for every jobs count, and both must classify negative
// and non-finite measurements as failures.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <thread>

#include "analysis/experiment.hpp"

namespace ssle::analysis {
namespace {

/// A deterministic measure with some spread and some failures.
double spiky_measure(std::uint64_t seed) {
  if (seed % 7 == 3) return -1.0;  // non-converged
  return static_cast<double>((seed * 2654435761u) % 1000) + 0.25;
}

void expect_identical(const SweepResult& a, const SweepResult& b) {
  EXPECT_EQ(a.failures, b.failures);
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_EQ(a.samples[i], b.samples[i]) << "sample " << i;
  }
  EXPECT_EQ(a.summary.count, b.summary.count);
  EXPECT_EQ(a.summary.mean, b.summary.mean);
  EXPECT_EQ(a.summary.stddev, b.summary.stddev);
  EXPECT_EQ(a.summary.min, b.summary.min);
  EXPECT_EQ(a.summary.max, b.summary.max);
  EXPECT_EQ(a.summary.median, b.summary.median);
  EXPECT_EQ(a.summary.p10, b.summary.p10);
  EXPECT_EQ(a.summary.p90, b.summary.p90);
}

TEST(ParallelSweep, BitIdenticalToSerialForAnyJobs) {
  const auto serial = sweep(42, 33, spiky_measure);
  for (const std::size_t jobs : {1u, 2u, 8u}) {
    const auto par = parallel_sweep(42, 33, spiky_measure, jobs);
    expect_identical(serial, par);
  }
}

TEST(ParallelSweep, AutoJobsMatchesSerial) {
  const auto serial = sweep(7, 17, spiky_measure);
  const auto par = parallel_sweep(7, 17, spiky_measure, /*jobs=*/0);
  expect_identical(serial, par);
}

TEST(ParallelSweep, MoreJobsThanTrials) {
  const auto serial = sweep(5, 3, spiky_measure);
  const auto par = parallel_sweep(5, 3, spiky_measure, 64);
  expect_identical(serial, par);
}

TEST(ParallelSweep, ZeroTrials) {
  const auto res = parallel_sweep(0, 0, spiky_measure, 4);
  EXPECT_EQ(res.failures, 0u);
  EXPECT_TRUE(res.samples.empty());
  EXPECT_EQ(res.summary.count, 0u);
}

TEST(ParallelSweep, SamplesArriveInSeedOrder) {
  const auto res = parallel_sweep(
      0, 20, [](std::uint64_t seed) { return static_cast<double>(seed); }, 8);
  ASSERT_EQ(res.samples.size(), 20u);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(res.samples[i], static_cast<double>(i));
  }
}

TEST(ParallelSweep, ActuallyRunsConcurrently) {
  // With 4 jobs and 4 trials that each wait for all four to have started,
  // the sweep can only finish if the trials really run on distinct threads.
  std::atomic<int> started{0};
  const auto res = parallel_sweep(
      0, 4,
      [&](std::uint64_t) {
        started.fetch_add(1);
        while (started.load() < 4) std::this_thread::yield();
        return 1.0;
      },
      4);
  EXPECT_EQ(res.samples.size(), 4u);
}

// --- NaN / non-finite regression (a NaN trial used to poison the mean) ---

TEST(ParallelSweep, NanCountsAsFailureNotSample) {
  const auto measure = [](std::uint64_t seed) {
    if (seed == 2) return std::numeric_limits<double>::quiet_NaN();
    return 10.0;
  };
  for (const std::size_t jobs : {1u, 4u}) {
    const auto res = parallel_sweep(0, 5, measure, jobs);
    EXPECT_EQ(res.failures, 1u);
    EXPECT_EQ(res.samples.size(), 4u);
    EXPECT_DOUBLE_EQ(res.summary.mean, 10.0);
    EXPECT_TRUE(std::isfinite(res.summary.mean));
  }
}

TEST(ParallelSweep, InfinityCountsAsFailureNotSample) {
  const auto measure = [](std::uint64_t seed) {
    if (seed == 0) return std::numeric_limits<double>::infinity();
    if (seed == 1) return -std::numeric_limits<double>::infinity();
    return 3.0;
  };
  const auto res = parallel_sweep(0, 4, measure, 2);
  EXPECT_EQ(res.failures, 2u);
  EXPECT_EQ(res.samples.size(), 2u);
  EXPECT_DOUBLE_EQ(res.summary.mean, 3.0);
}

TEST(ResolveJobs, ZeroMeansHardwareConcurrency) {
  EXPECT_GE(resolve_jobs(0), 1u);
  EXPECT_EQ(resolve_jobs(3), 3u);
}

TEST(ResolveJobs, EffectiveJobsClampsToTrials) {
  EXPECT_EQ(effective_jobs(8, 3), 3u);
  EXPECT_EQ(effective_jobs(2, 100), 2u);
  EXPECT_EQ(effective_jobs(4, 0), 1u);  // never reports 0 workers
  EXPECT_GE(effective_jobs(0, 1000), 1u);
}

TEST(ParallelSweep, WorkerExceptionPropagatesLikeSerial) {
  const auto thrower = [](std::uint64_t seed) -> double {
    if (seed == 3) throw std::runtime_error("trial blew up");
    return 1.0;
  };
  EXPECT_THROW(parallel_sweep(0, 8, thrower, 1), std::runtime_error);
  EXPECT_THROW(parallel_sweep(0, 8, thrower, 4), std::runtime_error);
}

}  // namespace
}  // namespace ssle::analysis
