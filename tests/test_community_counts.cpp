// Blocked topologies + the community-lifted counts engine.
//
// The load-bearing claim of the (community, state) lift is LAW EQUALITY:
// on a blocked topology, the naive agent-array engine driven by
// BlockedScheduler (or by GraphScheduler over the materialized graph) and
// the batched engine's lumped community path simulate the same Markov
// chain.  These tests pin that down the same way the uniform engines are
// pinned (tests/test_batched_simulator.cpp): total-variation distance of
// empirical convergence-time laws at tiny n, where a law bug cannot hide,
// for Epidemic and LooseLeaderElection, on 2-community islands and a
// complete-multipartite graph — plus the K = 1 degenerate case, where the
// community engine must reproduce the plain uniform law.
#include "pp/community_counts.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <vector>

#include "analysis/measure.hpp"
#include "baselines/loose_leader.hpp"
#include "pp/batched_simulator.hpp"
#include "pp/epidemic.hpp"
#include "pp/graph.hpp"
#include "pp/simulator.hpp"
#include "util/rng.hpp"

namespace ssle::pp {
namespace {

using baselines::LooseLeaderElection;

// ---------------------------------------------------------------------------
// BlockedTopology: layout, weights, sampling.
// ---------------------------------------------------------------------------

TEST(BlockedTopology, NearEqualSplitAndOffsets) {
  const auto topo = BlockedTopology::islands(10, 3, 1.0, 0.5);
  ASSERT_EQ(topo.communities(), 3u);
  EXPECT_EQ(topo.size(0), 4u);  // first n % K communities are one larger
  EXPECT_EQ(topo.size(1), 3u);
  EXPECT_EQ(topo.size(2), 3u);
  EXPECT_EQ(topo.offset(0), 0u);
  EXPECT_EQ(topo.offset(1), 4u);
  EXPECT_EQ(topo.offset(2), 7u);
  EXPECT_EQ(topo.total_agents(), 10u);
  EXPECT_EQ(topo.community_of_agent(0), 0u);
  EXPECT_EQ(topo.community_of_agent(3), 0u);
  EXPECT_EQ(topo.community_of_agent(4), 1u);
  EXPECT_EQ(topo.community_of_agent(9), 2u);
  EXPECT_EQ(topo.name(), "islands:3");
}

TEST(BlockedTopology, OrderedPairWeightsAreClosedForm) {
  const auto topo = BlockedTopology::islands(10, 3, 1.0, 0.5);
  // W(a, a) = intra·m_a·(m_a−1); W(a, b) = inter·m_a·m_b.
  EXPECT_DOUBLE_EQ(topo.pair_weight(0, 0), 12.0);
  EXPECT_DOUBLE_EQ(topo.pair_weight(1, 1), 6.0);
  EXPECT_DOUBLE_EQ(topo.pair_weight(0, 1), 6.0);
  EXPECT_DOUBLE_EQ(topo.pair_weight(1, 0), 6.0);
  EXPECT_DOUBLE_EQ(topo.pair_weight(1, 2), 4.5);
}

TEST(BlockedTopology, MultipartiteHasNoIntraEdges) {
  const auto topo = BlockedTopology::multipartite(6, 2);
  EXPECT_DOUBLE_EQ(topo.pair_weight(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(topo.pair_weight(1, 1), 0.0);
  EXPECT_DOUBLE_EQ(topo.pair_weight(0, 1), 9.0);
  util::Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const auto [a, b] = topo.sample_pair(rng);
    EXPECT_NE(a, b) << "multipartite sampled an intra-community pair";
  }
}

TEST(BlockedTopology, SingleCommunityIsTheCompleteGraph) {
  const auto topo = BlockedTopology::complete(8);
  EXPECT_EQ(topo.communities(), 1u);
  EXPECT_EQ(topo.size(0), 8u);
  util::Rng rng(5);
  EXPECT_EQ(topo.sample_pair(rng), (std::pair<std::uint32_t, std::uint32_t>{0, 0}));
}

TEST(BlockedScheduler, RealizesTheUniformInterPairLawOnMultipartite) {
  // On multipartite(6, 2) the ordered-pair law is uniform over the 18
  // ordered inter-block pairs.  Check empirical frequencies, and that
  // intra-block pairs never occur.
  const auto topo = BlockedTopology::multipartite(6, 2);
  BlockedScheduler sched(topo, 42);
  const int draws = 36000;
  std::map<std::pair<std::uint32_t, std::uint32_t>, int> freq;
  for (int i = 0; i < draws; ++i) {
    const Pair p = sched.next();
    ASSERT_NE(p.initiator, p.responder);
    ASSERT_NE(topo.community_of_agent(p.initiator),
              topo.community_of_agent(p.responder));
    ++freq[{p.initiator, p.responder}];
  }
  EXPECT_EQ(freq.size(), 18u);
  const double expected = draws / 18.0;  // 2000 per ordered pair
  for (const auto& [pair, count] : freq) {
    EXPECT_NEAR(count, expected, 6.0 * std::sqrt(expected))
        << "pair (" << pair.first << ", " << pair.second << ")";
  }
}

TEST(Graph, CompleteMultipartiteMatchesTheBlockedLayout) {
  const auto g = Graph::complete_multipartite(7, 2);  // blocks {0..3}, {4..6}
  EXPECT_EQ(g.vertices(), 7u);
  EXPECT_EQ(g.edges(), 12u);  // 4·3 inter-block pairs
  EXPECT_TRUE(g.has_edge(0, 4));
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(4, 6));
  EXPECT_TRUE(g.is_connected());
}

// ---------------------------------------------------------------------------
// CommunityCountsConfiguration bookkeeping.
// ---------------------------------------------------------------------------

TEST(CommunityCounts, BookkeepingAndMarginals) {
  const auto topo = BlockedTopology::islands(10, 2, 1.0, 0.5);
  CommunityCountsConfiguration<Epidemic> config(topo);
  const auto a0 = config.add_in(0, 0, 3);
  const auto a1 = config.add_in(0, 1, 2);
  const auto b0 = config.add_in(1, 0, 5);
  EXPECT_EQ(config.population_size(), 10u);
  EXPECT_EQ(config.community_size(0), 5u);
  EXPECT_EQ(config.community_size(1), 5u);
  // State marginals sum over communities; per-class counts do not.
  EXPECT_EQ(config.count_of(0), 8u);
  EXPECT_EQ(config.count_of(1), 2u);
  EXPECT_NE(a0, b0);
  EXPECT_EQ(config.state(a0), config.state(b0));
  EXPECT_EQ(config.community_of(a0), 0u);
  EXPECT_EQ(config.community_of(b0), 1u);
  // sample_class_in resolves positions within one community only.
  EXPECT_EQ(config.sample_class_in(0, 0), a0);
  EXPECT_EQ(config.sample_class_in(0, 2), a0);
  EXPECT_EQ(config.sample_class_in(0, 3), a1);
  EXPECT_EQ(config.sample_class_in(1, 4), b0);
  // index_near keeps the output in the input's community.
  const auto near = config.index_near(1, b0);
  EXPECT_EQ(config.community_of(near), 1u);
  EXPECT_NE(near, a1);
}

TEST(CommunityCounts, CompactKeepsLiveIdsAndCommunityListsInSync) {
  const auto topo = BlockedTopology::islands(10, 2, 1.0, 0.5);
  CommunityCountsConfiguration<Epidemic> config(topo);
  const auto a0 = config.add_in(0, 0, 5);
  const auto a1 = config.add_in(0, 1, 0);  // registered, never populated
  const auto b0 = config.add_in(1, 0, 5);
  const auto version = config.registry_version();
  config.compact();
  EXPECT_GT(config.registry_version(), version);
  EXPECT_EQ(config.count(a0), 5u);
  EXPECT_EQ(config.count(b0), 5u);
  EXPECT_EQ(config.community_of(a0), 0u);
  EXPECT_EQ(config.community_of(b0), 1u);
  // The member lists were rebuilt: sampling still resolves every position.
  EXPECT_EQ(config.sample_class_in(0, 4), a0);
  EXPECT_EQ(config.sample_class_in(1, 0), b0);
  EXPECT_NE(config.count(a0), config.count_of(1));
  (void)a1;
}

TEST(CommunityCounts, ProjectionPlacesAgentsByIndex) {
  // Agents 0..3 → community 0, agents 4..7 → community 1, matching
  // BlockedScheduler's contiguous layout (this is what makes the two
  // engines simulate the same chain from the same start).
  const auto topo = BlockedTopology::islands(8, 2, 1.0, 0.25);
  const std::vector<int> states{1, 1, 0, 0, 0, 0, 0, 1};
  CommunityCountsConfiguration<Epidemic> config(states, topo);
  EXPECT_EQ(config.population_size(), 8u);
  EXPECT_EQ(config.count_of(1), 3u);
  std::uint64_t infected_in_0 = 0, infected_in_1 = 0;
  for (std::uint32_t id = 0; id < config.num_states(); ++id) {
    if (config.count(id) == 0) continue;
    if (config.state(id) == 1) {
      (config.community_of(id) == 0 ? infected_in_0 : infected_in_1) +=
          config.count(id);
    }
  }
  EXPECT_EQ(infected_in_0, 2u);
  EXPECT_EQ(infected_in_1, 1u);
}

// ---------------------------------------------------------------------------
// Law equality: naive(graph / blocked scheduler) vs batched(lumped).
// ---------------------------------------------------------------------------

using CommunityBatched =
    BatchedSimulator<Epidemic, CommunityCountsConfiguration<Epidemic>>;

bool population_all_infected(const Population<Epidemic>& pop) {
  for (std::uint32_t i = 0; i < pop.size(); ++i) {
    if (pop[i] == 0) return false;
  }
  return true;
}

std::uint64_t epidemic_time_blocked_naive(const BlockedTopology& topo,
                                          std::uint64_t seed) {
  const Epidemic proto{static_cast<std::uint32_t>(topo.total_agents())};
  Simulator<Epidemic, BlockedScheduler> sim(
      proto, Population<Epidemic>(proto),
      BlockedScheduler(topo, util::substream(seed, 1)), seed);
  const auto res = sim.run_until(
      [](const Population<Epidemic>& pop, std::uint64_t) {
        return population_all_infected(pop);
      },
      1u << 22, /*probe_every=*/1);
  EXPECT_TRUE(res.converged);
  return res.interactions;
}

std::uint64_t epidemic_time_graph_naive(const Graph& graph,
                                        std::uint64_t seed) {
  const Epidemic proto{graph.vertices()};
  Simulator<Epidemic, GraphScheduler> sim(
      proto, Population<Epidemic>(proto),
      GraphScheduler(graph, util::substream(seed, 1)), seed);
  const auto res = sim.run_until(
      [](const Population<Epidemic>& pop, std::uint64_t) {
        return population_all_infected(pop);
      },
      1u << 22, /*probe_every=*/1);
  EXPECT_TRUE(res.converged);
  return res.interactions;
}

std::uint64_t epidemic_time_lumped(const BlockedTopology& topo,
                                   std::uint64_t seed) {
  const Epidemic proto{static_cast<std::uint32_t>(topo.total_agents())};
  CommunityBatched sim(proto, CommunityCountsConfiguration<Epidemic>(proto, topo),
                       seed);
  const auto res = sim.run_until(
      [](const CommunityCountsConfiguration<Epidemic>& c, std::uint64_t) {
        return c.count_of(0) == 0;
      },
      1u << 22, /*probe_every=*/1);
  EXPECT_TRUE(res.converged);
  return res.interactions;
}

std::uint64_t epidemic_time_uniform_batched(std::uint32_t n,
                                            std::uint64_t seed) {
  const Epidemic proto{n};
  BatchedSimulator<Epidemic> sim(proto, seed);
  const auto res = sim.run_until(
      [](const CountsConfiguration<Epidemic>& c, std::uint64_t) {
        return c.count_of(0) == 0;
      },
      1u << 22, /*probe_every=*/1);
  EXPECT_TRUE(res.converged);
  return res.interactions;
}

double tv_distance(const std::map<std::uint64_t, int>& a,
                   const std::map<std::uint64_t, int>& b, int trials) {
  std::map<std::uint64_t, double> diff;
  for (const auto& [k, c] : a) diff[k] += static_cast<double>(c) / trials;
  for (const auto& [k, c] : b) diff[k] -= static_cast<double>(c) / trials;
  double tv = 0.0;
  for (const auto& [k, d] : diff) tv += std::abs(d);
  return tv / 2.0;
}

TEST(CommunityLawEquality, EpidemicOnTwoIslandsMatchesBlockedNaive) {
  // n = 8 split 4/4, weak bridges: the inter-community crossing dominates
  // the law, so a pair-weight bug shows up as a TV gap immediately.
  const auto topo = BlockedTopology::islands(8, 2, 1.0, 0.25);
  const int trials = 3000;
  std::map<std::uint64_t, int> pmf_naive, pmf_lumped;
  for (int t = 0; t < trials; ++t) {
    ++pmf_naive[epidemic_time_blocked_naive(topo, 10000 + t)];
    ++pmf_lumped[epidemic_time_lumped(topo, 50000 + t)];
  }
  const double tv = tv_distance(pmf_naive, pmf_lumped, trials);
  EXPECT_LT(tv, 0.1) << "total variation distance " << tv;
}

TEST(CommunityLawEquality, EpidemicOnCompleteMultipartiteMatchesGraphNaive) {
  // The naive side runs the *materialized* complete-multipartite graph via
  // the generic edge-list scheduler — an independent implementation of the
  // same law (uniform over inter-block ordered pairs).
  const auto graph = Graph::complete_multipartite(8, 2);
  const auto topo = BlockedTopology::multipartite(8, 2);
  const int trials = 3000;
  std::map<std::uint64_t, int> pmf_naive, pmf_lumped;
  for (int t = 0; t < trials; ++t) {
    ++pmf_naive[epidemic_time_graph_naive(graph, 20000 + t)];
    ++pmf_lumped[epidemic_time_lumped(topo, 70000 + t)];
  }
  const double tv = tv_distance(pmf_naive, pmf_lumped, trials);
  EXPECT_LT(tv, 0.1) << "total variation distance " << tv;
}

TEST(CommunityLawEquality, SingleCommunityDegeneratesToTheUniformLaw) {
  // K = 1 islands ≡ the complete graph: the community engine must draw the
  // same convergence-time law as the plain uniform batched engine.
  const auto topo = BlockedTopology::islands(6, 1);
  const int trials = 3000;
  std::map<std::uint64_t, int> pmf_uniform, pmf_lumped;
  for (int t = 0; t < trials; ++t) {
    ++pmf_uniform[epidemic_time_uniform_batched(6, 30000 + t)];
    ++pmf_lumped[epidemic_time_lumped(topo, 80000 + t)];
  }
  const double tv = tv_distance(pmf_uniform, pmf_lumped, trials);
  EXPECT_LT(tv, 0.1) << "total variation distance " << tv;
}

// LooseLeaderElection: leader-count profile at two horizons.  The first
// promotion happens at the very first follower×follower timeout, so the
// hitting time of "one leader" is degenerate; the discriminating
// observable is how leader fights and heartbeat refills play out, which
// depends on the pair law through the community mixing rate.
std::uint64_t loose_profile_blocked_naive(const BlockedTopology& topo,
                                          std::uint64_t seed) {
  const auto n = static_cast<std::uint32_t>(topo.total_agents());
  const LooseLeaderElection proto(n);
  Simulator<LooseLeaderElection, BlockedScheduler> sim(
      proto, Population<LooseLeaderElection>(proto),
      BlockedScheduler(topo, util::substream(seed, 1)), seed);
  std::uint64_t profile = 0;
  for (const std::uint64_t horizon : {40, 160}) {
    while (sim.interactions() < horizon) sim.step();
    std::uint32_t leaders = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
      leaders += sim.population()[i].leader ? 1 : 0;
    }
    profile = profile * 100 + leaders;
  }
  return profile;
}

std::uint64_t loose_profile_graph_naive(const Graph& graph,
                                        std::uint64_t seed) {
  const auto n = graph.vertices();
  const LooseLeaderElection proto(n);
  Simulator<LooseLeaderElection, GraphScheduler> sim(
      proto, Population<LooseLeaderElection>(proto),
      GraphScheduler(graph, util::substream(seed, 1)), seed);
  std::uint64_t profile = 0;
  for (const std::uint64_t horizon : {40, 160}) {
    while (sim.interactions() < horizon) sim.step();
    std::uint32_t leaders = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
      leaders += sim.population()[i].leader ? 1 : 0;
    }
    profile = profile * 100 + leaders;
  }
  return profile;
}

std::uint64_t loose_profile_lumped(const BlockedTopology& topo,
                                   std::uint64_t seed) {
  const auto n = static_cast<std::uint32_t>(topo.total_agents());
  const LooseLeaderElection proto(n);
  BatchedSimulator<LooseLeaderElection,
                   CommunityCountsConfiguration<LooseLeaderElection>>
      sim(proto,
          CommunityCountsConfiguration<LooseLeaderElection>(proto, topo),
          seed);
  std::uint64_t profile = 0;
  for (const std::uint64_t horizon : {40, 160}) {
    sim.step(horizon - sim.interactions());
    profile = profile * 100 + sim.config().count_if(LooseLeaderElection::is_leader);
  }
  return profile;
}

TEST(CommunityLawEquality, LooseLeaderOnTwoIslandsMatchesBlockedNaive) {
  const auto topo = BlockedTopology::islands(8, 2, 1.0, 0.25);
  const int trials = 3000;
  std::map<std::uint64_t, int> pmf_naive, pmf_lumped;
  for (int t = 0; t < trials; ++t) {
    ++pmf_naive[loose_profile_blocked_naive(topo, 11000 + t)];
    ++pmf_lumped[loose_profile_lumped(topo, 51000 + t)];
  }
  const double tv = tv_distance(pmf_naive, pmf_lumped, trials);
  EXPECT_LT(tv, 0.1) << "total variation distance " << tv;
}

TEST(CommunityLawEquality, LooseLeaderOnCompleteMultipartiteMatchesGraphNaive) {
  const auto graph = Graph::complete_multipartite(8, 2);
  const auto topo = BlockedTopology::multipartite(8, 2);
  const int trials = 3000;
  std::map<std::uint64_t, int> pmf_naive, pmf_lumped;
  for (int t = 0; t < trials; ++t) {
    ++pmf_naive[loose_profile_graph_naive(graph, 21000 + t)];
    ++pmf_lumped[loose_profile_lumped(topo, 71000 + t)];
  }
  const double tv = tv_distance(pmf_naive, pmf_lumped, trials);
  EXPECT_LT(tv, 0.1) << "total variation distance " << tv;
}

TEST(CommunityEngine, DeterministicGivenSeed) {
  const auto topo = BlockedTopology::islands(64, 4, 1.0, 0.1);
  EXPECT_EQ(epidemic_time_lumped(topo, 9), epidemic_time_lumped(topo, 9));
  EXPECT_NE(epidemic_time_lumped(topo, 9), 0u);
}

TEST(CommunityEngine, CompactionMidRunStaysExact) {
  // LooseLeader moves the whole population through O(τ) timer states;
  // long community runs trigger maybe_compact() and must keep counts
  // conserved across the member-list rebuild.
  const auto topo = BlockedTopology::islands(32, 2, 1.0, 0.1);
  const LooseLeaderElection proto(32);
  BatchedSimulator<LooseLeaderElection,
                   CommunityCountsConfiguration<LooseLeaderElection>>
      sim(proto,
          CommunityCountsConfiguration<LooseLeaderElection>(proto, topo),
          3);
  sim.step(50000);
  EXPECT_EQ(sim.config().population_size(), 32u);
  EXPECT_EQ(sim.config().community_size(0), 16u);
  EXPECT_EQ(sim.config().community_size(1), 16u);
  EXPECT_GE(sim.config().count_if(LooseLeaderElection::is_leader), 1u);
}

// ---------------------------------------------------------------------------
// analysis::stabilize / epidemic_convergence Engine × Topology dispatch.
// ---------------------------------------------------------------------------

TEST(TopologyDispatch, ParsesEverySpecForm) {
  const auto islands = analysis::topology_from_string("islands:4");
  EXPECT_EQ(islands.kind, analysis::Topology::Kind::kIslands);
  EXPECT_EQ(islands.communities, 4u);
  EXPECT_DOUBLE_EQ(islands.intra, 1.0);
  EXPECT_DOUBLE_EQ(islands.inter, 0.05);
  EXPECT_TRUE(analysis::topology_is_lumpable(islands));

  const auto weighted = analysis::topology_from_string("islands:3:2.0:0.5");
  EXPECT_EQ(weighted.communities, 3u);
  EXPECT_DOUBLE_EQ(weighted.intra, 2.0);
  EXPECT_DOUBLE_EQ(weighted.inter, 0.5);

  const auto multi = analysis::topology_from_string("multipartite:2");
  EXPECT_EQ(multi.kind, analysis::Topology::Kind::kMultipartite);
  EXPECT_TRUE(analysis::topology_is_lumpable(multi));

  const auto complete = analysis::topology_from_string("complete");
  EXPECT_EQ(complete.kind, analysis::Topology::Kind::kComplete);

  const auto ring = analysis::topology_from_string("ring");
  EXPECT_EQ(ring.kind, analysis::Topology::Kind::kRing);
  EXPECT_FALSE(analysis::topology_is_lumpable(ring));
}

TEST(TopologyDispatchDeathTest, RejectsInvalidSpecs) {
  EXPECT_EXIT(analysis::topology_from_string("torus"),
              ::testing::ExitedWithCode(2), "not a valid topology");
  EXPECT_EXIT(analysis::topology_from_string("islands:0"),
              ::testing::ExitedWithCode(2), "K must be >= 1");
  EXPECT_EXIT(analysis::topology_from_string("multipartite:1"),
              ::testing::ExitedWithCode(2), "K >= 2");
  EXPECT_EXIT(analysis::topology_from_string("islands:2:1.0:0"),
              ::testing::ExitedWithCode(2), "disconnected");
  EXPECT_EXIT(analysis::topology_from_string("islands:2xyz"),
              ::testing::ExitedWithCode(2), "not a valid topology");
}

TEST(TopologyDispatchDeathTest, UnsupportedCombinationNamesTheTopology) {
  // The ring at n beyond the naive engine's uint32 limit has NO exact
  // engine: the error is a hard exit that names the topology (S1).
  EXPECT_EXIT(
      analysis::epidemic_convergence(analysis::Engine::kNaive,
                                     0x100000000ull, 1, 0, 0,
                                     analysis::topology_from_string("ring")),
      ::testing::ExitedWithCode(2), "topology 'ring'");
  // Same for a blocked topology requested on the naive engine beyond its
  // population limit (the lumped engine is the supported path there).
  EXPECT_EXIT(analysis::epidemic_convergence(
                  analysis::Engine::kNaive, 0x100000000ull, 1, 0, 0,
                  analysis::topology_from_string("islands:4")),
              ::testing::ExitedWithCode(2), "topology 'islands:4'");
}

TEST(TopologyDispatch, RingReroutesCountsEnginesToNaive) {
  // --engine=batched on the ring routes (loudly) to the naive engine and
  // still produces the ring's Θ(n²) epidemic, far above the complete
  // graph's Θ(n log n).
  const auto ring = analysis::topology_from_string("ring");
  const auto res = analysis::epidemic_convergence(analysis::Engine::kBatched,
                                                  48, 7, 0, 1, ring);
  EXPECT_TRUE(res.converged);
  EXPECT_GT(res.interactions, 400u);  // n·ln n ≈ 186; the ring crawls
}

TEST(TopologyDispatch, IslandsEpidemicConvergesOnEveryEngine) {
  const auto topo = analysis::topology_from_string("islands:4:1.0:0.1");
  const auto naive = analysis::epidemic_convergence(analysis::Engine::kNaive,
                                                    512, 3, 0, 0, topo);
  const auto lumped = analysis::epidemic_convergence(
      analysis::Engine::kBatched, 512, 3, 0, 0, topo);
  const auto leaping = analysis::epidemic_convergence(
      analysis::Engine::kLeaping, 512, 4, 0, 0, topo);
  EXPECT_TRUE(naive.converged);
  EXPECT_TRUE(lumped.converged);
  EXPECT_TRUE(leaping.converged);  // routes to the community batched engine
  EXPECT_GE(naive.interactions, 512u);
  EXPECT_GE(lumped.interactions, 512u);
}

TEST(TopologyDispatch, CompleteTopologyDelegatesToTheUniformPath) {
  // --topology=complete must be byte-for-byte the uniform overload: same
  // seeds, same engines, same results.
  const auto complete = analysis::topology_from_string("complete");
  const auto via_topo = analysis::epidemic_convergence(
      analysis::Engine::kBatched, 4096, 11, 0, 0, complete);
  const auto direct =
      analysis::epidemic_convergence(analysis::Engine::kBatched, 4096, 11);
  EXPECT_EQ(via_topo.interactions, direct.interactions);
  EXPECT_EQ(via_topo.converged, direct.converged);
}

TEST(TopologyDispatch, StabilizeElectsOneLeaderOnIslands) {
  const core::Params params = core::Params::make(16, 8);
  const auto topo = analysis::topology_from_string("islands:2:1.0:0.5");
  const auto budget = analysis::default_budget(params);
  for (const auto engine : {analysis::Engine::kNaive,
                            analysis::Engine::kBatched,
                            analysis::Engine::kLeaping}) {
    const auto res =
        analysis::stabilize(engine, analysis::StartKind::kClean, params,
                            core::Corruption::kNone, 21, budget, topo);
    EXPECT_TRUE(res.converged) << analysis::engine_name(engine);
    EXPECT_EQ(res.leaders, 1u) << analysis::engine_name(engine);
  }
}

TEST(TopologyDispatch, StabilizeRecoversFromAdversarialStartOnIslands) {
  const core::Params params = core::Params::make(16, 8);
  const auto topo = analysis::topology_from_string("islands:2:1.0:0.5");
  const auto budget = analysis::default_budget(params);
  const auto res = analysis::stabilize(
      analysis::Engine::kBatched, analysis::StartKind::kAdversarial, params,
      core::Corruption::kCorruptMessages, 33, budget, topo);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.leaders, 1u);
}

}  // namespace
}  // namespace ssle::pp
