#include "pp/graph.hpp"

#include <gtest/gtest.h>

#include <map>

#include "pp/simulator.hpp"

namespace ssle::pp {
namespace {

TEST(Graph, CompleteHasAllEdges) {
  const Graph g = Graph::complete(6);
  EXPECT_EQ(g.edges(), 15u);
  EXPECT_TRUE(g.is_connected());
  EXPECT_EQ(g.min_degree(), 5u);
  EXPECT_EQ(g.max_degree(), 5u);
}

TEST(Graph, CycleDegreesAndConnectivity) {
  const Graph g = Graph::cycle(10);
  EXPECT_EQ(g.edges(), 10u);
  EXPECT_TRUE(g.is_connected());
  EXPECT_EQ(g.min_degree(), 2u);
  EXPECT_EQ(g.max_degree(), 2u);
}

TEST(Graph, PathHasEndpoints) {
  const Graph g = Graph::path(10);
  EXPECT_EQ(g.edges(), 9u);
  EXPECT_TRUE(g.is_connected());
  EXPECT_EQ(g.min_degree(), 1u);
}

TEST(Graph, StarCenterDegree) {
  const Graph g = Graph::star(10);
  EXPECT_EQ(g.edges(), 9u);
  EXPECT_EQ(g.degree(0), 9u);
  EXPECT_EQ(g.max_degree(), 9u);
  EXPECT_EQ(g.min_degree(), 1u);
}

TEST(Graph, NoSelfLoopsOrDuplicates) {
  Graph g(4);
  g.add_edge(1, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 1);
  g.add_edge(9, 1);  // out of range
  EXPECT_EQ(g.edges(), 1u);
}

TEST(Graph, DisconnectedDetected) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_FALSE(g.is_connected());
}

TEST(Graph, RandomRegularIsConnectedAndBoundedDegree) {
  util::Rng rng(1);
  for (std::uint32_t d : {2u, 4u, 8u}) {
    const Graph g = Graph::random_regular(64, d, rng);
    EXPECT_TRUE(g.is_connected()) << "d=" << d;
    EXPECT_LE(g.max_degree(), d) << "d=" << d;
    EXPECT_GE(g.min_degree(), 2u) << "d=" << d;
  }
}

TEST(Graph, ErdosRenyiConnectedAboveThreshold) {
  util::Rng rng(2);
  const Graph g = Graph::erdos_renyi(64, 0.2, rng);
  EXPECT_TRUE(g.is_connected());
  EXPECT_GT(g.edges(), 64u);
}

TEST(GraphScheduler, OnlyEdgesInteract) {
  util::Rng rng(3);
  const Graph g = Graph::cycle(8);
  GraphScheduler sched(g, 4);
  for (int i = 0; i < 5000; ++i) {
    const Pair p = sched.next();
    EXPECT_TRUE(sched.graph().has_edge(p.initiator, p.responder));
  }
}

TEST(GraphScheduler, BothOrientationsOccur) {
  GraphScheduler sched(Graph::path(2), 5);
  std::map<std::uint32_t, int> initiators;
  for (int i = 0; i < 1000; ++i) ++initiators[sched.next().initiator];
  EXPECT_GT(initiators[0], 300);
  EXPECT_GT(initiators[1], 300);
}

TEST(GraphScheduler, CompleteGraphMatchesUniformModel) {
  // On the complete graph every ordered pair is equally likely — the
  // classical population model.
  GraphScheduler sched(Graph::complete(5), 6);
  std::map<std::pair<std::uint32_t, std::uint32_t>, int> counts;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    const Pair p = sched.next();
    ++counts[{p.initiator, p.responder}];
  }
  EXPECT_EQ(counts.size(), 20u);
  const double expected = kDraws / 20.0;
  for (const auto& [pair, c] : counts) {
    EXPECT_NEAR(c, expected, 0.15 * expected);
  }
}

// --- Epidemic spreading across graph families ------------------------------

struct Epidemic {
  using State = int;
  std::uint32_t n;
  std::uint32_t population_size() const { return n; }
  State initial_state(std::uint32_t agent) const { return agent == 0 ? 1 : 0; }
  void interact(State& u, State& v, util::Rng&) const {
    if (u == 1 || v == 1) u = v = 1;
  }
};

std::uint64_t epidemic_time_on(const Graph& g, std::uint64_t seed) {
  Epidemic proto{g.vertices()};
  Simulator<Epidemic, GraphScheduler> sim(
      proto, Population<Epidemic>(proto), GraphScheduler(g, seed), seed);
  const auto res = sim.run_until(
      [](const Population<Epidemic>& pop, std::uint64_t) {
        for (std::uint32_t i = 0; i < pop.size(); ++i) {
          if (pop[i] == 0) return false;
        }
        return true;
      },
      1u << 24, g.vertices());
  return res.converged ? res.interactions : ~0ull;
}

TEST(GraphEpidemic, CompleteFasterThanCycle) {
  // Conductance separation: complete graph Θ(n log n) vs cycle Θ(n²)-ish.
  const std::uint32_t n = 64;
  const auto complete = epidemic_time_on(pp::Graph::complete(n), 7);
  const auto cycle = epidemic_time_on(pp::Graph::cycle(n), 7);
  EXPECT_LT(complete * 4, cycle);
}

TEST(GraphEpidemic, ExpanderNearlyMatchesComplete) {
  const std::uint32_t n = 64;
  util::Rng rng(8);
  const auto expander =
      epidemic_time_on(Graph::random_regular(n, 8, rng), 9);
  const auto complete = epidemic_time_on(Graph::complete(n), 9);
  EXPECT_LT(expander, 8 * complete);
}

}  // namespace
}  // namespace ssle::pp
