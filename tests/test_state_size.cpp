#include "core/state_size.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ssle::core {
namespace {

TEST(StateSize, AllComponentsPositive) {
  const Params p = Params::make(64, 8);
  EXPECT_GT(bits_propagate_reset(p), 0.0);
  EXPECT_GT(bits_fast_leader_elect(p), 0.0);
  EXPECT_GT(bits_assign_ranks(p), 0.0);
  EXPECT_GT(bits_detect_collision(p), 0.0);
  EXPECT_GT(bits_stable_verify(p), bits_detect_collision(p));
  EXPECT_GT(bits_elect_leader(p), bits_stable_verify(p));
}

TEST(StateSize, DetectCollisionGrowsWithR) {
  // Fig. 3 / Thm 1.1: bit complexity O(r² log n) — strictly increasing in r.
  const std::uint32_t n = 256;
  double prev = 0.0;
  for (std::uint32_t r : {2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    const double bits = bits_detect_collision(Params::make(n, r));
    EXPECT_GT(bits, prev) << "r=" << r;
    prev = bits;
  }
}

TEST(StateSize, QuadraticInRShape) {
  // bits(r) / r² should be within a ~log factor across the r range.
  const std::uint32_t n = 1024;
  const double at8 = bits_detect_collision(Params::make(n, 8)) / 64.0;
  const double at256 = bits_detect_collision(Params::make(n, 256)) / 65536.0;
  EXPECT_LT(at256 / at8, 8.0);
  EXPECT_GT(at256 / at8, 1.0 / 8.0);
}

TEST(StateSize, TradeoffAgainstSsrBaseline) {
  // §1: with r = polylog(n) the protocol uses a sub-exponential
  // (polylog-bit) number of states while the name-set baseline needs
  // Θ(n log n) bits.  The polylog-vs-n·log crossover sits beyond n ≈ 10⁵,
  // so evaluate the (closed-form) bit counts at n = 2²⁰.
  const std::uint32_t n = 1u << 20;
  const auto L = static_cast<std::uint32_t>(std::log2(n));
  const std::uint32_t r_polylog = L * L;  // r = log² n
  const double el = bits_elect_leader(Params::make(n, r_polylog));
  const double ssr = bits_ssr_baseline(n);
  EXPECT_LT(el, ssr / 2.0) << "el=" << el << " ssr=" << ssr;
}

TEST(StateSize, CiwIsLogarithmic) {
  EXPECT_NEAR(bits_ciw(1024), 10.0, 1e-9);
  EXPECT_LT(bits_ciw(1 << 20), 21.0);
}

TEST(StateSize, SsrBaselineIsNLogN) {
  const double b1 = bits_ssr_baseline(256);
  const double b2 = bits_ssr_baseline(512);
  // Doubling n should roughly double (×~2.1) the bits.
  EXPECT_GT(b2 / b1, 1.8);
  EXPECT_LT(b2 / b1, 2.5);
}

TEST(StateSize, ElectLeaderMonotoneInN) {
  for (std::uint32_t r : {2u, 8u}) {
    double prev = 0.0;
    for (std::uint32_t n : {32u, 64u, 128u, 256u}) {
      const double bits = bits_elect_leader(Params::make(n, r));
      EXPECT_GT(bits, prev);
      prev = bits;
    }
  }
}

}  // namespace
}  // namespace ssle::core
