#include "core/params.hpp"

#include <gtest/gtest.h>

#include <tuple>

namespace ssle::core {
namespace {

TEST(Params, Log2Ceil) {
  EXPECT_EQ(Params::log2ceil(1), 1u);
  EXPECT_EQ(Params::log2ceil(2), 2u);
  EXPECT_EQ(Params::log2ceil(3), 3u);
  EXPECT_EQ(Params::log2ceil(4), 3u);
  EXPECT_EQ(Params::log2ceil(1024), 11u);
}

TEST(Params, ClampsRToValidRange) {
  const Params p = Params::make(10, 100);
  EXPECT_EQ(p.r, 5u);  // n/2
  const Params q = Params::make(10, 0);
  EXPECT_EQ(q.r, 1u);
}

TEST(Params, TimersScaleWithNOverR) {
  const Params fast = Params::make(128, 64);
  const Params slow = Params::make(128, 2);
  EXPECT_LT(fast.countdown_max, slow.countdown_max);
  EXPECT_LT(fast.probation_max, slow.probation_max);
  EXPECT_GT(slow.countdown_max / fast.countdown_max, 16u);
}

TEST(Params, DelayTimerDominatesResetCount) {
  for (std::uint32_t n : {8u, 64u, 1000u}) {
    const Params p = Params::make(n, 2);
    EXPECT_GT(p.delay_timer_max, p.reset_count_max);
  }
}

TEST(Params, IdentifierSpaceIsNCubed) {
  const Params p = Params::make(100, 10);
  EXPECT_EQ(p.identifier_space, 1000000ull);
}

TEST(Params, MultiplicityControlsIdsPerRank) {
  const Params faithful = Params::make(64, 32, MessageMultiplicity::kFaithful);
  const Params light = Params::make(64, 32, MessageMultiplicity::kLight);
  const std::uint32_t m = faithful.group_size(0);
  EXPECT_EQ(faithful.ids_per_rank(0), 2 * m * m);
  EXPECT_EQ(light.ids_per_rank(0), 4 * m);
}

TEST(Params, SignatureSpaceFloorAndCap) {
  const Params tiny = Params::make(8, 2);
  EXPECT_GE(tiny.signature_space(0), 1ull << 20);
  const Params big = Params::make(512, 256);
  EXPECT_LE(big.signature_space(0), 0xFFFFFFFFull);
}

// --- Group partition properties (parameterized over (n, r)) ---------------

class GroupPartition
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {
};

TEST_P(GroupPartition, CoversAllRanksContiguously) {
  const auto [n, r] = GetParam();
  const Params p = Params::make(n, r);
  std::uint32_t expected_begin = 1;
  for (std::uint32_t g = 0; g < p.num_groups(); ++g) {
    EXPECT_EQ(p.group_begin(g), expected_begin);
    expected_begin += p.group_size(g);
  }
  EXPECT_EQ(expected_begin, n + 1);  // exact cover of [n]
}

TEST_P(GroupPartition, GroupOfIsConsistentWithBounds) {
  const auto [n, r] = GetParam();
  const Params p = Params::make(n, r);
  for (std::uint32_t rank = 1; rank <= n; ++rank) {
    const std::uint32_t g = p.group_of(rank);
    ASSERT_LT(g, p.num_groups());
    EXPECT_GE(rank, p.group_begin(g));
    EXPECT_LT(rank, p.group_begin(g) + p.group_size(g));
    const std::uint32_t pos = p.rank_in_group(rank);
    EXPECT_GE(pos, 1u);
    EXPECT_LE(pos, p.group_size(g));
  }
}

TEST_P(GroupPartition, SizesInPaperRange) {
  // §3.3: groups of size Θ(r), concretely within {r/2, ..., 2r}.
  const auto [n, r] = GetParam();
  const Params p = Params::make(n, r);
  for (std::uint32_t g = 0; g < p.num_groups(); ++g) {
    EXPECT_GE(2 * p.group_size(g), p.r) << "group " << g;
    EXPECT_LE(p.group_size(g), 2 * p.r) << "group " << g;
  }
}

TEST_P(GroupPartition, SizesDifferByAtMostOne) {
  const auto [n, r] = GetParam();
  const Params p = Params::make(n, r);
  std::uint32_t mn = ~0u, mx = 0;
  for (std::uint32_t g = 0; g < p.num_groups(); ++g) {
    mn = std::min(mn, p.group_size(g));
    mx = std::max(mx, p.group_size(g));
  }
  EXPECT_LE(mx - mn, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GroupPartition,
    ::testing::Values(std::tuple{4u, 1u}, std::tuple{4u, 2u},
                      std::tuple{10u, 3u}, std::tuple{16u, 8u},
                      std::tuple{17u, 4u}, std::tuple{31u, 5u},
                      std::tuple{64u, 2u}, std::tuple{64u, 32u},
                      std::tuple{100u, 7u}, std::tuple{127u, 11u},
                      std::tuple{128u, 64u}, std::tuple{1000u, 31u},
                      std::tuple{1024u, 512u}, std::tuple{999u, 499u}));

}  // namespace
}  // namespace ssle::core
