#include "core/adversary.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/safety.hpp"

namespace ssle::core {
namespace {

TEST(Adversary, AllCorruptionsEnumerated) {
  const auto all = all_corruptions();
  EXPECT_EQ(all.size(), 9u);
  std::set<std::string> names;
  for (const auto c : all) names.insert(corruption_name(c));
  EXPECT_EQ(names.size(), all.size());  // names are distinct
}

TEST(Adversary, NoneIsSafe) {
  const Params p = Params::make(16, 8);
  util::Rng rng(1);
  const auto config = make_adversarial_config(p, Corruption::kNone, rng);
  EXPECT_TRUE(is_safe_configuration(p, config));
}

TEST(Adversary, DuplicateRanksBreaksRanking) {
  const Params p = Params::make(32, 8);
  int broke = 0;
  for (int trial = 0; trial < 10; ++trial) {
    util::Rng rng(100 + trial);
    const auto config =
        make_adversarial_config(p, Corruption::kDuplicateRanks, rng);
    broke += !ranking_correct(p, config);
  }
  EXPECT_GE(broke, 8);  // the random duplication may occasionally no-op
}

TEST(Adversary, NoLeaderHasNoRankOne) {
  const Params p = Params::make(16, 8);
  util::Rng rng(2);
  const auto config = make_adversarial_config(p, Corruption::kNoLeader, rng);
  EXPECT_EQ(leader_count(config), 0u);
  EXPECT_FALSE(ranking_correct(p, config));
}

TEST(Adversary, CorruptMessagesKeepsRankingCorrect) {
  const Params p = Params::make(16, 8);
  util::Rng rng(3);
  const auto config =
      make_adversarial_config(p, Corruption::kCorruptMessages, rng);
  EXPECT_TRUE(ranking_correct(p, config));
  EXPECT_FALSE(message_system_consistent(p, config));
}

TEST(Adversary, LostMessagesKeepsRankingAndConsistency) {
  // Dropping messages never creates duplicates or mismatches; the resulting
  // configuration is degraded but self-consistent.
  const Params p = Params::make(16, 8);
  util::Rng rng(4);
  const auto config =
      make_adversarial_config(p, Corruption::kLostMessages, rng);
  EXPECT_TRUE(ranking_correct(p, config));
  EXPECT_TRUE(message_system_consistent(p, config));
}

TEST(Adversary, MixedGenerationsKeepsRanking) {
  const Params p = Params::make(16, 8);
  util::Rng rng(5);
  const auto config =
      make_adversarial_config(p, Corruption::kMixedGenerations, rng);
  EXPECT_TRUE(ranking_correct(p, config));
  EXPECT_FALSE(single_generation(config));
}

TEST(Adversary, MidRankingAllRankers) {
  const Params p = Params::make(16, 8);
  util::Rng rng(6);
  const auto config = make_adversarial_config(p, Corruption::kMidRanking, rng);
  for (const Agent& a : config) EXPECT_EQ(a.role, Role::kRanking);
}

TEST(Adversary, AllResettingAllResetters) {
  const Params p = Params::make(16, 8);
  util::Rng rng(7);
  const auto config =
      make_adversarial_config(p, Corruption::kAllResetting, rng);
  for (const Agent& a : config) EXPECT_EQ(a.role, Role::kResetting);
}

TEST(Adversary, RandomStatesRespectStateSpaceBounds) {
  const Params p = Params::make(32, 8);
  util::Rng rng(8);
  for (int trial = 0; trial < 50; ++trial) {
    const Agent a = random_agent(p, rng);
    EXPECT_GE(a.rank, 1u);
    EXPECT_LE(a.rank, p.n);
    EXPECT_LE(a.countdown, p.countdown_max);
    if (a.role == Role::kResetting) {
      EXPECT_LE(a.reset.reset_count, p.reset_count_max);
      EXPECT_LE(a.reset.delay_timer, p.delay_timer_max);
    }
    if (a.role == Role::kVerifying) {
      EXPECT_LT(a.sv.generation, Params::kGenerations);
      EXPECT_LE(a.sv.probation_timer, p.probation_max);
      // State-space restriction: own held messages match observations.
      if (!a.sv.dc.error) {
        const std::uint32_t bucket = p.rank_in_group(a.rank) - 1;
        if (bucket < a.sv.dc.msgs.size()) {
          for (const Msg& m : a.sv.dc.msgs[bucket]) {
            ASSERT_LE(m.id, a.sv.dc.observations.size());
            EXPECT_EQ(a.sv.dc.observations[m.id - 1], m.content);
          }
        }
      }
    }
  }
}

TEST(Adversary, GeneratorIsDeterministicPerSeed) {
  const Params p = Params::make(16, 4);
  util::Rng rng1(9), rng2(9);
  const auto a = make_adversarial_config(p, Corruption::kRandomStates, rng1);
  const auto b = make_adversarial_config(p, Corruption::kRandomStates, rng2);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace ssle::core
