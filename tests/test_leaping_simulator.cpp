// LeapingSimulator semantics + statistical equivalence with the naive and
// batched engines.
//
// The leap engine is an exact sampler of the same counts Markov chain the
// other engines induce (see pp/leaping_simulator.hpp): null interactions
// are leapt in closed form, active ones are classified by thinned
// pair-type draws.  Exactness is checked the same way the batched engine
// earned trust — whole-law total-variation comparisons against the naive
// engine at tiny n (for Epidemic AND the LooseLeader baseline, whose
// timer cascades make almost every pair type active), mean/spread bands
// at moderate n, determinism given a seed, plus leap-specific paths: the
// frozen-configuration fast path, the envelope-breach window split
// (forced via a tiny event cap), and the exact binomial sampler the
// windows are built on.
#include "pp/leaping_simulator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <vector>

#include "analysis/measure.hpp"
#include "baselines/loose_leader.hpp"
#include "core/derandomized.hpp"
#include "core/elect_leader.hpp"
#include "core/params.hpp"
#include "pp/epidemic.hpp"
#include "pp/simulator.hpp"

namespace ssle::pp {
namespace {

// ---------------------------------------------------------------------------
// Eligibility: the compile-time contract.
// ---------------------------------------------------------------------------

static_assert(LeapEligible<Epidemic>,
              "Epidemic (two states, deterministic δ) must be leap-eligible");
static_assert(LeapEligible<baselines::LooseLeaderElection>,
              "LooseLeader (O(τ) states, deterministic δ) must be eligible");
static_assert(!LeapEligible<core::ElectLeader>,
              "ElectLeader_r draws randomness in δ: never leap-eligible");
static_assert(!kNarrowRegistry<core::DerandomizedElectLeader>,
              "DerandomizedElectLeader keeps q ≈ n states: must not claim "
              "a narrow registry");

TEST(LeapingRouting, StabilizeRoutesIneligibleProtocolsToBatched) {
  // `--engine=leaping` must be safe on every workload: ElectLeader_r is
  // not leap-eligible, so stabilize() silently runs the batched engine.
  const core::Params params = core::Params::make(8, 4);
  const auto res = analysis::stabilize(analysis::Engine::kLeaping, params,
                                       7, analysis::default_budget(params));
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.leaders, 1u);
}

TEST(LeapingRouting, EngineParsingRoundTrips) {
  EXPECT_EQ(analysis::engine_from_string("leaping"),
            analysis::Engine::kLeaping);
  EXPECT_STREQ(analysis::engine_name(analysis::Engine::kLeaping), "leaping");
}

// ---------------------------------------------------------------------------
// Engine semantics.
// ---------------------------------------------------------------------------

TEST(LeapingSimulator, InitialConfigurationComesFromProtocol) {
  Epidemic proto{16};
  LeapingSimulator<Epidemic> sim(proto, 1);
  EXPECT_EQ(sim.config().count_of(1), 1u);
  EXPECT_EQ(sim.config().count_of(0), 15u);
  EXPECT_EQ(sim.interactions(), 0u);
}

TEST(LeapingSimulator, StepCountsInteractionsExactly) {
  Epidemic proto{16};
  LeapingSimulator<Epidemic> sim(proto, 1);
  sim.step(100);
  EXPECT_EQ(sim.interactions(), 100u);
  sim.step();
  EXPECT_EQ(sim.interactions(), 101u);
  EXPECT_EQ(sim.config().population_size(), 16u);  // agents are conserved
}

TEST(LeapingSimulator, DeterministicGivenSeed) {
  Epidemic proto{256};
  LeapingSimulator<Epidemic> a(proto, 9);
  LeapingSimulator<Epidemic> b(proto, 9);
  a.step(5000);
  b.step(5000);
  EXPECT_EQ(a.config().count_of(1), b.config().count_of(1));
  EXPECT_EQ(a.config().count_of(0), b.config().count_of(0));
  EXPECT_EQ(a.events(), b.events());
  EXPECT_EQ(a.candidates(), b.candidates());
}

TEST(LeapingSimulator, RunUntilChecksInitialConfiguration) {
  Epidemic proto{8};
  LeapingSimulator<Epidemic> sim(proto, 3);
  const auto result = sim.run_until(
      [](const CountsConfiguration<Epidemic>&, std::uint64_t) { return true; },
      1000);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.interactions, 0u);
}

TEST(LeapingSimulator, RunUntilRespectsBudget) {
  Epidemic proto{8};
  LeapingSimulator<Epidemic> sim(proto, 3);
  const auto result = sim.run_until(
      [](const CountsConfiguration<Epidemic>&, std::uint64_t) { return false; },
      500, 64);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.interactions, 500u);
}

TEST(LeapingSimulator, EpidemicTableIsTwoByTwo) {
  Epidemic proto{64};
  LeapingSimulator<Epidemic> sim(proto, 2);
  sim.step(1);
  EXPECT_EQ(sim.table_classes(), 2u);
  // Ordered active types (1,0) and (0,1); (0,0) and (1,1) are null.
  EXPECT_EQ(sim.active_pair_types(), 2u);
}

TEST(LeapingSimulator, EpidemicEventsAreExactlyInfections) {
  // Every active epidemic event infects exactly one agent, so a run to
  // full infection executes exactly n−1 events — everything else must
  // have been leapt as nulls.
  const std::uint64_t n = 4096;
  Epidemic proto{static_cast<std::uint32_t>(n)};
  LeapingSimulator<Epidemic> sim(proto, 11);
  const auto result = sim.run_until(
      [](const CountsConfiguration<Epidemic>& c, std::uint64_t) {
        return c.count_of(1) == c.population_size();
      },
      1ull << 30);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(sim.events(), n - 1);
  EXPECT_EQ(sim.leapt_nulls(), sim.interactions() - (n - 1));
  // Lemma A.2: completes within 7·n·ln n w.h.p.
  EXPECT_LT(result.interactions,
            static_cast<std::uint64_t>(7.0 * static_cast<double>(n) *
                                       std::log(static_cast<double>(n))));
}

TEST(LeapingSimulator, FrozenConfigurationConsumesBudgetInConstantTime) {
  // All-infected epidemic: every pair type is null, W_act = 0, and the
  // engine must consume any remaining budget without iterating — 10^12
  // interactions in microseconds, zero events.
  Epidemic proto{64};
  CountsConfiguration<Epidemic> all_infected(std::vector<int>(64, 1));
  LeapingSimulator<Epidemic> sim(proto, 5, /*event_cap=*/16384);
  LeapingSimulator<Epidemic> frozen(proto, std::move(all_infected), 5);
  frozen.step(1'000'000'000'000ull);
  EXPECT_EQ(frozen.interactions(), 1'000'000'000'000ull);
  EXPECT_EQ(frozen.events(), 0u);
  EXPECT_EQ(frozen.config().count_of(1), 64u);
}

TEST(LeapingSimulatorDeathTest, RegistryCompactionBetweenStepsAbortsLoudly) {
  // The pair-type table is keyed on class ids, which the header requires
  // to stay stable after closure.  compact() between steps reclaims dead
  // ids (bumping the interner's version counter) — the engine must detect
  // that and abort with a message, not index stale classes.
  Epidemic proto{16};
  LeapingSimulator<Epidemic> sim(proto, 7);
  const auto r = sim.run_until(
      [](const CountsConfiguration<Epidemic>& c, std::uint64_t) {
        return c.count_of(1) == c.population_size();
      },
      1u << 20);
  ASSERT_TRUE(r.converged);
  ASSERT_EQ(sim.config().count_of(0), 0u);  // susceptible class is dead
  sim.config().compact();                   // reclaims its id
  EXPECT_DEATH(sim.step(1), "pair-type table");
}

// ---------------------------------------------------------------------------
// Statistical equivalence: epidemic convergence time (vs naive engine).
// ---------------------------------------------------------------------------

std::uint64_t epidemic_time_naive(std::uint32_t n, std::uint64_t seed) {
  Epidemic proto{n};
  Simulator<Epidemic> sim(proto, seed);
  const auto r = sim.run_until(
      [](const Population<Epidemic>& pop, std::uint64_t) {
        for (std::uint32_t i = 0; i < pop.size(); ++i) {
          if (pop[i] == 0) return false;
        }
        return true;
      },
      1u << 22, /*probe_every=*/1);
  EXPECT_TRUE(r.converged);
  return r.interactions;
}

std::uint64_t epidemic_time_leaping(
    std::uint32_t n, std::uint64_t seed,
    std::uint32_t event_cap = LeapingSimulator<Epidemic>::kDefaultEventCap) {
  Epidemic proto{n};
  LeapingSimulator<Epidemic> sim(proto, seed, event_cap);
  const auto r = sim.run_until(
      [](const CountsConfiguration<Epidemic>& c, std::uint64_t) {
        return c.count_of(1) == c.population_size();
      },
      1u << 22, /*probe_every=*/1);
  EXPECT_TRUE(r.converged);
  return r.interactions;
}

struct SampleStats {
  double mean = 0.0;
  double sd = 0.0;
};

SampleStats stats_of(const std::vector<std::uint64_t>& xs) {
  double sum = 0.0, sumsq = 0.0;
  for (const auto x : xs) {
    sum += static_cast<double>(x);
    sumsq += static_cast<double>(x) * static_cast<double>(x);
  }
  const double mean = sum / static_cast<double>(xs.size());
  const double var = sumsq / static_cast<double>(xs.size()) - mean * mean;
  return {mean, std::sqrt(std::max(0.0, var))};
}

double tv_distance(const std::map<std::uint64_t, int>& a,
                   const std::map<std::uint64_t, int>& b, int trials) {
  std::map<std::uint64_t, double> diff;
  for (const auto& [k, c] : a) diff[k] += static_cast<double>(c) / trials;
  for (const auto& [k, c] : b) diff[k] -= static_cast<double>(c) / trials;
  double tv = 0.0;
  for (const auto& [k, d] : diff) tv += std::abs(d);
  return tv / 2.0;
}

TEST(LeapingEquivalence, EpidemicConvergenceTimesMatchNaive) {
  const std::uint32_t n = 48;
  const int trials = 300;
  std::vector<std::uint64_t> naive, leaping;
  naive.reserve(trials);
  leaping.reserve(trials);
  for (int t = 0; t < trials; ++t) {
    naive.push_back(epidemic_time_naive(n, 1000 + t));
    leaping.push_back(epidemic_time_leaping(n, 7000 + t));
  }
  const auto sn = stats_of(naive);
  const auto sl = stats_of(leaping);
  // Same band as the batched-equivalence test: E[T] ≈ 208, sd ≈ 40, so 12
  // is a ≈3.7σ band for the mean gap at 300 trials.
  EXPECT_NEAR(sn.mean, sl.mean, 12.0)
      << "naive mean=" << sn.mean << " leaping mean=" << sl.mean;
  EXPECT_GT(sl.sd, 0.6 * sn.sd);
  EXPECT_LT(sl.sd, 1.6 * sn.sd);
}

TEST(LeapingEquivalence, TinyPopulationLawMatchesNaive) {
  // n = 4: the whole empirical law of the convergence time, compared via
  // total-variation distance — window sizing degenerates to m ≈ 1 here,
  // so this exercises the candidate/acceptance logic per interaction.
  const std::uint32_t n = 4;
  const int trials = 3000;
  std::map<std::uint64_t, int> pmf_naive, pmf_leaping;
  for (int t = 0; t < trials; ++t) {
    ++pmf_naive[epidemic_time_naive(n, 20000 + t)];
    ++pmf_leaping[epidemic_time_leaping(n, 80000 + t)];
  }
  const double tv = tv_distance(pmf_naive, pmf_leaping, trials);
  EXPECT_LT(tv, 0.1) << "total variation distance " << tv;
}

TEST(LeapingEquivalence, TinyEventCapStillMatchesNaive) {
  // event_cap = 2 forces tiny envelopes and tiny windows; the law must
  // not move (exactness is unconditional on the tuning knob).
  const std::uint32_t n = 4;
  const int trials = 3000;
  std::map<std::uint64_t, int> pmf_naive, pmf_leaping;
  for (int t = 0; t < trials; ++t) {
    ++pmf_naive[epidemic_time_naive(n, 20000 + t)];
    ++pmf_leaping[epidemic_time_leaping(n, 130000 + t, /*event_cap=*/2)];
  }
  const double tv = tv_distance(pmf_naive, pmf_leaping, trials);
  EXPECT_LT(tv, 0.1) << "total variation distance " << tv;
}

TEST(LeapingEquivalence, BandedBatchPathIsExercisedAndMatchesNaiveLaw) {
  // A small event cap (slack 2·cap = 16) against mid-run counts of ~2048
  // keeps the band [W_low, W̄) a few percent of the envelope — narrow
  // enough for the width guard (p ≤ 1/8) — so windows resolve through
  // the banded batch path (geometric sure-accept runs, marginals
  // individually).  The observable is the infected count at a fixed
  // mid-transient horizon — the whole horizon runs as internal leap
  // windows, unlike the probe_every=1 time-law tests which degenerate to
  // one-slot windows and never band.
  const std::uint32_t n = 4096;
  const std::uint64_t horizon = 2 * n;
  const std::uint32_t cap = 8;
  const int trials = 2000;
  std::map<std::uint64_t, int> pmf_naive, pmf_banded;
  std::uint64_t banded_pieces = 0;
  for (int t = 0; t < trials; ++t) {
    Epidemic proto{n};
    Simulator<Epidemic> nav(proto, 130000 + t);
    nav.step(horizon);
    std::uint64_t infected = 0;
    for (std::uint32_t i = 0; i < n; ++i) infected += nav.population()[i] == 1;
    // Bucket by 128: the raw ~1000-point support would give two
    // *identical* laws an empirical TV well above the bar at this trial
    // count; ~10 buckets bring the same-law baseline near 0.05.
    ++pmf_naive[infected / 128];
    LeapingSimulator<Epidemic> leap(proto, 170000 + t, cap);
    leap.step(horizon);
    ++pmf_banded[leap.config().count_of(1) / 128];
    banded_pieces += leap.banded_pieces();
    EXPECT_TRUE(leap.uniform_net_delta());
  }
  EXPECT_GT(banded_pieces, 0u) << "banded batch path never taken";
  const double tv = tv_distance(pmf_naive, pmf_banded, trials);
  EXPECT_LT(tv, 0.1) << "total variation distance " << tv;
}

TEST(LeapingEquivalence, EnvelopeBreachSplitPathIsExercisedAndExact) {
  // At n = 1024 with event_cap = 2 the early-epidemic windows have
  // m ≫ cap and E[C] = cap/4, so C > cap happens at a few-percent rate
  // per window: the hypergeometric split path must actually run, and the
  // trajectories must still satisfy the Lemma A.2 bound.  (This is a
  // path-coverage smoke; the split path's *law* is pinned by
  // SplitPathLawMatchesNaive below.)
  const std::uint32_t n = 1024;
  std::uint64_t total_splits = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Epidemic proto{n};
    LeapingSimulator<Epidemic> sim(proto, 300 + seed, /*event_cap=*/2);
    const auto r = sim.run_until(
        [](const CountsConfiguration<Epidemic>& c, std::uint64_t) {
          return c.count_of(1) == c.population_size();
        },
        1u << 26);
    EXPECT_TRUE(r.converged);
    EXPECT_EQ(sim.events(), n - 1);
    total_splits += sim.splits();
  }
  EXPECT_GT(total_splits, 0u);
}

TEST(LeapingEquivalence, SplitPathLawMatchesNaive) {
  // Distributional coverage for the window-split path — the gap the other
  // TV tests cannot reach: TinyEventCapStillMatchesNaive runs probe_every=1
  // (every window one slot, c ≤ 1, never splits) and the n = 1024 split
  // smoke above only checks convergence and the loose 7·n·ln n bound,
  // which a percent-level rate bias would pass.  Here the whole horizon
  // runs as internal multi-slot windows at event_cap = 2 (E[C] = 4/3, so
  // C > 2 at ~15% of windows: ~9 splits per run) and the observable, the
  // infected count at a mid-transient horizon, amplifies any per-slot
  // rate bias exponentially through the early growth phase.  Two teeth:
  //   * the TV bar catches gross split-path errors — discarding the
  //     second half's candidates and redrawing them fresh (dropping the
  //     candidate-rich branch conditioning) measures TV ≈ 0.25 here;
  //   * the mean gap catches percent-level rate bias — the stale-envelope
  //     bug (second-half candidates thinned under W̄ but accepted against
  //     the recomputed W̄₂, an under-rate of W̄/W̄₂ per slot) shifted the
  //     mean by −5.2% = 5.9 SEs at this trial count, while the exact
  //     band-promoting split measures −0.2% = 0.22 SEs (the band is
  //     ±2.3 SEs, deterministic under these fixed seeds).
  const std::uint32_t n = 1024;
  const std::uint64_t horizon = 2 * n;
  const int trials = 20000;
  std::map<std::uint64_t, int> pmf_naive, pmf_split;
  double sum_naive = 0.0, sum_split = 0.0;
  std::uint64_t total_splits = 0;
  for (int t = 0; t < trials; ++t) {
    Epidemic proto{n};
    Simulator<Epidemic> nav(proto, 210000 + t);
    nav.step(horizon);
    std::uint64_t infected = 0;
    for (std::uint32_t i = 0; i < n; ++i) infected += nav.population()[i] == 1;
    // Bucket by 32: the spread-out early-growth law (median ~50 infected,
    // long right tail) lands on ~a dozen buckets, keeping the same-law
    // empirical TV baseline well under the bar at this trial count.
    ++pmf_naive[infected / 32];
    sum_naive += static_cast<double>(infected);
    LeapingSimulator<Epidemic> leap(proto, 250000 + t, /*event_cap=*/2);
    leap.step(horizon);
    ++pmf_split[leap.config().count_of(1) / 32];
    sum_split += static_cast<double>(leap.config().count_of(1));
    total_splits += leap.splits();
  }
  EXPECT_GT(total_splits, static_cast<std::uint64_t>(trials))
      << "split path barely taken";
  const double tv = tv_distance(pmf_naive, pmf_split, trials);
  EXPECT_LT(tv, 0.1) << "total variation distance " << tv;
  // Mean infected ≈ 49.6, sd ≈ 44.9: one SE of the mean gap is
  // sd·sqrt(2/trials) ≈ 0.45, so 1.0 is a ±2.3 SE band.
  EXPECT_NEAR(sum_naive / trials, sum_split / trials, 1.0);
}

// ---------------------------------------------------------------------------
// Statistical equivalence: LooseLeader (timer cascades — almost every pair
// type is active, the regime where leaping degrades to per-interaction
// thinning and must stay exact while doing so).
// ---------------------------------------------------------------------------

std::uint32_t leaders_after_naive(std::uint32_t n, std::uint64_t horizon,
                                  std::uint64_t seed) {
  baselines::LooseLeaderElection proto(n, /*timeout_scale=*/2);
  Simulator<baselines::LooseLeaderElection> sim(proto, seed);
  sim.step(horizon);
  return proto.leader_count(sim.population().states());
}

std::uint32_t leaders_after_leaping(std::uint32_t n, std::uint64_t horizon,
                                    std::uint64_t seed) {
  baselines::LooseLeaderElection proto(n, /*timeout_scale=*/2);
  LeapingSimulator<baselines::LooseLeaderElection> sim(proto, seed);
  sim.step(horizon);
  // Heterogeneous deltas (fights, demotions, timer decrements): the
  // banded batch path must stay off — every candidate walks the table.
  EXPECT_FALSE(sim.uniform_net_delta());
  return static_cast<std::uint32_t>(
      sim.config().count_if(baselines::LooseLeaderElection::is_leader));
}

TEST(LeapingEquivalence, LooseLeaderCountLawMatchesNaive) {
  // Mid-transient (2n interactions from the all-timers-zero start) the
  // leader count is a genuinely spread-out law: promotions are racing
  // leader fights.  Compare it whole via TV distance.
  const std::uint32_t n = 32;
  const std::uint64_t horizon = 2 * n;
  const int trials = 1500;
  std::map<std::uint64_t, int> pmf_naive, pmf_leaping;
  for (int t = 0; t < trials; ++t) {
    ++pmf_naive[leaders_after_naive(n, horizon, 40000 + t)];
    ++pmf_leaping[leaders_after_leaping(n, horizon, 90000 + t)];
  }
  const double tv = tv_distance(pmf_naive, pmf_leaping, trials);
  EXPECT_LT(tv, 0.1) << "total variation distance " << tv;
}

TEST(LeapingEquivalence, LooseLeaderSettlesToOneLeaderOnBothEngines) {
  // Long horizon (32n interactions at this τ): the loose protocol is
  // *usually* down to a unique leader, but timeouts keep re-promoting,
  // so the rate hovers around ~70% — the law, not certainty.  The real
  // assertion is that both engines report the same rate.
  const std::uint32_t n = 32;
  const std::uint64_t horizon = 32 * n;
  int naive_single = 0, leaping_single = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    naive_single += leaders_after_naive(n, horizon, 500 + t) == 1;
    leaping_single += leaders_after_leaping(n, horizon, 700 + t) == 1;
  }
  EXPECT_GT(naive_single, trials / 2);
  EXPECT_GT(leaping_single, trials / 2);
  EXPECT_NEAR(naive_single, leaping_single, trials / 10);
}

// ---------------------------------------------------------------------------
// analysis::epidemic_convergence — the engine-generic Lemma A.2 entry.
// ---------------------------------------------------------------------------

TEST(EpidemicConvergence, AllEnginesConvergeWithinTheLemmaBound) {
  const std::uint64_t n = 100000;
  const double bound = 7.0 * static_cast<double>(n) *
                       std::log(static_cast<double>(n));
  for (const auto engine :
       {analysis::Engine::kNaive, analysis::Engine::kBatched,
        analysis::Engine::kLeaping}) {
    const auto r = analysis::epidemic_convergence(engine, n, 42);
    EXPECT_TRUE(r.converged) << analysis::engine_name(engine);
    EXPECT_LT(static_cast<double>(r.interactions), bound)
        << analysis::engine_name(engine);
    EXPECT_GE(r.interactions, n - 1) << analysis::engine_name(engine);
  }
}

TEST(EpidemicConvergence, TrivialPopulationsAreAlreadyConverged) {
  const auto r =
      analysis::epidemic_convergence(analysis::Engine::kLeaping, 1, 3);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.interactions, 0u);
}

// ---------------------------------------------------------------------------
// sample_binomial: the exact draw the windows are built on.
// ---------------------------------------------------------------------------

TEST(Binomial, DegenerateCasesAreExact) {
  util::Rng rng(7);
  EXPECT_EQ(sample_binomial(rng, 0, 0.5), 0u);
  EXPECT_EQ(sample_binomial(rng, 100, 0.0), 0u);
  EXPECT_EQ(sample_binomial(rng, 100, -1.0), 0u);
  EXPECT_EQ(sample_binomial(rng, 100, 1.0), 100u);
  EXPECT_EQ(sample_binomial(rng, 100, 1.5), 100u);
}

TEST(Binomial, SmallCaseChiSquareMatchesExactPmf) {
  util::Rng rng(12345);
  const std::uint64_t trials = 5;
  const double p = 0.3;
  const int draws = 20000;
  std::array<int, 6> observed{};
  for (int i = 0; i < draws; ++i) {
    const std::uint64_t k = sample_binomial(rng, trials, p);
    ASSERT_LE(k, trials);
    ++observed[k];
  }
  // Exact pmf C(5,k)·0.3^k·0.7^(5−k).
  double chi2 = 0.0;
  for (std::uint64_t k = 0; k <= trials; ++k) {
    double pmf = 1.0;
    for (std::uint64_t j = 0; j < k; ++j) {
      pmf *= static_cast<double>(trials - j) / static_cast<double>(j + 1);
    }
    pmf *= std::pow(p, static_cast<double>(k)) *
           std::pow(1.0 - p, static_cast<double>(trials - k));
    const double expect = pmf * draws;
    chi2 += (observed[k] - expect) * (observed[k] - expect) / expect;
  }
  // 5 d.o.f.: P(χ² > 20.5) ≈ 0.001; the seed is fixed, so this is a
  // deterministic regression gate, not a flaky stochastic one.
  EXPECT_LT(chi2, 20.5);
}

TEST(Binomial, HugeTrialsTinyPStaysOnTheoryMean) {
  // The leap regime: trials ~ 10^10 slots, candidate probability ~ 10^-7.
  // Mean n·p = 1000, sd ≈ 31.6; 400 draws pin the sample mean to ±5 SE.
  util::Rng rng(99);
  const std::uint64_t trials = 10'000'000'000ull;
  const double p = 1e-7;
  const int draws = 400;
  double sum = 0.0;
  for (int i = 0; i < draws; ++i) {
    sum += static_cast<double>(sample_binomial(rng, trials, p));
  }
  const double mean = sum / draws;
  const double se = 31.6 / std::sqrt(static_cast<double>(draws));
  EXPECT_NEAR(mean, 1000.0, 5.0 * se);
}

}  // namespace
}  // namespace ssle::pp
