// std::hash<core::Agent> consistency: equal agents hash equal (required
// for the CountsConfiguration registry), and perturbing any field — at
// every nesting level — changes the hash.
#include <gtest/gtest.h>

#include <functional>
#include <unordered_set>

#include "baselines/cai_izumi_wada.hpp"
#include "baselines/fight_leader.hpp"
#include "baselines/loose_leader.hpp"
#include "core/agent.hpp"
#include "core/elect_leader.hpp"
#include "core/params.hpp"
#include "pp/counts.hpp"

namespace ssle::core {
namespace {

std::size_t h(const Agent& a) { return std::hash<Agent>{}(a); }

Agent busy_agent() {
  Agent a;
  a.role = Role::kVerifying;
  a.countdown = 9;
  a.rank = 4;
  a.reset.reset_count = 2;
  a.reset.delay_timer = 5;
  a.ar.type = ArType::kDeputy;
  a.ar.le.drawn = true;
  a.ar.le.identifier = 123456;
  a.ar.le.min_identifier = 777;
  a.ar.le.le_count = 3;
  a.ar.le.leader_done = true;
  a.ar.le.leader_bit = false;
  a.ar.low_badge = 1;
  a.ar.high_badge = 6;
  a.ar.deputy_id = 2;
  a.ar.counter = 11;
  a.ar.label = Label{2, 7};
  a.ar.sleep_timer = 4;
  a.ar.channel = {0, 3, 1};
  a.ar.rank = 4;
  a.sv.generation = 3;
  a.sv.probation_timer = 17;
  a.sv.dc.error = false;
  a.sv.dc.signature = 42;
  a.sv.dc.counter = 8;
  a.sv.dc.msgs = {{Msg{1, 10}, Msg{2, 20}}, {}};
  a.sv.dc.observations = {10, 0, 30};
  return a;
}

TEST(AgentHash, EqualAgentsHashEqual) {
  const Agent a = busy_agent();
  const Agent b = busy_agent();
  ASSERT_EQ(a, b);
  EXPECT_EQ(h(a), h(b));
}

TEST(AgentHash, SatisfiesTheHashableStateConcept) {
  static_assert(pp::HashableState<Agent>);
  static_assert(pp::HashableState<baselines::CaiIzumiWada::State>);
  static_assert(pp::HashableState<baselines::FightLeaderElection::State>);
  static_assert(pp::HashableState<baselines::LooseLeaderElection::State>);
}

TEST(AgentHash, TopLevelFieldPerturbationsChangeTheHash) {
  const Agent base = busy_agent();
  Agent x = base;
  x.role = Role::kResetting;
  EXPECT_NE(h(base), h(x));
  x = base;
  x.countdown += 1;
  EXPECT_NE(h(base), h(x));
  x = base;
  x.rank += 1;
  EXPECT_NE(h(base), h(x));
}

TEST(AgentHash, NestedResetAndArPerturbationsChangeTheHash) {
  const Agent base = busy_agent();
  Agent x = base;
  x.reset.reset_count += 1;
  EXPECT_NE(h(base), h(x));
  x = base;
  x.reset.delay_timer += 1;
  EXPECT_NE(h(base), h(x));
  x = base;
  x.ar.type = ArType::kSheriff;
  EXPECT_NE(h(base), h(x));
  x = base;
  x.ar.le.identifier += 1;
  EXPECT_NE(h(base), h(x));
  x = base;
  x.ar.le.drawn = !x.ar.le.drawn;
  EXPECT_NE(h(base), h(x));
  x = base;
  x.ar.label.index += 1;
  EXPECT_NE(h(base), h(x));
  x = base;
  x.ar.channel[1] += 1;
  EXPECT_NE(h(base), h(x));
  x = base;
  x.ar.channel.push_back(0);  // length must matter, not just the contents
  EXPECT_NE(h(base), h(x));
}

TEST(AgentHash, NestedSvAndDcPerturbationsChangeTheHash) {
  const Agent base = busy_agent();
  Agent x = base;
  x.sv.generation += 1;
  EXPECT_NE(h(base), h(x));
  x = base;
  x.sv.probation_timer += 1;
  EXPECT_NE(h(base), h(x));
  x = base;
  x.sv.dc.error = true;
  EXPECT_NE(h(base), h(x));
  x = base;
  x.sv.dc.signature += 1;
  EXPECT_NE(h(base), h(x));
  x = base;
  x.sv.dc.msgs[0][1].content += 1;
  EXPECT_NE(h(base), h(x));
  x = base;
  x.sv.dc.msgs[1].push_back(Msg{9, 9});
  EXPECT_NE(h(base), h(x));
  x = base;
  x.sv.dc.observations[2] += 1;
  EXPECT_NE(h(base), h(x));
}

TEST(AgentHash, InitialStatesHashDistinctlyAcrossPerturbedRanks) {
  // Distinct live states from a real protocol should spread over the hash
  // space well enough for the registry's unordered_map.
  const Params params = Params::make(32, 8);
  ElectLeader protocol(params);
  std::unordered_set<std::size_t> hashes;
  for (std::uint32_t i = 0; i < 32; ++i) {
    Agent a = protocol.initial_state(i);
    a.rank = i + 1;
    a.ar.le.identifier = 1000 + i;
    hashes.insert(h(a));
  }
  EXPECT_EQ(hashes.size(), 32u);
}

TEST(AgentHash, CountsConfigurationUsesTheHashIndexForAgents) {
  // With std::hash<Agent> in place the registry takes the O(1) path; this
  // checks the index stays consistent through add/remove/compact.
  const Params params = Params::make(16, 4);
  ElectLeader protocol(params);
  pp::CountsConfiguration<ElectLeader> config(protocol);
  EXPECT_EQ(config.population_size(), 16u);
  ASSERT_EQ(config.num_states(), 1u);  // clean start: all agents identical

  Agent ranked = protocol.initial_state(0);
  ranked.rank = 3;
  const auto idx = config.add(ranked, 5);
  EXPECT_EQ(config.count_of(ranked), 5u);
  config.remove_at(idx, 5);
  config.compact();
  EXPECT_EQ(config.count_of(ranked), 0u);
  EXPECT_EQ(config.population_size(), 16u);
  EXPECT_EQ(config.count_of(protocol.initial_state(1)), 16u);
}

}  // namespace
}  // namespace ssle::core
