#include "util/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>

namespace ssle::util {
namespace {

// The written form of a bare double is the number itself, so strtod on
// dump() is the round-trip a JSON reader would perform.
double reparse(double v) {
  const std::string s = Json(v).dump_line();
  return std::strtod(s.c_str(), nullptr);
}

TEST(JsonDouble, RoundTripsExactly) {
  const double cases[] = {
      0.0,
      1.0,
      0.1,
      1.0 / 3.0,
      2.718281828459045,
      1e-300,
      1e300,
      std::numeric_limits<double>::max(),
      std::numeric_limits<double>::min(),
      std::numeric_limits<double>::denorm_min(),  // 5e-324
      123456789.123456789,
      -0.25,
  };
  for (const double v : cases) {
    EXPECT_EQ(reparse(v), v) << "printed as " << Json(v).dump_line();
  }
}

TEST(JsonDouble, NegativeZeroPrintsValidJson) {
  // "-0" is a valid JSON number and parses back to negative zero.
  const std::string s = Json(-0.0).dump_line();
  const double back = std::strtod(s.c_str(), nullptr);
  EXPECT_EQ(back, 0.0);
  EXPECT_TRUE(std::signbit(back)) << "printed as " << s;
}

TEST(JsonDouble, ShortValuesStayShort) {
  // The shortest-round-trip search must not decorate values that already
  // survive at %.15g (stable diffs in BENCH_*.json).
  EXPECT_EQ(Json(1.5).dump_line(), "1.5");
  EXPECT_EQ(Json(0.25).dump_line(), "0.25");
  EXPECT_EQ(Json(100.0).dump_line(), "100");
}

TEST(JsonDouble, NonFiniteSerializesAsNull) {
  EXPECT_EQ(Json(std::numeric_limits<double>::quiet_NaN()).dump_line(),
            "null");
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump_line(), "null");
  EXPECT_EQ(Json(-std::numeric_limits<double>::infinity()).dump_line(),
            "null");
}

TEST(JsonDumpLine, CompactSingleLine) {
  auto doc = Json::object();
  doc.set("name", "x");
  doc.set("count", std::uint64_t{3});
  auto arr = Json::array();
  arr.push(1);
  arr.push(true);
  arr.push(Json());
  doc.set("items", std::move(arr));
  const std::string line = doc.dump_line();
  EXPECT_EQ(line, R"({"name":"x","count":3,"items":[1,true,null]})");
  EXPECT_EQ(line.find('\n'), std::string::npos);
}

TEST(JsonDumpLine, AgreesWithPrettyDumpOnValues) {
  // Same value syntax either way: a reader must see identical scalars.
  auto doc = Json::object();
  doc.set("pi", 3.141592653589793);
  const std::string pretty = doc.dump();
  const std::string compact = doc.dump_line();
  EXPECT_NE(pretty.find("3.141592653589793"), std::string::npos);
  EXPECT_NE(compact.find("3.141592653589793"), std::string::npos);
}

}  // namespace
}  // namespace ssle::util
