// Edge-case coverage: minimal populations, degenerate trade-off settings,
// exhausted pools and boundary timer values.
#include <gtest/gtest.h>

#include "analysis/measure.hpp"
#include "core/adversary.hpp"
#include "core/assign_ranks.hpp"
#include "core/detect_collision.hpp"
#include "core/elect_leader.hpp"
#include "core/safety.hpp"
#include "core/stable_verify.hpp"
#include "pp/simulator.hpp"

namespace ssle::core {
namespace {

TEST(EdgeCases, SmallestPopulationStabilizes) {
  // n = 2 is the smallest meaningful population (r clamps to 1).
  const Params p = Params::make(2, 1);
  EXPECT_EQ(p.r, 1u);
  EXPECT_EQ(p.num_groups(), 2u);
  const auto res = analysis::stabilize(analysis::Engine::kNaive, p, 1,
                                       analysis::default_budget(p));
  ASSERT_TRUE(res.converged);
  EXPECT_EQ(res.leaders, 1u);
}

TEST(EdgeCases, OddTinyPopulations) {
  for (std::uint32_t n : {3u, 5u, 7u}) {
    const Params p = Params::make(n, 1);
    const auto res =
        analysis::stabilize(analysis::Engine::kNaive, p, 2,
                            analysis::default_budget(p));
    ASSERT_TRUE(res.converged) << "n=" << n;
    EXPECT_EQ(res.leaders, 1u) << "n=" << n;
  }
}

TEST(EdgeCases, SingleGroupCoversWholePopulation) {
  const Params p = Params::make(12, 6);
  EXPECT_EQ(p.num_groups(), 2u);
  const Params q = Params::make(12, 12);  // r clamps to 6 → 2 groups
  EXPECT_EQ(q.r, 6u);
}

TEST(EdgeCases, GroupOfSizeOneDetectsByDirectMeeting) {
  // r = 1 ⇒ every rank is its own group; the message machinery degenerates
  // and duplicates are only caught by same-rank meetings.
  const Params p = Params::make(6, 1);
  DcState a = dc_initial_state(p, 3);
  DcState b = dc_initial_state(p, 3);
  util::Rng rng(1);
  detect_collision(p, 3, a, 3, b, rng);
  EXPECT_TRUE(a.error);
}

TEST(EdgeCases, DeputyPoolExactlyCoversPopulation) {
  // label_pool = 2n/r: with all r deputies each can label 2n/r agents, so
  // the pool always covers n with slack factor 2 (App. D: c > 1).
  for (std::uint32_t n : {8u, 17u, 64u, 100u}) {
    for (std::uint32_t r : {1u, 2u, n / 2}) {
      const Params p = Params::make(n, r);
      EXPECT_GE(static_cast<std::uint64_t>(p.label_pool) * p.r, p.n)
          << "n=" << n << " r=" << r;
    }
  }
}

TEST(EdgeCases, SleepTimerBoundaryWakesExactlyAtMax) {
  const Params p = Params::make(8, 2);
  ArState a;
  a.type = ArType::kSleeper;
  a.sleep_timer = p.sleep_max - 1;
  a.label = {1, 1};
  a.channel = {4, 4};
  ArState b = a;
  b.label = {2, 1};
  ar_sleep(p, a, b);  // not yet expired: both stay sleeping, timers tick
  EXPECT_EQ(a.type, ArType::kSleeper);
  EXPECT_EQ(a.sleep_timer, p.sleep_max);
  ar_sleep(p, a, b);  // now expired
  EXPECT_EQ(a.type, ArType::kRanked);
}

TEST(EdgeCases, VerifierPairInDifferentGroupsIsInert) {
  const Params p = Params::make(8, 2);
  Agent u, v;
  u.role = v.role = Role::kVerifying;
  u.rank = 1;
  v.rank = 8;
  ASSERT_NE(p.group_of(u.rank), p.group_of(v.rank));
  u.sv = sv_initial_state(p, u.rank);
  v.sv = sv_initial_state(p, v.rank);
  u.sv.probation_timer = v.sv.probation_timer = 0;
  const auto u_dc = u.sv.dc;
  util::Rng rng(3);
  stable_verify(p, u, v, rng);
  EXPECT_EQ(u.sv.dc, u_dc);  // DetectCollision was a cross-group no-op
  EXPECT_FALSE(u.sv.dc.error);
}

TEST(EdgeCases, CountdownZeroAgentsConvertOnAnyInteraction) {
  const Params p = Params::make(8, 2);
  ElectLeader protocol(p);
  Agent u = protocol.initial_state(0);
  u.countdown = 0;
  Agent v;
  v.role = Role::kVerifying;
  v.rank = 5;
  v.sv = sv_initial_state(p, 5);
  util::Rng rng(4);
  protocol.interact(u, v, rng);
  EXPECT_EQ(u.role, Role::kVerifying);
}

TEST(EdgeCases, ProbationTimerNeverUnderflows) {
  const Params p = Params::make(8, 4);
  Agent u, v;
  u.role = v.role = Role::kVerifying;
  u.rank = 1;
  v.rank = 2;
  u.sv = sv_initial_state(p, 1);
  v.sv = sv_initial_state(p, 2);
  u.sv.probation_timer = 0;
  v.sv.probation_timer = 0;
  util::Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    stable_verify(p, u, v, rng);
    ASSERT_EQ(u.sv.probation_timer, 0u);
    ASSERT_EQ(v.sv.probation_timer, 0u);
  }
}

TEST(EdgeCases, AdversaryOnTinyPopulationNeverCrashes) {
  const Params p = Params::make(4, 2);
  util::Rng rng(6);
  for (const auto c : all_corruptions()) {
    const auto config = make_adversarial_config(p, c, rng);
    EXPECT_EQ(config.size(), 4u) << corruption_name(c);
  }
}

TEST(EdgeCases, RecoveryOnTinyPopulation) {
  const Params p = Params::make(4, 2);
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const auto res = analysis::stabilize(
        analysis::Engine::kNaive, analysis::StartKind::kAdversarial, p,
        Corruption::kRandomStates, seed, 8 * analysis::default_budget(p));
    ASSERT_TRUE(res.converged) << "seed " << seed;
    EXPECT_EQ(res.leaders, 1u);
  }
}

TEST(EdgeCases, BalanceLoadHandlesManyContentClasses) {
  // Worst case for the class-splitting loop: every message has a distinct
  // content.  Conservation and ≤1-per-class splitting must still hold.
  const Params p = Params::make(8, 4);
  DcState a = dc_initial_state(p, 1);
  DcState b = dc_initial_state(p, 2);
  std::uint32_t content = 10;
  for (auto& bucket : a.msgs) {
    for (auto& msg : bucket) msg.content = content++;
  }
  const std::uint32_t own = p.rank_in_group(1) - 1;
  for (const auto& msg : a.msgs[own]) {
    a.observations[msg.id - 1] = msg.content;
  }
  const auto before = dc_message_count(a) + dc_message_count(b);
  balance_load(p, 1, a, b);
  EXPECT_EQ(dc_message_count(a) + dc_message_count(b), before);
}

TEST(EdgeCases, UpdateMessagesWithEmptyBucketsIsSafe) {
  const Params p = Params::make(8, 4);
  DcState a = dc_initial_state(p, 1);
  DcState b = dc_initial_state(p, 2);
  for (auto& bucket : a.msgs) bucket.clear();
  for (auto& bucket : b.msgs) bucket.clear();
  util::Rng rng(7);
  for (int i = 0; i < 100; ++i) update_messages(p, 1, a, b, rng);
  EXPECT_EQ(dc_message_count(a), 0u);
}

}  // namespace
}  // namespace ssle::core
