#include "pp/scheduler.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace ssle::pp {
namespace {

TEST(Scheduler, NeverPairsAgentWithItself) {
  UniformScheduler sched(5, 1);
  for (int i = 0; i < 10000; ++i) {
    const Pair p = sched.next();
    EXPECT_NE(p.initiator, p.responder);
    EXPECT_LT(p.initiator, 5u);
    EXPECT_LT(p.responder, 5u);
  }
}

TEST(Scheduler, TwoAgentsAlwaysInteract) {
  UniformScheduler sched(2, 3);
  for (int i = 0; i < 100; ++i) {
    const Pair p = sched.next();
    EXPECT_NE(p.initiator, p.responder);
  }
}

TEST(Scheduler, OrderedPairsApproximatelyUniform) {
  constexpr std::uint32_t n = 6;
  UniformScheduler sched(n, 99);
  std::map<std::pair<std::uint32_t, std::uint32_t>, int> counts;
  constexpr int kDraws = 300000;
  for (int i = 0; i < kDraws; ++i) {
    const Pair p = sched.next();
    ++counts[{p.initiator, p.responder}];
  }
  EXPECT_EQ(counts.size(), n * (n - 1));  // all ordered pairs occur
  const double expected = static_cast<double>(kDraws) / (n * (n - 1));
  double chi2 = 0.0;
  for (const auto& [pair, c] : counts) {
    chi2 += (c - expected) * (c - expected) / expected;
  }
  // 29 dof; 99.9% quantile ≈ 58.3.
  EXPECT_LT(chi2, 58.3);
}

TEST(Scheduler, PerAgentInteractionRateIsTwoOverN) {
  // Lemma A.1 premise: each agent appears with probability 2/n per step.
  constexpr std::uint32_t n = 50;
  UniformScheduler sched(n, 7);
  std::vector<int> hits(n, 0);
  constexpr int kDraws = 250000;
  for (int i = 0; i < kDraws; ++i) {
    const Pair p = sched.next();
    ++hits[p.initiator];
    ++hits[p.responder];
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    EXPECT_NEAR(static_cast<double>(hits[i]) / kDraws, 2.0 / n, 0.2 / n);
  }
}

TEST(Scheduler, DeterministicGivenSeed) {
  UniformScheduler a(10, 5), b(10, 5);
  for (int i = 0; i < 1000; ++i) {
    const Pair pa = a.next();
    const Pair pb = b.next();
    EXPECT_EQ(pa.initiator, pb.initiator);
    EXPECT_EQ(pa.responder, pb.responder);
  }
}

}  // namespace
}  // namespace ssle::pp
