#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>

namespace ssle::util {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 5);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound) << "bound=" << bound;
    }
  }
}

TEST(Rng, BelowZeroAndOneAreZero) {
  Rng rng(7);
  EXPECT_EQ(rng.below(0), 0u);
  EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all 7 values hit
}

TEST(Rng, BelowIsApproximatelyUniform) {
  Rng rng(11);
  constexpr std::uint64_t kBuckets = 16;
  constexpr int kDraws = 160000;
  std::array<int, kBuckets> counts{};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(kBuckets)];
  // Chi-square with 15 dof; 99.9% quantile ≈ 37.7.
  const double expected = static_cast<double>(kDraws) / kBuckets;
  double chi2 = 0.0;
  for (int c : counts) chi2 += (c - expected) * (c - expected) / expected;
  EXPECT_LT(chi2, 37.7);
}

TEST(Rng, RealInUnitInterval) {
  Rng rng(13);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.real();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, CoinIsFair) {
  Rng rng(17);
  int heads = 0;
  for (int i = 0; i < 100000; ++i) heads += rng.coin();
  EXPECT_NEAR(heads / 100000.0, 0.5, 0.01);
}

TEST(Rng, SubstreamsAreIndependentStreams) {
  EXPECT_NE(substream(1, 0), substream(1, 1));
  EXPECT_NE(substream(1, 0), substream(2, 0));
  EXPECT_EQ(substream(5, 3), substream(5, 3));
}

TEST(SplitMix64, KnownSequenceIsStable) {
  SplitMix64 sm(0);
  const auto a = sm.next();
  const auto b = sm.next();
  EXPECT_NE(a, b);
  SplitMix64 sm2(0);
  EXPECT_EQ(sm2.next(), a);
  EXPECT_EQ(sm2.next(), b);
}

}  // namespace
}  // namespace ssle::util
